// 27-point stencil application model (§6.2 and Fig. 7).
//
// The simulated 3D physical space is split into sub-cubes, one per process.
// Each iteration:
//   exchange():   halo exchange with the 26 neighbors — 6 faces, 12 edges,
//                 8 corners, with bytes split by contact area
//   collective(): a dissemination allreduce — in round k every process sends
//                 to (id +/- 2^k) mod P and waits for both counterparts;
//                 ceil(log2 P) rounds
// Computation is not modeled (the paper sets compute time to zero); processes
// advance purely on message-delivery events. Execution time is the makespan:
// the tick at which the last process finishes its last iteration.
//
// A process may run ahead of its neighbors (the dissemination barrier does
// not complete simultaneously everywhere), so receive accounting is kept per
// iteration and per round.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "app/message.h"
#include "common/rng.h"
#include "common/types.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace hxwar::app {

enum class StencilMode { kCollectiveOnly, kExchangeOnly, kFull };

struct StencilConfig {
  std::array<std::uint32_t, 3> grid = {4, 4, 4};  // process grid (product = P)
  std::uint64_t haloBytesPerNode = 100 * 1024;    // aggregate across 26 neighbors
  std::uint32_t collectiveBytes = 64;             // per collective message
  std::uint32_t iterations = 1;
  StencilMode mode = StencilMode::kFull;
  bool randomPlacement = true;  // the paper's placement policy
  bool periodic = true;         // wrap the grid so every process has 26 neighbors
  std::uint64_t seed = 21;
  MessageConfig message;
  // Area weights for face/edge/corner halo volumes (sub-cube edge length 4
  // elements by default: faces 16, edges 4, corners 1).
  std::uint32_t faceWeight = 16;
  std::uint32_t edgeWeight = 4;
  std::uint32_t cornerWeight = 1;
};

struct StencilResult {
  Tick makespan = 0;             // cycles until every process finished
  Tick exchangeCycles = 0;       // cumulative time processes spent exchanging
  Tick collectiveCycles = 0;     // cumulative time in collectives
  std::uint64_t messages = 0;    // total app messages
  std::uint64_t bytes = 0;       // total app bytes
};

class StencilApp {
 public:
  StencilApp(net::Network& network, StencilConfig config);

  // Runs the configured workload to completion; returns the result. The
  // network must be otherwise idle.
  StencilResult run();

  std::uint32_t numProcesses() const { return numProcs_; }
  NodeId nodeOf(std::uint32_t proc) const { return placement_[proc]; }

  // Neighbor volumes (bytes) per halo exchange, in neighbor-offset order.
  const std::vector<std::uint64_t>& neighborBytes() const { return neighborBytes_; }

 private:
  enum class Phase { kExchange, kCollective, kDone };

  struct Proc {
    Phase phase = Phase::kExchange;
    std::uint32_t iteration = 0;
    std::uint32_t round = 0;  // collective round
    // Per-iteration exchange accounting (neighbors may run ahead).
    std::vector<std::uint32_t> haloRecv;   // [iteration]
    std::vector<std::uint32_t> haloSent;   // [iteration] delivered sends
    // Per-(iteration, round) collective receive counters.
    std::vector<std::uint8_t> collRecv;    // [iteration * rounds + round]
    std::vector<std::uint8_t> collSent;    // delivered collective sends
  };

  void buildNeighbors();
  void placeProcesses();
  void startIteration(std::uint32_t proc);
  void startExchange(std::uint32_t proc);
  void startCollective(std::uint32_t proc);
  void sendCollectiveRound(std::uint32_t proc);
  void tryAdvance(std::uint32_t proc);
  void onDelivery(const Message& msg);
  std::uint64_t tagOf(std::uint32_t kind, std::uint32_t iter, std::uint32_t round) const;

  net::Network& network_;
  StencilConfig config_;
  std::uint32_t numProcs_;
  std::uint32_t rounds_;  // ceil(log2 P)
  MessageLayer messages_;

  std::vector<NodeId> placement_;         // proc -> node
  std::vector<std::uint32_t> procOfNode_; // node -> proc
  std::vector<std::vector<std::uint32_t>> neighbors_;  // proc -> 26 neighbor procs
  std::vector<std::uint64_t> neighborBytes_;           // per neighbor slot
  std::vector<Proc> procs_;

  std::uint32_t finished_ = 0;
  StencilResult result_;
  std::vector<Tick> phaseStart_;  // per proc, for phase-time accounting
};

// Parses "collective" / "exchange" / "full".
StencilMode stencilModeFromString(const std::string& s);

}  // namespace hxwar::app
