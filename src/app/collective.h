// Collective-communication algorithms over the message layer.
//
// The stencil model (§6.2) uses the dissemination algorithm [41]; the paper
// contrasts it with recursive doubling [42] ("very similar ... except that it
// is topology agnostic"). This engine implements three classic allreduce
// schedules as round-structured message exchanges so they can be compared
// under different routing algorithms:
//
//   dissemination      ceil(log2 P) rounds; send to ID±2^r, await both; works
//                      for any P
//   recursive-doubling log2 P rounds; exchange with partner ID xor 2^r;
//                      requires P a power of two
//   ring               2(P-1) rounds of neighbor exchange (reduce-scatter +
//                      allgather); bandwidth-optimal: each step moves
//                      bytes/P
//   all-to-all         P-1 rounds of the balanced personalized exchange:
//                      round r sends bytes/(P-1) to (ID + r + 1) mod P —
//                      the classic FFT/transpose communication
//
// Completion time is the makespan over all participating processes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "app/message.h"
#include "common/types.h"
#include "net/network.h"

namespace hxwar::app {

enum class CollectiveKind { kDissemination, kRecursiveDoubling, kRing, kAllToAll };

CollectiveKind collectiveKindFromString(const std::string& s);
std::string collectiveKindName(CollectiveKind kind);

struct CollectiveConfig {
  CollectiveKind kind = CollectiveKind::kDissemination;
  std::uint32_t processes = 0;     // 0 => all network nodes
  std::uint64_t bytes = 4096;      // total reduction payload per process
  std::uint32_t repetitions = 1;   // back-to-back collectives
  bool randomPlacement = true;
  std::uint64_t seed = 31;
  MessageConfig message;
};

struct CollectiveResult {
  Tick makespan = 0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint32_t rounds = 0;
};

class CollectiveApp {
 public:
  CollectiveApp(net::Network& network, CollectiveConfig config);

  // Runs the configured collective(s) to completion; network must be idle.
  CollectiveResult run();

  std::uint32_t numProcesses() const { return numProcs_; }
  std::uint32_t rounds() const { return rounds_; }

 private:
  struct RoundPlan {
    std::vector<std::uint32_t> sendTo;  // peers to message this round
    std::uint32_t expectRecv = 0;       // messages to await this round
    std::uint64_t bytes = 0;            // per message
  };

  void buildSchedule();
  void startRound(std::uint32_t proc);
  void tryAdvance(std::uint32_t proc);
  void onDelivery(const Message& msg);

  net::Network& network_;
  CollectiveConfig config_;
  std::uint32_t numProcs_;
  std::uint32_t rounds_ = 0;
  MessageLayer messages_;

  std::vector<NodeId> placement_;
  std::vector<std::uint32_t> procOfNode_;
  // schedule_[proc][round]
  std::vector<std::vector<RoundPlan>> schedule_;

  struct Proc {
    std::uint32_t repetition = 0;
    std::uint32_t round = 0;
    bool done = false;
    std::vector<std::uint16_t> recv;  // [repetition*rounds + round]
    std::vector<std::uint16_t> sent;  // delivered sends per slot
  };
  std::vector<Proc> procs_;
  std::uint32_t finished_ = 0;
  CollectiveResult result_;
};

}  // namespace hxwar::app
