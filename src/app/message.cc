#include "app/message.h"

#include "common/assert.h"

namespace hxwar::app {

MessageLayer::MessageLayer(net::Network& network, MessageConfig config)
    : network_(network), config_(config) {
  HXWAR_CHECK(config_.flitBytes >= 1 && config_.maxPacketFlits >= 1);
  network_.setListener(this);
}

MessageLayer::~MessageLayer() { network_.setListener(nullptr); }

std::uint32_t MessageLayer::flitsFor(std::uint64_t bytes) const {
  return static_cast<std::uint32_t>((bytes + config_.flitBytes - 1) / config_.flitBytes);
}

MessageId MessageLayer::send(NodeId src, NodeId dst, std::uint64_t bytes, std::uint64_t tag) {
  HXWAR_CHECK_MSG(src != dst, "message layer does not loop back self-sends");
  auto msg = std::make_unique<Message>();
  msg->id = nextId_++;
  msg->src = src;
  msg->dst = dst;
  msg->bytes = bytes;
  msg->tag = tag;
  msg->sentAt = network_.simulator().now();
  const std::uint32_t flits = std::max(1u, flitsFor(bytes));
  msg->packetsTotal = (flits + config_.maxPacketFlits - 1) / config_.maxPacketFlits;

  Message* raw = msg.get();
  inflight_.emplace(raw->id, std::move(msg));

  std::uint32_t remaining = flits;
  for (std::uint32_t i = 0; i < raw->packetsTotal; ++i) {
    const std::uint32_t size = std::min(remaining, config_.maxPacketFlits);
    remaining -= size;
    net::Packet& pkt = network_.injectPacket(src, dst, size);
    pkt.appMessage = raw;
    pkt.msgSeq = i;
  }
  return raw->id;
}

void MessageLayer::onPacketEjected(const net::Packet& pkt) {
  if (pkt.appMessage == nullptr) return;
  auto* msg = static_cast<Message*>(pkt.appMessage);
  msg->packetsArrived += 1;
  if (msg->packetsArrived < msg->packetsTotal) return;
  msg->deliveredAt = network_.simulator().now();
  delivered_ += 1;
  const auto it = inflight_.find(msg->id);
  HXWAR_CHECK(it != inflight_.end());
  // Move out so the handler can re-enter send() safely.
  const std::unique_ptr<Message> done = std::move(it->second);
  inflight_.erase(it);
  if (handler_) handler_(*done);
}

}  // namespace hxwar::app
