#include "app/stencil.h"

#include <algorithm>
#include <numeric>

#include "common/assert.h"

namespace hxwar::app {
namespace {

constexpr std::uint32_t kTagHalo = 1;
constexpr std::uint32_t kTagColl = 2;

std::uint32_t ceilLog2(std::uint32_t n) {
  std::uint32_t r = 0;
  while ((1u << r) < n) ++r;
  return r;
}

}  // namespace

StencilMode stencilModeFromString(const std::string& s) {
  if (s == "collective") return StencilMode::kCollectiveOnly;
  if (s == "exchange") return StencilMode::kExchangeOnly;
  if (s == "full") return StencilMode::kFull;
  HXWAR_CHECK_MSG(false, ("unknown stencil mode: " + s).c_str());
  return StencilMode::kFull;
}

StencilApp::StencilApp(net::Network& network, StencilConfig config)
    : network_(network),
      config_(config),
      numProcs_(config.grid[0] * config.grid[1] * config.grid[2]),
      rounds_(ceilLog2(numProcs_)),
      messages_(network, config.message) {
  HXWAR_CHECK_MSG(numProcs_ >= 2, "stencil needs at least two processes");
  HXWAR_CHECK_MSG(numProcs_ <= network.numNodes(),
                  "more stencil processes than network nodes");
  buildNeighbors();
  placeProcesses();
  procs_.resize(numProcs_);
  phaseStart_.assign(numProcs_, 0);
  for (auto& p : procs_) {
    p.haloRecv.assign(config_.iterations, 0);
    p.haloSent.assign(config_.iterations, 0);
    p.collRecv.assign(static_cast<std::size_t>(config_.iterations) * std::max(rounds_, 1u), 0);
    p.collSent.assign(static_cast<std::size_t>(config_.iterations) * std::max(rounds_, 1u), 0);
  }
  messages_.setDeliveryHandler([this](const Message& m) { onDelivery(m); });
}

void StencilApp::buildNeighbors() {
  const auto& g = config_.grid;
  // Halo volume per neighbor class, normalized to haloBytesPerNode.
  const std::uint64_t weightTotal = 6ull * config_.faceWeight + 12ull * config_.edgeWeight +
                                    8ull * config_.cornerWeight;
  const auto bytesFor = [&](std::uint32_t w) {
    return std::max<std::uint64_t>(1, config_.haloBytesPerNode * w / weightTotal);
  };

  neighbors_.resize(numProcs_);
  neighborBytes_.clear();
  for (int dz = -1; dz <= 1; ++dz) {
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        if (dx == 0 && dy == 0 && dz == 0) continue;
        const int manhattan = std::abs(dx) + std::abs(dy) + std::abs(dz);
        const std::uint32_t w = manhattan == 1   ? config_.faceWeight
                                : manhattan == 2 ? config_.edgeWeight
                                                 : config_.cornerWeight;
        neighborBytes_.push_back(bytesFor(w));
      }
    }
  }

  const auto at = [&](std::uint32_t x, std::uint32_t y, std::uint32_t z) {
    return (z * g[1] + y) * g[0] + x;
  };
  for (std::uint32_t z = 0; z < g[2]; ++z) {
    for (std::uint32_t y = 0; y < g[1]; ++y) {
      for (std::uint32_t x = 0; x < g[0]; ++x) {
        auto& list = neighbors_[at(x, y, z)];
        for (int dz = -1; dz <= 1; ++dz) {
          for (int dy = -1; dy <= 1; ++dy) {
            for (int dx = -1; dx <= 1; ++dx) {
              if (dx == 0 && dy == 0 && dz == 0) continue;
              // Periodic wrap keeps every process at 26 neighbors (Fig. 7b);
              // without wrap, boundary processes get kNodeInvalid slots.
              const int nx = static_cast<int>(x) + dx;
              const int ny = static_cast<int>(y) + dy;
              const int nz = static_cast<int>(z) + dz;
              const bool inside = nx >= 0 && ny >= 0 && nz >= 0 &&
                                  nx < static_cast<int>(g[0]) &&
                                  ny < static_cast<int>(g[1]) &&
                                  nz < static_cast<int>(g[2]);
              if (!inside && !config_.periodic) {
                list.push_back(kNodeInvalid);
                continue;
              }
              const std::uint32_t wx = (nx + g[0]) % g[0];
              const std::uint32_t wy = (ny + g[1]) % g[1];
              const std::uint32_t wz = (nz + g[2]) % g[2];
              const std::uint32_t peer = at(wx, wy, wz);
              // Degenerate grids (width 1 or 2) can wrap onto self; skip.
              list.push_back(peer == at(x, y, z) ? kNodeInvalid : peer);
            }
          }
        }
      }
    }
  }
}

void StencilApp::placeProcesses() {
  placement_.resize(numProcs_);
  std::iota(placement_.begin(), placement_.end(), 0u);
  if (config_.randomPlacement) {
    // Random placement over all network nodes (the paper's policy).
    std::vector<NodeId> nodes(network_.numNodes());
    std::iota(nodes.begin(), nodes.end(), 0u);
    Rng rng(config_.seed);
    rng.shuffle(nodes);
    for (std::uint32_t p = 0; p < numProcs_; ++p) placement_[p] = nodes[p];
  }
  procOfNode_.assign(network_.numNodes(), kNodeInvalid);
  for (std::uint32_t p = 0; p < numProcs_; ++p) procOfNode_[placement_[p]] = p;
}

std::uint64_t StencilApp::tagOf(std::uint32_t kind, std::uint32_t iter,
                                std::uint32_t round) const {
  return (static_cast<std::uint64_t>(kind) << 40) |
         (static_cast<std::uint64_t>(iter) << 20) | round;
}

void StencilApp::startIteration(std::uint32_t proc) {
  if (config_.mode == StencilMode::kCollectiveOnly) {
    startCollective(proc);
  } else {
    startExchange(proc);
  }
}

void StencilApp::startExchange(std::uint32_t proc) {
  Proc& p = procs_[proc];
  p.phase = Phase::kExchange;
  phaseStart_[proc] = network_.simulator().now();
  const std::uint32_t iter = p.iteration;
  std::uint32_t skipped = 0;
  for (std::size_t s = 0; s < neighbors_[proc].size(); ++s) {
    const std::uint32_t peer = neighbors_[proc][s];
    if (peer == kNodeInvalid || placement_[peer] == placement_[proc]) {
      ++skipped;
      continue;
    }
    messages_.send(placement_[proc], placement_[peer], neighborBytes_[s],
                   tagOf(kTagHalo, iter, 0));
    result_.messages += 1;
    result_.bytes += neighborBytes_[s];
  }
  // Missing neighbors (non-periodic boundaries) count as already satisfied,
  // both for our sends and for the receives we will never get.
  p.haloSent[iter] += skipped;
  p.haloRecv[iter] += skipped;
  tryAdvance(proc);
}

void StencilApp::startCollective(std::uint32_t proc) {
  Proc& p = procs_[proc];
  p.phase = Phase::kCollective;
  p.round = 0;
  phaseStart_[proc] = network_.simulator().now();
  if (rounds_ == 0) {
    tryAdvance(proc);
    return;
  }
  sendCollectiveRound(proc);
}

void StencilApp::sendCollectiveRound(std::uint32_t proc) {
  Proc& p = procs_[proc];
  const std::uint32_t k = 1u << p.round;
  const std::uint32_t up = (proc + k) % numProcs_;
  const std::uint32_t down = (proc + numProcs_ - k) % numProcs_;
  // Dissemination allreduce (Fig. 7c): send to ID+2^r and ID-2^r.
  for (const std::uint32_t peer : {up, down}) {
    messages_.send(placement_[proc], placement_[peer], config_.collectiveBytes,
                   tagOf(kTagColl, p.iteration, p.round));
    result_.messages += 1;
    result_.bytes += config_.collectiveBytes;
  }
}

void StencilApp::tryAdvance(std::uint32_t proc) {
  Proc& p = procs_[proc];
  bool progressed = true;
  while (progressed && p.phase != Phase::kDone) {
    progressed = false;
    const Tick now = network_.simulator().now();
    if (p.phase == Phase::kExchange) {
      if (p.haloRecv[p.iteration] == 26 && p.haloSent[p.iteration] == 26) {
        result_.exchangeCycles += now - phaseStart_[proc];
        if (config_.mode == StencilMode::kFull) {
          startCollective(proc);
        } else {
          p.iteration += 1;
          if (p.iteration == config_.iterations) {
            p.phase = Phase::kDone;
          } else {
            startExchange(proc);
          }
        }
        progressed = true;
      }
    } else if (p.phase == Phase::kCollective) {
      const std::size_t slot =
          static_cast<std::size_t>(p.iteration) * std::max(rounds_, 1u) + p.round;
      const bool roundDone =
          rounds_ == 0 || (p.collRecv[slot] >= 2 && p.collSent[slot] >= 2);
      if (roundDone) {
        p.round += 1;
        if (rounds_ != 0 && p.round < rounds_) {
          sendCollectiveRound(proc);
        } else {
          result_.collectiveCycles += now - phaseStart_[proc];
          p.iteration += 1;
          if (p.iteration == config_.iterations) {
            p.phase = Phase::kDone;
          } else {
            startIteration(proc);
          }
        }
        progressed = true;
      }
    }
  }
  if (p.phase == Phase::kDone && !p.haloRecv.empty()) {
    // Count each process exactly once: mark by clearing the recv vector.
    p.haloRecv.clear();
    finished_ += 1;
    if (finished_ == numProcs_) result_.makespan = network_.simulator().now();
  }
}

void StencilApp::onDelivery(const Message& msg) {
  const std::uint32_t kind = static_cast<std::uint32_t>(msg.tag >> 40);
  const std::uint32_t iter = static_cast<std::uint32_t>((msg.tag >> 20) & 0xfffff);
  const std::uint32_t round = static_cast<std::uint32_t>(msg.tag & 0xfffff);
  const std::uint32_t sender = procOfNode_[msg.src];
  const std::uint32_t receiver = procOfNode_[msg.dst];
  HXWAR_CHECK(sender != kNodeInvalid && receiver != kNodeInvalid);
  if (kind == kTagHalo) {
    procs_[sender].haloSent[iter] += 1;
    procs_[receiver].haloRecv[iter] += 1;
  } else {
    const std::size_t slot = static_cast<std::size_t>(iter) * std::max(rounds_, 1u) + round;
    procs_[sender].collSent[slot] += 1;
    procs_[receiver].collRecv[slot] += 1;
  }
  tryAdvance(sender);
  if (receiver != sender) tryAdvance(receiver);
}

StencilResult StencilApp::run() {
  auto& sim = network_.simulator();
  for (std::uint32_t p = 0; p < numProcs_; ++p) startIteration(p);

  // Event-driven to completion, with a stall watchdog.
  while (finished_ < numProcs_) {
    const std::uint64_t movesBefore = network_.flitMovements();
    const std::uint64_t eventsBefore = sim.eventsProcessed();
    sim.run(sim.now() + 50000);
    if (finished_ == numProcs_) break;
    HXWAR_CHECK_MSG(network_.flitMovements() != movesBefore ||
                        sim.eventsProcessed() != eventsBefore,
                    "stencil application stalled — possible deadlock");
  }
  return result_;
}

}  // namespace hxwar::app
