// Message layer: segments application messages into packets, injects them
// through terminals, and reports delivery when the last packet reaches the
// destination. This is the substrate for the 27-point stencil model (§6.2).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "common/types.h"
#include "net/network.h"

namespace hxwar::app {

struct MessageConfig {
  std::uint32_t flitBytes = 64;      // payload bytes per flit
  std::uint32_t maxPacketFlits = 16; // segmentation limit (matches §6.1 sizes)
};

struct Message {
  MessageId id = 0;
  NodeId src = kNodeInvalid;
  NodeId dst = kNodeInvalid;
  std::uint64_t bytes = 0;
  std::uint64_t tag = 0;  // application-defined (phase/iteration/round)
  std::uint32_t packetsTotal = 0;
  std::uint32_t packetsArrived = 0;
  Tick sentAt = 0;
  Tick deliveredAt = kTickInvalid;
};

// Owns in-flight messages. Installs itself as the network's lifecycle
// listener; synthetic injectors must not be used concurrently.
class MessageLayer final : public net::NetListener {
 public:
  // Called when the final packet of a message is ejected at the destination.
  using DeliveryHandler = std::function<void(const Message&)>;

  MessageLayer(net::Network& network, MessageConfig config);
  ~MessageLayer();

  MessageLayer(const MessageLayer&) = delete;
  MessageLayer& operator=(const MessageLayer&) = delete;

  void setDeliveryHandler(DeliveryHandler handler) { handler_ = std::move(handler); }

  // Sends `bytes` from src to dst; at least one packet is always emitted.
  MessageId send(NodeId src, NodeId dst, std::uint64_t bytes, std::uint64_t tag);

  std::uint64_t messagesInFlight() const { return inflight_.size(); }
  std::uint64_t messagesDelivered() const { return delivered_; }
  const MessageConfig& config() const { return config_; }

  // Flits needed for `bytes` of payload.
  std::uint32_t flitsFor(std::uint64_t bytes) const;

  void onPacketEjected(const net::Packet& pkt) override;

 private:
  net::Network& network_;
  MessageConfig config_;
  DeliveryHandler handler_;
  std::unordered_map<MessageId, std::unique_ptr<Message>> inflight_;
  MessageId nextId_ = 1;
  std::uint64_t delivered_ = 0;
};

}  // namespace hxwar::app
