#include "app/collective.h"

#include <numeric>

#include "common/assert.h"
#include "common/rng.h"

namespace hxwar::app {
namespace {

std::uint32_t ceilLog2(std::uint32_t n) {
  std::uint32_t r = 0;
  while ((1u << r) < n) ++r;
  return r;
}

bool isPow2(std::uint32_t n) { return n != 0 && (n & (n - 1)) == 0; }

}  // namespace

CollectiveKind collectiveKindFromString(const std::string& s) {
  if (s == "dissemination") return CollectiveKind::kDissemination;
  if (s == "recursive-doubling" || s == "rd") return CollectiveKind::kRecursiveDoubling;
  if (s == "ring") return CollectiveKind::kRing;
  if (s == "all-to-all" || s == "a2a") return CollectiveKind::kAllToAll;
  HXWAR_CHECK_MSG(false, ("unknown collective: " + s).c_str());
  return CollectiveKind::kDissemination;
}

std::string collectiveKindName(CollectiveKind kind) {
  switch (kind) {
    case CollectiveKind::kDissemination: return "dissemination";
    case CollectiveKind::kRecursiveDoubling: return "recursive-doubling";
    case CollectiveKind::kRing: return "ring";
    case CollectiveKind::kAllToAll: return "all-to-all";
  }
  return "?";
}

CollectiveApp::CollectiveApp(net::Network& network, CollectiveConfig config)
    : network_(network),
      config_(config),
      numProcs_(config.processes == 0 ? network.numNodes() : config.processes),
      messages_(network, config.message) {
  HXWAR_CHECK_MSG(numProcs_ >= 2, "collective needs at least two processes");
  HXWAR_CHECK_MSG(numProcs_ <= network.numNodes(), "more processes than nodes");
  if (config_.kind == CollectiveKind::kRecursiveDoubling) {
    HXWAR_CHECK_MSG(isPow2(numProcs_), "recursive doubling needs a power-of-two P");
  }

  placement_.resize(numProcs_);
  std::iota(placement_.begin(), placement_.end(), 0u);
  if (config_.randomPlacement) {
    std::vector<NodeId> nodes(network.numNodes());
    std::iota(nodes.begin(), nodes.end(), 0u);
    Rng rng(config_.seed);
    rng.shuffle(nodes);
    for (std::uint32_t p = 0; p < numProcs_; ++p) placement_[p] = nodes[p];
  }
  procOfNode_.assign(network.numNodes(), kNodeInvalid);
  for (std::uint32_t p = 0; p < numProcs_; ++p) procOfNode_[placement_[p]] = p;

  buildSchedule();
  procs_.resize(numProcs_);
  const std::size_t slots = static_cast<std::size_t>(config_.repetitions) * rounds_;
  for (auto& p : procs_) {
    p.recv.assign(slots, 0);
    p.sent.assign(slots, 0);
  }
  messages_.setDeliveryHandler([this](const Message& m) { onDelivery(m); });
}

void CollectiveApp::buildSchedule() {
  schedule_.assign(numProcs_, {});
  switch (config_.kind) {
    case CollectiveKind::kDissemination: {
      rounds_ = ceilLog2(numProcs_);
      for (std::uint32_t p = 0; p < numProcs_; ++p) {
        for (std::uint32_t r = 0; r < rounds_; ++r) {
          const std::uint32_t k = 1u << r;
          RoundPlan plan;
          plan.sendTo = {(p + k) % numProcs_, (p + numProcs_ - k) % numProcs_};
          plan.expectRecv = 2;
          plan.bytes = config_.bytes;  // whole value each round
          schedule_[p].push_back(std::move(plan));
        }
      }
      break;
    }
    case CollectiveKind::kRecursiveDoubling: {
      rounds_ = ceilLog2(numProcs_);
      for (std::uint32_t p = 0; p < numProcs_; ++p) {
        for (std::uint32_t r = 0; r < rounds_; ++r) {
          RoundPlan plan;
          plan.sendTo = {p ^ (1u << r)};
          plan.expectRecv = 1;
          plan.bytes = config_.bytes;
          schedule_[p].push_back(std::move(plan));
        }
      }
      break;
    }
    case CollectiveKind::kRing: {
      rounds_ = 2 * (numProcs_ - 1);  // reduce-scatter + allgather
      const std::uint64_t chunk = std::max<std::uint64_t>(1, config_.bytes / numProcs_);
      for (std::uint32_t p = 0; p < numProcs_; ++p) {
        for (std::uint32_t r = 0; r < rounds_; ++r) {
          RoundPlan plan;
          plan.sendTo = {(p + 1) % numProcs_};
          plan.expectRecv = 1;  // from p-1
          plan.bytes = chunk;
          schedule_[p].push_back(std::move(plan));
        }
      }
      break;
    }
    case CollectiveKind::kAllToAll: {
      // Balanced personalized exchange: in round r everyone sends to
      // (p + r + 1) mod P and receives from (p - r - 1) mod P.
      rounds_ = numProcs_ - 1;
      const std::uint64_t chunk =
          std::max<std::uint64_t>(1, config_.bytes / (numProcs_ - 1));
      for (std::uint32_t p = 0; p < numProcs_; ++p) {
        for (std::uint32_t r = 0; r < rounds_; ++r) {
          RoundPlan plan;
          plan.sendTo = {(p + r + 1) % numProcs_};
          plan.expectRecv = 1;
          plan.bytes = chunk;
          schedule_[p].push_back(std::move(plan));
        }
      }
      break;
    }
  }
}

void CollectiveApp::startRound(std::uint32_t proc) {
  Proc& p = procs_[proc];
  const RoundPlan& plan = schedule_[proc][p.round];
  const std::uint64_t tag =
      (static_cast<std::uint64_t>(p.repetition) << 20) | p.round;
  for (const std::uint32_t peer : plan.sendTo) {
    messages_.send(placement_[proc], placement_[peer], plan.bytes, tag);
    result_.messages += 1;
    result_.bytes += plan.bytes;
  }
}

void CollectiveApp::tryAdvance(std::uint32_t proc) {
  Proc& p = procs_[proc];
  while (!p.done) {
    const std::size_t slot = static_cast<std::size_t>(p.repetition) * rounds_ + p.round;
    const RoundPlan& plan = schedule_[proc][p.round];
    if (p.recv[slot] < plan.expectRecv ||
        p.sent[slot] < static_cast<std::uint16_t>(plan.sendTo.size())) {
      return;  // round incomplete
    }
    p.round += 1;
    if (p.round < rounds_) {
      startRound(proc);
      continue;
    }
    p.round = 0;
    p.repetition += 1;
    if (p.repetition < config_.repetitions) {
      startRound(proc);
      continue;
    }
    p.done = true;
    finished_ += 1;
    if (finished_ == numProcs_) result_.makespan = network_.simulator().now();
  }
}

void CollectiveApp::onDelivery(const Message& msg) {
  const auto rep = static_cast<std::uint32_t>(msg.tag >> 20);
  const auto round = static_cast<std::uint32_t>(msg.tag & 0xfffff);
  const std::uint32_t sender = procOfNode_[msg.src];
  const std::uint32_t receiver = procOfNode_[msg.dst];
  const std::size_t slot = static_cast<std::size_t>(rep) * rounds_ + round;
  procs_[sender].sent[slot] += 1;
  procs_[receiver].recv[slot] += 1;
  tryAdvance(sender);
  if (receiver != sender) tryAdvance(receiver);
}

CollectiveResult CollectiveApp::run() {
  result_.rounds = rounds_;
  auto& sim = network_.simulator();
  for (std::uint32_t p = 0; p < numProcs_; ++p) startRound(p);
  while (finished_ < numProcs_) {
    const auto movesBefore = network_.flitMovements();
    const auto eventsBefore = sim.eventsProcessed();
    sim.run(sim.now() + 50000);
    if (finished_ == numProcs_) break;
    HXWAR_CHECK_MSG(network_.flitMovements() != movesBefore ||
                        sim.eventsProcessed() != eventsBefore,
                    "collective stalled — possible deadlock");
  }
  return result_;
}

}  // namespace hxwar::app
