// Deterministic, fast pseudo-random number generation.
//
// Simulation reproducibility requires that every stochastic decision be
// derived from an explicitly seeded stream. We provide SplitMix64 for seed
// expansion and xoshiro256** as the workhorse generator, plus convenience
// helpers for the distributions the simulator needs (uniform ints, Bernoulli,
// shuffles). std::mt19937 is avoided: it is slower and its distributions are
// not bit-reproducible across standard library implementations.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace hxwar {

// SplitMix64: used to expand a single 64-bit seed into generator state and to
// derive independent per-component seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// xoshiro256**: public-domain generator by Blackman & Vigna.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x8f1bbcdcbfa53e0bULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t below(std::uint64_t bound);

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  // Uniform double in [0, 1).
  double uniform();

  // True with probability p.
  bool chance(double p) { return uniform() < p; }

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  // Pick a uniformly random element index; container must be non-empty.
  template <typename C>
  std::size_t pickIndex(const C& c) {
    return static_cast<std::size_t>(below(c.size()));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace hxwar
