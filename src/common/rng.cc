#include "common/rng.h"

#include <cassert>

namespace hxwar {

std::uint64_t Rng::below(std::uint64_t bound) {
  assert(bound > 0 && "Rng::below bound must be positive");
  // Lemire's nearly-divisionless method.
  __uint128_t m = static_cast<__uint128_t>(next()) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      m = static_cast<__uint128_t>(next()) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform() {
  // 53 random mantissa bits -> uniform in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

}  // namespace hxwar
