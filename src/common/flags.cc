#include "common/flags.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string_view>

namespace hxwar {
namespace {

bool looksLikeFlag(std::string_view arg) {
  return arg.size() > 2 && arg.substr(0, 2) == "--";
}

}  // namespace

bool Flags::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (!looksLikeFlag(arg)) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    const auto eq = arg.find('=');
    if (eq != std::string_view::npos) {
      values_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
      continue;
    }
    // --no-foo => foo=false
    if (arg.substr(0, 3) == "no-") {
      values_[std::string(arg.substr(3))] = "false";
      continue;
    }
    // --foo value (if next token is not a flag), else boolean --foo
    if (i + 1 < argc && !looksLikeFlag(argv[i + 1])) {
      values_[std::string(arg)] = argv[++i];
    } else {
      values_[std::string(arg)] = "true";
    }
  }
  return true;
}

namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

}  // namespace

bool Flags::loadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open config file: %s\n", path.c_str());
    return false;
  }
  return loadStream(in);
}

bool Flags::loadText(const std::string& text) {
  std::istringstream in(text);
  return loadStream(in);
}

bool Flags::loadStream(std::istream& in) {
  std::string line;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const std::string t = trim(line);
    if (t.empty()) continue;
    const auto eq = t.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr, "malformed config line (expected key = value): %s\n", t.c_str());
      return false;
    }
    const std::string key = trim(t.substr(0, eq));
    const std::string value = trim(t.substr(eq + 1));
    if (key.empty()) return false;
    values_.emplace(key, value);  // command-line values win (no overwrite)
  }
  return true;
}

std::optional<std::string> Flags::raw(const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Flags::str(const std::string& name, const std::string& fallback) const {
  return raw(name).value_or(fallback);
}

std::int64_t Flags::i64(const std::string& name, std::int64_t fallback) const {
  const auto v = raw(name);
  return v ? std::strtoll(v->c_str(), nullptr, 0) : fallback;
}

std::uint64_t Flags::u64(const std::string& name, std::uint64_t fallback) const {
  const auto v = raw(name);
  return v ? std::strtoull(v->c_str(), nullptr, 0) : fallback;
}

double Flags::f64(const std::string& name, double fallback) const {
  const auto v = raw(name);
  return v ? std::strtod(v->c_str(), nullptr) : fallback;
}

bool Flags::b(const std::string& name, bool fallback) const {
  const auto v = raw(name);
  if (!v) return fallback;
  return !(*v == "false" || *v == "0" || *v == "no" || *v == "off");
}

std::vector<double> Flags::f64List(const std::string& name,
                                   const std::vector<double>& fallback) const {
  const auto v = raw(name);
  if (!v) return fallback;
  std::vector<double> out;
  const char* p = v->c_str();
  char* end = nullptr;
  while (*p != '\0') {
    const double d = std::strtod(p, &end);
    if (end == p) break;
    out.push_back(d);
    p = (*end == ',') ? end + 1 : end;
  }
  return out;
}

}  // namespace hxwar
