// Ring: a growable FIFO of trivially-copyable records, the storage behind
// every hot queue in the network core (input/output VC buffers, channel
// pipes, crossbar pipes, source queues).
//
// Why not std::deque: libstdc++ allocates a ~512-byte node per deque even
// when empty, and the paper-scale network (4,096 nodes, 8x8x8 HyperX) holds
// hundreds of thousands of VC queues — almost all empty at any instant. A
// Ring is 16 bytes of header and allocates nothing until the first push;
// after that it doubles a single flat buffer (power-of-two capacity, masked
// indices). FIFO order is identical to a deque's, and capacity never
// influences behavior, so swapping one for the other is replay-invisible.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>

#include "common/assert.h"

namespace hxwar::common {

template <typename T>
class Ring {
  static_assert(std::is_trivially_copyable_v<T>,
                "Ring is memcpy-grown; element type must be trivially copyable");

 public:
  Ring() = default;

  bool empty() const { return count_ == 0; }
  std::uint32_t size() const { return count_; }

  const T& front() const {
    HXWAR_DCHECK(count_ > 0);
    return data_[head_];
  }

  // Index 0 is the front (FIFO order), matching deque::operator[].
  const T& operator[](std::uint32_t i) const {
    HXWAR_DCHECK(i < count_);
    return data_[(head_ + i) & (cap_ - 1)];
  }

  void push_back(const T& v) {
    if (count_ == cap_) grow();
    data_[(head_ + count_) & (cap_ - 1)] = v;
    count_ += 1;
  }

  void pop_front() {
    HXWAR_DCHECK(count_ > 0);
    head_ = (head_ + 1) & (cap_ - 1);
    count_ -= 1;
  }

  // Bytes owned by the backing buffer (memory-accounting hook).
  std::size_t capacityBytes() const { return static_cast<std::size_t>(cap_) * sizeof(T); }
  std::uint32_t capacity() const { return cap_; }

 private:
  void grow() {
    const std::uint32_t newCap = cap_ == 0 ? 4 : cap_ * 2;
    auto next = std::make_unique<T[]>(newCap);
    // Linearize: front moves to slot 0 so the masked arithmetic stays valid.
    for (std::uint32_t i = 0; i < count_; ++i) {
      next[i] = data_[(head_ + i) & (cap_ - 1)];
    }
    data_ = std::move(next);
    head_ = 0;
    cap_ = newCap;
  }

  std::unique_ptr<T[]> data_;
  std::uint32_t head_ = 0;
  std::uint32_t count_ = 0;
  std::uint32_t cap_ = 0;  // always a power of two (or 0 before first push)
};

}  // namespace hxwar::common
