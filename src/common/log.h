// Minimal leveled logging. The simulator is performance sensitive, so debug
// logging compiles to a cheap level check and is disabled by default.
#pragma once

#include <cstdio>
#include <string>

namespace hxwar {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

class Log {
 public:
  static void setLevel(LogLevel level) { level_ = level; }
  static LogLevel level() { return level_; }
  static bool enabled(LogLevel level) { return level >= level_; }

  template <typename... Args>
  static void write(LogLevel level, const char* fmt, Args... args) {
    if (!enabled(level)) return;
    std::fprintf(stderr, "[%s] ", name(level));
    std::fprintf(stderr, fmt, args...);
    std::fputc('\n', stderr);
  }

  static void write(LogLevel level, const char* msg) {
    if (!enabled(level)) return;
    std::fprintf(stderr, "[%s] %s\n", name(level), msg);
  }

 private:
  static const char* name(LogLevel level) {
    switch (level) {
      case LogLevel::kDebug: return "debug";
      case LogLevel::kInfo: return "info";
      case LogLevel::kWarn: return "warn";
      case LogLevel::kError: return "error";
    }
    return "?";
  }

  static inline LogLevel level_ = LogLevel::kWarn;
};

#define HXWAR_LOG_DEBUG(...) ::hxwar::Log::write(::hxwar::LogLevel::kDebug, __VA_ARGS__)
#define HXWAR_LOG_INFO(...) ::hxwar::Log::write(::hxwar::LogLevel::kInfo, __VA_ARGS__)
#define HXWAR_LOG_WARN(...) ::hxwar::Log::write(::hxwar::LogLevel::kWarn, __VA_ARGS__)
#define HXWAR_LOG_ERROR(...) ::hxwar::Log::write(::hxwar::LogLevel::kError, __VA_ARGS__)

}  // namespace hxwar
