// Always-on invariant checks. The simulator's correctness arguments (credit
// conservation, VC-class monotonicity, deadlock freedom) rely on these firing
// in release builds too, so they are not compiled out like <cassert>.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace hxwar::detail {

[[noreturn]] inline void checkFailed(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] != '\0' ? " — " : "", msg);
  std::abort();
}

}  // namespace hxwar::detail

#define HXWAR_CHECK(expr)                                               \
  do {                                                                  \
    if (!(expr)) ::hxwar::detail::checkFailed(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define HXWAR_CHECK_MSG(expr, msg)                                       \
  do {                                                                   \
    if (!(expr)) ::hxwar::detail::checkFailed(#expr, __FILE__, __LINE__, msg); \
  } while (false)
