// Always-on invariant checks. The simulator's correctness arguments (credit
// conservation, VC-class monotonicity, deadlock freedom) rely on these firing
// in release builds too, so they are not compiled out like <cassert>.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace hxwar::detail {

[[noreturn]] inline void checkFailed(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] != '\0' ? " — " : "", msg);
  std::abort();
}

}  // namespace hxwar::detail

#define HXWAR_CHECK(expr)                                               \
  do {                                                                  \
    if (!(expr)) ::hxwar::detail::checkFailed(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define HXWAR_CHECK_MSG(expr, msg)                                       \
  do {                                                                   \
    if (!(expr)) ::hxwar::detail::checkFailed(#expr, __FILE__, __LINE__, msg); \
  } while (false)

// Debug-only variants for per-event hot paths (event scheduling, channel
// drains): the conditions they guard are exercised by the Debug test suite
// and the event-queue property test, and a branch on every single event push
// is measurable at the simulator's event rates. Release builds (NDEBUG)
// compile them out entirely; expressions must be side-effect free.
#ifdef NDEBUG
#define HXWAR_DCHECK(expr) \
  do {                     \
  } while (false)
#define HXWAR_DCHECK_MSG(expr, msg) \
  do {                              \
  } while (false)
#else
#define HXWAR_DCHECK(expr) HXWAR_CHECK(expr)
#define HXWAR_DCHECK_MSG(expr, msg) HXWAR_CHECK_MSG(expr, msg)
#endif
