// DenseArray: contiguous, index-addressed storage for non-movable objects.
//
// The network core keeps routers, terminals, and channels in DenseArrays
// indexed by RouterId/NodeId/ChannelId instead of vectors of unique_ptr: one
// allocation per kind, elements laid out back-to-back (the iteration order of
// the wiring and teardown loops is the memory order), and a dense integer is
// the element's identity — which is what later lets router state shard across
// workers (IDs partition; heap pointers don't).
//
// sim::Component subclasses are neither copyable nor movable (they hand their
// `this` to the event queue), so std::vector cannot hold them. DenseArray
// sidesteps the MoveInsertable requirement: capacity is fixed once by
// reserve(), emplace_back() placement-constructs in order, and elements are
// destroyed in reverse construction order. Addresses are stable for the
// array's lifetime.
#pragma once

#include <cstddef>
#include <new>
#include <utility>

#include "common/assert.h"

namespace hxwar::common {

template <typename T>
class DenseArray {
 public:
  DenseArray() = default;
  ~DenseArray() { clear(); }

  DenseArray(const DenseArray&) = delete;
  DenseArray& operator=(const DenseArray&) = delete;

  // Allocates storage for exactly `capacity` elements. Must be called once,
  // before any emplace_back; a zero capacity keeps the array empty.
  void reserve(std::size_t capacity) {
    HXWAR_CHECK_MSG(data_ == nullptr && size_ == 0, "DenseArray::reserve called twice");
    if (capacity == 0) return;
    data_ = static_cast<T*>(
        ::operator new(capacity * sizeof(T), std::align_val_t(alignof(T))));
    capacity_ = capacity;
  }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    HXWAR_CHECK_MSG(size_ < capacity_, "DenseArray full: reserve() must size exactly");
    T* slot = new (data_ + size_) T(std::forward<Args>(args)...);
    size_ += 1;
    return *slot;
  }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  // Bytes owned by the backing allocation (memory-accounting hook).
  std::size_t capacityBytes() const { return capacity_ * sizeof(T); }

  void clear() {
    while (size_ > 0) {
      size_ -= 1;
      data_[size_].~T();
    }
    if (data_ != nullptr) {
      ::operator delete(data_, std::align_val_t(alignof(T)));
      data_ = nullptr;
      capacity_ = 0;
    }
  }

 private:
  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace hxwar::common
