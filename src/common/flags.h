// Tiny command-line flag parser used by benches and examples.
//
// Supports --name=value, --name value, and boolean --name / --no-name forms,
// plus `name = value` config files (# comments). Command-line values override
// file values so configs serve as defaults.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace hxwar {

class Flags {
 public:
  // Parses argv. Returns false (and prints to stderr) on malformed input.
  bool parse(int argc, const char* const* argv);

  // Loads `name = value` lines from a config file; existing keys (e.g. from
  // the command line) win. Returns false if the file cannot be read.
  bool loadFile(const std::string& path);

  // Same parsing for in-memory config text (e.g. ExperimentSpec::serialize()).
  bool loadText(const std::string& text);

  bool has(const std::string& name) const { return values_.count(name) > 0; }

  // Programmatic assignment (overwrites), for specs built from code rather
  // than a command line.
  void set(const std::string& name, const std::string& value) { values_[name] = value; }

  std::string str(const std::string& name, const std::string& fallback) const;
  std::int64_t i64(const std::string& name, std::int64_t fallback) const;
  std::uint64_t u64(const std::string& name, std::uint64_t fallback) const;
  double f64(const std::string& name, double fallback) const;
  bool b(const std::string& name, bool fallback) const;

  // Comma-separated list of doubles, e.g. --loads=0.1,0.2,0.3
  std::vector<double> f64List(const std::string& name,
                              const std::vector<double>& fallback) const;

  // Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  // All parsed flags, for echoing configuration into experiment output.
  const std::map<std::string, std::string>& all() const { return values_; }

 private:
  std::optional<std::string> raw(const std::string& name) const;
  bool loadStream(std::istream& in);

  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace hxwar
