// Fundamental identifier and time types shared by every library in the
// repository. Kept header-only and dependency-free.
#pragma once

#include <cstdint>
#include <limits>

namespace hxwar {

// Simulation time in cycles. One cycle is one flit time on a channel; the
// paper's physical parameters (50 ns crossbar, 50 ns inter-router channels)
// map onto cycles by the configuration layer.
using Tick = std::uint64_t;

constexpr Tick kTickInvalid = std::numeric_limits<Tick>::max();

// Network-wide unique identifiers.
using NodeId = std::uint32_t;     // terminal/endpoint id
using RouterId = std::uint32_t;   // router id
using PortId = std::uint32_t;     // port index within a router
using VcId = std::uint32_t;       // virtual channel index within a port
using ChannelId = std::uint32_t;  // index into the network's dense channel arrays
using PacketId = std::uint64_t;   // globally unique packet id
using MessageId = std::uint64_t;  // globally unique application message id

// Arena slot of a live packet in the network's packet slab (net::PacketPool).
// Flits and source queues carry this 4-byte ref instead of a Packet*: slots
// are dense, stable across pool recycling, and partitionable across workers.
using PacketRef = std::uint32_t;

constexpr NodeId kNodeInvalid = std::numeric_limits<NodeId>::max();
constexpr RouterId kRouterInvalid = std::numeric_limits<RouterId>::max();
constexpr PortId kPortInvalid = std::numeric_limits<PortId>::max();
constexpr VcId kVcInvalid = std::numeric_limits<VcId>::max();
constexpr ChannelId kChannelInvalid = std::numeric_limits<ChannelId>::max();
constexpr PacketRef kPacketRefInvalid = std::numeric_limits<PacketRef>::max();

}  // namespace hxwar
