// hxwar::Error — the recoverable failure type for the experiment harness.
//
// HXWAR_CHECK stays the contract-violation tool: it aborts, because a broken
// invariant means the process state is unreliable. Error is for *expected*
// failure modes of an otherwise healthy process — a sweep point whose fault
// policy is `abort` hitting a routing dead end, or the stall watchdog
// detecting a credit-wait deadlock. Those must not take down a --jobs=N
// sweep: runSweepPoint catches Error, retries the point once with the same
// seed, and on a second failure emits a structured failed-point row instead
// of killing the other workers' points.
//
// Throw sites must run on the harness thread (between SimBackend::run calls
// or in the steady-state loop), never inside a shard worker — the parallel
// engine's workers record problems in per-lane slots that the harness checks
// at barriers (see Network fatal-error slots), which keeps the throwing
// thread deterministic for any --point-jobs value.
#pragma once

#include <stdexcept>
#include <string>

namespace hxwar {

class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& message) : std::runtime_error(message) {}
};

}  // namespace hxwar
