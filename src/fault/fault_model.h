// Fault model: deterministic seeded fault sets and connectivity validation.
//
// A FaultSpec describes which inter-router links fail — drawn at random per
// undirected link from (--fault-rate, --fault-seed), listed explicitly
// (--fault-links=r:p,r:p,...), or whole routers (--fault-routers=r,r,...) —
// and optionally *when*: a [--fault-at, --fault-until) cycle window turns the
// set into a transient fault that kills and later revives the channels
// mid-run (FaultController schedules the mask writes).
//
// buildFaultSet() expands a spec into the concrete directed (router, port)
// list. The random draw is keyed by (seed, undirected link id), never by
// iteration order, so the same spec yields the same fault set on every
// platform and at any sweep parallelism.
//
// checkConnectivity() BFS-validates the degraded graph and reports the first
// unreachable router pair; DegradedTopology and the harness reject
// partitioned networks with that message. hyperxOneDerouteRoutable() checks
// the stronger per-row condition under which the fault-aware adaptive
// algorithms (DAL/DimWAR/OmniWAR) guarantee delivery: in every dimension,
// every ordered coordinate pair is connected directly or via one intermediate
// coordinate (one deroute).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"
#include "fault/dead_port_mask.h"
#include "fault/fault_policy.h"
#include "topo/hyperx.h"
#include "topo/topology.h"

namespace hxwar::fault {

struct FaultSpec {
  double rate = 0.0;           // per-link failure probability in [0, 1)
  std::uint64_t seed = 12345;  // random-draw seed (independent of sweep seeds)
  std::string links;           // explicit "r:p,r:p,..." failed links
  std::string routers;         // explicit "r,r,..." failed routers
  Tick at = kTickInvalid;      // transient: cycle the faults strike
  Tick until = kTickInvalid;   // transient: cycle the channels revive
  // Legacy dead-end switch (--fault-drop=true), kept so PR 3 specs parse and
  // serialize unchanged; it is folded into `policy` by effectivePolicy().
  bool drop = false;
  // Graceful-degradation ladder selector (--fault-policy); see
  // fault/fault_policy.h. kAbort + drop=true means the legacy drop mode.
  FaultPolicy policy = FaultPolicy::kAbort;

  bool active() const { return rate > 0.0 || !links.empty() || !routers.empty(); }
  bool transient() const { return at != kTickInvalid; }
  FaultPolicy effectivePolicy() const {
    return (policy == FaultPolicy::kAbort && drop) ? FaultPolicy::kDrop : policy;
  }
  bool toleratesPartition() const {
    return faultPolicyToleratesPartition(effectivePolicy());
  }
};

struct FaultSet {
  // Directed (router, port) entries, both directions of every failed link,
  // sorted and deduplicated. This is what DeadPortMask::apply consumes.
  std::vector<std::pair<RouterId, PortId>> ports;
  std::vector<RouterId> failedRouters;  // from FaultSpec::routers
  std::size_t failedLinks = 0;          // undirected link count
};

// Expands a spec against a topology. Aborts (CHECK) on malformed link lists,
// out-of-range ids, or entries naming terminal/unused ports.
FaultSet buildFaultSet(const topo::Topology& topo, const FaultSpec& spec);

// BFS over portTarget() from `src`, optionally masking dead ports
// (mask == nullptr walks the raw topology). out[r] = hops, or kUnreachable.
inline constexpr std::uint32_t kUnreachable = 0xffffffffu;
void bfsDistances(const topo::Topology& topo, RouterId src, const DeadPortMask* mask,
                  std::vector<std::uint32_t>& out);

struct ConnectivityReport {
  bool connected = true;
  RouterId from = kRouterInvalid;  // first unreachable pair, when partitioned
  RouterId to = kRouterInvalid;
  std::string message;  // actionable error text, empty when connected
  // Routers cut off from router 0's component, and the number of ordered
  // router pairs (a, b) with no surviving path. Zero when connected. The
  // partition-tolerant policies report these as metrics instead of rejecting
  // the spec (DESIGN.md §13).
  std::uint32_t unreachableRouters = 0;
  std::uint64_t unreachablePairs = 0;
};

// BFS from router 0 over the masked topology; reports the first unreachable
// pair when the fault set partitions the network, plus the component census
// behind the unreachable-pair metrics.
ConnectivityReport checkConnectivity(const topo::Topology& topo, const DeadPortMask& mask);

// HyperX one-deroute routability: for every dimension d and every ordered
// coordinate pair (a, b) within every row of d, either the direct link a->b
// survives or some intermediate coordinate x has both a->x and x->b alive.
// Under this condition the fault-aware DAL/DimWAR/OmniWAR candidate rules
// always emit at least one live candidate (see DESIGN.md §8). Optionally
// reports the first violating row/pair.
bool hyperxOneDerouteRoutable(const topo::HyperX& topo, const DeadPortMask& mask,
                              std::string* why = nullptr);

}  // namespace hxwar::fault
