// FaultPolicy — what a router does when every candidate for a packet is dead
// (the "fault dead end"), and what the harness does with fault sets that
// partition the network. Tiny standalone header: both net/router.h and
// fault/fault_model.h need the enum, and neither should depend on the other.
//
// The ladder, least to most forgiving (DESIGN.md §13):
//   abort  — the point fails loudly (hxwar::Error via the deferred-fatal
//            slot). Default: a non-fault-aware algorithm on a degraded
//            network is a configuration error, not data.
//   drop   — drop-and-count with credit return (the old --fault-drop=true).
//   retry  — bounded in-place retry with exponential backoff: the packet
//            stays queued and the route is recomputed against the *live*
//            mask each attempt (a transient fault may have revived the
//            path); after the budget it becomes an attributed drop.
//   escape — the routing algorithm escalates onto its reserved escape VC
//            class (FaultEscapePolicy / ftar); a dead end then only happens
//            for genuinely unreachable destinations (partition), which are
//            attributed drops. Partitioned fault sets are accepted and
//            reported as unreachable-pair metrics instead of rejected.
#pragma once

#include <cstdint>
#include <string>

namespace hxwar::fault {

enum class FaultPolicy : std::uint8_t {
  kAbort = 0,
  kDrop = 1,
  kRetry = 2,
  kEscape = 3,
};

inline const char* faultPolicyName(FaultPolicy p) {
  switch (p) {
    case FaultPolicy::kAbort: return "abort";
    case FaultPolicy::kDrop: return "drop";
    case FaultPolicy::kRetry: return "retry";
    case FaultPolicy::kEscape: return "escape";
  }
  return "abort";
}

// Returns true and sets `out` on a recognized name; false otherwise (the
// caller owns the error message — spec parsing wants the flag name in it).
inline bool parseFaultPolicy(const std::string& name, FaultPolicy* out) {
  if (name == "abort") { *out = FaultPolicy::kAbort; return true; }
  if (name == "drop") { *out = FaultPolicy::kDrop; return true; }
  if (name == "retry") { *out = FaultPolicy::kRetry; return true; }
  if (name == "escape") { *out = FaultPolicy::kEscape; return true; }
  return false;
}

// Partition tolerance follows the policy: under abort the harness keeps the
// PR 3 behavior (reject a partitioned fault set up front with the first
// unreachable pair); every softer policy accepts the spec and surfaces the
// unreachable-pair count as a metric instead.
inline bool faultPolicyToleratesPartition(FaultPolicy p) {
  return p != FaultPolicy::kAbort;
}

}  // namespace hxwar::fault
