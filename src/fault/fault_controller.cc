#include "fault/fault_controller.h"

#include "common/assert.h"
#include "sim/event_queue.h"

namespace hxwar::fault {

FaultController::FaultController(sim::Simulator& sim, DeadPortMask& mask, FaultSet set,
                                 Tick at, Tick until)
    : Component(sim), mask_(mask), set_(std::move(set)), at_(at), until_(until) {
  HXWAR_CHECK_MSG(at_ != kTickInvalid, "FaultController needs a kill cycle");
  HXWAR_CHECK_MSG(until_ == kTickInvalid || until_ > at_, "fault-until must be after fault-at");
  // kEpsDeliver orders the mask write before any router cycle at the same
  // tick, so the fault is visible to every allocation decision of cycle `at`.
  sim.schedule(at_, sim::kEpsDeliver, this, kTagKill);
  if (until_ != kTickInvalid) sim.schedule(until_, sim::kEpsDeliver, this, kTagRevive);
}

void FaultController::processEvent(std::uint64_t tag) {
  if (tag == kTagKill) {
    mask_.apply(set_.ports);
  } else {
    mask_.clear(set_.ports);
  }
}

}  // namespace hxwar::fault
