// FaultController: schedules transient faults onto the shared DeadPortMask.
//
// For a transient fault window [at, until) the network is built from the
// *base* topology — all channels exist — and the controller flips the mask at
// the scheduled cycles: routers stop selecting (and stop transmitting on)
// dead ports from cycle `at`, and resume at `until`. until == kTickInvalid
// leaves the faults in place for the rest of the run.
//
// Flits already in flight on a killed channel are delivered (a cable cut in a
// real network loses at most a channel's worth of flits; modeling that loss
// would break credit accounting for no measurement benefit — the interesting
// dynamics are upstream, where traffic piles onto the dead port). Packets
// blocked on a dead port simply wait; adaptive algorithms route new traffic
// around the hole, and everything drains when the channel revives.
#pragma once

#include "common/types.h"
#include "fault/dead_port_mask.h"
#include "fault/fault_model.h"
#include "sim/simulator.h"

namespace hxwar::fault {

class FaultController final : public sim::Component {
 public:
  FaultController(sim::Simulator& sim, DeadPortMask& mask, FaultSet set, Tick at,
                  Tick until);

  void processEvent(std::uint64_t tag) override;

  Tick killAt() const { return at_; }
  Tick reviveAt() const { return until_; }

 private:
  static constexpr std::uint64_t kTagKill = 0;
  static constexpr std::uint64_t kTagRevive = 1;

  DeadPortMask& mask_;
  FaultSet set_;
  Tick at_;
  Tick until_;
};

}  // namespace hxwar::fault
