#include "fault/fault_model.h"

#include <algorithm>
#include <cstdlib>
#include <deque>
#include <set>
#include <sstream>

#include "common/assert.h"
#include "common/rng.h"

namespace hxwar::fault {
namespace {

using Kind = topo::Topology::PortTarget::Kind;

// Uniform double in [0, 1) from one independent stream per undirected link.
// Keyed by (seed, link id) only — no iteration-order or platform dependence.
double linkDraw(std::uint64_t seed, RouterId r, PortId p) {
  const std::uint64_t key = (static_cast<std::uint64_t>(r) << 32) | p;
  SplitMix64 sm(seed ^ (0x9e3779b97f4a7c15ULL * (key + 1)));
  return static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
}

std::vector<std::string> splitList(const std::string& raw) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos < raw.size()) {
    std::size_t comma = raw.find(',', pos);
    if (comma == std::string::npos) comma = raw.size();
    if (comma > pos) out.push_back(raw.substr(pos, comma - pos));
    pos = comma + 1;
  }
  return out;
}

std::uint32_t parseU32(const std::string& token, const std::string& flag) {
  bool ok = !token.empty();
  for (const char c : token) ok = ok && c >= '0' && c <= '9';
  HXWAR_CHECK_MSG(ok, (flag + ": '" + token + "' is not a non-negative integer").c_str());
  return static_cast<std::uint32_t>(std::strtoull(token.c_str(), nullptr, 10));
}

// Kills the directed channel (r, p) and its reverse direction. The port must
// be a live inter-router port — failing a terminal port would silently
// disconnect a node rather than exercise routing, so it is an error.
void killLink(const topo::Topology& topo, RouterId r, PortId p,
              std::set<std::pair<RouterId, PortId>>& dead) {
  HXWAR_CHECK_MSG(r < topo.numRouters() && p < topo.numPorts(r),
                  "fault-links: router or port id out of range");
  const auto target = topo.portTarget(r, p);
  if (target.kind != Kind::kRouter) {
    std::ostringstream msg;
    msg << "fault-links: port " << r << ":" << p << " is "
        << (target.kind == Kind::kTerminal ? "a terminal port" : "unused")
        << "; only inter-router links can fail";
    HXWAR_CHECK_MSG(false, msg.str().c_str());
  }
  dead.insert({r, p});
  dead.insert({target.router, target.port});
}

}  // namespace

FaultSet buildFaultSet(const topo::Topology& topo, const FaultSpec& spec) {
  HXWAR_CHECK_MSG(spec.rate >= 0.0 && spec.rate <= 1.0, "fault-rate must be in [0, 1]");
  HXWAR_CHECK_MSG(!spec.transient() || spec.until == kTickInvalid || spec.until > spec.at,
                  "fault-until must be after fault-at");
  FaultSet set;
  std::set<std::pair<RouterId, PortId>> dead;

  // Random link failures: one Bernoulli draw per undirected inter-router
  // link, taken from the canonical (lexicographically smaller) direction.
  if (spec.rate > 0.0) {
    for (RouterId r = 0; r < topo.numRouters(); ++r) {
      for (PortId p = 0; p < topo.numPorts(r); ++p) {
        const auto target = topo.portTarget(r, p);
        if (target.kind != Kind::kRouter) continue;
        if (std::make_pair(target.router, target.port) < std::make_pair(r, p)) continue;
        if (linkDraw(spec.seed, r, p) < spec.rate) killLink(topo, r, p, dead);
      }
    }
  }

  for (const auto& token : splitList(spec.links)) {
    const std::size_t colon = token.find(':');
    HXWAR_CHECK_MSG(colon != std::string::npos && colon > 0 && colon + 1 < token.size(),
                    ("fault-links: entry '" + token + "' is not of the form r:p").c_str());
    const RouterId r = parseU32(token.substr(0, colon), "fault-links");
    const PortId p = parseU32(token.substr(colon + 1), "fault-links");
    killLink(topo, r, p, dead);
  }

  for (const auto& token : splitList(spec.routers)) {
    const RouterId r = parseU32(token, "fault-routers");
    HXWAR_CHECK_MSG(r < topo.numRouters(), "fault-routers: router id out of range");
    set.failedRouters.push_back(r);
    for (PortId p = 0; p < topo.numPorts(r); ++p) {
      if (topo.portTarget(r, p).kind == Kind::kRouter) killLink(topo, r, p, dead);
    }
  }

  set.ports.assign(dead.begin(), dead.end());
  set.failedLinks = set.ports.size() / 2;
  return set;
}

void bfsDistances(const topo::Topology& topo, RouterId src, const DeadPortMask* mask,
                  std::vector<std::uint32_t>& out) {
  out.assign(topo.numRouters(), kUnreachable);
  out[src] = 0;
  std::deque<RouterId> frontier{src};
  while (!frontier.empty()) {
    const RouterId r = frontier.front();
    frontier.pop_front();
    for (PortId p = 0; p < topo.numPorts(r); ++p) {
      if (mask != nullptr && mask->isDead(r, p)) continue;
      const auto target = topo.portTarget(r, p);
      if (target.kind != Kind::kRouter) continue;
      if (out[target.router] != kUnreachable) continue;
      out[target.router] = out[r] + 1;
      frontier.push_back(target.router);
    }
  }
}

ConnectivityReport checkConnectivity(const topo::Topology& topo, const DeadPortMask& mask) {
  ConnectivityReport report;
  const RouterId n = topo.numRouters();
  std::vector<std::uint32_t> dist;
  bfsDistances(topo, 0, &mask, dist);
  for (RouterId r = 0; r < n; ++r) {
    if (dist[r] != kUnreachable) continue;
    report.unreachableRouters += 1;
    if (report.connected) {
      report.connected = false;
      report.from = 0;
      report.to = r;
    }
  }
  if (!report.connected) {
    // Component census for the unreachable-pair metric: an ordered pair
    // (a, b) is unreachable iff a and b sit in different components, so
    // pairs = n^2 - sum(componentSize^2). Repeated BFS is O(V + E) total.
    std::uint64_t sumSq = 0;
    std::vector<std::uint8_t> seen(n, 0);
    std::vector<std::uint32_t> compDist;
    for (RouterId r = 0; r < n; ++r) {
      if (seen[r]) continue;
      bfsDistances(topo, r, &mask, compDist);
      std::uint64_t size = 0;
      for (RouterId x = 0; x < n; ++x) {
        if (compDist[x] == kUnreachable) continue;
        seen[x] = 1;
        size += 1;
      }
      sumSq += size * size;
    }
    report.unreachablePairs = static_cast<std::uint64_t>(n) * n - sumSq;
    std::ostringstream msg;
    msg << "fault set partitions the network: router " << report.from
        << " cannot reach router " << report.to << " (" << report.unreachableRouters
        << " of " << n << " routers unreachable); lower --fault-rate, change "
        << "--fault-seed, or remove entries from --fault-links/--fault-routers";
    report.message = msg.str();
  }
  return report;
}

bool hyperxOneDerouteRoutable(const topo::HyperX& topo, const DeadPortMask& mask,
                              std::string* why) {
  // liveMove(row[a], a -> b): any surviving trunk of the direct link.
  const auto liveMove = [&](RouterId ra, std::uint32_t d, std::uint32_t b) {
    for (std::uint32_t t = 0; t < topo.trunking(); ++t) {
      if (!mask.isDead(ra, topo.dimPort(ra, d, b, t))) return true;
    }
    return false;
  };
  for (std::uint32_t d = 0; d < topo.numDims(); ++d) {
    const std::uint32_t width = topo.width(d);
    for (RouterId base = 0; base < topo.numRouters(); ++base) {
      if (topo.coord(base, d) != 0) continue;  // one representative per row
      for (std::uint32_t a = 0; a < width; ++a) {
        const RouterId ra = a == 0 ? base : topo.neighbor(base, d, a);
        for (std::uint32_t b = 0; b < width; ++b) {
          if (b == a) continue;
          if (liveMove(ra, d, b)) continue;
          bool viaDeroute = false;
          for (std::uint32_t x = 0; x < width && !viaDeroute; ++x) {
            if (x == a || x == b) continue;
            viaDeroute = liveMove(ra, d, x) && liveMove(topo.neighbor(ra, d, x), d, b);
          }
          if (!viaDeroute) {
            if (why != nullptr) {
              std::ostringstream msg;
              msg << "dimension " << d << " row of router " << ra << ": coordinate " << a
                  << " cannot reach coordinate " << b << " within one deroute";
              *why = msg.str();
            }
            return false;
          }
        }
      }
    }
  }
  return true;
}

}  // namespace hxwar::fault
