// Dead-port mask: the shared runtime representation of link/router failures.
//
// One bit per (router, port). Routers consult the mask when filtering route
// candidates and when arbitrating output channels; the fault model writes it
// (once, for static fault sets; at the scheduled kill/revive ticks for
// transient faults). Header-only and dependency-free below common/ so that
// net/ and routing/ can read the mask without linking the fault library.
//
// The mask is always symmetric: a failed link kills both directed channels,
// so isDead(r, p) implies isDead(peer, peerPort). buildFaultSet() enforces
// this by construction.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/assert.h"
#include "common/types.h"

namespace hxwar::fault {

class DeadPortMask {
 public:
  // Default: an unsized, all-alive mask. resize() before use.
  DeadPortMask() = default;

  DeadPortMask(std::uint32_t numRouters, std::uint32_t maxPorts)
      : maxPorts_(maxPorts),
        dead_(static_cast<std::size_t>(numRouters) * maxPorts, 0) {}

  // (Re)shapes the mask for a topology, clearing all faults.
  void resize(std::uint32_t numRouters, std::uint32_t maxPorts) {
    maxPorts_ = maxPorts;
    dead_.assign(static_cast<std::size_t>(numRouters) * maxPorts, 0);
    ++version_;
  }

  bool isDead(RouterId r, PortId p) const {
    return dead_[static_cast<std::size_t>(r) * maxPorts_ + p] != 0;
  }

  void set(RouterId r, PortId p, bool dead) {
    dead_[static_cast<std::size_t>(r) * maxPorts_ + p] = dead ? 1 : 0;
    ++version_;
  }

  // Bumped on every write. Consumers that cache mask-derived state (e.g. the
  // routing layer's filtered candidate lists) tag entries with the version
  // and lazily invalidate on mismatch, so FaultController kill/revive flips
  // need no registration with their readers.
  std::uint64_t version() const { return version_; }

  // Applies/clears a list of directed (router, port) entries — the format
  // FaultSet::ports uses (both directions of every failed link present).
  void apply(const std::vector<std::pair<RouterId, PortId>>& ports) {
    for (const auto& [r, p] : ports) set(r, p, true);
  }
  void clear(const std::vector<std::pair<RouterId, PortId>>& ports) {
    for (const auto& [r, p] : ports) set(r, p, false);
  }

  std::uint32_t maxPorts() const { return maxPorts_; }
  std::uint32_t numRouters() const {
    return maxPorts_ == 0 ? 0 : static_cast<std::uint32_t>(dead_.size() / maxPorts_);
  }

  std::size_t deadCount() const {
    std::size_t n = 0;
    for (const auto b : dead_) n += b;
    return n;
  }

 private:
  std::uint32_t maxPorts_ = 0;
  std::vector<std::uint8_t> dead_;
  std::uint64_t version_ = 0;
};

}  // namespace hxwar::fault
