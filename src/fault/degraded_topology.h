// DegradedTopology: a Topology decorator that masks failed inter-router
// ports as kUnused and recomputes distances over the surviving graph.
//
// The Network builder already skips kUnused ports when wiring channels, so a
// Network built from a DegradedTopology simply has no channel on the failed
// links — failures are structural, not simulated stalls. minHops()/diameter()
// come from an all-pairs BFS over the degraded graph, so path-stretch metrics
// compare against what is actually reachable.
//
// Construction CHECK-fails on a partitioned fault set with the actionable
// checkConnectivity() message — unless built with allowPartition, the
// partition-tolerant mode used by the non-abort fault policies: minHops()
// then returns kUnreachable for cut pairs (callers bucketing stretch must
// guard on it), diameter() spans only the reachable pairs, and the
// unreachable-pair census is surfaced via connectivity().
//
// Routing algorithms keep operating on the *base* topology: HyperX coordinate
// math is unaffected by missing links, and the registry factories downcast to
// the concrete family. The dead-port mask reaches them through RouteContext.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/dead_port_mask.h"
#include "fault/fault_model.h"
#include "topo/topology.h"

namespace hxwar::fault {

class DegradedTopology final : public topo::Topology {
 public:
  // Both references must outlive the decorator.
  DegradedTopology(const topo::Topology& base, const DeadPortMask& mask,
                   bool allowPartition = false);

  std::string name() const override { return base_.name() + "+faults"; }
  std::uint32_t numRouters() const override { return base_.numRouters(); }
  std::uint32_t numNodes() const override { return base_.numNodes(); }
  std::uint32_t numPorts(RouterId r) const override { return base_.numPorts(r); }
  PortTarget portTarget(RouterId r, PortId p) const override;
  RouterId nodeRouter(NodeId n) const override { return base_.nodeRouter(n); }
  PortId nodePort(NodeId n) const override { return base_.nodePort(n); }
  std::uint32_t minHops(RouterId a, RouterId b) const override {
    return dist_[static_cast<std::size_t>(a) * n_ + b];
  }
  std::uint32_t diameter() const override { return diameter_; }
  // Dimension attribution is structural, not connectivity-dependent.
  std::uint32_t numPortDims() const override { return base_.numPortDims(); }
  std::uint32_t portDim(RouterId r, PortId p) const override {
    return base_.portDim(r, p);
  }

  const topo::Topology& base() const { return base_; }
  const DeadPortMask& mask() const { return mask_; }
  // The census taken at construction (unreachable pairs/routers when built
  // with allowPartition on a partitioned set).
  const ConnectivityReport& connectivity() const { return connectivity_; }

 private:
  const topo::Topology& base_;
  const DeadPortMask& mask_;
  std::uint32_t n_;
  std::uint32_t diameter_ = 0;
  std::vector<std::uint32_t> dist_;  // all-pairs hops over the degraded graph
  ConnectivityReport connectivity_;
};

}  // namespace hxwar::fault
