#include "fault/degraded_topology.h"

#include "common/assert.h"
#include "fault/fault_model.h"

namespace hxwar::fault {

DegradedTopology::DegradedTopology(const topo::Topology& base, const DeadPortMask& mask,
                                   bool allowPartition)
    : base_(base), mask_(mask), n_(base.numRouters()) {
  connectivity_ = checkConnectivity(base, mask);
  if (!allowPartition) {
    HXWAR_CHECK_MSG(connectivity_.connected, connectivity_.message.c_str());
  }

  dist_.resize(static_cast<std::size_t>(n_) * n_);
  std::vector<std::uint32_t> row;
  for (RouterId r = 0; r < n_; ++r) {
    bfsDistances(base, r, &mask_, row);
    for (RouterId b = 0; b < n_; ++b) {
      dist_[static_cast<std::size_t>(r) * n_ + b] = row[b];
      // Partitioned pairs stay kUnreachable in dist_ but must not poison the
      // diameter (it sizes hop-bucketed metrics arrays).
      if (row[b] != kUnreachable) diameter_ = std::max(diameter_, row[b]);
    }
  }
}

topo::Topology::PortTarget DegradedTopology::portTarget(RouterId r, PortId p) const {
  if (mask_.isDead(r, p)) return PortTarget{};  // kUnused
  return base_.portTarget(r, p);
}

}  // namespace hxwar::fault
