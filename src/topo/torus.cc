#include "topo/torus.h"

#include <sstream>

#include "common/assert.h"

namespace hxwar::topo {

Torus::Torus(Params params) : widths_(std::move(params.widths)), k_(params.terminalsPerRouter) {
  HXWAR_CHECK_MSG(!widths_.empty(), "torus needs at least one dimension");
  HXWAR_CHECK(k_ >= 1);
  numRouters_ = 1;
  dimStride_.resize(widths_.size());
  for (std::size_t d = 0; d < widths_.size(); ++d) {
    HXWAR_CHECK_MSG(widths_[d] >= 2, "torus dimension width must be >= 2");
    dimStride_[d] = numRouters_;
    numRouters_ *= widths_[d];
  }
  numPorts_ = k_ + 2 * numDims();
}

std::string Torus::name() const {
  std::ostringstream os;
  os << "Torus(";
  for (std::size_t d = 0; d < widths_.size(); ++d) os << (d ? "x" : "") << widths_[d];
  os << ", K=" << k_ << ")";
  return os.str();
}

std::uint32_t Torus::coord(RouterId r, std::uint32_t dim) const {
  return (r / dimStride_[dim]) % widths_[dim];
}

RouterId Torus::routerAt(const std::vector<std::uint32_t>& c) const {
  HXWAR_CHECK(c.size() == widths_.size());
  RouterId r = 0;
  for (std::size_t d = 0; d < c.size(); ++d) {
    HXWAR_CHECK(c[d] < widths_[d]);
    r += c[d] * dimStride_[d];
  }
  return r;
}

RouterId Torus::neighbor(RouterId r, std::uint32_t dim, bool plus) const {
  const std::uint32_t own = coord(r, dim);
  const std::uint32_t to = plus ? (own + 1) % widths_[dim]
                                : (own + widths_[dim] - 1) % widths_[dim];
  return r + (static_cast<std::int64_t>(to) - own) * static_cast<std::int64_t>(dimStride_[dim]);
}

Topology::PortTarget Torus::portTarget(RouterId r, PortId p) const {
  PortTarget t;
  if (p < k_) {
    t.kind = PortTarget::Kind::kTerminal;
    t.node = r * k_ + p;
    return t;
  }
  const std::uint32_t dim = (p - k_) / 2;
  const bool plus = ((p - k_) % 2) == 0;
  HXWAR_CHECK(dim < numDims());
  t.kind = PortTarget::Kind::kRouter;
  t.router = neighbor(r, dim, plus);
  // On a width-2 ring both directions reach the same router; pair + with -
  // so the wiring stays a consistent involution.
  t.port = dimPort(dim, !plus);
  return t;
}

std::int32_t Torus::shortestDelta(std::uint32_t dim, std::uint32_t from,
                                  std::uint32_t to) const {
  const auto s = static_cast<std::int32_t>(widths_[dim]);
  std::int32_t d = static_cast<std::int32_t>(to) - static_cast<std::int32_t>(from);
  if (d > s / 2) d -= s;
  if (d < -(s - 1) / 2) d += s;
  return d;
}

std::uint32_t Torus::minHops(RouterId a, RouterId b) const {
  std::uint32_t hops = 0;
  for (std::uint32_t d = 0; d < numDims(); ++d) {
    hops += static_cast<std::uint32_t>(std::abs(shortestDelta(d, coord(a, d), coord(b, d))));
  }
  return hops;
}

std::uint32_t Torus::diameter() const {
  std::uint32_t hops = 0;
  for (const auto w : widths_) hops += w / 2;
  return hops;
}

}  // namespace hxwar::topo
