// Dragonfly topology (Kim et al., ISCA'08).
//
// Parameters: p terminals per router, a routers per group (fully connected
// locally), h global channels per router, g groups. Global links use an
// offset-block arrangement that supports any g with (g-1) | coverage: each
// group exposes a*h global endpoints; endpoint slot s = (o-1)*w + c connects
// to group (G + o) mod g, pairing with that group's slot (g-o-1)*w + c, where
// w = floor(a*h / (g-1)) is the trunking width per group pair. With the
// balanced g = a*h + 1 this reduces to the canonical single-link-per-pair
// arrangement. Endpoint slots >= w*(g-1) are unused.
//
// Port layout per router:
//   [0, p)            terminals
//   [p, p+a-1)        local ports, ordered by peer local index (skipping own)
//   [p+a-1, p+a-1+h)  global ports
#pragma once

#include <cstdint>
#include <string>

#include "common/types.h"
#include "topo/topology.h"

namespace hxwar::topo {

class Dragonfly final : public Topology {
 public:
  struct Params {
    std::uint32_t terminalsPerRouter = 4;  // p
    std::uint32_t routersPerGroup = 8;     // a
    std::uint32_t globalsPerRouter = 4;    // h
    std::uint32_t numGroups = 0;           // g; 0 => balanced a*h + 1
  };

  explicit Dragonfly(Params params);

  std::string name() const override;
  std::uint32_t numRouters() const override { return a_ * g_; }
  std::uint32_t numNodes() const override { return numRouters() * p_; }
  std::uint32_t numPorts(RouterId) const override { return p_ + (a_ - 1) + h_; }
  PortTarget portTarget(RouterId r, PortId p) const override;
  RouterId nodeRouter(NodeId n) const override { return n / p_; }
  PortId nodePort(NodeId n) const override { return n % p_; }
  std::uint32_t minHops(RouterId a, RouterId b) const override;
  std::uint32_t diameter() const override { return 3; }

  // --- Dragonfly-specific queries ---
  std::uint32_t p() const { return p_; }
  std::uint32_t a() const { return a_; }
  std::uint32_t h() const { return h_; }
  std::uint32_t g() const { return g_; }
  std::uint32_t trunking() const { return w_; }  // links per group pair

  std::uint32_t group(RouterId r) const { return r / a_; }
  std::uint32_t localIdx(RouterId r) const { return r % a_; }
  RouterId routerOf(std::uint32_t grp, std::uint32_t local) const { return grp * a_ + local; }

  PortId localPort(RouterId r, std::uint32_t peerLocal) const;
  PortId globalPort(std::uint32_t k) const { return p_ + (a_ - 1) + k; }
  bool isTerminalPort(PortId port) const { return port < p_; }
  bool isLocalPort(PortId port) const { return port >= p_ && port < p_ + (a_ - 1); }
  bool isGlobalPort(PortId port) const { return port >= p_ + (a_ - 1); }

  // Global endpoint slot within the group for router-local port k.
  std::uint32_t globalSlot(RouterId r, std::uint32_t k) const { return localIdx(r) * h_ + k; }
  // Which group does endpoint slot s of group grp connect to? Returns false
  // for unused slots (s >= w*(g-1)).
  bool slotPeer(std::uint32_t grp, std::uint32_t s, std::uint32_t* peerGroup,
                std::uint32_t* peerSlot) const;

  // One (router, globalPortIndex) in `grp` with a direct link to `toGroup`,
  // for copy index c in [0, trunking()). Used by minimal routing.
  struct GlobalExit {
    RouterId router;
    std::uint32_t portK;  // global port index within router
  };
  GlobalExit exitTo(std::uint32_t grp, std::uint32_t toGroup, std::uint32_t copy) const;

 private:
  std::uint32_t p_, a_, h_, g_, w_;
};

}  // namespace hxwar::topo
