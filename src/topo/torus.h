// k-ary n-cube (torus) topology — the background substrate of §2.1: dateline
// resource classes on a ring break its structural cycle, which is exactly the
// scheme DimWAR generalizes to HyperX deroutes. Included so the dateline
// discipline is testable in its original habitat.
//
// Port layout per router: [0, K) terminals, then for each dimension d two
// ports: + direction (toward coord+1 mod S) and - direction.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "topo/topology.h"

namespace hxwar::topo {

class Torus final : public Topology {
 public:
  struct Params {
    std::vector<std::uint32_t> widths;     // S[d] >= 2
    std::uint32_t terminalsPerRouter = 1;  // K
  };

  explicit Torus(Params params);

  std::string name() const override;
  std::uint32_t numRouters() const override { return numRouters_; }
  std::uint32_t numNodes() const override { return numRouters_ * k_; }
  std::uint32_t numPorts(RouterId) const override { return numPorts_; }
  PortTarget portTarget(RouterId r, PortId p) const override;
  RouterId nodeRouter(NodeId n) const override { return n / k_; }
  PortId nodePort(NodeId n) const override { return n % k_; }
  std::uint32_t minHops(RouterId a, RouterId b) const override;
  std::uint32_t diameter() const override;
  std::uint32_t numPortDims() const override { return numDims(); }
  std::uint32_t portDim(RouterId, PortId p) const override {
    return p < k_ ? kPortDimUnknown : (p - k_) / 2;  // inverse of dimPort()
  }

  // --- torus-specific ---
  std::uint32_t numDims() const { return static_cast<std::uint32_t>(widths_.size()); }
  std::uint32_t width(std::uint32_t dim) const { return widths_[dim]; }
  std::uint32_t terminalsPerRouter() const { return k_; }
  std::uint32_t coord(RouterId r, std::uint32_t dim) const;
  RouterId routerAt(const std::vector<std::uint32_t>& c) const;
  // plus = true: the +1 direction port of dimension d.
  PortId dimPort(std::uint32_t dim, bool plus) const { return k_ + 2 * dim + (plus ? 0 : 1); }
  RouterId neighbor(RouterId r, std::uint32_t dim, bool plus) const;
  bool isTerminalPort(PortId p) const { return p < k_; }

  // Shortest signed distance from a to b in dimension d (ties go +).
  std::int32_t shortestDelta(std::uint32_t dim, std::uint32_t from, std::uint32_t to) const;

 private:
  std::vector<std::uint32_t> widths_;
  std::vector<std::uint32_t> dimStride_;
  std::uint32_t k_;
  std::uint32_t numRouters_;
  std::uint32_t numPorts_;
};

}  // namespace hxwar::topo
