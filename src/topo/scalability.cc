#include "topo/scalability.h"

#include <algorithm>
#include <cmath>

namespace hxwar::topo {
namespace {

bool isPrimePower(std::uint32_t q) {
  if (q < 2) return false;
  std::uint32_t n = q;
  for (std::uint32_t p = 2; p * p <= n; ++p) {
    if (n % p == 0) {
      while (n % p == 0) n /= p;
      return n == 1;
    }
  }
  return true;  // q itself is prime
}

}  // namespace

HyperXShape hyperxBestShape(std::uint32_t radix, std::uint32_t dims) {
  HyperXShape best{0, 0};
  std::uint64_t bestNodes = 0;
  for (std::uint32_t s = 2; dims * (s - 1) < radix; ++s) {
    const std::uint32_t kMaxPorts = radix - dims * (s - 1);
    const std::uint32_t k = std::min(kMaxPorts, s);  // K <= S: >= 50% bisection
    std::uint64_t nodes = k;
    for (std::uint32_t d = 0; d < dims; ++d) nodes *= s;
    if (nodes > bestNodes) {
      bestNodes = nodes;
      best = HyperXShape{s, k};
    }
  }
  return best;
}

std::uint64_t hyperxMaxNodes(std::uint32_t radix, std::uint32_t dims) {
  const HyperXShape shape = hyperxBestShape(radix, dims);
  std::uint64_t nodes = shape.terminals;
  for (std::uint32_t d = 0; d < dims; ++d) nodes *= shape.width;
  return nodes;
}

std::uint64_t dragonflyMaxNodes(std::uint32_t radix) {
  // Balanced dragonfly: radix = p + (a-1) + h with a = 2p, h = p
  // => radix = 4p - 1 => p = (radix + 1) / 4.
  const std::uint32_t p = (radix + 1) / 4;
  if (p == 0) return 0;
  const std::uint32_t a = 2 * p;
  const std::uint32_t h = p;
  const std::uint64_t g = static_cast<std::uint64_t>(a) * h + 1;
  return static_cast<std::uint64_t>(p) * a * g;
}

std::uint64_t fatTree3MaxNodes(std::uint32_t radix) {
  return static_cast<std::uint64_t>(radix) * radix * radix / 4;
}

std::uint64_t slimflyMaxNodes(std::uint32_t radix) {
  std::uint64_t best = 0;
  // MMS graphs: q = 4w + delta, delta in {-1, 0, 1}; network degree
  // k' = (3q - delta) / 2; routers 2q^2; balanced p = ceil(k'/2).
  for (std::uint32_t q = 2; q < 2 * radix; ++q) {
    if (!isPrimePower(q)) continue;
    for (int delta = -1; delta <= 1; ++delta) {
      if ((static_cast<int>(q) - delta) % 4 != 0) continue;
      const int kNet = (3 * static_cast<int>(q) - delta) / 2;
      if (kNet <= 0) continue;
      const std::uint32_t p = (static_cast<std::uint32_t>(kNet) + 1) / 2;
      if (static_cast<std::uint32_t>(kNet) + p > radix) continue;
      const std::uint64_t nodes = 2ull * q * q * p;
      best = std::max(best, nodes);
    }
  }
  return best;
}

std::vector<ScaleSeries> scalabilitySweep(std::uint32_t minRadix, std::uint32_t maxRadix,
                                          std::uint32_t step) {
  std::vector<ScaleSeries> series;
  const auto sweep = [&](const std::string& name, std::uint32_t diameter, auto fn) {
    ScaleSeries s{name, diameter, {}};
    for (std::uint32_t r = minRadix; r <= maxRadix; r += step) {
      s.points.push_back(ScalePoint{r, fn(r)});
    }
    series.push_back(std::move(s));
  };
  sweep("SlimFly", 2, [](std::uint32_t r) { return slimflyMaxNodes(r); });
  sweep("HyperX-2D", 2, [](std::uint32_t r) { return hyperxMaxNodes(r, 2); });
  sweep("HyperX-3D", 3, [](std::uint32_t r) { return hyperxMaxNodes(r, 3); });
  sweep("HyperX-4D", 4, [](std::uint32_t r) { return hyperxMaxNodes(r, 4); });
  sweep("Dragonfly", 3, [](std::uint32_t r) { return dragonflyMaxNodes(r); });
  sweep("FatTree-3L", 5, [](std::uint32_t r) { return fatTree3MaxNodes(r); });
  return series;
}

}  // namespace hxwar::topo
