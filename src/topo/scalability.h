// Analytic scalability models behind Figure 2: the maximum number of
// terminals each low-diameter topology supports at a given router radix
// while preserving (approximately) 50% bisection bandwidth.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hxwar::topo {

struct ScalePoint {
  std::uint32_t radix;
  std::uint64_t maxNodes;
};

// HyperX with `dims` dimensions: maximize K * S^dims subject to
// K + dims*(S-1) <= radix and K <= S (K <= S keeps each dimension's
// bisection at >= 50% of injection bandwidth, the paper's design point).
std::uint64_t hyperxMaxNodes(std::uint32_t radix, std::uint32_t dims);
// The (S, K) achieving hyperxMaxNodes.
struct HyperXShape {
  std::uint32_t width;      // S
  std::uint32_t terminals;  // K
};
HyperXShape hyperxBestShape(std::uint32_t radix, std::uint32_t dims);

// Balanced Dragonfly (a = 2p = 2h, g = a*h + 1): N = p * a * g.
std::uint64_t dragonflyMaxNodes(std::uint32_t radix);

// Three-level folded Clos with k-port switches: N = k^3 / 4.
std::uint64_t fatTree3MaxNodes(std::uint32_t radix);

// SlimFly MMS-graph based diameter-2 network. Uses the Besta & Hoefler
// construction: routers 2q^2, network radix k' = (3q - delta)/2 for a prime
// power q = 4w + delta, terminals p = ceil(k'/2) per router (balanced).
// Returns the max over valid q that fit the radix.
std::uint64_t slimflyMaxNodes(std::uint32_t radix);

// Full Figure-2 sweep: series name -> points over the radix range.
struct ScaleSeries {
  std::string name;
  std::uint32_t diameter;
  std::vector<ScalePoint> points;
};
std::vector<ScaleSeries> scalabilitySweep(std::uint32_t minRadix, std::uint32_t maxRadix,
                                          std::uint32_t step);

}  // namespace hxwar::topo
