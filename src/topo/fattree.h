// Folded-Clos / fat-tree topology, expressed as an extended generalized fat
// tree XGFT(h; m_1..m_h; w_1..w_h) (Öhring et al.):
//
//   * Terminals are the leaves; N = m_1 * m_2 * ... * m_h.
//   * A level-l switch (1 <= l <= h) is labelled (t, w):
//       t in [0, prod_{i>l} m_i)   — which level-l subtree it belongs to
//       w in [0, prod_{i<=l} w_i)  — which redundant copy it is
//   * Level-l switch (t, w) has m_l down ports; for l < h it has w_{l+1} up
//     ports to parents (t / m_{l+1}, k * prod_{i<=l} w_i + w).
//
// The classic 3-level k-port fat tree is XGFT(3; k/2, k/2, k; 1, k/2, k/2)
// up to folding details. Up/down routing is deadlock free on one VC.
//
// Port layout per switch: [0, m_l) down ports, then [m_l, m_l + w_{l+1}) up.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "topo/topology.h"

namespace hxwar::topo {

class FatTree final : public Topology {
 public:
  struct Params {
    std::vector<std::uint32_t> down;  // m_1..m_h
    std::vector<std::uint32_t> up;    // w_2..w_h parents per level (size h-1)
  };

  explicit FatTree(Params params);

  std::string name() const override;
  std::uint32_t numRouters() const override { return totalSwitches_; }
  std::uint32_t numNodes() const override { return numNodes_; }
  std::uint32_t numPorts(RouterId r) const override;
  PortTarget portTarget(RouterId r, PortId p) const override;
  RouterId nodeRouter(NodeId n) const override;
  PortId nodePort(NodeId n) const override;
  std::uint32_t minHops(RouterId a, RouterId b) const override;
  std::uint32_t diameter() const override { return 2 * (height_ - 1); }

  // --- Fat-tree-specific queries ---
  std::uint32_t height() const { return height_; }
  std::uint32_t level(RouterId r) const;            // 1..h
  std::uint32_t subtree(RouterId r) const;          // t
  std::uint32_t copy(RouterId r) const;             // w
  RouterId switchId(std::uint32_t level, std::uint32_t t, std::uint32_t w) const;
  std::uint32_t downPorts(std::uint32_t level) const { return down_[level - 1]; }
  std::uint32_t upPorts(std::uint32_t level) const {
    return level < height_ ? up_[level - 1] : 0;
  }
  // Level of the nearest common ancestor switches of two terminals.
  std::uint32_t ncaLevel(NodeId a, NodeId b) const;
  // Digit of node n used to select the down port at a level-l switch.
  std::uint32_t downDigit(NodeId n, std::uint32_t level) const;

 private:
  std::uint32_t height_;
  std::vector<std::uint32_t> down_;         // m_1..m_h
  std::vector<std::uint32_t> up_;           // w_2..w_h
  std::vector<std::uint32_t> subtrees_;     // per level: prod_{i>l} m_i
  std::vector<std::uint32_t> copies_;       // per level: prod_{i<=l} w_i
  std::vector<std::uint32_t> levelBase_;    // router-id base per level
  std::vector<std::uint32_t> leafSpan_;     // per level: prod_{i<=l} m_i
  std::uint32_t totalSwitches_ = 0;
  std::uint32_t numNodes_ = 1;
};

}  // namespace hxwar::topo
