// HyperX topology (Ahn et al., SC'09): an L-dimensional integer lattice in
// which every dimension is fully connected. The HyperCube (S=2) and the
// Flattened Butterfly are special cases.
//
// Router coordinates are mixed-radix over the per-dimension widths S[d].
// Port layout on every router:
//   [0, K)                       terminal ports (K terminals per router)
//   then, for each dimension d:  (S[d]-1) * T ports — T parallel (trunked)
//                                links per peer coordinate, ordered by
//                                (increasing peer coordinate, trunk index).
//
// Example: 8x8x8 with K=8, T=1 (the paper's 4,096-node system) has
// 8 + 7 + 7 + 7 = 29 ports per router.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "topo/topology.h"

namespace hxwar::topo {

class HyperX final : public Topology {
 public:
  struct Params {
    std::vector<std::uint32_t> widths;  // S[d] >= 2 for each dimension
    std::uint32_t terminalsPerRouter = 1;  // K
    std::uint32_t trunking = 1;            // T parallel links per dim pair
  };

  explicit HyperX(Params params);

  // Topology interface.
  std::string name() const override;
  std::uint32_t numRouters() const override { return numRouters_; }
  std::uint32_t numNodes() const override { return numRouters_ * k_; }
  std::uint32_t numPorts(RouterId) const override { return numPorts_; }
  PortTarget portTarget(RouterId r, PortId p) const override;
  RouterId nodeRouter(NodeId n) const override { return n / k_; }
  PortId nodePort(NodeId n) const override { return n % k_; }
  std::uint32_t minHops(RouterId a, RouterId b) const override;
  std::uint32_t diameter() const override { return numDims(); }
  std::uint32_t numPortDims() const override { return numDims(); }
  std::uint32_t portDim(RouterId r, PortId p) const override {
    return isTerminalPort(p) ? kPortDimUnknown : portMove(r, p).dim;
  }

  // --- HyperX-specific structural queries used by routing algorithms ---

  std::uint32_t numDims() const { return static_cast<std::uint32_t>(widths_.size()); }
  std::uint32_t width(std::uint32_t dim) const { return widths_[dim]; }
  std::uint32_t terminalsPerRouter() const { return k_; }
  std::uint32_t trunking() const { return t_; }

  // Router id <-> coordinate conversion. Dimension 0 is the fastest varying.
  std::uint32_t coord(RouterId r, std::uint32_t dim) const;
  void coords(RouterId r, std::vector<std::uint32_t>& out) const;
  RouterId routerAt(const std::vector<std::uint32_t>& c) const;

  // Port that moves in dimension `dim` from router `r` to coordinate `to`
  // (to != coord(r, dim)) via trunk link `trunk` in [0, T).
  PortId dimPort(RouterId r, std::uint32_t dim, std::uint32_t to,
                 std::uint32_t trunk = 0) const;

  // Inverse of dimPort: which dimension does this inter-router port move in,
  // to which coordinate, and on which trunk? p must be >= K.
  struct PortMove {
    std::uint32_t dim;
    std::uint32_t toCoord;
    std::uint32_t trunk;
  };
  PortMove portMove(RouterId r, PortId p) const;

  // The router reached by moving in `dim` to coordinate `to`.
  RouterId neighbor(RouterId r, std::uint32_t dim, std::uint32_t to) const;

  bool isTerminalPort(PortId p) const { return p < k_; }

  // Bitmask of dimensions where a and b differ (bit d set => unaligned).
  std::uint32_t unalignedMask(RouterId a, RouterId b) const;

 private:
  std::vector<std::uint32_t> widths_;
  std::vector<std::uint32_t> dimPortBase_;  // first port index of each dimension
  std::vector<std::uint32_t> dimStride_;    // mixed-radix strides
  std::uint32_t k_;
  std::uint32_t t_;
  std::uint32_t numRouters_;
  std::uint32_t numPorts_;
};

}  // namespace hxwar::topo
