// Abstract network topology.
//
// A topology defines routers, terminals (nodes), and the wiring between
// router ports. The network builder (net/network.h) instantiates channels
// from this description; routing algorithms downcast to the concrete
// topology for structural queries (coordinates, alignment, etc.).
#pragma once

#include <cstdint>
#include <string>

#include "common/types.h"

namespace hxwar::topo {

class Topology {
 public:
  // What sits on the far side of a router port.
  struct PortTarget {
    enum class Kind { kRouter, kTerminal, kUnused };
    Kind kind = Kind::kUnused;
    RouterId router = kRouterInvalid;  // valid when kind == kRouter
    PortId port = kPortInvalid;        // peer's port, valid when kind == kRouter
    NodeId node = kNodeInvalid;        // valid when kind == kTerminal
  };

  virtual ~Topology() = default;

  virtual std::string name() const = 0;
  virtual std::uint32_t numRouters() const = 0;
  virtual std::uint32_t numNodes() const = 0;
  // Number of ports on the given router (uniform for the regular topologies
  // in this repo, but the interface allows irregularity).
  virtual std::uint32_t numPorts(RouterId r) const = 0;
  virtual PortTarget portTarget(RouterId r, PortId p) const = 0;

  // Terminal attachment.
  virtual RouterId nodeRouter(NodeId n) const = 0;
  virtual PortId nodePort(NodeId n) const = 0;

  // Minimal router-to-router hop count.
  virtual std::uint32_t minHops(RouterId a, RouterId b) const = 0;

  // Network diameter in router-to-router hops.
  virtual std::uint32_t diameter() const = 0;

  // --- dimension attribution (telemetry) ---
  // Lattice topologies (HyperX, torus) attribute each inter-router port to
  // the coordinate dimension it moves in; the observability layer uses this
  // to break routing decisions down per dimension. Topologies without a
  // dimension structure keep the defaults (no dimensions, every port
  // unattributable).
  static constexpr std::uint32_t kPortDimUnknown = 0xffffffffu;
  virtual std::uint32_t numPortDims() const { return 0; }
  virtual std::uint32_t portDim(RouterId, PortId) const { return kPortDimUnknown; }
};

}  // namespace hxwar::topo
