// SlimFly topology (Besta & Hoefler, SC'14): a diameter-2 network built on
// McKay-Miller-Siran (MMS) graphs, included in the paper's Fig. 2 scalability
// comparison. This generator supports the q ≡ 1 (mod 4) prime instances:
//
//   * routers: 2q^2, labelled (s, x, y) with s in {0,1}, x,y in F_q
//   * generator sets over F_q with primitive element xi:
//       X  = even powers of xi   (size (q-1)/2)
//       X' = odd powers of xi    (size (q-1)/2)
//   * edges:
//       (0,x,y) ~ (0,x,y')  iff  y - y'  in X      (intra-column cliques)
//       (1,m,c) ~ (1,m,c')  iff  c - c'  in X'
//       (0,x,y) ~ (1,m,c)   iff  y = m*x + c       (bipartite cross links)
//   * network degree k' = (3q-1)/2, diameter 2
//
// Port layout per router: [0, K) terminals, then the (q-1)/2 intra-group
// ports (ordered by generator index), then the q cross ports (ordered by the
// peer's first coordinate).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "topo/topology.h"

namespace hxwar::topo {

class SlimFly final : public Topology {
 public:
  struct Params {
    std::uint32_t q = 5;                   // prime, q % 4 == 1
    std::uint32_t terminalsPerRouter = 0;  // 0 => balanced ceil(k'/2)
  };

  explicit SlimFly(Params params);

  std::string name() const override;
  std::uint32_t numRouters() const override { return 2 * q_ * q_; }
  std::uint32_t numNodes() const override { return numRouters() * k_; }
  std::uint32_t numPorts(RouterId) const override { return numPorts_; }
  PortTarget portTarget(RouterId r, PortId p) const override;
  RouterId nodeRouter(NodeId n) const override { return n / k_; }
  PortId nodePort(NodeId n) const override { return n % k_; }
  std::uint32_t minHops(RouterId a, RouterId b) const override;
  std::uint32_t diameter() const override { return 2; }

  // --- SlimFly-specific ---
  std::uint32_t q() const { return q_; }
  std::uint32_t terminalsPerRouter() const { return k_; }
  std::uint32_t networkDegree() const { return degree_; }
  bool isTerminalPort(PortId p) const { return p < k_; }

  // Router label helpers: id = s*q^2 + x*q + y.
  std::uint32_t subgraph(RouterId r) const { return r / (q_ * q_); }
  std::uint32_t coordX(RouterId r) const { return (r / q_) % q_; }
  std::uint32_t coordY(RouterId r) const { return r % q_; }
  RouterId routerAt(std::uint32_t s, std::uint32_t x, std::uint32_t y) const {
    return s * q_ * q_ + x * q_ + y;
  }

  // All neighbors of r, in port order (index i => port K + i).
  const std::vector<RouterId>& neighbors(RouterId r) const { return adj_[r]; }
  // Port on r that reaches neighbor `to` (kPortInvalid if not adjacent).
  PortId portTo(RouterId r, RouterId to) const;
  bool adjacent(RouterId a, RouterId b) const { return portTo(a, b) != kPortInvalid; }
  // Routers adjacent to both a and b (the diameter-2 relay set).
  std::vector<RouterId> commonNeighbors(RouterId a, RouterId b) const;

 private:
  void build();

  std::uint32_t q_;
  std::uint32_t k_;
  std::uint32_t degree_;
  std::uint32_t numPorts_;
  std::vector<std::uint32_t> genEven_;  // X
  std::vector<std::uint32_t> genOdd_;   // X'
  std::vector<std::vector<RouterId>> adj_;  // per router, in port order
};

}  // namespace hxwar::topo
