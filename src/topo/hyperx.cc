#include "topo/hyperx.h"

#include <sstream>

#include "common/assert.h"

namespace hxwar::topo {

HyperX::HyperX(Params params)
    : widths_(std::move(params.widths)),
      k_(params.terminalsPerRouter),
      t_(params.trunking) {
  HXWAR_CHECK_MSG(!widths_.empty(), "HyperX needs at least one dimension");
  HXWAR_CHECK_MSG(k_ >= 1, "HyperX needs at least one terminal per router");
  HXWAR_CHECK_MSG(t_ >= 1, "HyperX trunking must be >= 1");
  numRouters_ = 1;
  dimStride_.resize(widths_.size());
  dimPortBase_.resize(widths_.size());
  std::uint32_t portBase = k_;
  for (std::size_t d = 0; d < widths_.size(); ++d) {
    HXWAR_CHECK_MSG(widths_[d] >= 2, "HyperX dimension width must be >= 2");
    dimStride_[d] = numRouters_;
    numRouters_ *= widths_[d];
    dimPortBase_[d] = portBase;
    portBase += (widths_[d] - 1) * t_;
  }
  numPorts_ = portBase;
}

std::string HyperX::name() const {
  std::ostringstream os;
  os << "HyperX(";
  for (std::size_t d = 0; d < widths_.size(); ++d) {
    if (d != 0) os << "x";
    os << widths_[d];
  }
  os << ", K=" << k_;
  if (t_ > 1) os << ", T=" << t_;
  os << ")";
  return os.str();
}

std::uint32_t HyperX::coord(RouterId r, std::uint32_t dim) const {
  return (r / dimStride_[dim]) % widths_[dim];
}

void HyperX::coords(RouterId r, std::vector<std::uint32_t>& out) const {
  out.resize(widths_.size());
  for (std::size_t d = 0; d < widths_.size(); ++d) {
    out[d] = coord(r, static_cast<std::uint32_t>(d));
  }
}

RouterId HyperX::routerAt(const std::vector<std::uint32_t>& c) const {
  HXWAR_CHECK(c.size() == widths_.size());
  RouterId r = 0;
  for (std::size_t d = 0; d < c.size(); ++d) {
    HXWAR_CHECK(c[d] < widths_[d]);
    r += c[d] * dimStride_[d];
  }
  return r;
}

PortId HyperX::dimPort(RouterId r, std::uint32_t dim, std::uint32_t to,
                       std::uint32_t trunk) const {
  const std::uint32_t own = coord(r, dim);
  HXWAR_CHECK_MSG(to != own, "dimPort target equals own coordinate");
  HXWAR_CHECK(to < widths_[dim] && trunk < t_);
  // Ports in dimension `dim` are ordered by (peer coordinate, trunk),
  // skipping the own coordinate.
  return dimPortBase_[dim] + (to < own ? to : to - 1) * t_ + trunk;
}

HyperX::PortMove HyperX::portMove(RouterId r, PortId p) const {
  HXWAR_CHECK_MSG(p >= k_ && p < numPorts_, "portMove on a non-network port");
  std::uint32_t dim = 0;
  while (dim + 1 < widths_.size() && p >= dimPortBase_[dim + 1]) ++dim;
  const std::uint32_t slot = (p - dimPortBase_[dim]) / t_;
  const std::uint32_t trunk = (p - dimPortBase_[dim]) % t_;
  const std::uint32_t own = coord(r, dim);
  const std::uint32_t to = (slot < own) ? slot : slot + 1;
  return PortMove{dim, to, trunk};
}

RouterId HyperX::neighbor(RouterId r, std::uint32_t dim, std::uint32_t to) const {
  const std::uint32_t own = coord(r, dim);
  return r + (static_cast<std::int64_t>(to) - own) * static_cast<std::int64_t>(dimStride_[dim]);
}

Topology::PortTarget HyperX::portTarget(RouterId r, PortId p) const {
  PortTarget t;
  if (p < k_) {
    t.kind = PortTarget::Kind::kTerminal;
    t.node = r * k_ + p;
    return t;
  }
  const PortMove mv = portMove(r, p);
  const RouterId peer = neighbor(r, mv.dim, mv.toCoord);
  t.kind = PortTarget::Kind::kRouter;
  t.router = peer;
  // The peer's port back toward us: same dimension, our coordinate, and the
  // same trunk index so trunked links pair one-to-one.
  t.port = dimPort(peer, mv.dim, coord(r, mv.dim), mv.trunk);
  return t;
}

std::uint32_t HyperX::minHops(RouterId a, RouterId b) const {
  std::uint32_t hops = 0;
  for (std::uint32_t d = 0; d < numDims(); ++d) {
    if (coord(a, d) != coord(b, d)) ++hops;
  }
  return hops;
}

std::uint32_t HyperX::unalignedMask(RouterId a, RouterId b) const {
  std::uint32_t mask = 0;
  for (std::uint32_t d = 0; d < numDims(); ++d) {
    if (coord(a, d) != coord(b, d)) mask |= (1u << d);
  }
  return mask;
}

}  // namespace hxwar::topo
