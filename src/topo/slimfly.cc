#include "topo/slimfly.h"

#include <algorithm>
#include <sstream>

#include "common/assert.h"

namespace hxwar::topo {
namespace {

bool isPrime(std::uint32_t n) {
  if (n < 2) return false;
  for (std::uint32_t d = 2; d * d <= n; ++d) {
    if (n % d == 0) return false;
  }
  return true;
}

std::uint32_t powMod(std::uint64_t base, std::uint64_t exp, std::uint64_t mod) {
  std::uint64_t result = 1;
  base %= mod;
  while (exp > 0) {
    if (exp & 1) result = result * base % mod;
    base = base * base % mod;
    exp >>= 1;
  }
  return static_cast<std::uint32_t>(result);
}

// Smallest primitive root of prime q.
std::uint32_t primitiveRoot(std::uint32_t q) {
  // Factor q-1.
  std::vector<std::uint32_t> factors;
  std::uint32_t n = q - 1;
  for (std::uint32_t d = 2; d * d <= n; ++d) {
    if (n % d == 0) {
      factors.push_back(d);
      while (n % d == 0) n /= d;
    }
  }
  if (n > 1) factors.push_back(n);
  for (std::uint32_t g = 2; g < q; ++g) {
    bool primitive = true;
    for (const std::uint32_t f : factors) {
      if (powMod(g, (q - 1) / f, q) == 1) {
        primitive = false;
        break;
      }
    }
    if (primitive) return g;
  }
  HXWAR_CHECK_MSG(false, "no primitive root found (q not prime?)");
  return 0;
}

}  // namespace

SlimFly::SlimFly(Params params) : q_(params.q) {
  HXWAR_CHECK_MSG(isPrime(q_), "SlimFly generator supports prime q");
  HXWAR_CHECK_MSG(q_ % 4 == 1, "SlimFly generator supports q == 1 (mod 4)");
  degree_ = (3 * q_ - 1) / 2;
  k_ = params.terminalsPerRouter == 0 ? (degree_ + 1) / 2 : params.terminalsPerRouter;
  numPorts_ = k_ + degree_;
  build();
}

void SlimFly::build() {
  // Generator sets: even and odd powers of the primitive element.
  const std::uint32_t xi = primitiveRoot(q_);
  std::vector<std::uint8_t> inEven(q_, 0), inOdd(q_, 0);
  std::uint64_t p = 1;
  for (std::uint32_t e = 0; e < q_ - 1; ++e) {
    ((e % 2 == 0) ? inEven : inOdd)[p] = 1;
    p = p * xi % q_;
  }
  for (std::uint32_t v = 1; v < q_; ++v) {
    if (inEven[v]) genEven_.push_back(v);
    if (inOdd[v]) genOdd_.push_back(v);
  }
  HXWAR_CHECK(genEven_.size() == (q_ - 1) / 2 && genOdd_.size() == (q_ - 1) / 2);
  // q == 1 (mod 4) makes both sets symmetric (-1 is an even power), which the
  // MMS construction requires for undirected edges.
  for (const auto g : genEven_) HXWAR_CHECK(inEven[(q_ - g) % q_]);
  for (const auto g : genOdd_) HXWAR_CHECK(inOdd[(q_ - g) % q_]);

  adj_.assign(numRouters(), {});
  for (RouterId r = 0; r < numRouters(); ++r) {
    const std::uint32_t s = subgraph(r);
    const std::uint32_t x = coordX(r);
    const std::uint32_t y = coordY(r);
    auto& nbrs = adj_[r];
    // Intra-group clique edges (generator order).
    const auto& gens = (s == 0) ? genEven_ : genOdd_;
    for (const std::uint32_t g : gens) {
      nbrs.push_back(routerAt(s, x, (y + g) % q_));
    }
    // Cross edges.
    if (s == 0) {
      // (0,x,y) ~ (1,m, y - m*x), ordered by m.
      for (std::uint32_t m = 0; m < q_; ++m) {
        const std::uint32_t c = (y + q_ - (m * x) % q_) % q_;
        nbrs.push_back(routerAt(1, m, c));
      }
    } else {
      // (1,m,c) ~ (0,x, m*x + c), ordered by x.
      for (std::uint32_t xx = 0; xx < q_; ++xx) {
        nbrs.push_back(routerAt(0, xx, (x * xx + y) % q_));
      }
    }
    HXWAR_CHECK(nbrs.size() == degree_);
  }
}

std::string SlimFly::name() const {
  std::ostringstream os;
  os << "SlimFly(q=" << q_ << ", K=" << k_ << ")";
  return os.str();
}

PortId SlimFly::portTo(RouterId r, RouterId to) const {
  const auto& nbrs = adj_[r];
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    if (nbrs[i] == to) return k_ + static_cast<PortId>(i);
  }
  return kPortInvalid;
}

Topology::PortTarget SlimFly::portTarget(RouterId r, PortId p) const {
  PortTarget t;
  if (p < k_) {
    t.kind = PortTarget::Kind::kTerminal;
    t.node = r * k_ + p;
    return t;
  }
  const RouterId peer = adj_[r][p - k_];
  t.kind = PortTarget::Kind::kRouter;
  t.router = peer;
  t.port = portTo(peer, r);
  HXWAR_CHECK_MSG(t.port != kPortInvalid, "SlimFly adjacency not symmetric");
  return t;
}

std::uint32_t SlimFly::minHops(RouterId a, RouterId b) const {
  if (a == b) return 0;
  if (adjacent(a, b)) return 1;
  return 2;  // MMS graphs have diameter 2 (verified by tests)
}

std::vector<RouterId> SlimFly::commonNeighbors(RouterId a, RouterId b) const {
  std::vector<RouterId> sa = adj_[a];
  std::vector<RouterId> sb = adj_[b];
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  std::vector<RouterId> out;
  std::set_intersection(sa.begin(), sa.end(), sb.begin(), sb.end(), std::back_inserter(out));
  return out;
}

}  // namespace hxwar::topo
