#include "topo/fattree.h"

#include <sstream>

#include "common/assert.h"

namespace hxwar::topo {

FatTree::FatTree(Params params) : down_(std::move(params.down)), up_(std::move(params.up)) {
  height_ = static_cast<std::uint32_t>(down_.size());
  HXWAR_CHECK_MSG(height_ >= 1, "FatTree needs at least one level");
  HXWAR_CHECK_MSG(up_.size() + 1 == down_.size(), "up.size() must be down.size()-1");
  for (const auto m : down_) HXWAR_CHECK(m >= 1);
  for (const auto w : up_) HXWAR_CHECK(w >= 1);

  subtrees_.resize(height_ + 1);
  copies_.resize(height_ + 1);
  leafSpan_.resize(height_ + 1);
  levelBase_.resize(height_ + 2);
  for (const auto m : down_) numNodes_ *= m;

  copies_[0] = 1;   // unused sentinel for level 0 (terminals)
  leafSpan_[0] = 1;
  std::uint32_t copyProd = 1;
  std::uint32_t span = 1;
  levelBase_[1] = 0;
  for (std::uint32_t l = 1; l <= height_; ++l) {
    copyProd *= (l == 1) ? 1 : up_[l - 2];
    span *= down_[l - 1];
    copies_[l] = copyProd;
    leafSpan_[l] = span;
    subtrees_[l] = numNodes_ / span;
    const std::uint32_t count = subtrees_[l] * copies_[l];
    levelBase_[l + 1] = levelBase_[l] + count;
  }
  totalSwitches_ = levelBase_[height_ + 1];
}

std::string FatTree::name() const {
  std::ostringstream os;
  os << "XGFT(" << height_ << "; m=";
  for (std::size_t i = 0; i < down_.size(); ++i) os << (i ? "," : "") << down_[i];
  os << "; w=";
  for (std::size_t i = 0; i < up_.size(); ++i) os << (i ? "," : "") << up_[i];
  os << ")";
  return os.str();
}

std::uint32_t FatTree::level(RouterId r) const {
  for (std::uint32_t l = 1; l <= height_; ++l) {
    if (r < levelBase_[l + 1]) return l;
  }
  HXWAR_CHECK_MSG(false, "router id out of range");
  return 0;
}

std::uint32_t FatTree::subtree(RouterId r) const {
  const std::uint32_t l = level(r);
  return (r - levelBase_[l]) / copies_[l];
}

std::uint32_t FatTree::copy(RouterId r) const {
  const std::uint32_t l = level(r);
  return (r - levelBase_[l]) % copies_[l];
}

RouterId FatTree::switchId(std::uint32_t lvl, std::uint32_t t, std::uint32_t w) const {
  HXWAR_CHECK(lvl >= 1 && lvl <= height_ && t < subtrees_[lvl] && w < copies_[lvl]);
  return levelBase_[lvl] + t * copies_[lvl] + w;
}

std::uint32_t FatTree::numPorts(RouterId r) const {
  const std::uint32_t l = level(r);
  return down_[l - 1] + (l < height_ ? up_[l - 1] : 0);
}

RouterId FatTree::nodeRouter(NodeId n) const {
  // Level-1 switch above node n; copies_[1] == 1 so subtree index == id slot.
  return switchId(1, n / down_[0], 0);
}

PortId FatTree::nodePort(NodeId n) const { return n % down_[0]; }

Topology::PortTarget FatTree::portTarget(RouterId r, PortId p) const {
  PortTarget t;
  const std::uint32_t l = level(r);
  const std::uint32_t tr = subtree(r);
  const std::uint32_t w = copy(r);
  if (p < down_[l - 1]) {
    // Down port p.
    if (l == 1) {
      t.kind = PortTarget::Kind::kTerminal;
      t.node = tr * down_[0] + p;
      return t;
    }
    // Child switch at level l-1: subtree tr*m_l + p; copy derived from ours.
    const std::uint32_t childSubtree = tr * down_[l - 1] + p;
    const std::uint32_t childCopy = w % copies_[l - 1];
    const std::uint32_t k = w / copies_[l - 1];  // which parent we are to it
    t.kind = PortTarget::Kind::kRouter;
    t.router = switchId(l - 1, childSubtree, childCopy);
    t.port = down_[l - 2] + k;  // child's up port k
    return t;
  }
  // Up port k at level l (< height).
  HXWAR_CHECK(l < height_);
  const std::uint32_t k = p - down_[l - 1];
  HXWAR_CHECK(k < up_[l - 1]);
  const std::uint32_t parentSubtree = tr / down_[l];
  const std::uint32_t parentCopy = k * copies_[l] + w;
  t.kind = PortTarget::Kind::kRouter;
  t.router = switchId(l + 1, parentSubtree, parentCopy);
  t.port = tr % down_[l];  // we are child index (tr mod m_{l+1}) of the parent
  return t;
}

std::uint32_t FatTree::ncaLevel(NodeId a, NodeId b) const {
  for (std::uint32_t l = 1; l <= height_; ++l) {
    if (a / leafSpan_[l] == b / leafSpan_[l]) return l;
  }
  HXWAR_CHECK_MSG(false, "nodes share no ancestor");
  return height_;
}

std::uint32_t FatTree::downDigit(NodeId n, std::uint32_t lvl) const {
  // The down port used at a level-lvl switch on the way down to n.
  return (n / leafSpan_[lvl - 1]) % down_[lvl - 1];
}

std::uint32_t FatTree::minHops(RouterId a, RouterId b) const {
  if (a == b) return 0;
  std::uint32_t la = level(a), lb = level(b);
  std::uint32_t ta = subtree(a), tb = subtree(b);
  // Climb both to the first level where the subtrees coincide. Copies are
  // reachable because every parent set spans all copies.
  std::uint32_t hops = 0;
  while (la < lb) {
    ta /= down_[la];
    ++la;
    ++hops;
  }
  while (lb < la) {
    tb /= down_[lb];
    ++lb;
    ++hops;
  }
  while (ta != tb) {
    HXWAR_CHECK(la < height_);
    ta /= down_[la];
    tb /= down_[la];
    ++la;
    hops += 2;
  }
  // Same level & subtree but different copy: go up one and back down.
  if (hops == 0 && a != b) hops = 2;
  return hops;
}

}  // namespace hxwar::topo
