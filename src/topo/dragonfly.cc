#include "topo/dragonfly.h"

#include <sstream>

#include "common/assert.h"

namespace hxwar::topo {

Dragonfly::Dragonfly(Params params)
    : p_(params.terminalsPerRouter),
      a_(params.routersPerGroup),
      h_(params.globalsPerRouter),
      g_(params.numGroups == 0 ? params.routersPerGroup * params.globalsPerRouter + 1
                               : params.numGroups) {
  HXWAR_CHECK(p_ >= 1 && a_ >= 2 && h_ >= 1);
  HXWAR_CHECK_MSG(g_ >= 2, "Dragonfly needs at least two groups");
  HXWAR_CHECK_MSG(g_ <= a_ * h_ + 1, "too many groups for global port count");
  w_ = (a_ * h_) / (g_ - 1);
  HXWAR_CHECK_MSG(w_ >= 1, "not enough global ports to reach every group");
}

std::string Dragonfly::name() const {
  std::ostringstream os;
  os << "Dragonfly(p=" << p_ << ",a=" << a_ << ",h=" << h_ << ",g=" << g_ << ")";
  return os.str();
}

PortId Dragonfly::localPort(RouterId r, std::uint32_t peerLocal) const {
  const std::uint32_t own = localIdx(r);
  HXWAR_CHECK(peerLocal != own && peerLocal < a_);
  return p_ + (peerLocal < own ? peerLocal : peerLocal - 1);
}

bool Dragonfly::slotPeer(std::uint32_t grp, std::uint32_t s, std::uint32_t* peerGroup,
                         std::uint32_t* peerSlot) const {
  if (s >= w_ * (g_ - 1)) return false;  // unused trunk remainder
  const std::uint32_t o = s / w_ + 1;    // group offset 1..g-1
  const std::uint32_t c = s % w_;        // trunk copy
  *peerGroup = (grp + o) % g_;
  *peerSlot = (g_ - o - 1) * w_ + c;
  return true;
}

Dragonfly::GlobalExit Dragonfly::exitTo(std::uint32_t grp, std::uint32_t toGroup,
                                        std::uint32_t copy) const {
  HXWAR_CHECK(toGroup != grp && toGroup < g_ && copy < w_);
  const std::uint32_t o = (toGroup + g_ - grp) % g_;
  const std::uint32_t s = (o - 1) * w_ + copy;
  return GlobalExit{routerOf(grp, s / h_), s % h_};
}

Topology::PortTarget Dragonfly::portTarget(RouterId r, PortId port) const {
  PortTarget t;
  if (port < p_) {
    t.kind = PortTarget::Kind::kTerminal;
    t.node = r * p_ + port;
    return t;
  }
  if (isLocalPort(port)) {
    const std::uint32_t slot = port - p_;
    const std::uint32_t own = localIdx(r);
    const std::uint32_t peerLocal = (slot < own) ? slot : slot + 1;
    const RouterId peer = routerOf(group(r), peerLocal);
    t.kind = PortTarget::Kind::kRouter;
    t.router = peer;
    t.port = localPort(peer, own);
    return t;
  }
  // Global port.
  const std::uint32_t k = port - p_ - (a_ - 1);
  const std::uint32_t s = globalSlot(r, k);
  std::uint32_t pg = 0, ps = 0;
  if (!slotPeer(group(r), s, &pg, &ps)) {
    t.kind = PortTarget::Kind::kUnused;
    return t;
  }
  t.kind = PortTarget::Kind::kRouter;
  t.router = routerOf(pg, ps / h_);
  t.port = globalPort(ps % h_);
  return t;
}

std::uint32_t Dragonfly::minHops(RouterId a, RouterId b) const {
  if (a == b) return 0;
  const std::uint32_t ga = group(a), gb = group(b);
  if (ga == gb) return 1;
  std::uint32_t best = 4;  // upper bound: l + g + l is 3; start above
  for (std::uint32_t c = 0; c < w_; ++c) {
    const GlobalExit ex = exitTo(ga, gb, c);
    std::uint32_t pg = 0, ps = 0;
    HXWAR_CHECK(slotPeer(ga, globalSlot(ex.router, ex.portK), &pg, &ps));
    const RouterId entry = routerOf(pg, ps / h_);
    const std::uint32_t hops = (a == ex.router ? 0u : 1u) + 1u + (b == entry ? 0u : 1u);
    if (hops < best) best = hops;
  }
  return best;
}

}  // namespace hxwar::topo
