#include "routing/route_cache.h"

namespace hxwar::routing {

DimMoveCache::DimMoveCache(const topo::HyperX& topo) : trunking_(topo.trunking()) {
  const std::uint32_t dims = topo.numDims();
  dimBase_.resize(dims);
  width_.resize(dims);
  std::uint32_t total = 0;
  for (std::uint32_t d = 0; d < dims; ++d) {
    dimBase_[d] = total;
    width_[d] = topo.width(d);
    total += width_[d] * width_[d];
  }
  entries_.resize(total);
  // dimPort is router-uniform given the router's own coordinate in the move
  // dimension, so router 0 shifted to coordinate cc stands in for every
  // router with that coordinate. Walk cc's row of each dimension once.
  for (std::uint32_t d = 0; d < dims; ++d) {
    for (std::uint32_t cc = 0; cc < width_[d]; ++cc) {
      // A representative router whose coordinate in d is cc: router 0 has
      // all-zero coordinates; moving it to cc in d keeps the others zero.
      const RouterId rep = cc == 0 ? 0 : topo.neighbor(0, d, cc);
      for (std::uint32_t dc = 0; dc < width_[d]; ++dc) {
        if (dc == cc) continue;
        Entry& e = entries_[dimBase_[d] + cc * width_[d] + dc];
        e.minBegin = static_cast<std::uint32_t>(pool_.size());
        for (std::uint32_t t = 0; t < trunking_; ++t) {
          pool_.push_back(topo.dimPort(rep, d, dc, t));
        }
        e.derBegin = static_cast<std::uint32_t>(pool_.size());
        for (std::uint32_t x = 0; x < width_[d]; ++x) {
          if (x == cc || x == dc) continue;
          for (std::uint32_t t = 0; t < trunking_; ++t) {
            pool_.push_back(topo.dimPort(rep, d, x, t));
          }
        }
        e.derCount = static_cast<std::uint32_t>(pool_.size()) - e.derBegin;
      }
    }
  }
}

}  // namespace hxwar::routing
