#include "routing/ftar.h"

#include "common/assert.h"
#include "net/router.h"

namespace hxwar::routing {

void FtarRouting::route(const RouteContext& ctx, net::Packet& pkt,
                        std::vector<Candidate>& out) {
  if (emitEjectIfLocal(ctx, pkt, out)) return;
  const RouterId cur = ctx.routerId;
  const RouterId dst = destRouter(pkt);
  const fault::DeadPortMask* mask = ctx.deadPorts;

  // Monotone escalation: a packet that entered the escape class stays on it
  // to the destination — class order 0/1 -> 2 is acyclic, and within class 2
  // every hop strictly decreases the masked BFS distance, so the escape
  // network cannot cycle. (inClass can be 2 only after an escape grant, which
  // requires a mask; the mask pointer persists for the run once faults are
  // configured.)
  if (!ctx.atSource && ctx.inClass == kEscapeClass) {
    HXWAR_CHECK_MSG(mask != nullptr, "FTAR escape-class packet without a fault mask");
    escape_.emitEscape(*mask, cur, dst, kEscapeClass, out);
    return;
  }

  const std::uint32_t unaligned = topo_.minHops(cur, dst);
  const std::uint32_t d = firstUnalignedDim(cur, dst);
  const std::uint32_t cc = topo_.coord(cur, d);
  const std::uint32_t dc = topo_.coord(dst, d);

  if (mask != nullptr) {
    // DimWAR's fault-aware adaptive emission (see DimWarRouting::route for
    // the lookahead rationale); cached per (cur, dst) tagged with the mask
    // version, class restriction applied at emission time.
    MaskedRouteCache::Entry& e = maskedCache_.slot(cur, dst);
    if (e.cur != cur || e.dst != dst || e.maskVersion != mask->version()) {
      e.cur = cur;
      e.dst = dst;
      e.maskVersion = mask->version();
      e.items.clear();
      if (moveLive(mask, cur, d, dc)) {
        for (std::uint32_t t = 0; t < topo_.trunking(); ++t) {
          const PortId port = topo_.dimPort(cur, d, dc, t);
          if (mask->isDead(cur, port)) continue;
          e.items.push_back(MaskedItem{port, unaligned, static_cast<std::uint8_t>(d), false});
        }
      }
      for (std::uint32_t x = 0; x < topo_.width(d); ++x) {
        if (x == cc || x == dc) continue;
        if (!moveLive(mask, cur, d, x)) continue;
        if (!moveLive(mask, topo_.neighbor(cur, d, x), d, dc)) continue;
        for (std::uint32_t t = 0; t < topo_.trunking(); ++t) {
          const PortId port = topo_.dimPort(cur, d, x, t);
          if (mask->isDead(cur, port)) continue;
          e.items.push_back(
              MaskedItem{port, unaligned + 1, static_cast<std::uint8_t>(d), true});
        }
      }
    }
    for (const MaskedItem& it : e.items) {
      if (it.deroute && ctx.inClass != 0) continue;
      out.push_back(Candidate{it.port, it.deroute ? 1u : 0u, it.hopsRemaining, it.deroute});
    }
    if (!out.empty()) return;
    // Adaptive dead end — degraded beyond one-deroute routability from here.
    // Escalate onto the escape class instead of falling through to dead
    // candidates; empty escape output means the destination is partitioned
    // away and the router's dead-end ladder takes over.
    escape_.emitEscape(*mask, cur, dst, kEscapeClass, out);
    return;
  }

  // Fault-free: exactly DimWAR's emission on classes 0/1.
  const DimMoveCache::Entry& geo = dimCache_.entry(d, cc, dc);
  const PortId* minPorts = dimCache_.ports(geo.minBegin);
  for (std::uint32_t t = 0; t < dimCache_.trunking(); ++t) {
    out.push_back(Candidate{minPorts[t], 0, unaligned, false});
  }
  if (ctx.inClass == 0) {
    const PortId* derPorts = dimCache_.ports(geo.derBegin);
    for (std::uint32_t i = 0; i < geo.derCount; ++i) {
      out.push_back(Candidate{derPorts[i], 1, unaligned + 1, true});
    }
  }
}

AlgorithmInfo FtarRouting::info() const {
  return AlgorithmInfo{"FTAR", true, AlgorithmInfo::Style::kIncremental,
                       "2+1e", "R.R. & escape", "seq. alloc.", "none"};
}

std::unique_ptr<RoutingAlgorithm> makeFtarRouting(const topo::HyperX& topo) {
  return std::make_unique<FtarRouting>(topo);
}

}  // namespace hxwar::routing
