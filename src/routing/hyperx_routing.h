// HyperX routing algorithms.
//
// Implements the two algorithms contributed by the paper — DimWAR (§5.1) and
// OmniWAR (§5.2) — plus every baseline the evaluation compares against:
// DOR, Valiant (VAL), minimal-adaptive (Min-AD), UGAL, and Clos-AD (a.k.a.
// UGAL+, evaluated without sequential allocation per §4.1). DAL (§4.2) lives
// in dal.h because of its escape-path machinery.
//
// Deadlock-avoidance summary (see DESIGN.md §3 for the full arguments):
//   DOR      1 class   restricted routes (dimension order)
//   VAL      2 classes one DOR phase per class
//   UGAL     2 classes minimal rides the phase-2 class
//   Clos-AD  2 classes two DOR phases through an LCA-consistent intermediate
//   Min-AD   N classes distance classes (VC = hop index)
//   DimWAR   2 classes deroute hops on class 1, minimal hops on class 0
//   OmniWAR  N+M       distance classes, M deroutes anywhere
#pragma once

#include <memory>
#include <string>

#include "routing/fault_escape.h"
#include "routing/route_cache.h"
#include "routing/routing.h"
#include "topo/hyperx.h"

namespace hxwar::routing {

// Shared base: destination lookup, ejection handling, DOR next hop.
class HyperXRoutingBase : public RoutingAlgorithm {
 public:
  explicit HyperXRoutingBase(const topo::HyperX& topo) : topo_(topo) {}

 protected:
  // If the packet's destination terminal attaches to ctx's router, emits one
  // ejection candidate per class and returns true.
  bool emitEjectIfLocal(const RouteContext& ctx, const net::Packet& pkt,
                        std::vector<Candidate>& out) const;

  // First unaligned dimension in fixed order, or numDims() if aligned.
  std::uint32_t firstUnalignedDim(RouterId cur, RouterId dst) const;

  // DOR candidate toward `target` router using `vcClass` on a specific trunk
  // (oblivious algorithms pick one trunk per packet).
  Candidate dorStep(RouterId cur, RouterId target, std::uint32_t vcClass,
                    std::uint32_t hopsRemaining, std::uint32_t trunk = 0) const;

  // Same next hop, but one candidate per trunk link (adaptive algorithms let
  // the router's weight function pick among parallel links).
  void emitDorStep(std::vector<Candidate>& out, RouterId cur, RouterId target,
                   std::uint32_t vcClass, std::uint32_t hopsRemaining) const;

  // One candidate per trunk for a move in `dim` to coordinate `to`.
  void emitDimMove(std::vector<Candidate>& out, RouterId cur, std::uint32_t dim,
                   std::uint32_t to, std::uint32_t vcClass, std::uint32_t hopsRemaining,
                   bool deroute, std::uint8_t derouteDim = 0xff) const;

  // True when some trunk of the move cur --dim--> to survives the fault mask
  // (nullptr mask = no faults). The mask is global, so this also answers
  // one-step lookahead queries at remote routers (`cur` need not be ctx's
  // router) — fault-aware deroutes check both legs before committing.
  bool moveLive(const fault::DeadPortMask* mask, RouterId cur, std::uint32_t dim,
                std::uint32_t to) const;

  // emitDimMove restricted to live trunks (emits nothing if all are dead).
  void emitDimMoveLive(const fault::DeadPortMask* mask, std::vector<Candidate>& out,
                       RouterId cur, std::uint32_t dim, std::uint32_t to,
                       std::uint32_t vcClass, std::uint32_t hopsRemaining, bool deroute,
                       std::uint8_t derouteDim = 0xff) const;

  RouterId destRouter(const net::Packet& pkt) const { return topo_.nodeRouter(pkt.dst); }

  const topo::HyperX& topo_;
};

// --- Oblivious baselines -------------------------------------------------

class DorRouting final : public HyperXRoutingBase {
 public:
  using HyperXRoutingBase::HyperXRoutingBase;
  void route(const RouteContext& ctx, net::Packet& pkt, std::vector<Candidate>& out) override;
  std::uint32_t numClasses() const override { return 1; }
  AlgorithmInfo info() const override;
};

class ValiantRouting final : public HyperXRoutingBase {
 public:
  using HyperXRoutingBase::HyperXRoutingBase;
  void route(const RouteContext& ctx, net::Packet& pkt, std::vector<Candidate>& out) override;
  std::uint32_t numClasses() const override { return 2; }
  AlgorithmInfo info() const override;
};

// --- Source-adaptive baselines -------------------------------------------

// Universal Global Adaptive Load-balancing (Singh): at the source router,
// compare the congestion-weighted cost of the minimal DOR path against one
// randomly chosen Valiant path; commit to whichever wins.
class UgalRouting final : public HyperXRoutingBase {
 public:
  UgalRouting(const topo::HyperX& topo, double bias) : HyperXRoutingBase(topo), bias_(bias) {}
  void route(const RouteContext& ctx, net::Packet& pkt, std::vector<Candidate>& out) override;
  std::uint32_t numClasses() const override { return 2; }
  AlgorithmInfo info() const override;

 private:
  double bias_;
};

// Clos-AD / UGAL+ (Kim, Flattened Butterfly): weighs *every* unaligned output
// port at the source (least-common-ancestor rule), picks the lightest, and if
// that port is non-minimal selects a random LCA-consistent intermediate.
// Evaluated without the sequential allocator, as in the paper.
class ClosAdRouting final : public HyperXRoutingBase {
 public:
  ClosAdRouting(const topo::HyperX& topo, double bias) : HyperXRoutingBase(topo), bias_(bias) {}
  void route(const RouteContext& ctx, net::Packet& pkt, std::vector<Candidate>& out) override;
  std::uint32_t numClasses() const override { return 2; }
  AlgorithmInfo info() const override;

 private:
  double bias_;
};

// --- Incremental adaptive algorithms (the paper's contribution) ----------

// Dimensionally-ordered Weighted Adaptive Routing (§5.1): dimensions in
// order, at most one deroute per dimension; deroutes ride class 1, minimal
// hops class 0 — two classes regardless of dimensionality.
class DimWarRouting final : public HyperXRoutingBase {
 public:
  explicit DimWarRouting(const topo::HyperX& topo, VcPolicy vcPolicy = VcPolicy::kStatic)
      : HyperXRoutingBase(topo), dimCache_(topo), vcPolicy_(vcPolicy), escape_(topo) {}
  void route(const RouteContext& ctx, net::Packet& pkt, std::vector<Candidate>& out) override;
  // static: minimal on 0, deroutes on 1. dateline: class = deroutes taken so
  // far (each deroute escalates, budget N anywhere instead of one per
  // dimension). escape: the static pair plus one reserved escape class.
  std::uint32_t numClasses() const override {
    switch (vcPolicy_) {
      case VcPolicy::kDateline:
        return topo_.numDims() + 1;
      case VcPolicy::kEscape:
        return 3;
      case VcPolicy::kStatic:
        break;
    }
    return 2;
  }
  AlgorithmInfo info() const override;
  VcPolicy vcPolicy() const { return vcPolicy_; }

 private:
  DimMoveCache dimCache_;         // fault-free port geometry, immutable
  MaskedRouteCache maskedCache_;  // filtered lists under a fault mask
  VcPolicy vcPolicy_;
  EscapeTable escape_;            // used only under VcPolicy::kEscape
};

// Omni-dimensional Weighted Adaptive Routing (§5.2): any unaligned dimension
// at any time, M deroutes anywhere on the path, distance-class VCs (N+M).
// Min-AD is the M = 0 special case. Optionally restricts back-to-back
// deroutes in the same dimension (the §5.2 optimization).
class OmniWarRouting final : public HyperXRoutingBase {
 public:
  OmniWarRouting(const topo::HyperX& topo, std::uint32_t deroutes, bool restrictBackToBack,
                 bool minimalOnly = false, VcPolicy vcPolicy = VcPolicy::kStatic)
      : HyperXRoutingBase(topo),
        dimCache_(topo),
        deroutes_(deroutes),
        restrictBackToBack_(restrictBackToBack),
        minimalOnly_(minimalOnly),
        vcPolicy_(vcPolicy),
        escape_(topo) {}
  void route(const RouteContext& ctx, net::Packet& pkt, std::vector<Candidate>& out) override;
  // Distance classes, plus one reserved escape class under VcPolicy::kEscape.
  // (OmniWAR's distance classes already act as datelines, so kDateline maps
  // to the static scheme.)
  std::uint32_t numClasses() const override {
    return topo_.numDims() + deroutes_ + (vcPolicy_ == VcPolicy::kEscape ? 1 : 0);
  }
  AlgorithmInfo info() const override;

  std::uint32_t maxDeroutes() const { return deroutes_; }
  bool minimalOnly() const { return minimalOnly_; }
  VcPolicy vcPolicy() const { return vcPolicy_; }

 private:
  std::uint32_t escapeClass() const { return topo_.numDims() + deroutes_; }

  DimMoveCache dimCache_;         // fault-free port geometry, immutable
  MaskedRouteCache maskedCache_;  // filtered lists under a fault mask
  std::uint32_t deroutes_;
  bool restrictBackToBack_;
  // Min-AD mode: never emit deroute candidates. (Plain OmniWAR with M = 0 can
  // still deroute packets whose minimal distance is below N, because the
  // budget check is against remaining distance classes — paper §5.2 step 2.)
  bool minimalOnly_;
  VcPolicy vcPolicy_;
  EscapeTable escape_;  // used only under VcPolicy::kEscape
};

// --- Factory --------------------------------------------------------------

struct HyperXRoutingOptions {
  static constexpr std::uint32_t kOmniDeroutesDefault = 0xffffffffu;

  double ugalBias = 1.0;
  // OmniWAR deroute budget M. Default sentinel => one per dimension (M = N);
  // 0 is honored as a genuine zero budget (deroutes only on distance slack).
  std::uint32_t omniDeroutes = kOmniDeroutesDefault;
  bool omniRestrictBackToBack = true;
  // VC allocation / deadlock-avoidance axis (--vc-policy); honored by
  // DimWAR, OmniWAR, and DAL (routing/dal.h). FTAR always carries its escape
  // class; the oblivious/source baselines have no fault-aware emission to
  // escalate from, so the axis is a no-op for them.
  VcPolicy vcPolicy = VcPolicy::kStatic;
};

// names: dor, val, minad, ugal, closad (alias ugal+), dimwar, omniwar, ftar
std::unique_ptr<RoutingAlgorithm> makeHyperXRouting(const std::string& name,
                                                    const topo::HyperX& topo,
                                                    const HyperXRoutingOptions& opts = {});

// All algorithm names the factory accepts, in canonical evaluation order.
const std::vector<std::string>& hyperxAlgorithmNames();

}  // namespace hxwar::routing
