// Fault-escape routing infrastructure (DESIGN.md §13).
//
// Two pieces shared by FTAR (routing/ftar.h) and the escape retrofits in
// DimWAR / OmniWAR / DAL:
//
//   * VcPolicy — the pluggable VC-allocation / deadlock-avoidance axis
//     (--vc-policy). `static` keeps each algorithm's native class scheme,
//     `dateline` swaps DimWAR onto per-deroute class escalation, and `escape`
//     reserves one extra class as a Duato-style escape network.
//
//   * EscapeTable — per-destination BFS distances over the masked (degraded)
//     graph, emitted as strictly-distance-decreasing escape candidates. Every
//     escape hop uses atomic queue allocation (§4.2) and the escape class is
//     monotone (a packet that enters it never leaves), so the escape network
//     is deadlock-safe and delivers on ANY connected degraded network — the
//     guarantee the adaptive candidate rules lose beyond one-deroute
//     routability.
//
// Distance vectors are cached per destination in a direct-mapped table tagged
// with the DeadPortMask version, so transient kill/revive flips invalidate
// lazily, exactly like MaskedRouteCache. All state is per-routing-instance
// (one per shard), never shared across workers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/dead_port_mask.h"
#include "routing/routing.h"
#include "topo/topology.h"

namespace hxwar::routing {

// VC allocation / deadlock-avoidance policy (--vc-policy).
enum class VcPolicy : std::uint8_t {
  kStatic = 0,    // each algorithm's native class scheme (default)
  kDateline = 1,  // DimWAR: per-deroute class escalation; others: as static
  kEscape = 2,    // reserve one escape class fed by EscapeTable
};

const char* vcPolicyName(VcPolicy policy);
// Returns false (leaving *out untouched) on an unrecognized name.
bool parseVcPolicy(const std::string& name, VcPolicy* out);

class EscapeTable {
 public:
  explicit EscapeTable(const topo::Topology& topo) : topo_(topo) {}

  // Appends one candidate on `escapeClass` per live port whose far router is
  // strictly closer (masked BFS) to the destination, in ascending port order.
  // Candidates carry atomic=true (escape-path allocation rule) and
  // faultEscape=true (telemetry). Emits nothing when dst is unreachable from
  // cur over the surviving links — the router's dead-end ladder then decides.
  void emitEscape(const fault::DeadPortMask& mask, RouterId cur, RouterId dst,
                  std::uint32_t escapeClass, std::vector<Candidate>& out);

  // Masked BFS hop count cur -> dst (fault::kUnreachable when partitioned
  // apart). Exposed for tests and the resilience bench.
  std::uint32_t distance(const fault::DeadPortMask& mask, RouterId cur, RouterId dst);

 private:
  struct Entry {
    RouterId dst = kRouterInvalid;
    std::uint64_t maskVersion = ~std::uint64_t{0};
    std::vector<std::uint32_t> dist;  // dist[r] = hops r -> dst (mask symmetric)
  };

  const std::vector<std::uint32_t>& distances(const fault::DeadPortMask& mask,
                                              RouterId dst);

  // Direct-mapped, sized lazily on first use: fault-free runs never pay for
  // the table. 64 slots x numRouters u32 each — refill is one BFS, and the
  // escape path is exercised only at dead ends, far off the common case.
  static constexpr std::size_t kSlots = 64;

  const topo::Topology& topo_;
  std::vector<Entry> slots_;
};

}  // namespace hxwar::routing
