// Routing algorithm interface.
//
// The router invokes route() whenever a head flit is at the front of an input
// VC and has not yet been assigned an output. The algorithm emits candidates
// as (output port, VC class, remaining hops, deroute?) tuples; the router
// expands classes to concrete VCs, filters by availability, weighs candidates
// by congestion x hops, and picks the minimum (random tie-break).
//
// Resource classes: every algorithm declares numClasses(); the router maps
// class c onto the VC set { v : v % numClasses == c } so that algorithms
// needing fewer classes than the configured VCs spread over the spare VCs for
// head-of-line-blocking relief, exactly as the paper's methodology prescribes
// (8 VCs for every algorithm). Deadlock safety only depends on the class
// order, which the mapping preserves.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "fault/dead_port_mask.h"
#include "net/packet.h"

namespace hxwar::net {
class Router;
}

namespace hxwar::obs {
class NetObserver;
}

namespace hxwar::routing {

struct Candidate {
  PortId port = kPortInvalid;
  std::uint32_t vcClass = 0;
  std::uint32_t hopsRemaining = 0;  // including this hop, to the dest router
  bool deroute = false;
  // Atomic queue allocation (escape-path rule, §4.2): the output VC may only
  // be granted when the downstream buffer is completely empty AND all credits
  // have returned — one packet per VC per credit round trip.
  bool atomic = false;
  // If this deroute is granted, the router sets bit `derouteDim` in the
  // packet's deroutedDims mask (DAL's once-per-dimension bookkeeping).
  std::uint8_t derouteDim = 0xff;
  // This deroute exists only because a fault killed the minimal option (DAL's
  // re-deroute retry); telemetry counts these separately from congestion
  // deroutes.
  bool faultEscape = false;
};

// Context handed to route(): where the head flit sits.
struct RouteContext {
  net::Router& router;  // current router (congestion queries, rng)
  RouterId routerId;    // dense id of `router` — the identity algorithms key on
  PortId inPort;
  VcId inVc;        // meaningless when atSource
  bool atSource;    // head is at its source router (arrived from a terminal)
  std::uint32_t inClass;  // class of inVc (0 when atSource)
  // Dead-port mask when the network carries faults, nullptr otherwise.
  // Fault-aware algorithms (DAL/DimWAR/OmniWAR) consult it — including
  // one-step lookahead at remote routers — to skip dead candidates; the
  // router additionally filters every returned candidate against it, so
  // non-fault-aware algorithms fail loudly (or drop, under --fault-drop) at
  // the dead end instead of stalling forever.
  const fault::DeadPortMask* deadPorts = nullptr;
  // Observability sink when attached (nullptr otherwise). Source-adaptive
  // algorithms report path-level deroute commitments through it.
  obs::NetObserver* obs = nullptr;
};

// Static implementation properties (reproduces Table 1).
struct AlgorithmInfo {
  std::string name;
  bool dimensionOrdered = false;
  enum class Style { kOblivious, kSource, kIncremental } style = Style::kOblivious;
  std::string vcsRequired;        // e.g. "2", "N+M", "1+1e"
  std::string deadlockHandling;   // e.g. "R.R. & R.C."
  std::string archRequirements;   // e.g. "none", "seq. alloc."
  std::string packetContents;     // e.g. "none", "int. addr."
};

class RoutingAlgorithm {
 public:
  virtual ~RoutingAlgorithm() = default;

  // Appends candidates for the packet's next hop. If the packet's
  // destination terminal attaches to this router, the algorithm must emit a
  // single candidate for the terminal port (hopsRemaining = 0) — helper
  // provided by implementations. Must always emit at least one candidate.
  virtual void route(const RouteContext& ctx, net::Packet& pkt,
                     std::vector<Candidate>& out) = 0;

  // Number of resource classes this algorithm uses for deadlock avoidance.
  virtual std::uint32_t numClasses() const = 0;

  virtual AlgorithmInfo info() const = 0;
};

// class <-> VC mapping shared by router and algorithms.
class VcMap {
 public:
  VcMap(std::uint32_t numVcs, std::uint32_t numClasses)
      : numVcs_(numVcs), numClasses_(numClasses) {}

  std::uint32_t numVcs() const { return numVcs_; }
  std::uint32_t numClasses() const { return numClasses_; }
  std::uint32_t classOf(VcId vc) const { return vc % numClasses_; }
  // VCs of a class are {c, c+numClasses, c+2*numClasses, ...}.
  std::uint32_t vcsInClass(std::uint32_t c) const {
    return (numVcs_ - c + numClasses_ - 1) / numClasses_;
  }
  VcId vcOf(std::uint32_t c, std::uint32_t idx) const { return c + idx * numClasses_; }

 private:
  std::uint32_t numVcs_;
  std::uint32_t numClasses_;
};

}  // namespace hxwar::routing
