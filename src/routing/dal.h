// Dimensionally Adaptive Load-balancing (DAL, Ahn et al. SC'09), as
// discussed in §4.2 of the paper.
//
// DAL deroutes at most once per dimension (tracked in an N-bit field inside
// the packet) and may traverse unaligned dimensions in any order. Its
// original deadlock-avoidance scheme uses Duato-style escape paths, which on
// modern high-radix router architectures are only implementable with *atomic
// queue allocation*: an output VC is granted only when the downstream buffer
// is completely empty and all credits have returned. That caps throughput at
//
//     PktSize x NumVCs / CreditRoundTrip            (§4.2, footnote 3)
//
// — 8% for single-flit packets and ~68% for 1-16-flit packets on the paper's
// platform. This implementation reproduces exactly that practical variant
// (every allocation atomic); the sec42_dal_limit bench validates the formula
// against simulation. It is excluded from the headline figures, as in the
// paper.
#pragma once

#include <memory>

#include "routing/hyperx_routing.h"

namespace hxwar::routing {

class DalRouting final : public HyperXRoutingBase {
 public:
  // atomicAllocation=false gives the idealized DAL (single-cycle-channel
  // behaviour from the original paper) for comparison; it relies on the
  // deroute budget alone and is only deadlock-safe as an escape-less
  // approximation, so use it for analysis benches only.
  //
  // VcPolicy::kEscape reserves class 1 as a BFS-descent escape network
  // (routing/fault_escape.h) the packet escalates onto when even the fault
  // re-deroute retry dead-ends; kDateline has no DAL-specific meaning (the
  // escape-path allocation rule already avoids deadlock at any deroute
  // count) and maps to the static single-class scheme.
  DalRouting(const topo::HyperX& topo, bool atomicAllocation = true,
             VcPolicy vcPolicy = VcPolicy::kStatic)
      : HyperXRoutingBase(topo), atomic_(atomicAllocation), vcPolicy_(vcPolicy),
        escape_(topo) {}

  void route(const RouteContext& ctx, net::Packet& pkt, std::vector<Candidate>& out) override;
  std::uint32_t numClasses() const override {
    return vcPolicy_ == VcPolicy::kEscape ? 2 : 1;
  }
  AlgorithmInfo info() const override;

 private:
  bool atomic_;
  VcPolicy vcPolicy_;
  EscapeTable escape_;  // used only under VcPolicy::kEscape
};

std::unique_ptr<RoutingAlgorithm> makeDalRouting(const topo::HyperX& topo,
                                                 bool atomicAllocation = true,
                                                 VcPolicy vcPolicy = VcPolicy::kStatic);

}  // namespace hxwar::routing
