// Fat-tree (folded-Clos) routing: adaptive up / deterministic down.
// Up-ports toward the nearest common ancestor are all equivalent, so the
// router's weight function picks the least congested; the down path is fixed
// by the destination digits. Up*/down* paths are acyclic, so one VC class
// suffices; the spare VCs all serve as head-of-line-blocking relief.
#pragma once

#include <memory>

#include "routing/routing.h"
#include "topo/fattree.h"

namespace hxwar::routing {

class FatTreeAdaptive final : public RoutingAlgorithm {
 public:
  explicit FatTreeAdaptive(const topo::FatTree& topo) : topo_(topo) {}

  void route(const RouteContext& ctx, net::Packet& pkt, std::vector<Candidate>& out) override;
  std::uint32_t numClasses() const override { return 1; }
  AlgorithmInfo info() const override;

 private:
  const topo::FatTree& topo_;
};

std::unique_ptr<RoutingAlgorithm> makeFatTreeRouting(const topo::FatTree& topo);

}  // namespace hxwar::routing
