#include "routing/torus_routing.h"

#include "common/assert.h"
#include "net/router.h"

namespace hxwar::routing {

void TorusDatelineDor::route(const RouteContext& ctx, net::Packet& pkt,
                             std::vector<Candidate>& out) {
  const RouterId cur = ctx.routerId;
  const RouterId dst = topo_.nodeRouter(pkt.dst);
  if (cur == dst) {
    const PortId port = topo_.nodePort(pkt.dst);
    for (std::uint32_t c = 0; c < numClasses(); ++c) {
      out.push_back(Candidate{port, c, 0, false});
    }
    return;
  }
  // First unaligned dimension, shortest ring direction.
  std::uint32_t d = 0;
  std::int32_t delta = 0;
  for (; d < topo_.numDims(); ++d) {
    delta = topo_.shortestDelta(d, topo_.coord(cur, d), topo_.coord(dst, d));
    if (delta != 0) break;
  }
  HXWAR_CHECK(d < topo_.numDims());
  const bool plus = delta > 0;

  // Dateline class: reset to 0 when entering a new dimension; jump to 1 on
  // the hop that crosses the wrap edge; stay on the inherited class otherwise.
  std::uint32_t base = 0;
  if (!ctx.atSource && !topo_.isTerminalPort(ctx.inPort)) {
    const std::uint32_t inDim = (ctx.inPort - topo_.terminalsPerRouter()) / 2;
    if (inDim == d) base = ctx.inClass;
  }
  const std::uint32_t cc = topo_.coord(cur, d);
  const bool crossing = (plus && cc == topo_.width(d) - 1) || (!plus && cc == 0);
  const std::uint32_t vcClass = crossing ? 1 : base;

  out.push_back(Candidate{topo_.dimPort(d, plus), vcClass, topo_.minHops(cur, dst), false});
}

AlgorithmInfo TorusDatelineDor::info() const {
  return AlgorithmInfo{"Torus-DOR", true, AlgorithmInfo::Style::kOblivious,
                       "2", "R.R. & dateline R.C.", "none", "none"};
}

std::unique_ptr<RoutingAlgorithm> makeTorusRouting(const topo::Torus& topo) {
  return std::make_unique<TorusDatelineDor>(topo);
}

}  // namespace hxwar::routing
