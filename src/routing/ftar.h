// FTAR — Fault-Tolerant Adaptive Routing for HyperX (DESIGN.md §13).
//
// DimWAR's adaptive core (dimension order, one deroute per dimension, two
// classes) plus one reserved escape class fed by masked-BFS distance descent
// (routing/fault_escape.h), in the spirit of Camarero et al.'s fault-tolerant
// HyperX routing: whenever the fault-aware adaptive candidate rules dead-end —
// the network is degraded beyond one-deroute routability — the packet
// escalates onto the escape class and follows a strictly-distance-decreasing
// path over the surviving links. Escape hops use atomic queue allocation
// (§4.2) and the escape class is monotone, so FTAR is deadlock-safe and
// delivers every packet on ANY connected degraded network; only a packet
// whose destination is partitioned away reaches the router's dead-end ladder.
//
// Fault-free, FTAR routes identically to DimWAR (the escape class sits idle),
// at the cost of one VC class reserved out of the configured budget.
#pragma once

#include <memory>

#include "routing/fault_escape.h"
#include "routing/hyperx_routing.h"

namespace hxwar::routing {

class FtarRouting final : public HyperXRoutingBase {
 public:
  explicit FtarRouting(const topo::HyperX& topo)
      : HyperXRoutingBase(topo), dimCache_(topo), escape_(topo) {}

  void route(const RouteContext& ctx, net::Packet& pkt, std::vector<Candidate>& out) override;
  // Classes 0/1 = DimWAR's minimal/deroute pair, class 2 = reserved escape.
  std::uint32_t numClasses() const override { return 3; }
  AlgorithmInfo info() const override;

  static constexpr std::uint32_t kEscapeClass = 2;

 private:
  DimMoveCache dimCache_;         // fault-free port geometry, immutable
  MaskedRouteCache maskedCache_;  // filtered adaptive lists under a fault mask
  EscapeTable escape_;            // masked-BFS distance descent
};

std::unique_ptr<RoutingAlgorithm> makeFtarRouting(const topo::HyperX& topo);

}  // namespace hxwar::routing
