// Dimension-order routing with dateline virtual channels on a torus — the
// §2.1 background scheme DimWAR generalizes. Packets traverse dimensions in
// order, taking the shortest ring direction; within each ring, crossing the
// dateline (the wrap edge between coordinate S-1 and 0) moves the packet from
// class 0 to class 1, breaking the ring's structural cycle. Classes reset per
// dimension, so 2 classes suffice regardless of dimensionality — the same
// re-use argument DimWAR makes for its deroute classes.
#pragma once

#include <memory>

#include "routing/routing.h"
#include "topo/torus.h"

namespace hxwar::routing {

class TorusDatelineDor final : public RoutingAlgorithm {
 public:
  explicit TorusDatelineDor(const topo::Torus& topo) : topo_(topo) {}

  void route(const RouteContext& ctx, net::Packet& pkt, std::vector<Candidate>& out) override;
  std::uint32_t numClasses() const override { return 2; }
  AlgorithmInfo info() const override;

 private:
  const topo::Torus& topo_;
};

std::unique_ptr<RoutingAlgorithm> makeTorusRouting(const topo::Torus& topo);

}  // namespace hxwar::routing
