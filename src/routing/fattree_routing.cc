#include "routing/fattree_routing.h"

#include "common/assert.h"
#include "net/router.h"

namespace hxwar::routing {

void FatTreeAdaptive::route(const RouteContext& ctx, net::Packet& pkt,
                            std::vector<Candidate>& out) {
  const RouterId cur = ctx.routerId;
  const std::uint32_t level = topo_.level(cur);
  const std::uint32_t subtree = topo_.subtree(cur);
  const NodeId dst = pkt.dst;

  // Is the destination inside this switch's subtree?
  const std::uint32_t span = [&] {
    std::uint32_t s = 1;
    for (std::uint32_t l = 1; l <= level; ++l) s *= topo_.downPorts(l);
    return s;
  }();
  const bool inSubtree = (dst / span) == subtree;

  if (inSubtree) {
    // Deterministic descent by destination digit.
    const PortId port = topo_.downDigit(dst, level);
    const std::uint32_t hops = level - 1;  // router hops left after this one
    if (level == 1) {
      out.push_back(Candidate{port, 0, 0, false});  // ejection
    } else {
      out.push_back(Candidate{port, 0, hops, false});
    }
    return;
  }

  // Climb: every up port reaches a parent that covers the NCA. Remaining
  // hops: (ncaLevel - level) up + (ncaLevel - 1) down.
  std::uint32_t tt = subtree;
  std::uint32_t nca = level;
  std::uint32_t dstSpan = span;
  while (true) {
    HXWAR_CHECK_MSG(nca < topo_.height(), "fat tree climb exceeded the root");
    tt /= topo_.downPorts(nca + 1);
    dstSpan *= topo_.downPorts(nca + 1);
    nca += 1;
    if (dst / dstSpan == tt) break;
  }
  const std::uint32_t hops = (nca - level) + (nca - 1);
  const std::uint32_t ups = topo_.upPorts(level);
  for (std::uint32_t k = 0; k < ups; ++k) {
    out.push_back(Candidate{topo_.downPorts(level) + k, 0, hops, false});
  }
  HXWAR_CHECK(!out.empty());
}

AlgorithmInfo FatTreeAdaptive::info() const {
  return AlgorithmInfo{"FT-AD", false, AlgorithmInfo::Style::kIncremental,
                       "1", "up*/down*", "none", "none"};
}

std::unique_ptr<RoutingAlgorithm> makeFatTreeRouting(const topo::FatTree& topo) {
  return std::make_unique<FatTreeAdaptive>(topo);
}

}  // namespace hxwar::routing
