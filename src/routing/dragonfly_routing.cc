#include "routing/dragonfly_routing.h"

#include <algorithm>

#include "common/assert.h"
#include "net/router.h"

namespace hxwar::routing {

bool DragonflyRoutingBase::emitEjectIfLocal(const RouteContext& ctx, const net::Packet& pkt,
                                            std::vector<Candidate>& out) const {
  if (ctx.routerId != destRouter(pkt)) return false;
  const PortId port = topo_.nodePort(pkt.dst);
  for (std::uint32_t c = 0; c < numClasses(); ++c) {
    out.push_back(Candidate{port, c, 0, false});
  }
  return true;
}

void DragonflyRoutingBase::minimalCandidates(RouterId cur, RouterId target, std::uint32_t c,
                                             std::uint32_t extraHops,
                                             std::vector<Candidate>& out) const {
  const std::uint32_t gc = topo_.group(cur);
  const std::uint32_t gt = topo_.group(target);
  if (gc == gt) {
    HXWAR_CHECK(cur != target);
    out.push_back(Candidate{topo_.localPort(cur, topo_.localIdx(target)), c,
                            1 + extraHops, false});
    return;
  }
  // One candidate per trunk copy; duplicate local exits are deduplicated.
  const std::size_t first = out.size();
  for (std::uint32_t copy = 0; copy < topo_.trunking(); ++copy) {
    const auto exit = topo_.exitTo(gc, gt, copy);
    std::uint32_t pg = 0, ps = 0;
    HXWAR_CHECK(topo_.slotPeer(gc, topo_.globalSlot(exit.router, exit.portK), &pg, &ps));
    const RouterId entry = topo_.routerOf(pg, ps / topo_.h());
    const std::uint32_t tail = (entry == target) ? 0u : 1u;
    if (exit.router == cur) {
      out.push_back(Candidate{topo_.globalPort(exit.portK), c, 1 + tail + extraHops, false});
    } else {
      const PortId lp = topo_.localPort(cur, topo_.localIdx(exit.router));
      bool dup = false;
      for (std::size_t i = first; i < out.size() && !dup; ++i) dup = out[i].port == lp;
      if (!dup) out.push_back(Candidate{lp, c, 2 + tail + extraHops, false});
    }
  }
}

namespace {

// A packet that just took a local hop inside a non-destination group must
// take its global hop next (no local-local zigzags); keep only global-port
// candidates in that case. `freshPhase` lifts the restriction at a phase
// boundary (the Valiant intermediate router).
void restrictAfterLocalHop(const topo::Dragonfly& topo, const RouteContext& ctx,
                           bool freshPhase, std::vector<Candidate>& out) {
  if (ctx.atSource || freshPhase) return;
  if (!topo.isLocalPort(ctx.inPort)) return;
  std::vector<Candidate> kept;
  for (const auto& cand : out) {
    if (topo.isGlobalPort(cand.port) || cand.hopsRemaining == 0) kept.push_back(cand);
  }
  if (!kept.empty()) out.swap(kept);
}

}  // namespace

void DragonflyMinimal::route(const RouteContext& ctx, net::Packet& pkt,
                             std::vector<Candidate>& out) {
  if (emitEjectIfLocal(ctx, pkt, out)) return;
  const RouterId cur = ctx.routerId;
  const std::uint32_t c = ctx.atSource ? 0 : ctx.inClass + 1;
  HXWAR_CHECK_MSG(c < numClasses(), "dragonfly minimal ran out of distance classes");
  minimalCandidates(cur, destRouter(pkt), c, 0, out);
  restrictAfterLocalHop(topo_, ctx, false, out);
}

AlgorithmInfo DragonflyMinimal::info() const {
  return AlgorithmInfo{"DF-MIN", false, AlgorithmInfo::Style::kIncremental,
                       "3", "D.C.", "none", "none"};
}

void DragonflyUgal::decide(const RouteContext& ctx, net::Packet& pkt, RouterId cur,
                           RouterId dst) {
  // UGAL comparison at `cur`: best minimal first hop vs. one random Valiant
  // path, using only congestion visible here.
  std::vector<Candidate> minC;
  minimalCandidates(cur, dst, 0, 0, minC);
  double qMin = 1e18;
  std::uint32_t hMin = 0;
  for (const auto& cand : minC) {
    const double q = ctx.router.congestionFlits(cand.port);
    if (q < qMin) {
      qMin = q;
      hMin = cand.hopsRemaining;
    }
  }
  const RouterId ri = static_cast<RouterId>(ctx.router.rng().below(topo_.numRouters()));
  if (ri == cur || topo_.group(ri) == topo_.group(dst) ||
      topo_.group(ri) == topo_.group(cur)) {
    pkt.minimalCommitted = true;  // degenerate intermediate: go minimal
    pkt.intermediate = kRouterInvalid;
    return;
  }
  std::vector<Candidate> valC;
  minimalCandidates(cur, ri, 0, 0, valC);
  double qVal = 1e18;
  std::uint32_t hVal = 0;
  for (const auto& cand : valC) {
    const double q = ctx.router.congestionFlits(cand.port);
    if (q < qVal) {
      qVal = q;
      hVal = cand.hopsRemaining;
    }
  }
  // Full Valiant hop count: to the intermediate, then minimal onward.
  const std::uint32_t hValTotal = hVal + 3;
  if ((qMin + bias_) * hMin <= (qVal + bias_) * hValTotal) {
    pkt.minimalCommitted = true;
    pkt.intermediate = kRouterInvalid;
  } else {
    pkt.minimalCommitted = false;
    pkt.intermediate = ri;
  }
}

void DragonflyUgal::route(const RouteContext& ctx, net::Packet& pkt,
                          std::vector<Candidate>& out) {
  if (emitEjectIfLocal(ctx, pkt, out)) return;
  const RouterId cur = ctx.routerId;
  const RouterId dst = destRouter(pkt);

  bool rediverted = false;
  if (ctx.atSource && !pkt.minimalCommitted && pkt.intermediate == kRouterInvalid) {
    decide(ctx, pkt, cur, dst);
  } else if (progressive_ && pkt.minimalCommitted && !ctx.atSource &&
             topo_.isLocalPort(ctx.inPort) &&
             topo_.group(cur) == topo_.group(topo_.nodeRouter(pkt.src)) && !pkt.phase2) {
    // PAR: the packet is still inside its source group on a minimal path —
    // re-run the UGAL comparison with the congestion visible here. The hop
    // budget covers the extra local hop (7 distance classes).
    decide(ctx, pkt, cur, dst);
    rediverted = !pkt.minimalCommitted;
  }

  const std::uint32_t c = ctx.atSource ? 0 : ctx.inClass + 1;
  HXWAR_CHECK_MSG(c < numClasses(), "dragonfly UGAL ran out of distance classes");

  if (pkt.minimalCommitted) {
    minimalCandidates(cur, dst, c, 0, out);
    restrictAfterLocalHop(topo_, ctx, false, out);
    return;
  }
  const bool atIntermediate = !pkt.phase2 && cur == pkt.intermediate;
  if (atIntermediate) pkt.phase2 = true;
  if (!pkt.phase2) {
    minimalCandidates(cur, pkt.intermediate, c, 3, out);
    // A freshly diverted PAR packet arrived on a local port but starts a new
    // phase here; lift the local-local restriction for that one hop.
    restrictAfterLocalHop(topo_, ctx, rediverted, out);
  } else {
    minimalCandidates(cur, dst, c, 0, out);
    restrictAfterLocalHop(topo_, ctx, atIntermediate, out);
  }
}

AlgorithmInfo DragonflyUgal::info() const {
  // Plain UGAL paths are at most 6 hops; PAR's in-group divert adds one.
  return AlgorithmInfo{progressive_ ? "DF-PAR" : "DF-UGAL", false,
                       AlgorithmInfo::Style::kSource, progressive_ ? "7" : "6",
                       "D.C.", "none", "int. addr."};
}

std::unique_ptr<RoutingAlgorithm> makeDragonflyRouting(const std::string& name,
                                                       const topo::Dragonfly& topo,
                                                       double bias) {
  if (name == "min") return std::make_unique<DragonflyMinimal>(topo);
  if (name == "ugal") return std::make_unique<DragonflyUgal>(topo, bias);
  if (name == "par") return std::make_unique<DragonflyUgal>(topo, bias, /*progressive=*/true);
  HXWAR_CHECK_MSG(false, ("unknown dragonfly routing: " + name).c_str());
  return nullptr;
}

}  // namespace hxwar::routing
