// SlimFly minimal adaptive routing: destinations are at most two hops away;
// adjacent destinations take the direct link, everything else picks the
// least-congested relay among the common neighbors. Distance classes
// (VC = hop index, 2 classes) make the two-hop paths trivially deadlock free.
#pragma once

#include <memory>

#include "routing/routing.h"
#include "topo/slimfly.h"

namespace hxwar::routing {

class SlimFlyMinimal final : public RoutingAlgorithm {
 public:
  explicit SlimFlyMinimal(const topo::SlimFly& topo) : topo_(topo) {}

  void route(const RouteContext& ctx, net::Packet& pkt, std::vector<Candidate>& out) override;
  std::uint32_t numClasses() const override { return 2; }
  AlgorithmInfo info() const override;

 private:
  const topo::SlimFly& topo_;
};

std::unique_ptr<RoutingAlgorithm> makeSlimFlyRouting(const topo::SlimFly& topo);

}  // namespace hxwar::routing
