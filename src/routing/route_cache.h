// Route-candidate caches for the incremental adaptive algorithms.
//
// Candidate generation splits into a static part (which ports implement a
// dimension move, how many hops each choice costs) and a live part (the
// congestion weighting the router applies afterwards). Only the live part
// depends on simulation state, so the static part is computed once and
// replayed — the emitted candidate lists are element-for-element identical to
// regenerating them, including order, which the rng tie-break in the router's
// selection depends on (DESIGN.md §10).
//
// Two layers:
//
//   * DimMoveCache — fault-free geometry. In a HyperX, dimPort(r, d, to, t)
//     depends on the router only through its own coordinate in d
//     (dimPortBase[d] + (to < cc ? to : to-1)*T + t), so the port list for
//     "move in d from coordinate cc to dc" plus the deroute list "move in d
//     from cc to any x != cc, dc (x ascending)" is a function of (d, cc, dc)
//     alone. Built eagerly at algorithm construction, immutable, shared by
//     every router the instance serves. Sum over dims of width² entries.
//
//   * MaskedRouteCache — faulted candidate lists. Under a dead-port mask the
//     per-(current router, destination router) filtered lists (including the
//     both-legs deroute lookahead) are cached in a small direct-mapped table
//     tagged with DeadPortMask::version(). Every mask write bumps the
//     version, so FaultController kill/revive flips invalidate lazily: a
//     stale tag forces regeneration on next use. Collisions just overwrite —
//     correctness only needs the (cur, dst, version) tag to match.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "topo/hyperx.h"

namespace hxwar::routing {

class DimMoveCache {
 public:
  explicit DimMoveCache(const topo::HyperX& topo);

  struct Entry {
    std::uint32_t minBegin = 0;  // trunking() ports: the move to dc
    std::uint32_t derBegin = 0;  // deroutes: x ascending skipping cc/dc, trunks inner
    std::uint32_t derCount = 0;
  };

  // Valid for cc != dc (aligned dimensions have no move).
  const Entry& entry(std::uint32_t dim, std::uint32_t cc, std::uint32_t dc) const {
    return entries_[dimBase_[dim] + cc * width_[dim] + dc];
  }
  const PortId* ports(std::uint32_t begin) const { return pool_.data() + begin; }
  std::uint32_t trunking() const { return trunking_; }

 private:
  std::vector<Entry> entries_;  // indexed dimBase_[d] + cc*width(d) + dc
  std::vector<PortId> pool_;
  std::vector<std::uint32_t> dimBase_;
  std::vector<std::uint32_t> width_;
  std::uint32_t trunking_ = 1;
};

// One mask-filtered candidate, stored with everything needed to re-emit it
// under any (input class, deroute budget, came-from dimension) — those vary
// per call and are applied as emission-time filters, never baked in.
struct MaskedItem {
  PortId port;
  std::uint32_t hopsRemaining;
  std::uint8_t dim;
  bool deroute;
};

class MaskedRouteCache {
 public:
  static constexpr std::uint32_t kSlots = 2048;  // power of two (direct-mapped)

  struct Entry {
    RouterId cur = kRouterInvalid;
    RouterId dst = kRouterInvalid;
    std::uint64_t maskVersion = ~std::uint64_t{0};
    std::vector<MaskedItem> items;
  };

  // The slot this (cur, dst) pair maps to; the caller checks the tag and
  // regenerates in place on mismatch.
  Entry& slot(RouterId cur, RouterId dst) {
    std::uint64_t h = (static_cast<std::uint64_t>(cur) << 32) | dst;
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return slots_[h & (kSlots - 1)];
  }

 private:
  std::vector<Entry> slots_ = std::vector<Entry>(kSlots);
};

}  // namespace hxwar::routing
