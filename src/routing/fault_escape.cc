#include "routing/fault_escape.h"

#include "common/assert.h"
#include "fault/fault_model.h"

namespace hxwar::routing {

const char* vcPolicyName(VcPolicy policy) {
  switch (policy) {
    case VcPolicy::kStatic:
      return "static";
    case VcPolicy::kDateline:
      return "dateline";
    case VcPolicy::kEscape:
      return "escape";
  }
  HXWAR_CHECK_MSG(false, "unreachable vc policy");
  return "static";
}

bool parseVcPolicy(const std::string& name, VcPolicy* out) {
  if (name == "static") {
    *out = VcPolicy::kStatic;
  } else if (name == "dateline") {
    *out = VcPolicy::kDateline;
  } else if (name == "escape") {
    *out = VcPolicy::kEscape;
  } else {
    return false;
  }
  return true;
}

const std::vector<std::uint32_t>& EscapeTable::distances(const fault::DeadPortMask& mask,
                                                         RouterId dst) {
  if (slots_.empty()) slots_.resize(kSlots);
  Entry& e = slots_[dst % kSlots];
  if (e.dst != dst || e.maskVersion != mask.version()) {
    e.dst = dst;
    e.maskVersion = mask.version();
    // The mask is symmetric (a failed link kills both directions), so the BFS
    // tree rooted at dst gives every router's distance TO dst.
    fault::bfsDistances(topo_, dst, &mask, e.dist);
  }
  return e.dist;
}

std::uint32_t EscapeTable::distance(const fault::DeadPortMask& mask, RouterId cur,
                                    RouterId dst) {
  return distances(mask, dst)[cur];
}

void EscapeTable::emitEscape(const fault::DeadPortMask& mask, RouterId cur, RouterId dst,
                             std::uint32_t escapeClass, std::vector<Candidate>& out) {
  const std::vector<std::uint32_t>& dist = distances(mask, dst);
  const std::uint32_t here = dist[cur];
  if (here == fault::kUnreachable || here == 0) return;  // partitioned apart / at dst
  const std::uint32_t ports = topo_.numPorts(cur);
  for (PortId p = 0; p < ports; ++p) {
    if (mask.isDead(cur, p)) continue;
    const topo::Topology::PortTarget target = topo_.portTarget(cur, p);
    if (target.kind != topo::Topology::PortTarget::Kind::kRouter) continue;
    if (dist[target.router] >= here) continue;
    // Strict distance descent: the escape network is the BFS DAG toward dst,
    // so an escape packet reaches dst in `here` hops regardless of which
    // descending port wins the weight comparison.
    Candidate c{p, escapeClass, here, false};
    c.atomic = true;
    c.faultEscape = true;
    out.push_back(c);
  }
}

}  // namespace hxwar::routing
