#include "routing/slimfly_routing.h"

#include "common/assert.h"
#include "net/router.h"

namespace hxwar::routing {

void SlimFlyMinimal::route(const RouteContext& ctx, net::Packet& pkt,
                           std::vector<Candidate>& out) {
  const RouterId cur = ctx.routerId;
  const RouterId dst = topo_.nodeRouter(pkt.dst);
  if (cur == dst) {
    const PortId port = topo_.nodePort(pkt.dst);
    for (std::uint32_t c = 0; c < numClasses(); ++c) {
      out.push_back(Candidate{port, c, 0, false});
    }
    return;
  }
  const std::uint32_t c = ctx.atSource ? 0 : ctx.inClass + 1;
  HXWAR_CHECK_MSG(c < numClasses(), "SlimFly minimal exceeded two hops");
  const PortId direct = topo_.portTo(cur, dst);
  if (direct != kPortInvalid) {
    out.push_back(Candidate{direct, c, 1, false});
    return;
  }
  // Two hops: any common neighbor works; the router weighs them.
  for (const RouterId relay : topo_.commonNeighbors(cur, dst)) {
    out.push_back(Candidate{topo_.portTo(cur, relay), c, 2, false});
  }
  HXWAR_CHECK_MSG(!out.empty(), "SlimFly pair beyond diameter 2");
}

AlgorithmInfo SlimFlyMinimal::info() const {
  return AlgorithmInfo{"SF-MIN", false, AlgorithmInfo::Style::kIncremental,
                       "2", "D.C.", "none", "none"};
}

std::unique_ptr<RoutingAlgorithm> makeSlimFlyRouting(const topo::SlimFly& topo) {
  return std::make_unique<SlimFlyMinimal>(topo);
}

}  // namespace hxwar::routing
