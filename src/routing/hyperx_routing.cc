#include "routing/hyperx_routing.h"

#include <algorithm>

#include "common/assert.h"
#include "net/router.h"
#include "obs/net_observer.h"
#include "routing/ftar.h"

namespace hxwar::routing {

// --- base helpers ----------------------------------------------------------

bool HyperXRoutingBase::emitEjectIfLocal(const RouteContext& ctx, const net::Packet& pkt,
                                         std::vector<Candidate>& out) const {
  const RouterId dstR = destRouter(pkt);
  if (ctx.routerId != dstR) return false;
  const PortId port = topo_.nodePort(pkt.dst);
  // Ejection may use any class: terminal buffers always drain, so they never
  // participate in a deadlock cycle. Emitting one candidate per class lets
  // the router pick any free VC.
  for (std::uint32_t c = 0; c < numClasses(); ++c) {
    out.push_back(Candidate{port, c, 0, false});
  }
  return true;
}

std::uint32_t HyperXRoutingBase::firstUnalignedDim(RouterId cur, RouterId dst) const {
  for (std::uint32_t d = 0; d < topo_.numDims(); ++d) {
    if (topo_.coord(cur, d) != topo_.coord(dst, d)) return d;
  }
  return topo_.numDims();
}

Candidate HyperXRoutingBase::dorStep(RouterId cur, RouterId target, std::uint32_t vcClass,
                                     std::uint32_t hopsRemaining, std::uint32_t trunk) const {
  const std::uint32_t d = firstUnalignedDim(cur, target);
  HXWAR_CHECK_MSG(d < topo_.numDims(), "dorStep called at the target router");
  const PortId port = topo_.dimPort(cur, d, topo_.coord(target, d), trunk % topo_.trunking());
  return Candidate{port, vcClass, hopsRemaining, false};
}

void HyperXRoutingBase::emitDorStep(std::vector<Candidate>& out, RouterId cur,
                                    RouterId target, std::uint32_t vcClass,
                                    std::uint32_t hopsRemaining) const {
  const std::uint32_t d = firstUnalignedDim(cur, target);
  HXWAR_CHECK_MSG(d < topo_.numDims(), "emitDorStep called at the target router");
  emitDimMove(out, cur, d, topo_.coord(target, d), vcClass, hopsRemaining, false);
}

void HyperXRoutingBase::emitDimMove(std::vector<Candidate>& out, RouterId cur,
                                    std::uint32_t dim, std::uint32_t to,
                                    std::uint32_t vcClass, std::uint32_t hopsRemaining,
                                    bool deroute, std::uint8_t derouteDim) const {
  for (std::uint32_t trunk = 0; trunk < topo_.trunking(); ++trunk) {
    Candidate c{topo_.dimPort(cur, dim, to, trunk), vcClass, hopsRemaining, deroute};
    c.derouteDim = derouteDim;
    out.push_back(c);
  }
}

bool HyperXRoutingBase::moveLive(const fault::DeadPortMask* mask, RouterId cur,
                                 std::uint32_t dim, std::uint32_t to) const {
  if (mask == nullptr) return true;
  for (std::uint32_t trunk = 0; trunk < topo_.trunking(); ++trunk) {
    if (!mask->isDead(cur, topo_.dimPort(cur, dim, to, trunk))) return true;
  }
  return false;
}

void HyperXRoutingBase::emitDimMoveLive(const fault::DeadPortMask* mask,
                                        std::vector<Candidate>& out, RouterId cur,
                                        std::uint32_t dim, std::uint32_t to,
                                        std::uint32_t vcClass, std::uint32_t hopsRemaining,
                                        bool deroute, std::uint8_t derouteDim) const {
  for (std::uint32_t trunk = 0; trunk < topo_.trunking(); ++trunk) {
    const PortId port = topo_.dimPort(cur, dim, to, trunk);
    if (mask != nullptr && mask->isDead(cur, port)) continue;
    Candidate c{port, vcClass, hopsRemaining, deroute};
    c.derouteDim = derouteDim;
    out.push_back(c);
  }
}

// --- DOR --------------------------------------------------------------------

void DorRouting::route(const RouteContext& ctx, net::Packet& pkt, std::vector<Candidate>& out) {
  if (emitEjectIfLocal(ctx, pkt, out)) return;
  const RouterId cur = ctx.routerId;
  const RouterId dst = destRouter(pkt);
  // Oblivious trunk choice: hash the packet id over the parallel links.
  out.push_back(dorStep(cur, dst, 0, topo_.minHops(cur, dst),
                        static_cast<std::uint32_t>(pkt.id)));
}

AlgorithmInfo DorRouting::info() const {
  return AlgorithmInfo{"DOR", true, AlgorithmInfo::Style::kOblivious,
                       "1", "R.R.", "none", "none"};
}

// --- VAL --------------------------------------------------------------------

void ValiantRouting::route(const RouteContext& ctx, net::Packet& pkt,
                           std::vector<Candidate>& out) {
  if (emitEjectIfLocal(ctx, pkt, out)) return;
  const RouterId cur = ctx.routerId;
  const RouterId dst = destRouter(pkt);
  if (ctx.atSource && pkt.intermediate == kRouterInvalid) {
    pkt.intermediate = static_cast<RouterId>(ctx.router.rng().below(topo_.numRouters()));
    // Committing to an intermediate is Valiant's (path-level) deroute: every
    // routed packet takes exactly one. Hop-level deroute flags stay false —
    // each DOR phase is minimal toward its phase target.
    if (ctx.obs != nullptr) ctx.obs->notePathDeroute();
  }
  if (!pkt.phase2 && cur == pkt.intermediate) pkt.phase2 = true;
  if (!pkt.phase2) {
    const std::uint32_t hops = topo_.minHops(cur, pkt.intermediate) +
                               topo_.minHops(pkt.intermediate, dst);
    out.push_back(dorStep(cur, pkt.intermediate, 0, hops,
                          static_cast<std::uint32_t>(pkt.id)));
  } else {
    out.push_back(dorStep(cur, dst, 1, topo_.minHops(cur, dst),
                          static_cast<std::uint32_t>(pkt.id)));
  }
}

AlgorithmInfo ValiantRouting::info() const {
  return AlgorithmInfo{"VAL", true, AlgorithmInfo::Style::kOblivious,
                       "2", "R.R. & R.C.", "none", "int. addr."};
}

// --- UGAL -------------------------------------------------------------------

void UgalRouting::route(const RouteContext& ctx, net::Packet& pkt, std::vector<Candidate>& out) {
  if (emitEjectIfLocal(ctx, pkt, out)) return;
  const RouterId cur = ctx.routerId;
  const RouterId dst = destRouter(pkt);

  if (ctx.atSource && !pkt.minimalCommitted && pkt.intermediate == kRouterInvalid) {
    // One-shot source decision: minimal vs. one random Valiant path, using
    // only source-local congestion (the defining limitation of UGAL).
    const std::uint32_t hMin = topo_.minHops(cur, dst);
    const Candidate minC = dorStep(cur, dst, 1, hMin);
    const double qMin = ctx.router.congestionFlits(minC.port);

    const RouterId ri = static_cast<RouterId>(ctx.router.rng().below(topo_.numRouters()));
    const std::uint32_t hVal = topo_.minHops(cur, ri) + topo_.minHops(ri, dst);
    double qVal = qMin;
    if (ri != cur) {
      qVal = ctx.router.congestionFlits(dorStep(cur, ri, 0, hVal).port);
    }
    if ((qMin + bias_) * hMin <= (qVal + bias_) * std::max(hVal, 1u)) {
      pkt.minimalCommitted = true;
    } else {
      pkt.intermediate = ri;
      if (ctx.obs != nullptr) ctx.obs->notePathDeroute();
    }
  }

  if (pkt.minimalCommitted) {
    emitDorStep(out, cur, dst, 1, topo_.minHops(cur, dst));
    return;
  }
  if (!pkt.phase2 && cur == pkt.intermediate) pkt.phase2 = true;
  if (!pkt.phase2) {
    const std::uint32_t hops = topo_.minHops(cur, pkt.intermediate) +
                               topo_.minHops(pkt.intermediate, dst);
    emitDorStep(out, cur, pkt.intermediate, 0, hops);
  } else {
    emitDorStep(out, cur, dst, 1, topo_.minHops(cur, dst));
  }
}

AlgorithmInfo UgalRouting::info() const {
  return AlgorithmInfo{"UGAL", true, AlgorithmInfo::Style::kSource,
                       "2", "R.R. & R.C.", "none", "int. addr."};
}

// --- Clos-AD (UGAL+) ---------------------------------------------------------

void ClosAdRouting::route(const RouteContext& ctx, net::Packet& pkt,
                          std::vector<Candidate>& out) {
  if (emitEjectIfLocal(ctx, pkt, out)) return;
  const RouterId cur = ctx.routerId;
  const RouterId dst = destRouter(pkt);

  if (ctx.atSource && pkt.intermediate == kRouterInvalid) {
    // Weigh every output port of every unaligned dimension (LCA rule: never
    // move in a dimension that is already aligned). The winner defines the
    // intermediate router: the neighbor itself for an aligned move, or a
    // random LCA-consistent router for a deroute move.
    const std::uint32_t unaligned = topo_.minHops(cur, dst);
    double bestW = 0.0;
    std::uint32_t bestDim = 0, bestCoord = 0;
    bool first = true;
    std::uint32_t ties = 0;
    for (std::uint32_t d = 0; d < topo_.numDims(); ++d) {
      const std::uint32_t cc = topo_.coord(cur, d);
      const std::uint32_t dc = topo_.coord(dst, d);
      if (cc == dc) continue;
      for (std::uint32_t x = 0; x < topo_.width(d); ++x) {
        if (x == cc) continue;
        const bool minimal = (x == dc);
        const std::uint32_t hops = minimal ? unaligned : unaligned + 1;
        const PortId port = topo_.dimPort(cur, d, x);
        const double w = (ctx.router.congestionFlits(port) + bias_) * hops;
        bool take = false;
        if (first || w < bestW - 1e-12) {
          take = true;
          ties = 1;
        } else if (w <= bestW + 1e-12) {
          // Reservoir-style random tie-break.
          ties += 1;
          take = ctx.router.rng().below(ties) == 0;
        }
        if (take) {
          bestW = w;
          bestDim = d;
          bestCoord = x;
          first = false;
        }
      }
    }
    HXWAR_CHECK_MSG(!first, "Clos-AD found no unaligned port at the source");
    // Build the intermediate router coordinates.
    std::vector<std::uint32_t> ic(topo_.numDims());
    for (std::uint32_t d = 0; d < topo_.numDims(); ++d) {
      const std::uint32_t cc = topo_.coord(cur, d);
      const std::uint32_t dc = topo_.coord(dst, d);
      if (d == bestDim) {
        ic[d] = bestCoord;
      } else if (cc == dc) {
        ic[d] = cc;  // aligned dimensions stay aligned (LCA rule)
      } else if (bestCoord == topo_.coord(dst, bestDim)) {
        // Minimal move: the intermediate is just the neighbor; all other
        // dimensions keep the source coordinate so phase 1 is one hop.
        ic[d] = cc;
      } else {
        // Deroute move: scatter the remaining unaligned dimensions.
        ic[d] = static_cast<std::uint32_t>(ctx.router.rng().below(topo_.width(d)));
      }
    }
    pkt.intermediate = topo_.routerAt(ic);
    // A non-minimal winner commits the packet to a Valiant-style detour.
    if (ctx.obs != nullptr && bestCoord != topo_.coord(dst, bestDim)) {
      ctx.obs->notePathDeroute();
    }
  }

  if (!pkt.phase2 && cur == pkt.intermediate) pkt.phase2 = true;
  if (!pkt.phase2) {
    const std::uint32_t hops = topo_.minHops(cur, pkt.intermediate) +
                               topo_.minHops(pkt.intermediate, dst);
    emitDorStep(out, cur, pkt.intermediate, 0, hops);
  } else {
    emitDorStep(out, cur, dst, 1, topo_.minHops(cur, dst));
  }
}

AlgorithmInfo ClosAdRouting::info() const {
  return AlgorithmInfo{"Clos-AD", true, AlgorithmInfo::Style::kSource,
                       "2", "R.R. & R.C.", "seq. alloc.", "int. addr."};
}

// --- DimWAR -------------------------------------------------------------------

void DimWarRouting::route(const RouteContext& ctx, net::Packet& pkt,
                          std::vector<Candidate>& out) {
  if (emitEjectIfLocal(ctx, pkt, out)) return;
  const RouterId cur = ctx.routerId;
  const RouterId dst = destRouter(pkt);
  const fault::DeadPortMask* mask = ctx.deadPorts;

  // VcPolicy::kEscape reserves class 2 as a monotone escape network: once a
  // packet escalates it descends the masked BFS DAG to the destination
  // (routing/fault_escape.h) and never returns to the adaptive classes.
  if (vcPolicy_ == VcPolicy::kEscape && !ctx.atSource && ctx.inClass == 2) {
    HXWAR_CHECK_MSG(mask != nullptr, "DimWAR escape-class packet without a fault mask");
    escape_.emitEscape(*mask, cur, dst, 2, out);
    return;
  }

  const std::uint32_t unaligned = topo_.minHops(cur, dst);
  const std::uint32_t d = firstUnalignedDim(cur, dst);
  const std::uint32_t cc = topo_.coord(cur, d);
  const std::uint32_t dc = topo_.coord(dst, d);

  // Class scheme per VC policy. static/escape: minimal hops ride class 0,
  // deroutes ride class 1, and a deroute is allowed only from class 0 (one
  // deroute, then the minimal hop). dateline: the class counts deroutes taken
  // so far — minimal hops keep it, every deroute escalates — so the budget
  // becomes N deroutes anywhere (class headroom) instead of one per
  // dimension, with deadlock freedom from the acyclic class order.
  const std::uint32_t curClass = ctx.atSource ? 0u : ctx.inClass;
  const bool dateline = vcPolicy_ == VcPolicy::kDateline;
  const std::uint32_t minClass = dateline ? curClass : 0u;
  const std::uint32_t derClass = dateline ? curClass + 1 : 1u;
  const bool derouteOk = dateline ? curClass < topo_.numDims() : curClass == 0;
  if (mask != nullptr) {
    // Fault-aware emission: minimal hop only when its link survives, and a
    // deroute to x only when both legs (cur->x and x->dc) survive — the
    // lookahead matters because a class-1 packet MUST take the minimal hop
    // next, so granting a deroute into a dead-ended row member would strand
    // it. On a one-deroute-routable degraded network this set is never empty
    // (DESIGN.md §8); if a worse fault set empties it, fall through to the
    // plain emission and let the router's dead-end policy decide.
    //
    // The filtered list is pure in (cur, dst, mask), so it is cached per
    // (cur, dst) tagged with the mask version; the inClass restriction is an
    // emission-time filter so one entry serves both classes.
    MaskedRouteCache::Entry& e = maskedCache_.slot(cur, dst);
    if (e.cur != cur || e.dst != dst || e.maskVersion != mask->version()) {
      e.cur = cur;
      e.dst = dst;
      e.maskVersion = mask->version();
      e.items.clear();
      if (moveLive(mask, cur, d, dc)) {
        for (std::uint32_t t = 0; t < topo_.trunking(); ++t) {
          const PortId port = topo_.dimPort(cur, d, dc, t);
          if (mask->isDead(cur, port)) continue;
          e.items.push_back(MaskedItem{port, unaligned, static_cast<std::uint8_t>(d), false});
        }
      }
      for (std::uint32_t x = 0; x < topo_.width(d); ++x) {
        if (x == cc || x == dc) continue;
        if (!moveLive(mask, cur, d, x)) continue;
        if (!moveLive(mask, topo_.neighbor(cur, d, x), d, dc)) continue;
        for (std::uint32_t t = 0; t < topo_.trunking(); ++t) {
          const PortId port = topo_.dimPort(cur, d, x, t);
          if (mask->isDead(cur, port)) continue;
          e.items.push_back(
              MaskedItem{port, unaligned + 1, static_cast<std::uint8_t>(d), true});
        }
      }
    }
    for (const MaskedItem& it : e.items) {
      if (it.deroute && !derouteOk) continue;
      out.push_back(
          Candidate{it.port, it.deroute ? derClass : minClass, it.hopsRemaining, it.deroute});
    }
    if (!out.empty()) return;
    if (vcPolicy_ == VcPolicy::kEscape) {
      // Adaptive dead end: escalate onto the escape class. Empty escape
      // output means the destination is partitioned away, and the router's
      // dead-end ladder takes over.
      escape_.emitEscape(*mask, cur, dst, 2, out);
      return;
    }
  }

  // Minimal hop in the current dimension rides minClass (class 0 static).
  const DimMoveCache::Entry& geo = dimCache_.entry(d, cc, dc);
  const PortId* minPorts = dimCache_.ports(geo.minBegin);
  for (std::uint32_t t = 0; t < dimCache_.trunking(); ++t) {
    out.push_back(Candidate{minPorts[t], minClass, unaligned, false});
  }

  // Deroutes stay within the current dimension and escalate the class.
  if (derouteOk) {
    const PortId* derPorts = dimCache_.ports(geo.derBegin);
    for (std::uint32_t i = 0; i < geo.derCount; ++i) {
      out.push_back(Candidate{derPorts[i], derClass, unaligned + 1, true});
    }
  }
}

AlgorithmInfo DimWarRouting::info() const {
  return AlgorithmInfo{"DimWAR", true, AlgorithmInfo::Style::kIncremental,
                       "2", "R.R. & R.C.", "none", "none"};
}

// --- OmniWAR ------------------------------------------------------------------

void OmniWarRouting::route(const RouteContext& ctx, net::Packet& pkt,
                           std::vector<Candidate>& out) {
  if (emitEjectIfLocal(ctx, pkt, out)) return;
  const RouterId cur = ctx.routerId;
  const RouterId dst = destRouter(pkt);
  const fault::DeadPortMask* mask = ctx.deadPorts;
  const bool escapeMode = vcPolicy_ == VcPolicy::kEscape;

  // Monotone escape class (VcPolicy::kEscape): see routing/fault_escape.h.
  if (escapeMode && !ctx.atSource && ctx.inClass == escapeClass()) {
    HXWAR_CHECK_MSG(mask != nullptr, "OmniWAR escape-class packet without a fault mask");
    escape_.emitEscape(*mask, cur, dst, escapeClass(), out);
    return;
  }

  const std::uint32_t distClasses = numClasses() - (escapeMode ? 1u : 0u);
  // Distance classes: the next hop's class is the hop index.
  const std::uint32_t c = ctx.atSource ? 0 : ctx.inClass + 1;
  const std::uint32_t unaligned = topo_.minHops(cur, dst);
  if (escapeMode && mask != nullptr &&
      (c >= distClasses || unaligned - 1 > distClasses - c - 1)) {
    // Out of distance classes — reachable only when plain fall-through hops
    // past the 2k reserve on a network degraded beyond one-deroute
    // routability. Escalate instead of violating the invariant.
    escape_.emitEscape(*mask, cur, dst, escapeClass(), out);
    return;
  }
  HXWAR_CHECK_MSG(c < distClasses, "OmniWAR ran out of distance classes");
  const std::uint32_t remainingAfter = distClasses - c - 1;
  HXWAR_CHECK_MSG(unaligned - 1 <= remainingAfter,
                  "OmniWAR invariant violated: cannot finish minimally");
  const bool derouteOk = !minimalOnly_ && remainingAfter >= unaligned;

  // Which dimension did we come from, and was that hop a deroute? (If we
  // arrived via dimension d and d is still unaligned, the hop was lateral.)
  std::uint32_t cameFromDim = topo_.numDims();
  if (!ctx.atSource && !topo_.isTerminalPort(ctx.inPort)) {
    // The input port p on this router mirrors the peer's output port; the
    // dimension of the move is the dimension the port belongs to.
    cameFromDim = topo_.portMove(cur, ctx.inPort).dim;
  }

  if (mask != nullptr) {
    // Fault-aware emission. Minimal moves only on surviving links; deroutes
    // need both legs alive AND the tighter budget remainingAfter >= 2k
    // (k = unaligned dims) instead of the fault-free >= k. The 2k reserve
    // keeps the invariant R >= 2k on the remaining distance classes: every
    // minimal hop spends one class and halves the 2-per-dimension reserve it
    // no longer needs; every granted deroute keeps k constant, spends one
    // class, and guarantees (via the lookahead) a live minimal hop next — so
    // on a one-deroute-routable degraded network a packet always has a live
    // candidate and always has classes left to finish (DESIGN.md §8). With
    // M >= N deroute classes (the default M = N) the invariant holds from
    // the source: R = N + M >= 2k for any k <= N.
    //
    // The mask-filtered lists (including the both-legs lookahead) are pure in
    // (cur, dst, mask), so they are cached per (cur, dst) tagged with the
    // mask version. The per-call restrictions — distance class, deroute
    // budget, came-from dimension — are emission-time filters, never baked
    // into the cached entry.
    MaskedRouteCache::Entry& e = maskedCache_.slot(cur, dst);
    if (e.cur != cur || e.dst != dst || e.maskVersion != mask->version()) {
      e.cur = cur;
      e.dst = dst;
      e.maskVersion = mask->version();
      e.items.clear();
      for (std::uint32_t d = 0; d < topo_.numDims(); ++d) {
        const std::uint32_t cc = topo_.coord(cur, d);
        const std::uint32_t dc = topo_.coord(dst, d);
        if (cc == dc) continue;
        if (moveLive(mask, cur, d, dc)) {
          for (std::uint32_t t = 0; t < topo_.trunking(); ++t) {
            const PortId port = topo_.dimPort(cur, d, dc, t);
            if (mask->isDead(cur, port)) continue;
            e.items.push_back(
                MaskedItem{port, unaligned, static_cast<std::uint8_t>(d), false});
          }
        }
        if (minimalOnly_) continue;
        for (std::uint32_t x = 0; x < topo_.width(d); ++x) {
          if (x == cc || x == dc) continue;
          if (!moveLive(mask, cur, d, x)) continue;
          if (!moveLive(mask, topo_.neighbor(cur, d, x), d, dc)) continue;
          for (std::uint32_t t = 0; t < topo_.trunking(); ++t) {
            const PortId port = topo_.dimPort(cur, d, x, t);
            if (mask->isDead(cur, port)) continue;
            e.items.push_back(
                MaskedItem{port, unaligned + 1, static_cast<std::uint8_t>(d), true});
          }
        }
      }
    }
    const bool maskedDerouteOk = !minimalOnly_ && remainingAfter >= 2 * unaligned;
    for (const MaskedItem& it : e.items) {
      if (it.deroute) {
        if (!maskedDerouteOk) continue;
        if (restrictBackToBack_ && it.dim == cameFromDim) continue;
      }
      out.push_back(Candidate{it.port, c, it.hopsRemaining, it.deroute});
    }
    if (!out.empty()) return;
    if (escapeMode) {
      // Degraded beyond the routable guarantee: escalate onto the escape
      // class (empty output = destination partitioned away, dead-end ladder).
      escape_.emitEscape(*mask, cur, dst, escapeClass(), out);
      return;
    }
    // Degraded beyond the routable guarantee: fall through to the plain
    // emission so the router's dead-end policy decides.
  }

  for (std::uint32_t d = 0; d < topo_.numDims(); ++d) {
    const std::uint32_t cc = topo_.coord(cur, d);
    const std::uint32_t dc = topo_.coord(dst, d);
    if (cc == dc) continue;  // only unaligned dimensions are valid
    const DimMoveCache::Entry& geo = dimCache_.entry(d, cc, dc);
    const PortId* minPorts = dimCache_.ports(geo.minBegin);
    for (std::uint32_t t = 0; t < dimCache_.trunking(); ++t) {
      out.push_back(Candidate{minPorts[t], c, unaligned, false});
    }
    if (!derouteOk) continue;
    if (restrictBackToBack_ && d == cameFromDim) continue;  // §5.2 optimization
    const PortId* derPorts = dimCache_.ports(geo.derBegin);
    for (std::uint32_t i = 0; i < geo.derCount; ++i) {
      out.push_back(Candidate{derPorts[i], c, unaligned + 1, true});
    }
  }
}

AlgorithmInfo OmniWarRouting::info() const {
  const bool minAd = minimalOnly_;
  return AlgorithmInfo{minAd ? "Min-AD" : "OmniWAR", false,
                       AlgorithmInfo::Style::kIncremental,
                       minAd ? "N" : "N+M",
                       minAd ? "D.C." : "R.R. & D.C.", "none", "none"};
}

// --- factory -------------------------------------------------------------------

std::unique_ptr<RoutingAlgorithm> makeHyperXRouting(const std::string& name,
                                                    const topo::HyperX& topo,
                                                    const HyperXRoutingOptions& opts) {
  const std::uint32_t omniM = opts.omniDeroutes == HyperXRoutingOptions::kOmniDeroutesDefault
                                  ? topo.numDims()
                                  : opts.omniDeroutes;
  if (name == "dor") return std::make_unique<DorRouting>(topo);
  if (name == "val") return std::make_unique<ValiantRouting>(topo);
  if (name == "minad") {
    return std::make_unique<OmniWarRouting>(topo, 0, false, /*minimalOnly=*/true);
  }
  if (name == "ugal") return std::make_unique<UgalRouting>(topo, opts.ugalBias);
  if (name == "closad" || name == "ugal+") {
    return std::make_unique<ClosAdRouting>(topo, opts.ugalBias);
  }
  if (name == "dimwar") return std::make_unique<DimWarRouting>(topo, opts.vcPolicy);
  if (name == "omniwar") {
    return std::make_unique<OmniWarRouting>(topo, omniM, opts.omniRestrictBackToBack,
                                            /*minimalOnly=*/false, opts.vcPolicy);
  }
  if (name == "ftar") return std::make_unique<FtarRouting>(topo);
  HXWAR_CHECK_MSG(false, ("unknown HyperX routing algorithm: " + name).c_str());
  return nullptr;
}

// ftar is factory-reachable but, like dal/minad, not part of the headline
// evaluation list (it exists for the fault-resilience studies).
const std::vector<std::string>& hyperxAlgorithmNames() {
  static const std::vector<std::string> names = {"dor",    "val",    "ugal",
                                                 "closad", "dimwar", "omniwar"};
  return names;
}

}  // namespace hxwar::routing
