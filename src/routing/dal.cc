#include "routing/dal.h"

#include "common/assert.h"
#include "net/router.h"

namespace hxwar::routing {

void DalRouting::route(const RouteContext& ctx, net::Packet& pkt,
                       std::vector<Candidate>& out) {
  if (emitEjectIfLocal(ctx, pkt, out)) return;
  const RouterId cur = ctx.router.id();
  const RouterId dst = destRouter(pkt);

  for (std::uint32_t d = 0; d < topo_.numDims(); ++d) {
    const std::uint32_t cc = topo_.coord(cur, d);
    const std::uint32_t dc = topo_.coord(dst, d);
    if (cc == dc) continue;  // lateral moves only in unaligned dimensions
    const std::uint32_t unaligned = topo_.minHops(cur, dst);
    const std::size_t first = out.size();
    // Minimal hop in this dimension (one candidate per trunk).
    emitDimMove(out, cur, d, dc, 0, unaligned, false);
    // One deroute per dimension, tracked in the packet's N-bit field.
    if (!(pkt.deroutedDims & (1u << d))) {
      for (std::uint32_t x = 0; x < topo_.width(d); ++x) {
        if (x == cc || x == dc) continue;
        emitDimMove(out, cur, d, x, 0, unaligned + 1, true,
                    static_cast<std::uint8_t>(d));
      }
    }
    for (std::size_t i = first; i < out.size(); ++i) out[i].atomic = atomic_;
  }
  HXWAR_CHECK(!out.empty());
}

AlgorithmInfo DalRouting::info() const {
  return AlgorithmInfo{"DAL", false, AlgorithmInfo::Style::kIncremental,
                       "1+1e", "escape paths", "escape paths", "N-bit field"};
}

std::unique_ptr<RoutingAlgorithm> makeDalRouting(const topo::HyperX& topo,
                                                 bool atomicAllocation) {
  return std::make_unique<DalRouting>(topo, atomicAllocation);
}

}  // namespace hxwar::routing
