#include "routing/dal.h"

#include "common/assert.h"
#include "net/router.h"

namespace hxwar::routing {

void DalRouting::route(const RouteContext& ctx, net::Packet& pkt,
                       std::vector<Candidate>& out) {
  if (emitEjectIfLocal(ctx, pkt, out)) return;
  const RouterId cur = ctx.routerId;
  const RouterId dst = destRouter(pkt);
  const std::uint32_t unaligned = topo_.minHops(cur, dst);
  const fault::DeadPortMask* mask = ctx.deadPorts;

  // Monotone escape class (VcPolicy::kEscape): see routing/fault_escape.h.
  // Escape candidates already carry atomic=true, matching DAL's allocation.
  if (vcPolicy_ == VcPolicy::kEscape && !ctx.atSource && ctx.inClass == 1) {
    HXWAR_CHECK_MSG(mask != nullptr, "DAL escape-class packet without a fault mask");
    escape_.emitEscape(*mask, cur, dst, 1, out);
    return;
  }

  if (mask != nullptr) {
    // Fault-aware emission: minimal hops only on surviving links; deroutes
    // only when both legs survive, so a deroute never lands facing a dead
    // minimal link. Every allocation stays atomic — DAL's deadlock freedom
    // comes from the escape-path allocation rule, not the deroute budget, so
    // skipping dead candidates cannot introduce a cycle.
    for (std::uint32_t d = 0; d < topo_.numDims(); ++d) {
      const std::uint32_t cc = topo_.coord(cur, d);
      const std::uint32_t dc = topo_.coord(dst, d);
      if (cc == dc) continue;
      if (moveLive(mask, cur, d, dc)) {
        emitDimMoveLive(mask, out, cur, d, dc, 0, unaligned, false);
      }
      if (!(pkt.deroutedDims & (1u << d))) {
        for (std::uint32_t x = 0; x < topo_.width(d); ++x) {
          if (x == cc || x == dc) continue;
          if (!moveLive(mask, cur, d, x)) continue;
          if (!moveLive(mask, topo_.neighbor(cur, d, x), d, dc)) continue;
          emitDimMoveLive(mask, out, cur, d, x, 0, unaligned + 1, true,
                          static_cast<std::uint8_t>(d));
        }
      }
    }
    if (out.empty()) {
      // Fault re-deroute: the once-per-dimension budget is a path-length
      // bound, not a deadlock-avoidance rule (atomic allocation is safe at
      // any deroute count), so when every budgeted candidate is dead the
      // packet may re-deroute within an already-derouted dimension to get
      // around the hole. The lookahead still applies.
      for (std::uint32_t d = 0; d < topo_.numDims(); ++d) {
        const std::uint32_t cc = topo_.coord(cur, d);
        const std::uint32_t dc = topo_.coord(dst, d);
        if (cc == dc) continue;
        for (std::uint32_t x = 0; x < topo_.width(d); ++x) {
          if (x == cc || x == dc) continue;
          if (!moveLive(mask, cur, d, x)) continue;
          if (!moveLive(mask, topo_.neighbor(cur, d, x), d, dc)) continue;
          emitDimMoveLive(mask, out, cur, d, x, 0, unaligned + 1, true,
                          static_cast<std::uint8_t>(d));
        }
      }
      // Everything emitted by the retry exists only because faults killed the
      // budgeted candidates — telemetry separates these from congestion
      // deroutes.
      for (auto& c : out) c.faultEscape = true;
    }
    if (!out.empty()) {
      for (auto& c : out) c.atomic = atomic_;
      return;
    }
    if (vcPolicy_ == VcPolicy::kEscape) {
      // Even the re-deroute retry found nothing live: escalate onto the
      // escape class (empty output = destination partitioned away, and the
      // router's dead-end ladder decides).
      escape_.emitEscape(*mask, cur, dst, 1, out);
      return;
    }
    // Degraded beyond one-deroute routability from this router: fall through
    // to the plain emission so the router's dead-end policy decides.
  }

  for (std::uint32_t d = 0; d < topo_.numDims(); ++d) {
    const std::uint32_t cc = topo_.coord(cur, d);
    const std::uint32_t dc = topo_.coord(dst, d);
    if (cc == dc) continue;  // lateral moves only in unaligned dimensions
    const std::size_t first = out.size();
    // Minimal hop in this dimension (one candidate per trunk).
    emitDimMove(out, cur, d, dc, 0, unaligned, false);
    // One deroute per dimension, tracked in the packet's N-bit field.
    if (!(pkt.deroutedDims & (1u << d))) {
      for (std::uint32_t x = 0; x < topo_.width(d); ++x) {
        if (x == cc || x == dc) continue;
        emitDimMove(out, cur, d, x, 0, unaligned + 1, true,
                    static_cast<std::uint8_t>(d));
      }
    }
    for (std::size_t i = first; i < out.size(); ++i) out[i].atomic = atomic_;
  }
  HXWAR_CHECK(!out.empty());
}

AlgorithmInfo DalRouting::info() const {
  return AlgorithmInfo{"DAL", false, AlgorithmInfo::Style::kIncremental,
                       "1+1e", "escape paths", "escape paths", "N-bit field"};
}

std::unique_ptr<RoutingAlgorithm> makeDalRouting(const topo::HyperX& topo,
                                                 bool atomicAllocation, VcPolicy vcPolicy) {
  return std::make_unique<DalRouting>(topo, atomicAllocation, vcPolicy);
}

}  // namespace hxwar::routing
