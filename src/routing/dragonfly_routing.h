// Dragonfly routing: minimal (local-global-local) and UGAL, used by the
// Fig. 4 topology comparison. Deadlock avoidance uses distance classes
// (VC = hop index), which covers both the 3-hop minimal and the 6-hop
// Valiant paths without topology-specific dateline reasoning.
#pragma once

#include <memory>
#include <string>

#include "routing/routing.h"
#include "topo/dragonfly.h"

namespace hxwar::routing {

class DragonflyRoutingBase : public RoutingAlgorithm {
 public:
  explicit DragonflyRoutingBase(const topo::Dragonfly& topo) : topo_(topo) {}

 protected:
  bool emitEjectIfLocal(const RouteContext& ctx, const net::Packet& pkt,
                        std::vector<Candidate>& out) const;

  // Emits all next-hop candidates of a minimal route from ctx's router to
  // `target` using class `c`: the direct local port, or every trunk copy's
  // global exit (local hop toward the exit router or the global port itself).
  void minimalCandidates(RouterId cur, RouterId target, std::uint32_t c,
                         std::uint32_t extraHops, std::vector<Candidate>& out) const;

  RouterId destRouter(const net::Packet& pkt) const { return topo_.nodeRouter(pkt.dst); }

  const topo::Dragonfly& topo_;
};

// Minimal adaptive: l-g-l with adaptive choice among trunk copies.
class DragonflyMinimal final : public DragonflyRoutingBase {
 public:
  using DragonflyRoutingBase::DragonflyRoutingBase;
  void route(const RouteContext& ctx, net::Packet& pkt, std::vector<Candidate>& out) override;
  std::uint32_t numClasses() const override { return 3; }
  AlgorithmInfo info() const override;
};

// UGAL: source chooses minimal vs. Valiant-through-a-random-group using
// source-local congestion; 6 distance classes. With `progressive` set this
// becomes PAR (progressive adaptive routing, Jiang et al. ISCA'09, discussed
// in the paper's §2.2): a minimal decision is re-evaluated at every router
// the packet visits inside its source group, so congestion discovered one
// hop later can still divert the packet to a Valiant path.
class DragonflyUgal final : public DragonflyRoutingBase {
 public:
  DragonflyUgal(const topo::Dragonfly& topo, double bias, bool progressive = false)
      : DragonflyRoutingBase(topo), bias_(bias), progressive_(progressive) {}
  void route(const RouteContext& ctx, net::Packet& pkt, std::vector<Candidate>& out) override;
  std::uint32_t numClasses() const override { return 7; }
  AlgorithmInfo info() const override;

 private:
  // Runs the UGAL min-vs-Valiant comparison at `cur` and commits the result.
  void decide(const RouteContext& ctx, net::Packet& pkt, RouterId cur, RouterId dst);

  double bias_;
  bool progressive_;
};

// names: min, ugal, par
std::unique_ptr<RoutingAlgorithm> makeDragonflyRouting(const std::string& name,
                                                       const topo::Dragonfly& topo,
                                                       double bias = 1.0);

}  // namespace hxwar::routing
