// Physical floor layout: racks on a 2D floor grid, cable routing lengths
// between rack positions (overhead tray: up, across, down).
#pragma once

#include <cstdint>

namespace hxwar::cost {

struct FloorPlan {
  double rackWidthM = 0.6;   // per rack column pitch
  double rowPitchM = 2.4;    // aisle + rack depth per row
  double overheadM = 2.0;    // up to the tray and back down
  double intraRackM = 1.0;   // backplane / in-rack jumper
  std::uint32_t racksPerRow = 0;  // 0 => square-ish floor
  // Packaging density limit. A Dragonfly group (or HyperX line) larger than
  // this spans multiple adjacent racks, turning some "local" cables into
  // short inter-rack cables — the packagability effect §3.1 argues about.
  std::uint32_t nodesPerRack = 288;
};

class Floor {
 public:
  Floor(FloorPlan plan, std::uint32_t numRacks);

  std::uint32_t numRacks() const { return numRacks_; }
  std::uint32_t racksPerRow() const { return racksPerRow_; }

  // Length of a cable between two racks (same rack => intra-rack jumper).
  double cableLength(std::uint32_t rackA, std::uint32_t rackB) const;

 private:
  FloorPlan plan_;
  std::uint32_t numRacks_;
  std::uint32_t racksPerRow_;
};

}  // namespace hxwar::cost
