// Cable enumeration and system cost for HyperX and Dragonfly (Fig. 3).
//
// Packaging follows the paper's packagability argument:
//   HyperX 3D: dimension 0 inside a rack (one X-line per rack), dimension 1
//   across the racks of a row, dimension 2 across rows.
//   Dragonfly: one group per rack; local links in-rack, globals across racks.
// Terminal (node-to-router) cables are in-rack for both and are included as
// a common constant.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cost/cable.h"
#include "cost/layout.h"

namespace hxwar::cost {

// All cable lengths of a network instance, in meters (one entry per link).
struct CableBom {
  std::vector<double> lengthsM;
  std::uint64_t nodes = 0;
  std::string description;

  double totalCost(const CableTech& tech) const;
  double totalLength() const;
  double costPerNode(const CableTech& tech) const { return totalCost(tech) / nodes; }
};

// HyperX with dimension widths S (3D expected), K terminals per router.
CableBom hyperxCables(const std::vector<std::uint32_t>& widths, std::uint32_t terminals,
                      const FloorPlan& plan);

// Dragonfly with p terminals, a routers/group, h globals/router, g groups.
CableBom dragonflyCables(std::uint32_t p, std::uint32_t a, std::uint32_t h, std::uint32_t g,
                         const FloorPlan& plan);

// Smallest radix-`radix` 3D HyperX with at least `nodes` endpoints.
CableBom hyperxForSize(std::uint64_t nodes, std::uint32_t radix, const FloorPlan& plan);
// Balanced-router dragonfly (a = 2p = 2h at the given radix) with enough
// groups for `nodes` endpoints.
CableBom dragonflyForSize(std::uint64_t nodes, std::uint32_t radix, const FloorPlan& plan);

// One Fig. 3 row: Dragonfly cost relative to HyperX for each technology.
struct Fig3Row {
  std::uint64_t requestedNodes;
  std::uint64_t hyperxNodes;
  std::uint64_t dragonflyNodes;
  std::vector<double> relativeCost;  // dragonfly$/node / hyperx$/node per tech
};
std::vector<Fig3Row> fig3Sweep(const std::vector<std::uint64_t>& sizes, std::uint32_t radix,
                               const std::vector<CableTech>& techs, const FloorPlan& plan);

}  // namespace hxwar::cost
