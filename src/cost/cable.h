// Cable technologies and prices for the Fig. 3 cost analysis.
//
// The paper's absolute prices come from confidential vendor quotes; we model
// each technology as (electrical reach, DAC $/cable, fiber $/cable) with
// public-ballpark defaults. The *relative* Dragonfly-vs-HyperX cost — what
// Fig. 3 actually plots — is driven by each topology's cable-length
// distribution interacting with the reach cutoff, which this model captures
// exactly. All prices are per-lane-bundle cable (one link).
#pragma once

#include <string>
#include <vector>

namespace hxwar::cost {

struct CableTech {
  std::string name;
  double dacReachM = 0.0;     // max length of a direct-attach copper cable; 0 = no DAC
  double dacBase = 0.0;       // $ per DAC cable
  double dacPerMeter = 0.0;   // $/m for DAC
  double fiberBase = 0.0;     // $ per optical cable (incl. both ends)
  double fiberPerMeter = 0.0; // $/m for fiber
};

// Cost of one cable of the given length under this technology.
double cableCost(const CableTech& tech, double lengthM);

// The technology generations discussed in §3.1. Reaches follow the paper:
// 2.5 GHz -> 8 m, 10 GHz -> 5 m, 25 GHz -> 3 m, 50 GHz -> 2 m,
// 100 GHz -> 1 m; "passive" models co-packaged optics with cheap passive
// fiber everywhere (no DAC at all, low per-end cost).
const std::vector<CableTech>& standardTechnologies();
CableTech technologyByName(const std::string& name);

}  // namespace hxwar::cost
