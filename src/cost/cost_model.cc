#include "cost/cost_model.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "common/assert.h"
#include "topo/scalability.h"

namespace hxwar::cost {

double cableCost(const CableTech& tech, double lengthM) {
  if (tech.dacReachM > 0.0 && lengthM <= tech.dacReachM) {
    return tech.dacBase + tech.dacPerMeter * lengthM;
  }
  return tech.fiberBase + tech.fiberPerMeter * lengthM;
}

const std::vector<CableTech>& standardTechnologies() {
  // DAC prices rise with signaling rate (thicker gauge, tighter tolerances);
  // AOC prices fall $/bps but stay dominated by the active ends. "passive"
  // models co-packaged photonics: every cable is passive fiber with cheap
  // connectors and no active ends.
  static const std::vector<CableTech> kTechs = {
      {"2.5G (8m DAC)", 8.0, 15.0, 2.0, 120.0, 4.0},
      {"10G (5m DAC)", 5.0, 20.0, 2.5, 140.0, 4.5},
      {"25G (3m DAC)", 3.0, 25.0, 3.0, 160.0, 5.0},
      {"50G (2m DAC)", 2.0, 30.0, 3.5, 180.0, 5.5},
      {"100G (1m DAC)", 1.0, 35.0, 4.0, 200.0, 6.0},
      {"passive optics", 0.0, 0.0, 0.0, 30.0, 1.5},
  };
  return kTechs;
}

CableTech technologyByName(const std::string& name) {
  for (const auto& t : standardTechnologies()) {
    if (t.name == name) return t;
  }
  HXWAR_CHECK_MSG(false, ("unknown cable technology: " + name).c_str());
  return {};
}

Floor::Floor(FloorPlan plan, std::uint32_t numRacks) : plan_(plan), numRacks_(numRacks) {
  racksPerRow_ = plan.racksPerRow != 0
                     ? plan.racksPerRow
                     : std::max<std::uint32_t>(
                           1, static_cast<std::uint32_t>(std::ceil(std::sqrt(numRacks))));
}

double Floor::cableLength(std::uint32_t rackA, std::uint32_t rackB) const {
  if (rackA == rackB) return plan_.intraRackM;
  const std::int64_t colA = rackA % racksPerRow_, rowA = rackA / racksPerRow_;
  const std::int64_t colB = rackB % racksPerRow_, rowB = rackB / racksPerRow_;
  const double horiz = std::abs(colA - colB) * plan_.rackWidthM +
                       std::abs(rowA - rowB) * plan_.rowPitchM;
  return plan_.overheadM + horiz;
}

double CableBom::totalCost(const CableTech& tech) const {
  double c = 0.0;
  for (const double len : lengthsM) c += cableCost(tech, len);
  return c;
}

double CableBom::totalLength() const {
  return std::accumulate(lengthsM.begin(), lengthsM.end(), 0.0);
}

CableBom hyperxCables(const std::vector<std::uint32_t>& widths, std::uint32_t terminals,
                      const FloorPlan& plan) {
  HXWAR_CHECK_MSG(widths.size() == 3, "cost model packages 3D HyperX");
  const std::uint32_t sx = widths[0], sy = widths[1], sz = widths[2];
  // One X-line (sx routers) per rack; rack grid: columns = y, rows = z.
  const std::uint32_t numRacks = sy * sz;
  FloorPlan p = plan;
  p.racksPerRow = sy;
  Floor floor(p, numRacks);
  const auto rackOf = [&](std::uint32_t y, std::uint32_t z) { return z * sy + y; };

  CableBom bom;
  bom.nodes = static_cast<std::uint64_t>(sx) * sy * sz * terminals;
  std::ostringstream d;
  d << "HyperX " << sx << "x" << sy << "x" << sz << " K=" << terminals;
  bom.description = d.str();

  // Terminal cables: in-rack.
  for (std::uint64_t n = 0; n < bom.nodes; ++n) bom.lengthsM.push_back(plan.intraRackM);

  // Dim 0 (intra-rack): sx*(sx-1)/2 links per (y, z).
  const std::uint64_t dim0PerLine = static_cast<std::uint64_t>(sx) * (sx - 1) / 2;
  for (std::uint64_t i = 0; i < dim0PerLine * sy * sz; ++i) {
    bom.lengthsM.push_back(plan.intraRackM);
  }
  // Dim 1 (across racks in a row): for each z, each y-pair, sx parallel links.
  for (std::uint32_t z = 0; z < sz; ++z) {
    for (std::uint32_t y1 = 0; y1 < sy; ++y1) {
      for (std::uint32_t y2 = y1 + 1; y2 < sy; ++y2) {
        const double len = floor.cableLength(rackOf(y1, z), rackOf(y2, z));
        for (std::uint32_t x = 0; x < sx; ++x) bom.lengthsM.push_back(len);
      }
    }
  }
  // Dim 2 (across rows): for each y, each z-pair, sx parallel links.
  for (std::uint32_t y = 0; y < sy; ++y) {
    for (std::uint32_t z1 = 0; z1 < sz; ++z1) {
      for (std::uint32_t z2 = z1 + 1; z2 < sz; ++z2) {
        const double len = floor.cableLength(rackOf(y, z1), rackOf(y, z2));
        for (std::uint32_t x = 0; x < sx; ++x) bom.lengthsM.push_back(len);
      }
    }
  }
  return bom;
}

CableBom dragonflyCables(std::uint32_t p, std::uint32_t a, std::uint32_t h, std::uint32_t g,
                         const FloorPlan& plan) {
  // A group larger than one rack spans adjacent racks (packaging density
  // limit): some "local" all-to-all cables then leave the rack.
  const std::uint64_t groupNodes = static_cast<std::uint64_t>(p) * a;
  const std::uint32_t racksPerGroup = static_cast<std::uint32_t>(
      (groupNodes + plan.nodesPerRack - 1) / plan.nodesPerRack);
  const std::uint32_t routersPerRack = (a + racksPerGroup - 1) / racksPerGroup;
  Floor floor(plan, g * racksPerGroup);
  const auto rackOfRouter = [&](std::uint32_t grp, std::uint32_t local) {
    return grp * racksPerGroup + local / routersPerRack;
  };

  CableBom bom;
  bom.nodes = groupNodes * g;
  std::ostringstream d;
  d << "Dragonfly p=" << p << " a=" << a << " h=" << h << " g=" << g
    << " (racks/group=" << racksPerGroup << ")";
  bom.description = d.str();

  // Terminal cables.
  for (std::uint64_t n = 0; n < bom.nodes; ++n) bom.lengthsM.push_back(plan.intraRackM);
  // Local links: full all-to-all within the group, rack-aware lengths.
  for (std::uint32_t grp = 0; grp < g; ++grp) {
    for (std::uint32_t r1 = 0; r1 < a; ++r1) {
      for (std::uint32_t r2 = r1 + 1; r2 < a; ++r2) {
        bom.lengthsM.push_back(
            floor.cableLength(rackOfRouter(grp, r1), rackOfRouter(grp, r2)));
      }
    }
  }
  // Global links: w parallel links between every group pair, endpoints at the
  // actual exit routers' racks (slot layout as in topo::Dragonfly).
  const std::uint32_t w = std::max(1u, (a * h) / (g - 1));
  for (std::uint32_t g1 = 0; g1 < g; ++g1) {
    for (std::uint32_t o = 1; o < g; ++o) {
      const std::uint32_t g2 = (g1 + o) % g;
      if (g2 < g1) continue;  // count each pair once
      for (std::uint32_t c = 0; c < w; ++c) {
        const std::uint32_t s1 = (o - 1) * w + c;
        const std::uint32_t s2 = (g - o - 1) * w + c;
        bom.lengthsM.push_back(floor.cableLength(rackOfRouter(g1, s1 / h),
                                                 rackOfRouter(g2, s2 / h)));
      }
    }
  }
  return bom;
}

CableBom hyperxForSize(std::uint64_t nodes, std::uint32_t radix, const FloorPlan& plan) {
  // Smallest (S, K) with K <= S, K + 3(S-1) <= radix, K*S^3 >= nodes.
  for (std::uint32_t s = 2;; ++s) {
    if (3 * (s - 1) >= radix) {
      // Even the max shape cannot reach the size: use the max shape.
      const auto shape = topo::hyperxBestShape(radix, 3);
      return hyperxCables({shape.width, shape.width, shape.width}, shape.terminals, plan);
    }
    const std::uint32_t kMax = std::min(s, radix - 3 * (s - 1));
    const std::uint64_t cap = static_cast<std::uint64_t>(kMax) * s * s * s;
    if (cap >= nodes) {
      // Keep the balanced terminal count (K = min(S, spare ports)); trimming
      // K would inflate router-cable cost per node unfairly.
      return hyperxCables({s, s, s}, kMax, plan);
    }
  }
}

CableBom dragonflyForSize(std::uint64_t nodes, std::uint32_t radix, const FloorPlan& plan) {
  const std::uint32_t p = (radix + 1) / 4;
  const std::uint32_t a = 2 * p;
  const std::uint32_t h = p;
  const std::uint64_t perGroup = static_cast<std::uint64_t>(p) * a;
  std::uint32_t g = static_cast<std::uint32_t>((nodes + perGroup - 1) / perGroup);
  g = std::max(2u, std::min<std::uint32_t>(g, a * h + 1));
  return dragonflyCables(p, a, h, g, plan);
}

std::vector<Fig3Row> fig3Sweep(const std::vector<std::uint64_t>& sizes, std::uint32_t radix,
                               const std::vector<CableTech>& techs, const FloorPlan& plan) {
  std::vector<Fig3Row> rows;
  for (const auto size : sizes) {
    Fig3Row row;
    row.requestedNodes = size;
    const CableBom hx = hyperxForSize(size, radix, plan);
    const CableBom df = dragonflyForSize(size, radix, plan);
    row.hyperxNodes = hx.nodes;
    row.dragonflyNodes = df.nodes;
    for (const auto& tech : techs) {
      row.relativeCost.push_back(df.costPerNode(tech) / hx.costPerNode(tech));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace hxwar::cost
