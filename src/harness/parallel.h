// Minimal fixed-size thread pool for embarrassingly parallel sweep points.
//
// Tasks are FIFO; results come back through std::future so callers reduce
// them in whatever order they choose — the sweep runner always reduces in
// point order, which is what makes parallel sweeps bit-identical to serial
// ones. Exceptions thrown by a task are captured in its future and rethrow
// at get(), so a failing point aborts the sweep instead of vanishing.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace hxwar::harness {

// std::thread::hardware_concurrency(), clamped to at least 1 (the standard
// allows it to return 0 when the count is unknowable).
unsigned defaultJobs();

class ThreadPool {
 public:
  // Spawns `threads` workers (clamped to at least 1).
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();  // drains queued tasks, then joins

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  // Enqueues `fn` and returns a future for its result. Safe from any thread.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      tasks_.push_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

 private:
  void workerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

// Runs fn(i) for every i in [0, n) across the pool and returns the results
// in index order. If `pool` is null (or n fits in one task), runs inline on
// the calling thread — the jobs=1 path executes exactly the serial code.
// The first exception (in index order) propagates to the caller.
template <typename Fn>
auto parallelMapOrdered(ThreadPool* pool, std::size_t n, Fn fn)
    -> std::vector<std::invoke_result_t<Fn, std::size_t>> {
  using R = std::invoke_result_t<Fn, std::size_t>;
  std::vector<R> out;
  out.reserve(n);
  if (pool == nullptr || pool->size() <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) out.push_back(fn(i));
    return out;
  }
  std::vector<std::future<R>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(pool->submit([&fn, i] { return fn(i); }));
  }
  for (auto& f : futures) out.push_back(f.get());
  return out;
}

}  // namespace hxwar::harness
