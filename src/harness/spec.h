// ExperimentSpec: the serializable, topology-agnostic description of one
// experiment — which topology family, routing algorithm, and traffic pattern
// (all registry names, see harness/registry.h), the free-form construction
// parameters those factories read, and the structured network / injection /
// steady-state configuration.
//
// A spec can be built three ways, all equivalent:
//   * programmatically (set fields, put construction keys into `params`),
//   * from command-line flags or a `key = value` config file (fromFlags),
//   * from a legacy HyperX ExperimentConfig (ExperimentConfig::toSpec()).
//
// serialize() emits the flag-backed surface as config-file text, so
//   Flags f; f.loadFile(path); ExperimentSpec::fromFlags(f)
// round-trips a saved spec. Fields without a flag (injection node masks, the
// steady-state tolerance knobs) keep their defaults across a round trip.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/flags.h"
#include "fault/fault_model.h"
#include "metrics/steady_state.h"
#include "net/network.h"
#include "obs/obs.h"
#include "traffic/injector.h"

namespace hxwar::harness {

// Shortest decimal text that parses back to exactly the same double — used
// wherever a double crosses the string boundary (serialize, toSpec) so a
// round-tripped spec simulates bit-identically.
std::string formatDouble(double v);

// Strict comma-separated u32 list: every entry must be a plain non-negative
// integer ("4,4,8"); fractional ("4.5"), negative, or malformed entries abort
// with a message naming the flag and the offending token. A present-but-empty
// value falls back, matching the lenient legacy behavior for "--widths=".
std::vector<std::uint32_t> flagU32List(const Flags& flags, const std::string& key,
                                       std::vector<std::uint32_t> fallback);

// Structured sub-configs from flags; fields whose flag is absent keep the
// value in `defaults`. Flag names are documented in harness/builder.h.
net::NetworkConfig networkConfigFromFlags(const Flags& flags, net::NetworkConfig defaults);
metrics::SteadyStateConfig steadyConfigFromFlags(const Flags& flags,
                                                 metrics::SteadyStateConfig defaults);
traffic::SyntheticInjector::Params injectionFromFlags(const Flags& flags,
                                                      traffic::SyntheticInjector::Params defaults);
fault::FaultSpec faultSpecFromFlags(const Flags& flags, fault::FaultSpec defaults);
obs::ObsOptions obsOptionsFromFlags(const Flags& flags, obs::ObsOptions defaults);

struct ExperimentSpec {
  std::string topology = "hyperx";  // registered family name
  std::string routing;              // registered algorithm name; empty = family default
  std::string pattern = "ur";       // registered pattern name

  // Construction parameters consumed by the topology/routing/pattern
  // factories (widths, terminals, df-*, ft-*, sf-q, ugal-bias, ...). Unknown
  // keys are ignored by the factories, so specs stay forward-compatible.
  std::map<std::string, std::string> params;

  net::NetworkConfig net;  // defaulted to the builder defaults (see spec.cc)
  traffic::SyntheticInjector::Params injection;
  metrics::SteadyStateConfig steady;

  // Seed for seeded patterns (rp). Deliberately NOT re-derived per sweep
  // point: a permutation pattern stays fixed across a load sweep.
  std::uint64_t patternSeed = 99;

  // Fault injection (see fault/fault_model.h). Like patternSeed, fault.seed
  // is NOT re-derived per sweep point: a load sweep measures one fixed
  // degraded network, not a different fault set per load.
  fault::FaultSpec fault;

  // Observability options (--trace-out / --metrics-json / --sample-interval,
  // see obs/obs.h). Operational output knobs, never part of an experiment's
  // identity: serialize() omits them and the per-point seeds ignore them, so
  // a traced run simulates bit-identically to an untraced one.
  obs::ObsOptions obs;

  // --point-jobs=N: worker threads *inside* one sweep point — the network is
  // sharded across N simulators driven by the conservative parallel engine
  // (sim/par, DESIGN.md §12). Composes with --jobs (points × shards).
  // Operational like `obs`: never part of an experiment's identity — every
  // output surface except wall-clock telemetry is bit-identical for any
  // value — so serialize() omits it. Clamped to the router count at
  // construction.
  std::uint32_t pointJobs = 1;

  ExperimentSpec();  // installs the builder-default network config

  // Default spec overridden by every recognized flag; defaults match the
  // historical hxsim command line (see harness/builder.h for the key list).
  static ExperimentSpec fromFlags(const Flags& flags);

  // Overwrites only the fields whose flags are present — presets stay
  // authoritative for everything the command line does not mention.
  void applyFlags(const Flags& flags);

  // `params` as a Flags object, the currency of the registry factories.
  Flags paramFlags() const;

  // Config-file text (`key = value` lines); see the round-trip note above.
  std::string serialize() const;
};

// Scale presets by name ("tiny", "small", "paper") as specs — the HyperX
// presets of experiment.h routed through the unified layer.
ExperimentSpec scaleSpec(const std::string& name);

}  // namespace hxwar::harness
