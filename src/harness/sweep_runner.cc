#include "harness/sweep_runner.h"

#include <algorithm>
#include <cstdio>
#include <future>

namespace hxwar::harness {
namespace {

// Applies the ordered stop-at-saturation reduction to one wave of completed
// points. Returns true once the curve has ended (cut reached).
bool reduceWave(std::vector<SweepPoint>&& wave, bool stopAtSaturation,
                std::vector<SweepPoint>& out, std::uint32_t& saturatedStreak) {
  for (auto& point : wave) {
    out.push_back(std::move(point));
    saturatedStreak = out.back().result.saturated ? saturatedStreak + 1 : 0;
    if (stopAtSaturation && saturatedStreak >= 2) return true;
  }
  return false;
}

// Minimal JSON string escaping for error messages (quotes, backslashes,
// control characters). Series names and statuses are identifier-like and
// never need it, but failure messages quote arbitrary CHECK text.
std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::vector<SweepPoint> runLoadSweep(const ExperimentSpec& base,
                                     const std::vector<double>& loads,
                                     const SweepOptions& options) {
  if (options.jobs <= 1) return runLoadSweep(base, loads, options, nullptr);
  ThreadPool pool(options.jobs);
  return runLoadSweep(base, loads, options, &pool);
}

std::vector<SweepPoint> runLoadSweep(const ExperimentConfig& base,
                                     const std::vector<double>& loads,
                                     const SweepOptions& options) {
  return runLoadSweep(base.toSpec(), loads, options);
}

std::vector<SweepPoint> runLoadSweep(const ExperimentConfig& base,
                                     const std::vector<double>& loads,
                                     const SweepOptions& options, ThreadPool* pool) {
  return runLoadSweep(base.toSpec(), loads, options, pool);
}

std::vector<SweepPoint> runLoadSweep(const ExperimentSpec& base,
                                     const std::vector<double>& loads,
                                     const SweepOptions& options, ThreadPool* pool) {
  if (pool == nullptr || pool->size() <= 1) {
    return loadLatencySweep(base, loads, options.stopAtSaturation);
  }
  // Speculate one wave of points past the reduction frontier: points beyond
  // the saturation cut are computed and discarded, so the returned series is
  // byte-identical to the serial path.
  const std::size_t waveSize =
      std::max<std::size_t>(std::size_t{pool->size()} * std::max(1u, options.waveFactor), 1);
  std::vector<SweepPoint> out;
  out.reserve(loads.size());
  std::uint32_t saturatedStreak = 0;
  for (std::size_t waveStart = 0; waveStart < loads.size(); waveStart += waveSize) {
    const std::size_t waveEnd = std::min(waveStart + waveSize, loads.size());
    std::vector<SweepPoint> wave = parallelMapOrdered(
        pool, waveEnd - waveStart, [&](std::size_t i) {
          const std::size_t index = waveStart + i;
          return runSweepPoint(base, loads[index], index);
        });
    if (reduceWave(std::move(wave), options.stopAtSaturation, out, saturatedStreak)) break;
  }
  return out;
}

void SweepPerfLog::add(const std::string& series, const SweepPoint& point) {
  entries_.push_back(Entry{series, point.load, point.result.saturated,
                           point.wallSeconds, point.eventsProcessed, point.eventsPerSec,
                           point.pointJobs, point.status, point.message});
  totalWall_ += point.wallSeconds;
  totalEvents_ += point.eventsProcessed;
}

void SweepPerfLog::addAll(const std::string& series, const std::vector<SweepPoint>& points) {
  for (const auto& p : points) add(series, p);
}

void SweepPerfLog::add(Entry entry) {
  totalWall_ += entry.wallSeconds;
  totalEvents_ += entry.events;
  entries_.push_back(std::move(entry));
}

bool SweepPerfLog::writeJson(const std::string& path, const std::string& bench,
                             const std::string& scale, unsigned jobs) const {
  if (path.empty()) return true;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  // totalWall_ sums per-point wall time across all workers; with jobs > 1 the
  // elapsed time is lower, so report the aggregate simulation rate too.
  const double aggRate = totalWall_ > 0.0 ? static_cast<double>(totalEvents_) / totalWall_ : 0.0;
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"scale\": \"%s\",\n  \"jobs\": %u,\n",
               bench.c_str(), scale.c_str(), jobs);
  std::fprintf(f, "  \"points\": %zu,\n  \"total_events\": %llu,\n", entries_.size(),
               static_cast<unsigned long long>(totalEvents_));
  std::fprintf(f, "  \"total_point_wall_seconds\": %.6f,\n  \"events_per_second\": %.1f,\n",
               totalWall_, aggRate);
  std::fprintf(f, "  \"series\": [\n");
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    std::fprintf(f,
                 "    {\"series\": \"%s\", \"load\": %.6f, \"saturated\": %s, "
                 "\"wall_seconds\": %.6f, \"events\": %llu, \"events_per_second\": %.1f, "
                 "\"point_jobs\": %u, \"status\": \"%s\"",
                 e.series.c_str(), e.load, e.saturated ? "true" : "false", e.wallSeconds,
                 static_cast<unsigned long long>(e.events), e.eventsPerSec, e.pointJobs,
                 e.status.c_str());
    if (!e.message.empty()) {
      std::fprintf(f, ", \"message\": \"%s\"", jsonEscape(e.message).c_str());
    }
    std::fprintf(f, "}%s\n", i + 1 < entries_.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace hxwar::harness
