// Built-in registrations: the five topology families, their routing
// algorithms, and the traffic patterns, in canonical evaluation order. This
// is the single place the experiment layer knows concrete types; everything
// above it (builder, Experiment, benches, hxsim) resolves names through the
// registry.
#include <string>

#include "common/assert.h"
#include "harness/registry.h"
#include "harness/spec.h"
#include "routing/dal.h"
#include "routing/dragonfly_routing.h"
#include "routing/fattree_routing.h"
#include "routing/hyperx_routing.h"
#include "routing/slimfly_routing.h"
#include "routing/torus_routing.h"
#include "topo/dragonfly.h"
#include "topo/fattree.h"
#include "topo/hyperx.h"
#include "topo/slimfly.h"
#include "topo/torus.h"

namespace hxwar::harness {
namespace {

std::uint32_t u32(const Flags& flags, const std::string& key, std::uint32_t fallback) {
  return static_cast<std::uint32_t>(flags.u64(key, fallback));
}

template <typename T>
const T& topoAs(const topo::Topology& topo, const std::string& what) {
  const T* typed = dynamic_cast<const T*>(&topo);
  HXWAR_CHECK_MSG(typed != nullptr,
                  (what + " is not usable on topology " + topo.name()).c_str());
  return *typed;
}

routing::VcPolicy vcPolicyParam(const Flags& params) {
  routing::VcPolicy policy = routing::VcPolicy::kStatic;
  const std::string name = params.str("vc-policy", "static");
  HXWAR_CHECK_MSG(routing::parseVcPolicy(name, &policy),
                  ("vc-policy must be static, dateline, or escape; got " + name).c_str());
  return policy;
}

routing::HyperXRoutingOptions hyperxOptions(const Flags& params) {
  routing::HyperXRoutingOptions opts;
  opts.ugalBias = params.f64("ugal-bias", 1.0);
  if (params.has("omni-deroutes")) opts.omniDeroutes = u32(params, "omni-deroutes", 0);
  opts.omniRestrictBackToBack = params.b("omni-restrict-b2b", true);
  opts.vcPolicy = vcPolicyParam(params);
  return opts;
}

// The algorithms dispatched through routing::makeHyperXRouting share one
// build lambda; the registry key selects the algorithm.
RoutingEntry hyperxEntry(const std::string& name, const std::string& schema,
                         bool benchDefault) {
  return RoutingEntry{
      "hyperx", name, schema, benchDefault,
      [name](const topo::Topology& topo, const Flags& params) {
        return routing::makeHyperXRouting(name, topoAs<topo::HyperX>(topo, name),
                                          hyperxOptions(params));
      }};
}

RoutingEntry dragonflyEntry(const std::string& name, const std::string& schema) {
  return RoutingEntry{"dragonfly", name, schema, true,
                      [name](const topo::Topology& topo, const Flags& params) {
                        return routing::makeDragonflyRouting(
                            name, topoAs<topo::Dragonfly>(topo, name),
                            params.f64("ugal-bias", 1.0));
                      }};
}

}  // namespace

void registerBuiltinExperimentFactories() {
  auto& reg = ExperimentRegistry::instance();

  // --- Topology families --------------------------------------------------
  reg.addTopology(
      {"hyperx", "widths=4,4,4 terminals=4 trunking=1", "dimwar",
       [](const Flags& params) -> std::unique_ptr<topo::Topology> {
         topo::HyperX::Params p;
         p.widths = flagU32List(params, "widths", {4, 4, 4});
         p.terminalsPerRouter = u32(params, "terminals", 4);
         p.trunking = u32(params, "trunking", 1);
         return std::make_unique<topo::HyperX>(p);
       }});
  reg.addTopology(
      {"dragonfly", "df-p=4 df-a=8 df-h=4 df-g=0(balanced)", "ugal",
       [](const Flags& params) -> std::unique_ptr<topo::Topology> {
         topo::Dragonfly::Params p;
         p.terminalsPerRouter = u32(params, "df-p", 4);
         p.routersPerGroup = u32(params, "df-a", 8);
         p.globalsPerRouter = u32(params, "df-h", 4);
         p.numGroups = u32(params, "df-g", 0);
         return std::make_unique<topo::Dragonfly>(p);
       }});
  reg.addTopology(
      {"fattree", "ft-down=4,8,8 ft-up=4,8", "adaptive",
       [](const Flags& params) -> std::unique_ptr<topo::Topology> {
         topo::FatTree::Params p;
         p.down = flagU32List(params, "ft-down", {4, 8, 8});
         p.up = flagU32List(params, "ft-up", {4, 8});
         return std::make_unique<topo::FatTree>(p);
       }});
  reg.addTopology(
      {"slimfly", "sf-q=5 terminals=0(balanced)", "minimal",
       [](const Flags& params) -> std::unique_ptr<topo::Topology> {
         topo::SlimFly::Params p;
         p.q = u32(params, "sf-q", 5);
         p.terminalsPerRouter = u32(params, "terminals", 0);
         return std::make_unique<topo::SlimFly>(p);
       }});
  reg.addTopology(
      {"torus", "widths=4,4 terminals=2", "dor",
       [](const Flags& params) -> std::unique_ptr<topo::Topology> {
         topo::Torus::Params p;
         p.widths = flagU32List(params, "widths", {4, 4});
         p.terminalsPerRouter = u32(params, "terminals", 2);
         return std::make_unique<topo::Torus>(p);
       }});

  // --- Routing algorithms -------------------------------------------------
  // HyperX, canonical evaluation order; benchDefault mirrors the list benches
  // have always swept (routing::hyperxAlgorithmNames()).
  reg.addRouting(hyperxEntry("dor", "", true));
  reg.addRouting(hyperxEntry("val", "", true));
  reg.addRouting(hyperxEntry("minad", "", false));
  reg.addRouting(hyperxEntry("ugal", "ugal-bias=1.0", true));
  reg.addRouting(hyperxEntry("closad", "ugal-bias=1.0", true));
  reg.addRouting(hyperxEntry("ugal+", "alias of closad", false));
  reg.addRouting(hyperxEntry("dimwar", "vc-policy=static|dateline|escape", true));
  reg.addRouting(hyperxEntry(
      "omniwar", "omni-deroutes=N omni-restrict-b2b=true vc-policy=static|escape", true));
  reg.addRouting({"hyperx", "dal", "dal-atomic=true vc-policy=static|escape", false,
                  [](const topo::Topology& topo, const Flags& params) {
                    return routing::makeDalRouting(topoAs<topo::HyperX>(topo, "dal"),
                                                   params.b("dal-atomic", true),
                                                   vcPolicyParam(params));
                  }});
  // Fault-tolerant escape routing (routing/ftar.h): excluded from the
  // headline bench sweeps like dal/minad, swept by bench/fault_resilience.
  reg.addRouting(hyperxEntry("ftar", "", false));

  reg.addRouting(dragonflyEntry("min", ""));
  reg.addRouting(dragonflyEntry("ugal", "ugal-bias=1.0"));
  reg.addRouting(dragonflyEntry("par", "ugal-bias=1.0"));

  reg.addRouting({"fattree", "adaptive", "", true,
                  [](const topo::Topology& topo, const Flags&) {
                    return routing::makeFatTreeRouting(
                        topoAs<topo::FatTree>(topo, "adaptive"));
                  }});
  reg.addRouting({"slimfly", "minimal", "", true,
                  [](const topo::Topology& topo, const Flags&) {
                    return routing::makeSlimFlyRouting(
                        topoAs<topo::SlimFly>(topo, "minimal"));
                  }});
  reg.addRouting({"torus", "dor", "", true,
                  [](const topo::Topology& topo, const Flags&) {
                    return routing::makeTorusRouting(topoAs<topo::Torus>(topo, "dor"));
                  }});

  // --- Traffic patterns ---------------------------------------------------
  // Topology-agnostic first, then the HyperX coordinate patterns (Table 3).
  reg.addPattern({"ur", "uniform random",
                  [](const topo::Topology& topo, std::uint64_t) {
                    return std::unique_ptr<traffic::TrafficPattern>(
                        std::make_unique<traffic::UniformRandom>(topo.numNodes()));
                  }});
  reg.addPattern({"bc", "bit complement",
                  [](const topo::Topology& topo, std::uint64_t) {
                    return std::unique_ptr<traffic::TrafficPattern>(
                        std::make_unique<traffic::BitComplement>(topo.numNodes()));
                  }});
  reg.addPattern({"rp", "seeded random permutation",
                  [](const topo::Topology& topo, std::uint64_t seed) {
                    return std::unique_ptr<traffic::TrafficPattern>(
                        std::make_unique<traffic::RandomPermutation>(topo.numNodes(),
                                                                     seed));
                  }});
  const auto urb = [](std::uint32_t dim) {
    return [dim](const topo::Topology& topo, std::uint64_t) {
      return std::unique_ptr<traffic::TrafficPattern>(
          std::make_unique<traffic::UniformRandomBisection>(
              topoAs<topo::HyperX>(topo, "urb"), dim));
    };
  };
  reg.addPattern({"urbx", "bisection in dim 0 (hyperx)", urb(0)});
  reg.addPattern({"urby", "bisection in dim 1 (hyperx)", urb(1)});
  reg.addPattern({"urbz", "bisection in dim 2 (hyperx)", urb(2)});
  reg.addPattern({"s2", "swap-2 (hyperx)",
                  [](const topo::Topology& topo, std::uint64_t) {
                    return std::unique_ptr<traffic::TrafficPattern>(
                        std::make_unique<traffic::Swap2>(topoAs<topo::HyperX>(topo, "s2")));
                  }});
  reg.addPattern({"dcr", "dimension complement reverse (hyperx)",
                  [](const topo::Topology& topo, std::uint64_t) {
                    return std::unique_ptr<traffic::TrafficPattern>(
                        std::make_unique<traffic::DimComplementReverse>(
                            topoAs<topo::HyperX>(topo, "dcr")));
                  }});
  reg.addPattern({"tp", "transpose (hyperx)",
                  [](const topo::Topology& topo, std::uint64_t) {
                    return std::unique_ptr<traffic::TrafficPattern>(
                        std::make_unique<traffic::Transpose>(
                            topoAs<topo::HyperX>(topo, "tp")));
                  }});
}

}  // namespace hxwar::harness
