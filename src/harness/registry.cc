#include "harness/registry.h"

#include <sstream>

#include "common/assert.h"

namespace hxwar::harness {
namespace {

std::string joinNames(const std::vector<std::string>& names) {
  std::ostringstream out;
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out << ", ";
    out << names[i];
  }
  return out.str();
}

}  // namespace

ExperimentRegistry& ExperimentRegistry::instance() {
  static ExperimentRegistry registry;
  return registry;
}

void ExperimentRegistry::ensureBuiltins() {
  // addTopology/addRouting/addPattern below re-enter this function; the
  // thread-local flag breaks the recursion while the magic static still
  // serializes the one-time installation across threads.
  static thread_local bool inProgress = false;
  if (inProgress) return;
  inProgress = true;
  static const bool once = (registerBuiltinExperimentFactories(), true);
  (void)once;
  inProgress = false;
}

void ExperimentRegistry::addTopology(TopologyFamily entry) {
  ensureBuiltins();
  for (const auto& t : topologies_) {
    HXWAR_CHECK_MSG(t.name != entry.name,
                    ("duplicate topology family registration: " + entry.name).c_str());
  }
  HXWAR_CHECK_MSG(static_cast<bool>(entry.build),
                  ("topology family " + entry.name + " has no build function").c_str());
  topologies_.push_back(std::move(entry));
}

void ExperimentRegistry::addRouting(RoutingEntry entry) {
  ensureBuiltins();
  for (const auto& r : routings_) {
    HXWAR_CHECK_MSG(r.family != entry.family || r.name != entry.name,
                    ("duplicate routing registration: " + entry.family + "/" + entry.name)
                        .c_str());
  }
  HXWAR_CHECK_MSG(static_cast<bool>(entry.build),
                  ("routing " + entry.name + " has no build function").c_str());
  routings_.push_back(std::move(entry));
}

void ExperimentRegistry::addPattern(PatternEntry entry) {
  ensureBuiltins();
  for (const auto& p : patterns_) {
    HXWAR_CHECK_MSG(p.name != entry.name,
                    ("duplicate pattern registration: " + entry.name).c_str());
  }
  HXWAR_CHECK_MSG(static_cast<bool>(entry.build),
                  ("pattern " + entry.name + " has no build function").c_str());
  patterns_.push_back(std::move(entry));
}

const TopologyFamily& ExperimentRegistry::topology(const std::string& name) {
  ensureBuiltins();
  for (const auto& t : topologies_) {
    if (t.name == name) return t;
  }
  HXWAR_CHECK_MSG(false, ("unknown topology family: " + name +
                          " (registered: " + joinNames(topologyNames()) + ")")
                             .c_str());
  return topologies_.front();  // unreachable
}

const RoutingEntry& ExperimentRegistry::routing(const std::string& family,
                                                const std::string& name) {
  ensureBuiltins();
  for (const auto& r : routings_) {
    if (r.family == family && r.name == name) return r;
  }
  HXWAR_CHECK_MSG(false, ("unknown routing algorithm: " + name + " for " + family +
                          " (registered: " + joinNames(routingNames(family)) + ")")
                             .c_str());
  return routings_.front();  // unreachable
}

const PatternEntry& ExperimentRegistry::pattern(const std::string& name) {
  ensureBuiltins();
  for (const auto& p : patterns_) {
    if (p.name == name) return p;
  }
  HXWAR_CHECK_MSG(false, ("unknown traffic pattern: " + name +
                          " (registered: " + joinNames(patternNames()) + ")")
                             .c_str());
  return patterns_.front();  // unreachable
}

std::vector<std::string> ExperimentRegistry::topologyNames() {
  ensureBuiltins();
  std::vector<std::string> names;
  for (const auto& t : topologies_) names.push_back(t.name);
  return names;
}

std::vector<std::string> ExperimentRegistry::routingNames(const std::string& family) {
  ensureBuiltins();
  std::vector<std::string> names;
  for (const auto& r : routings_) {
    if (r.family == family) names.push_back(r.name);
  }
  return names;
}

std::vector<std::string> ExperimentRegistry::patternNames() {
  ensureBuiltins();
  std::vector<std::string> names;
  for (const auto& p : patterns_) names.push_back(p.name);
  return names;
}

std::vector<std::string> ExperimentRegistry::benchRoutingNames(const std::string& family) {
  ensureBuiltins();
  std::vector<std::string> names;
  for (const auto& r : routings_) {
    if (r.family == family && r.benchDefault) names.push_back(r.name);
  }
  return names;
}

}  // namespace hxwar::harness
