// String-configured network construction: builds any supported topology with
// a matching routing algorithm from key=value configuration — the backend of
// the `hxsim` command-line runner (and of config-file-driven experiments).
//
// Keys (defaults in parentheses):
//   topology        hyperx | dragonfly | fattree | slimfly | torus  (hyperx)
//   routing         per family:
//                     hyperx: dor val minad ugal closad dimwar omniwar dal
//                     dragonfly: min ugal par    fattree: adaptive
//                     slimfly: minimal adaptive (fixed)
//                     torus: dor (dateline)
//   widths          hyperx/torus dimension widths, e.g. 4,4,4   (4,4,4)
//   terminals       terminals per router (hyperx/torus)         (4)
//   trunking        hyperx trunk links per dim pair             (1)
//   df-p df-a df-h df-g   dragonfly shape                       (4,8,4,0)
//   ft-down ft-up   fat-tree XGFT m-list / w-list               (4,8,8 / 4,8)
//   sf-q            SlimFly field size (prime, q % 4 == 1)      (5)
//   vcs             virtual channels                            (8)
//   channel-latency / terminal-latency    cycles                (8 / 1)
//   input-buffer / output-queue / xbar-latency / speedup        (48/32/4/4)
//   bias            routing weight bias in flits                (4.0)
//   vct             packet-buffer (cut-through) flow control    (true)
//   net-seed        RNG seed for routers                        (1)
//
// Observability flags (trace-out, trace-sample, metrics-json,
// sample-interval, stall-window) are harness-level, not construction keys:
// see obs/obs.h and harness/spec.h (obsOptionsFromFlags).
#pragma once

#include <memory>
#include <string>

#include "common/flags.h"
#include "net/network.h"
#include "routing/routing.h"
#include "sim/simulator.h"
#include "topo/topology.h"
#include "traffic/pattern.h"

namespace hxwar::harness {

class NetworkBundle {
 public:
  // Builds the full stack. Aborts (CHECK) on unknown topology/routing names.
  static std::unique_ptr<NetworkBundle> fromFlags(const Flags& flags);

  sim::Simulator& sim() { return sim_; }
  const topo::Topology& topology() const { return *topology_; }
  routing::RoutingAlgorithm& routing() { return *routing_; }
  net::Network& network() { return *network_; }
  const std::string& description() const { return description_; }

  // Builds a registered traffic pattern against this bundle's topology.
  // HyperX supports the full pattern set; other topologies support the
  // topology-agnostic ones (ur, bc, rp) — a HyperX-only pattern on another
  // family aborts naming the topology.
  std::unique_ptr<traffic::TrafficPattern> makePattern(const std::string& name,
                                                       std::uint64_t seed = 99) const;

 private:
  NetworkBundle() = default;

  sim::Simulator sim_;
  std::unique_ptr<topo::Topology> topology_;
  std::unique_ptr<routing::RoutingAlgorithm> routing_;
  std::unique_ptr<net::Network> network_;
  std::string description_;
};

}  // namespace hxwar::harness
