// Observability output writers for sweep results: the merged Chrome-trace
// JSON (--trace-out) and the structured metrics JSON (--metrics-json).
//
// Both are assembled from per-point captures after the sweep completes, in
// point order — never completion order — so output is byte-identical for any
// --jobs value (the same contract as the CSV/table surface).
#pragma once

#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/spec.h"

namespace hxwar::harness {

// Chrome-trace JSON for the whole sweep: one Perfetto process group per sweep
// point ("point N load X"), packet lifecycles as async events, sampler
// snapshots as counter tracks. Loads in chrome://tracing and ui.perfetto.dev.
// Returns false (after a warning) when the file cannot be opened.
bool writeTraceJson(const std::string& path, const ExperimentSpec& spec,
                    const std::vector<SweepPoint>& points);

// Structured metrics JSON: per point, the latency distribution (mean /
// p50/p90/p99/p999 / min/max plus the nonzero log2 histogram buckets and the
// per-hop-count breakdown), the routing-decision counters (deroutes taken and
// refused per dimension, fault escapes, path deroutes, VC grants), and the
// periodic sampler rows when --sample-interval is set. When the flight
// recorder ran, each point also carries a "timeline" hotspot summary
// (point-jobs-invariant) and — on sharded runs only — a "shard_balance"
// section whose shape follows the shard count (per-window shard event deltas
// and max/mean load ratios; jobs-invariant, point-jobs-variant by nature).
bool writeMetricsJson(const std::string& path, const ExperimentSpec& spec,
                      const std::vector<SweepPoint>& points);

// Windowed-telemetry JSONL (--timeline-out): one header line, then per sweep
// point a point-meta line followed by one line per closed window (see
// obs::appendWindowJsonl). Every line derives from simulation state only, so
// the file is byte-identical across --jobs AND --point-jobs values.
bool writeTimelineJsonl(const std::string& path, const ExperimentSpec& spec,
                        const std::vector<SweepPoint>& points);

}  // namespace hxwar::harness
