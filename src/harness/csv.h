// CSV writer for experiment results, so bench output can feed plotting
// scripts directly (one row per measured point, header once).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace hxwar::harness {

class CsvWriter {
 public:
  // Opens (truncates) `path`; invalid paths disable the writer silently so
  // benches can pass an empty --csv flag.
  CsvWriter(const std::string& path, std::vector<std::string> header);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  bool enabled() const { return file_ != nullptr; }
  void row(const std::vector<std::string>& cells);

 private:
  std::FILE* file_ = nullptr;
  std::size_t columns_ = 0;
};

}  // namespace hxwar::harness
