#include "harness/table.h"

#include <algorithm>
#include <cstdio>

namespace hxwar::harness {

void Table::print(std::FILE* out) const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto printRow = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& s = c < cells.size() ? cells[c] : std::string();
      std::fprintf(out, "%s%-*s", c == 0 ? "" : "  ", static_cast<int>(widths[c]), s.c_str());
    }
    std::fputc('\n', out);
  };
  printRow(headers_);
  std::string rule;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    if (c != 0) rule += "  ";
    rule.append(widths[c], '-');
  }
  std::fprintf(out, "%s\n", rule.c_str());
  for (const auto& row : rows_) printRow(row);
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::pct(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, v * 100.0);
  return buf;
}

}  // namespace hxwar::harness
