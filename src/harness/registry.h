// Named factory registries for the experiment layer, in the style of
// BookSim2's function registries: topology families, routing algorithms, and
// traffic patterns register themselves under a string name together with a
// one-line flag schema, and every front end (hxsim, benches, ExperimentSpec)
// resolves names through the same table.
//
// Lookups abort (CHECK) on unknown names and list the registered names, so a
// typo'd --topology/--routing/--pattern tells the user what exists. Entries
// keep insertion order: the built-ins register in canonical evaluation order
// (see registry_builtin.cc) and name listings reproduce that order.
//
// Adding a new family/algorithm/pattern is a registration, not a harness
// edit — either extend registerBuiltinExperimentFactories() or drop a
// HXWAR_REGISTER_* macro into any linked translation unit:
//
//   HXWAR_REGISTER_ROUTING(("torus", "valiant", "", true,
//       [](const topo::Topology& t, const Flags&) { ... }));
//
// Built-ins are installed lazily before the first lookup or registration, so
// macro-registered extensions always sort after them.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/flags.h"
#include "routing/routing.h"
#include "topo/topology.h"
#include "traffic/pattern.h"

namespace hxwar::harness {

struct TopologyFamily {
  std::string name;            // registry key, e.g. "dragonfly"
  std::string flagSchema;      // construction keys, e.g. "df-p df-a df-h df-g"
  std::string defaultRouting;  // routing name used when a spec leaves it empty
  std::function<std::unique_ptr<topo::Topology>(const Flags& params)> build;
};

struct RoutingEntry {
  std::string family;  // topology family this algorithm applies to
  std::string name;
  std::string flagSchema;
  // Included in the family's default bench algorithm list (aliases and
  // specialist baselines opt out).
  bool benchDefault = true;
  std::function<std::unique_ptr<routing::RoutingAlgorithm>(const topo::Topology& topo,
                                                           const Flags& params)>
      build;
};

struct PatternEntry {
  std::string name;
  std::string description;
  // `seed` feeds seeded patterns (rp); others ignore it. Patterns needing a
  // concrete topology (the HyperX coordinate patterns) downcast and CHECK.
  std::function<std::unique_ptr<traffic::TrafficPattern>(const topo::Topology& topo,
                                                         std::uint64_t seed)>
      build;
};

class ExperimentRegistry {
 public:
  static ExperimentRegistry& instance();

  // Registration aborts on duplicate names (same family for routing).
  void addTopology(TopologyFamily entry);
  void addRouting(RoutingEntry entry);
  void addPattern(PatternEntry entry);

  // Lookups abort on unknown names, listing the registered names.
  const TopologyFamily& topology(const std::string& name);
  const RoutingEntry& routing(const std::string& family, const std::string& name);
  const PatternEntry& pattern(const std::string& name);

  // Names in registration order.
  std::vector<std::string> topologyNames();
  std::vector<std::string> routingNames(const std::string& family);
  std::vector<std::string> patternNames();
  // routingNames filtered to benchDefault entries — the canonical algorithm
  // list benches sweep for a family.
  std::vector<std::string> benchRoutingNames(const std::string& family);

 private:
  ExperimentRegistry() = default;
  void ensureBuiltins();

  std::vector<TopologyFamily> topologies_;
  std::vector<RoutingEntry> routings_;
  std::vector<PatternEntry> patterns_;
};

// Installs the built-in families/algorithms/patterns (registry_builtin.cc).
// Called lazily by the registry itself; never needed directly.
void registerBuiltinExperimentFactories();

#define HXWAR_REGISTRY_CONCAT_INNER(a, b) a##b
#define HXWAR_REGISTRY_CONCAT(a, b) HXWAR_REGISTRY_CONCAT_INNER(a, b)

// Self-registration from any linked TU. Wrap the braced initializer in
// parentheses: HXWAR_REGISTER_TOPOLOGY(({"mesh", "widths", "dor", ...})).
#define HXWAR_REGISTER_TOPOLOGY(entry)                                      \
  static const bool HXWAR_REGISTRY_CONCAT(hxwarRegTopo_, __COUNTER__) =     \
      (::hxwar::harness::ExperimentRegistry::instance().addTopology(        \
           ::hxwar::harness::TopologyFamily entry),                         \
       true)
#define HXWAR_REGISTER_ROUTING(entry)                                       \
  static const bool HXWAR_REGISTRY_CONCAT(hxwarRegRoute_, __COUNTER__) =    \
      (::hxwar::harness::ExperimentRegistry::instance().addRouting(         \
           ::hxwar::harness::RoutingEntry entry),                           \
       true)
#define HXWAR_REGISTER_PATTERN(entry)                                       \
  static const bool HXWAR_REGISTRY_CONCAT(hxwarRegPattern_, __COUNTER__) =  \
      (::hxwar::harness::ExperimentRegistry::instance().addPattern(         \
           ::hxwar::harness::PatternEntry entry),                           \
       true)

}  // namespace hxwar::harness
