// Experiment harness: wires a simulator, a registry-built topology, routing
// algorithm, network, traffic pattern, and injector into one owned bundle,
// with the scale presets used by the benches. Works for every registered
// topology family (see harness/registry.h); ExperimentConfig remains as the
// HyperX-specific preset surface and converts via toSpec().
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "fault/degraded_topology.h"
#include "fault/fault_controller.h"
#include "fault/fault_model.h"
#include "harness/spec.h"
#include "metrics/steady_state.h"
#include "net/network.h"
#include "obs/net_observer.h"
#include "obs/recorder.h"
#include "obs/sampler.h"
#include "routing/hyperx_routing.h"
#include "sim/backend.h"
#include "sim/par/engine.h"
#include "sim/par/shard_plan.h"
#include "sim/simulator.h"
#include "topo/hyperx.h"
#include "traffic/injector.h"
#include "traffic/pattern.h"

namespace hxwar::harness {

struct ExperimentConfig {
  std::vector<std::uint32_t> widths = {4, 4, 4};
  std::uint32_t terminalsPerRouter = 4;
  std::string algorithm = "dimwar";
  std::string pattern = "ur";
  routing::HyperXRoutingOptions routingOpts;
  net::NetworkConfig net;
  traffic::SyntheticInjector::Params injection;
  metrics::SteadyStateConfig steady;

  // Equivalent topology-agnostic spec: widths/terminals/routingOpts become
  // construction params, the structured sub-configs copy over verbatim (so a
  // converted spec simulates bit-identically to the config it came from).
  ExperimentSpec toSpec() const;
};

// Scale presets.
//   small: 4x4x4, K=4 (256 nodes), short channels — default for benches/tests
//   tiny:  3x3, K=2 (18 nodes) — unit/property tests
//   paper: 8x8x8, K=8 (4,096 nodes), 50-cycle channels — the paper's system
ExperimentConfig smallScaleConfig();
ExperimentConfig tinyScaleConfig();
ExperimentConfig paperScaleConfig();
// Lookup by name ("tiny", "small", "paper").
ExperimentConfig scaleConfig(const std::string& name);

// One self-contained simulation instance. Construct fresh per data point so
// measurements never leak state across points.
//
// With spec.pointJobs > 1 the network is sharded across that many simulators
// (contiguous router ranges, sim/par/shard_plan.h) and run() drives the
// conservative parallel engine; sim_ becomes the control simulator hosting
// the fault controller and sampler. Every deterministic output — steady-state
// result, trace, samples, routing counters — is bit-identical to pointJobs=1.
class Experiment {
 public:
  explicit Experiment(const ExperimentSpec& spec);
  explicit Experiment(const ExperimentConfig& config) : Experiment(config.toSpec()) {}

  // The control simulator: the only simulator when pointJobs == 1, the
  // sampler/fault-controller host otherwise. Network components live in the
  // shard simulators when sharded — drive time through backend(), not here.
  sim::Simulator& sim() { return sim_; }
  // The base (fault-free) topology the factories built.
  const topo::Topology& topology() const { return *topo_; }
  // The topology the network actually simulates: the DegradedTopology
  // decorator when static faults are configured, the base otherwise.
  const topo::Topology& effectiveTopology() const {
    return degraded_ ? static_cast<const topo::Topology&>(*degraded_) : *topo_;
  }
  // CHECK'd downcast for HyperX-specific callers (benches, examples).
  const topo::HyperX& hyperx() const;
  net::Network& network() { return *network_; }
  // Lane-0 injector (the only one when pointJobs == 1).
  traffic::SyntheticInjector& injector() { return *injectors_[0]; }
  const std::vector<std::unique_ptr<traffic::SyntheticInjector>>& injectors() {
    return injectors_;
  }
  // Lane-0 routing instance (sharded runs build one per shard — adaptive
  // algorithms keep per-instance scratch two workers must not share).
  routing::RoutingAlgorithm& routing() { return *routing_[0]; }
  const ExperimentSpec& spec() const { return spec_; }
  // Effective shard count: spec.pointJobs clamped to the router count.
  std::uint32_t pointJobs() const { return pointJobs_; }
  // The engine that run() drives: SerialBackend over sim() when pointJobs is
  // 1, the conservative parallel engine otherwise.
  sim::SimBackend& backend() { return *backend_; }
  // Non-null only when sharded (telemetry: per-shard event counts, windows).
  sim::par::Engine* parEngine() { return engine_.get(); }
  // Fault set applied to this experiment (empty when fault-free).
  const fault::FaultSet& faultSet() const { return faultSet_; }
  const fault::DeadPortMask* deadPortMask() const {
    return spec_.fault.active() ? &mask_ : nullptr;
  }
  // Connectivity census of the degraded graph (all-connected defaults when
  // fault-free). Partition-tolerant policies surface its unreachable-pair
  // counts through SteadyStateResult; run() copies them over.
  const fault::ConnectivityReport& connectivity() const { return connectivity_; }
  // Lane-0 observability sink (the only one when pointJobs == 1); nullptr
  // when spec.obs is all-defaults or the obs layer is compiled out.
  obs::NetObserver* observer() { return observers_.empty() ? nullptr : observers_[0].get(); }
  // All per-lane observers (one per shard when sharded). Traces and routing
  // counters must be merged across them — see runSweepPoint.
  const std::vector<std::unique_ptr<obs::NetObserver>>& observers() { return observers_; }
  // Windowed flight recorder; nullptr unless spec.obs.windowed() (or the obs
  // layer is compiled out).
  obs::FlightRecorder* recorder() { return recorder_.get(); }

  // Runs warmup + measurement at the configured injection rate.
  metrics::SteadyStateResult run();

 private:
  ExperimentSpec spec_;
  sim::Simulator sim_;  // control sim when sharded, the sim otherwise
  std::uint32_t pointJobs_ = 1;
  sim::par::ShardPlan plan_;
  std::vector<std::unique_ptr<sim::Simulator>> shardSims_;
  std::unique_ptr<sim::par::Mailboxes> mail_;
  std::unique_ptr<topo::Topology> topo_;
  // Fault state. Declaration order matters: degraded_ holds references to
  // topo_ and mask_, so it must be declared (and thus destroyed) after them.
  fault::FaultSet faultSet_;
  fault::DeadPortMask mask_;
  fault::ConnectivityReport connectivity_;
  std::unique_ptr<fault::DegradedTopology> degraded_;
  std::vector<std::unique_ptr<routing::RoutingAlgorithm>> routing_;  // one per shard
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<fault::FaultController> faultCtrl_;
  std::vector<std::unique_ptr<traffic::TrafficPattern>> patterns_;   // one per lane
  std::vector<std::unique_ptr<traffic::SyntheticInjector>> injectors_;  // one per lane
  // Observability (optional): the observers outlive the sampler that polls
  // them and the network that holds raw pointers to them; all are declared
  // after network_ so teardown order is safe.
  std::vector<std::unique_ptr<obs::NetObserver>> observers_;
  std::unique_ptr<obs::Sampler> sampler_;
  std::unique_ptr<obs::FlightRecorder> recorder_;
  // Engine last: its destructor joins the workers while every component they
  // might touch is still alive.
  std::unique_ptr<sim::par::Engine> engine_;
  std::unique_ptr<sim::SimBackend> serial_;
  sim::SimBackend* backend_ = nullptr;
};

// Load-latency sweep: fresh Experiment per load. Stops early once two
// consecutive loads saturate (the curve has ended, matching how the paper's
// plots stop at saturation).
struct SweepPoint {
  double load = 0.0;
  std::size_t index = 0;  // position in the load grid (seed derivation key)
  // Crash isolation (DESIGN.md §13): a point whose simulation raises
  // hxwar::Error — e.g. a fault dead end under --fault-policy=abort — is
  // retried once with the same seeds and, if it fails again, reported as a
  // structured failed row (status="failed", message=the error text) instead
  // of tearing down the whole sweep. `result` keeps its defaults then.
  std::string status = "ok";
  std::string message;
  bool failed() const { return status != "ok"; }
  metrics::SteadyStateResult result;
  // Perf telemetry for this point. Wall-clock values vary run to run; every
  // field of `result` is deterministic given (spec, load, index).
  double wallSeconds = 0.0;
  std::uint64_t eventsProcessed = 0;
  double eventsPerSec = 0.0;
  // Effective intra-point shard count (spec.pointJobs clamped to the router
  // count). Telemetry only — results are pointJobs-invariant.
  std::uint32_t pointJobs = 1;
  // Observability captures (empty unless the spec enables them). Deterministic
  // like `result`: trace sampling keys on packet ids, sampler rows on ticks.
  obs::TraceBuffer trace;
  std::vector<obs::SampleRow> samples;
  // Flight-recorder captures (empty unless spec.obs.windowed()). `windows` is
  // jobs- AND point-jobs-invariant; `shardWindows` is jobs-invariant but its
  // shape follows the shard count (empty on serial runs) — it feeds the
  // metrics-json shard_balance section, never --timeline-out.
  std::vector<obs::WindowRecord> windows;
  std::vector<obs::ShardWindowRecord> shardWindows;
};

// Derives the per-point configuration for point `index` at `load`. Seeds are
// expanded from (base seed, point index) only — never from thread identity or
// execution order — so a sweep replays identically at any parallelism. The
// two overloads use the same derivation, so config and spec paths agree.
ExperimentSpec sweepPointConfig(const ExperimentSpec& base, double load,
                                std::size_t index);
ExperimentConfig sweepPointConfig(const ExperimentConfig& base, double load,
                                  std::size_t index);

// Builds and runs one sweep point, recording wall time and event throughput.
SweepPoint runSweepPoint(const ExperimentSpec& base, double load, std::size_t index);
SweepPoint runSweepPoint(const ExperimentConfig& base, double load, std::size_t index);

std::vector<SweepPoint> loadLatencySweep(const ExperimentSpec& base,
                                         const std::vector<double>& loads,
                                         bool stopAtSaturation = true);
std::vector<SweepPoint> loadLatencySweep(const ExperimentConfig& base,
                                         const std::vector<double>& loads,
                                         bool stopAtSaturation = true);

// Accepted throughput at (near-)full offered load — the Fig. 6g metric.
double saturationThroughput(const ExperimentSpec& base, double offered = 1.0);
double saturationThroughput(const ExperimentConfig& base, double offered = 1.0);

// Uniform load grid [step, step*2, ..., <= max].
std::vector<double> loadGrid(double step, double max);

}  // namespace hxwar::harness
