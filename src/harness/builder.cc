#include "harness/builder.h"

#include <sstream>

#include "harness/registry.h"
#include "harness/spec.h"

namespace hxwar::harness {

std::unique_ptr<NetworkBundle> NetworkBundle::fromFlags(const Flags& flags) {
  auto bundle = std::unique_ptr<NetworkBundle>(new NetworkBundle());
  auto& registry = ExperimentRegistry::instance();

  // Resolve through the spec so --scale presets shape the bundle exactly the
  // way they shape an experiment; explicit flags override preset fields.
  const ExperimentSpec spec = ExperimentSpec::fromFlags(flags);
  const Flags params = spec.paramFlags();
  const TopologyFamily& family = registry.topology(spec.topology);
  bundle->topology_ = family.build(params);
  const std::string algo = spec.routing.empty() ? family.defaultRouting : spec.routing;
  bundle->routing_ = registry.routing(family.name, algo).build(*bundle->topology_, params);

  bundle->network_ = std::make_unique<net::Network>(bundle->sim_, *bundle->topology_,
                                                    *bundle->routing_, spec.net);

  std::ostringstream d;
  d << bundle->topology_->name() << " + " << bundle->routing_->info().name;
  bundle->description_ = d.str();
  return bundle;
}

std::unique_ptr<traffic::TrafficPattern> NetworkBundle::makePattern(
    const std::string& name, std::uint64_t seed) const {
  return ExperimentRegistry::instance().pattern(name).build(*topology_, seed);
}

}  // namespace hxwar::harness
