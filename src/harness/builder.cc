#include "harness/builder.h"

#include <sstream>

#include "harness/registry.h"
#include "harness/spec.h"

namespace hxwar::harness {

std::unique_ptr<NetworkBundle> NetworkBundle::fromFlags(const Flags& flags) {
  auto bundle = std::unique_ptr<NetworkBundle>(new NetworkBundle());
  auto& registry = ExperimentRegistry::instance();

  const TopologyFamily& family = registry.topology(flags.str("topology", "hyperx"));
  bundle->topology_ = family.build(flags);
  const std::string algo = flags.str("routing", family.defaultRouting);
  bundle->routing_ = registry.routing(family.name, algo).build(*bundle->topology_, flags);

  // ExperimentSpec's default network config IS the builder default (spec.cc);
  // flags override individual fields.
  bundle->network_ = std::make_unique<net::Network>(
      bundle->sim_, *bundle->topology_, *bundle->routing_,
      networkConfigFromFlags(flags, ExperimentSpec().net));

  std::ostringstream d;
  d << bundle->topology_->name() << " + " << bundle->routing_->info().name;
  bundle->description_ = d.str();
  return bundle;
}

std::unique_ptr<traffic::TrafficPattern> NetworkBundle::makePattern(
    const std::string& name, std::uint64_t seed) const {
  return ExperimentRegistry::instance().pattern(name).build(*topology_, seed);
}

}  // namespace hxwar::harness
