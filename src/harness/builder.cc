#include "harness/builder.h"

#include <sstream>

#include "common/assert.h"
#include "routing/dal.h"
#include "routing/dragonfly_routing.h"
#include "routing/fattree_routing.h"
#include "routing/hyperx_routing.h"
#include "routing/slimfly_routing.h"
#include "routing/torus_routing.h"
#include "topo/dragonfly.h"
#include "topo/fattree.h"
#include "topo/hyperx.h"
#include "topo/slimfly.h"
#include "topo/torus.h"

namespace hxwar::harness {
namespace {

std::vector<std::uint32_t> u32List(const Flags& flags, const std::string& key,
                                   std::vector<std::uint32_t> fallback) {
  if (!flags.has(key)) return fallback;
  std::vector<std::uint32_t> out;
  for (const double v : flags.f64List(key, {})) {
    out.push_back(static_cast<std::uint32_t>(v));
  }
  return out.empty() ? fallback : out;
}

net::NetworkConfig netConfig(const Flags& flags) {
  net::NetworkConfig cfg;
  cfg.channelLatencyRouter = flags.u64("channel-latency", 8);
  cfg.channelLatencyTerminal = flags.u64("terminal-latency", 1);
  cfg.rngSeed = flags.u64("net-seed", 1);
  cfg.router.numVcs = static_cast<std::uint32_t>(flags.u64("vcs", 8));
  cfg.router.inputBufferDepth = static_cast<std::uint32_t>(flags.u64("input-buffer", 48));
  cfg.router.outputQueueDepth = static_cast<std::uint32_t>(flags.u64("output-queue", 32));
  cfg.router.crossbarLatency = static_cast<std::uint32_t>(flags.u64("xbar-latency", 4));
  cfg.router.inputSpeedup = static_cast<std::uint32_t>(flags.u64("speedup", 4));
  cfg.router.weightBias = flags.f64("bias", 4.0);
  cfg.router.virtualCutThrough = flags.b("vct", true);
  const std::string arb = flags.str("arbiter", "age");
  HXWAR_CHECK_MSG(arb == "age" || arb == "rr", "arbiter must be age or rr");
  cfg.router.arbiter = arb == "age" ? net::ArbiterPolicy::kAgeBased
                                    : net::ArbiterPolicy::kRoundRobin;
  return cfg;
}

}  // namespace

std::unique_ptr<NetworkBundle> NetworkBundle::fromFlags(const Flags& flags) {
  auto bundle = std::unique_ptr<NetworkBundle>(new NetworkBundle());
  const std::string family = flags.str("topology", "hyperx");
  const net::NetworkConfig cfg = netConfig(flags);

  if (family == "hyperx") {
    topo::HyperX::Params p;
    p.widths = u32List(flags, "widths", {4, 4, 4});
    p.terminalsPerRouter = static_cast<std::uint32_t>(flags.u64("terminals", 4));
    p.trunking = static_cast<std::uint32_t>(flags.u64("trunking", 1));
    auto topo = std::make_unique<topo::HyperX>(p);
    const std::string algo = flags.str("routing", "dimwar");
    routing::HyperXRoutingOptions opts;
    opts.ugalBias = flags.f64("ugal-bias", 1.0);
    if (flags.has("omni-deroutes")) {
      opts.omniDeroutes = static_cast<std::uint32_t>(flags.u64("omni-deroutes", 0));
    }
    opts.omniRestrictBackToBack = flags.b("omni-restrict-b2b", true);
    bundle->routing_ = (algo == "dal")
                           ? routing::makeDalRouting(*topo, flags.b("dal-atomic", true))
                           : routing::makeHyperXRouting(algo, *topo, opts);
    bundle->topology_ = std::move(topo);
    bundle->isHyperX_ = true;
  } else if (family == "dragonfly") {
    topo::Dragonfly::Params p;
    p.terminalsPerRouter = static_cast<std::uint32_t>(flags.u64("df-p", 4));
    p.routersPerGroup = static_cast<std::uint32_t>(flags.u64("df-a", 8));
    p.globalsPerRouter = static_cast<std::uint32_t>(flags.u64("df-h", 4));
    p.numGroups = static_cast<std::uint32_t>(flags.u64("df-g", 0));
    auto topo = std::make_unique<topo::Dragonfly>(p);
    bundle->routing_ = routing::makeDragonflyRouting(flags.str("routing", "ugal"), *topo,
                                                     flags.f64("ugal-bias", 1.0));
    bundle->topology_ = std::move(topo);
  } else if (family == "fattree") {
    topo::FatTree::Params p;
    p.down = u32List(flags, "ft-down", {4, 8, 8});
    p.up = u32List(flags, "ft-up", {4, 8});
    auto topo = std::make_unique<topo::FatTree>(p);
    bundle->routing_ = routing::makeFatTreeRouting(*topo);
    bundle->topology_ = std::move(topo);
  } else if (family == "slimfly") {
    topo::SlimFly::Params p;
    p.q = static_cast<std::uint32_t>(flags.u64("sf-q", 5));
    p.terminalsPerRouter = static_cast<std::uint32_t>(flags.u64("terminals", 0));
    auto topo = std::make_unique<topo::SlimFly>(p);
    bundle->routing_ = routing::makeSlimFlyRouting(*topo);
    bundle->topology_ = std::move(topo);
  } else if (family == "torus") {
    topo::Torus::Params p;
    p.widths = u32List(flags, "widths", {4, 4});
    p.terminalsPerRouter = static_cast<std::uint32_t>(flags.u64("terminals", 2));
    auto topo = std::make_unique<topo::Torus>(p);
    bundle->routing_ = routing::makeTorusRouting(*topo);
    bundle->topology_ = std::move(topo);
  } else {
    HXWAR_CHECK_MSG(false, ("unknown topology family: " + family).c_str());
  }

  bundle->network_ =
      std::make_unique<net::Network>(bundle->sim_, *bundle->topology_, *bundle->routing_, cfg);
  std::ostringstream d;
  d << bundle->topology_->name() << " + " << bundle->routing_->info().name;
  bundle->description_ = d.str();
  return bundle;
}

std::unique_ptr<traffic::TrafficPattern> NetworkBundle::makePattern(
    const std::string& name, std::uint64_t seed) const {
  if (isHyperX_) {
    return traffic::makePattern(name, static_cast<const topo::HyperX&>(*topology_));
  }
  if (name == "ur") return std::make_unique<traffic::UniformRandom>(topology_->numNodes());
  if (name == "bc") return std::make_unique<traffic::BitComplement>(topology_->numNodes());
  if (name == "rp") return std::make_unique<traffic::RandomPermutation>(topology_->numNodes(), seed);
  HXWAR_CHECK_MSG(false, ("pattern not supported on this topology: " + name).c_str());
  return nullptr;
}

}  // namespace hxwar::harness
