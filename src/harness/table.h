// Fixed-width ASCII table printer for bench output, mirroring the rows/series
// the paper's figures report.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace hxwar::harness {

class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  void addRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void print(std::FILE* out = stdout) const;

  // Cell formatting helpers.
  static std::string num(double v, int precision = 2);
  static std::string pct(double v, int precision = 1);  // 0.5 -> "50.0%"

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hxwar::harness
