// Parallel sweep engine.
//
// A load-latency sweep is a list of independent Experiment instances — one
// per (algorithm, load, seed) point — so the runner farms points out to a
// thread pool and reduces results in point order. Determinism contract:
//
//   * Every point's seeds derive from (base seed, point index) via
//     sweepPointConfig(); thread identity and completion order never enter.
//   * Results are reduced in ascending point order, and the stop-at-
//     saturation cut (two consecutive saturated loads) is applied in that
//     ordered position. Points speculatively executed past the cut are
//     discarded, never reordered.
//
// Consequently runLoadSweep(jobs=N) returns bit-identical SweepPoints to
// runLoadSweep(jobs=1), which itself is the exact serial loadLatencySweep()
// path. Only the wall-clock telemetry fields vary between runs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/parallel.h"

namespace hxwar::harness {

struct SweepOptions {
  unsigned jobs = 1;             // 1 = exact legacy serial path
  bool stopAtSaturation = true;  // cut after two consecutive saturated loads
  // How many points to run speculatively per scheduling wave, as a multiple
  // of `jobs`. Larger waves waste more work past the saturation cut; smaller
  // waves leave workers idle between waves.
  unsigned waveFactor = 2;
};

// Runs the load grid, possibly on `jobs` threads, for any registered topology
// family. See the determinism contract above. An exception in any point
// propagates to the caller.
std::vector<SweepPoint> runLoadSweep(const ExperimentSpec& base,
                                     const std::vector<double>& loads,
                                     const SweepOptions& options);

// As runLoadSweep, but reuses an existing pool (nullptr = run serial).
std::vector<SweepPoint> runLoadSweep(const ExperimentSpec& base,
                                     const std::vector<double>& loads,
                                     const SweepOptions& options, ThreadPool* pool);

// Legacy HyperX-config entry points; equivalent to runLoadSweep(base.toSpec()).
std::vector<SweepPoint> runLoadSweep(const ExperimentConfig& base,
                                     const std::vector<double>& loads,
                                     const SweepOptions& options);
std::vector<SweepPoint> runLoadSweep(const ExperimentConfig& base,
                                     const std::vector<double>& loads,
                                     const SweepOptions& options, ThreadPool* pool);

// Accumulates per-point perf telemetry across a bench run and writes the
// BENCH_sweep.json trajectory file consumed by cross-PR perf tracking.
class SweepPerfLog {
 public:
  struct Entry {
    std::string series;     // e.g. "dimwar/ur"
    double load = 0.0;
    bool saturated = false;
    double wallSeconds = 0.0;
    std::uint64_t events = 0;
    double eventsPerSec = 0.0;
    // Intra-point shard count the point ran with (see --point-jobs).
    std::uint32_t pointJobs = 1;
    // Crash isolation (SweepPoint::status): "ok", or "failed" with the error
    // text in `message` — failed points stay in the perf log as attributed
    // rows rather than vanishing.
    std::string status = "ok";
    std::string message;
  };

  void add(const std::string& series, const SweepPoint& point);
  void addAll(const std::string& series, const std::vector<SweepPoint>& points);
  // Generic entry for work that is not a sweep point (stencil cells,
  // collective phases, ...).
  void add(Entry entry);

  std::size_t points() const { return entries_.size(); }
  double totalWallSeconds() const { return totalWall_; }
  std::uint64_t totalEvents() const { return totalEvents_; }

  // Writes the JSON file; silently does nothing when `path` is empty.
  // Returns false when the file cannot be opened.
  bool writeJson(const std::string& path, const std::string& bench,
                 const std::string& scale, unsigned jobs) const;

 private:
  std::vector<Entry> entries_;
  double totalWall_ = 0.0;
  std::uint64_t totalEvents_ = 0;
};

}  // namespace hxwar::harness
