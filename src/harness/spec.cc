#include "harness/spec.h"

#include <charconv>
#include <cstdlib>
#include <set>
#include <sstream>

#include "common/assert.h"
#include "harness/experiment.h"

namespace hxwar::harness {

std::string formatDouble(double v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

namespace {

std::uint32_t u32Flag(const Flags& flags, const std::string& key, std::uint32_t fallback) {
  return static_cast<std::uint32_t>(flags.u64(key, fallback));
}

// Flags parsed into the structured sub-configs (plus the operational keys of
// the bench/hxsim front ends); everything else is a construction parameter
// and flows into ExperimentSpec::params for the registry factories.
const std::set<std::string>& structuredKeys() {
  static const std::set<std::string> keys = {
      // spec-level
      "topology", "routing", "pattern", "pattern-seed",
      // network / router
      "channel-latency", "terminal-latency", "net-seed", "vcs", "input-buffer",
      "output-queue", "xbar-latency", "speedup", "bias", "vct", "arbiter",
      // injection
      "load", "seed", "min-flits", "max-flits",
      // steady state
      "warmup-window", "warmup-windows", "measure-window", "drain-window",
      "stable-windows", "stability-tol", "backlog-growth-tol", "accepted-tol",
      "min-measure-packets",
      // fault injection
      "fault-rate", "fault-seed", "fault-links", "fault-routers", "fault-at",
      "fault-until", "fault-drop", "fault-policy",
      // front-end operational keys, never part of an experiment's identity
      "loads", "csv", "jobs", "point-jobs", "perf-json", "experiment", "config",
      "scale", "algorithms", "list",
      // observability (operational; omitted from serialize())
      "trace-out", "trace-sample", "metrics-json", "sample-interval",
      "stall-window", "window-ticks", "timeline-out"};
  return keys;
}

}  // namespace

std::vector<std::uint32_t> flagU32List(const Flags& flags, const std::string& key,
                                       std::vector<std::uint32_t> fallback) {
  if (!flags.has(key)) return fallback;
  const std::string raw = flags.str(key, "");
  std::vector<std::uint32_t> out;
  std::size_t pos = 0;
  while (pos < raw.size()) {
    std::size_t comma = raw.find(',', pos);
    if (comma == std::string::npos) comma = raw.size();
    const std::string token = raw.substr(pos, comma - pos);
    pos = comma + 1;
    bool ok = !token.empty();
    for (const char c : token) ok = ok && c >= '0' && c <= '9';
    unsigned long long value = 0;
    if (ok) {
      value = std::strtoull(token.c_str(), nullptr, 10);
      ok = value <= 0xffffffffull;
    }
    HXWAR_CHECK_MSG(ok, ("flag " + key + "=" + raw + ": entry '" + token +
                         "' is not a non-negative integer")
                            .c_str());
    out.push_back(static_cast<std::uint32_t>(value));
  }
  return out.empty() ? fallback : out;
}

net::NetworkConfig networkConfigFromFlags(const Flags& flags, net::NetworkConfig d) {
  d.channelLatencyRouter = flags.u64("channel-latency", d.channelLatencyRouter);
  d.channelLatencyTerminal = flags.u64("terminal-latency", d.channelLatencyTerminal);
  d.rngSeed = flags.u64("net-seed", d.rngSeed);
  d.router.numVcs = u32Flag(flags, "vcs", d.router.numVcs);
  d.router.inputBufferDepth = u32Flag(flags, "input-buffer", d.router.inputBufferDepth);
  d.router.outputQueueDepth = u32Flag(flags, "output-queue", d.router.outputQueueDepth);
  d.router.crossbarLatency = u32Flag(flags, "xbar-latency", d.router.crossbarLatency);
  d.router.inputSpeedup = u32Flag(flags, "speedup", d.router.inputSpeedup);
  d.router.weightBias = flags.f64("bias", d.router.weightBias);
  d.router.virtualCutThrough = flags.b("vct", d.router.virtualCutThrough);
  const std::string arb = flags.str(
      "arbiter", d.router.arbiter == net::ArbiterPolicy::kAgeBased ? "age" : "rr");
  HXWAR_CHECK_MSG(arb == "age" || arb == "rr", "arbiter must be age or rr");
  d.router.arbiter =
      arb == "age" ? net::ArbiterPolicy::kAgeBased : net::ArbiterPolicy::kRoundRobin;
  return d;
}

metrics::SteadyStateConfig steadyConfigFromFlags(const Flags& flags,
                                                 metrics::SteadyStateConfig d) {
  d.warmupWindow = flags.u64("warmup-window", d.warmupWindow);
  d.maxWarmupWindows = u32Flag(flags, "warmup-windows", d.maxWarmupWindows);
  d.stableWindows = u32Flag(flags, "stable-windows", d.stableWindows);
  d.stabilityTol = flags.f64("stability-tol", d.stabilityTol);
  d.backlogGrowthTol = flags.f64("backlog-growth-tol", d.backlogGrowthTol);
  d.acceptedTol = flags.f64("accepted-tol", d.acceptedTol);
  d.measureWindow = flags.u64("measure-window", d.measureWindow);
  d.drainWindow = flags.u64("drain-window", d.drainWindow);
  d.minMeasurePackets = flags.u64("min-measure-packets", d.minMeasurePackets);
  return d;
}

traffic::SyntheticInjector::Params injectionFromFlags(
    const Flags& flags, traffic::SyntheticInjector::Params d) {
  d.rate = flags.f64("load", d.rate);
  d.minFlits = u32Flag(flags, "min-flits", d.minFlits);
  d.maxFlits = u32Flag(flags, "max-flits", d.maxFlits);
  d.seed = flags.u64("seed", d.seed);
  return d;
}

fault::FaultSpec faultSpecFromFlags(const Flags& flags, fault::FaultSpec d) {
  d.rate = flags.f64("fault-rate", d.rate);
  d.seed = flags.u64("fault-seed", d.seed);
  if (flags.has("fault-links")) d.links = flags.str("fault-links", d.links);
  if (flags.has("fault-routers")) d.routers = flags.str("fault-routers", d.routers);
  if (flags.has("fault-at")) d.at = flags.u64("fault-at", d.at);
  if (flags.has("fault-until")) d.until = flags.u64("fault-until", d.until);
  d.drop = flags.b("fault-drop", d.drop);
  if (flags.has("fault-policy")) {
    const std::string name = flags.str("fault-policy", "abort");
    HXWAR_CHECK_MSG(
        fault::parseFaultPolicy(name, &d.policy),
        ("fault-policy must be abort, drop, retry, or escape; got " + name).c_str());
  }
  return d;
}

obs::ObsOptions obsOptionsFromFlags(const Flags& flags, obs::ObsOptions d) {
  if (flags.has("trace-out")) d.traceOut = flags.str("trace-out", d.traceOut);
  if (flags.has("metrics-json")) d.metricsJson = flags.str("metrics-json", d.metricsJson);
  d.traceSample = flags.u64("trace-sample", d.traceSample);
  HXWAR_CHECK_MSG(d.traceSample > 0, "trace-sample must be >= 1");
  d.sampleInterval = flags.u64("sample-interval", d.sampleInterval);
  d.stallWindow = flags.u64("stall-window", d.stallWindow);
  if (flags.has("timeline-out")) d.timelineOut = flags.str("timeline-out", d.timelineOut);
  d.windowTicks = flags.u64("window-ticks", d.windowTicks);
  // A timeline destination implies recording; pick a sane default cadence.
  if (!d.timelineOut.empty() && d.windowTicks == 0) d.windowTicks = 1000;
  return d;
}

ExperimentSpec::ExperimentSpec() {
  // The builder/hxsim defaults (harness/builder.h): short channels, deep
  // buffers, a quick steady-state schedule.
  net.channelLatencyRouter = 8;
  net.channelLatencyTerminal = 1;
  net.rngSeed = 1;
  net.router.numVcs = 8;
  net.router.inputBufferDepth = 48;
  net.router.outputQueueDepth = 32;
  net.router.crossbarLatency = 4;
  net.router.inputSpeedup = 4;
  steady.maxWarmupWindows = 20;
  steady.measureWindow = 3000;
  steady.drainWindow = 8000;
  patternSeed = 7;
}

ExperimentSpec ExperimentSpec::fromFlags(const Flags& flags) {
  // --scale=tiny|small|paper seeds the spec from a named preset (topology,
  // buffering, latencies, steady-state windows); explicit flags then override
  // individual fields on top of it.
  ExperimentSpec spec;
  if (flags.has("scale")) spec = scaleSpec(flags.str("scale", "small"));
  spec.applyFlags(flags);
  return spec;
}

void ExperimentSpec::applyFlags(const Flags& flags) {
  if (flags.has("topology")) topology = flags.str("topology", topology);
  if (flags.has("routing")) routing = flags.str("routing", routing);
  if (flags.has("pattern")) pattern = flags.str("pattern", pattern);
  net = networkConfigFromFlags(flags, net);
  steady = steadyConfigFromFlags(flags, steady);
  injection = injectionFromFlags(flags, injection);
  fault = faultSpecFromFlags(flags, fault);
  obs = obsOptionsFromFlags(flags, obs);
  pointJobs = u32Flag(flags, "point-jobs", pointJobs);
  HXWAR_CHECK_MSG(pointJobs >= 1, "point-jobs must be >= 1");
  if (flags.has("pattern-seed")) {
    patternSeed = flags.u64("pattern-seed", patternSeed);
  } else if (flags.has("seed")) {
    patternSeed = flags.u64("seed", patternSeed);
  }
  for (const auto& [key, value] : flags.all()) {
    if (structuredKeys().count(key) == 0) params[key] = value;
  }
}

Flags ExperimentSpec::paramFlags() const {
  Flags flags;
  for (const auto& [key, value] : params) flags.set(key, value);
  return flags;
}

std::string ExperimentSpec::serialize() const {
  std::ostringstream out;
  out << "topology = " << topology << "\n";
  if (!routing.empty()) out << "routing = " << routing << "\n";
  out << "pattern = " << pattern << "\n";
  out << "pattern-seed = " << patternSeed << "\n";
  out << "channel-latency = " << net.channelLatencyRouter << "\n";
  out << "terminal-latency = " << net.channelLatencyTerminal << "\n";
  out << "net-seed = " << net.rngSeed << "\n";
  out << "vcs = " << net.router.numVcs << "\n";
  out << "input-buffer = " << net.router.inputBufferDepth << "\n";
  out << "output-queue = " << net.router.outputQueueDepth << "\n";
  out << "xbar-latency = " << net.router.crossbarLatency << "\n";
  out << "speedup = " << net.router.inputSpeedup << "\n";
  out << "bias = " << formatDouble(net.router.weightBias) << "\n";
  out << "vct = " << (net.router.virtualCutThrough ? "true" : "false") << "\n";
  out << "arbiter = "
      << (net.router.arbiter == net::ArbiterPolicy::kAgeBased ? "age" : "rr") << "\n";
  out << "load = " << formatDouble(injection.rate) << "\n";
  out << "min-flits = " << injection.minFlits << "\n";
  out << "max-flits = " << injection.maxFlits << "\n";
  out << "seed = " << injection.seed << "\n";
  out << "warmup-window = " << steady.warmupWindow << "\n";
  out << "warmup-windows = " << steady.maxWarmupWindows << "\n";
  out << "stable-windows = " << steady.stableWindows << "\n";
  out << "stability-tol = " << formatDouble(steady.stabilityTol) << "\n";
  out << "backlog-growth-tol = " << formatDouble(steady.backlogGrowthTol) << "\n";
  out << "accepted-tol = " << formatDouble(steady.acceptedTol) << "\n";
  out << "measure-window = " << steady.measureWindow << "\n";
  out << "drain-window = " << steady.drainWindow << "\n";
  out << "min-measure-packets = " << steady.minMeasurePackets << "\n";
  if (fault.active()) {
    // Fault keys appear only when faults are configured, keeping faultless
    // spec text byte-identical to pre-fault builds of this serializer.
    if (fault.rate > 0.0) out << "fault-rate = " << formatDouble(fault.rate) << "\n";
    out << "fault-seed = " << fault.seed << "\n";
    if (!fault.links.empty()) out << "fault-links = " << fault.links << "\n";
    if (!fault.routers.empty()) out << "fault-routers = " << fault.routers << "\n";
    if (fault.at != kTickInvalid) out << "fault-at = " << fault.at << "\n";
    if (fault.until != kTickInvalid) out << "fault-until = " << fault.until << "\n";
    if (fault.drop) out << "fault-drop = true\n";
    // The policy line appears only when set, so pre-ladder spec text (and
    // legacy --fault-drop specs) round-trips byte-identically.
    if (fault.policy != fault::FaultPolicy::kAbort) {
      out << "fault-policy = " << fault::faultPolicyName(fault.policy) << "\n";
    }
  }
  for (const auto& [key, value] : params) {
    if (structuredKeys().count(key) == 0) out << key << " = " << value << "\n";
  }
  return out.str();
}

ExperimentSpec scaleSpec(const std::string& name) { return scaleConfig(name).toSpec(); }

}  // namespace hxwar::harness
