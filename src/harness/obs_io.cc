#include "harness/obs_io.h"

#include <cinttypes>
#include <cstdio>

#include "common/log.h"
#include "obs/histogram.h"
#include "obs/trace.h"

namespace hxwar::harness {
namespace {

std::FILE* openOut(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) HXWAR_LOG_WARN("could not open output file %s", path.c_str());
  return f;
}

void writeU64Array(std::FILE* f, const char* key,
                   const std::vector<std::uint64_t>& values) {
  std::fprintf(f, "\"%s\":[", key);
  for (std::size_t i = 0; i < values.size(); ++i) {
    std::fprintf(f, "%s%" PRIu64, i == 0 ? "" : ",", values[i]);
  }
  std::fprintf(f, "]");
}

}  // namespace

bool writeTraceJson(const std::string& path, const ExperimentSpec& spec,
                    const std::vector<SweepPoint>& points) {
  if (path.empty()) return true;
  std::FILE* f = openOut(path);
  if (f == nullptr) return false;

  // JSON Object Format: a traceEvents array plus top-level metadata. One "M"
  // process_name event labels each sweep point's Perfetto process group.
  std::fprintf(f, "{\"traceEvents\":[");
  bool first = true;
  for (const SweepPoint& p : points) {
    const auto pid = static_cast<std::uint32_t>(p.index);
    char name[96];
    std::snprintf(name, sizeof(name), "point %zu load %.4f", p.index, p.load);
    std::fprintf(f, "%s%s", first ? "" : ",", obs::chromeProcessName(pid, name).c_str());
    first = false;
    if (p.trace.empty()) continue;
    std::string events;
    obs::appendChromeJson(p.trace, pid, events);
    std::fprintf(f, ",%s", events.c_str());
  }
  std::fprintf(f, "],\"displayTimeUnit\":\"ns\",\"otherData\":{");
  std::fprintf(f, "\"tool\":\"hxsim\",\"topology\":\"%s\",\"routing\":\"%s\","
                  "\"pattern\":\"%s\",\"trace_sample\":%" PRIu64 "}}\n",
               spec.topology.c_str(),
               spec.routing.empty() ? "default" : spec.routing.c_str(),
               spec.pattern.c_str(), spec.obs.traceSample);
  std::fclose(f);
  return true;
}

bool writeMetricsJson(const std::string& path, const ExperimentSpec& spec,
                      const std::vector<SweepPoint>& points) {
  if (path.empty()) return true;
  std::FILE* f = openOut(path);
  if (f == nullptr) return false;

  std::fprintf(f, "{\"tool\":\"hxsim\",\"topology\":\"%s\",\"routing\":\"%s\","
                  "\"pattern\":\"%s\",\"points\":[",
               spec.topology.c_str(),
               spec.routing.empty() ? "default" : spec.routing.c_str(),
               spec.pattern.c_str());
  for (std::size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    const metrics::SteadyStateResult& r = p.result;
    std::fprintf(f, "%s{\"index\":%zu,\"load\":%s,\"saturated\":%s,", i == 0 ? "" : ",",
                 p.index, formatDouble(p.load).c_str(), r.saturated ? "true" : "false");
    std::fprintf(f, "\"offered\":%s,\"accepted\":%s,\"packets\":%" PRIu64 ",",
                 formatDouble(r.offered).c_str(), formatDouble(r.accepted).c_str(),
                 r.packetsMeasured);
    std::fprintf(f,
                 "\"latency\":{\"mean\":%s,\"p50\":%s,\"p90\":%s,\"p99\":%s,"
                 "\"p999\":%s,\"min\":%s,\"max\":%s},",
                 formatDouble(r.latencyMean).c_str(), formatDouble(r.latencyP50).c_str(),
                 formatDouble(r.latencyP90).c_str(), formatDouble(r.latencyP99).c_str(),
                 formatDouble(r.latencyP999).c_str(), formatDouble(r.latencyMin).c_str(),
                 formatDouble(r.latencyMax).c_str());
    std::fprintf(f, "\"hops\":%s,\"deroutes\":%s,",
                 formatDouble(r.avgHops).c_str(), formatDouble(r.avgDeroutes).c_str());

    // Nonzero log2 buckets only: [lo, hi) edges are exact powers of two.
    std::fprintf(f, "\"latency_histogram\":[");
    bool firstBucket = true;
    for (std::uint32_t b = 0; b < obs::LogHistogram::kBuckets; ++b) {
      if (r.latencyHistogram.count(b) == 0) continue;
      std::fprintf(f, "%s{\"lo\":%.0f,\"hi\":%.0f,\"count\":%" PRIu64 "}",
                   firstBucket ? "" : ",", obs::LogHistogram::bucketLow(b),
                   obs::LogHistogram::bucketHigh(b), r.latencyHistogram.count(b));
      firstBucket = false;
    }
    std::fprintf(f, "],\"hop_latency\":[");
    bool firstHop = true;
    for (std::size_t h = 0; h < r.hopLatency.size(); ++h) {
      if (r.hopLatency[h].packets == 0) continue;
      std::fprintf(f, "%s{\"hops\":%zu,\"packets\":%" PRIu64 ",\"mean\":%s}",
                   firstHop ? "" : ",", h, r.hopLatency[h].packets,
                   formatDouble(r.hopLatency[h].meanLatency).c_str());
      firstHop = false;
    }
    std::fprintf(f, "],");

    std::fprintf(f,
                 "\"routing\":{\"decisions\":%" PRIu64 ",\"deroutes_taken\":%" PRIu64
                 ",\"deroutes_refused\":%" PRIu64 ",\"fault_escapes\":%" PRIu64
                 ",\"path_deroutes\":%" PRIu64 ",\"credit_stalls\":%" PRIu64 ",",
                 r.routing.decisions, r.routing.derouteGrants, r.routing.derouteRefusals,
                 r.routing.faultEscapes, r.routing.pathDeroutes, r.routing.creditStalls);
    writeU64Array(f, "deroutes_taken_by_dim", r.routing.derouteTakenByDim);
    std::fprintf(f, ",");
    writeU64Array(f, "deroutes_refused_by_dim", r.routing.derouteRefusedByDim);
    std::fprintf(f, ",");
    writeU64Array(f, "grants_by_vc", r.routing.grantsByVc);
    std::fprintf(f, "},\"samples\":[");
    for (std::size_t s = 0; s < p.samples.size(); ++s) {
      const obs::SampleRow& row = p.samples[s];
      std::fprintf(f,
                   "%s{\"tick\":%" PRIu64 ",\"injected\":%" PRIu64
                   ",\"ejected\":%" PRIu64 ",\"movements\":%" PRIu64
                   ",\"backlog\":%" PRIu64 ",\"queued\":%" PRIu64
                   ",\"credit_stalls\":%" PRIu64 ",\"outstanding\":%" PRIu64 "}",
                   s == 0 ? "" : ",", static_cast<std::uint64_t>(row.tick),
                   row.flitsInjected, row.flitsEjected, row.flitMovements,
                   row.backlogFlits, row.queuedFlits, row.creditStalls,
                   row.packetsOutstanding);
    }
    std::fprintf(f, "]}");
  }
  std::fprintf(f, "]}\n");
  std::fclose(f);
  return true;
}

}  // namespace hxwar::harness
