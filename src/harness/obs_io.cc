#include "harness/obs_io.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "common/log.h"
#include "obs/histogram.h"
#include "obs/trace.h"

namespace hxwar::harness {
namespace {

std::FILE* openOut(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) HXWAR_LOG_WARN("could not open output file %s", path.c_str());
  return f;
}

void writeU64Array(std::FILE* f, const char* key,
                   const std::vector<std::uint64_t>& values) {
  std::fprintf(f, "\"%s\":[", key);
  for (std::size_t i = 0; i < values.size(); ++i) {
    std::fprintf(f, "%s%" PRIu64, i == 0 ? "" : ",", values[i]);
  }
  std::fprintf(f, "]");
}

// Aggregate heat over a point's windows: sums each window's top-K hot-link
// entries by (router, port) and returns the overall top-K. Approximate below
// the per-window K cutoff, exact for the links that matter (the hot ones).
std::vector<obs::LinkWindowStat> aggregateHotLinks(
    const std::vector<obs::WindowRecord>& windows) {
  std::vector<obs::LinkWindowStat> agg;
  for (const obs::WindowRecord& w : windows) {
    for (const obs::LinkWindowStat& l : w.hotLinks) {
      auto it = std::find_if(agg.begin(), agg.end(), [&](const obs::LinkWindowStat& a) {
        return a.router == l.router && a.port == l.port;
      });
      if (it == agg.end()) {
        agg.push_back(l);
      } else {
        it->flits += l.flits;
        it->stallTicks += l.stallTicks;
        it->queuedFlits = l.queuedFlits;  // latest window's snapshot
      }
    }
  }
  std::sort(agg.begin(), agg.end(),
            [](const obs::LinkWindowStat& a, const obs::LinkWindowStat& b) {
              if (a.flits != b.flits) return a.flits > b.flits;
              if (a.stallTicks != b.stallTicks) return a.stallTicks > b.stallTicks;
              if (a.router != b.router) return a.router < b.router;
              return a.port < b.port;
            });
  if (agg.size() > obs::FlightRecorder::kHotLinks) {
    agg.resize(obs::FlightRecorder::kHotLinks);
  }
  return agg;
}

void writeHotLinks(std::FILE* f, const std::vector<obs::LinkWindowStat>& links) {
  std::fprintf(f, "\"hottest_links\":[");
  for (std::size_t i = 0; i < links.size(); ++i) {
    const obs::LinkWindowStat& l = links[i];
    std::fprintf(f,
                 "%s{\"router\":%u,\"port\":%u,\"peer_router\":%u,\"peer_port\":%u,"
                 "\"flits\":%" PRIu64 ",\"stall_ticks\":%" PRIu64 "}",
                 i == 0 ? "" : ",", l.router, l.port, l.peerRouter, l.peerPort, l.flits,
                 l.stallTicks);
  }
  std::fprintf(f, "]");
}

}  // namespace

bool writeTraceJson(const std::string& path, const ExperimentSpec& spec,
                    const std::vector<SweepPoint>& points) {
  if (path.empty()) return true;
  std::FILE* f = openOut(path);
  if (f == nullptr) return false;

  // JSON Object Format: a traceEvents array plus top-level metadata. One "M"
  // process_name event labels each sweep point's Perfetto process group.
  std::fprintf(f, "{\"traceEvents\":[");
  bool first = true;
  for (const SweepPoint& p : points) {
    const auto pid = static_cast<std::uint32_t>(p.index);
    char name[96];
    std::snprintf(name, sizeof(name), "point %zu load %.4f", p.index, p.load);
    std::fprintf(f, "%s%s", first ? "" : ",", obs::chromeProcessName(pid, name).c_str());
    first = false;
    if (p.trace.empty()) continue;
    std::string events;
    obs::appendChromeJson(p.trace, pid, events);
    std::fprintf(f, ",%s", events.c_str());
  }
  std::fprintf(f, "],\"displayTimeUnit\":\"ns\",\"otherData\":{");
  std::fprintf(f, "\"tool\":\"hxsim\",\"topology\":\"%s\",\"routing\":\"%s\","
                  "\"pattern\":\"%s\",\"trace_sample\":%" PRIu64 "}}\n",
               spec.topology.c_str(),
               spec.routing.empty() ? "default" : spec.routing.c_str(),
               spec.pattern.c_str(), spec.obs.traceSample);
  std::fclose(f);
  return true;
}

bool writeMetricsJson(const std::string& path, const ExperimentSpec& spec,
                      const std::vector<SweepPoint>& points) {
  if (path.empty()) return true;
  std::FILE* f = openOut(path);
  if (f == nullptr) return false;

  std::fprintf(f, "{\"tool\":\"hxsim\",\"topology\":\"%s\",\"routing\":\"%s\","
                  "\"pattern\":\"%s\",\"points\":[",
               spec.topology.c_str(),
               spec.routing.empty() ? "default" : spec.routing.c_str(),
               spec.pattern.c_str());
  for (std::size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    const metrics::SteadyStateResult& r = p.result;
    std::fprintf(f, "%s{\"index\":%zu,\"load\":%s,\"saturated\":%s,", i == 0 ? "" : ",",
                 p.index, formatDouble(p.load).c_str(), r.saturated ? "true" : "false");
    std::fprintf(f, "\"offered\":%s,\"accepted\":%s,\"packets\":%" PRIu64 ",",
                 formatDouble(r.offered).c_str(), formatDouble(r.accepted).c_str(),
                 r.packetsMeasured);
    std::fprintf(f,
                 "\"latency\":{\"mean\":%s,\"p50\":%s,\"p90\":%s,\"p99\":%s,"
                 "\"p999\":%s,\"min\":%s,\"max\":%s},",
                 formatDouble(r.latencyMean).c_str(), formatDouble(r.latencyP50).c_str(),
                 formatDouble(r.latencyP90).c_str(), formatDouble(r.latencyP99).c_str(),
                 formatDouble(r.latencyP999).c_str(), formatDouble(r.latencyMin).c_str(),
                 formatDouble(r.latencyMax).c_str());
    std::fprintf(f, "\"hops\":%s,\"deroutes\":%s,",
                 formatDouble(r.avgHops).c_str(), formatDouble(r.avgDeroutes).c_str());

    // Nonzero log2 buckets only: [lo, hi) edges are exact powers of two.
    std::fprintf(f, "\"latency_histogram\":[");
    bool firstBucket = true;
    for (std::uint32_t b = 0; b < obs::LogHistogram::kBuckets; ++b) {
      if (r.latencyHistogram.count(b) == 0) continue;
      std::fprintf(f, "%s{\"lo\":%.0f,\"hi\":%.0f,\"count\":%" PRIu64 "}",
                   firstBucket ? "" : ",", obs::LogHistogram::bucketLow(b),
                   obs::LogHistogram::bucketHigh(b), r.latencyHistogram.count(b));
      firstBucket = false;
    }
    std::fprintf(f, "],\"hop_latency\":[");
    bool firstHop = true;
    for (std::size_t h = 0; h < r.hopLatency.size(); ++h) {
      if (r.hopLatency[h].packets == 0) continue;
      std::fprintf(f, "%s{\"hops\":%zu,\"packets\":%" PRIu64 ",\"mean\":%s}",
                   firstHop ? "" : ",", h, r.hopLatency[h].packets,
                   formatDouble(r.hopLatency[h].meanLatency).c_str());
      firstHop = false;
    }
    std::fprintf(f, "],");

    std::fprintf(f,
                 "\"routing\":{\"decisions\":%" PRIu64 ",\"deroutes_taken\":%" PRIu64
                 ",\"deroutes_refused\":%" PRIu64 ",\"fault_escapes\":%" PRIu64
                 ",\"path_deroutes\":%" PRIu64 ",\"credit_stalls\":%" PRIu64 ",",
                 r.routing.decisions, r.routing.derouteGrants, r.routing.derouteRefusals,
                 r.routing.faultEscapes, r.routing.pathDeroutes, r.routing.creditStalls);
    writeU64Array(f, "deroutes_taken_by_dim", r.routing.derouteTakenByDim);
    std::fprintf(f, ",");
    writeU64Array(f, "deroutes_refused_by_dim", r.routing.derouteRefusedByDim);
    std::fprintf(f, ",");
    writeU64Array(f, "grants_by_vc", r.routing.grantsByVc);
    std::fprintf(f, "},");

    if (!p.windows.empty()) {
      // Flight-recorder hotspot summary. Everything here is point-jobs-
      // invariant: window deltas, aggregated hot links, per-dim deroute
      // rates over the whole recorded span.
      std::uint64_t totalDecisions = 0;
      std::uint64_t peakInjected = 0, peakStalls = 0, peakDeroutes = 0;
      std::vector<std::uint64_t> deroutesByDim;
      for (const obs::WindowRecord& w : p.windows) {
        totalDecisions += w.routeDecisions;
        peakInjected = std::max(peakInjected, w.flitsInjected);
        peakStalls = std::max(peakStalls, w.creditStalls);
        peakDeroutes = std::max(peakDeroutes, w.deroutesTaken);
        if (deroutesByDim.size() < w.deroutesTakenByDim.size()) {
          deroutesByDim.resize(w.deroutesTakenByDim.size(), 0);
        }
        for (std::size_t d = 0; d < w.deroutesTakenByDim.size(); ++d) {
          deroutesByDim[d] += w.deroutesTakenByDim[d];
        }
      }
      std::fprintf(f,
                   "\"timeline\":{\"window_ticks\":%" PRIu64 ",\"windows\":%zu,"
                   "\"peak_window_injected\":%" PRIu64
                   ",\"peak_window_credit_stalls\":%" PRIu64
                   ",\"peak_window_deroutes\":%" PRIu64 ",",
                   static_cast<std::uint64_t>(spec.obs.windowTicks), p.windows.size(),
                   peakInjected, peakStalls, peakDeroutes);
      std::fprintf(f, "\"deroute_rate_by_dim\":[");
      for (std::size_t d = 0; d < deroutesByDim.size(); ++d) {
        const double rate = totalDecisions > 0 ? static_cast<double>(deroutesByDim[d]) /
                                                     static_cast<double>(totalDecisions)
                                               : 0.0;
        std::fprintf(f, "%s%s", d == 0 ? "" : ",", formatDouble(rate).c_str());
      }
      std::fprintf(f, "],");
      writeHotLinks(f, aggregateHotLinks(p.windows));
      std::fprintf(f, "},");
    }

    if (p.pointJobs > 1 && !p.shardWindows.empty()) {
      // Shard load balance. Deterministic for a fixed --point-jobs and
      // byte-identical across --jobs, but its *shape* follows the shard
      // count, so it is emitted only for sharded points and never reaches
      // --timeline-out (which must be point-jobs-invariant). Wall-clock
      // barrier waits stay out of this file entirely.
      double maxRatio = 0.0, sumRatio = 0.0;
      for (const obs::ShardWindowRecord& sr : p.shardWindows) {
        maxRatio = std::max(maxRatio, sr.loadRatio);
        sumRatio += sr.loadRatio;
      }
      std::fprintf(f,
                   "\"shard_balance\":{\"shards\":%u,\"max_load_ratio\":%s,"
                   "\"mean_load_ratio\":%s,\"windows\":[",
                   p.pointJobs, formatDouble(maxRatio).c_str(),
                   formatDouble(sumRatio / static_cast<double>(p.shardWindows.size()))
                       .c_str());
      for (std::size_t s = 0; s < p.shardWindows.size(); ++s) {
        const obs::ShardWindowRecord& sr = p.shardWindows[s];
        std::uint64_t posts = 0;
        for (const std::uint64_t v : sr.mailboxPosts) posts += v;
        std::fprintf(f, "%s{\"window\":%" PRIu64 ",", s == 0 ? "" : ",", sr.index);
        writeU64Array(f, "events", sr.shardEvents);
        std::fprintf(f, ",\"posts\":%" PRIu64 ",\"ratio\":%s}", posts,
                     formatDouble(sr.loadRatio).c_str());
      }
      std::fprintf(f, "]},");
    }

    std::fprintf(f, "\"samples\":[");
    for (std::size_t s = 0; s < p.samples.size(); ++s) {
      const obs::SampleRow& row = p.samples[s];
      std::fprintf(f,
                   "%s{\"tick\":%" PRIu64 ",\"injected\":%" PRIu64
                   ",\"ejected\":%" PRIu64 ",\"movements\":%" PRIu64
                   ",\"backlog\":%" PRIu64 ",\"queued\":%" PRIu64
                   ",\"credit_stalls\":%" PRIu64 ",\"outstanding\":%" PRIu64 "}",
                   s == 0 ? "" : ",", static_cast<std::uint64_t>(row.tick),
                   row.flitsInjected, row.flitsEjected, row.flitMovements,
                   row.backlogFlits, row.queuedFlits, row.creditStalls,
                   row.packetsOutstanding);
    }
    std::fprintf(f, "]}");
  }
  std::fprintf(f, "]}\n");
  std::fclose(f);
  return true;
}

bool writeTimelineJsonl(const std::string& path, const ExperimentSpec& spec,
                        const std::vector<SweepPoint>& points) {
  if (path.empty()) return true;
  std::FILE* f = openOut(path);
  if (f == nullptr) return false;

  // Header line, then per point a meta line and one line per window. Window
  // lines are integer-only (see obs/window.cc), and points emit in grid
  // order, so the stream is byte-identical across --jobs and --point-jobs.
  std::fprintf(f,
               "{\"tool\":\"hxsim\",\"version\":1,\"topology\":\"%s\","
               "\"routing\":\"%s\",\"pattern\":\"%s\",\"window_ticks\":%" PRIu64 "}\n",
               spec.topology.c_str(),
               spec.routing.empty() ? "default" : spec.routing.c_str(),
               spec.pattern.c_str(), static_cast<std::uint64_t>(spec.obs.windowTicks));
  std::string line;
  for (const SweepPoint& p : points) {
    std::fprintf(f,
                 "{\"point\":%zu,\"load\":%s,\"status\":\"%s\",\"windows\":%zu}\n",
                 p.index, formatDouble(p.load).c_str(), p.status.c_str(),
                 p.windows.size());
    for (const obs::WindowRecord& w : p.windows) {
      line.clear();
      obs::appendWindowJsonl(p.index, w, line);
      std::fputs(line.c_str(), f);
    }
  }
  std::fclose(f);
  return true;
}

}  // namespace hxwar::harness
