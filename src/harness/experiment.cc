#include "harness/experiment.h"

#include "common/assert.h"

namespace hxwar::harness {

ExperimentConfig smallScaleConfig() {
  ExperimentConfig c;
  c.widths = {4, 4, 4};
  c.terminalsPerRouter = 4;
  c.net.channelLatencyRouter = 8;
  c.net.channelLatencyTerminal = 1;
  c.net.router.numVcs = 8;
  c.net.router.inputBufferDepth = 48;  // > credit round trip (2*8 + pipeline) + max packet
  c.net.router.outputQueueDepth = 32;
  c.net.router.crossbarLatency = 4;
  c.net.router.inputSpeedup = 4;
  c.steady.warmupWindow = 1000;
  c.steady.maxWarmupWindows = 18;
  c.steady.measureWindow = 3000;
  c.steady.drainWindow = 8000;
  return c;
}

ExperimentConfig tinyScaleConfig() {
  ExperimentConfig c;
  c.widths = {3, 3};
  c.terminalsPerRouter = 2;
  c.net.channelLatencyRouter = 4;
  c.net.channelLatencyTerminal = 1;
  c.net.router.numVcs = 8;
  c.net.router.inputBufferDepth = 12;
  c.net.router.outputQueueDepth = 4;
  c.net.router.crossbarLatency = 2;
  c.steady.warmupWindow = 500;
  c.steady.maxWarmupWindows = 30;
  c.steady.measureWindow = 2000;
  c.steady.drainWindow = 10000;
  return c;
}

ExperimentConfig paperScaleConfig() {
  // The paper's 4,096-node 3D HyperX: 8x8x8, 8 terminals per router, 8 VCs,
  // 50 ns (= 50 cycle) router-to-router channels and crossbar, 5 ns terminal
  // channels, buffering beyond the credit round trip.
  ExperimentConfig c;
  c.widths = {8, 8, 8};
  c.terminalsPerRouter = 8;
  c.net.channelLatencyRouter = 50;
  c.net.channelLatencyTerminal = 5;
  c.net.router.numVcs = 8;
  c.net.router.inputBufferDepth = 160;  // credit RTT ~ 2*50 + pipeline, plus a packet
  c.net.router.outputQueueDepth = 32;
  c.net.router.crossbarLatency = 50;
  c.net.router.inputSpeedup = 4;
  c.steady.warmupWindow = 5000;
  c.steady.maxWarmupWindows = 60;
  c.steady.measureWindow = 20000;
  c.steady.drainWindow = 100000;
  return c;
}

ExperimentConfig scaleConfig(const std::string& name) {
  if (name == "tiny") return tinyScaleConfig();
  if (name == "small") return smallScaleConfig();
  if (name == "paper") return paperScaleConfig();
  HXWAR_CHECK_MSG(false, ("unknown scale preset: " + name).c_str());
  return smallScaleConfig();
}

Experiment::Experiment(const ExperimentConfig& config)
    : config_(config),
      topo_(topo::HyperX::Params{config.widths, config.terminalsPerRouter}) {
  routing_ = routing::makeHyperXRouting(config.algorithm, topo_, config.routingOpts);
  network_ = std::make_unique<net::Network>(sim_, topo_, *routing_, config.net);
  pattern_ = traffic::makePattern(config.pattern, topo_);
  injector_ = std::make_unique<traffic::SyntheticInjector>(sim_, *network_, *pattern_,
                                                           config.injection);
}

metrics::SteadyStateResult Experiment::run() {
  return metrics::runSteadyState(sim_, *network_, *injector_, config_.steady);
}

std::vector<SweepPoint> loadLatencySweep(const ExperimentConfig& base,
                                         const std::vector<double>& loads,
                                         bool stopAtSaturation) {
  std::vector<SweepPoint> points;
  std::uint32_t saturatedStreak = 0;
  for (const double load : loads) {
    ExperimentConfig cfg = base;
    cfg.injection.rate = load;
    Experiment exp(cfg);
    points.push_back(SweepPoint{load, exp.run()});
    saturatedStreak = points.back().result.saturated ? saturatedStreak + 1 : 0;
    if (stopAtSaturation && saturatedStreak >= 2) break;
  }
  return points;
}

double saturationThroughput(const ExperimentConfig& base, double offered) {
  ExperimentConfig cfg = base;
  cfg.injection.rate = offered;
  // Saturated runs skip the drain phase; the accepted rate over the
  // measurement window is the steady-state throughput.
  Experiment exp(cfg);
  return exp.run().accepted;
}

std::vector<double> loadGrid(double step, double max) {
  std::vector<double> loads;
  for (double l = step; l <= max + 1e-9; l += step) loads.push_back(l);
  return loads;
}

}  // namespace hxwar::harness
