#include "harness/experiment.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "common/assert.h"
#include "common/error.h"
#include "common/rng.h"
#include "harness/registry.h"

namespace hxwar::harness {

ExperimentSpec ExperimentConfig::toSpec() const {
  ExperimentSpec spec;
  spec.topology = "hyperx";
  spec.routing = algorithm;
  spec.pattern = pattern;
  spec.net = net;
  spec.injection = injection;
  spec.steady = steady;
  std::string w;
  for (std::size_t i = 0; i < widths.size(); ++i) {
    if (i > 0) w += ',';
    w += std::to_string(widths[i]);
  }
  spec.params["widths"] = w;
  spec.params["terminals"] = std::to_string(terminalsPerRouter);
  spec.params["ugal-bias"] = formatDouble(routingOpts.ugalBias);
  if (routingOpts.omniDeroutes != routing::HyperXRoutingOptions::kOmniDeroutesDefault) {
    spec.params["omni-deroutes"] = std::to_string(routingOpts.omniDeroutes);
  }
  if (!routingOpts.omniRestrictBackToBack) spec.params["omni-restrict-b2b"] = "false";
  return spec;
}

ExperimentConfig smallScaleConfig() {
  ExperimentConfig c;
  c.widths = {4, 4, 4};
  c.terminalsPerRouter = 4;
  c.net.channelLatencyRouter = 8;
  c.net.channelLatencyTerminal = 1;
  c.net.router.numVcs = 8;
  c.net.router.inputBufferDepth = 48;  // > credit round trip (2*8 + pipeline) + max packet
  c.net.router.outputQueueDepth = 32;
  c.net.router.crossbarLatency = 4;
  c.net.router.inputSpeedup = 4;
  c.steady.warmupWindow = 1000;
  c.steady.maxWarmupWindows = 18;
  c.steady.measureWindow = 3000;
  c.steady.drainWindow = 8000;
  return c;
}

ExperimentConfig tinyScaleConfig() {
  ExperimentConfig c;
  c.widths = {3, 3};
  c.terminalsPerRouter = 2;
  c.net.channelLatencyRouter = 4;
  c.net.channelLatencyTerminal = 1;
  c.net.router.numVcs = 8;
  c.net.router.inputBufferDepth = 12;
  c.net.router.outputQueueDepth = 4;
  c.net.router.crossbarLatency = 2;
  c.steady.warmupWindow = 500;
  c.steady.maxWarmupWindows = 30;
  c.steady.measureWindow = 2000;
  c.steady.drainWindow = 10000;
  return c;
}

ExperimentConfig paperScaleConfig() {
  // The paper's 4,096-node 3D HyperX: 8x8x8, 8 terminals per router, 8 VCs,
  // 50 ns (= 50 cycle) router-to-router channels and crossbar, 5 ns terminal
  // channels, buffering beyond the credit round trip.
  ExperimentConfig c;
  c.widths = {8, 8, 8};
  c.terminalsPerRouter = 8;
  c.net.channelLatencyRouter = 50;
  c.net.channelLatencyTerminal = 5;
  c.net.router.numVcs = 8;
  c.net.router.inputBufferDepth = 160;  // credit RTT ~ 2*50 + pipeline, plus a packet
  c.net.router.outputQueueDepth = 32;
  c.net.router.crossbarLatency = 50;
  c.net.router.inputSpeedup = 4;
  c.steady.warmupWindow = 5000;
  c.steady.maxWarmupWindows = 60;
  c.steady.measureWindow = 20000;
  c.steady.drainWindow = 100000;
  return c;
}

ExperimentConfig scaleConfig(const std::string& name) {
  if (name == "tiny") return tinyScaleConfig();
  if (name == "small") return smallScaleConfig();
  if (name == "paper") return paperScaleConfig();
  HXWAR_CHECK_MSG(false, ("unknown scale preset: " + name).c_str());
  return smallScaleConfig();
}

Experiment::Experiment(const ExperimentSpec& spec) : spec_(spec) {
  auto& registry = ExperimentRegistry::instance();
  const Flags params = spec_.paramFlags();
  const TopologyFamily& family = registry.topology(spec_.topology);
  topo_ = family.build(params);

  net::NetworkConfig netCfg = spec_.net;
  if (spec_.fault.active()) {
    faultSet_ = fault::buildFaultSet(*topo_, spec_.fault);
    std::uint32_t maxPorts = 0;
    for (RouterId r = 0; r < topo_->numRouters(); ++r) {
      maxPorts = std::max(maxPorts, topo_->numPorts(r));
    }
    mask_.resize(topo_->numRouters(), maxPorts);
    const bool allowPartition = spec_.fault.toleratesPartition();
    if (spec_.fault.transient()) {
      // Transient window: the network wires the full topology and the
      // controller flips the shared mask at the scheduled cycles. Under the
      // abort policy, validate upfront that the degraded phase would stay
      // connected — a partition is a configuration error whether it lasts one
      // cycle or the whole run. The softer policies accept it and report the
      // census as metrics instead (DESIGN.md §13).
      fault::DeadPortMask preview(topo_->numRouters(), maxPorts);
      preview.apply(faultSet_.ports);
      connectivity_ = fault::checkConnectivity(*topo_, preview);
      if (!allowPartition) {
        HXWAR_CHECK_MSG(connectivity_.connected, connectivity_.message.c_str());
      }
    } else {
      // Static faults: failures are structural. Under the abort policy the
      // DegradedTopology rejects partitioned fault sets in its constructor;
      // partition-tolerant policies build the (possibly disconnected)
      // degraded graph and the Network simply never wires the dead channels.
      mask_.apply(faultSet_.ports);
      degraded_ = std::make_unique<fault::DegradedTopology>(*topo_, mask_, allowPartition);
      connectivity_ = degraded_->connectivity();
    }
    netCfg.router.faultPolicy = spec_.fault.effectivePolicy();
  }

  // Shard plan: contiguous router ID ranges (HyperX numbering makes these
  // dimension-0 slices). pointJobs clamps to the router count; one shard is
  // the exact legacy serial construction.
  pointJobs_ = std::max<std::uint32_t>(1, std::min<std::uint32_t>(
                                              spec_.pointJobs, topo_->numRouters()));

  // Routing algorithms build against the *base* topology: coordinate math is
  // unaffected by missing links, and faults reach them via the dead-port mask.
  // One instance per shard: adaptive algorithms keep mutable scratch (masked
  // route caches) that two workers must not share.
  const std::string algo = spec_.routing.empty() ? family.defaultRouting : spec_.routing;
  net::ShardLayout layout;
  if (pointJobs_ == 1) {
    layout.sims.push_back(&sim_);
  } else {
    plan_ = sim::par::contiguousShards(topo_->numRouters(), pointJobs_);
    pointJobs_ = plan_.numShards;
    mail_ = std::make_unique<sim::par::Mailboxes>(pointJobs_);
    layout.plan = &plan_;
    layout.mail = mail_.get();
    for (std::uint32_t s = 0; s < pointJobs_; ++s) {
      shardSims_.push_back(std::make_unique<sim::Simulator>());
      layout.sims.push_back(shardSims_.back().get());
    }
  }
  for (std::uint32_t s = 0; s < pointJobs_; ++s) {
    routing_.push_back(registry.routing(family.name, algo).build(*topo_, params));
    layout.routing.push_back(routing_.back().get());
  }
  network_ = std::make_unique<net::Network>(layout, effectiveTopology(), netCfg);
  if (spec_.fault.active()) {
    network_->setDeadPortMask(&mask_);
    if (spec_.fault.transient()) {
      // The controller lives in sim_ — the control simulator when sharded.
      // The parallel engine runs control events below kEpsControl only after
      // every shard has finished all strictly-earlier ticks, so the mask flip
      // precedes all same-tick routing reads exactly as in the serial order.
      faultCtrl_ = std::make_unique<fault::FaultController>(sim_, mask_, faultSet_,
                                                            spec_.fault.at, spec_.fault.until);
    }
  }

  // One injector per lane, each driving its shard's terminals from its
  // shard's simulator. Injection decisions are a pure per-node function of
  // (seed, node) — see traffic/injector.h — so the union of the per-shard
  // injections equals the serial injector's stream exactly. Patterns are
  // per-lane instances of the same (pattern, seed) pair: identical tables,
  // no cross-thread sharing.
  for (std::uint32_t l = 0; l < network_->numLanes(); ++l) {
    patterns_.push_back(registry.pattern(spec_.pattern).build(*topo_, spec_.patternSeed));
    traffic::SyntheticInjector::Params inj = spec_.injection;
    if (network_->numLanes() > 1) {
      for (NodeId n = 0; n < network_->numNodes(); ++n) {
        if (network_->laneOfNode(n) == l) inj.nodes.push_back(n);
      }
    }
    injectors_.push_back(std::make_unique<traffic::SyntheticInjector>(
        *layout.sims[l], *network_, *patterns_[l], inj));
  }

  if constexpr (obs::kCompiledIn) {
    if (spec_.obs.enabled()) {
      // One observer per lane (hot-path hooks must never cross threads).
      // Lane 0 is the primary: it owns the gauge registry the sampler polls
      // (gauges read lane-summed network totals, so the rows are shard-count
      // invariant) and collects the sampler rows; traces and routing counters
      // are merged across all lanes after the run.
      std::vector<obs::NetObserver*> raw;
      for (std::uint32_t l = 0; l < network_->numLanes(); ++l) {
        observers_.push_back(std::make_unique<obs::NetObserver>(
            effectiveTopology(), spec_.net.router.numVcs, spec_.obs));
        raw.push_back(observers_.back().get());
      }
      network_->setObservers(raw);
      // Pull gauges over the network's aggregate counters (polled at sampler
      // cadence / diagnostic dumps only, so the per-call cost is irrelevant).
      net::Network* net = network_.get();
      obs::Registry& reg = observers_[0]->registry();
      reg.gauge(obs::gauges::kFlitsInjected,
                [net] { return static_cast<double>(net->flitsInjected()); });
      reg.gauge(obs::gauges::kFlitsEjected,
                [net] { return static_cast<double>(net->flitsEjected()); });
      reg.gauge(obs::gauges::kFlitMovements,
                [net] { return static_cast<double>(net->flitMovements()); });
      reg.gauge(obs::gauges::kBacklogFlits,
                [net] { return static_cast<double>(net->totalSourceBacklogFlits()); });
      reg.gauge(obs::gauges::kQueuedFlits, [net] {
        std::uint64_t queued = 0;
        for (RouterId r = 0; r < net->numRouters(); ++r) {
          queued += net->router(r).bufferedFlits();
        }
        return static_cast<double>(queued);
      });
      reg.gauge(obs::gauges::kPacketsOutstanding,
                [net] { return static_cast<double>(net->packetsOutstanding()); });
      if (spec_.obs.sampling()) {
        sampler_ = std::make_unique<obs::Sampler>(sim_, *observers_[0],
                                                  spec_.obs.sampleInterval,
                                                  spec_.obs.stallWindow);
      }
      if (spec_.obs.windowed()) {
        // Flight recorder: a second kEpsControl component in the control sim
        // (constructed after the sampler, so on shared ticks the sampler's
        // row precedes the window close — deterministically, like everything
        // scheduled here). Providers read lane-summed network state, which at
        // a kEpsControl boundary equals the serial engine's values.
        recorder_ = std::make_unique<obs::FlightRecorder>(sim_, spec_.obs.windowTicks);
        for (auto& o : observers_) recorder_->addObserver(o.get());
        recorder_->setFlowProvider([net] {
          obs::FlowSample s;
          s.flitsInjected = net->flitsInjected();
          s.flitsEjected = net->flitsEjected();
          s.packetsCreated = net->packetsCreated();
          s.packetsEjected = net->packetsEjected();
          s.packetsDropped = net->packetsDropped();
          s.backlogFlits = net->totalSourceBacklogFlits();
          std::uint64_t queued = 0;
          for (RouterId r = 0; r < net->numRouters(); ++r) {
            queued += net->router(r).bufferedFlits();
          }
          s.queuedFlits = queued;
          s.packetsOutstanding = net->packetsOutstanding();
          return s;
        });
        recorder_->setLinkWalker(
            [net](const std::function<void(const obs::LinkStatsRow&)>& cb) {
              net->forEachLinkStats(cb);
            },
            network_->numRouters(), network_->maxPorts());
        recorder_->setVcOccupancyProvider([net] { return net->vcOccupancySums(); });
        if (faultCtrl_ != nullptr) {
          recorder_->setFaultWindow(faultCtrl_->killAt(), faultCtrl_->reviveAt());
        }
        if (sampler_ != nullptr) {
          // A watchdog trip streams the whole timeline before the diagnostic
          // dump: the deadlock walk and the windows leading up to it land in
          // one artifact.
          sampler_->setStallDump(
              [rec = recorder_.get()](std::FILE* f) { rec->dumpTimeline(f); });
        }
      }
    }
  }

  if (pointJobs_ == 1) {
    serial_ = std::make_unique<sim::SerialBackend>(sim_);
    backend_ = serial_.get();
  } else {
    // Lookahead: the minimum cross-shard channel latency. A plan with no
    // cross-shard channels imposes no bound; fall back to the network-wide
    // minimum so windows stay finite.
    Tick lookahead = network_->crossShardLookahead();
    std::string detail = network_->lookaheadDetail();
    if (lookahead == kTickInvalid) {
      lookahead = network_->minChannelLatency() != kTickInvalid
                      ? network_->minChannelLatency()
                      : 1;
      detail = "no cross-shard channels";
    }
    engine_ = std::make_unique<sim::par::Engine>(layout.sims, &sim_, mail_.get(),
                                                 lookahead, detail);
    engine_->setBarrierHook([net = network_.get()] { net->drainDeferredFrees(); });
    backend_ = engine_.get();
    sim::par::Engine* eng = engine_.get();
    if (recorder_ != nullptr) {
      recorder_->setBusyProbe([eng] { return eng->busy(); });
      // Load-balance telemetry: cumulative per-shard events, mailbox posts
      // drained, and wall-clock barrier waits. The recorder is a control
      // event — all workers are parked when this runs.
      recorder_->setEngineProvider([eng] {
        obs::EngineSample es;
        es.shardEvents = eng->shardEventsProcessed();
        es.mailboxPosts = eng->mailboxPostsDrained();
        es.barrierWaitSeconds = eng->workerBarrierWaitSeconds();
        return es;
      });
    }
    if (sampler_ != nullptr) {
      sampler_->setBusyProbe([eng] { return eng->busy(); });
      std::vector<obs::NetObserver*> all;
      for (auto& o : observers_) all.push_back(o.get());
      sampler_->setCreditStallProvider([all = std::move(all)] {
        std::uint64_t total = 0;
        for (const auto* o : all) total += o->creditStallCount();
        return total;
      });
      // Watchdog dump extension: per-shard progress and mailbox depths, so a
      // cross-shard stall names the starved shard. The sampler is a control
      // event — it runs with all workers parked at the barrier, so the
      // engine and mailbox reads race with nothing.
      sampler_->setEngineDiagnostics([eng, mail = mail_.get()](std::FILE* f) {
        const std::vector<std::uint64_t> events = eng->shardEventsProcessed();
        std::fprintf(f, "par engine: %u shards, %llu windows run\n", eng->numShards(),
                     static_cast<unsigned long long>(eng->windowsRun()));
        for (std::uint32_t s = 0; s < eng->numShards(); ++s) {
          std::fprintf(f, "  shard %u: %llu events processed\n", s,
                       static_cast<unsigned long long>(events[s]));
        }
        for (std::uint32_t src = 0; src < mail->numShards(); ++src) {
          for (std::uint32_t dst = 0; dst < mail->numShards(); ++dst) {
            const std::size_t depth = mail->box(src, dst).size();
            if (depth != 0) {
              std::fprintf(f, "  mailbox %u->%u: %zu undelivered posts\n", src, dst, depth);
            }
          }
        }
      });
    }
  }
}

const topo::HyperX& Experiment::hyperx() const {
  const auto* hx = dynamic_cast<const topo::HyperX*>(topo_.get());
  HXWAR_CHECK_MSG(hx != nullptr, "Experiment::hyperx(): topology is not a HyperX");
  return *hx;
}

metrics::SteadyStateResult Experiment::run() {
  std::vector<traffic::SyntheticInjector*> injectors;
  injectors.reserve(injectors_.size());
  for (auto& inj : injectors_) injectors.push_back(inj.get());
  metrics::SteadyStateResult result =
      metrics::runSteadyState(*backend_, *network_, injectors, spec_.steady);
  // Partition census is a property of the (spec, fault set) pair, not of the
  // measurement — stamped here so every caller of run() sees it.
  result.unreachablePairs = connectivity_.unreachablePairs;
  result.unreachableRouters = connectivity_.unreachableRouters;
  return result;
}

namespace {

// Expand (base seed, point index) into independent injector/network seeds.
// The index — never a thread id or completion order — keys the streams, so
// serial and parallel execution of the same grid are bit-identical. Shared by
// the spec and config overloads so both derive identical seeds.
void deriveSweepSeeds(std::uint64_t baseSeed, std::size_t index,
                      std::uint64_t& injectionSeed, std::uint64_t& netSeed) {
  SplitMix64 mix(baseSeed ^
                 (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(index) + 1)));
  injectionSeed = mix.next();
  netSeed = mix.next();
}

}  // namespace

ExperimentSpec sweepPointConfig(const ExperimentSpec& base, double load,
                                std::size_t index) {
  ExperimentSpec spec = base;
  spec.injection.rate = load;
  deriveSweepSeeds(base.injection.seed, index, spec.injection.seed, spec.net.rngSeed);
  // spec.fault.seed (like patternSeed) is deliberately NOT re-derived: every
  // point of a sweep measures the same degraded network.
  return spec;
}

ExperimentConfig sweepPointConfig(const ExperimentConfig& base, double load,
                                  std::size_t index) {
  ExperimentConfig cfg = base;
  cfg.injection.rate = load;
  deriveSweepSeeds(base.injection.seed, index, cfg.injection.seed, cfg.net.rngSeed);
  return cfg;
}

namespace {

// One attempt at a sweep point; hxwar::Error propagates to runSweepPoint's
// isolation wrapper below. CHECK failures still abort the process — they are
// simulator contract violations, not expected degraded-run outcomes.
SweepPoint runSweepPointOnce(const ExperimentSpec& base, double load, std::size_t index) {
  SweepPoint p;
  p.load = load;
  p.index = index;
  const auto t0 = std::chrono::steady_clock::now();
  Experiment exp(sweepPointConfig(base, load, index));
  p.result = exp.run();
  const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - t0;
  p.wallSeconds = elapsed.count();
  p.eventsProcessed = exp.backend().eventsProcessed();
  p.eventsPerSec = p.wallSeconds > 0.0
                       ? static_cast<double>(p.eventsProcessed) / p.wallSeconds
                       : 0.0;
  p.pointJobs = exp.pointJobs();
  if constexpr (obs::kCompiledIn) {
    if (exp.observer() != nullptr) {
      // Merge the per-lane traces and canonicalize: serial and sharded runs
      // record the same event multiset in different interleavings, and the
      // canonical (ts, id, kind) order makes the serialized trace identical.
      // Sampler rows live on the lane-0 observer only.
      for (const auto& o : exp.observers()) {
        for (const obs::TraceEvent& e : o->trace().events()) p.trace.add(e);
      }
      obs::canonicalize(p.trace);
      p.samples = exp.observer()->samples();
    }
    if (exp.recorder() != nullptr) {
      p.windows = exp.recorder()->windows();
      p.shardWindows = exp.recorder()->shardWindows();
    }
  }
  return p;
}

}  // namespace

SweepPoint runSweepPoint(const ExperimentSpec& base, double load, std::size_t index) {
  // Crash isolation: one same-seed retry (guards against environment flakes
  // — the simulation itself is deterministic), then a structured failed row.
  // Sweeps keep their other points; front ends surface status/message.
  for (int attempt = 0;; ++attempt) {
    try {
      return runSweepPointOnce(base, load, index);
    } catch (const Error& e) {
      if (attempt == 0) continue;
      SweepPoint p;
      p.load = load;
      p.index = index;
      p.status = "failed";
      p.message = e.what();
      return p;
    }
  }
}

SweepPoint runSweepPoint(const ExperimentConfig& base, double load, std::size_t index) {
  return runSweepPoint(base.toSpec(), load, index);
}

std::vector<SweepPoint> loadLatencySweep(const ExperimentSpec& base,
                                         const std::vector<double>& loads,
                                         bool stopAtSaturation) {
  std::vector<SweepPoint> points;
  std::uint32_t saturatedStreak = 0;
  for (std::size_t i = 0; i < loads.size(); ++i) {
    points.push_back(runSweepPoint(base, loads[i], i));
    saturatedStreak = points.back().result.saturated ? saturatedStreak + 1 : 0;
    if (stopAtSaturation && saturatedStreak >= 2) break;
  }
  return points;
}

std::vector<SweepPoint> loadLatencySweep(const ExperimentConfig& base,
                                         const std::vector<double>& loads,
                                         bool stopAtSaturation) {
  return loadLatencySweep(base.toSpec(), loads, stopAtSaturation);
}

double saturationThroughput(const ExperimentSpec& base, double offered) {
  ExperimentSpec spec = base;
  spec.injection.rate = offered;
  // Saturated runs skip the drain phase; the accepted rate over the
  // measurement window is the steady-state throughput.
  Experiment exp(spec);
  return exp.run().accepted;
}

double saturationThroughput(const ExperimentConfig& base, double offered) {
  return saturationThroughput(base.toSpec(), offered);
}

std::vector<double> loadGrid(double step, double max) {
  // Multiply instead of accumulating (l += step drifts: after 20 additions of
  // 0.05 the sum overshoots 1.0 by ~2e-16 and the last point is dropped).
  std::vector<double> loads;
  for (std::size_t i = 1; step * static_cast<double>(i) <= max + 1e-9; ++i) {
    loads.push_back(step * static_cast<double>(i));
  }
  return loads;
}

}  // namespace hxwar::harness
