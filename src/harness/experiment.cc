#include "harness/experiment.h"

#include <algorithm>
#include <chrono>

#include "common/assert.h"
#include "common/rng.h"
#include "harness/registry.h"

namespace hxwar::harness {

ExperimentSpec ExperimentConfig::toSpec() const {
  ExperimentSpec spec;
  spec.topology = "hyperx";
  spec.routing = algorithm;
  spec.pattern = pattern;
  spec.net = net;
  spec.injection = injection;
  spec.steady = steady;
  std::string w;
  for (std::size_t i = 0; i < widths.size(); ++i) {
    if (i > 0) w += ',';
    w += std::to_string(widths[i]);
  }
  spec.params["widths"] = w;
  spec.params["terminals"] = std::to_string(terminalsPerRouter);
  spec.params["ugal-bias"] = formatDouble(routingOpts.ugalBias);
  if (routingOpts.omniDeroutes != routing::HyperXRoutingOptions::kOmniDeroutesDefault) {
    spec.params["omni-deroutes"] = std::to_string(routingOpts.omniDeroutes);
  }
  if (!routingOpts.omniRestrictBackToBack) spec.params["omni-restrict-b2b"] = "false";
  return spec;
}

ExperimentConfig smallScaleConfig() {
  ExperimentConfig c;
  c.widths = {4, 4, 4};
  c.terminalsPerRouter = 4;
  c.net.channelLatencyRouter = 8;
  c.net.channelLatencyTerminal = 1;
  c.net.router.numVcs = 8;
  c.net.router.inputBufferDepth = 48;  // > credit round trip (2*8 + pipeline) + max packet
  c.net.router.outputQueueDepth = 32;
  c.net.router.crossbarLatency = 4;
  c.net.router.inputSpeedup = 4;
  c.steady.warmupWindow = 1000;
  c.steady.maxWarmupWindows = 18;
  c.steady.measureWindow = 3000;
  c.steady.drainWindow = 8000;
  return c;
}

ExperimentConfig tinyScaleConfig() {
  ExperimentConfig c;
  c.widths = {3, 3};
  c.terminalsPerRouter = 2;
  c.net.channelLatencyRouter = 4;
  c.net.channelLatencyTerminal = 1;
  c.net.router.numVcs = 8;
  c.net.router.inputBufferDepth = 12;
  c.net.router.outputQueueDepth = 4;
  c.net.router.crossbarLatency = 2;
  c.steady.warmupWindow = 500;
  c.steady.maxWarmupWindows = 30;
  c.steady.measureWindow = 2000;
  c.steady.drainWindow = 10000;
  return c;
}

ExperimentConfig paperScaleConfig() {
  // The paper's 4,096-node 3D HyperX: 8x8x8, 8 terminals per router, 8 VCs,
  // 50 ns (= 50 cycle) router-to-router channels and crossbar, 5 ns terminal
  // channels, buffering beyond the credit round trip.
  ExperimentConfig c;
  c.widths = {8, 8, 8};
  c.terminalsPerRouter = 8;
  c.net.channelLatencyRouter = 50;
  c.net.channelLatencyTerminal = 5;
  c.net.router.numVcs = 8;
  c.net.router.inputBufferDepth = 160;  // credit RTT ~ 2*50 + pipeline, plus a packet
  c.net.router.outputQueueDepth = 32;
  c.net.router.crossbarLatency = 50;
  c.net.router.inputSpeedup = 4;
  c.steady.warmupWindow = 5000;
  c.steady.maxWarmupWindows = 60;
  c.steady.measureWindow = 20000;
  c.steady.drainWindow = 100000;
  return c;
}

ExperimentConfig scaleConfig(const std::string& name) {
  if (name == "tiny") return tinyScaleConfig();
  if (name == "small") return smallScaleConfig();
  if (name == "paper") return paperScaleConfig();
  HXWAR_CHECK_MSG(false, ("unknown scale preset: " + name).c_str());
  return smallScaleConfig();
}

Experiment::Experiment(const ExperimentSpec& spec) : spec_(spec) {
  auto& registry = ExperimentRegistry::instance();
  const Flags params = spec_.paramFlags();
  const TopologyFamily& family = registry.topology(spec_.topology);
  topo_ = family.build(params);

  net::NetworkConfig netCfg = spec_.net;
  if (spec_.fault.active()) {
    faultSet_ = fault::buildFaultSet(*topo_, spec_.fault);
    std::uint32_t maxPorts = 0;
    for (RouterId r = 0; r < topo_->numRouters(); ++r) {
      maxPorts = std::max(maxPorts, topo_->numPorts(r));
    }
    mask_.resize(topo_->numRouters(), maxPorts);
    if (spec_.fault.transient()) {
      // Transient window: the network wires the full topology and the
      // controller flips the shared mask at the scheduled cycles. Validate
      // upfront that the degraded phase would stay connected — a partition is
      // a configuration error whether it lasts one cycle or the whole run.
      fault::DeadPortMask preview(topo_->numRouters(), maxPorts);
      preview.apply(faultSet_.ports);
      const auto report = fault::checkConnectivity(*topo_, preview);
      HXWAR_CHECK_MSG(report.connected, report.message.c_str());
    } else {
      // Static faults: failures are structural. The DegradedTopology rejects
      // partitioned fault sets in its constructor and the Network simply
      // never wires the dead channels.
      mask_.apply(faultSet_.ports);
      degraded_ = std::make_unique<fault::DegradedTopology>(*topo_, mask_);
    }
    netCfg.router.faultDropDeadEnd = netCfg.router.faultDropDeadEnd || spec_.fault.drop;
  }

  // Routing algorithms build against the *base* topology: coordinate math is
  // unaffected by missing links, and faults reach them via the dead-port mask.
  const std::string algo = spec_.routing.empty() ? family.defaultRouting : spec_.routing;
  routing_ = registry.routing(family.name, algo).build(*topo_, params);
  network_ = std::make_unique<net::Network>(sim_, effectiveTopology(), *routing_, netCfg);
  if (spec_.fault.active()) {
    network_->setDeadPortMask(&mask_);
    if (spec_.fault.transient()) {
      faultCtrl_ = std::make_unique<fault::FaultController>(sim_, mask_, faultSet_,
                                                            spec_.fault.at, spec_.fault.until);
    }
  }
  pattern_ = registry.pattern(spec_.pattern).build(*topo_, spec_.patternSeed);
  injector_ = std::make_unique<traffic::SyntheticInjector>(sim_, *network_, *pattern_,
                                                           spec_.injection);

  if constexpr (obs::kCompiledIn) {
    if (spec_.obs.enabled()) {
      observer_ = std::make_unique<obs::NetObserver>(effectiveTopology(),
                                                     spec_.net.router.numVcs, spec_.obs);
      network_->setObserver(observer_.get());
      // Pull gauges over the network's aggregate counters (polled at sampler
      // cadence / diagnostic dumps only, so the per-call cost is irrelevant).
      net::Network* net = network_.get();
      obs::Registry& reg = observer_->registry();
      reg.gauge(obs::gauges::kFlitsInjected,
                [net] { return static_cast<double>(net->flitsInjected()); });
      reg.gauge(obs::gauges::kFlitsEjected,
                [net] { return static_cast<double>(net->flitsEjected()); });
      reg.gauge(obs::gauges::kFlitMovements,
                [net] { return static_cast<double>(net->flitMovements()); });
      reg.gauge(obs::gauges::kBacklogFlits,
                [net] { return static_cast<double>(net->totalSourceBacklogFlits()); });
      reg.gauge(obs::gauges::kQueuedFlits, [net] {
        std::uint64_t queued = 0;
        for (RouterId r = 0; r < net->numRouters(); ++r) {
          queued += net->router(r).bufferedFlits();
        }
        return static_cast<double>(queued);
      });
      reg.gauge(obs::gauges::kPacketsOutstanding,
                [net] { return static_cast<double>(net->packetsOutstanding()); });
      if (spec_.obs.sampling()) {
        sampler_ = std::make_unique<obs::Sampler>(sim_, *observer_,
                                                  spec_.obs.sampleInterval,
                                                  spec_.obs.stallWindow);
      }
    }
  }
}

const topo::HyperX& Experiment::hyperx() const {
  const auto* hx = dynamic_cast<const topo::HyperX*>(topo_.get());
  HXWAR_CHECK_MSG(hx != nullptr, "Experiment::hyperx(): topology is not a HyperX");
  return *hx;
}

metrics::SteadyStateResult Experiment::run() {
  return metrics::runSteadyState(sim_, *network_, *injector_, spec_.steady);
}

namespace {

// Expand (base seed, point index) into independent injector/network seeds.
// The index — never a thread id or completion order — keys the streams, so
// serial and parallel execution of the same grid are bit-identical. Shared by
// the spec and config overloads so both derive identical seeds.
void deriveSweepSeeds(std::uint64_t baseSeed, std::size_t index,
                      std::uint64_t& injectionSeed, std::uint64_t& netSeed) {
  SplitMix64 mix(baseSeed ^
                 (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(index) + 1)));
  injectionSeed = mix.next();
  netSeed = mix.next();
}

}  // namespace

ExperimentSpec sweepPointConfig(const ExperimentSpec& base, double load,
                                std::size_t index) {
  ExperimentSpec spec = base;
  spec.injection.rate = load;
  deriveSweepSeeds(base.injection.seed, index, spec.injection.seed, spec.net.rngSeed);
  // spec.fault.seed (like patternSeed) is deliberately NOT re-derived: every
  // point of a sweep measures the same degraded network.
  return spec;
}

ExperimentConfig sweepPointConfig(const ExperimentConfig& base, double load,
                                  std::size_t index) {
  ExperimentConfig cfg = base;
  cfg.injection.rate = load;
  deriveSweepSeeds(base.injection.seed, index, cfg.injection.seed, cfg.net.rngSeed);
  return cfg;
}

SweepPoint runSweepPoint(const ExperimentSpec& base, double load, std::size_t index) {
  SweepPoint p;
  p.load = load;
  p.index = index;
  const auto t0 = std::chrono::steady_clock::now();
  Experiment exp(sweepPointConfig(base, load, index));
  p.result = exp.run();
  const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - t0;
  p.wallSeconds = elapsed.count();
  p.eventsProcessed = exp.sim().eventsProcessed();
  p.eventsPerSec = p.wallSeconds > 0.0
                       ? static_cast<double>(p.eventsProcessed) / p.wallSeconds
                       : 0.0;
  if constexpr (obs::kCompiledIn) {
    if (obs::NetObserver* o = exp.observer()) {
      p.trace = o->trace();
      p.samples = o->samples();
    }
  }
  return p;
}

SweepPoint runSweepPoint(const ExperimentConfig& base, double load, std::size_t index) {
  return runSweepPoint(base.toSpec(), load, index);
}

std::vector<SweepPoint> loadLatencySweep(const ExperimentSpec& base,
                                         const std::vector<double>& loads,
                                         bool stopAtSaturation) {
  std::vector<SweepPoint> points;
  std::uint32_t saturatedStreak = 0;
  for (std::size_t i = 0; i < loads.size(); ++i) {
    points.push_back(runSweepPoint(base, loads[i], i));
    saturatedStreak = points.back().result.saturated ? saturatedStreak + 1 : 0;
    if (stopAtSaturation && saturatedStreak >= 2) break;
  }
  return points;
}

std::vector<SweepPoint> loadLatencySweep(const ExperimentConfig& base,
                                         const std::vector<double>& loads,
                                         bool stopAtSaturation) {
  return loadLatencySweep(base.toSpec(), loads, stopAtSaturation);
}

double saturationThroughput(const ExperimentSpec& base, double offered) {
  ExperimentSpec spec = base;
  spec.injection.rate = offered;
  // Saturated runs skip the drain phase; the accepted rate over the
  // measurement window is the steady-state throughput.
  Experiment exp(spec);
  return exp.run().accepted;
}

double saturationThroughput(const ExperimentConfig& base, double offered) {
  return saturationThroughput(base.toSpec(), offered);
}

std::vector<double> loadGrid(double step, double max) {
  // Multiply instead of accumulating (l += step drifts: after 20 additions of
  // 0.05 the sum overshoots 1.0 by ~2e-16 and the last point is dropped).
  std::vector<double> loads;
  for (std::size_t i = 1; step * static_cast<double>(i) <= max + 1e-9; ++i) {
    loads.push_back(step * static_cast<double>(i));
  }
  return loads;
}

}  // namespace hxwar::harness
