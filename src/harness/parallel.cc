#include "harness/parallel.h"

#include <algorithm>

namespace hxwar::harness {

unsigned defaultJobs() { return std::max(1u, std::thread::hardware_concurrency()); }

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned n = std::max(1u, threads);
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      // Drain remaining tasks even when stopping, so futures handed out
      // before destruction always complete.
      if (tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();  // packaged_task captures exceptions into the future
  }
}

}  // namespace hxwar::harness
