#include "harness/csv.h"

#include "common/assert.h"
#include "common/log.h"

namespace hxwar::harness {
namespace {

// Quote a cell if it contains separators/quotes (RFC 4180 style).
std::string escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> header)
    : columns_(header.size()) {
  if (path.empty()) return;
  file_ = std::fopen(path.c_str(), "w");
  if (file_ == nullptr) {
    HXWAR_LOG_WARN("could not open CSV output file %s", path.c_str());
    return;
  }
  row(header);
}

CsvWriter::~CsvWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  if (file_ == nullptr) return;
  HXWAR_CHECK_MSG(cells.size() == columns_, "CSV row width mismatch");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    std::fprintf(file_, "%s%s", i == 0 ? "" : ",", escape(cells[i]).c_str());
  }
  std::fputc('\n', file_);
}

}  // namespace hxwar::harness
