// Deterministic discrete-event queue.
//
// Events are totally ordered by (tick, epsilon, sequence number). Epsilon
// orders the phases within a tick (e.g., channel delivery before router
// allocation); the sequence number makes same-phase events FIFO so repeated
// runs with the same seed replay identically.
//
// The queue owns its backing vector directly (rather than wrapping
// std::priority_queue) so pop() can move the top event out instead of
// copying it, and so callers sizing a simulation up front can reserve() the
// backing store and avoid reallocation in the hot loop.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/types.h"

namespace hxwar::sim {

class Component;

// Intra-tick phase ordering. Lower runs first.
enum Epsilon : std::uint8_t {
  kEpsDeliver = 0,   // channel payload/credit delivery
  kEpsRouter = 1,    // router allocation & crossbar cycles
  kEpsTerminal = 2,  // terminal injection/ejection processing
  kEpsApp = 3,       // application-model reactions
  kEpsControl = 4,   // harness controllers (sampling, warmup checks)
};

struct Event {
  Tick time;
  std::uint8_t epsilon;
  std::uint64_t seq;
  Component* component;
  std::uint64_t tag;
};

struct EventAfter {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) return a.time > b.time;
    if (a.epsilon != b.epsilon) return a.epsilon > b.epsilon;
    return a.seq > b.seq;
  }
};

class EventQueue {
 public:
  void push(Tick time, std::uint8_t epsilon, Component* component, std::uint64_t tag) {
    heap_.push_back(Event{time, epsilon, seq_++, component, tag});
    std::push_heap(heap_.begin(), heap_.end(), EventAfter{});
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  std::size_t capacity() const { return heap_.capacity(); }
  void reserve(std::size_t n) { heap_.reserve(n); }
  const Event& top() const { return heap_.front(); }
  Event pop() {
    std::pop_heap(heap_.begin(), heap_.end(), EventAfter{});
    Event e = heap_.back();
    heap_.pop_back();
    return e;
  }

 private:
  std::vector<Event> heap_;
  std::uint64_t seq_ = 0;
};

}  // namespace hxwar::sim
