// Deterministic discrete-event queue: a tick-bucketed calendar queue with a
// spill heap for far-future events.
//
// Events are totally ordered by (tick, epsilon, sequence number). Epsilon
// orders the phases within a tick (e.g., channel delivery before router
// allocation); the sequence number makes same-phase events FIFO so repeated
// runs with the same seed replay identically.
//
// Layout. Nearly every event a network simulation schedules lands a small,
// bounded number of ticks in the future (channel latencies, crossbar
// traversal, next-cycle retries — all single- or double-digit tick deltas).
// The queue exploits that: a ring of kRingSize one-tick buckets covers the
// window [base_, base_ + kRingSize), and each bucket holds one FIFO lane per
// epsilon phase. A push inside the window is an O(1) append to
// lane[tick % kRingSize][epsilon]; a pop is an O(1) read from the lowest
// non-empty epsilon lane of the current bucket (a 256-bit occupancy bitmap
// finds the next non-empty bucket with a couple of ctz instructions when the
// current tick drains). Events beyond the window — fault windows, samplers,
// trace replays — go to a conventional binary heap and migrate into the ring
// as the base advances, which costs them one extra move but keeps the hot
// path allocation- and comparison-free.
//
// Replay exactness. The (tick, epsilon, seq) order is preserved bit-for-bit:
//   * within a lane, append order IS seq order (seq is a monotone push
//     counter), so lane FIFO == seq FIFO;
//   * spill events for a tick T are, by construction, all pushed while T was
//     outside the ring window, and the window boundary only moves forward —
//     so every spill event for T has a smaller seq than every direct ring
//     push for T. Migrating the spill (in heap order, i.e. (tick, epsilon,
//     seq) order) into the lanes *before* the base advances past T therefore
//     restores the exact global order. drainSpill_() runs on every base
//     advance to maintain the invariant spill.top.time >= base_ + kRingSize.
// The property test in tests/event_queue_test.cc pits this structure against
// a reference heap over randomized mixed workloads and asserts identical pop
// sequences; DESIGN.md §10 carries the full argument.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/assert.h"
#include "common/types.h"

namespace hxwar::sim {

class Component;

// Intra-tick phase ordering. Lower runs first.
//
// kEpsInject gets its own lane (rather than sharing kEpsTerminal with the
// terminal cycles) so that traffic sources always enqueue their packets
// before any terminal processes its same-tick cycle. With a shared lane the
// relative order would depend on push order, which the sharded parallel
// engine cannot reproduce — credit deliveries drained from mailboxes wake
// terminals at different lane positions than the serial engine would.
enum Epsilon : std::uint8_t {
  kEpsDeliver = 0,   // channel payload/credit delivery
  kEpsRouter = 1,    // router allocation & crossbar cycles
  kEpsInject = 2,    // traffic sources enqueue new packets
  kEpsTerminal = 3,  // terminal injection/ejection processing
  kEpsApp = 4,       // application-model reactions
  kEpsControl = 5,   // harness controllers (sampling, warmup checks)
};

// A popped (or spilled) event. Epsilon rides the top byte of `epsSeq` and the
// sequence number the low 56 bits, so the far-future heap orders (epsilon,
// seq) with a single integer compare and the struct stays at 32 bytes — the
// pre-calendar layout spent 40 (u8 epsilon + 7 bytes padding + u64 seq).
// Ring-resident events are slimmer still: their tick, epsilon, and seq are
// implied by bucket, lane, and lane position, so they store only
// (component, tag) — see EventQueue::LaneItem.
struct Event {
  Tick time;
  std::uint64_t epsSeq;
  Component* component;
  std::uint64_t tag;

  static constexpr std::uint32_t kEpsilonShift = 56;
  static constexpr std::uint64_t kSeqMask = (std::uint64_t{1} << kEpsilonShift) - 1;

  static std::uint64_t packEpsSeq(std::uint8_t epsilon, std::uint64_t seq) {
    return (static_cast<std::uint64_t>(epsilon) << kEpsilonShift) | seq;
  }
  std::uint8_t epsilon() const { return static_cast<std::uint8_t>(epsSeq >> kEpsilonShift); }
  std::uint64_t seq() const { return epsSeq & kSeqMask; }
};

static_assert(sizeof(Event) == 32, "Event must stay 4 words: epsilon packs into seq");

struct EventAfter {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.epsSeq > b.epsSeq;  // epsilon (high byte) then seq, one compare
  }
};

class EventQueue {
 public:
  // Number of distinct epsilon phases (lanes per bucket).
  static constexpr std::uint32_t kNumEpsilons = 6;
  // Ring window in ticks. Must comfortably exceed every hot scheduling delta
  // (channel latencies, crossbar traversal, next-cycle retries); events
  // farther out take the spill heap. Power of two for cheap slot masking.
  static constexpr std::uint32_t kRingBits = 8;
  static constexpr std::uint32_t kRingSize = 1u << kRingBits;

  EventQueue();

  // `time` must be >= the time of the last popped event (checked in Debug
  // builds only: this sits on every event push — see Simulator::schedule).
  void push(Tick time, std::uint8_t epsilon, Component* component, std::uint64_t tag) {
    HXWAR_DCHECK_MSG(epsilon < kNumEpsilons, "epsilon out of range");
    HXWAR_DCHECK_MSG(time >= base_, "push precedes the calendar base");
    if (time - base_ < kRingSize) {
      const std::uint32_t slot = static_cast<std::uint32_t>(time) & (kRingSize - 1);
      lanes_[slot * kNumEpsilons + epsilon].items.push_back(LaneItem{component, tag});
      occupancy_[slot >> 6] |= std::uint64_t{1} << (slot & 63);
      ++ringCount_;
    } else {
      spill_.push_back(Event{time, Event::packEpsSeq(epsilon, seq_++), component, tag});
      std::push_heap(spill_.begin(), spill_.end(), EventAfter{});
    }
  }

  bool empty() const { return ringCount_ == 0 && spill_.empty(); }
  std::size_t size() const { return ringCount_ + spill_.size(); }

  // Time of the next event without popping it; kTickInvalid when empty.
  // O(1) when the current bucket is occupied (the common case).
  Tick nextTime() const;

  // Epsilon phase of the next event without popping it. Queue must not be
  // empty. The parallel engine uses (nextTime, nextEpsilon) of the control
  // simulator to decide whether a control event must run before or after the
  // worker shards complete the same tick.
  std::uint8_t nextEpsilon() const;

  // Pops the globally least (tick, epsilon, seq) event. Queue must not be
  // empty.
  Event pop();

  // Pre-sizes the backing stores: spreads `n` expected concurrent events over
  // the ring lanes and reserves the spill heap, so steady-state runs never
  // reallocate in the hot loop.
  void reserve(std::size_t n);

 private:
  // Ring-resident representation: tick is the bucket, epsilon the lane, and
  // FIFO position the sequence — only the payload needs storing.
  struct LaneItem {
    Component* component;
    std::uint64_t tag;
  };
  static_assert(sizeof(LaneItem) == 16, "hot-path ring events are 2 words");

  struct Lane {
    std::vector<LaneItem> items;
    std::uint32_t head = 0;  // consumed prefix; items.clear() when drained
  };

  static std::uint32_t slotOf(Tick time) {
    return static_cast<std::uint32_t>(time) & (kRingSize - 1);
  }
  bool slotOccupied(std::uint32_t slot) const {
    return (occupancy_[slot >> 6] >> (slot & 63)) & 1;
  }

  // Distance in ticks from base_ to the next occupied bucket, scanning the
  // occupancy bitmap circularly from base_'s slot (inclusive).
  std::uint32_t occupiedDistance() const;
  // Moves every spill event inside [base_, base_ + kRingSize) into the ring,
  // in heap order, restoring the spill invariant after a base advance.
  void drainSpill();

  std::vector<Lane> lanes_;              // kRingSize * kNumEpsilons
  std::uint64_t occupancy_[kRingSize / 64] = {};  // per-bucket non-empty bits
  Tick base_ = 0;                        // lowest tick the ring can hold
  std::size_t ringCount_ = 0;
  std::vector<Event> spill_;             // min-heap on (time, epsilon, seq)
  std::uint64_t seq_ = 0;                // spill-only monotone push counter
};

}  // namespace hxwar::sim
