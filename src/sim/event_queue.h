// Deterministic discrete-event queue.
//
// Events are totally ordered by (tick, epsilon, sequence number). Epsilon
// orders the phases within a tick (e.g., channel delivery before router
// allocation); the sequence number makes same-phase events FIFO so repeated
// runs with the same seed replay identically.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "common/types.h"

namespace hxwar::sim {

class Component;

// Intra-tick phase ordering. Lower runs first.
enum Epsilon : std::uint8_t {
  kEpsDeliver = 0,   // channel payload/credit delivery
  kEpsRouter = 1,    // router allocation & crossbar cycles
  kEpsTerminal = 2,  // terminal injection/ejection processing
  kEpsApp = 3,       // application-model reactions
  kEpsControl = 4,   // harness controllers (sampling, warmup checks)
};

struct Event {
  Tick time;
  std::uint8_t epsilon;
  std::uint64_t seq;
  Component* component;
  std::uint64_t tag;
};

struct EventAfter {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) return a.time > b.time;
    if (a.epsilon != b.epsilon) return a.epsilon > b.epsilon;
    return a.seq > b.seq;
  }
};

class EventQueue {
 public:
  void push(Tick time, std::uint8_t epsilon, Component* component, std::uint64_t tag) {
    heap_.push(Event{time, epsilon, seq_++, component, tag});
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  const Event& top() const { return heap_.top(); }
  Event pop() {
    Event e = heap_.top();
    heap_.pop();
    return e;
  }

 private:
  std::priority_queue<Event, std::vector<Event>, EventAfter> heap_;
  std::uint64_t seq_ = 0;
};

}  // namespace hxwar::sim
