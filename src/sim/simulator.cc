#include "sim/simulator.h"

namespace hxwar::sim {

std::uint64_t Simulator::run(Tick until) {
  std::uint64_t processed = 0;
  while (step(until)) ++processed;
  return processed;
}

bool Simulator::step(Tick until) {
  if (queue_.empty()) return false;
  if (queue_.nextTime() >= until) {
    // Advance the clock to the horizon so callers can resume later.
    if (until != kTickInvalid && until > now_) now_ = until;
    return false;
  }
  const Event e = queue_.pop();
  now_ = e.time;
  e.component->processEvent(e.tag);
  ++eventsProcessed_;
  return true;
}

}  // namespace hxwar::sim
