// Simulation driver: owns the event queue and the clock.
#pragma once

#include <cstdint>

#include "common/assert.h"
#include "common/types.h"
#include "sim/event_queue.h"

namespace hxwar::sim {

class Component;

class Simulator {
 public:
  Tick now() const { return now_; }
  std::uint64_t eventsProcessed() const { return eventsProcessed_; }

  // Schedules `component->processEvent(tag)` at absolute `time`. Scheduling
  // into the past is a programming error, checked in Debug builds only: the
  // check sits on every single event push, which is measurable at the
  // simulator's event rates (see DESIGN.md §10).
  void schedule(Tick time, std::uint8_t epsilon, Component* component, std::uint64_t tag) {
    HXWAR_DCHECK_MSG(time >= now_, "cannot schedule into the past");
    queue_.push(time, epsilon, component, tag);
  }

  void scheduleIn(Tick delta, std::uint8_t epsilon, Component* component, std::uint64_t tag) {
    schedule(now_ + delta, epsilon, component, tag);
  }

  // Runs until the queue drains or `until` is passed (exclusive). Returns the
  // number of events processed by this call.
  std::uint64_t run(Tick until = kTickInvalid);

  // Runs a single event; returns false if the queue is empty or the next
  // event is at/after `until`.
  bool step(Tick until = kTickInvalid);

  bool idle() const { return queue_.empty(); }
  std::size_t pendingEvents() const { return queue_.size(); }

  // Peek at the next pending event without running it. nextEventTime()
  // returns kTickInvalid when idle; nextEventEpsilon() requires a pending
  // event. The parallel engine sizes synchronization windows from these.
  Tick nextEventTime() const { return queue_.nextTime(); }
  std::uint8_t nextEventEpsilon() const { return queue_.nextEpsilon(); }

  // Pre-sizes the event heap; called by the network once the component count
  // is known so steady-state runs never reallocate mid-simulation.
  void reserveEvents(std::size_t n) { queue_.reserve(n); }

  // Hands out construction-order ordinals to components (see Component).
  std::uint32_t nextComponentOrdinal() { return componentCount_++; }

 private:
  EventQueue queue_;
  Tick now_ = 0;
  std::uint64_t eventsProcessed_ = 0;
  std::uint32_t componentCount_ = 0;
};

// Anything that receives events. Components are owned by the network/harness,
// never by the simulator. A component's identity is its dense index in the
// owning layer's arrays (RouterId/NodeId/ChannelId) plus a per-simulator
// ordinal assigned at construction — not a stored name string: tens of
// thousands of components exist at paper scale and the strings were pure
// memory weight (they were never read outside construction).
class Component {
 public:
  explicit Component(Simulator& sim) : sim_(sim), ordinal_(sim.nextComponentOrdinal()) {}
  virtual ~Component() = default;

  Component(const Component&) = delete;
  Component& operator=(const Component&) = delete;

  virtual void processEvent(std::uint64_t tag) = 0;

  // Cross-shard delivery entry point for the parallel engine: a remote
  // sender posted (time, a, b) into a mailbox during a window, and the
  // engine replays the post into the owning shard at the next barrier. Only
  // channel endpoints classified cross-shard at build time ever receive
  // this; everything else keeps the default, which fails loudly.
  virtual void deliverRemote(Tick time, std::uint64_t a, std::uint32_t b) {
    (void)time;
    (void)a;
    (void)b;
    HXWAR_CHECK_MSG(false, "deliverRemote on a component without remote support");
  }

  Simulator& sim() { return sim_; }
  const Simulator& sim() const { return sim_; }
  // Construction order within this simulator (diagnostics; dense and unique).
  std::uint32_t ordinal() const { return ordinal_; }

 private:
  Simulator& sim_;
  std::uint32_t ordinal_;
};

}  // namespace hxwar::sim
