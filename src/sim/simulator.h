// Simulation driver: owns the event queue and the clock.
#pragma once

#include <cstdint>

#include "common/assert.h"
#include "common/types.h"
#include "sim/event_queue.h"

namespace hxwar::sim {

class Component;

class Simulator {
 public:
  Tick now() const { return now_; }
  std::uint64_t eventsProcessed() const { return eventsProcessed_; }

  // Schedules `component->processEvent(tag)` at absolute `time`. Scheduling
  // into the past is a programming error, checked in Debug builds only: the
  // check sits on every single event push, which is measurable at the
  // simulator's event rates (see DESIGN.md §10).
  void schedule(Tick time, std::uint8_t epsilon, Component* component, std::uint64_t tag) {
    HXWAR_DCHECK_MSG(time >= now_, "cannot schedule into the past");
    queue_.push(time, epsilon, component, tag);
  }

  void scheduleIn(Tick delta, std::uint8_t epsilon, Component* component, std::uint64_t tag) {
    schedule(now_ + delta, epsilon, component, tag);
  }

  // Runs until the queue drains or `until` is passed (exclusive). Returns the
  // number of events processed by this call.
  std::uint64_t run(Tick until = kTickInvalid);

  // Runs a single event; returns false if the queue is empty or the next
  // event is at/after `until`.
  bool step(Tick until = kTickInvalid);

  bool idle() const { return queue_.empty(); }
  std::size_t pendingEvents() const { return queue_.size(); }

  // Pre-sizes the event heap; called by the network once the component count
  // is known so steady-state runs never reallocate mid-simulation.
  void reserveEvents(std::size_t n) { queue_.reserve(n); }

  // Hands out construction-order ordinals to components (see Component).
  std::uint32_t nextComponentOrdinal() { return componentCount_++; }

 private:
  EventQueue queue_;
  Tick now_ = 0;
  std::uint64_t eventsProcessed_ = 0;
  std::uint32_t componentCount_ = 0;
};

// Anything that receives events. Components are owned by the network/harness,
// never by the simulator. A component's identity is its dense index in the
// owning layer's arrays (RouterId/NodeId/ChannelId) plus a per-simulator
// ordinal assigned at construction — not a stored name string: tens of
// thousands of components exist at paper scale and the strings were pure
// memory weight (they were never read outside construction).
class Component {
 public:
  explicit Component(Simulator& sim) : sim_(sim), ordinal_(sim.nextComponentOrdinal()) {}
  virtual ~Component() = default;

  Component(const Component&) = delete;
  Component& operator=(const Component&) = delete;

  virtual void processEvent(std::uint64_t tag) = 0;

  Simulator& sim() { return sim_; }
  const Simulator& sim() const { return sim_; }
  // Construction order within this simulator (diagnostics; dense and unique).
  std::uint32_t ordinal() const { return ordinal_; }

 private:
  Simulator& sim_;
  std::uint32_t ordinal_;
};

}  // namespace hxwar::sim
