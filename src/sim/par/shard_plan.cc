#include "sim/par/shard_plan.h"

#include <algorithm>

namespace hxwar::sim::par {

ShardPlan contiguousShards(std::uint32_t numRouters, std::uint32_t numShards) {
  HXWAR_CHECK_MSG(numRouters > 0, "cannot shard an empty network");
  HXWAR_CHECK_MSG(numShards > 0, "shard count must be at least 1");
  ShardPlan plan;
  plan.numShards = std::min(numShards, numRouters);
  plan.routerShard.resize(numRouters);
  // Shard s owns [s*N/S, (s+1)*N/S): balanced to within one router, and the
  // boundaries are reproducible integer arithmetic (no accumulation).
  for (std::uint32_t s = 0; s < plan.numShards; ++s) {
    const std::uint32_t lo =
        static_cast<std::uint32_t>((static_cast<std::uint64_t>(s) * numRouters) / plan.numShards);
    const std::uint32_t hi = static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(s + 1) * numRouters) / plan.numShards);
    for (std::uint32_t r = lo; r < hi; ++r) plan.routerShard[r] = s;
  }
  return plan;
}

}  // namespace hxwar::sim::par
