// Conservative synchronous-window parallel engine over sharded simulators.
//
// The network's routers (and their terminals and channels) are partitioned
// across N shard simulators by a ShardPlan. Workers execute windows of
// simulated time concurrently, one shard per worker; the window size is
// bounded by the *lookahead* — the minimum latency over all cross-shard
// channels. A flit or credit sent at time t on a cross-shard channel cannot
// arrive before t + lookahead, so every event a shard could receive from
// another shard during the window [w, w + lookahead) lands at or after the
// window end: shards cannot causally affect each other inside a window, and
// each can safely run its own calendar queue to the window boundary.
//
// Cross-shard sends post into per-(src,dst) mailboxes (see mailbox.h) and
// are drained by the coordinator thread at the barrier in fixed
// (dst, src, FIFO) order, which makes the destination queue's (tick,
// epsilon, seq) assignment a pure function of the shard plan — bit-identical
// replay for any worker count and any thread schedule.
//
// Control components (fault controllers, samplers) live in a separate
// control simulator executed by the coordinator between windows. A control
// event at tick t with epsilon below kEpsControl (e.g. a fault-mask flip at
// kEpsDeliver) runs once all shards have completed every event before t —
// exactly the serial position, since the mask write precedes all same-tick
// router reads in both engines. A kEpsControl event (the sampler) runs once
// shards have completed tick t entirely, again matching the serial total
// order. Window targets never cross a pending control bound.
//
// Why conservative, not optimistic: optimistic PDES (Time Warp) needs state
// saving and rollback on every component — incompatible with bit-identical
// replay guarantees, ruinous for the SoA router state's memory budget — and
// buys nothing here, because channel latencies give a guaranteed lookahead
// of >= 1 tick (channels CHECK latency >= 1) and typically 5-50 ticks at
// paper scale, so windows are fat enough to amortize barriers.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/types.h"
#include "sim/backend.h"
#include "sim/par/mailbox.h"
#include "sim/simulator.h"

namespace hxwar::sim::par {

class Engine final : public SimBackend {
 public:
  // `shards` are the worker-executed simulators (one per shard, addresses
  // stable for the engine's lifetime); `control` may be null when no control
  // components exist. `lookahead` is the minimum cross-shard channel latency
  // in ticks; `lookaheadDetail` names the channel that set it, for the
  // actionable CHECK message (satellite: the sync window must be >= 1 tick).
  Engine(std::vector<Simulator*> shards, Simulator* control, Mailboxes* mail,
         Tick lookahead, std::string lookaheadDetail);
  ~Engine() override;

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Runs after every barrier drain, on the coordinator thread, with all
  // workers parked. The network uses it to return cross-shard-freed packet
  // slots to their owning pools.
  void setBarrierHook(std::function<void()> hook) { barrierHook_ = std::move(hook); }

  Tick now() const override { return now_; }
  void run(Tick until) override;
  std::uint64_t eventsProcessed() const override;
  bool busy() const override;

  Tick lookahead() const { return lookahead_; }
  std::uint32_t numShards() const { return static_cast<std::uint32_t>(shards_.size()); }
  // Per-shard event counts (telemetry; the merge-order property test compares
  // these across repeated runs).
  std::vector<std::uint64_t> shardEventsProcessed() const;
  std::uint64_t windowsRun() const { return windowsRun_; }
  // Cumulative cross-shard posts drained per (src * numShards + dst) mailbox
  // since construction. Coordinator-thread state: read it from control events
  // or between runs (the flight recorder's load-balance window does).
  const std::vector<std::uint64_t>& mailboxPostsDrained() const { return postsDrained_; }
  // Cumulative wall-clock seconds each worker has spent parked at the window
  // barrier. Takes the barrier mutex; safe wherever mailboxPostsDrained() is.
  // Wall-clock telemetry — never feeds a byte-compared output surface.
  std::vector<double> workerBarrierWaitSeconds() const;

 private:
  void workerLoop(std::uint32_t shard);
  void runWindow(Tick target);
  void drainMailboxes();

  std::vector<Simulator*> shards_;
  Simulator* control_;
  Mailboxes* mail_;
  Tick lookahead_;
  Tick now_ = 0;
  std::uint64_t windowsRun_ = 0;
  std::function<void()> barrierHook_;
  std::vector<std::uint64_t> postsDrained_;     // [src * numShards + dst], coordinator-only
  std::vector<std::uint64_t> barrierWaitNanos_;  // per worker, guarded by mutex_

  // Window barrier. All shared simulation state is published across threads
  // through mutex_: workers see the coordinator's pre-window writes when they
  // take the lock to read the new generation, and the coordinator sees all
  // worker writes when it takes the lock to observe pending_ == 0.
  mutable std::mutex mutex_;  // mutable: const telemetry reads lock it too
  std::condition_variable cvWork_;
  std::condition_variable cvDone_;
  std::uint64_t generation_ = 0;
  std::uint32_t pending_ = 0;
  Tick windowTarget_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace hxwar::sim::par
