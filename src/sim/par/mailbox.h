// Cross-shard delivery mailboxes for the conservative parallel engine.
//
// During a synchronization window, a channel whose sender and receiver live
// in different shards turns its send into a RemotePost appended to the
// (srcShard, dstShard) outbox. Each outbox has exactly one writer — the
// source shard's worker thread — and is only read and cleared by the engine
// at the barrier, under the barrier mutex, so no post is ever touched
// concurrently.
//
// Determinism: the engine drains outboxes in (dstShard ascending, srcShard
// ascending) order, FIFO within each outbox. Post order within an outbox is
// the source shard's deterministic event-replay order, and the drain order
// is a fixed function of shard indices — never of thread completion order —
// so the resulting (tick, epsilon, seq) positions in the destination shard's
// calendar queue are identical on every run for a given shard count.
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.h"
#include "common/types.h"

namespace hxwar::sim {
class Component;
}

namespace hxwar::sim::par {

// One cross-shard delivery: replayed as target->deliverRemote(time, a, b).
// The payload meaning is the target's business (flit channels pack the flit
// into `a` and the VC into `b`; credit channels pack the VC into `a`).
struct RemotePost {
  Tick time;
  Component* target;
  std::uint64_t a;
  std::uint32_t b;
};

// Padded so two workers appending to adjacent outboxes never share a line.
struct alignas(64) Outbox {
  std::vector<RemotePost> posts;
};

class Mailboxes {
 public:
  explicit Mailboxes(std::uint32_t numShards) : numShards_(numShards) {
    HXWAR_CHECK_MSG(numShards > 0, "mailboxes need at least one shard");
    boxes_.resize(static_cast<std::size_t>(numShards) * numShards);
  }

  std::uint32_t numShards() const { return numShards_; }

  // The outbox written by `srcShard` workers for deliveries into `dstShard`.
  std::vector<RemotePost>& box(std::uint32_t srcShard, std::uint32_t dstShard) {
    HXWAR_DCHECK_MSG(srcShard < numShards_ && dstShard < numShards_, "shard out of range");
    return boxes_[static_cast<std::size_t>(srcShard) * numShards_ + dstShard].posts;
  }

 private:
  std::uint32_t numShards_;
  std::vector<Outbox> boxes_;
};

}  // namespace hxwar::sim::par
