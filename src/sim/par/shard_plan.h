// Static partition of a network's routers across parallel-engine shards.
//
// The plan is plain data — a router -> shard map plus the shard count — so
// any partitioner can fill one in. The v1 partitioner is contiguous dense-ID
// ranges: router IDs in this codebase are assigned in topology iteration
// order (row-major coordinates for the lattice families), so contiguous
// ranges are exactly the HyperX dimension-0 slices, which cut the fewest
// channels of any axis-aligned split. Terminals are never partitioned
// separately: a terminal always lives in its router's shard, so
// terminal-side channels (the lowest-latency links in every preset) stay
// shard-local and never constrain the lookahead.
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.h"
#include "common/types.h"

namespace hxwar::sim::par {

struct ShardPlan {
  std::uint32_t numShards = 1;
  std::vector<std::uint32_t> routerShard;  // dense RouterId -> shard index

  std::uint32_t shardOf(RouterId r) const {
    HXWAR_DCHECK_MSG(r < routerShard.size(), "router id out of plan range");
    return routerShard[r];
  }
};

// Contiguous dense-ID ranges, balanced to within one router. `numShards` is
// clamped to `numRouters` so every shard owns at least one router.
ShardPlan contiguousShards(std::uint32_t numRouters, std::uint32_t numShards);

}  // namespace hxwar::sim::par
