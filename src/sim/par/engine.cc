#include "sim/par/engine.h"

#include <algorithm>
#include <chrono>

#include "common/assert.h"
#include "sim/event_queue.h"

namespace hxwar::sim::par {

Engine::Engine(std::vector<Simulator*> shards, Simulator* control, Mailboxes* mail,
               Tick lookahead, std::string lookaheadDetail)
    : shards_(std::move(shards)), control_(control), mail_(mail), lookahead_(lookahead) {
  HXWAR_CHECK_MSG(!shards_.empty(), "parallel engine needs at least one shard");
  HXWAR_CHECK_MSG(mail_ != nullptr && mail_->numShards() >= shards_.size(),
                  "mailboxes not sized for the shard count");
  // The synchronization window is the lookahead: a zero-latency cross-shard
  // channel would force zero-width windows (no possible progress). Channels
  // already CHECK latency >= 1 at construction; this names the offender if
  // that floor is ever relaxed.
  if (lookahead_ < 1) {
    const std::string msg =
        "parallel engine: synchronization window would be < 1 tick; offending channel: " +
        (lookaheadDetail.empty() ? std::string("(unknown)") : lookaheadDetail);
    HXWAR_CHECK_MSG(false, msg.c_str());
  }
  postsDrained_.assign(shards_.size() * shards_.size(), 0);
  barrierWaitNanos_.assign(shards_.size(), 0);
  workers_.reserve(shards_.size());
  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    workers_.emplace_back([this, s] { workerLoop(s); });
  }
}

Engine::~Engine() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cvWork_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void Engine::workerLoop(std::uint32_t shard) {
  Simulator* sim = shards_[shard];
  std::uint64_t seenGeneration = 0;
  for (;;) {
    Tick target;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      const auto waitStart = std::chrono::steady_clock::now();
      cvWork_.wait(lock, [&] { return stop_ || generation_ != seenGeneration; });
      barrierWaitNanos_[shard] += static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - waitStart)
              .count());
      if (stop_) return;
      seenGeneration = generation_;
      target = windowTarget_;
    }
    sim->run(target);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--pending_ == 0) cvDone_.notify_one();
    }
  }
}

void Engine::runWindow(Tick target) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    windowTarget_ = target;
    pending_ = static_cast<std::uint32_t>(shards_.size());
    ++generation_;
    cvWork_.notify_all();
    cvDone_.wait(lock, [&] { return pending_ == 0; });
  }
  // Workers are parked (they cannot pass the generation gate until the next
  // runWindow), and their window writes are visible here via mutex_; the
  // coordinator's drain writes below are published to them by the next
  // runWindow's critical section.
  drainMailboxes();
  if (barrierHook_) barrierHook_();
  ++windowsRun_;
}

void Engine::drainMailboxes() {
  const std::uint32_t n = static_cast<std::uint32_t>(shards_.size());
  for (std::uint32_t dst = 0; dst < n; ++dst) {
    for (std::uint32_t src = 0; src < n; ++src) {
      std::vector<RemotePost>& box = mail_->box(src, dst);
      postsDrained_[static_cast<std::size_t>(src) * n + dst] += box.size();
      for (const RemotePost& post : box) {
        post.target->deliverRemote(post.time, post.a, post.b);
      }
      box.clear();
    }
  }
}

void Engine::run(Tick until) {
  for (;;) {
    Tick shardNext = kTickInvalid;
    for (const Simulator* sim : shards_) {
      shardNext = std::min(shardNext, sim->nextEventTime());
    }
    const bool haveControl = control_ != nullptr && !control_->idle();
    if (haveControl) {
      const Tick ct = control_->nextEventTime();
      if (ct < until) {
        // A control event below kEpsControl (fault-mask flips at kEpsDeliver)
        // must run before any shard event at its tick; a kEpsControl event
        // (sampler) must run after the shards complete its tick entirely.
        const Tick controlBound =
            control_->nextEventEpsilon() == kEpsControl ? ct + 1 : ct;
        if (controlBound <= shardNext) {
          control_->step(until);
          continue;
        }
      }
    }
    if (shardNext >= until) {
      // Nothing left below the horizon (control included, see above).
      if (until != kTickInvalid && until > now_) now_ = until;
      return;
    }
    Tick target = shardNext + lookahead_;
    if (haveControl) {
      const Tick ct = control_->nextEventTime();
      const Tick controlBound =
          control_->nextEventEpsilon() == kEpsControl ? ct + 1 : ct;
      target = std::min(target, controlBound);
    }
    target = std::min(target, until);
    HXWAR_CHECK_MSG(target > now_, "parallel engine window made no progress");
    runWindow(target);
    now_ = target;
  }
}

std::uint64_t Engine::eventsProcessed() const {
  std::uint64_t total = control_ != nullptr ? control_->eventsProcessed() : 0;
  for (const Simulator* sim : shards_) total += sim->eventsProcessed();
  return total;
}

bool Engine::busy() const {
  if (control_ != nullptr && !control_->idle()) return true;
  for (const Simulator* sim : shards_) {
    if (!sim->idle()) return true;
  }
  return false;
}

std::vector<double> Engine::workerBarrierWaitSeconds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<double> secs;
  secs.reserve(barrierWaitNanos_.size());
  for (const std::uint64_t ns : barrierWaitNanos_) {
    secs.push_back(static_cast<double>(ns) * 1e-9);
  }
  return secs;
}

std::vector<std::uint64_t> Engine::shardEventsProcessed() const {
  std::vector<std::uint64_t> counts;
  counts.reserve(shards_.size());
  for (const Simulator* sim : shards_) counts.push_back(sim->eventsProcessed());
  return counts;
}

}  // namespace hxwar::sim::par
