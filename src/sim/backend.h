// SimBackend: the seam between the harness/metrics layers and the engine
// that actually advances simulated time.
//
// The steady-state driver only ever needs four operations — "what time is
// it", "run to this horizon", "how many events so far", and "is anything
// still pending" — so those four are the whole interface. The serial path
// stays exactly what it was (SerialBackend is a thin adapter over
// sim::Simulator; Simulator itself stays non-virtual because now() sits on
// the hot path), and the conservative parallel engine (sim/par/engine.h)
// implements the same contract over a set of sharded simulators.
#pragma once

#include <cstdint>

#include "common/types.h"
#include "sim/simulator.h"

namespace hxwar::sim {

class SimBackend {
 public:
  virtual ~SimBackend() = default;

  // Current simulated time as seen by the driver between run() calls.
  virtual Tick now() const = 0;

  // Advances simulation to `until` (exclusive): every event with
  // time < until is processed before this returns. kTickInvalid runs until
  // all queues drain.
  virtual void run(Tick until) = 0;

  // Total events processed so far, across all shards for a parallel backend.
  // Serial and parallel engines deliberately do NOT process the same event
  // count for the same workload (per-shard traffic sources each tick their
  // own event, barriers change coalescing) — this is telemetry for perf
  // rows, never part of the deterministic output surface.
  virtual std::uint64_t eventsProcessed() const = 0;

  // True while any event is pending anywhere.
  virtual bool busy() const = 0;
};

// The serial engine: one Simulator, unchanged semantics.
class SerialBackend final : public SimBackend {
 public:
  explicit SerialBackend(Simulator& sim) : sim_(sim) {}

  Tick now() const override { return sim_.now(); }
  void run(Tick until) override { sim_.run(until); }
  std::uint64_t eventsProcessed() const override { return sim_.eventsProcessed(); }
  bool busy() const override { return !sim_.idle(); }

 private:
  Simulator& sim_;
};

}  // namespace hxwar::sim
