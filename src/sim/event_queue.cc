#include "sim/event_queue.h"

#include <bit>

namespace hxwar::sim {

EventQueue::EventQueue() : lanes_(kRingSize * kNumEpsilons) {}

Tick EventQueue::nextTime() const {
  if (ringCount_ != 0) return base_ + occupiedDistance();
  if (!spill_.empty()) return spill_.front().time;
  return kTickInvalid;
}

std::uint8_t EventQueue::nextEpsilon() const {
  HXWAR_DCHECK_MSG(!empty(), "nextEpsilon on an empty queue");
  if (ringCount_ != 0) {
    // The ring invariant guarantees every ring event precedes every spill
    // event (pushes inside the window go to the ring; drainSpill keeps
    // spill.top.time >= base_ + kRingSize), so the next event is in the ring.
    const std::uint32_t slot = slotOf(base_ + occupiedDistance());
    const Lane* bucket = &lanes_[static_cast<std::size_t>(slot) * kNumEpsilons];
    for (std::uint32_t e = 0; e < kNumEpsilons; ++e) {
      if (bucket[e].head < bucket[e].items.size()) return static_cast<std::uint8_t>(e);
    }
    HXWAR_CHECK_MSG(false, "occupancy bitmap out of sync with lanes");
  }
  return spill_.front().epsilon();
}

std::uint32_t EventQueue::occupiedDistance() const {
  constexpr std::uint32_t kWords = kRingSize / 64;
  const std::uint32_t start = slotOf(base_);
  const std::uint32_t startWord = start >> 6;
  const std::uint32_t startBit = start & 63;
  // Common case: an occupied bucket at or just after base_ within the first
  // bitmap word — one mask, one ctz.
  const std::uint64_t first = occupancy_[startWord] & (~std::uint64_t{0} << startBit);
  if (first != 0) return static_cast<std::uint32_t>(std::countr_zero(first)) - startBit;
  for (std::uint32_t i = 1; i <= kWords; ++i) {
    const std::uint32_t word = (startWord + i) & (kWords - 1);
    const std::uint64_t bits = occupancy_[word];
    if (bits != 0) {
      const std::uint32_t slot = word * 64 + static_cast<std::uint32_t>(std::countr_zero(bits));
      return (slot + kRingSize - start) & (kRingSize - 1);
    }
  }
  HXWAR_CHECK_MSG(false, "occupiedDistance on an empty ring");
  return 0;
}

void EventQueue::drainSpill() {
  // Migrate, in heap order == (tick, epsilon, seq) order, every spill event
  // that now falls inside the ring window. Heap order guarantees same-lane
  // events append in seq order, and the migration runs before any direct
  // push for these ticks can happen (pushes only see the new base after this
  // returns), so lane FIFO order remains global seq order.
  while (!spill_.empty() && spill_.front().time - base_ < kRingSize) {
    std::pop_heap(spill_.begin(), spill_.end(), EventAfter{});
    const Event e = spill_.back();
    spill_.pop_back();
    const std::uint32_t slot = slotOf(e.time);
    lanes_[slot * kNumEpsilons + e.epsilon()].items.push_back(LaneItem{e.component, e.tag});
    occupancy_[slot >> 6] |= std::uint64_t{1} << (slot & 63);
    ++ringCount_;
  }
}

Event EventQueue::pop() {
  HXWAR_DCHECK_MSG(!empty(), "pop from an empty queue");
  if (ringCount_ == 0) {
    // Everything pending is far-future: jump the window to it.
    base_ = spill_.front().time;
    drainSpill();
  } else {
    const std::uint32_t d = occupiedDistance();
    if (d != 0) {
      base_ += d;
      drainSpill();
    }
  }
  const std::uint32_t slot = slotOf(base_);
  Lane* bucket = &lanes_[static_cast<std::size_t>(slot) * kNumEpsilons];
  for (std::uint32_t e = 0; e < kNumEpsilons; ++e) {
    Lane& lane = bucket[e];
    if (lane.head >= lane.items.size()) continue;
    const LaneItem item = lane.items[lane.head++];
    --ringCount_;
    if (lane.head == lane.items.size()) {
      lane.items.clear();
      lane.head = 0;
      bool occupied = false;
      for (std::uint32_t k = 0; k < kNumEpsilons; ++k) {
        if (!bucket[k].items.empty()) {
          occupied = true;
          break;
        }
      }
      if (!occupied) occupancy_[slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
    }
    // Ring items carry no seq (lane position is the order); synthesize 0.
    return Event{base_, Event::packEpsSeq(static_cast<std::uint8_t>(e), 0), item.component,
                 item.tag};
  }
  HXWAR_CHECK_MSG(false, "occupancy bitmap out of sync with lanes");
  return {};
}

void EventQueue::reserve(std::size_t n) {
  // Spread the expected concurrent-event count over the ring. Bursty ticks
  // (every channel delivering at once) grow their lanes once and keep the
  // capacity — lanes are clear()ed, never shrunk, when drained.
  const std::size_t perLane = std::max<std::size_t>(4, n / kRingSize);
  for (auto& lane : lanes_) lane.items.reserve(perLane);
  spill_.reserve(std::min<std::size_t>(n, 4096));
}

}  // namespace hxwar::sim
