// Combined input/output-queued (CIOQ) router with virtual-channel flow
// control, matching the evaluation platform of the paper (Section 6):
//
//   * per-input-port, per-VC input buffers with credit-based backpressure
//   * routing + output-VC allocation when a head flit reaches an input
//     buffer front (re-evaluated every cycle while blocked, so adaptive
//     algorithms keep sensing congestion)
//   * crossbar with configurable speedup and traversal latency ("sufficient
//     speedup to ensure the internal router datapath is not a bottleneck")
//   * per-output-port, per-VC output queues draining one flit per cycle onto
//     the channel, age-based arbitration for both VC and channel scheduling
//
// Work is event-driven: the router only burns a cycle event when it has
// pending work, so large idle networks simulate cheaply.
//
// VC state is struct-of-arrays, indexed by code = port * numVcs + vc: the
// per-VC hot fields (queue, occupancy, credits, grant target, flag byte)
// live in parallel flat vectors instead of per-VC structs of deques, so the
// arbitration loops stream through contiguous memory and an idle VC costs 40
// bytes instead of a ~600-byte deque node. Cold per-router configuration
// stays in the single RouterConfig record.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ring.h"
#include "common/rng.h"
#include "common/types.h"
#include "fault/fault_policy.h"
#include "net/channel.h"
#include "net/lane.h"
#include "net/packet.h"
#include "net/packet_pool.h"
#include "routing/routing.h"
#include "sim/simulator.h"

namespace hxwar::net {

class Network;

// Output-channel and crossbar arbitration policy. The paper's platform uses
// age-based arbitration (§6); round-robin is the common cheap alternative
// and is exposed for ablations.
enum class ArbiterPolicy { kAgeBased, kRoundRobin };

struct RouterConfig {
  std::uint32_t numVcs = 8;
  ArbiterPolicy arbiter = ArbiterPolicy::kAgeBased;
  std::uint32_t inputBufferDepth = 16;  // flits per input VC (credits granted upstream)
  std::uint32_t outputQueueDepth = 8;   // flits per output VC
  std::uint32_t crossbarLatency = 4;    // cycles of crossbar traversal
  std::uint32_t inputSpeedup = 2;       // flits per input port per cycle into the crossbar
  double weightBias = 4.0;              // flits added to congestion before weighting (minimal-path stickiness)
  // Packet buffer flow control (virtual cut-through), as in the paper: an
  // output VC is granted only when the downstream buffer has room for the
  // whole packet, so packets never stall mid-stream across a channel.
  bool virtualCutThrough = true;
  // Dead-end ladder on a faulted network: what happens when every candidate
  // a routing algorithm emits targets a dead port (or the algorithm emits
  // none, e.g. an unreachable destination under a partition-tolerant
  // policy). See fault/fault_policy.h; irrelevant without a fault mask.
  fault::FaultPolicy faultPolicy = fault::FaultPolicy::kAbort;
  // `retry` policy: attempts before the dead end becomes an attributed drop,
  // and the base backoff in cycles (doubled per attempt, capped). Each retry
  // recomputes the route against the live mask, so a transient fault that
  // revives inside the backoff window rescues the packet.
  std::uint32_t faultRetryLimit = 8;
  Tick faultRetryBackoff = 16;
};

class Router final : public sim::Component, public FlitSink, public CreditSink {
 public:
  // `lane`/`stats`/`pools` locate this router's shard slots: counters go to
  // `stats` (written only by this shard's worker), and flit refs resolve
  // through the network's per-lane pool table `pools`.
  Router(sim::Simulator& sim, Network* network, RouterId id, std::uint32_t numPorts,
         const RouterConfig& config, routing::RoutingAlgorithm* routing,
         const routing::VcMap& vcMap, std::uint64_t rngSeed, std::uint32_t lane,
         LaneStats* stats, PacketPool* const* pools);

  // --- wiring (done by Network during construction) ---
  // Output side: the channel that carries flits out of `port`, and the
  // downstream input buffer depth backing our credit counters.
  void connectOutput(PortId port, FlitChannel* channel, std::uint32_t downstreamDepth);
  // Input side: the channel used to return credits upstream. nullptr is not
  // allowed — terminals also accept credits.
  void connectInputCredit(PortId port, CreditChannel* channel);
  void setTerminalPort(PortId port, bool isTerminal);
  // Installs the fault mask (set by Network on every router; nullptr = no
  // faults, keeping the fault logic entirely off the no-fault fast path).
  void setDeadPortMask(const fault::DeadPortMask* mask) { deadPorts_ = mask; }
  // Observability sink (set by Network::setObserver; nullptr = detached,
  // keeping instrumentation entirely off the hot path). Per-port stall
  // counters allocate lazily here so detached networks pay no memory.
  void setObserver(obs::NetObserver* observer) {
    obs_ = observer;
    if (observer != nullptr && outStalls_.empty()) {
      outStalls_.assign(numPorts_, 0);
    }
  }

  // --- sinks ---
  void receiveFlit(PortId port, VcId vc, Flit flit) override;
  void receiveCredit(PortId port, VcId vc) override;

  void processEvent(std::uint64_t tag) override;

  // --- queries used by routing algorithms ---
  RouterId id() const { return id_; }
  std::uint32_t numPorts() const { return numPorts_; }
  std::uint32_t numVcs() const { return config_.numVcs; }
  bool isTerminalPort(PortId port) const { return terminalPort_[port]; }
  Rng& rng() { return rng_; }
  const routing::VcMap& vcMap() const { return vcMap_; }

  // Average queued+in-flight flits per VC at this output port; the
  // "current detected congestion" input to the weight function.
  double congestionFlits(PortId port) const;

  // Total flits buffered in this router (diagnostics, drain checks).
  std::uint64_t bufferedFlits() const;

  // Flits sent on each output port since construction (link utilization).
  std::uint64_t portFlitsSent(PortId port) const { return outFlits_[port]; }
  // Deroute-flagged packet-head grants per output port (adaptivity telemetry).
  std::uint64_t portDeroutesGranted(PortId port) const { return outDeroutes_[port]; }
  // Cycles this output port wanted to send but had no credited VC (heatmap
  // stall attribution). Zero until an observer attaches (lazy allocation).
  std::uint64_t portCreditStallTicks(PortId port) const {
    return outStalls_.empty() ? 0 : outStalls_[port];
  }

  // Heap bytes owned by this router's state arrays (memory accounting);
  // sizeof(Router) itself is accounted by the owning DenseArray.
  std::size_t memoryBytes() const;

  // --- diagnostics (cold path: the credit-wait-cycle deadlock detector in
  // net/deadlock.cc walks the SoA VC state through these) ---
  std::uint32_t inQueueLen(PortId p, VcId v) const { return static_cast<std::uint32_t>(inQ_[code(p, v)].size()); }
  bool inIsRouted(PortId p, VcId v) const { return inFlags_[code(p, v)] & kInRouted; }
  // Dual semantics: while the head is routed these are the *granted* output;
  // while it is allocation-blocked (head present, !inIsRouted) they are the
  // output the last route attempt *wanted* and was denied, refreshed each
  // cycle (kPortInvalid/kVcInvalid before any attempt or after a dead end).
  PortId inGrantPort(PortId p, VcId v) const { return inOutPort_[code(p, v)]; }
  VcId inGrantVc(PortId p, VcId v) const { return inOutVc_[code(p, v)]; }
  std::uint32_t outQueueLen(PortId p, VcId v) const { return static_cast<std::uint32_t>(outQ_[code(p, v)].size()); }
  std::uint32_t outOccupancy(PortId p, VcId v) const { return outOcc_[code(p, v)]; }
  std::uint32_t outCreditsAt(PortId p, VcId v) const { return outCredits_[code(p, v)]; }
  bool outIsOwned(PortId p, VcId v) const { return outOwned_[code(p, v)]; }
  // Queued + in-crossbar flits at this output port, all VCs (O(1): the
  // maintained per-port sum the congestion query also reads).
  std::uint32_t portOutputOccupancy(PortId p) const { return outOccPort_[p]; }
  // Adds this router's buffered flits into `acc[vc]` (input queues + output
  // occupancy); acc must have >= numVcs entries. Flight-recorder VC heatmap.
  void vcOccupancyInto(std::vector<std::uint64_t>& acc) const {
    for (PortId p = 0; p < numPorts_; ++p) {
      for (VcId v = 0; v < config_.numVcs; ++v) {
        const std::uint32_t c = code(p, v);
        acc[v] += inQ_[c].size() + outOcc_[c];
      }
    }
  }

 private:
  // Per-input-VC flag byte (SoA: one byte per VC in inFlags_).
  static constexpr std::uint8_t kInRouted = 1u << 0;
  static constexpr std::uint8_t kInDeroute = 1u << 1;  // granted hop is a deroute (stats)
  // Mid-drop: the packet at the front hit a fault dead end before its tail
  // arrived; remaining flits are consumed (credits returned) on arrival.
  static constexpr std::uint8_t kInDropping = 1u << 2;
  static constexpr std::uint8_t kInRouteList = 1u << 3;
  static constexpr std::uint8_t kInXferList = 1u << 4;

  struct XbarEntry {
    Tick arrive;
    Flit flit;
    PortId outPort;
    VcId outVc;
  };

  static constexpr std::uint64_t kTagCycle = 0;
  static constexpr std::uint64_t kTagXbar = 1;

  std::uint32_t code(PortId p, VcId v) const { return p * config_.numVcs + v; }

  enum class RouteOutcome { kGranted, kBlocked, kDropped };

  void ensureCycle();
  void stageOutput();
  void stageCrossbar();
  void stageRoute();
  RouteOutcome tryRoute(PortId port, VcId vc);
  // Graceful-degradation ladder for a fault dead end (DESIGN.md §13):
  // abort records a deferred-fatal message and drops; drop drops; retry
  // backs the head off (bounded, exponential) before dropping; escape only
  // reaches here for genuinely unreachable destinations, which drop.
  RouteOutcome deadEnd(PortId port, VcId vc, const Packet& pkt);
  // Fault dead end: consume the front packet's queued flits (returning
  // credits) and finalize the drop once the tail is seen; flits still in
  // flight are consumed by receiveFlit while `kInDropping` is set.
  void startDrop(PortId port, VcId vc);
  void addRoutePending(PortId p, VcId v);
  void addXfer(PortId p, VcId v);
  void markOutputActive(PortId p);
  const Packet& packetOf(Flit f) const;
  Packet& packetOf(Flit f);

  Network* network_;
  PacketPool* const* pools_;  // per-lane pool table (flit refs resolve here)
  LaneStats* stats_;          // this shard's counter slots
  std::uint32_t lane_;
  RouterId id_;
  std::uint32_t numPorts_;
  RouterConfig config_;
  routing::RoutingAlgorithm* routing_;
  routing::VcMap vcMap_;
  const fault::DeadPortMask* deadPorts_ = nullptr;
  obs::NetObserver* obs_ = nullptr;
  Rng rng_;

  // --- input VC state, SoA over code = port * numVcs + vc ---
  std::vector<common::Ring<Flit>> inQ_;  // buffered flits (credit-bounded)
  std::vector<std::uint8_t> inFlags_;    // kIn* bits
  std::vector<PortId> inOutPort_;        // granted (routed) or wanted (blocked) output port
  std::vector<VcId> inOutVc_;            // granted (routed) or wanted (blocked) output VC
  // Retry-policy state, allocated only under faultPolicy == kRetry so the
  // default configuration pays no memory (the paper-scale budget gates
  // bytes/terminal): dead-end attempts so far and the earliest tick the head
  // may try again.
  std::vector<std::uint8_t> inRetries_;
  std::vector<Tick> retryAt_;

  // --- output VC state, SoA over the same code ---
  std::vector<common::Ring<Flit>> outQ_;   // flits that finished crossbar traversal
  std::vector<std::uint32_t> outOcc_;      // q size + flits in the crossbar pipe
  std::vector<std::uint32_t> outCredits_;  // downstream buffer slots available
  std::vector<std::uint8_t> outOwned_;     // allocated to a packet until its tail passes

  // --- per-port state ---
  std::vector<FlitChannel*> outChannel_;
  std::vector<CreditChannel*> inCredit_;
  std::vector<std::uint8_t> terminalPort_;
  std::vector<std::uint8_t> outputActive_;
  std::vector<std::uint32_t> outOccPort_;  // sum of per-VC occ per port (O(1) congestion)
  std::vector<std::uint64_t> outFlits_;
  std::vector<std::uint64_t> outDeroutes_;
  std::vector<std::uint64_t> outStalls_;  // lazy: sized only once observed
  std::vector<VcId> rrNext_;  // round-robin pointer per output port

  std::vector<std::uint32_t> routePending_;  // encoded port*numVcs+vc
  std::vector<std::uint32_t> xferList_;
  std::vector<std::uint32_t> activeOutPorts_;

  common::Ring<XbarEntry> xbarPipe_;
  Tick lastXbarArrival_ = kTickInvalid;  // one kTagXbar event per arrival tick

  bool cyclePending_ = false;
  Tick lastCycleTick_ = kTickInvalid;

  std::vector<routing::Candidate> scratchCandidates_;
  std::vector<std::uint32_t> scratchBest_;
};

}  // namespace hxwar::net
