// Combined input/output-queued (CIOQ) router with virtual-channel flow
// control, matching the evaluation platform of the paper (Section 6):
//
//   * per-input-port, per-VC input buffers with credit-based backpressure
//   * routing + output-VC allocation when a head flit reaches an input
//     buffer front (re-evaluated every cycle while blocked, so adaptive
//     algorithms keep sensing congestion)
//   * crossbar with configurable speedup and traversal latency ("sufficient
//     speedup to ensure the internal router datapath is not a bottleneck")
//   * per-output-port, per-VC output queues draining one flit per cycle onto
//     the channel, age-based arbitration for both VC and channel scheduling
//
// Work is event-driven: the router only burns a cycle event when it has
// pending work, so large idle networks simulate cheaply.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "net/channel.h"
#include "net/packet.h"
#include "routing/routing.h"
#include "sim/simulator.h"

namespace hxwar::net {

class Network;

// Output-channel and crossbar arbitration policy. The paper's platform uses
// age-based arbitration (§6); round-robin is the common cheap alternative
// and is exposed for ablations.
enum class ArbiterPolicy { kAgeBased, kRoundRobin };

struct RouterConfig {
  std::uint32_t numVcs = 8;
  ArbiterPolicy arbiter = ArbiterPolicy::kAgeBased;
  std::uint32_t inputBufferDepth = 16;  // flits per input VC (credits granted upstream)
  std::uint32_t outputQueueDepth = 8;   // flits per output VC
  std::uint32_t crossbarLatency = 4;    // cycles of crossbar traversal
  std::uint32_t inputSpeedup = 2;       // flits per input port per cycle into the crossbar
  double weightBias = 4.0;              // flits added to congestion before weighting (minimal-path stickiness)
  // Packet buffer flow control (virtual cut-through), as in the paper: an
  // output VC is granted only when the downstream buffer has room for the
  // whole packet, so packets never stall mid-stream across a channel.
  bool virtualCutThrough = true;
  // Dead-end policy on a faulted network: when every candidate a routing
  // algorithm emits targets a dead port, true drops the packet (counted by
  // the network) and false aborts loudly. Irrelevant without a fault mask.
  bool faultDropDeadEnd = false;
};

class Router final : public sim::Component, public FlitSink, public CreditSink {
 public:
  Router(sim::Simulator& sim, Network* network, RouterId id, std::uint32_t numPorts,
         const RouterConfig& config, routing::RoutingAlgorithm* routing,
         const routing::VcMap& vcMap, std::uint64_t rngSeed);

  // --- wiring (done by Network during construction) ---
  // Output side: the channel that carries flits out of `port`, and the
  // downstream input buffer depth backing our credit counters.
  void connectOutput(PortId port, FlitChannel* channel, std::uint32_t downstreamDepth);
  // Input side: the channel used to return credits upstream. nullptr is not
  // allowed — terminals also accept credits.
  void connectInputCredit(PortId port, CreditChannel* channel);
  void setTerminalPort(PortId port, bool isTerminal);
  // Installs the fault mask (set by Network on every router; nullptr = no
  // faults, keeping the fault logic entirely off the no-fault fast path).
  void setDeadPortMask(const fault::DeadPortMask* mask) { deadPorts_ = mask; }
  // Observability sink (set by Network::setObserver; nullptr = detached,
  // keeping instrumentation entirely off the hot path).
  void setObserver(obs::NetObserver* observer) { obs_ = observer; }

  // --- sinks ---
  void receiveFlit(PortId port, VcId vc, Flit flit) override;
  void receiveCredit(PortId port, VcId vc) override;

  void processEvent(std::uint64_t tag) override;

  // --- queries used by routing algorithms ---
  RouterId id() const { return id_; }
  std::uint32_t numPorts() const { return numPorts_; }
  std::uint32_t numVcs() const { return config_.numVcs; }
  bool isTerminalPort(PortId port) const { return terminalPort_[port]; }
  Rng& rng() { return rng_; }
  const routing::VcMap& vcMap() const { return vcMap_; }

  // Average queued+in-flight flits per VC at this output port; the
  // "current detected congestion" input to the weight function.
  double congestionFlits(PortId port) const;

  // Total flits buffered in this router (diagnostics, drain checks).
  std::uint64_t bufferedFlits() const;

  // Flits sent on each output port since construction (link utilization).
  std::uint64_t portFlitsSent(PortId port) const { return outFlits_[port]; }
  // Deroute-flagged packet-head grants per output port (adaptivity telemetry).
  std::uint64_t portDeroutesGranted(PortId port) const { return outDeroutes_[port]; }

 private:
  struct InVc {
    std::deque<Flit> q;
    bool routed = false;
    bool deroute = false;  // the granted hop is a deroute (for stats)
    // Mid-drop: the packet at the front hit a fault dead end before its tail
    // arrived; remaining flits are consumed (credits returned) on arrival.
    bool dropping = false;
    PortId outPort = kPortInvalid;
    VcId outVc = kVcInvalid;
    bool inRouteList = false;
    bool inXferList = false;
  };

  struct OutVc {
    std::deque<Flit> q;    // flits that finished crossbar traversal
    std::uint32_t occ = 0;  // q.size() + flits in the crossbar pipe
    std::uint32_t credits = 0;
    bool owned = false;  // allocated to a packet until its tail passes
  };

  struct XbarEntry {
    Tick arrive;
    Flit flit;
    PortId outPort;
    VcId outVc;
  };

  static constexpr std::uint64_t kTagCycle = 0;
  static constexpr std::uint64_t kTagXbar = 1;

  InVc& in(PortId p, VcId v) { return inputs_[p * config_.numVcs + v]; }
  const InVc& in(PortId p, VcId v) const { return inputs_[p * config_.numVcs + v]; }
  OutVc& out(PortId p, VcId v) { return outputs_[p * config_.numVcs + v]; }
  const OutVc& out(PortId p, VcId v) const { return outputs_[p * config_.numVcs + v]; }

  enum class RouteOutcome { kGranted, kBlocked, kDropped };

  void ensureCycle();
  void stageOutput();
  void stageCrossbar();
  void stageRoute();
  RouteOutcome tryRoute(PortId port, VcId vc);
  // Fault dead end: consume the front packet's queued flits (returning
  // credits) and finalize the drop once the tail is seen; flits still in
  // flight are consumed by receiveFlit while `dropping` is set.
  void startDrop(PortId port, VcId vc);
  void addRoutePending(PortId p, VcId v);
  void addXfer(PortId p, VcId v);
  void markOutputActive(PortId p);

  Network* network_;
  RouterId id_;
  std::uint32_t numPorts_;
  RouterConfig config_;
  routing::RoutingAlgorithm* routing_;
  routing::VcMap vcMap_;
  const fault::DeadPortMask* deadPorts_ = nullptr;
  obs::NetObserver* obs_ = nullptr;
  Rng rng_;

  std::vector<InVc> inputs_;    // [port][vc]
  std::vector<OutVc> outputs_;  // [port][vc]
  std::vector<FlitChannel*> outChannel_;
  std::vector<CreditChannel*> inCredit_;
  std::vector<std::uint8_t> terminalPort_;
  std::vector<std::uint8_t> outputActive_;
  std::vector<std::uint32_t> outOccPort_;  // sum of OutVc::occ per port (O(1) congestion)
  std::vector<std::uint64_t> outFlits_;
  std::vector<std::uint64_t> outDeroutes_;
  std::vector<VcId> rrNext_;  // round-robin pointer per output port

  std::vector<std::uint32_t> routePending_;  // encoded port*numVcs+vc
  std::vector<std::uint32_t> xferList_;
  std::vector<std::uint32_t> activeOutPorts_;

  std::deque<XbarEntry> xbarPipe_;
  Tick lastXbarArrival_ = kTickInvalid;  // one kTagXbar event per arrival tick

  bool cyclePending_ = false;
  Tick lastCycleTick_ = kTickInvalid;

  std::vector<routing::Candidate> scratchCandidates_;
  std::vector<std::uint32_t> scratchBest_;
};

}  // namespace hxwar::net
