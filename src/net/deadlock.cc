#include "net/deadlock.h"

#include <cstdint>
#include <sstream>
#include <vector>

#include "net/network.h"
#include "net/router.h"
#include "topo/topology.h"

namespace hxwar::net {
namespace {

constexpr std::uint64_t kNone = ~std::uint64_t{0};

struct Walker {
  const Network& net;
  const topo::Topology& topo;
  std::uint32_t numVcs;
  std::uint64_t stride;  // out-VC codes per router: maxPorts * numVcs

  std::uint64_t codeOf(RouterId r, PortId p, VcId v) const {
    return static_cast<std::uint64_t>(r) * stride + static_cast<std::uint64_t>(p) * numVcs + v;
  }
  RouterId routerOf(std::uint64_t code) const { return static_cast<RouterId>(code / stride); }
  PortId portOf(std::uint64_t code) const {
    return static_cast<PortId>((code % stride) / numVcs);
  }
  VcId vcOf(std::uint64_t code) const { return static_cast<VcId>(code % numVcs); }

  // An output VC that can make no forward progress: creditless while flits
  // wait on it — queued locally or in the crossbar pipe (transmission-
  // blocked), or filling the downstream input buffer it feeds (the upstream
  // half of an allocation-blocked wait edge).
  bool blocked(RouterId r, PortId p, VcId v) const {
    const Router& rt = net.router(r);
    if (rt.outCreditsAt(p, v) != 0) return false;
    if (rt.outQueueLen(p, v) > 0 || rt.outOccupancy(p, v) > 0) return true;
    const auto target = topo.portTarget(r, p);
    if (target.kind != topo::Topology::PortTarget::Kind::kRouter) return false;
    return net.router(target.router).inQueueLen(target.port, v) > 0;
  }

  // The output VC this blocked one waits-for, or kNone when the chain ends
  // (terminal port, idle downstream head, or a draining successor). A routed
  // downstream head waits on its granted output; an unrouted one waits on the
  // output its last allocation attempt was denied (recorded by the router on
  // every blocked attempt — see Router::inGrantPort).
  std::uint64_t successor(RouterId r, PortId p, VcId v) const {
    const auto target = topo.portTarget(r, p);
    if (target.kind != topo::Topology::PortTarget::Kind::kRouter) return kNone;
    const RouterId r2 = target.router;
    const PortId p2 = target.port;
    const Router& rt2 = net.router(r2);
    if (rt2.inQueueLen(p2, v) == 0) return kNone;
    const PortId gp = rt2.inGrantPort(p2, v);
    const VcId gv = rt2.inGrantVc(p2, v);
    if (gp == kPortInvalid || gv == kVcInvalid) return kNone;
    if (!blocked(r2, gp, gv)) return kNone;
    return codeOf(r2, gp, gv);
  }
};

}  // namespace

std::string findCreditWaitCycle(const Network& network) {
  Walker w{network, network.topology(), network.config().router.numVcs,
           static_cast<std::uint64_t>(network.maxPorts()) * network.config().router.numVcs};

  // Color the out-VC nodes: 0 = unvisited, 1 = on the current chain,
  // 2 = finished (leads out of any cycle). Chains are simple paths — each
  // node has at most one successor — so the walk is linear overall.
  std::vector<std::uint8_t> color(network.numRouters() * w.stride, 0);
  std::vector<std::uint64_t> chain;

  for (RouterId r = 0; r < network.numRouters(); ++r) {
    const std::uint32_t ports = network.router(r).numPorts();
    for (PortId p = 0; p < ports; ++p) {
      for (VcId v = 0; v < w.numVcs; ++v) {
        if (!w.blocked(r, p, v) || color[w.codeOf(r, p, v)] != 0) continue;
        chain.clear();
        std::uint64_t cur = w.codeOf(r, p, v);
        while (cur != kNone && color[cur] == 0) {
          color[cur] = 1;
          chain.push_back(cur);
          cur = w.successor(w.routerOf(cur), w.portOf(cur), w.vcOf(cur));
        }
        if (cur != kNone && color[cur] == 1) {
          // Found: `cur` closes a cycle within the current chain. Trim the
          // lead-in tail so only the cycle proper is reported.
          std::size_t start = 0;
          while (chain[start] != cur) start += 1;
          std::ostringstream out;
          out << "credit-wait cycle (" << (chain.size() - start) << " links):";
          for (std::size_t i = start; i < chain.size(); ++i) {
            const std::uint64_t c = chain[i];
            const RouterId cr = w.routerOf(c);
            const PortId cp = w.portOf(c);
            const VcId cv = w.vcOf(c);
            const Router& rt = network.router(cr);
            const auto target = network.topology().portTarget(cr, cp);
            const Router& rt2 = network.router(target.router);
            out << "\n  router " << cr << " port " << cp << " vc " << static_cast<int>(cv)
                << ": " << rt.outQueueLen(cp, cv) << " flits queued, 0 credits -> "
                << "router " << target.router << " port " << target.port << " vc "
                << static_cast<int>(cv) << " (" << rt2.inQueueLen(target.port, cv)
                << " buffered, "
                << (rt2.inIsRouted(target.port, cv) ? "granted to" : "head waiting for")
                << " port " << static_cast<int>(rt2.inGrantPort(target.port, cv))
                << " vc " << static_cast<int>(rt2.inGrantVc(target.port, cv)) << ")";
          }
          out << "\n  ... closing back to router " << w.routerOf(cur) << " port "
              << w.portOf(cur) << " vc " << static_cast<int>(w.vcOf(cur));
          return out.str();
        }
        for (const std::uint64_t c : chain) color[c] = 2;
      }
    }
  }

  // No creditless cycle: look for an allocation-wait cycle over input heads.
  // An atomic-allocation algorithm (DAL, paper §4.2) grants an output VC only
  // when the downstream buffer it feeds is completely empty, so the network
  // can wedge with credits everywhere: every head is denied because the
  // buffer it wants still holds flits whose own heads are denied in turn.
  // Nodes are input VCs whose head is allocation-blocked (present, unrouted,
  // with a recorded wanted output — refreshed every cycle); the wait edge
  // follows the wanted port to the downstream input buffer it must drain.
  std::vector<std::uint8_t> inColor(network.numRouters() * w.stride, 0);
  std::vector<std::uint64_t> chain2;
  const auto inBlocked = [&](RouterId r, PortId p, VcId v) {
    const Router& rt = network.router(r);
    return rt.inQueueLen(p, v) > 0 && !rt.inIsRouted(p, v) &&
           rt.inGrantPort(p, v) != kPortInvalid && rt.inGrantVc(p, v) != kVcInvalid;
  };
  const auto inSuccessor = [&](RouterId r, PortId p, VcId v) -> std::uint64_t {
    const Router& rt = network.router(r);
    const PortId wp = rt.inGrantPort(p, v);
    const VcId wv = rt.inGrantVc(p, v);
    const auto target = network.topology().portTarget(r, wp);
    if (target.kind != topo::Topology::PortTarget::Kind::kRouter) return kNone;
    if (!inBlocked(target.router, target.port, wv)) return kNone;
    return w.codeOf(target.router, target.port, wv);
  };
  for (RouterId r = 0; r < network.numRouters(); ++r) {
    const std::uint32_t ports = network.router(r).numPorts();
    for (PortId p = 0; p < ports; ++p) {
      for (VcId v = 0; v < w.numVcs; ++v) {
        if (!inBlocked(r, p, v) || inColor[w.codeOf(r, p, v)] != 0) continue;
        chain2.clear();
        std::uint64_t cur = w.codeOf(r, p, v);
        while (cur != kNone && inColor[cur] == 0) {
          inColor[cur] = 1;
          chain2.push_back(cur);
          cur = inSuccessor(w.routerOf(cur), w.portOf(cur), w.vcOf(cur));
        }
        if (cur != kNone && inColor[cur] == 1) {
          std::size_t start = 0;
          while (chain2[start] != cur) start += 1;
          std::ostringstream out;
          out << "allocation-wait cycle (" << (chain2.size() - start) << " links):";
          for (std::size_t i = start; i < chain2.size(); ++i) {
            const std::uint64_t c = chain2[i];
            const RouterId cr = w.routerOf(c);
            const PortId cp = w.portOf(c);
            const VcId cv = w.vcOf(c);
            const Router& rt = network.router(cr);
            out << "\n  router " << cr << " input port " << cp << " vc "
                << static_cast<int>(cv) << ": " << rt.inQueueLen(cp, cv)
                << " buffered, head denied output port "
                << static_cast<int>(rt.inGrantPort(cp, cv)) << " vc "
                << static_cast<int>(rt.inGrantVc(cp, cv));
          }
          out << "\n  ... closing back to router " << w.routerOf(cur) << " input port "
              << w.portOf(cur) << " vc " << static_cast<int>(w.vcOf(cur));
          return out.str();
        }
        for (const std::uint64_t c : chain2) inColor[c] = 2;
      }
    }
  }
  return std::string();
}

}  // namespace hxwar::net
