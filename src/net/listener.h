// NetListener: the network's packet-lifecycle notification interface.
//
// Replaces the old std::function EjectionListener/DropListener/HopListener
// trio. A std::function dispatch costs an indirect call through a type-erased
// thunk plus (for capturing lambdas) a heap-allocated closure; an interface
// pointer is one branch when unset and one virtual call when set, and the
// hop hook sits on the per-head-flit hot path. Attach with
// Network::setListener (ejection + drop) / Network::setHopListener (hops) —
// the two slots are separate so measurement code listening for ejections does
// not drag a no-op virtual call into every switch-allocation grant.
#pragma once

#include <functional>

#include "common/types.h"
#include "net/packet.h"

namespace hxwar::net {

class NetListener {
 public:
  virtual ~NetListener() = default;

  // Packet fully reassembled at its destination, about to be recycled.
  virtual void onPacketEjected(const Packet& /*pkt*/) {}
  // Packet dropped at a fault dead end, about to be recycled.
  virtual void onPacketDropped(const Packet& /*pkt*/) {}
  // A packet's head flit won switch allocation at `router` (hop-listener
  // slot only; see Network::setHopListener).
  virtual void onHop(const Packet& /*pkt*/, RouterId /*router*/, PortId /*inPort*/,
                     PortId /*outPort*/, Tick /*now*/) {}
};

// Adapter for tests and tools that want ad-hoc lambdas without declaring a
// listener class. The std::function indirection is paid only by code that
// opts into this adapter; the simulator's own layers implement NetListener
// directly.
class CallbackListener final : public NetListener {
 public:
  std::function<void(const Packet&)> ejected;
  std::function<void(const Packet&)> dropped;
  std::function<void(const Packet&, RouterId, PortId, PortId, Tick)> hop;

  void onPacketEjected(const Packet& pkt) override {
    if (ejected) ejected(pkt);
  }
  void onPacketDropped(const Packet& pkt) override {
    if (dropped) dropped(pkt);
  }
  void onHop(const Packet& pkt, RouterId router, PortId inPort, PortId outPort,
             Tick now) override {
    if (hop) hop(pkt, router, inPort, outPort, now);
  }
};

}  // namespace hxwar::net
