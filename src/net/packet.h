// Packets and flits.
//
// A packet is the unit of routing; a flit is the unit of flow control. Flits
// are lightweight (pointer + index) and are passed by value through buffers
// and channels. The packet object carries measurement timestamps and the
// per-packet routing scratch state used by source-adaptive algorithms
// (Valiant/UGAL/Clos-AD intermediate address, DAL deroute mask). DimWAR and
// OmniWAR deliberately do not read this scratch state: everything they need
// is derived from the input VC class and the destination, mirroring the
// paper's claim that they need no extra packet contents.
#pragma once

#include <cstdint>

#include "common/types.h"

namespace hxwar::net {

struct Packet {
  PacketId id = 0;
  NodeId src = kNodeInvalid;
  NodeId dst = kNodeInvalid;
  std::uint32_t sizeFlits = 1;

  Tick createdAt = 0;               // entered the source queue (age basis)
  Tick injectedAt = kTickInvalid;   // head flit left the terminal
  Tick ejectedAt = kTickInvalid;    // tail flit absorbed at destination

  std::uint16_t hops = 0;      // router-to-router hops taken
  std::uint16_t deroutes = 0;  // non-minimal hops taken

  // --- routing scratch (source-adaptive algorithms only) ---
  RouterId intermediate = kRouterInvalid;  // VAL/UGAL/Clos-AD
  bool phase2 = false;                     // reached the intermediate router
  bool minimalCommitted = false;           // UGAL chose the minimal route
  std::uint32_t deroutedDims = 0;          // DAL: bitmask of derouted dims

  // --- destination-side reassembly ---
  std::uint32_t arrivedFlits = 0;

  // --- application linkage (nullptr for synthetic traffic) ---
  void* appMessage = nullptr;
  std::uint32_t msgSeq = 0;  // packet index within its message
};

struct Flit {
  Packet* packet = nullptr;
  std::uint32_t index = 0;

  bool isHead() const { return index == 0; }
  bool isTail() const { return index + 1 == packet->sizeFlits; }
};

}  // namespace hxwar::net
