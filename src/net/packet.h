// Packets and flits.
//
// A packet is the unit of routing; a flit is the unit of flow control. Flits
// are 8-byte values (arena slot ref + index/tail word) passed by value
// through buffers and channels; the owning Packet lives in the network's
// PacketPool slab and is resolved from the slot ref only where packet fields
// are actually needed (age arbitration, hop counting, reassembly). The packet
// object carries measurement timestamps and the per-packet routing scratch
// state used by source-adaptive algorithms (Valiant/UGAL/Clos-AD intermediate
// address, DAL deroute mask). DimWAR and OmniWAR deliberately do not read
// this scratch state: everything they need is derived from the input VC class
// and the destination, mirroring the paper's claim that they need no extra
// packet contents.
#pragma once

#include <cstdint>

#include "common/types.h"

namespace hxwar::net {

// Fields are ordered by alignment (8-byte, then 4-byte, then narrower) so
// the struct carries no interior padding — packets are pool-recycled by the
// thousand and every byte of the record is hot in the age-based arbiter.
struct Packet {
  // --- 8-byte fields ---
  PacketId id = 0;
  Tick createdAt = 0;               // entered the source queue (age basis)
  Tick injectedAt = kTickInvalid;   // head flit left the terminal
  Tick ejectedAt = kTickInvalid;    // tail flit absorbed at destination
  void* appMessage = nullptr;       // application linkage (nullptr = synthetic)

  // --- 4-byte fields ---
  NodeId src = kNodeInvalid;
  NodeId dst = kNodeInvalid;
  std::uint32_t sizeFlits = 1;
  RouterId intermediate = kRouterInvalid;  // routing scratch: VAL/UGAL/Clos-AD
  std::uint32_t deroutedDims = 0;          // routing scratch: DAL derouted-dims mask
  std::uint32_t arrivedFlits = 0;          // destination-side reassembly
  std::uint32_t msgSeq = 0;                // packet index within its message
  PacketRef slot = kPacketRefInvalid;      // own slab slot (set once by PacketPool)

  // --- narrow fields ---
  std::uint16_t hops = 0;         // router-to-router hops taken
  std::uint16_t deroutes = 0;     // non-minimal hops taken
  bool phase2 = false;            // routing scratch: reached the intermediate
  bool minimalCommitted = false;  // routing scratch: UGAL chose minimal
};

static_assert(sizeof(Packet) == 80,
              "Packet must stay padding-free: 5x8 + 8x4 + 2x2 + 2x1 rounded to 80");

// A flit names its packet by slab slot, not pointer: half the size of the old
// {Packet*, index} pair, which halves every VC buffer and channel pipe, and a
// 4-byte ref partitions across workers where a heap pointer cannot. The tail
// flag rides in the top bit of the index word so flow control (tail frees the
// VC, finalizes drops, completes reassembly) never has to resolve the packet.
struct Flit {
  static constexpr std::uint32_t kTailBit = 0x80000000u;

  PacketRef packet = kPacketRefInvalid;
  std::uint32_t bits = 0;  // [31] = tail flag, [30:0] = flit index

  std::uint32_t index() const { return bits & ~kTailBit; }
  bool isHead() const { return index() == 0; }
  bool isTail() const { return (bits & kTailBit) != 0; }
};

static_assert(sizeof(Flit) == 8, "Flit must stay an 8-byte value type");

inline Flit makeFlit(PacketRef packet, std::uint32_t index, bool tail) {
  return Flit{packet, index | (tail ? Flit::kTailBit : 0u)};
}

}  // namespace hxwar::net
