// Per-shard ("lane") mutable network state.
//
// Sharded execution partitions routers and terminals across worker threads;
// every piece of network state a component mutates on the hot path must be
// written by exactly one shard. LaneStats groups those per-shard slots:
// counters (summed on read, which only happens at window barriers or after a
// run), the lane's listener/observer hooks, and the deferred-free list for
// packet slots owned by another lane's pool. A single-shard network is lane 0
// everywhere, so the serial engine runs the identical code path.
//
// All counters are commutative accumulations (sums of deltas), so the lane
// split cannot change any observable total — a requirement for bit-identical
// serial/parallel replay (DESIGN.md §12).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace hxwar::obs {
class NetObserver;
}

namespace hxwar::net {

class NetListener;

struct alignas(64) LaneStats {
  std::uint64_t flitMovements = 0;
  std::uint64_t flitsInjected = 0;
  std::uint64_t flitsEjected = 0;
  std::uint64_t packetsCreated = 0;
  std::uint64_t packetsEjected = 0;
  std::uint64_t packetsDropped = 0;
  std::uint64_t flitsDropped = 0;
  // Signed: a packet injects (increments) at its source lane but completes
  // (decrements) at its destination lane, so a single lane can go negative.
  std::int64_t packetsInFlight = 0;
  std::int64_t backlogFlits = 0;

  // Packet slots freed by this lane but owned by another lane's pool; the
  // engine's barrier hook recycles them into the owning pools while workers
  // are parked (Network::drainDeferredFrees).
  std::vector<PacketRef> deferredFrees;

  // Deferred-fatal slot for the `abort` fault policy: a router that hits a
  // dead end records the first message here (worker-thread code must never
  // throw — the harness reads the slots between windows, with workers
  // parked, and raises hxwar::Error on its own thread; DESIGN.md §13). The
  // first message per lane is deterministic, so the error the harness
  // reports is identical for any --point-jobs value.
  std::string fatalError;

  NetListener* listener = nullptr;     // ejection + drop
  NetListener* hopListener = nullptr;  // per-hop
  obs::NetObserver* observer = nullptr;
};

}  // namespace hxwar::net
