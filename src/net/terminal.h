// Network endpoint: injects packets flit-by-flit (credit limited) and
// reassembles arriving packets. The source queue is open-loop and unbounded;
// packet latency is measured from enqueue time so source queueing counts,
// which is what makes saturation visible in the load-latency curves.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ring.h"
#include "common/types.h"
#include "net/channel.h"
#include "net/lane.h"
#include "net/packet.h"
#include "net/packet_pool.h"
#include "sim/simulator.h"

namespace hxwar::net {

class Network;

class Terminal final : public sim::Component, public FlitSink, public CreditSink {
 public:
  // `lane`/`stats`/`pools`: the terminal's shard slots (same as its router's);
  // see Router. Arriving flit refs may point into any lane's pool.
  Terminal(sim::Simulator& sim, Network* network, NodeId id, std::uint32_t numVcs,
           std::uint32_t lane, LaneStats* stats, PacketPool* const* pools);

  // --- wiring ---
  void connectOutput(FlitChannel* toRouter, std::uint32_t routerInputDepth);
  void connectInputCredit(CreditChannel* toRouter);

  // --- injection ---
  // The packet stays owned by the network's pool slab; createdAt is stamped
  // here and the 4-byte slot ref is queued until the last flit enters the
  // network.
  void enqueuePacket(Packet* pkt);

  std::size_t sourceQueuePackets() const { return sourceQueue_.size(); }
  std::uint64_t sourceQueueFlits() const { return sourceQueueFlits_; }
  std::uint64_t flitsInjected() const { return flitsInjected_; }
  std::uint64_t flitsEjected() const { return flitsEjected_; }
  NodeId nodeId() const { return id_; }

  // Heap bytes owned by this terminal's queues (memory accounting).
  std::size_t memoryBytes() const {
    return sourceQueue_.capacityBytes() + credits_.capacity() * sizeof(std::uint32_t);
  }

  // --- sinks ---
  void receiveFlit(PortId port, VcId vc, Flit flit) override;  // ejection
  void receiveCredit(PortId port, VcId vc) override;           // injection credits

  void processEvent(std::uint64_t tag) override;

 private:
  void ensureCycle();
  void injectionCycle();

  Network* network_;
  PacketPool* const* pools_;  // per-lane pool table (flit refs resolve here)
  LaneStats* stats_;          // this shard's counter slots
  std::uint32_t lane_;
  NodeId id_;
  std::uint32_t numVcs_;

  FlitChannel* toRouter_ = nullptr;
  CreditChannel* creditReturn_ = nullptr;
  std::vector<std::uint32_t> credits_;  // per VC toward the router

  common::Ring<PacketRef> sourceQueue_;
  std::uint64_t sourceQueueFlits_ = 0;
  std::uint32_t nextFlit_ = 0;   // index within the packet being injected
  VcId currentVc_ = kVcInvalid;  // VC pinned for the packet being injected

  std::uint64_t flitsInjected_ = 0;
  std::uint64_t flitsEjected_ = 0;

  bool cyclePending_ = false;
  Tick lastCycleTick_ = kTickInvalid;
};

}  // namespace hxwar::net
