// Point-to-point channels with fixed latency.
//
// A FlitChannel carries one flit per cycle in one direction; a CreditChannel
// carries credit returns the other way. Both are FIFO pipes: the sender calls
// send() (at most once per cycle for flits, checked), the channel schedules
// itself, and on delivery invokes the sink callback at epsilon kEpsDeliver so
// receivers observe arrivals before their own cycle processing.
//
// A channel's identity is its ChannelId index in the network's dense channel
// arrays; the in-flight pipe is a Ring (16-byte header, nothing allocated
// while idle) because paper-scale networks carry tens of thousands of mostly
// idle channels.
//
// Sharded execution: a channel is a Component of the simulator that owns its
// *receiver*. When the network classifies a channel cross-shard at build
// time (bindRemote), send() no longer schedules — the sender's shard posts
// (arrival, payload) into its outbox and the parallel engine replays the
// post into this channel via deliverRemote() at the next barrier. The
// receiver-side event structure (one delivery event per flit send, one per
// distinct credit-arrival tick) is identical to the local path, which is
// what keeps the sharded replay bit-identical to the serial engine.
#pragma once

#include "common/assert.h"
#include "common/ring.h"
#include "common/types.h"
#include "net/packet.h"
#include "sim/par/mailbox.h"
#include "sim/simulator.h"

namespace hxwar::net {

class FlitSink {
 public:
  virtual ~FlitSink() = default;
  virtual void receiveFlit(PortId port, VcId vc, Flit flit) = 0;
};

class CreditSink {
 public:
  virtual ~CreditSink() = default;
  virtual void receiveCredit(PortId port, VcId vc) = 0;
};

class FlitChannel final : public sim::Component {
 public:
  FlitChannel(sim::Simulator& sim, Tick latency, FlitSink* sink, PortId sinkPort)
      : Component(sim), latency_(latency), srcSim_(&sim), sink_(sink), sinkPort_(sinkPort) {
    HXWAR_CHECK_MSG(latency_ >= 1, "channel latency must be >= 1 cycle");
  }

  // Classifies this channel cross-shard: the sender lives in `srcSim`'s
  // shard and sends become posts into `outbox` (the sender shard's mailbox
  // toward the receiver shard). Called once during network wiring.
  void bindRemote(sim::Simulator* srcSim, std::vector<sim::par::RemotePost>* outbox) {
    srcSim_ = srcSim;
    outbox_ = outbox;
  }

  // Sends a flit on virtual channel `vc`; delivery after `latency_` cycles.
  void send(VcId vc, Flit flit) {
    const Tick now = srcSim_->now();
    HXWAR_CHECK_MSG(lastSend_ != now,
                    "flit channel overdriven (more than one flit per cycle)");
    lastSend_ = now;
    const Tick arrival = now + latency_;
    if (outbox_ != nullptr) {
      outbox_->push_back(sim::par::RemotePost{
          arrival, this, (static_cast<std::uint64_t>(flit.packet) << 32) | flit.bits, vc});
      return;
    }
    inflight_.push_back(Entry{arrival, vc, flit});
    sim().schedule(arrival, sim::kEpsDeliver, this, 0);
  }

  // Barrier replay of a cross-shard send: same inflight push and same
  // one-event-per-send schedule the local path would have done.
  void deliverRemote(Tick time, std::uint64_t a, std::uint32_t b) override {
    const Flit flit{static_cast<PacketRef>(a >> 32), static_cast<std::uint32_t>(a)};
    inflight_.push_back(Entry{time, static_cast<VcId>(b), flit});
    sim().schedule(time, sim::kEpsDeliver, this, 0);
  }

  void processEvent(std::uint64_t) override {
    HXWAR_CHECK(!inflight_.empty());
    const Entry e = inflight_.front();
    HXWAR_CHECK(e.arrival == sim().now());
    inflight_.pop_front();
    sink_->receiveFlit(sinkPort_, e.vc, e.flit);
  }

  Tick latency() const { return latency_; }
  bool isRemote() const { return outbox_ != nullptr; }
  std::size_t inflightFlits() const { return inflight_.size(); }
  std::size_t memoryBytes() const { return inflight_.capacityBytes(); }

 private:
  struct Entry {
    Tick arrival;
    VcId vc;
    Flit flit;
  };

  Tick latency_;
  sim::Simulator* srcSim_;  // sender shard's clock (== &sim() when local)
  std::vector<sim::par::RemotePost>* outbox_ = nullptr;  // non-null = cross-shard
  FlitSink* sink_;
  PortId sinkPort_;
  common::Ring<Entry> inflight_;
  Tick lastSend_ = kTickInvalid;
};

class CreditChannel final : public sim::Component {
 public:
  CreditChannel(sim::Simulator& sim, Tick latency, CreditSink* sink, PortId sinkPort)
      : Component(sim), latency_(latency), srcSim_(&sim), sink_(sink), sinkPort_(sinkPort) {
    HXWAR_CHECK_MSG(latency_ >= 1, "channel latency must be >= 1 cycle");
  }

  // See FlitChannel::bindRemote. Credits post one RemotePost each; the
  // arrival-tick coalescing below moves to the receiver side (deliverRemote),
  // so the event structure matches the local path exactly.
  void bindRemote(sim::Simulator* srcSim, std::vector<sim::par::RemotePost>* outbox) {
    srcSim_ = srcSim;
    outbox_ = outbox;
  }

  // Unlike flits, many credits can enter a channel in one cycle (the crossbar
  // frees one input-buffer slot per flit it moves). Same-arrival-tick sends
  // coalesce into a single delivery event that drains them all: credit
  // application is commutative (each is `credits += 1` downstream), so the
  // batch is replay-identical to one event per credit (DESIGN.md §10).
  void send(VcId vc) {
    const Tick arrival = srcSim_->now() + latency_;
    if (outbox_ != nullptr) {
      outbox_->push_back(sim::par::RemotePost{arrival, this, vc, 0});
      return;
    }
    inflight_.push_back(Entry{arrival, vc});
    if (lastArrival_ != arrival) {
      lastArrival_ = arrival;
      sim().schedule(arrival, sim::kEpsDeliver, this, 0);
    }
  }

  // Barrier replay of a cross-shard credit. Posts from one sender arrive in
  // send order (ascending arrival), so the lastArrival_ coalescing behaves
  // exactly as it does on the sender side locally.
  void deliverRemote(Tick time, std::uint64_t a, std::uint32_t) override {
    inflight_.push_back(Entry{time, static_cast<VcId>(a)});
    if (lastArrival_ != time) {
      lastArrival_ = time;
      sim().schedule(time, sim::kEpsDeliver, this, 0);
    }
  }

  void processEvent(std::uint64_t) override {
    HXWAR_CHECK(!inflight_.empty() && inflight_.front().arrival == sim().now());
    do {
      const Entry e = inflight_.front();
      inflight_.pop_front();
      sink_->receiveCredit(sinkPort_, e.vc);
    } while (!inflight_.empty() && inflight_.front().arrival == sim().now());
  }

  std::size_t memoryBytes() const { return inflight_.capacityBytes(); }

 private:
  struct Entry {
    Tick arrival;
    VcId vc;
  };

  Tick latency_;
  sim::Simulator* srcSim_;  // sender shard's clock (== &sim() when local)
  std::vector<sim::par::RemotePost>* outbox_ = nullptr;  // non-null = cross-shard
  CreditSink* sink_;
  PortId sinkPort_;
  common::Ring<Entry> inflight_;
  Tick lastArrival_ = kTickInvalid;  // one delivery event per arrival tick
};

}  // namespace hxwar::net
