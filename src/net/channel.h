// Point-to-point channels with fixed latency.
//
// A FlitChannel carries one flit per cycle in one direction; a CreditChannel
// carries credit returns the other way. Both are FIFO pipes: the sender calls
// send() (at most once per cycle for flits, checked), the channel schedules
// itself, and on delivery invokes the sink callback at epsilon kEpsDeliver so
// receivers observe arrivals before their own cycle processing.
//
// A channel's identity is its ChannelId index in the network's dense channel
// arrays; the in-flight pipe is a Ring (16-byte header, nothing allocated
// while idle) because paper-scale networks carry tens of thousands of mostly
// idle channels.
#pragma once

#include "common/assert.h"
#include "common/ring.h"
#include "common/types.h"
#include "net/packet.h"
#include "sim/simulator.h"

namespace hxwar::net {

class FlitSink {
 public:
  virtual ~FlitSink() = default;
  virtual void receiveFlit(PortId port, VcId vc, Flit flit) = 0;
};

class CreditSink {
 public:
  virtual ~CreditSink() = default;
  virtual void receiveCredit(PortId port, VcId vc) = 0;
};

class FlitChannel final : public sim::Component {
 public:
  FlitChannel(sim::Simulator& sim, Tick latency, FlitSink* sink, PortId sinkPort)
      : Component(sim), latency_(latency), sink_(sink), sinkPort_(sinkPort) {
    HXWAR_CHECK_MSG(latency_ >= 1, "channel latency must be >= 1 cycle");
  }

  // Sends a flit on virtual channel `vc`; delivery after `latency_` cycles.
  void send(VcId vc, Flit flit) {
    HXWAR_CHECK_MSG(lastSend_ != sim().now(),
                    "flit channel overdriven (more than one flit per cycle)");
    lastSend_ = sim().now();
    inflight_.push_back(Entry{sim().now() + latency_, vc, flit});
    sim().schedule(sim().now() + latency_, sim::kEpsDeliver, this, 0);
  }

  void processEvent(std::uint64_t) override {
    HXWAR_CHECK(!inflight_.empty());
    const Entry e = inflight_.front();
    HXWAR_CHECK(e.arrival == sim().now());
    inflight_.pop_front();
    sink_->receiveFlit(sinkPort_, e.vc, e.flit);
  }

  Tick latency() const { return latency_; }
  std::size_t inflightFlits() const { return inflight_.size(); }
  std::size_t memoryBytes() const { return inflight_.capacityBytes(); }

 private:
  struct Entry {
    Tick arrival;
    VcId vc;
    Flit flit;
  };

  Tick latency_;
  FlitSink* sink_;
  PortId sinkPort_;
  common::Ring<Entry> inflight_;
  Tick lastSend_ = kTickInvalid;
};

class CreditChannel final : public sim::Component {
 public:
  CreditChannel(sim::Simulator& sim, Tick latency, CreditSink* sink, PortId sinkPort)
      : Component(sim), latency_(latency), sink_(sink), sinkPort_(sinkPort) {
    HXWAR_CHECK_MSG(latency_ >= 1, "channel latency must be >= 1 cycle");
  }

  // Unlike flits, many credits can enter a channel in one cycle (the crossbar
  // frees one input-buffer slot per flit it moves). Same-arrival-tick sends
  // coalesce into a single delivery event that drains them all: credit
  // application is commutative (each is `credits += 1` downstream), so the
  // batch is replay-identical to one event per credit (DESIGN.md §10).
  void send(VcId vc) {
    const Tick arrival = sim().now() + latency_;
    inflight_.push_back(Entry{arrival, vc});
    if (lastArrival_ != arrival) {
      lastArrival_ = arrival;
      sim().schedule(arrival, sim::kEpsDeliver, this, 0);
    }
  }

  void processEvent(std::uint64_t) override {
    HXWAR_CHECK(!inflight_.empty() && inflight_.front().arrival == sim().now());
    do {
      const Entry e = inflight_.front();
      inflight_.pop_front();
      sink_->receiveCredit(sinkPort_, e.vc);
    } while (!inflight_.empty() && inflight_.front().arrival == sim().now());
  }

  std::size_t memoryBytes() const { return inflight_.capacityBytes(); }

 private:
  struct Entry {
    Tick arrival;
    VcId vc;
  };

  Tick latency_;
  CreditSink* sink_;
  PortId sinkPort_;
  common::Ring<Entry> inflight_;
  Tick lastArrival_ = kTickInvalid;  // one delivery event per arrival tick
};

}  // namespace hxwar::net
