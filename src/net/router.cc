#include "net/router.h"

#include <algorithm>
#include <limits>
#include <string>

#include "common/assert.h"
#include "net/network.h"
#include "obs/net_observer.h"

namespace hxwar::net {
namespace {

// Age-based priority: older packets (smaller createdAt) win; packet id breaks
// ties deterministically.
bool olderThan(const Packet& a, const Packet& b) {
  if (a.createdAt != b.createdAt) return a.createdAt < b.createdAt;
  return a.id < b.id;
}

}  // namespace

Router::Router(sim::Simulator& sim, Network* network, RouterId id, std::uint32_t numPorts,
               const RouterConfig& config, routing::RoutingAlgorithm* routing,
               const routing::VcMap& vcMap, std::uint64_t rngSeed, std::uint32_t lane,
               LaneStats* stats, PacketPool* const* pools)
    : Component(sim),
      network_(network),
      pools_(pools),
      stats_(stats),
      lane_(lane),
      id_(id),
      numPorts_(numPorts),
      config_(config),
      routing_(routing),
      vcMap_(vcMap),
      rng_(rngSeed),
      inQ_(numPorts * config.numVcs),
      inFlags_(numPorts * config.numVcs, 0),
      inOutPort_(numPorts * config.numVcs, kPortInvalid),
      inOutVc_(numPorts * config.numVcs, kVcInvalid),
      outQ_(numPorts * config.numVcs),
      outOcc_(numPorts * config.numVcs, 0),
      outCredits_(numPorts * config.numVcs, 0),
      outOwned_(numPorts * config.numVcs, 0),
      outChannel_(numPorts, nullptr),
      inCredit_(numPorts, nullptr),
      terminalPort_(numPorts, 0),
      outputActive_(numPorts, 0),
      outOccPort_(numPorts, 0),
      outFlits_(numPorts, 0),
      outDeroutes_(numPorts, 0),
      rrNext_(numPorts, 0) {
  HXWAR_CHECK(config_.numVcs >= 1 && config_.inputBufferDepth >= 1);
  HXWAR_CHECK(config_.outputQueueDepth >= 1 && config_.crossbarLatency >= 1);
  if (config_.faultPolicy == fault::FaultPolicy::kRetry) {
    inRetries_.assign(numPorts * config_.numVcs, 0);
    retryAt_.assign(numPorts * config_.numVcs, 0);
  }
}

const Packet& Router::packetOf(Flit f) const {
  return pools_[f.packet >> PacketPool::kLaneShift]->get(f.packet);
}
Packet& Router::packetOf(Flit f) { return pools_[f.packet >> PacketPool::kLaneShift]->get(f.packet); }

void Router::connectOutput(PortId port, FlitChannel* channel, std::uint32_t downstreamDepth) {
  outChannel_[port] = channel;
  for (VcId v = 0; v < config_.numVcs; ++v) outCredits_[code(port, v)] = downstreamDepth;
}

void Router::connectInputCredit(PortId port, CreditChannel* channel) {
  inCredit_[port] = channel;
}

void Router::setTerminalPort(PortId port, bool isTerminal) {
  terminalPort_[port] = isTerminal ? 1 : 0;
}

double Router::congestionFlits(PortId port) const {
  // Local output-queue occupancy only. Counting outstanding credits would add
  // "phantom congestion" — flits merely in flight on an uncongested long
  // channel — which makes adaptive algorithms deroute on noise. Downstream
  // congestion still surfaces here: once credits run dry the output queue
  // backs up and occupancy rises.
  //
  // outOccPort_ aggregates the per-VC occ counters so this sits-on-every-
  // candidate query is O(1). The division must stay a division (not a
  // multiply by a precomputed reciprocal): routing weights feed tie-breaks,
  // and a one-ULP difference would change replay.
  return static_cast<double>(outOccPort_[port]) / config_.numVcs;
}

std::uint64_t Router::bufferedFlits() const {
  std::uint64_t n = 0;
  for (const auto& q : inQ_) n += q.size();
  for (const auto& q : outQ_) n += q.size();
  n += xbarPipe_.size();
  return n;
}

std::size_t Router::memoryBytes() const {
  std::size_t n = 0;
  for (const auto& q : inQ_) n += q.capacityBytes();
  for (const auto& q : outQ_) n += q.capacityBytes();
  n += inQ_.capacity() * sizeof(inQ_[0]) + outQ_.capacity() * sizeof(outQ_[0]);
  n += inFlags_.capacity() + outOwned_.capacity() + terminalPort_.capacity() +
       outputActive_.capacity();
  n += (inOutPort_.capacity() + inOutVc_.capacity() + outOcc_.capacity() +
        outCredits_.capacity() + outOccPort_.capacity() + rrNext_.capacity() +
        routePending_.capacity() + xferList_.capacity() + activeOutPorts_.capacity()) *
       sizeof(std::uint32_t);
  n += inRetries_.capacity() + retryAt_.capacity() * sizeof(Tick);
  n += (outFlits_.capacity() + outDeroutes_.capacity() + outStalls_.capacity()) *
       sizeof(std::uint64_t);
  n += (outChannel_.capacity() + inCredit_.capacity()) * sizeof(void*);
  n += xbarPipe_.capacityBytes();
  n += scratchCandidates_.capacity() * sizeof(routing::Candidate) +
       scratchBest_.capacity() * sizeof(std::uint32_t);
  return n;
}

void Router::receiveFlit(PortId port, VcId vc, Flit flit) {
  const std::uint32_t c = code(port, vc);
  if (inFlags_[c] & kInDropping) {
    // The packet at the front of this VC hit a fault dead end before its tail
    // arrived: consume the remaining flits on arrival, returning the buffer
    // slot upstream, and finalize the drop at the tail.
    HXWAR_CHECK(inQ_[c].empty() && !flit.isHead());
    inCredit_[port]->send(vc);
    stats_->flitMovements += 1;
    if (flit.isTail()) {
      inFlags_[c] &= static_cast<std::uint8_t>(~kInDropping);
      network_->dropPacket(flit.packet, lane_, sim().now());
    }
    return;
  }
  HXWAR_CHECK_MSG(inQ_[c].size() < config_.inputBufferDepth,
                  "credit protocol violated: input buffer overflow");
  inQ_[c].push_back(flit);
  if (inFlags_[c] & kInRouted) {
    addXfer(port, vc);
  } else if (inQ_[c].size() == 1) {
    HXWAR_CHECK_MSG(flit.isHead(), "non-head flit at idle input VC front");
    addRoutePending(port, vc);
  }
  ensureCycle();
}

void Router::receiveCredit(PortId port, VcId vc) {
  const std::uint32_t c = code(port, vc);
  outCredits_[c] += 1;
  HXWAR_CHECK_MSG(outCredits_[c] <= network_->downstreamDepth(id_, port),
                  "credit overflow at output");
  if (!outQ_[c].empty()) markOutputActive(port);
  ensureCycle();
}

void Router::addRoutePending(PortId p, VcId v) {
  const std::uint32_t c = code(p, v);
  if (inFlags_[c] & kInRouteList) return;
  inFlags_[c] |= kInRouteList;
  routePending_.push_back(c);
}

void Router::addXfer(PortId p, VcId v) {
  const std::uint32_t c = code(p, v);
  if (inFlags_[c] & kInXferList) return;
  inFlags_[c] |= kInXferList;
  xferList_.push_back(c);
}

void Router::markOutputActive(PortId p) {
  if (outputActive_[p]) return;
  outputActive_[p] = 1;
  activeOutPorts_.push_back(p);
}

void Router::ensureCycle() {
  if (cyclePending_) return;
  cyclePending_ = true;
  const Tick now = sim().now();
  const Tick target = (lastCycleTick_ == now) ? now + 1 : now;
  sim().schedule(target, sim::kEpsRouter, this, kTagCycle);
}

void Router::processEvent(std::uint64_t tag) {
  if (tag == kTagXbar) {
    // Flits finished crossbar traversal: land every one arriving this tick in
    // its output queue. stageCrossbar schedules one event per arrival tick,
    // not per flit; landings only append to (disjoint) output queues and
    // activate ports in pipe order, so the batch drain is replay-identical to
    // one event per flit (DESIGN.md §10).
    HXWAR_CHECK(!xbarPipe_.empty() && xbarPipe_.front().arrive == sim().now());
    do {
      const XbarEntry e = xbarPipe_.front();
      xbarPipe_.pop_front();
      outQ_[code(e.outPort, e.outVc)].push_back(e.flit);
      markOutputActive(e.outPort);
    } while (!xbarPipe_.empty() && xbarPipe_.front().arrive == sim().now());
    ensureCycle();
    return;
  }

  // kTagCycle: one allocation/arbitration cycle.
  cyclePending_ = false;
  lastCycleTick_ = sim().now();
  stageOutput();
  stageCrossbar();
  stageRoute();
  if (!routePending_.empty() || !xferList_.empty() || !activeOutPorts_.empty()) {
    ensureCycle();
  }
}

void Router::stageOutput() {
  // One flit per output port per cycle onto the channel; age-based VC pick.
  std::size_t w = 0;
  for (std::size_t idx = 0; idx < activeOutPorts_.size(); ++idx) {
    const PortId p = activeOutPorts_[idx];
    // A transiently dead output port transmits nothing: queued flits wait in
    // place (the port stays active below, retrying each cycle) and drain when
    // the channel revives. Statically dead ports never get queued flits — the
    // candidate filter in tryRoute rejects them before allocation.
    const bool portDead = deadPorts_ != nullptr && deadPorts_->isDead(id_, p);
    VcId best = kVcInvalid;
    if (portDead) {
    } else if (config_.arbiter == ArbiterPolicy::kAgeBased) {
      for (VcId v = 0; v < config_.numVcs; ++v) {
        const std::uint32_t c = code(p, v);
        if (outQ_[c].empty() || outCredits_[c] == 0) continue;
        if (best == kVcInvalid ||
            olderThan(packetOf(outQ_[c].front()), packetOf(outQ_[code(p, best)].front()))) {
          best = v;
        }
      }
    } else {
      // Round-robin: scan from the pointer; advance past the grant.
      for (std::uint32_t k = 0; k < config_.numVcs; ++k) {
        const VcId v = (rrNext_[p] + k) % config_.numVcs;
        const std::uint32_t c = code(p, v);
        if (outQ_[c].empty() || outCredits_[c] == 0) continue;
        best = v;
        rrNext_[p] = (v + 1) % config_.numVcs;
        break;
      }
    }
    if (best != kVcInvalid) {
      const std::uint32_t c = code(p, best);
      const Flit f = outQ_[c].front();
      outQ_[c].pop_front();
      outOcc_[c] -= 1;
      outOccPort_[p] -= 1;
      outCredits_[c] -= 1;
      outChannel_[p]->send(best, f);
      outFlits_[p] += 1;
      stats_->flitMovements += 1;
    }
    bool anyQueued = false;
    for (VcId v = 0; v < config_.numVcs; ++v) {
      if (!outQ_[code(p, v)].empty()) {
        anyQueued = true;
        break;
      }
    }
    // Credit stall: flits are queued at this output but none could transmit
    // (no credits, or the port is transiently dead). Counted once per port
    // per cycle, so the sampler sees stalled-port-cycles.
    if constexpr (obs::kCompiledIn) {
      if (obs_ != nullptr && best == kVcInvalid && anyQueued) {
        obs_->noteCreditStall();
        outStalls_[p] += 1;  // allocated by setObserver when obs_ is non-null
      }
    }
    if (anyQueued) {
      activeOutPorts_[w++] = p;  // keep active
    } else {
      outputActive_[p] = 0;
    }
  }
  activeOutPorts_.resize(w);
}

void Router::stageCrossbar() {
  // Move up to inputSpeedup flits per input port from routed input VCs into
  // the crossbar, oldest packet first, respecting output-queue space.
  std::size_t w = 0;
  // Group xferList entries by port implicitly: iterate the list and spend
  // per-port budgets tracked in a scratch map keyed by port.
  // numPorts_ is small (tens), so a vector budget is cheap.
  static thread_local std::vector<std::uint32_t> budget;
  budget.assign(numPorts_, config_.inputSpeedup);

  // Age-order the candidates so older packets get crossbar slots first. In
  // round-robin mode, order by input VC code instead. Either way the order is
  // a total function of router state, never of the list's insertion order —
  // insertion order depends on same-tick delivery interleaving, which differs
  // between the serial and sharded engines (DESIGN.md §12).
  if (config_.arbiter == ArbiterPolicy::kAgeBased) {
    std::sort(xferList_.begin(), xferList_.end(), [this](std::uint32_t a, std::uint32_t b) {
      const bool aReady = (inFlags_[a] & kInRouted) && !inQ_[a].empty();
      const bool bReady = (inFlags_[b] & kInRouted) && !inQ_[b].empty();
      if (aReady != bReady) return aReady;
      if (!aReady) return a < b;
      return olderThan(packetOf(inQ_[a].front()), packetOf(inQ_[b].front()));
    });
  } else {
    std::sort(xferList_.begin(), xferList_.end());
  }

  for (std::size_t idx = 0; idx < xferList_.size(); ++idx) {
    const std::uint32_t c = xferList_[idx];
    const PortId p = c / config_.numVcs;
    const VcId v = c % config_.numVcs;
    if (!(inFlags_[c] & kInRouted) || inQ_[c].empty()) {
      inFlags_[c] &= static_cast<std::uint8_t>(~kInXferList);  // stale; re-added when eligible
      continue;
    }
    bool keep = true;
    while (budget[p] > 0 && !inQ_[c].empty()) {
      const PortId op = inOutPort_[c];
      const VcId ov = inOutVc_[c];
      const std::uint32_t oc = code(op, ov);
      if (outOcc_[oc] >= config_.outputQueueDepth) break;  // no space: retry next cycle
      const Flit f = inQ_[c].front();
      inQ_[c].pop_front();
      budget[p] -= 1;
      outOcc_[oc] += 1;
      outOccPort_[op] += 1;
      const Tick arrive = sim().now() + config_.crossbarLatency;
      xbarPipe_.push_back(XbarEntry{arrive, f, op, ov});
      if (lastXbarArrival_ != arrive) {
        lastXbarArrival_ = arrive;
        sim().schedule(arrive, sim::kEpsDeliver, this, kTagXbar);
      }
      stats_->flitMovements += 1;
      // Return the buffer slot upstream (terminals also track credits).
      HXWAR_CHECK(inCredit_[p] != nullptr);
      inCredit_[p]->send(v);
      if (f.isHead()) {
        Packet& pkt = packetOf(f);
        if (!terminalPort_[op]) {
          pkt.hops += 1;
          if (inFlags_[c] & kInDeroute) pkt.deroutes += 1;
        }
        network_->notifyHop(lane_, pkt, id_, p, op, sim().now());
        if constexpr (obs::kCompiledIn) {
          if (obs_ != nullptr) obs_->onHop(id_, p, op, pkt, sim().now());
        }
      }
      if (f.isTail()) {
        // Wormhole allocation ends: free the output VC and reset the input.
        outOwned_[oc] = 0;
        inFlags_[c] &= static_cast<std::uint8_t>(~(kInRouted | kInDeroute));
        inOutPort_[c] = kPortInvalid;
        inOutVc_[c] = kVcInvalid;
        keep = false;
        if (!inQ_[c].empty()) {
          HXWAR_CHECK_MSG(inQ_[c].front().isHead(), "packet interleaving on input VC");
          addRoutePending(p, v);
        }
        break;
      }
    }
    if (keep && (inFlags_[c] & kInRouted) && !inQ_[c].empty()) {
      xferList_[w++] = c;
    } else {
      inFlags_[c] &= static_cast<std::uint8_t>(~kInXferList);
    }
  }
  xferList_.resize(w);
  // Re-append entries marked keep via addXfer during the tail handling above.
  // (addXfer pushes to the end; entries beyond w were compacted already.)
}

Router::RouteOutcome Router::tryRoute(PortId port, VcId vc) {
  const std::uint32_t c = code(port, vc);
  HXWAR_CHECK(!inQ_[c].empty() && inQ_[c].front().isHead() && !(inFlags_[c] & kInRouted));
  Packet& pkt = packetOf(inQ_[c].front());

  scratchCandidates_.clear();
  const bool atSource = terminalPort_[port];
  const routing::RouteContext ctx{*this,    id_,
                                  port,     vc,
                                  atSource, atSource ? 0u : vcMap_.classOf(vc),
                                  deadPorts_, obs_};
  routing_->route(ctx, pkt, scratchCandidates_);
  // On a fault-free network an empty candidate list is an algorithm contract
  // violation; under a mask it is a dead end (e.g. an unreachable destination
  // on a partition-tolerant run) and enters the degradation ladder below.
  if (deadPorts_ == nullptr) {
    HXWAR_CHECK_MSG(!scratchCandidates_.empty(), "routing returned no candidates");
  }

  if (deadPorts_ != nullptr) {
    // Reject candidates targeting dead ports. Fault-aware algorithms already
    // avoided them; this filter turns a non-fault-aware algorithm's dead end
    // into the configured ladder instead of an eternal stall.
    std::size_t live = 0;
    for (std::size_t i = 0; i < scratchCandidates_.size(); ++i) {
      if (!deadPorts_->isDead(id_, scratchCandidates_[i].port)) {
        scratchCandidates_[live++] = scratchCandidates_[i];
      }
    }
    scratchCandidates_.resize(live);
    if (scratchCandidates_.empty()) return deadEnd(port, vc, pkt);
    // A live candidate ends any dead-end episode: reset the retry budget so
    // the bound applies per episode, not per packet lifetime.
    if (!inRetries_.empty()) inRetries_[c] = 0;
  }

  // Selection: pick the minimum-weight candidate by congestion x hops,
  // independent of momentary VC availability (random tie-break). The packet
  // then waits for a VC of the winner's (port, class) — re-evaluating every
  // cycle, so the choice tracks congestion while blocked. Selecting only
  // among momentarily-available candidates would convert transient VC
  // ownership into spurious deroutes.
  double bestWeight = std::numeric_limits<double>::infinity();
  scratchBest_.clear();
  for (std::size_t i = 0; i < scratchCandidates_.size(); ++i) {
    const routing::Candidate& cand = scratchCandidates_[i];
    const double weight =
        (congestionFlits(cand.port) + config_.weightBias) * cand.hopsRemaining;
    if (weight < bestWeight - 1e-12) {
      bestWeight = weight;
      scratchBest_.clear();
    }
    if (weight <= bestWeight + 1e-12) {
      scratchBest_.push_back(static_cast<std::uint32_t>(i));
    }
  }
  HXWAR_CHECK(!scratchBest_.empty());
  const routing::Candidate& cand = scratchCandidates_[scratchBest_[
      scratchBest_.size() == 1 ? 0 : rng_.pickIndex(scratchBest_)]];

  // Allocation: find a free VC within the winner's class; prefer most room.
  // Virtual cut-through: demand downstream room for the whole packet so it
  // never blocks mid-stream on the channel. The downstream depth bounds the
  // requirement so oversized packets still make progress.
  const std::uint32_t downstreamDepth = network_->downstreamDepth(id_, cand.port);
  // Atomic queue allocation (§4.2): require the downstream buffer completely
  // idle — every credit back and nothing queued or in flight locally.
  const std::uint32_t neededCredits =
      cand.atomic ? downstreamDepth
      : config_.virtualCutThrough ? std::min(pkt.sizeFlits, downstreamDepth)
                                  : 1u;
  VcId ov = kVcInvalid;
  std::uint32_t bestRoom = 0;
  const std::uint32_t setSize = vcMap_.vcsInClass(cand.vcClass);
  for (std::uint32_t k = 0; k < setSize; ++k) {
    const VcId v = vcMap_.vcOf(cand.vcClass, k);
    const std::uint32_t oc = code(cand.port, v);
    if (outOwned_[oc] || outOcc_[oc] >= config_.outputQueueDepth ||
        outCredits_[oc] < neededCredits) {
      continue;
    }
    if (cand.atomic && outOcc_[oc] != 0) continue;
    const std::uint32_t room = outCredits_[oc] + (config_.outputQueueDepth - outOcc_[oc]);
    if (ov == kVcInvalid || room > bestRoom) {
      ov = v;
      bestRoom = room;
    }
  }
  if (ov == kVcInvalid) {
    // Winner busy: wait and re-evaluate next cycle. Record the denied target
    // so the credit-wait-cycle detector can follow allocation-blocked heads:
    // while kInRouted is clear these fields carry the *wanted* output (see
    // router.h), refreshed on every attempt. Pick the class VC with the
    // fewest credits — the one actually wedging the allocation.
    VcId want = vcMap_.vcOf(cand.vcClass, 0);
    std::uint32_t fewest = ~0u;
    for (std::uint32_t k = 0; k < setSize; ++k) {
      const VcId v = vcMap_.vcOf(cand.vcClass, k);
      const std::uint32_t credits = outCredits_[code(cand.port, v)];
      if (credits < fewest) {
        fewest = credits;
        want = v;
      }
    }
    inOutPort_[c] = cand.port;
    inOutVc_[c] = want;
    return RouteOutcome::kBlocked;
  }

  outOwned_[code(cand.port, ov)] = 1;
  inFlags_[c] |= kInRouted;
  if (cand.deroute) {
    inFlags_[c] |= kInDeroute;
  } else {
    inFlags_[c] &= static_cast<std::uint8_t>(~kInDeroute);
  }
  inOutPort_[c] = cand.port;
  inOutVc_[c] = ov;
  if (cand.deroute) {
    outDeroutes_[cand.port] += 1;
    if (cand.derouteDim != 0xff) {
      pkt.deroutedDims |= 1u << cand.derouteDim;  // DAL once-per-dimension mask
    }
  }
  if constexpr (obs::kCompiledIn) {
    if (obs_ != nullptr) {
      obs_->onRouteGrant(id_, pkt, cand, ov, scratchCandidates_, sim().now());
    }
  }
  addXfer(port, vc);
  return RouteOutcome::kGranted;
}

Router::RouteOutcome Router::deadEnd(PortId port, VcId vc, const Packet& pkt) {
  // No live candidate: clear any recorded wanted output so the deadlock
  // detector never follows a stale wait edge from a dead-end episode.
  const std::uint32_t dc = code(port, vc);
  inOutPort_[dc] = kPortInvalid;
  inOutVc_[dc] = kVcInvalid;
  switch (config_.faultPolicy) {
    case fault::FaultPolicy::kDrop:
    case fault::FaultPolicy::kEscape:
      // Under `escape` the routing algorithm already escalated onto its
      // escape class, so reaching here means the destination is genuinely
      // unreachable (partitioned) — an attributed drop either way.
      startDrop(port, vc);
      return RouteOutcome::kDropped;
    case fault::FaultPolicy::kRetry: {
      const std::uint32_t c = code(port, vc);
      if (inRetries_[c] < config_.faultRetryLimit) {
        inRetries_[c] += 1;
        // Exponential backoff, shift-capped so the window stays sane even
        // with a large retry limit. The head stays in routePending_ and the
        // route recomputes against the live mask at each attempt.
        const std::uint32_t shift = std::min<std::uint32_t>(inRetries_[c] - 1, 10);
        retryAt_[c] = sim().now() + (config_.faultRetryBackoff << shift);
        return RouteOutcome::kBlocked;
      }
      inRetries_[c] = 0;
      startDrop(port, vc);
      return RouteOutcome::kDropped;
    }
    case fault::FaultPolicy::kAbort: {
      // Deferred fatal: record the message in this lane's slot (first wins)
      // and drop the packet so the simulation stays consistent until the
      // harness reads the slot between windows and raises hxwar::Error.
      // Worker threads must not throw or abort (DESIGN.md §13).
      if (stats_->fatalError.empty()) {
        stats_->fatalError =
            "fault dead end: " + routing_->info().name + " at router " +
            std::to_string(id_) + " has no live output for packet " +
            std::to_string(pkt.id) + " (dst node " + std::to_string(pkt.dst) +
            "); use a fault-aware algorithm (dal/dimwar/omniwar/ftar) or a softer "
            "--fault-policy (drop/retry/escape)";
      }
      startDrop(port, vc);
      return RouteOutcome::kDropped;
    }
  }
  HXWAR_CHECK_MSG(false, "unreachable fault policy");
  return RouteOutcome::kDropped;
}

void Router::startDrop(PortId port, VcId vc) {
  const std::uint32_t c = code(port, vc);
  const PacketRef ref = inQ_[c].front().packet;
  bool sawTail = false;
  while (!inQ_[c].empty() && inQ_[c].front().packet == ref) {
    const Flit f = inQ_[c].front();
    inQ_[c].pop_front();
    inCredit_[port]->send(vc);
    stats_->flitMovements += 1;
    if (f.isTail()) {
      sawTail = true;
      break;
    }
  }
  if (sawTail) {
    if (!inQ_[c].empty()) {
      HXWAR_CHECK_MSG(inQ_[c].front().isHead(), "packet interleaving on input VC");
    }
    network_->dropPacket(ref, lane_, sim().now());
  } else {
    inFlags_[c] |= kInDropping;  // remaining flits consumed on arrival (receiveFlit)
  }
}

void Router::stageRoute() {
  // Canonical order: route in input-VC-code order, not insertion order.
  // tryRoute consumes RNG draws (tie-breaks) and claims output VCs as it
  // goes, so the iteration order is observable; insertion order tracks
  // same-tick delivery interleaving, which the sharded engine cannot
  // reproduce (DESIGN.md §12).
  std::sort(routePending_.begin(), routePending_.end());
  std::size_t w = 0;
  for (std::size_t idx = 0; idx < routePending_.size(); ++idx) {
    const std::uint32_t c = routePending_[idx];
    const PortId p = c / config_.numVcs;
    const VcId v = c % config_.numVcs;
    if ((inFlags_[c] & kInRouted) || inQ_[c].empty()) {
      inFlags_[c] &= static_cast<std::uint8_t>(~kInRouteList);  // stale
      continue;
    }
    if (!retryAt_.empty() && retryAt_[c] > sim().now()) {
      // Dead-end backoff (retry policy): the head waits out its window
      // before the route is recomputed against the live mask.
      routePending_[w++] = c;
      continue;
    }
    const RouteOutcome outcome = tryRoute(p, v);
    if (outcome == RouteOutcome::kGranted) {
      inFlags_[c] &= static_cast<std::uint8_t>(~kInRouteList);
    } else if (outcome == RouteOutcome::kBlocked || !inQ_[c].empty()) {
      // Blocked heads retry next cycle; after a finalized drop the next
      // packet's head may already be queued and routes next cycle.
      routePending_[w++] = c;
    } else {
      inFlags_[c] &= static_cast<std::uint8_t>(~kInRouteList);
    }
  }
  routePending_.resize(w);
}

}  // namespace hxwar::net
