// Credit-wait-cycle deadlock detector (DESIGN.md §13).
//
// When the stall watchdog fires, the interesting question is *why* nothing
// moves. This walks the routers' SoA VC state and builds the classic
// wait-for graph over output VCs:
//
//   * an output VC (router, port, vc) is BLOCKED when it has flits queued
//     but zero credits — it is waiting for the downstream input buffer on
//     the other end of the channel to drain;
//   * that downstream input VC drains only if its granted output VC drains,
//     so a blocked output VC waits-for the output VC the downstream input
//     is routed to.
//
// A cycle in this graph is a credit deadlock: every participant holds
// buffer slots the next one needs, and no flit will ever move again. The
// detector reports the first cycle found (scanning nodes in (router, port,
// vc) order, so the report is deterministic) as a human-readable chain
// naming each router:port:vc link with its queue depth and credit state.
//
// When that graph is acyclic a second walk covers allocation deadlocks with
// credits still available: atomic queue allocation (DAL, paper §4.2) grants
// an output only when the downstream buffer is completely empty, so heads
// can deny each other in a cycle while every credit counter is positive.
// Nodes are allocation-blocked input heads (unrouted, with the wanted
// output recorded by the router on every denied attempt) and the wait edge
// follows the wanted port to the downstream input buffer that must drain.
//
// This is a cold diagnostic path — O(total VC codes) time and memory, run
// only from the watchdog or tests, never during normal simulation.
#pragma once

#include <string>

namespace hxwar::net {

class Network;

// Returns a multi-line description of the first credit-wait cycle, or an
// empty string when the wait-for graph is acyclic (the stall has another
// cause: e.g. a transiently dead port, or the network is simply idle).
std::string findCreditWaitCycle(const Network& network);

}  // namespace hxwar::net
