#include "net/terminal.h"

#include "common/assert.h"
#include "net/network.h"
#include "obs/net_observer.h"

namespace hxwar::net {

Terminal::Terminal(sim::Simulator& sim, Network* network, NodeId id, std::uint32_t numVcs,
                   std::uint32_t lane, LaneStats* stats, PacketPool* const* pools)
    : Component(sim),
      network_(network),
      pools_(pools),
      stats_(stats),
      lane_(lane),
      id_(id),
      numVcs_(numVcs) {}

void Terminal::connectOutput(FlitChannel* toRouter, std::uint32_t routerInputDepth) {
  toRouter_ = toRouter;
  credits_.assign(numVcs_, routerInputDepth);
}

void Terminal::connectInputCredit(CreditChannel* toRouter) { creditReturn_ = toRouter; }

void Terminal::enqueuePacket(Packet* pkt) {
  pkt->createdAt = sim().now();
  pkt->src = id_;
  sourceQueueFlits_ += pkt->sizeFlits;
  stats_->backlogFlits += pkt->sizeFlits;
  sourceQueue_.push_back(pkt->slot);
  ensureCycle();
}

void Terminal::ensureCycle() {
  if (cyclePending_) return;
  cyclePending_ = true;
  const Tick now = sim().now();
  const Tick target = (lastCycleTick_ == now) ? now + 1 : now;
  sim().schedule(target, sim::kEpsTerminal, this, 0);
}

void Terminal::processEvent(std::uint64_t) {
  cyclePending_ = false;
  lastCycleTick_ = sim().now();
  injectionCycle();
  if (!sourceQueue_.empty()) ensureCycle();
}

void Terminal::injectionCycle() {
  if (sourceQueue_.empty()) return;
  const PacketRef ref = sourceQueue_.front();
  Packet& pkt = pools_[ref >> PacketPool::kLaneShift]->get(ref);
  if (currentVc_ == kVcInvalid) {
    // Pick the injection VC for this packet: any VC works for deadlock
    // purposes (injection buffers are pure sources), so take the one with the
    // most credits to spread head-of-line blocking.
    VcId best = kVcInvalid;
    for (VcId v = 0; v < numVcs_; ++v) {
      if (credits_[v] == 0) continue;
      if (best == kVcInvalid || credits_[v] > credits_[best]) best = v;
    }
    if (best == kVcInvalid) return;  // no credits at all: retry on credit return
    currentVc_ = best;
    nextFlit_ = 0;
  }
  if (credits_[currentVc_] == 0) return;  // retry on credit return
  credits_[currentVc_] -= 1;
  if (nextFlit_ == 0) {
    pkt.injectedAt = sim().now();
    if constexpr (obs::kCompiledIn) {
      if (obs::NetObserver* o = network_->observer(lane_)) o->onInjectStart(pkt, sim().now());
    }
  }
  toRouter_->send(currentVc_, makeFlit(ref, nextFlit_, nextFlit_ + 1 == pkt.sizeFlits));
  flitsInjected_ += 1;
  sourceQueueFlits_ -= 1;
  stats_->backlogFlits -= 1;
  stats_->flitsInjected += 1;
  nextFlit_ += 1;
  if (nextFlit_ == pkt.sizeFlits) {
    // Whole packet is in flight; the destination terminal recycles it into
    // the owning lane's pool once reassembly completes.
    stats_->packetsInFlight += 1;
    sourceQueue_.pop_front();
    currentVc_ = kVcInvalid;
    nextFlit_ = 0;
  }
}

void Terminal::receiveCredit(PortId, VcId vc) {
  credits_[vc] += 1;
  if (!sourceQueue_.empty()) ensureCycle();
}

void Terminal::receiveFlit(PortId, VcId vc, Flit flit) {
  // Ejection: bottomless sink; return the buffer slot immediately.
  creditReturn_->send(vc);
  flitsEjected_ += 1;
  Packet& pkt = pools_[flit.packet >> PacketPool::kLaneShift]->get(flit.packet);
  pkt.arrivedFlits += 1;
  HXWAR_CHECK_MSG(pkt.arrivedFlits == flit.index() + 1, "flit reordering within packet");
  if (flit.isTail()) {
    HXWAR_CHECK_MSG(pkt.arrivedFlits == pkt.sizeFlits, "packet completed early");
    HXWAR_CHECK_MSG(pkt.dst == id_, "packet ejected at wrong terminal");
    pkt.ejectedAt = sim().now();
    // Notifies this lane's listeners and frees (or defers) the packet slot.
    network_->completePacket(flit.packet, lane_, sim().now());
  }
}

}  // namespace hxwar::net
