// Network: instantiates routers, terminals, and channels from a Topology and
// a RoutingAlgorithm, owns all packets in flight, and aggregates counters for
// the measurement layer.
//
// Storage is dense and ID-indexed: routers, terminals, and the two channel
// kinds live in contiguous DenseArrays addressed by RouterId/NodeId/
// ChannelId (one allocation per kind, no per-object unique_ptr), and packets
// live in a PacketPool slab addressed by PacketRef. Integer IDs — not heap
// pointers — are the identities that cross layer boundaries, which is what
// lets router state shard across workers later (IDs partition; pointers
// don't).
#pragma once

#include <cstdint>
#include <vector>

#include "common/dense_array.h"
#include "common/types.h"
#include "net/channel.h"
#include "net/listener.h"
#include "net/packet.h"
#include "net/packet_pool.h"
#include "net/router.h"
#include "net/terminal.h"
#include "routing/routing.h"
#include "sim/simulator.h"
#include "topo/topology.h"

namespace hxwar::obs {
class NetObserver;
}

namespace hxwar::net {

struct NetworkConfig {
  RouterConfig router;
  Tick channelLatencyRouter = 10;   // cycles, router-to-router
  Tick channelLatencyTerminal = 1;  // cycles, terminal-to-router
  std::uint32_t terminalEjectDepth = 32;  // flits per VC buffered at the terminal
  std::uint64_t rngSeed = 1;
};

class Network {
 public:
  // Memory accounting for the paper-scale budget (see DESIGN.md §11): every
  // byte the network core owns, attributed by layer, plus the two normalized
  // budget rows tracked in BENCH_core.json. `flitSlots` is the configured
  // buffering capacity (input buffers + output queues across all routers), a
  // load-independent denominator.
  struct MemoryFootprint {
    std::size_t totalBytes = 0;
    std::size_t routersBytes = 0;
    std::size_t terminalsBytes = 0;
    std::size_t channelsBytes = 0;
    std::size_t packetPoolBytes = 0;
    std::size_t miscBytes = 0;
    std::uint64_t flitSlots = 0;
    double bytesPerTerminal = 0.0;
    double bytesPerFlitSlot = 0.0;
  };

  Network(sim::Simulator& sim, const topo::Topology& topology,
          routing::RoutingAlgorithm& routing, const NetworkConfig& config);
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  Router& router(RouterId r) { return routers_[r]; }
  Terminal& terminal(NodeId n) { return terminals_[n]; }
  std::uint32_t numRouters() const { return static_cast<std::uint32_t>(routers_.size()); }
  std::uint32_t numNodes() const { return static_cast<std::uint32_t>(terminals_.size()); }
  std::uint32_t numChannels() const {
    return static_cast<std::uint32_t>(flitChannels_.size() + creditChannels_.size());
  }
  const topo::Topology& topology() const { return topology_; }
  const NetworkConfig& config() const { return config_; }
  sim::Simulator& simulator() { return sim_; }

  // Lifecycle listener (ejection + drop hooks); one branch and one virtual
  // call per completed packet when set, one branch when unset.
  void setListener(NetListener* listener) { listener_ = listener; }
  // Per-hop listener, a separate slot so measurement code listening for
  // ejections does not drag a virtual call into every head-flit grant.
  void setHopListener(NetListener* listener) { hopListener_ = listener; }
  // Installs the fault mask on every router (nullptr disables fault logic).
  // Routers filter candidates and silence dead output ports through it; the
  // mask contents may change mid-run (FaultController transient windows).
  void setDeadPortMask(const fault::DeadPortMask* mask);
  // Attaches the observability sink to this network and all its routers
  // (nullptr detaches). One observer per network, same threading rules as the
  // network itself. Hot paths pay one branch on the cached pointer when no
  // observer is attached; see obs/net_observer.h.
  void setObserver(obs::NetObserver* observer);
  obs::NetObserver* observer() const { return obs_; }
  bool hasHopListener() const { return hopListener_ != nullptr; }
  void notifyHop(const Packet& pkt, RouterId router, PortId inPort, PortId outPort) {
    if (hopListener_ != nullptr) hopListener_->onHop(pkt, router, inPort, outPort, sim_.now());
  }

  // Convenience: build a packet and hand it to the source terminal.
  Packet& injectPacket(NodeId src, NodeId dst, std::uint32_t sizeFlits);

  // --- packet slab ---
  // Packets live in the pool's chunked slab and are addressed by 4-byte
  // PacketRef slot ids; flits and source queues carry refs, and resolve them
  // here. At steady state every allocation is a ref pop + field reset.
  PacketPool& pool() { return pool_; }
  Packet& packet(PacketRef ref) { return pool_.get(ref); }
  const Packet& packet(PacketRef ref) const { return pool_.get(ref); }
  Packet* allocPacket() { return &pool_.get(pool_.alloc()); }
  void recyclePacket(Packet* pkt) { pool_.recycle(pkt->slot); }
  std::size_t packetPoolSize() const { return pool_.size(); }
  std::uint64_t packetPoolReuses() const { return pool_.reuses(); }

  // --- hooks used by routers/terminals ---
  std::uint32_t downstreamDepth(RouterId r, PortId p) const;
  void noteFlitMoved() { flitMovements_ += 1; }
  void noteFlitInjected() { flitsInjected_ += 1; }
  // Source-backlog delta (terminals report enqueue/injection), keeping
  // totalSourceBacklogFlits O(1) for the per-window saturation probe and the
  // obs sampler gauge.
  void noteBacklogFlits(std::int64_t delta) {
    backlogFlits_ = static_cast<std::uint64_t>(static_cast<std::int64_t>(backlogFlits_) + delta);
  }
  void trackInFlight() { packetsInFlight_ += 1; }
  void completePacket(PacketRef ref);
  // Fault dead end: count the loss, notify the drop listener, recycle.
  void dropPacket(PacketRef ref);

  // --- counters ---
  std::uint64_t flitMovements() const { return flitMovements_; }
  std::uint64_t flitsInjected() const { return flitsInjected_; }
  std::uint64_t flitsEjected() const { return flitsEjected_; }
  std::uint64_t packetsCreated() const { return packetsCreated_; }
  std::uint64_t packetsEjected() const { return packetsEjected_; }
  std::uint64_t packetsDropped() const { return packetsDropped_; }
  std::uint64_t flitsDropped() const { return flitsDropped_; }
  // Packets enqueued or in flight but neither delivered nor dropped.
  std::uint64_t packetsOutstanding() const {
    return packetsCreated_ - packetsEjected_ - packetsDropped_;
  }
  // Sum of all source-queue backlogs in flits (saturation signal). O(1):
  // maintained by terminal enqueue/injection notifications.
  std::uint64_t totalSourceBacklogFlits() const { return backlogFlits_; }

  // Walks every owned structure and reports the memory budget rows.
  MemoryFootprint memoryFootprint() const;

 private:
  sim::Simulator& sim_;
  const topo::Topology& topology_;
  NetworkConfig config_;
  NetListener* listener_ = nullptr;     // ejection + drop
  NetListener* hopListener_ = nullptr;  // per-hop
  obs::NetObserver* obs_ = nullptr;

  // pool_ precedes the component arrays: routers and terminals cache its
  // address at construction.
  PacketPool pool_;
  common::DenseArray<Router> routers_;
  common::DenseArray<Terminal> terminals_;
  common::DenseArray<FlitChannel> flitChannels_;
  common::DenseArray<CreditChannel> creditChannels_;
  std::vector<std::uint8_t> portIsTerminal_;  // [router * maxPorts + port]
  std::uint32_t maxPorts_ = 0;

  std::uint64_t nextPacketId_ = 1;
  std::uint64_t flitMovements_ = 0;
  std::uint64_t flitsInjected_ = 0;
  std::uint64_t flitsEjected_ = 0;
  std::uint64_t packetsCreated_ = 0;
  std::uint64_t packetsEjected_ = 0;
  std::uint64_t packetsDropped_ = 0;
  std::uint64_t flitsDropped_ = 0;
  std::uint64_t packetsInFlight_ = 0;
  std::uint64_t backlogFlits_ = 0;
};

}  // namespace hxwar::net
