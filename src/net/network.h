// Network: instantiates routers, terminals, and channels from a Topology and
// a RoutingAlgorithm, owns all packets in flight, and aggregates counters for
// the measurement layer.
//
// Storage is dense and ID-indexed: routers, terminals, and the two channel
// kinds live in contiguous DenseArrays addressed by RouterId/NodeId/
// ChannelId (one allocation per kind, no per-object unique_ptr), and packets
// live in per-lane PacketPool slabs addressed by PacketRef. Integer IDs — not
// heap pointers — are the identities that cross layer boundaries, which is
// what lets router state shard across workers (IDs partition; pointers
// don't).
//
// Sharded construction (DESIGN.md §12): a ShardLayout hands the network one
// simulator per shard plus a ShardPlan mapping routers to shards. Terminals
// and terminal channels follow their router's shard; a router-to-router
// channel becomes a Component of its *receiver's* shard and, when the sender
// lives elsewhere, is bound to the sender shard's mailbox (bindRemote). All
// per-shard mutable network state lives in LaneStats slots; totals are sums,
// read only at barriers or after a run. The legacy single-simulator
// constructor is the one-shard special case and runs the identical code.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/dense_array.h"
#include "common/types.h"
#include "net/channel.h"
#include "obs/window.h"
#include "net/lane.h"
#include "net/listener.h"
#include "net/packet.h"
#include "net/packet_pool.h"
#include "net/router.h"
#include "net/terminal.h"
#include "routing/routing.h"
#include "sim/par/mailbox.h"
#include "sim/par/shard_plan.h"
#include "sim/simulator.h"
#include "topo/topology.h"

namespace hxwar::obs {
class NetObserver;
}

namespace hxwar::net {

struct NetworkConfig {
  RouterConfig router;
  Tick channelLatencyRouter = 10;   // cycles, router-to-router
  Tick channelLatencyTerminal = 1;  // cycles, terminal-to-router
  std::uint32_t terminalEjectDepth = 32;  // flits per VC buffered at the terminal
  std::uint64_t rngSeed = 1;
};

// How to distribute the network across shard simulators. One entry in `sims`
// and `routing` per shard; `plan`/`mail` may be null for a single shard.
// Routing instances must be per-shard because adaptive algorithms keep
// mutable scratch (e.g. the masked route cache) that two workers must not
// share; all instances must describe the same algorithm.
struct ShardLayout {
  std::vector<sim::Simulator*> sims;
  const sim::par::ShardPlan* plan = nullptr;
  sim::par::Mailboxes* mail = nullptr;
  std::vector<routing::RoutingAlgorithm*> routing;
};

class Network {
 public:
  // Memory accounting for the paper-scale budget (see DESIGN.md §11): every
  // byte the network core owns, attributed by layer, plus the two normalized
  // budget rows tracked in BENCH_core.json. `flitSlots` is the configured
  // buffering capacity (input buffers + output queues across all routers), a
  // load-independent denominator.
  struct MemoryFootprint {
    std::size_t totalBytes = 0;
    std::size_t routersBytes = 0;
    std::size_t terminalsBytes = 0;
    std::size_t channelsBytes = 0;
    std::size_t packetPoolBytes = 0;
    std::size_t miscBytes = 0;
    std::uint64_t flitSlots = 0;
    double bytesPerTerminal = 0.0;
    double bytesPerFlitSlot = 0.0;
  };

  Network(sim::Simulator& sim, const topo::Topology& topology,
          routing::RoutingAlgorithm& routing, const NetworkConfig& config);
  Network(const ShardLayout& layout, const topo::Topology& topology,
          const NetworkConfig& config);
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  Router& router(RouterId r) { return routers_[r]; }
  const Router& router(RouterId r) const { return routers_[r]; }
  Terminal& terminal(NodeId n) { return terminals_[n]; }
  std::uint32_t maxPorts() const { return maxPorts_; }
  std::uint32_t numRouters() const { return static_cast<std::uint32_t>(routers_.size()); }
  std::uint32_t numNodes() const { return static_cast<std::uint32_t>(terminals_.size()); }
  std::uint32_t numChannels() const {
    return static_cast<std::uint32_t>(flitChannels_.size() + creditChannels_.size());
  }
  const topo::Topology& topology() const { return topology_; }
  const NetworkConfig& config() const { return config_; }
  sim::Simulator& simulator() { return *sims_[0]; }

  // --- sharding ---
  std::uint32_t numLanes() const { return static_cast<std::uint32_t>(lanes_.size()); }
  std::uint32_t laneOfRouter(RouterId r) const { return routerShard_[r]; }
  std::uint32_t laneOfNode(NodeId n) const { return nodeLane_[n]; }
  // Minimum latency over every channel in the network (satellite: the
  // parallel engine CHECKs its window is >= 1 tick against this floor).
  Tick minChannelLatency() const { return minChannelLatency_; }
  // Minimum latency over cross-shard channels only — the engine's lookahead.
  // kTickInvalid when no channel crosses a shard boundary (single shard, or a
  // plan whose cuts hit no links): windows are then unbounded.
  Tick crossShardLookahead() const { return crossLookahead_; }
  // Names the channel that set the lookahead, for actionable CHECK messages.
  const std::string& lookaheadDetail() const { return lookaheadDetail_; }
  // Barrier hook: recycles packet slots freed by one lane into their owning
  // lane's pool. Must run with all workers parked (the engine's barrier).
  void drainDeferredFrees();

  // Lifecycle listener (ejection + drop hooks); one branch and one virtual
  // call per completed packet when set, one branch when unset. The no-lane
  // overloads set every lane (serial-era API; fine for one shard).
  void setListener(NetListener* listener) {
    for (LaneStats& l : lanes_) l.listener = listener;
  }
  void setListener(std::uint32_t lane, NetListener* listener) {
    lanes_[lane].listener = listener;
  }
  // Per-hop listener, a separate slot so measurement code listening for
  // ejections does not drag a virtual call into every head-flit grant.
  void setHopListener(NetListener* listener) {
    for (LaneStats& l : lanes_) l.hopListener = listener;
    refreshHopListenerFlag();
  }
  void setHopListener(std::uint32_t lane, NetListener* listener) {
    lanes_[lane].hopListener = listener;
    refreshHopListenerFlag();
  }
  // Installs the fault mask on every router (nullptr disables fault logic).
  // Routers filter candidates and silence dead output ports through it; the
  // mask contents may change mid-run (FaultController transient windows).
  void setDeadPortMask(const fault::DeadPortMask* mask);
  // Attaches the observability sink to this network and all its routers
  // (nullptr detaches). One observer per lane, each written only by its
  // shard's worker; see obs/net_observer.h. Hot paths pay one branch on the
  // cached pointer when no observer is attached.
  void setObserver(obs::NetObserver* observer);
  void setObservers(const std::vector<obs::NetObserver*>& observers);
  obs::NetObserver* observer() const { return lanes_[0].observer; }
  obs::NetObserver* observer(std::uint32_t lane) const { return lanes_[lane].observer; }
  bool hasHopListener() const { return anyHopListener_; }
  void notifyHop(std::uint32_t lane, const Packet& pkt, RouterId router, PortId inPort,
                 PortId outPort, Tick now) {
    if (NetListener* l = lanes_[lane].hopListener) l->onHop(pkt, router, inPort, outPort, now);
  }

  // Convenience: build a packet and hand it to the source terminal. Safe to
  // call from the source's shard worker (everything it touches is lane-local).
  Packet& injectPacket(NodeId src, NodeId dst, std::uint32_t sizeFlits);

  // --- packet slab ---
  // Packets live in per-lane pool slabs and are addressed by 4-byte
  // PacketRef slot ids whose top bits name the owning lane; flits and source
  // queues carry refs, and resolve them here.
  PacketPool& pool() { return *poolTable_[0]; }
  Packet& packet(PacketRef ref) {
    return poolTable_[ref >> PacketPool::kLaneShift]->get(ref);
  }
  const Packet& packet(PacketRef ref) const {
    return poolTable_[ref >> PacketPool::kLaneShift]->get(ref);
  }
  Packet* allocPacket() { return &poolTable_[0]->get(poolTable_[0]->alloc()); }
  void recyclePacket(Packet* pkt) {
    poolTable_[pkt->slot >> PacketPool::kLaneShift]->recycle(pkt->slot);
  }
  std::size_t packetPoolSize() const {
    std::size_t n = 0;
    for (const PacketPool* p : poolTable_) n += p->size();
    return n;
  }
  std::uint64_t packetPoolReuses() const {
    std::uint64_t n = 0;
    for (const PacketPool* p : poolTable_) n += p->reuses();
    return n;
  }

  // --- hooks used by routers/terminals ---
  std::uint32_t downstreamDepth(RouterId r, PortId p) const;
  void completePacket(PacketRef ref, std::uint32_t lane, Tick now);
  // Fault dead end: count the loss, notify the drop listener, recycle.
  void dropPacket(PacketRef ref, std::uint32_t lane, Tick now);

  // First deferred-fatal message recorded by any lane, scanned in lane order
  // so the reported message is deterministic for any shard count (empty =
  // healthy). Read only between windows or after a run — the writers are the
  // shard workers. The steady-state loop raises hxwar::Error on it.
  std::string fatalError() const {
    for (const LaneStats& l : lanes_) {
      if (!l.fatalError.empty()) return l.fatalError;
    }
    return std::string();
  }

  // --- counters (lane sums; read at barriers or after a run) ---
  std::uint64_t flitMovements() const { return sum(&LaneStats::flitMovements); }
  std::uint64_t flitsInjected() const { return sum(&LaneStats::flitsInjected); }
  std::uint64_t flitsEjected() const { return sum(&LaneStats::flitsEjected); }
  std::uint64_t packetsCreated() const { return sum(&LaneStats::packetsCreated); }
  std::uint64_t packetsEjected() const { return sum(&LaneStats::packetsEjected); }
  std::uint64_t packetsDropped() const { return sum(&LaneStats::packetsDropped); }
  std::uint64_t flitsDropped() const { return sum(&LaneStats::flitsDropped); }
  // Packets enqueued or in flight but neither delivered nor dropped.
  std::uint64_t packetsOutstanding() const {
    return packetsCreated() - packetsEjected() - packetsDropped();
  }
  // Sum of all source-queue backlogs in flits (saturation signal). O(lanes):
  // maintained by terminal enqueue/injection notifications.
  std::uint64_t totalSourceBacklogFlits() const {
    std::int64_t n = 0;
    for (const LaneStats& l : lanes_) n += l.backlogFlits;
    return static_cast<std::uint64_t>(n);
  }

  // Walks every owned structure and reports the memory budget rows.
  MemoryFootprint memoryFootprint() const;

  // --- flight-recorder walks (cold path; read at kEpsControl boundaries or
  // after a run, when router SoA state is frozen) ---
  // Invokes `fn` once per inter-router link in (router, port) order with the
  // cumulative flits-sent / credit-stall counters and the instantaneous
  // output occupancy of the sending port. Deterministic order and values for
  // any shard count.
  void forEachLinkStats(const std::function<void(const obs::LinkStatsRow&)>& fn) const;
  // Flits buffered per VC index across every router (input queues + output
  // occupancy) — the per-VC heatmap row. Size = configured numVcs.
  std::vector<std::uint64_t> vcOccupancySums() const;

 private:
  void build(const ShardLayout& layout);
  // Recycles immediately when the freeing lane owns the slab; defers
  // cross-lane frees to the barrier (drainDeferredFrees).
  void releasePacket(PacketRef ref, std::uint32_t freeingLane);
  void refreshHopListenerFlag() {
    anyHopListener_ = false;
    for (const LaneStats& l : lanes_) anyHopListener_ |= (l.hopListener != nullptr);
  }
  std::uint64_t sum(std::uint64_t LaneStats::* member) const {
    std::uint64_t n = 0;
    for (const LaneStats& l : lanes_) n += l.*member;
    return n;
  }

  const topo::Topology& topology_;
  NetworkConfig config_;
  std::vector<sim::Simulator*> sims_;          // one per shard
  std::vector<std::uint32_t> routerShard_;     // router -> lane
  std::vector<std::uint32_t> nodeLane_;        // node -> lane (its router's)
  sim::par::Mailboxes* mail_ = nullptr;

  // Lanes and pools are sized once before any component is constructed:
  // routers and terminals cache LaneStats* and the pool table address.
  std::vector<LaneStats> lanes_;
  std::vector<std::unique_ptr<PacketPool>> pools_;
  std::vector<PacketPool*> poolTable_;  // flat, indexed by ref >> kLaneShift

  common::DenseArray<Router> routers_;
  common::DenseArray<Terminal> terminals_;
  common::DenseArray<FlitChannel> flitChannels_;
  common::DenseArray<CreditChannel> creditChannels_;
  std::vector<std::uint8_t> portIsTerminal_;  // [router * maxPorts + port]
  std::uint32_t maxPorts_ = 0;
  bool anyHopListener_ = false;

  // Per-source packet sequence numbers: pkt.id = (src << 32) | seq. Written
  // only from the source's shard, and partition-invariant — the ids (which
  // feed age-arbiter tie-breaks and trace identity) are the same for any
  // shard count. Serial uses the identical scheme.
  std::vector<std::uint32_t> srcSeq_;

  Tick minChannelLatency_ = kTickInvalid;
  Tick crossLookahead_ = kTickInvalid;
  std::string lookaheadDetail_;
};

}  // namespace hxwar::net
