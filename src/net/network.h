// Network: instantiates routers, terminals, and channels from a Topology and
// a RoutingAlgorithm, owns all packets in flight, and aggregates counters for
// the measurement layer.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/types.h"
#include "net/channel.h"
#include "net/packet.h"
#include "net/router.h"
#include "net/terminal.h"
#include "routing/routing.h"
#include "sim/simulator.h"
#include "topo/topology.h"

namespace hxwar::obs {
class NetObserver;
}

namespace hxwar::net {

struct NetworkConfig {
  RouterConfig router;
  Tick channelLatencyRouter = 10;   // cycles, router-to-router
  Tick channelLatencyTerminal = 1;  // cycles, terminal-to-router
  std::uint32_t terminalEjectDepth = 32;  // flits per VC buffered at the terminal
  std::uint64_t rngSeed = 1;
};

class Network {
 public:
  // Called (if set) for every packet that completes, before it is freed.
  using EjectionListener = std::function<void(const Packet&)>;

  // Called (if set) whenever a packet's head flit wins switch allocation:
  // (packet, router, input port, output port, tick). Enables path tracing
  // and structural property checks; costs one branch per head flit when
  // unset.
  using HopListener =
      std::function<void(const Packet&, RouterId, PortId, PortId, Tick)>;

  Network(sim::Simulator& sim, const topo::Topology& topology,
          routing::RoutingAlgorithm& routing, const NetworkConfig& config);
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  Router& router(RouterId r) { return *routers_[r]; }
  Terminal& terminal(NodeId n) { return *terminals_[n]; }
  std::uint32_t numRouters() const { return static_cast<std::uint32_t>(routers_.size()); }
  std::uint32_t numNodes() const { return static_cast<std::uint32_t>(terminals_.size()); }
  const topo::Topology& topology() const { return topology_; }
  const NetworkConfig& config() const { return config_; }
  sim::Simulator& simulator() { return sim_; }

  void setEjectionListener(EjectionListener listener) { listener_ = std::move(listener); }
  // Called (if set) for every packet dropped at a fault dead end.
  void setDropListener(EjectionListener listener) { dropListener_ = std::move(listener); }
  // Installs the fault mask on every router (nullptr disables fault logic).
  // Routers filter candidates and silence dead output ports through it; the
  // mask contents may change mid-run (FaultController transient windows).
  void setDeadPortMask(const fault::DeadPortMask* mask);
  void setHopListener(HopListener listener) { hopListener_ = std::move(listener); }
  // Attaches the observability sink to this network and all its routers
  // (nullptr detaches). One observer per network, same threading rules as the
  // network itself. Hot paths pay one branch on the cached pointer when no
  // observer is attached; see obs/net_observer.h.
  void setObserver(obs::NetObserver* observer);
  obs::NetObserver* observer() const { return obs_; }
  bool hasHopListener() const { return static_cast<bool>(hopListener_); }
  void notifyHop(const Packet& pkt, RouterId router, PortId inPort, PortId outPort) {
    if (hopListener_) hopListener_(pkt, router, inPort, outPort, sim_.now());
  }

  // Convenience: build a packet and hand it to the source terminal.
  Packet& injectPacket(NodeId src, NodeId dst, std::uint32_t sizeFlits);

  // --- packet pool ---
  // Packets are recycled through a per-network free list instead of being
  // heap-allocated per send: at steady state every allocation is a pointer
  // pop + field reset. The arena owns every packet ever handed out, so
  // packets still queued or in flight at teardown are reclaimed with the
  // network.
  Packet* allocPacket();
  void recyclePacket(Packet* pkt) { freePackets_.push_back(pkt); }
  std::size_t packetPoolSize() const { return packetArena_.size(); }
  std::uint64_t packetPoolReuses() const { return packetPoolReuses_; }

  // --- hooks used by routers/terminals ---
  std::uint32_t downstreamDepth(RouterId r, PortId p) const;
  void noteFlitMoved() { flitMovements_ += 1; }
  void noteFlitInjected() { flitsInjected_ += 1; }
  void trackInFlight(Packet* pkt);
  void completePacket(Packet* pkt);
  // Fault dead end: count the loss, notify the drop listener, recycle.
  void dropPacket(Packet* pkt);

  // --- counters ---
  std::uint64_t flitMovements() const { return flitMovements_; }
  std::uint64_t flitsInjected() const { return flitsInjected_; }
  std::uint64_t flitsEjected() const { return flitsEjected_; }
  std::uint64_t packetsCreated() const { return packetsCreated_; }
  std::uint64_t packetsEjected() const { return packetsEjected_; }
  std::uint64_t packetsDropped() const { return packetsDropped_; }
  std::uint64_t flitsDropped() const { return flitsDropped_; }
  // Packets enqueued or in flight but neither delivered nor dropped.
  std::uint64_t packetsOutstanding() const {
    return packetsCreated_ - packetsEjected_ - packetsDropped_;
  }
  // Sum of all source-queue backlogs in flits (saturation signal).
  std::uint64_t totalSourceBacklogFlits() const;

 private:
  sim::Simulator& sim_;
  const topo::Topology& topology_;
  NetworkConfig config_;
  EjectionListener listener_;
  EjectionListener dropListener_;
  HopListener hopListener_;
  obs::NetObserver* obs_ = nullptr;

  std::vector<std::unique_ptr<Router>> routers_;
  std::vector<std::unique_ptr<Terminal>> terminals_;
  std::vector<std::unique_ptr<FlitChannel>> flitChannels_;
  std::vector<std::unique_ptr<CreditChannel>> creditChannels_;
  std::vector<std::uint8_t> portIsTerminal_;  // [router * maxPorts + port]
  std::uint32_t maxPorts_ = 0;

  std::vector<std::unique_ptr<Packet>> packetArena_;
  std::vector<Packet*> freePackets_;
  std::uint64_t packetPoolReuses_ = 0;

  std::uint64_t nextPacketId_ = 1;
  std::uint64_t flitMovements_ = 0;
  std::uint64_t flitsInjected_ = 0;
  std::uint64_t flitsEjected_ = 0;
  std::uint64_t packetsCreated_ = 0;
  std::uint64_t packetsEjected_ = 0;
  std::uint64_t packetsDropped_ = 0;
  std::uint64_t flitsDropped_ = 0;
  std::uint64_t packetsInFlight_ = 0;
};

}  // namespace hxwar::net
