#include "net/network.h"

#include <algorithm>

#include "common/assert.h"
#include "common/rng.h"
#include "obs/net_observer.h"

namespace hxwar::net {

Network::Network(sim::Simulator& sim, const topo::Topology& topology,
                 routing::RoutingAlgorithm& routing, const NetworkConfig& config)
    : sim_(sim), topology_(topology), config_(config) {
  const std::uint32_t numRouters = topology.numRouters();
  const std::uint32_t numNodes = topology.numNodes();
  const routing::VcMap vcMap(config.router.numVcs, routing.numClasses());
  HXWAR_CHECK_MSG(routing.numClasses() <= config.router.numVcs,
                  "routing algorithm needs more VCs than configured");

  SplitMix64 seeds(config.rngSeed);

  // Size the dense arrays exactly before constructing anything: DenseArray
  // capacity is fixed once, and element addresses must stay stable while the
  // wiring loop below hands them out.
  std::size_t terminalPorts = 0;
  std::size_t routerPorts = 0;
  for (RouterId r = 0; r < numRouters; ++r) {
    const std::uint32_t ports = topology.numPorts(r);
    maxPorts_ = std::max(maxPorts_, ports);
    for (PortId p = 0; p < ports; ++p) {
      using Kind = topo::Topology::PortTarget::Kind;
      const auto kind = topology.portTarget(r, p).kind;
      if (kind == Kind::kTerminal) terminalPorts += 1;
      if (kind == Kind::kRouter) routerPorts += 1;
    }
  }
  // Each terminal port carries an injection and an ejection pipe (flit +
  // credit each); each directed router port carries one flit + one credit.
  routers_.reserve(numRouters);
  terminals_.reserve(numNodes);
  flitChannels_.reserve(2 * terminalPorts + routerPorts);
  creditChannels_.reserve(2 * terminalPorts + routerPorts);

  portIsTerminal_.assign(static_cast<std::size_t>(numRouters) * maxPorts_, 0);
  for (RouterId r = 0; r < numRouters; ++r) {
    routers_.emplace_back(sim, this, r, topology.numPorts(r), config.router, &routing, vcMap,
                          seeds.next());
  }
  for (NodeId n = 0; n < numNodes; ++n) {
    terminals_.emplace_back(sim, this, n, config.router.numVcs);
  }

  // Wire every router port.
  for (RouterId r = 0; r < numRouters; ++r) {
    const std::uint32_t ports = topology.numPorts(r);
    for (PortId p = 0; p < ports; ++p) {
      const auto target = topology.portTarget(r, p);
      using Kind = topo::Topology::PortTarget::Kind;
      if (target.kind == Kind::kUnused) continue;
      if (target.kind == Kind::kTerminal) {
        portIsTerminal_[static_cast<std::size_t>(r) * maxPorts_ + p] = 1;
        Terminal& t = terminals_[target.node];
        Router& rt = routers_[r];
        rt.setTerminalPort(p, true);
        // Injection path: terminal -> router flits, router -> terminal credits.
        FlitChannel& inj =
            flitChannels_.emplace_back(sim, config.channelLatencyTerminal, &rt, p);
        CreditChannel& injCr =
            creditChannels_.emplace_back(sim, config.channelLatencyTerminal, &t, PortId{0});
        t.connectOutput(&inj, config.router.inputBufferDepth);
        rt.connectInputCredit(p, &injCr);
        // Ejection path: router -> terminal flits, terminal -> router credits.
        FlitChannel& ej =
            flitChannels_.emplace_back(sim, config.channelLatencyTerminal, &t, PortId{0});
        CreditChannel& ejCr =
            creditChannels_.emplace_back(sim, config.channelLatencyTerminal, &rt, p);
        rt.connectOutput(p, &ej, config.terminalEjectDepth);
        t.connectInputCredit(&ejCr);
        continue;
      }
      // Router-to-router: create the forward flit channel and its paired
      // reverse credit channel. Each directed (r, p) is visited exactly once.
      Router& src = routers_[r];
      Router& dst = routers_[target.router];
      FlitChannel& fc =
          flitChannels_.emplace_back(sim, config.channelLatencyRouter, &dst, target.port);
      CreditChannel& cc =
          creditChannels_.emplace_back(sim, config.channelLatencyRouter, &src, p);
      src.connectOutput(p, &fc, config.router.inputBufferDepth);
      dst.connectInputCredit(target.port, &cc);
    }
  }

  // Pre-size the event heap: each channel can carry roughly one flit and one
  // credit event in flight per cycle of latency, plus per-component cycle
  // events. Avoids reallocation once the network is warm.
  sim.reserveEvents(flitChannels_.size() * 4 + routers_.size() * 2 + terminals_.size() * 2);
}

Network::~Network() = default;

std::uint32_t Network::downstreamDepth(RouterId r, PortId p) const {
  return portIsTerminal_[static_cast<std::size_t>(r) * maxPorts_ + p]
             ? config_.terminalEjectDepth
             : config_.router.inputBufferDepth;
}

Packet& Network::injectPacket(NodeId src, NodeId dst, std::uint32_t sizeFlits) {
  HXWAR_CHECK(src < numNodes() && dst < numNodes() && sizeFlits >= 1);
  Packet& pkt = pool_.get(pool_.alloc());
  pkt.id = nextPacketId_++;
  pkt.src = src;
  pkt.dst = dst;
  pkt.sizeFlits = sizeFlits;
  packetsCreated_ += 1;
  terminals_[src].enqueuePacket(&pkt);
  if constexpr (obs::kCompiledIn) {
    if (obs_ != nullptr) obs_->onPacketCreated(pkt, sim_.now());
  }
  return pkt;
}

void Network::setDeadPortMask(const fault::DeadPortMask* mask) {
  if (mask != nullptr) {
    HXWAR_CHECK_MSG(mask->numRouters() == numRouters() && mask->maxPorts() >= maxPorts_,
                    "dead-port mask shape does not match the network");
  }
  for (Router& r : routers_) r.setDeadPortMask(mask);
}

void Network::setObserver(obs::NetObserver* observer) {
  obs_ = observer;
  for (Router& r : routers_) r.setObserver(observer);
}

void Network::dropPacket(PacketRef ref) {
  Packet& pkt = pool_.get(ref);
  flitsDropped_ += pkt.sizeFlits;
  packetsDropped_ += 1;
  HXWAR_CHECK(packetsInFlight_ > 0);
  packetsInFlight_ -= 1;
  if constexpr (obs::kCompiledIn) {
    if (obs_ != nullptr) obs_->onPacketDone(pkt, /*dropped=*/true, sim_.now());
  }
  if (listener_ != nullptr) listener_->onPacketDropped(pkt);
  pool_.recycle(ref);
}

void Network::completePacket(PacketRef ref) {
  Packet& pkt = pool_.get(ref);
  flitsEjected_ += pkt.sizeFlits;
  packetsEjected_ += 1;
  HXWAR_CHECK(packetsInFlight_ > 0);
  packetsInFlight_ -= 1;
  if constexpr (obs::kCompiledIn) {
    if (obs_ != nullptr) obs_->onPacketDone(pkt, /*dropped=*/false, sim_.now());
  }
  if (listener_ != nullptr) listener_->onPacketEjected(pkt);
  pool_.recycle(ref);
}

Network::MemoryFootprint Network::memoryFootprint() const {
  MemoryFootprint m;
  m.routersBytes = routers_.capacityBytes();
  for (const Router& r : routers_) m.routersBytes += r.memoryBytes();
  m.terminalsBytes = terminals_.capacityBytes();
  for (const Terminal& t : terminals_) m.terminalsBytes += t.memoryBytes();
  m.channelsBytes = flitChannels_.capacityBytes() + creditChannels_.capacityBytes();
  for (const FlitChannel& c : flitChannels_) m.channelsBytes += c.memoryBytes();
  for (const CreditChannel& c : creditChannels_) m.channelsBytes += c.memoryBytes();
  m.packetPoolBytes = pool_.memoryBytes();
  m.miscBytes = sizeof(Network) + portIsTerminal_.capacity();
  m.totalBytes =
      m.routersBytes + m.terminalsBytes + m.channelsBytes + m.packetPoolBytes + m.miscBytes;
  // Configured buffering capacity: per router VC, one input buffer and one
  // output queue. Load-independent, so the budget row is comparable across
  // runs and scales.
  for (RouterId r = 0; r < numRouters(); ++r) {
    m.flitSlots += static_cast<std::uint64_t>(topology_.numPorts(r)) *
                   config_.router.numVcs *
                   (config_.router.inputBufferDepth + config_.router.outputQueueDepth);
  }
  if (numNodes() > 0) {
    m.bytesPerTerminal = static_cast<double>(m.totalBytes) / numNodes();
  }
  if (m.flitSlots > 0) {
    m.bytesPerFlitSlot = static_cast<double>(m.totalBytes) / static_cast<double>(m.flitSlots);
  }
  return m;
}

}  // namespace hxwar::net
