#include "net/network.h"

#include <string>

#include "common/assert.h"
#include "common/rng.h"
#include "obs/net_observer.h"

namespace hxwar::net {

Network::Network(sim::Simulator& sim, const topo::Topology& topology,
                 routing::RoutingAlgorithm& routing, const NetworkConfig& config)
    : sim_(sim), topology_(topology), config_(config) {
  const std::uint32_t numRouters = topology.numRouters();
  const std::uint32_t numNodes = topology.numNodes();
  const routing::VcMap vcMap(config.router.numVcs, routing.numClasses());
  HXWAR_CHECK_MSG(routing.numClasses() <= config.router.numVcs,
                  "routing algorithm needs more VCs than configured");

  SplitMix64 seeds(config.rngSeed);

  routers_.reserve(numRouters);
  for (RouterId r = 0; r < numRouters; ++r) {
    maxPorts_ = std::max(maxPorts_, topology.numPorts(r));
  }
  portIsTerminal_.assign(static_cast<std::size_t>(numRouters) * maxPorts_, 0);
  for (RouterId r = 0; r < numRouters; ++r) {
    routers_.push_back(std::make_unique<Router>(sim, this, r, topology.numPorts(r),
                                                config.router, &routing, vcMap, seeds.next()));
  }
  terminals_.reserve(numNodes);
  for (NodeId n = 0; n < numNodes; ++n) {
    terminals_.push_back(std::make_unique<Terminal>(sim, this, n, config.router.numVcs));
  }

  // Wire every router port.
  for (RouterId r = 0; r < numRouters; ++r) {
    const std::uint32_t ports = topology.numPorts(r);
    for (PortId p = 0; p < ports; ++p) {
      const auto target = topology.portTarget(r, p);
      using Kind = topo::Topology::PortTarget::Kind;
      if (target.kind == Kind::kUnused) continue;
      if (target.kind == Kind::kTerminal) {
        portIsTerminal_[static_cast<std::size_t>(r) * maxPorts_ + p] = 1;
        Terminal& t = *terminals_[target.node];
        Router& rt = *routers_[r];
        rt.setTerminalPort(p, true);
        // Injection path: terminal -> router flits, router -> terminal credits.
        auto inj = std::make_unique<FlitChannel>(
            sim, "inj" + std::to_string(target.node), config.channelLatencyTerminal, &rt, p);
        auto injCr = std::make_unique<CreditChannel>(
            sim, "injcr" + std::to_string(target.node), config.channelLatencyTerminal, &t, 0);
        t.connectOutput(inj.get(), config.router.inputBufferDepth);
        rt.connectInputCredit(p, injCr.get());
        // Ejection path: router -> terminal flits, terminal -> router credits.
        auto ej = std::make_unique<FlitChannel>(
            sim, "ej" + std::to_string(target.node), config.channelLatencyTerminal, &t, 0);
        auto ejCr = std::make_unique<CreditChannel>(
            sim, "ejcr" + std::to_string(target.node), config.channelLatencyTerminal, &rt, p);
        rt.connectOutput(p, ej.get(), config.terminalEjectDepth);
        t.connectInputCredit(ejCr.get());
        flitChannels_.push_back(std::move(inj));
        flitChannels_.push_back(std::move(ej));
        creditChannels_.push_back(std::move(injCr));
        creditChannels_.push_back(std::move(ejCr));
        continue;
      }
      // Router-to-router: create the forward flit channel and its paired
      // reverse credit channel. Each directed (r, p) is visited exactly once.
      Router& src = *routers_[r];
      Router& dst = *routers_[target.router];
      auto fc = std::make_unique<FlitChannel>(
          sim, "ch" + std::to_string(r) + "." + std::to_string(p), config.channelLatencyRouter,
          &dst, target.port);
      auto cc = std::make_unique<CreditChannel>(
          sim, "cr" + std::to_string(r) + "." + std::to_string(p), config.channelLatencyRouter,
          &src, p);
      src.connectOutput(p, fc.get(), config.router.inputBufferDepth);
      dst.connectInputCredit(target.port, cc.get());
      flitChannels_.push_back(std::move(fc));
      creditChannels_.push_back(std::move(cc));
    }
  }

  // Pre-size the event heap: each channel can carry roughly one flit and one
  // credit event in flight per cycle of latency, plus per-component cycle
  // events. Avoids reallocation once the network is warm.
  sim.reserveEvents(flitChannels_.size() * 4 + routers_.size() * 2 + terminals_.size() * 2);
}

Network::~Network() = default;

std::uint32_t Network::downstreamDepth(RouterId r, PortId p) const {
  return portIsTerminal_[static_cast<std::size_t>(r) * maxPorts_ + p]
             ? config_.terminalEjectDepth
             : config_.router.inputBufferDepth;
}

Packet* Network::allocPacket() {
  if (freePackets_.empty()) {
    packetArena_.push_back(std::make_unique<Packet>());
    return packetArena_.back().get();
  }
  Packet* pkt = freePackets_.back();
  freePackets_.pop_back();
  packetPoolReuses_ += 1;
  *pkt = Packet{};  // reset timestamps, routing scratch, reassembly state
  return pkt;
}

Packet& Network::injectPacket(NodeId src, NodeId dst, std::uint32_t sizeFlits) {
  HXWAR_CHECK(src < numNodes() && dst < numNodes() && sizeFlits >= 1);
  Packet* pkt = allocPacket();
  pkt->id = nextPacketId_++;
  pkt->src = src;
  pkt->dst = dst;
  pkt->sizeFlits = sizeFlits;
  packetsCreated_ += 1;
  terminals_[src]->enqueuePacket(pkt);
  if constexpr (obs::kCompiledIn) {
    if (obs_ != nullptr) obs_->onPacketCreated(*pkt, sim_.now());
  }
  return *pkt;
}

void Network::trackInFlight(Packet* pkt) {
  HXWAR_CHECK(pkt != nullptr);
  packetsInFlight_ += 1;
}

void Network::setDeadPortMask(const fault::DeadPortMask* mask) {
  if (mask != nullptr) {
    HXWAR_CHECK_MSG(mask->numRouters() == numRouters() && mask->maxPorts() >= maxPorts_,
                    "dead-port mask shape does not match the network");
  }
  for (auto& r : routers_) r->setDeadPortMask(mask);
}

void Network::setObserver(obs::NetObserver* observer) {
  obs_ = observer;
  for (auto& r : routers_) r->setObserver(observer);
}

void Network::dropPacket(Packet* pkt) {
  flitsDropped_ += pkt->sizeFlits;
  packetsDropped_ += 1;
  HXWAR_CHECK(packetsInFlight_ > 0);
  packetsInFlight_ -= 1;
  if constexpr (obs::kCompiledIn) {
    if (obs_ != nullptr) obs_->onPacketDone(*pkt, /*dropped=*/true, sim_.now());
  }
  if (dropListener_) dropListener_(*pkt);
  recyclePacket(pkt);
}

void Network::completePacket(Packet* pkt) {
  flitsEjected_ += pkt->sizeFlits;
  packetsEjected_ += 1;
  HXWAR_CHECK(packetsInFlight_ > 0);
  packetsInFlight_ -= 1;
  if constexpr (obs::kCompiledIn) {
    if (obs_ != nullptr) obs_->onPacketDone(*pkt, /*dropped=*/false, sim_.now());
  }
  if (listener_) listener_(*pkt);
  recyclePacket(pkt);
}

std::uint64_t Network::totalSourceBacklogFlits() const {
  std::uint64_t n = 0;
  for (const auto& t : terminals_) n += t->sourceQueueFlits();
  return n;
}

}  // namespace hxwar::net
