#include "net/network.h"

#include <algorithm>
#include <cstdio>

#include "common/assert.h"
#include "common/rng.h"
#include "obs/net_observer.h"

namespace hxwar::net {

Network::Network(sim::Simulator& sim, const topo::Topology& topology,
                 routing::RoutingAlgorithm& routing, const NetworkConfig& config)
    : Network(ShardLayout{{&sim}, nullptr, nullptr, {&routing}}, topology, config) {}

Network::Network(const ShardLayout& layout, const topo::Topology& topology,
                 const NetworkConfig& config)
    : topology_(topology), config_(config) {
  build(layout);
}

void Network::build(const ShardLayout& layout) {
  const std::uint32_t numShards = static_cast<std::uint32_t>(layout.sims.size());
  HXWAR_CHECK_MSG(numShards >= 1, "shard layout needs at least one simulator");
  HXWAR_CHECK_MSG(layout.routing.size() == layout.sims.size(),
                  "shard layout needs one routing instance per shard");
  HXWAR_CHECK_MSG(numShards <= (1u << (32 - PacketPool::kLaneShift)),
                  "too many shards for the packet-ref lane bits");
  sims_ = layout.sims;

  const std::uint32_t numRouters = topology_.numRouters();
  const std::uint32_t numNodes = topology_.numNodes();
  if (layout.plan != nullptr) {
    HXWAR_CHECK_MSG(layout.plan->routerShard.size() == numRouters,
                    "shard plan does not cover every router");
    routerShard_ = layout.plan->routerShard;
    for (const std::uint32_t s : routerShard_) HXWAR_CHECK(s < numShards);
  } else {
    HXWAR_CHECK_MSG(numShards == 1, "multi-shard layout needs a shard plan");
    routerShard_.assign(numRouters, 0);
  }
  if (numShards > 1) {
    HXWAR_CHECK_MSG(layout.mail != nullptr && layout.mail->numShards() >= numShards,
                    "multi-shard layout needs mailboxes sized for the shard count");
    mail_ = layout.mail;
  }
  nodeLane_.resize(numNodes);
  for (NodeId n = 0; n < numNodes; ++n) nodeLane_[n] = routerShard_[topology_.nodeRouter(n)];

  routing::RoutingAlgorithm& routing0 = *layout.routing[0];
  const routing::VcMap vcMap(config_.router.numVcs, routing0.numClasses());
  HXWAR_CHECK_MSG(routing0.numClasses() <= config_.router.numVcs,
                  "routing algorithm needs more VCs than configured");
  for (routing::RoutingAlgorithm* alg : layout.routing) {
    HXWAR_CHECK_MSG(alg->numClasses() == routing0.numClasses(),
                    "per-shard routing instances disagree on VC classes");
  }

  lanes_.resize(numShards);
  pools_.reserve(numShards);
  poolTable_.reserve(numShards);
  for (std::uint32_t s = 0; s < numShards; ++s) {
    pools_.push_back(std::make_unique<PacketPool>(
        static_cast<PacketRef>(s) << PacketPool::kLaneShift));
    poolTable_.push_back(pools_.back().get());
  }
  srcSeq_.assign(numNodes, 0);

  SplitMix64 seeds(config_.rngSeed);

  // Size the dense arrays exactly before constructing anything: DenseArray
  // capacity is fixed once, and element addresses must stay stable while the
  // wiring loop below hands them out.
  std::size_t terminalPorts = 0;
  std::size_t routerPorts = 0;
  for (RouterId r = 0; r < numRouters; ++r) {
    const std::uint32_t ports = topology_.numPorts(r);
    maxPorts_ = std::max(maxPorts_, ports);
    for (PortId p = 0; p < ports; ++p) {
      using Kind = topo::Topology::PortTarget::Kind;
      const auto kind = topology_.portTarget(r, p).kind;
      if (kind == Kind::kTerminal) terminalPorts += 1;
      if (kind == Kind::kRouter) routerPorts += 1;
    }
  }
  // Each terminal port carries an injection and an ejection pipe (flit +
  // credit each); each directed router port carries one flit + one credit.
  routers_.reserve(numRouters);
  terminals_.reserve(numNodes);
  flitChannels_.reserve(2 * terminalPorts + routerPorts);
  creditChannels_.reserve(2 * terminalPorts + routerPorts);

  portIsTerminal_.assign(static_cast<std::size_t>(numRouters) * maxPorts_, 0);
  for (RouterId r = 0; r < numRouters; ++r) {
    const std::uint32_t lane = routerShard_[r];
    routers_.emplace_back(*sims_[lane], this, r, topology_.numPorts(r), config_.router,
                          layout.routing[lane], vcMap, seeds.next(), lane, &lanes_[lane],
                          poolTable_.data());
  }
  for (NodeId n = 0; n < numNodes; ++n) {
    const std::uint32_t lane = nodeLane_[n];
    terminals_.emplace_back(*sims_[lane], this, n, config_.router.numVcs, lane,
                            &lanes_[lane], poolTable_.data());
  }

  // Per-shard event-reservation tallies (each channel can carry roughly one
  // flit and one credit event in flight per cycle of latency, plus component
  // cycle events).
  std::vector<std::size_t> reserve(numShards, 0);
  const auto noteLatency = [this](Tick latency) {
    minChannelLatency_ = std::min(minChannelLatency_, latency);
  };
  const auto noteCrossLatency = [this](Tick latency, const char* kind, RouterId src,
                                       PortId port, RouterId dst) {
    if (latency >= crossLookahead_ && crossLookahead_ != kTickInvalid) return;
    crossLookahead_ = latency;
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%s channel router %u port %u -> router %u (latency %llu)", kind, src,
                  port, dst, static_cast<unsigned long long>(latency));
    lookaheadDetail_ = buf;
  };

  // Wire every router port.
  for (RouterId r = 0; r < numRouters; ++r) {
    const std::uint32_t rLane = routerShard_[r];
    sim::Simulator& rSim = *sims_[rLane];
    const std::uint32_t ports = topology_.numPorts(r);
    for (PortId p = 0; p < ports; ++p) {
      const auto target = topology_.portTarget(r, p);
      using Kind = topo::Topology::PortTarget::Kind;
      if (target.kind == Kind::kUnused) continue;
      if (target.kind == Kind::kTerminal) {
        // Terminals share their router's shard, so terminal channels are
        // always shard-local and never constrain the lookahead.
        portIsTerminal_[static_cast<std::size_t>(r) * maxPorts_ + p] = 1;
        Terminal& t = terminals_[target.node];
        Router& rt = routers_[r];
        rt.setTerminalPort(p, true);
        // Injection path: terminal -> router flits, router -> terminal credits.
        FlitChannel& inj =
            flitChannels_.emplace_back(rSim, config_.channelLatencyTerminal, &rt, p);
        CreditChannel& injCr =
            creditChannels_.emplace_back(rSim, config_.channelLatencyTerminal, &t, PortId{0});
        t.connectOutput(&inj, config_.router.inputBufferDepth);
        rt.connectInputCredit(p, &injCr);
        // Ejection path: router -> terminal flits, terminal -> router credits.
        FlitChannel& ej =
            flitChannels_.emplace_back(rSim, config_.channelLatencyTerminal, &t, PortId{0});
        CreditChannel& ejCr =
            creditChannels_.emplace_back(rSim, config_.channelLatencyTerminal, &rt, p);
        rt.connectOutput(p, &ej, config_.terminalEjectDepth);
        t.connectInputCredit(&ejCr);
        noteLatency(config_.channelLatencyTerminal);
        reserve[rLane] += 8;
        continue;
      }
      // Router-to-router: create the forward flit channel and its paired
      // reverse credit channel. Each directed (r, p) is visited exactly once.
      // A channel is a Component of its receiver's shard; when the sender is
      // elsewhere, bind it to the sender shard's outbox toward the receiver.
      Router& src = routers_[r];
      Router& dst = routers_[target.router];
      const std::uint32_t dLane = routerShard_[target.router];
      FlitChannel& fc = flitChannels_.emplace_back(*sims_[dLane], config_.channelLatencyRouter,
                                                   &dst, target.port);
      CreditChannel& cc =
          creditChannels_.emplace_back(rSim, config_.channelLatencyRouter, &src, p);
      if (rLane != dLane) {
        fc.bindRemote(sims_[rLane], &mail_->box(rLane, dLane));
        cc.bindRemote(sims_[dLane], &mail_->box(dLane, rLane));
        noteCrossLatency(config_.channelLatencyRouter, "flit", r, p, target.router);
      }
      src.connectOutput(p, &fc, config_.router.inputBufferDepth);
      dst.connectInputCredit(target.port, &cc);
      noteLatency(config_.channelLatencyRouter);
      reserve[dLane] += 2;
      reserve[rLane] += 2;
    }
  }

  // Pre-size each shard's event heap (avoids reallocation once warm).
  for (RouterId r = 0; r < numRouters; ++r) reserve[routerShard_[r]] += 2;
  for (NodeId n = 0; n < numNodes; ++n) reserve[nodeLane_[n]] += 2;
  for (std::uint32_t s = 0; s < numShards; ++s) sims_[s]->reserveEvents(reserve[s]);
}

Network::~Network() = default;

std::uint32_t Network::downstreamDepth(RouterId r, PortId p) const {
  return portIsTerminal_[static_cast<std::size_t>(r) * maxPorts_ + p]
             ? config_.terminalEjectDepth
             : config_.router.inputBufferDepth;
}

Packet& Network::injectPacket(NodeId src, NodeId dst, std::uint32_t sizeFlits) {
  HXWAR_CHECK(src < numNodes() && dst < numNodes() && sizeFlits >= 1);
  const std::uint32_t lane = nodeLane_[src];
  PacketPool& pool = *poolTable_[lane];
  Packet& pkt = pool.get(pool.alloc());
  // Per-source ids: unique, partition-invariant, and identical under any
  // shard count — the property the age arbiter's tie-break and the trace
  // identity surface rely on.
  pkt.id = (static_cast<std::uint64_t>(src) << 32) | ++srcSeq_[src];
  pkt.src = src;
  pkt.dst = dst;
  pkt.sizeFlits = sizeFlits;
  lanes_[lane].packetsCreated += 1;
  terminals_[src].enqueuePacket(&pkt);
  if constexpr (obs::kCompiledIn) {
    if (obs::NetObserver* o = lanes_[lane].observer) o->onPacketCreated(pkt, sims_[lane]->now());
  }
  return pkt;
}

void Network::setDeadPortMask(const fault::DeadPortMask* mask) {
  if (mask != nullptr) {
    HXWAR_CHECK_MSG(mask->numRouters() == numRouters() && mask->maxPorts() >= maxPorts_,
                    "dead-port mask shape does not match the network");
  }
  for (Router& r : routers_) r.setDeadPortMask(mask);
}

void Network::setObserver(obs::NetObserver* observer) {
  for (LaneStats& l : lanes_) l.observer = observer;
  for (Router& r : routers_) r.setObserver(observer);
}

void Network::setObservers(const std::vector<obs::NetObserver*>& observers) {
  HXWAR_CHECK_MSG(observers.size() == lanes_.size(), "need one observer slot per lane");
  for (std::uint32_t s = 0; s < lanes_.size(); ++s) lanes_[s].observer = observers[s];
  for (RouterId r = 0; r < numRouters(); ++r) {
    routers_[r].setObserver(observers[routerShard_[r]]);
  }
}

void Network::forEachLinkStats(
    const std::function<void(const obs::LinkStatsRow&)>& fn) const {
  for (RouterId r = 0; r < numRouters(); ++r) {
    const Router& router = routers_[r];
    const std::uint32_t ports = topology_.numPorts(r);
    for (PortId p = 0; p < ports; ++p) {
      const topo::Topology::PortTarget t = topology_.portTarget(r, p);
      if (t.kind != topo::Topology::PortTarget::Kind::kRouter) continue;
      obs::LinkStatsRow row;
      row.router = r;
      row.port = p;
      row.peerRouter = t.router;
      row.peerPort = t.port;
      row.flitsSent = router.portFlitsSent(p);
      row.stallTicks = router.portCreditStallTicks(p);
      row.queuedFlits = router.portOutputOccupancy(p);
      fn(row);
    }
  }
}

std::vector<std::uint64_t> Network::vcOccupancySums() const {
  std::vector<std::uint64_t> acc(config_.router.numVcs, 0);
  for (const Router& r : routers_) r.vcOccupancyInto(acc);
  return acc;
}

void Network::dropPacket(PacketRef ref, std::uint32_t lane, Tick now) {
  Packet& pkt = packet(ref);
  LaneStats& l = lanes_[lane];
  l.flitsDropped += pkt.sizeFlits;
  l.packetsDropped += 1;
  if (lanes_.size() == 1) HXWAR_CHECK(l.packetsInFlight > 0);
  l.packetsInFlight -= 1;
  if constexpr (obs::kCompiledIn) {
    if (obs::NetObserver* o = l.observer) o->onPacketDone(pkt, /*dropped=*/true, now);
  }
  if (l.listener != nullptr) l.listener->onPacketDropped(pkt);
  releasePacket(ref, lane);
}

void Network::completePacket(PacketRef ref, std::uint32_t lane, Tick now) {
  Packet& pkt = packet(ref);
  LaneStats& l = lanes_[lane];
  l.flitsEjected += pkt.sizeFlits;
  l.packetsEjected += 1;
  if (lanes_.size() == 1) HXWAR_CHECK(l.packetsInFlight > 0);
  l.packetsInFlight -= 1;
  if constexpr (obs::kCompiledIn) {
    if (obs::NetObserver* o = l.observer) o->onPacketDone(pkt, /*dropped=*/false, now);
  }
  if (l.listener != nullptr) l.listener->onPacketEjected(pkt);
  releasePacket(ref, lane);
}

void Network::releasePacket(PacketRef ref, std::uint32_t freeingLane) {
  const std::uint32_t owner = ref >> PacketPool::kLaneShift;
  if (owner == freeingLane) {
    poolTable_[owner]->recycle(ref);
    return;
  }
  // Another lane's slab: recycling here would race with the owner's worker.
  // Park the ref; the engine's barrier hook drains it (drainDeferredFrees).
  lanes_[freeingLane].deferredFrees.push_back(ref);
}

void Network::drainDeferredFrees() {
  for (LaneStats& l : lanes_) {
    for (const PacketRef ref : l.deferredFrees) {
      poolTable_[ref >> PacketPool::kLaneShift]->recycle(ref);
    }
    l.deferredFrees.clear();
  }
}

Network::MemoryFootprint Network::memoryFootprint() const {
  MemoryFootprint m;
  m.routersBytes = routers_.capacityBytes();
  for (const Router& r : routers_) m.routersBytes += r.memoryBytes();
  m.terminalsBytes = terminals_.capacityBytes();
  for (const Terminal& t : terminals_) m.terminalsBytes += t.memoryBytes();
  m.channelsBytes = flitChannels_.capacityBytes() + creditChannels_.capacityBytes();
  for (const FlitChannel& c : flitChannels_) m.channelsBytes += c.memoryBytes();
  for (const CreditChannel& c : creditChannels_) m.channelsBytes += c.memoryBytes();
  for (const PacketPool* p : poolTable_) m.packetPoolBytes += p->memoryBytes();
  m.miscBytes = sizeof(Network) + portIsTerminal_.capacity() +
                lanes_.capacity() * sizeof(LaneStats) +
                (routerShard_.capacity() + nodeLane_.capacity() + srcSeq_.capacity()) *
                    sizeof(std::uint32_t) +
                (sims_.capacity() + pools_.capacity() + poolTable_.capacity()) * sizeof(void*);
  for (const LaneStats& l : lanes_) m.miscBytes += l.deferredFrees.capacity() * sizeof(PacketRef);
  m.totalBytes =
      m.routersBytes + m.terminalsBytes + m.channelsBytes + m.packetPoolBytes + m.miscBytes;
  // Configured buffering capacity: per router VC, one input buffer and one
  // output queue. Load-independent, so the budget row is comparable across
  // runs and scales.
  for (RouterId r = 0; r < numRouters(); ++r) {
    m.flitSlots += static_cast<std::uint64_t>(topology_.numPorts(r)) *
                   config_.router.numVcs *
                   (config_.router.inputBufferDepth + config_.router.outputQueueDepth);
  }
  if (numNodes() > 0) {
    m.bytesPerTerminal = static_cast<double>(m.totalBytes) / numNodes();
  }
  if (m.flitSlots > 0) {
    m.bytesPerFlitSlot = static_cast<double>(m.totalBytes) / static_cast<double>(m.flitSlots);
  }
  return m;
}

}  // namespace hxwar::net
