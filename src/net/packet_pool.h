// PacketPool: chunked slab of Packets addressed by 4-byte slot refs.
//
// PR 1's pool recycled heap packets through a free list but still paid one
// unique_ptr allocation per slot forever. This is a true slab: packets live
// in 1,024-element chunks, a slot's PacketRef is (chunk << 10) | offset, and
// the ref — not the address — is the packet's identity while live. Chunk
// addresses never move, so `Packet&` resolved from a ref stays valid across
// later growth; flits and source queues carry the 4-byte ref.
//
// Recycling reuses slots LIFO (the hottest slot first). A slot's ref is
// stable across recycle — the same slot hands out the same ref to its next
// tenant — and alloc() fully resets the record, so no state leaks between
// tenants. Double-recycle is a protocol violation, caught in !NDEBUG builds
// by a per-slot liveness bit.
//
// Sharded execution gives each lane its own pool, namespaced by `refBase`
// (lane << kLaneShift): refs from different lanes never collide, so a flit's
// 4-byte ref still identifies its packet globally — the network resolves the
// owning pool from the ref's top bits. Each pool caps at kLaneSpan slots so
// the lane bits stay disjoint.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/assert.h"
#include "common/types.h"
#include "net/packet.h"

namespace hxwar::net {

class PacketPool {
 public:
  static constexpr std::uint32_t kChunkShift = 10;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;
  // Lane namespace: ref = (lane << kLaneShift) | slot. 64 lanes max, 64M
  // live packets per lane (~5 GiB of Packet records — far past any budget).
  static constexpr std::uint32_t kLaneShift = 26;
  static constexpr std::uint32_t kLaneSpan = 1u << kLaneShift;

  PacketPool() = default;
  explicit PacketPool(PacketRef refBase) : refBase_(refBase) {
    HXWAR_CHECK_MSG((refBase & (kLaneSpan - 1)) == 0, "pool refBase must be lane-aligned");
  }
  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  Packet& get(PacketRef ref) {
    HXWAR_DCHECK(ref - refBase_ < slots_);
    const PacketRef local = ref - refBase_;
    return chunks_[local >> kChunkShift][local & (kChunkSize - 1)];
  }
  const Packet& get(PacketRef ref) const {
    HXWAR_DCHECK(ref - refBase_ < slots_);
    const PacketRef local = ref - refBase_;
    return chunks_[local >> kChunkShift][local & (kChunkSize - 1)];
  }

  // Hands out a fully reset packet with `slot` stamped. Grows by one chunk
  // when the free list is dry.
  PacketRef alloc() {
    if (free_.empty()) addChunk();
    const PacketRef ref = free_.back();
    free_.pop_back();
    // Fresh chunks enter the LIFO so refs pop in ascending order; a ref below
    // the high-water mark has had a previous tenant.
    if (ref - refBase_ < highWater_) {
      reuses_ += 1;
    } else {
      highWater_ = ref - refBase_ + 1;
    }
#ifndef NDEBUG
    live_[ref - refBase_] = 1;
#endif
    Packet& pkt = get(ref);
    pkt = Packet{};  // reset timestamps, routing scratch, reassembly state
    pkt.slot = ref;
    return ref;
  }

  void recycle(PacketRef ref) {
    HXWAR_DCHECK(ref - refBase_ < slots_);
#ifndef NDEBUG
    HXWAR_DCHECK_MSG(live_[ref - refBase_] != 0, "packet double-recycle (slot already free)");
    live_[ref - refBase_] = 0;
#endif
    free_.push_back(ref);
  }

  std::size_t size() const { return slots_; }
  std::size_t freeCount() const { return free_.size(); }
  std::uint64_t reuses() const { return reuses_; }

  // Bytes owned by the slab and its bookkeeping (memory-accounting hook).
  std::size_t memoryBytes() const {
    std::size_t n = chunks_.capacity() * sizeof(chunks_[0]) +
                    chunks_.size() * kChunkSize * sizeof(Packet) +
                    free_.capacity() * sizeof(PacketRef);
#ifndef NDEBUG
    n += live_.capacity();
#endif
    return n;
  }

 private:
  void addChunk() {
    HXWAR_CHECK_MSG(slots_ + kChunkSize <= kLaneSpan, "packet slab exhausted (2^26 slots/lane)");
    chunks_.push_back(std::make_unique<Packet[]>(kChunkSize));
    const PacketRef base = refBase_ + slots_;
    slots_ += kChunkSize;
#ifndef NDEBUG
    live_.resize(slots_, 0);
#endif
    free_.reserve(free_.size() + kChunkSize);
    for (std::uint32_t i = 0; i < kChunkSize; ++i) {
      free_.push_back(base + (kChunkSize - 1 - i));  // LIFO pops base first
    }
  }

  std::vector<std::unique_ptr<Packet[]>> chunks_;
  std::vector<PacketRef> free_;   // LIFO: hottest slot first (global refs)
  PacketRef refBase_ = 0;         // lane << kLaneShift
  std::uint32_t slots_ = 0;       // local slot count
  std::uint32_t highWater_ = 0;   // local slots below this had a previous tenant
  std::uint64_t reuses_ = 0;
#ifndef NDEBUG
  std::vector<std::uint8_t> live_;  // double-recycle guard
#endif
};

}  // namespace hxwar::net
