#include "metrics/steady_state.h"

#include "common/assert.h"
#include "common/log.h"
#include "obs/net_observer.h"

namespace hxwar::metrics {
namespace {

// Aborts on a network-wide stall: nothing moved for a full window while
// packets are outstanding. With correct deadlock avoidance this never fires.
void watchdog(const net::Network& network, std::uint64_t movesBefore) {
  if (network.packetsOutstanding() == 0) return;
  HXWAR_CHECK_MSG(network.flitMovements() != movesBefore,
                  "network stalled: possible routing deadlock");
}

}  // namespace

SteadyStateResult runSteadyState(sim::Simulator& sim, net::Network& network,
                                 traffic::SyntheticInjector& injector,
                                 const SteadyStateConfig& config) {
  SteadyStateResult result;
  result.offered = injector.rate();

  // Lifecycle listener for the whole run: the ejection hook is re-pointed
  // between the warmup and measurement phases.
  net::CallbackListener listener;

  // Window latency accumulator used during warmup.
  StreamingStats windowLatency;
  listener.ejected = [&](const net::Packet& pkt) {
    windowLatency.add(static_cast<double>(pkt.ejectedAt - pkt.createdAt));
  };
  network.setListener(&listener);

  injector.start();
  const Tick start = sim.now();

  // --- warmup ---
  bool stable = false;
  double prevMean = -1.0;
  std::uint32_t stableCount = 0;
  std::uint64_t prevBacklog = 0;
  for (std::uint32_t w = 0; w < config.maxWarmupWindows; ++w) {
    windowLatency.reset();
    const std::uint64_t movesBefore = network.flitMovements();
    const std::uint64_t ejectedBefore = network.flitsEjected();
    const std::uint64_t droppedBefore = network.flitsDropped();
    sim.run(sim.now() + config.warmupWindow);
    watchdog(network, movesBefore);

    // A saturated network can show stable latencies for the packets it does
    // deliver while the source queues diverge; require the delivered rate to
    // track the offered rate and the backlog to stop growing. Flits dropped
    // at fault dead ends count as handled here — a lossy-but-stable degraded
    // network is stable, not saturated (the loss shows up in droppedShare,
    // not as a refusal to measure) — while result.accepted stays
    // delivered-only.
    const double windowAccepted =
        static_cast<double>(network.flitsEjected() - ejectedBefore +
                            network.flitsDropped() - droppedBefore) /
        (static_cast<double>(network.numNodes()) * static_cast<double>(config.warmupWindow));
    const bool underDelivering = windowAccepted < config.acceptedTol * injector.rate();

    const std::uint64_t backlog = network.totalSourceBacklogFlits();
    const bool backlogGrowing =
        backlog > static_cast<std::uint64_t>(
                      static_cast<double>(prevBacklog) * config.backlogGrowthTol) &&
        backlog > network.numNodes();  // ignore noise at trivial backlogs
    prevBacklog = backlog;

    if (windowLatency.count() > 0 && prevMean > 0.0 && !backlogGrowing && !underDelivering) {
      const double rel = std::abs(windowLatency.mean() - prevMean) / prevMean;
      stableCount = (rel <= config.stabilityTol) ? stableCount + 1 : 0;
    } else {
      stableCount = 0;
    }
    prevMean = windowLatency.count() > 0 ? windowLatency.mean() : prevMean;
    if (stableCount >= config.stableWindows) {
      stable = true;
      result.warmupCycles = sim.now() - start;
      break;
    }
  }
  if (!stable) {
    result.saturated = true;
    result.warmupCycles = sim.now() - start;
  }

  // --- measurement ---
  // Even when saturated we measure accepted throughput (needed for the
  // Fig. 6g throughput comparison); latency statistics are only meaningful
  // when the warmup stabilized.
  SampleStats latency;
  StreamingStats hops;
  StreamingStats deroutes;
  StreamingStats stretch;
  std::vector<StreamingStats> perHopLatency;
  const Tick mStart = sim.now();
  const Tick mEnd = mStart + config.measureWindow;
  std::uint64_t markedEjected = 0;
  std::uint64_t markedDropped = 0;
  const topo::Topology& topology = network.topology();

  listener.ejected = [&](const net::Packet& pkt) {
    if (pkt.createdAt < mStart || pkt.createdAt >= mEnd) return;
    const Tick lat = pkt.ejectedAt - pkt.createdAt;
    latency.add(static_cast<double>(lat));
    result.latencyHistogram.add(lat);
    if (pkt.hops >= perHopLatency.size()) perHopLatency.resize(pkt.hops + 1);
    perHopLatency[pkt.hops].add(static_cast<double>(lat));
    hops.add(pkt.hops);
    deroutes.add(pkt.deroutes);
    // Path stretch against the effective topology: on a degraded network
    // minHops is the BFS distance over surviving links, so routing around a
    // fault on a shortest reachable path still scores 1.0.
    const std::uint32_t minHops =
        topology.minHops(topology.nodeRouter(pkt.src), topology.nodeRouter(pkt.dst));
    if (minHops > 0) {
      stretch.add(static_cast<double>(pkt.hops) / static_cast<double>(minHops));
    }
    markedEjected += 1;
  };
  listener.dropped = [&](const net::Packet& pkt) {
    if (pkt.createdAt < mStart || pkt.createdAt >= mEnd) return;
    markedDropped += 1;
  };

  const std::uint64_t createdBefore = network.packetsCreated();
  const std::uint64_t ejectedFlitsBefore = network.flitsEjected();
  {
    const std::uint64_t movesBefore = network.flitMovements();
    sim.run(mEnd);
    watchdog(network, movesBefore);
  }
  const std::uint64_t markedCreated = network.packetsCreated() - createdBefore;
  result.accepted = static_cast<double>(network.flitsEjected() - ejectedFlitsBefore) /
                    (static_cast<double>(network.numNodes()) *
                     static_cast<double>(config.measureWindow));

  // Drain: keep injecting (per the paper) until every marked packet arrives
  // or the drain budget runs out.
  const Tick drainDeadline = mEnd + config.drainWindow;
  while (!result.saturated && markedEjected + markedDropped < markedCreated &&
         sim.now() < drainDeadline) {
    const std::uint64_t movesBefore = network.flitMovements();
    sim.run(std::min(sim.now() + config.warmupWindow, drainDeadline));
    watchdog(network, movesBefore);
  }
  if (markedEjected + markedDropped < markedCreated && !result.saturated) {
    // Could not drain: the network is effectively saturated at this load.
    result.saturated = true;
  }
  if (!result.saturated && markedEjected < config.minMeasurePackets) {
    HXWAR_LOG_WARN("steady-state measurement captured only %llu packets",
                   static_cast<unsigned long long>(markedEjected));
  }

  injector.stop();
  network.setListener(nullptr);

  result.packetsMeasured = markedEjected;
  result.packetsDropped = markedDropped;
  if (markedCreated > 0) {
    result.droppedShare =
        static_cast<double>(markedDropped) / static_cast<double>(markedCreated);
  }
  if (markedEjected > 0) {
    result.latencyMean = latency.mean();
    result.latencyP50 = latency.percentile(0.50);
    result.latencyP90 = latency.percentile(0.90);
    result.latencyP99 = latency.percentile(0.99);
    result.latencyP999 = latency.percentile(0.999);
    result.latencyMin = latency.min();
    result.latencyMax = latency.max();
    result.avgHops = hops.mean();
    result.avgDeroutes = deroutes.mean();
    result.avgStretch = stretch.count() > 0 ? stretch.mean() : 0.0;
    result.hopLatency.resize(perHopLatency.size());
    for (std::size_t h = 0; h < perHopLatency.size(); ++h) {
      result.hopLatency[h].packets = perHopLatency[h].count();
      result.hopLatency[h].meanLatency = perHopLatency[h].mean();
    }
  }
  if constexpr (obs::kCompiledIn) {
    if (network.observer() != nullptr) {
      result.routing = network.observer()->routingCounters();
    }
  }
  return result;
}

}  // namespace hxwar::metrics
