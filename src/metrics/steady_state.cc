#include "metrics/steady_state.h"

#include "common/assert.h"
#include "common/log.h"

namespace hxwar::metrics {
namespace {

// Aborts on a network-wide stall: nothing moved for a full window while
// packets are outstanding. With correct deadlock avoidance this never fires.
void watchdog(const net::Network& network, std::uint64_t movesBefore) {
  if (network.packetsOutstanding() == 0) return;
  HXWAR_CHECK_MSG(network.flitMovements() != movesBefore,
                  "network stalled: possible routing deadlock");
}

}  // namespace

SteadyStateResult runSteadyState(sim::Simulator& sim, net::Network& network,
                                 traffic::SyntheticInjector& injector,
                                 const SteadyStateConfig& config) {
  SteadyStateResult result;
  result.offered = injector.rate();

  // Window latency accumulator used during warmup.
  StreamingStats windowLatency;
  network.setEjectionListener([&](const net::Packet& pkt) {
    windowLatency.add(static_cast<double>(pkt.ejectedAt - pkt.createdAt));
  });

  injector.start();
  const Tick start = sim.now();

  // --- warmup ---
  bool stable = false;
  double prevMean = -1.0;
  std::uint32_t stableCount = 0;
  std::uint64_t prevBacklog = 0;
  for (std::uint32_t w = 0; w < config.maxWarmupWindows; ++w) {
    windowLatency.reset();
    const std::uint64_t movesBefore = network.flitMovements();
    const std::uint64_t ejectedBefore = network.flitsEjected();
    sim.run(sim.now() + config.warmupWindow);
    watchdog(network, movesBefore);

    // A saturated network can show stable latencies for the packets it does
    // deliver while the source queues diverge; require the delivered rate to
    // track the offered rate and the backlog to stop growing.
    const double windowAccepted =
        static_cast<double>(network.flitsEjected() - ejectedBefore) /
        (static_cast<double>(network.numNodes()) * static_cast<double>(config.warmupWindow));
    const bool underDelivering = windowAccepted < config.acceptedTol * injector.rate();

    const std::uint64_t backlog = network.totalSourceBacklogFlits();
    const bool backlogGrowing =
        backlog > static_cast<std::uint64_t>(
                      static_cast<double>(prevBacklog) * config.backlogGrowthTol) &&
        backlog > network.numNodes();  // ignore noise at trivial backlogs
    prevBacklog = backlog;

    if (windowLatency.count() > 0 && prevMean > 0.0 && !backlogGrowing && !underDelivering) {
      const double rel = std::abs(windowLatency.mean() - prevMean) / prevMean;
      stableCount = (rel <= config.stabilityTol) ? stableCount + 1 : 0;
    } else {
      stableCount = 0;
    }
    prevMean = windowLatency.count() > 0 ? windowLatency.mean() : prevMean;
    if (stableCount >= config.stableWindows) {
      stable = true;
      result.warmupCycles = sim.now() - start;
      break;
    }
  }
  if (!stable) {
    result.saturated = true;
    result.warmupCycles = sim.now() - start;
  }

  // --- measurement ---
  // Even when saturated we measure accepted throughput (needed for the
  // Fig. 6g throughput comparison); latency statistics are only meaningful
  // when the warmup stabilized.
  SampleStats latency;
  StreamingStats hops;
  StreamingStats deroutes;
  const Tick mStart = sim.now();
  const Tick mEnd = mStart + config.measureWindow;
  std::uint64_t markedEjected = 0;

  network.setEjectionListener([&](const net::Packet& pkt) {
    if (pkt.createdAt < mStart || pkt.createdAt >= mEnd) return;
    latency.add(static_cast<double>(pkt.ejectedAt - pkt.createdAt));
    hops.add(pkt.hops);
    deroutes.add(pkt.deroutes);
    markedEjected += 1;
  });

  const std::uint64_t createdBefore = network.packetsCreated();
  const std::uint64_t ejectedFlitsBefore = network.flitsEjected();
  {
    const std::uint64_t movesBefore = network.flitMovements();
    sim.run(mEnd);
    watchdog(network, movesBefore);
  }
  const std::uint64_t markedCreated = network.packetsCreated() - createdBefore;
  result.accepted = static_cast<double>(network.flitsEjected() - ejectedFlitsBefore) /
                    (static_cast<double>(network.numNodes()) *
                     static_cast<double>(config.measureWindow));

  // Drain: keep injecting (per the paper) until every marked packet arrives
  // or the drain budget runs out.
  const Tick drainDeadline = mEnd + config.drainWindow;
  while (!result.saturated && markedEjected < markedCreated && sim.now() < drainDeadline) {
    const std::uint64_t movesBefore = network.flitMovements();
    sim.run(std::min(sim.now() + config.warmupWindow, drainDeadline));
    watchdog(network, movesBefore);
  }
  if (markedEjected < markedCreated && !result.saturated) {
    // Could not drain: the network is effectively saturated at this load.
    result.saturated = true;
  }
  if (!result.saturated && markedEjected < config.minMeasurePackets) {
    HXWAR_LOG_WARN("steady-state measurement captured only %llu packets",
                   static_cast<unsigned long long>(markedEjected));
  }

  injector.stop();
  network.setEjectionListener(nullptr);

  result.packetsMeasured = markedEjected;
  if (markedEjected > 0) {
    result.latencyMean = latency.mean();
    result.latencyP50 = latency.percentile(0.50);
    result.latencyP99 = latency.percentile(0.99);
    result.latencyMin = latency.min();
    result.latencyMax = latency.max();
    result.avgHops = hops.mean();
    result.avgDeroutes = deroutes.mean();
  }
  return result;
}

}  // namespace hxwar::metrics
