#include "metrics/steady_state.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"
#include "common/error.h"
#include "common/log.h"
#include "net/deadlock.h"
#include "obs/net_observer.h"

namespace hxwar::metrics {
namespace {

// Health check between windows (the backend is parked, so lane state is safe
// to read). Raises hxwar::Error — not a CHECK-abort — so one bad sweep point
// becomes a structured failed row instead of killing the whole --jobs sweep:
//   * a deferred-fatal message from a router (abort fault policy, recorded
//     worker-side; see net/lane.h) is rethrown verbatim;
//   * a network-wide stall (nothing moved for a full window while packets
//     are outstanding) walks the SoA VC state for a credit- or
//     allocation-wait cycle and names the blocking chain instead of just
//     the tick (DESIGN.md §13).
void watchdog(const net::Network& network, std::uint64_t movesBefore) {
  const std::string fatal = network.fatalError();
  if (!fatal.empty()) throw Error(fatal);
  if (network.packetsOutstanding() == 0) return;
  if (network.flitMovements() != movesBefore) return;
  std::string msg = "network stalled: possible routing deadlock";
  const std::string cycle = net::findCreditWaitCycle(network);
  if (!cycle.empty()) msg += "\n" + cycle;
  throw Error(msg);
}

// Per-lane measurement accumulator. Each lane's listener callbacks run on
// that lane's worker thread (or the one serial thread); nothing here is
// shared across lanes, and everything is merged in lane order between run()
// calls — by integer sums or sorted-sample ranks, never by arrival order —
// so the merged statistics are identical for any shard count.
struct LaneAcc {
  // Warmup: mean latency of packets ejected in the current window.
  std::uint64_t winCount = 0;
  std::uint64_t winLatSum = 0;

  // Measurement (marked packets only).
  std::vector<Tick> latencies;  // raw samples, for exact percentiles
  std::uint64_t latSum = 0;
  std::uint64_t hopsSum = 0;
  std::uint64_t deroutesSum = 0;
  std::uint64_t ejected = 0;
  std::uint64_t dropped = 0;
  obs::LogHistogram hist;
  struct HopBucket {
    std::uint64_t count = 0;
    std::uint64_t latSum = 0;
  };
  std::vector<HopBucket> perHop;  // indexed by hop count
  struct StretchBucket {
    std::uint64_t count = 0;
    std::uint64_t hopsSum = 0;
  };
  std::vector<StretchBucket> byMinHops;  // indexed by minimal hop count
};

double percentileOf(const std::vector<Tick>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  // Same nearest-rank convention as SampleStats::percentile.
  const auto idx = static_cast<std::size_t>(p * static_cast<double>(sorted.size() - 1) + 0.5);
  return static_cast<double>(sorted[std::min(idx, sorted.size() - 1)]);
}

}  // namespace

SteadyStateResult runSteadyState(sim::SimBackend& backend, net::Network& network,
                                 const std::vector<traffic::SyntheticInjector*>& injectors,
                                 const SteadyStateConfig& config) {
  HXWAR_CHECK_MSG(!injectors.empty(), "steady state needs at least one injector");
  SteadyStateResult result;
  result.offered = injectors[0]->rate();
  for (const auto* inj : injectors) {
    HXWAR_CHECK_MSG(inj->rate() == result.offered,
                    "all steady-state injectors must share one offered rate");
  }

  const std::uint32_t lanes = network.numLanes();
  std::vector<LaneAcc> acc(lanes);
  std::vector<net::CallbackListener> listeners(lanes);

  // Lifecycle listeners for the whole run: the ejection hooks are re-pointed
  // between the warmup and measurement phases (only while the backend is
  // parked between run() calls — never mid-window).
  for (std::uint32_t l = 0; l < lanes; ++l) {
    LaneAcc& a = acc[l];
    listeners[l].ejected = [&a](const net::Packet& pkt) {
      a.winCount += 1;
      a.winLatSum += pkt.ejectedAt - pkt.createdAt;
    };
    network.setListener(l, &listeners[l]);
  }

  for (auto* inj : injectors) inj->start();
  const Tick start = backend.now();

  // --- warmup ---
  bool stable = false;
  double prevMean = -1.0;
  std::uint32_t stableCount = 0;
  std::uint64_t prevBacklog = 0;
  for (std::uint32_t w = 0; w < config.maxWarmupWindows; ++w) {
    for (auto& a : acc) {
      a.winCount = 0;
      a.winLatSum = 0;
    }
    const std::uint64_t movesBefore = network.flitMovements();
    const std::uint64_t ejectedBefore = network.flitsEjected();
    const std::uint64_t droppedBefore = network.flitsDropped();
    backend.run(backend.now() + config.warmupWindow);
    watchdog(network, movesBefore);

    // A saturated network can show stable latencies for the packets it does
    // deliver while the source queues diverge; require the delivered rate to
    // track the offered rate and the backlog to stop growing. Flits dropped
    // at fault dead ends count as handled here — a lossy-but-stable degraded
    // network is stable, not saturated (the loss shows up in droppedShare,
    // not as a refusal to measure) — while result.accepted stays
    // delivered-only.
    const double windowAccepted =
        static_cast<double>(network.flitsEjected() - ejectedBefore +
                            network.flitsDropped() - droppedBefore) /
        (static_cast<double>(network.numNodes()) * static_cast<double>(config.warmupWindow));
    const bool underDelivering = windowAccepted < config.acceptedTol * result.offered;

    const std::uint64_t backlog = network.totalSourceBacklogFlits();
    const bool backlogGrowing =
        backlog > static_cast<std::uint64_t>(
                      static_cast<double>(prevBacklog) * config.backlogGrowthTol) &&
        backlog > network.numNodes();  // ignore noise at trivial backlogs
    prevBacklog = backlog;

    std::uint64_t winCount = 0;
    std::uint64_t winLatSum = 0;
    for (const auto& a : acc) {
      winCount += a.winCount;
      winLatSum += a.winLatSum;
    }
    const double winMean =
        winCount > 0 ? static_cast<double>(winLatSum) / static_cast<double>(winCount) : 0.0;
    if (winCount > 0 && prevMean > 0.0 && !backlogGrowing && !underDelivering) {
      const double rel = std::abs(winMean - prevMean) / prevMean;
      stableCount = (rel <= config.stabilityTol) ? stableCount + 1 : 0;
    } else {
      stableCount = 0;
    }
    prevMean = winCount > 0 ? winMean : prevMean;
    if (stableCount >= config.stableWindows) {
      stable = true;
      result.warmupCycles = backend.now() - start;
      break;
    }
  }
  if (!stable) {
    result.saturated = true;
    result.warmupCycles = backend.now() - start;
  }

  // --- measurement ---
  // Even when saturated we measure accepted throughput (needed for the
  // Fig. 6g throughput comparison); latency statistics are only meaningful
  // when the warmup stabilized.
  const Tick mStart = backend.now();
  const Tick mEnd = mStart + config.measureWindow;
  const topo::Topology& topology = network.topology();

  for (std::uint32_t l = 0; l < lanes; ++l) {
    LaneAcc& a = acc[l];
    listeners[l].ejected = [&a, &topology, mStart, mEnd](const net::Packet& pkt) {
      if (pkt.createdAt < mStart || pkt.createdAt >= mEnd) return;
      const Tick lat = pkt.ejectedAt - pkt.createdAt;
      a.latencies.push_back(lat);
      a.latSum += lat;
      a.hist.add(static_cast<double>(lat));
      if (pkt.hops >= a.perHop.size()) a.perHop.resize(pkt.hops + 1);
      a.perHop[pkt.hops].count += 1;
      a.perHop[pkt.hops].latSum += lat;
      a.hopsSum += pkt.hops;
      a.deroutesSum += pkt.deroutes;
      // Path stretch against the effective topology: on a degraded network
      // minHops is the BFS distance over surviving links, so routing around a
      // fault on a shortest reachable path still scores 1.0. Bucketed by
      // minHops (integer sums) so the mean is order-invariant.
      const std::uint32_t minHops =
          topology.minHops(topology.nodeRouter(pkt.src), topology.nodeRouter(pkt.dst));
      // An ejected packet's pair is reachable by construction, but a
      // partition-tolerant DegradedTopology can hold kUnreachable entries;
      // never let one size the stretch buckets.
      if (minHops > 0 && minHops != 0xffffffffu) {
        if (minHops >= a.byMinHops.size()) a.byMinHops.resize(minHops + 1);
        a.byMinHops[minHops].count += 1;
        a.byMinHops[minHops].hopsSum += pkt.hops;
      }
      a.ejected += 1;
    };
    listeners[l].dropped = [&a, mStart, mEnd](const net::Packet& pkt) {
      if (pkt.createdAt < mStart || pkt.createdAt >= mEnd) return;
      a.dropped += 1;
    };
  }

  const auto markedDone = [&acc] {
    std::uint64_t done = 0;
    for (const auto& a : acc) done += a.ejected + a.dropped;
    return done;
  };

  const std::uint64_t createdBefore = network.packetsCreated();
  const std::uint64_t ejectedFlitsBefore = network.flitsEjected();
  {
    const std::uint64_t movesBefore = network.flitMovements();
    backend.run(mEnd);
    watchdog(network, movesBefore);
  }
  const std::uint64_t markedCreated = network.packetsCreated() - createdBefore;
  result.accepted = static_cast<double>(network.flitsEjected() - ejectedFlitsBefore) /
                    (static_cast<double>(network.numNodes()) *
                     static_cast<double>(config.measureWindow));

  // Drain: keep injecting (per the paper) until every marked packet arrives
  // or the drain budget runs out.
  const Tick drainDeadline = mEnd + config.drainWindow;
  while (!result.saturated && markedDone() < markedCreated &&
         backend.now() < drainDeadline) {
    const std::uint64_t movesBefore = network.flitMovements();
    backend.run(std::min(backend.now() + config.warmupWindow, drainDeadline));
    watchdog(network, movesBefore);
  }
  if (markedDone() < markedCreated && !result.saturated) {
    // Could not drain: the network is effectively saturated at this load.
    result.saturated = true;
  }

  for (auto* inj : injectors) inj->stop();
  for (std::uint32_t l = 0; l < lanes; ++l) network.setListener(l, nullptr);

  // --- merge (lane order; integer sums and sorted samples only) ---
  std::uint64_t markedEjected = 0;
  std::uint64_t markedDropped = 0;
  std::vector<Tick> latencies;
  std::uint64_t latSum = 0;
  std::uint64_t hopsSum = 0;
  std::uint64_t deroutesSum = 0;
  std::vector<LaneAcc::HopBucket> perHop;
  std::vector<LaneAcc::StretchBucket> byMinHops;
  for (const auto& a : acc) {
    markedEjected += a.ejected;
    markedDropped += a.dropped;
    latencies.insert(latencies.end(), a.latencies.begin(), a.latencies.end());
    latSum += a.latSum;
    hopsSum += a.hopsSum;
    deroutesSum += a.deroutesSum;
    result.latencyHistogram.merge(a.hist);
    if (perHop.size() < a.perHop.size()) perHop.resize(a.perHop.size());
    for (std::size_t h = 0; h < a.perHop.size(); ++h) {
      perHop[h].count += a.perHop[h].count;
      perHop[h].latSum += a.perHop[h].latSum;
    }
    if (byMinHops.size() < a.byMinHops.size()) byMinHops.resize(a.byMinHops.size());
    for (std::size_t m = 0; m < a.byMinHops.size(); ++m) {
      byMinHops[m].count += a.byMinHops[m].count;
      byMinHops[m].hopsSum += a.byMinHops[m].hopsSum;
    }
  }
  std::sort(latencies.begin(), latencies.end());

  if (!result.saturated && markedEjected < config.minMeasurePackets) {
    HXWAR_LOG_WARN("steady-state measurement captured only %llu packets",
                   static_cast<unsigned long long>(markedEjected));
  }

  result.packetsMeasured = markedEjected;
  result.packetsDropped = markedDropped;
  if (markedCreated > 0) {
    result.droppedShare =
        static_cast<double>(markedDropped) / static_cast<double>(markedCreated);
  }
  if (markedEjected > 0) {
    const auto n = static_cast<double>(markedEjected);
    result.latencyMean = static_cast<double>(latSum) / n;
    result.latencyP50 = percentileOf(latencies, 0.50);
    result.latencyP90 = percentileOf(latencies, 0.90);
    result.latencyP99 = percentileOf(latencies, 0.99);
    result.latencyP999 = percentileOf(latencies, 0.999);
    result.latencyMin = static_cast<double>(latencies.front());
    result.latencyMax = static_cast<double>(latencies.back());
    result.avgHops = static_cast<double>(hopsSum) / n;
    result.avgDeroutes = static_cast<double>(deroutesSum) / n;
    std::uint64_t stretchCount = 0;
    double stretchSum = 0.0;
    for (std::size_t m = 1; m < byMinHops.size(); ++m) {
      if (byMinHops[m].count == 0) continue;
      stretchCount += byMinHops[m].count;
      stretchSum += static_cast<double>(byMinHops[m].hopsSum) / static_cast<double>(m);
    }
    result.avgStretch =
        stretchCount > 0 ? stretchSum / static_cast<double>(stretchCount) : 0.0;
    result.hopLatency.resize(perHop.size());
    for (std::size_t h = 0; h < perHop.size(); ++h) {
      result.hopLatency[h].packets = perHop[h].count;
      if (perHop[h].count > 0) {
        result.hopLatency[h].meanLatency =
            static_cast<double>(perHop[h].latSum) / static_cast<double>(perHop[h].count);
      }
    }
  }
  if constexpr (obs::kCompiledIn) {
    // Sum routing telemetry across lane observers in lane order. Lanes may
    // share one observer (legacy setObserver fan-out): count each once.
    std::vector<const obs::NetObserver*> seen;
    for (std::uint32_t l = 0; l < lanes; ++l) {
      const obs::NetObserver* o = network.observer(l);
      if (o == nullptr) continue;
      if (std::find(seen.begin(), seen.end(), o) != seen.end()) continue;
      seen.push_back(o);
      result.routing.merge(o->routingCounters());
    }
  }
  return result;
}

SteadyStateResult runSteadyState(sim::Simulator& sim, net::Network& network,
                                 traffic::SyntheticInjector& injector,
                                 const SteadyStateConfig& config) {
  sim::SerialBackend backend(sim);
  return runSteadyState(backend, network, {&injector}, config);
}

}  // namespace hxwar::metrics
