#include "metrics/link_util.h"

#include <algorithm>

namespace hxwar::metrics {

void LinkUtilization::reset() {
  baseTick_ = network_.simulator().now();
  offsets_.assign(network_.numRouters() + 1, 0);
  for (RouterId r = 0; r < network_.numRouters(); ++r) {
    offsets_[r + 1] = offsets_[r] + network_.router(r).numPorts();
  }
  baseFlits_.assign(offsets_.back(), 0);
  for (RouterId r = 0; r < network_.numRouters(); ++r) {
    const auto& router = network_.router(r);
    for (PortId p = 0; p < router.numPorts(); ++p) {
      baseFlits_[offsets_[r] + p] = router.portFlitsSent(p);
    }
  }
}

std::vector<LinkLoad> LinkUtilization::snapshot() const {
  const Tick elapsed = std::max<Tick>(1, network_.simulator().now() - baseTick_);
  std::vector<LinkLoad> loads;
  for (RouterId r = 0; r < network_.numRouters(); ++r) {
    const auto& router = network_.router(r);
    for (PortId p = 0; p < router.numPorts(); ++p) {
      const std::uint64_t flits = router.portFlitsSent(p) - baseFlits_[offsets_[r] + p];
      loads.push_back(LinkLoad{r, p, router.isTerminalPort(p), flits,
                               router.portDeroutesGranted(p),
                               static_cast<double>(flits) / elapsed});
    }
  }
  std::sort(loads.begin(), loads.end(),
            [](const LinkLoad& a, const LinkLoad& b) { return a.flits > b.flits; });
  return loads;
}

LinkUtilization::Summary LinkUtilization::summarize() const {
  Summary s;
  std::vector<double> utils;
  for (const auto& load : snapshot()) {
    if (load.toTerminal) continue;
    utils.push_back(load.utilization);
  }
  if (utils.empty()) return s;
  std::sort(utils.begin(), utils.end());
  double sum = 0.0;
  for (const double u : utils) sum += u;
  s.links = utils.size();
  s.meanUtilization = sum / utils.size();
  s.maxUtilization = utils.back();
  s.p99Utilization = utils[static_cast<std::size_t>(0.99 * (utils.size() - 1))];
  s.imbalance = s.meanUtilization > 0 ? s.maxUtilization / s.meanUtilization : 0.0;
  return s;
}

}  // namespace hxwar::metrics
