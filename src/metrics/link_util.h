// Link utilization snapshots: per-output-port flit counters aggregated into
// utilization statistics and hot-link reports. Useful for explaining *why* a
// routing algorithm saturates (e.g. the single 64:1 link DCR creates under
// DOR) and exercised by the adversarial-traffic example.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "net/network.h"

namespace hxwar::metrics {

struct LinkLoad {
  RouterId router;
  PortId port;
  bool toTerminal;
  std::uint64_t flits;
  std::uint64_t deroutes;   // deroute grants through this port
  double utilization;       // flits / elapsed cycles
};

class LinkUtilization {
 public:
  explicit LinkUtilization(net::Network& network) : network_(network) { reset(); }

  // Re-bases all counters at the current simulation time.
  void reset();

  // Loads since the last reset, most utilized first.
  std::vector<LinkLoad> snapshot() const;

  // Summary statistics over inter-router links only.
  struct Summary {
    double meanUtilization = 0.0;
    double maxUtilization = 0.0;
    double p99Utilization = 0.0;
    // max / mean: 1.0 = perfectly balanced, large = hot spot.
    double imbalance = 0.0;
    std::uint64_t links = 0;
  };
  Summary summarize() const;

 private:
  net::Network& network_;
  Tick baseTick_ = 0;
  std::vector<std::uint64_t> baseFlits_;  // flattened [router][port]
  std::vector<std::uint32_t> offsets_;    // per-router base index
};

}  // namespace hxwar::metrics
