// Steady-state measurement controller, following the methodology of §6.1:
//
//   "Before any measurements are taken, the network is warmed up with traffic
//    until packet latency stabilizes. Packet injection continues until all
//    measurements have completed. If the network never reaches a state where
//    latency stabilizes, the network is declared saturated and measurements
//    are not taken."
//
// Warmup: the run is divided into fixed windows; the mean latency of packets
// ejected in each window is compared to the previous window. Stable when the
// relative change stays under `stabilityTol` for `stableWindows` consecutive
// windows AND the aggregate source backlog is not growing (a saturated
// network can show stable *ejected* latencies while queues diverge).
//
// Measurement: packets created during the measurement interval are tracked to
// ejection (latency sample = ejection - creation, so source queueing counts);
// accepted throughput is ejected flits per node per cycle over the interval.
// A deadlock watchdog aborts if no flit moves for a full window while packets
// are outstanding.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "metrics/stats.h"
#include "net/network.h"
#include "obs/histogram.h"
#include "obs/obs.h"
#include "sim/backend.h"
#include "sim/simulator.h"
#include "traffic/injector.h"

namespace hxwar::metrics {

struct SteadyStateConfig {
  Tick warmupWindow = 1000;           // cycles per warmup window
  std::uint32_t maxWarmupWindows = 40;
  std::uint32_t stableWindows = 2;
  double stabilityTol = 0.05;
  double backlogGrowthTol = 1.10;     // per-window backlog growth => unstable
  double acceptedTol = 0.93;          // window accepted must reach this share
                                      // of the offered rate to count as stable
  Tick measureWindow = 5000;          // cycles of marked-packet creation
  Tick drainWindow = 20000;           // extra cycles to let marked packets finish
  std::uint64_t minMeasurePackets = 100;
};

struct SteadyStateResult {
  bool saturated = false;
  double offered = 0.0;            // flits/node/cycle
  double accepted = 0.0;           // flits/node/cycle during the measurement
  double latencyMean = 0.0;        // cycles, creation -> ejection
  double latencyP50 = 0.0;
  double latencyP90 = 0.0;
  double latencyP99 = 0.0;
  double latencyP999 = 0.0;
  double latencyMin = 0.0;
  double latencyMax = 0.0;
  double avgHops = 0.0;            // router-to-router hops per packet
  double avgDeroutes = 0.0;
  std::uint64_t packetsMeasured = 0;
  Tick warmupCycles = 0;
  // --- resilience metrics (nonzero only on faulted networks) ---
  // Marked packets dropped at fault dead ends (--fault-drop policy).
  std::uint64_t packetsDropped = 0;
  // packetsDropped / marked packets created: the delivered-vs-dropped split.
  double droppedShare = 0.0;
  // Mean hops / minHops over delivered marked packets, where minHops is taken
  // from the network's effective topology — on a degraded network, the BFS
  // distance over the surviving links. 1.0 = every packet took a shortest
  // reachable path; the excess is the price of routing around faults.
  double avgStretch = 0.0;
  // Partition census when a partition-tolerant fault policy accepted a
  // disconnecting fault set (filled by the harness from the connectivity
  // report; zero on connected networks): ordered router pairs with no
  // surviving path, and routers cut off from router 0's component.
  std::uint64_t unreachablePairs = 0;
  std::uint32_t unreachableRouters = 0;
  // --- observability extensions ---
  // Log2-bucketed latency distribution over the marked packets; the tail
  // percentiles above are nearest-rank over the raw samples, the histogram
  // backs the metrics-json bucket dump and cross-point merging.
  obs::LogHistogram latencyHistogram;
  // Latency broken down by router-to-router hop count: hopLatency[h] covers
  // the marked packets that took exactly h hops (empty entries have
  // packets == 0). Separates "far packets are slow" from "queueing is slow".
  struct HopLatency {
    std::uint64_t packets = 0;
    double meanLatency = 0.0;
  };
  std::vector<HopLatency> hopLatency;
  // Routing-decision telemetry copied from the network's observer at the end
  // of the run; all-zero when no observer is attached (obs disabled).
  obs::RoutingCounters routing;
};

// Runs warmup + measurement for an already-constructed network.
//
// Backend-driven form: `injectors` holds one injector per network lane (the
// sharded harness passes one per shard, each covering that shard's nodes; the
// serial harness passes one covering every node). All injectors are started
// by this call and left stopped afterwards; every one must use the same
// offered rate.
//
// Every statistic is accumulated per lane and merged in lane order with
// integer sums (means = sum/count, percentiles = nearest-rank over the merged
// sorted samples), so the result is bit-identical for any shard count —
// including every warmup stability decision, which is recomputed from the
// same merged integers on both engines.
SteadyStateResult runSteadyState(sim::SimBackend& backend, net::Network& network,
                                 const std::vector<traffic::SyntheticInjector*>& injectors,
                                 const SteadyStateConfig& config);

// Legacy serial form: wraps the Simulator in a SerialBackend and drives the
// single injector over lane 0.
SteadyStateResult runSteadyState(sim::Simulator& sim, net::Network& network,
                                 traffic::SyntheticInjector& injector,
                                 const SteadyStateConfig& config);

}  // namespace hxwar::metrics
