// Streaming and sample statistics used by the measurement layer.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace hxwar::metrics {

// Constant-memory running statistics (Welford).
class StreamingStats {
 public:
  void add(double x) {
    count_ += 1;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = count_ == 1 ? x : std::min(min_, x);
    max_ = count_ == 1 ? x : std::max(max_, x);
  }

  void reset() { *this = StreamingStats(); }

  std::uint64_t count() const { return count_; }
  double mean() const { return mean_; }
  double variance() const { return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Keeps all samples; percentiles computed on demand.
class SampleStats {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
    stream_.add(x);
  }

  void reset() {
    samples_.clear();
    sorted_ = false;
    stream_.reset();
  }

  std::uint64_t count() const { return stream_.count(); }
  double mean() const { return stream_.mean(); }
  double min() const { return stream_.min(); }
  double max() const { return stream_.max(); }
  double stddev() const { return stream_.stddev(); }

  // Nearest-rank percentile. `p` is clamped to [0, 1], so percentile(0.0)
  // == min() and percentile(1.0) == max(). An empty sample set has no order
  // statistics; returns 0.0 by convention so unmeasured sweep points
  // serialize as zeros rather than NaN.
  double percentile(double p) {
    if (samples_.empty()) return 0.0;
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
    p = std::clamp(p, 0.0, 1.0);
    const auto idx = static_cast<std::size_t>(p * (samples_.size() - 1) + 0.5);
    return samples_[std::min(idx, samples_.size() - 1)];
  }

 private:
  std::vector<double> samples_;
  bool sorted_ = false;
  StreamingStats stream_;
};

}  // namespace hxwar::metrics
