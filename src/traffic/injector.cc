#include "traffic/injector.h"

#include "common/assert.h"

namespace hxwar::traffic {

SyntheticInjector::SyntheticInjector(sim::Simulator& sim, net::Network& network,
                                     TrafficPattern& pattern, const Params& params)
    : Component(sim), network_(network), pattern_(&pattern), params_(params) {
  HXWAR_CHECK(params_.minFlits >= 1 && params_.minFlits <= params_.maxFlits);
  HXWAR_CHECK_MSG(params_.nodeMask.empty() || params_.nodeMask.size() == network.numNodes(),
                  "node mask size must match the node count");
  const double meanFlits = (params_.minFlits + params_.maxFlits) / 2.0;
  perCycleProb_ = params_.rate / meanFlits;
  HXWAR_CHECK_MSG(perCycleProb_ <= 1.0, "offered rate too high for packet size range");
  // Materialize the driven node set and one RNG stream per node. The stream
  // is a function of (seed, node) only — never of the node set — so any
  // partition of the nodes across injectors reproduces the same decisions.
  const auto driven = [&](NodeId n) {
    return params_.nodeMask.empty() || params_.nodeMask[n] != 0;
  };
  if (params_.nodes.empty()) {
    for (NodeId n = 0; n < network.numNodes(); ++n) {
      if (driven(n)) nodes_.push_back(n);
    }
  } else {
    for (const NodeId n : params_.nodes) {
      HXWAR_CHECK_MSG(n < network.numNodes(), "injector node out of range");
      if (driven(n)) nodes_.push_back(n);
    }
  }
  nodeRng_.reserve(nodes_.size());
  for (const NodeId n : nodes_) {
    nodeRng_.emplace_back(
        SplitMix64(params_.seed ^ ((n + 1ull) * 0x9e3779b97f4a7c15ull)).next());
  }
}

void SyntheticInjector::start() {
  if (running_) return;
  running_ = true;
  epoch_ += 1;
  sim().schedule(sim().now(), sim::kEpsInject, this, epoch_);
}

void SyntheticInjector::stop() {
  running_ = false;
  epoch_ += 1;  // orphan the pending event
}

void SyntheticInjector::processEvent(std::uint64_t tag) {
  if (!running_ || tag != epoch_) return;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const NodeId n = nodes_[i];
    Rng& rng = nodeRng_[i];
    if (!rng.chance(perCycleProb_)) continue;
    const std::uint32_t size = static_cast<std::uint32_t>(
        rng.range(params_.minFlits, params_.maxFlits));
    const NodeId dst = pattern_->dest(n, rng);
    if (dst == n) continue;  // patterns with fixed points (e.g. transpose
                             // diagonal) simply don't send from those nodes
    network_.injectPacket(n, dst, size);
    offeredFlits_ += size;
    offeredPackets_ += 1;
  }
  sim().schedule(sim().now() + 1, sim::kEpsInject, this, epoch_);
}

}  // namespace hxwar::traffic
