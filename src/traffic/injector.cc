#include "traffic/injector.h"

#include "common/assert.h"

namespace hxwar::traffic {

SyntheticInjector::SyntheticInjector(sim::Simulator& sim, net::Network& network,
                                     TrafficPattern& pattern, const Params& params)
    : Component(sim),
      network_(network),
      pattern_(&pattern),
      params_(params),
      rng_(params.seed) {
  HXWAR_CHECK(params_.minFlits >= 1 && params_.minFlits <= params_.maxFlits);
  HXWAR_CHECK_MSG(params_.nodeMask.empty() || params_.nodeMask.size() == network.numNodes(),
                  "node mask size must match the node count");
  const double meanFlits = (params_.minFlits + params_.maxFlits) / 2.0;
  perCycleProb_ = params_.rate / meanFlits;
  HXWAR_CHECK_MSG(perCycleProb_ <= 1.0, "offered rate too high for packet size range");
}

void SyntheticInjector::start() {
  if (running_) return;
  running_ = true;
  epoch_ += 1;
  sim().schedule(sim().now(), sim::kEpsTerminal, this, epoch_);
}

void SyntheticInjector::stop() {
  running_ = false;
  epoch_ += 1;  // orphan the pending event
}

void SyntheticInjector::processEvent(std::uint64_t tag) {
  if (!running_ || tag != epoch_) return;
  const std::uint32_t nodes = network_.numNodes();
  for (NodeId n = 0; n < nodes; ++n) {
    if (!params_.nodeMask.empty() && !params_.nodeMask[n]) continue;
    if (!rng_.chance(perCycleProb_)) continue;
    const std::uint32_t size = static_cast<std::uint32_t>(
        rng_.range(params_.minFlits, params_.maxFlits));
    const NodeId dst = pattern_->dest(n, rng_);
    if (dst == n) continue;  // patterns with fixed points (e.g. transpose
                             // diagonal) simply don't send from those nodes
    network_.injectPacket(n, dst, size);
    offeredFlits_ += size;
    offeredPackets_ += 1;
  }
  sim().schedule(sim().now() + 1, sim::kEpsTerminal, this, epoch_);
}

}  // namespace hxwar::traffic
