// Trace-driven injection: replays a recorded communication trace instead of
// a synthetic process. Trace format: text lines
//
//     <tick> <src> <dst> <bytes>
//
// sorted by tick (enforced), '#' comments allowed. Bytes are segmented into
// packets with the same flit/packet parameters as the message layer. This is
// how production traces or externally generated workloads drive the
// simulator; TraceRecorder produces compatible traces from live runs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace hxwar::traffic {

struct TraceEntry {
  Tick tick;
  NodeId src;
  NodeId dst;
  std::uint64_t bytes;
};

// Parses a trace file; aborts (CHECK) on malformed lines or unsorted ticks.
std::vector<TraceEntry> loadTrace(const std::string& path);
// Writes entries in the same format.
void saveTrace(const std::string& path, const std::vector<TraceEntry>& entries);

class TraceInjector final : public sim::Component {
 public:
  struct Params {
    std::uint32_t flitBytes = 64;
    std::uint32_t maxPacketFlits = 16;
    Tick offset = 0;  // added to every entry's tick
  };

  TraceInjector(sim::Simulator& sim, net::Network& network, std::vector<TraceEntry> entries,
                const Params& params);

  // Schedules the whole trace; packets enter source queues at their ticks.
  void start();

  std::uint64_t entriesInjected() const { return next_; }
  std::uint64_t entriesTotal() const { return entries_.size(); }
  std::uint64_t flitsOffered() const { return flitsOffered_; }

  void processEvent(std::uint64_t tag) override;

 private:
  void injectDue();

  net::Network& network_;
  std::vector<TraceEntry> entries_;
  Params params_;
  std::size_t next_ = 0;
  std::uint64_t flitsOffered_ = 0;
};

// Synthesizes a trace from a synthetic pattern: the bridge between the two
// injection modes (generate offline once, replay deterministically anywhere).
class TrafficPattern;
std::vector<TraceEntry> traceFromPattern(TrafficPattern& pattern, std::uint32_t numNodes,
                                         double rate, Tick cycles,
                                         std::uint32_t meanMessageBytes,
                                         std::uint64_t seed);

}  // namespace hxwar::traffic
