#include "traffic/pattern.h"

#include <numeric>

#include "common/assert.h"

namespace hxwar::traffic {
namespace {

bool isPow2(std::uint32_t n) { return n != 0 && (n & (n - 1)) == 0; }

}  // namespace

BitComplement::BitComplement(std::uint32_t numNodes)
    : pow2_(isPow2(numNodes)), mask_(numNodes - 1) {
  HXWAR_CHECK_MSG(numNodes >= 2, "bit complement needs at least two nodes");
}

std::string UniformRandomBisection::name() const {
  static const char* axis = "xyzw";
  std::string n = "URB";
  n += (dim_ < 4) ? axis[dim_] : static_cast<char>('0' + dim_);
  return n;
}

NodeId UniformRandomBisection::dest(NodeId src, Rng& rng) {
  const RouterId r = topo_.nodeRouter(src);
  std::vector<std::uint32_t> c(topo_.numDims());
  for (std::uint32_t d = 0; d < topo_.numDims(); ++d) {
    if (d == dim_) {
      c[d] = topo_.width(d) - 1 - topo_.coord(r, d);
    } else {
      c[d] = static_cast<std::uint32_t>(rng.below(topo_.width(d)));
    }
  }
  const RouterId dr = topo_.routerAt(c);
  const auto t = static_cast<std::uint32_t>(rng.below(topo_.terminalsPerRouter()));
  return dr * topo_.terminalsPerRouter() + t;
}

Swap2::Swap2(const topo::HyperX& topo) : topo_(topo) {
  HXWAR_CHECK_MSG(topo.numDims() >= 2, "S2 needs at least two dimensions");
}

NodeId Swap2::dest(NodeId src, Rng&) {
  const RouterId r = topo_.nodeRouter(src);
  const std::uint32_t t = topo_.nodePort(src);
  const std::uint32_t d = (t % 2 == 0) ? 0 : 1;
  std::vector<std::uint32_t> c(topo_.numDims());
  topo_.coords(r, c);
  c[d] = topo_.width(d) - 1 - c[d];
  if (c[d] == topo_.coord(r, d)) {
    // Odd widths have a self-mapping center; nudge to keep dest != src.
    c[d] = (c[d] + 1) % topo_.width(d);
  }
  return topo_.routerAt(c) * topo_.terminalsPerRouter() + t;
}

DimComplementReverse::DimComplementReverse(const topo::HyperX& topo) : topo_(topo) {
  HXWAR_CHECK_MSG(topo.numDims() == 3, "DCR is defined for 3D HyperX");
  HXWAR_CHECK_MSG(topo.width(0) == topo.width(1) && topo.width(1) == topo.width(2),
                  "DCR needs equal dimension widths");
}

NodeId DimComplementReverse::dest(NodeId src, Rng& rng) {
  const RouterId r = topo_.nodeRouter(src);
  const std::uint32_t s = topo_.width(0);
  std::vector<std::uint32_t> c(3);
  // Destination Z-line is a function of the source X-line (y, z) only.
  c[0] = s - 1 - topo_.coord(r, 1);
  c[1] = s - 1 - topo_.coord(r, 2);
  // The source itself can lie on its complement line; redraw within the line
  // so traffic stays admissible without self-sends.
  for (;;) {
    c[2] = static_cast<std::uint32_t>(rng.below(s));
    const auto t = static_cast<std::uint32_t>(rng.below(topo_.terminalsPerRouter()));
    const NodeId dst = topo_.routerAt(c) * topo_.terminalsPerRouter() + t;
    if (dst != src) return dst;
  }
}

NodeId Transpose::dest(NodeId src, Rng&) {
  const RouterId r = topo_.nodeRouter(src);
  const std::uint32_t dims = topo_.numDims();
  std::vector<std::uint32_t> c(dims);
  for (std::uint32_t d = 0; d < dims; ++d) {
    const std::uint32_t from = (d + 1) % dims;
    HXWAR_CHECK_MSG(topo_.width(d) == topo_.width(from), "transpose needs equal widths");
    c[d] = topo_.coord(r, from);
  }
  return topo_.routerAt(c) * topo_.terminalsPerRouter() + topo_.nodePort(src);
}

RandomPermutation::RandomPermutation(std::uint32_t numNodes, std::uint64_t seed)
    : perm_(numNodes) {
  std::iota(perm_.begin(), perm_.end(), 0u);
  Rng rng(seed);
  rng.shuffle(perm_);
  // Eliminate fixed points by rotating them onto each other.
  NodeId prevFixed = kNodeInvalid;
  for (NodeId n = 0; n < numNodes; ++n) {
    if (perm_[n] != n) continue;
    if (prevFixed == kNodeInvalid) {
      prevFixed = n;
    } else {
      std::swap(perm_[prevFixed], perm_[n]);
      prevFixed = kNodeInvalid;
    }
  }
  if (prevFixed != kNodeInvalid && numNodes >= 2) {
    const NodeId other = (prevFixed + 1) % numNodes;
    std::swap(perm_[prevFixed], perm_[other]);
  }
}

std::unique_ptr<TrafficPattern> makePattern(const std::string& name, const topo::HyperX& topo) {
  if (name == "ur") return std::make_unique<UniformRandom>(topo.numNodes());
  if (name == "bc") return std::make_unique<BitComplement>(topo.numNodes());
  if (name == "urbx") return std::make_unique<UniformRandomBisection>(topo, 0);
  if (name == "urby") return std::make_unique<UniformRandomBisection>(topo, 1);
  if (name == "urbz") return std::make_unique<UniformRandomBisection>(topo, 2);
  if (name == "s2") return std::make_unique<Swap2>(topo);
  if (name == "dcr") return std::make_unique<DimComplementReverse>(topo);
  if (name == "tp") return std::make_unique<Transpose>(topo);
  HXWAR_CHECK_MSG(false, ("unknown traffic pattern: " + name).c_str());
  return nullptr;
}

}  // namespace hxwar::traffic
