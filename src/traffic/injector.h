// Open-loop synthetic packet injector.
//
// Every cycle while running, each terminal generates a packet with
// probability rate / meanPacketFlits, so the offered load in flits per
// terminal per cycle equals `rate` (1.0 = channel capacity). Packet sizes are
// uniform in [minFlits, maxFlits] — the paper uses 1..16.
//
// Every injection decision draws from a per-node RNG stream derived from
// (seed, node) alone, so the decisions are a pure per-node function —
// independent of which other nodes an injector instance covers. The sharded
// harness runs one injector per shard over that shard's nodes (Params::nodes)
// and the union of their injections is exactly the serial injector's,
// which is one pillar of bit-identical parallel replay (DESIGN.md §12).
#pragma once

#include <cstdint>
#include <memory>

#include "common/rng.h"
#include "common/types.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "traffic/pattern.h"

namespace hxwar::traffic {

class SyntheticInjector final : public sim::Component {
 public:
  struct Params {
    double rate = 0.1;            // offered flits per terminal per cycle
    std::uint32_t minFlits = 1;
    std::uint32_t maxFlits = 16;
    std::uint64_t seed = 7;
    // Restrict injection to a subset of nodes (empty = all nodes). Multiple
    // injectors with disjoint masks model co-located jobs (§3.2).
    std::vector<std::uint8_t> nodeMask;
    // Explicit node set (ascending; empty = all nodes), composed with
    // nodeMask. The sharded harness passes each shard's terminal range here.
    std::vector<NodeId> nodes;
  };

  SyntheticInjector(sim::Simulator& sim, net::Network& network, TrafficPattern& pattern,
                    const Params& params);

  void start();
  void stop();
  bool running() const { return running_; }
  double rate() const { return params_.rate; }

  // Swaps the traffic pattern mid-run (transient-response experiments).
  void setPattern(TrafficPattern& pattern) { pattern_ = &pattern; }
  const TrafficPattern& pattern() const { return *pattern_; }

  std::uint64_t offeredFlits() const { return offeredFlits_; }
  std::uint64_t offeredPackets() const { return offeredPackets_; }

  void processEvent(std::uint64_t tag) override;

 private:
  net::Network& network_;
  TrafficPattern* pattern_;
  Params params_;
  std::vector<NodeId> nodes_;  // nodes this injector drives, ascending
  std::vector<Rng> nodeRng_;   // one stream per node, derived from (seed, node)
  double perCycleProb_;
  bool running_ = false;
  std::uint64_t epoch_ = 0;  // invalidates queued events across start/stop
  std::uint64_t offeredFlits_ = 0;
  std::uint64_t offeredPackets_ = 0;
};

}  // namespace hxwar::traffic
