// Synthetic traffic patterns (Table 3 of the paper, plus a few extras used
// by tests and ablations). A pattern maps a source node to a destination
// node, possibly randomly.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/rng.h"
#include "common/types.h"
#include "topo/hyperx.h"

namespace hxwar::traffic {

class TrafficPattern {
 public:
  virtual ~TrafficPattern() = default;
  virtual std::string name() const = 0;
  // Destination for a packet injected at `src`. Must not equal src for the
  // patterns used in the evaluation (self-traffic would inflate throughput).
  virtual NodeId dest(NodeId src, Rng& rng) = 0;
};

// UR: uniform random over all other nodes.
class UniformRandom final : public TrafficPattern {
 public:
  explicit UniformRandom(std::uint32_t numNodes) : numNodes_(numNodes) {}
  std::string name() const override { return "UR"; }
  NodeId dest(NodeId src, Rng& rng) override {
    const auto d = static_cast<NodeId>(rng.below(numNodes_ - 1));
    return d < src ? d : d + 1;
  }

 private:
  std::uint32_t numNodes_;
};

// BC: bit complement of the node id. For power-of-two node counts this is
// the classic bitwise complement (and reverses every HyperX coordinate); for
// other sizes it degrades to index reversal N-1-src, which is the same map
// on power-of-two sizes.
class BitComplement final : public TrafficPattern {
 public:
  explicit BitComplement(std::uint32_t numNodes);
  std::string name() const override { return "BC"; }
  NodeId dest(NodeId src, Rng&) override {
    return pow2_ ? ((~src) & mask_) : (mask_ - src);
  }

 private:
  bool pow2_;
  std::uint32_t mask_;  // numNodes - 1 in both modes
};

// URB(d): bit-complement (coordinate reversal) in the targeted dimension,
// uniform random in every other dimension and in the terminal index. Leaves
// exactly one dimension non-load-balanced.
class UniformRandomBisection final : public TrafficPattern {
 public:
  UniformRandomBisection(const topo::HyperX& topo, std::uint32_t targetDim)
      : topo_(topo), dim_(targetDim) {}
  std::string name() const override;
  NodeId dest(NodeId src, Rng& rng) override;

 private:
  const topo::HyperX& topo_;
  std::uint32_t dim_;
};

// S2: even-numbered terminals reverse their coordinate in dimension 0, odd
// ones in dimension 1; all other coordinates (and the terminal index) stay.
// Non-load-balanced but with lots of unused bandwidth.
class Swap2 final : public TrafficPattern {
 public:
  explicit Swap2(const topo::HyperX& topo);
  std::string name() const override { return "S2"; }
  NodeId dest(NodeId src, Rng&) override;

 private:
  const topo::HyperX& topo_;
};

// DCR: dimension complement reverse, the worst-case admissible pattern for a
// 3D HyperX. Every terminal of the X-line (y, z) spreads its traffic
// uniformly over the complement Z-line (x' = S-1-y, y' = S-1-z). Under DOR
// all 64 terminals of an X-line funnel through a single Y link (64:1).
class DimComplementReverse final : public TrafficPattern {
 public:
  explicit DimComplementReverse(const topo::HyperX& topo);
  std::string name() const override { return "DCR"; }
  NodeId dest(NodeId src, Rng& rng) override;

 private:
  const topo::HyperX& topo_;
};

// Extras -------------------------------------------------------------------

// Transpose: coordinate rotation (x,y,z) -> (y,z,x); terminal preserved.
class Transpose final : public TrafficPattern {
 public:
  explicit Transpose(const topo::HyperX& topo) : topo_(topo) {}
  std::string name() const override { return "TP"; }
  NodeId dest(NodeId src, Rng&) override;

 private:
  const topo::HyperX& topo_;
};

// Fixed random permutation of the nodes.
class RandomPermutation final : public TrafficPattern {
 public:
  RandomPermutation(std::uint32_t numNodes, std::uint64_t seed);
  std::string name() const override { return "RP"; }
  NodeId dest(NodeId src, Rng&) override { return perm_[src]; }

 private:
  std::vector<NodeId> perm_;
};

// Factory: ur, bc, urbx, urby, urbz, s2, dcr, tp.
std::unique_ptr<TrafficPattern> makePattern(const std::string& name, const topo::HyperX& topo);

}  // namespace hxwar::traffic
