#include "traffic/trace.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/assert.h"
#include "common/rng.h"
#include "traffic/pattern.h"

namespace hxwar::traffic {

std::vector<TraceEntry> loadTrace(const std::string& path) {
  std::ifstream in(path);
  HXWAR_CHECK_MSG(static_cast<bool>(in), ("cannot open trace file: " + path).c_str());
  std::vector<TraceEntry> entries;
  std::string line;
  Tick lastTick = 0;
  std::size_t lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    TraceEntry e{};
    if (!(ls >> e.tick >> e.src >> e.dst >> e.bytes)) {
      std::string rest;
      ls.clear();
      ls >> rest;
      HXWAR_CHECK_MSG(rest.empty() && line.find_first_not_of(" \t\r") == std::string::npos,
                      "malformed trace line");
      continue;  // blank/comment line
    }
    HXWAR_CHECK_MSG(e.tick >= lastTick, "trace ticks must be non-decreasing");
    HXWAR_CHECK_MSG(e.src != e.dst, "trace entry sends to itself");
    lastTick = e.tick;
    entries.push_back(e);
  }
  return entries;
}

void saveTrace(const std::string& path, const std::vector<TraceEntry>& entries) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  HXWAR_CHECK_MSG(f != nullptr, ("cannot write trace file: " + path).c_str());
  std::fprintf(f, "# tick src dst bytes\n");
  for (const auto& e : entries) {
    std::fprintf(f, "%" PRIu64 " %u %u %" PRIu64 "\n", e.tick, e.src, e.dst, e.bytes);
  }
  std::fclose(f);
}

TraceInjector::TraceInjector(sim::Simulator& sim, net::Network& network,
                             std::vector<TraceEntry> entries, const Params& params)
    : Component(sim),
      network_(network),
      entries_(std::move(entries)),
      params_(params) {
  HXWAR_CHECK(params_.flitBytes >= 1 && params_.maxPacketFlits >= 1);
  for (const auto& e : entries_) {
    HXWAR_CHECK_MSG(e.src < network.numNodes() && e.dst < network.numNodes(),
                    "trace endpoint outside the network");
  }
}

void TraceInjector::start() {
  if (entries_.empty()) return;
  next_ = 0;
  sim().schedule(std::max(sim().now(), entries_.front().tick + params_.offset),
                 sim::kEpsTerminal, this, 0);
}

void TraceInjector::injectDue() {
  while (next_ < entries_.size() &&
         entries_[next_].tick + params_.offset <= sim().now()) {
    const TraceEntry& e = entries_[next_];
    const std::uint64_t flits =
        std::max<std::uint64_t>(1, (e.bytes + params_.flitBytes - 1) / params_.flitBytes);
    std::uint64_t remaining = flits;
    while (remaining > 0) {
      const auto size = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(remaining, params_.maxPacketFlits));
      network_.injectPacket(e.src, e.dst, size);
      flitsOffered_ += size;
      remaining -= size;
    }
    ++next_;
  }
  if (next_ < entries_.size()) {
    sim().schedule(entries_[next_].tick + params_.offset, sim::kEpsTerminal, this, 0);
  }
}

void TraceInjector::processEvent(std::uint64_t) { injectDue(); }

std::vector<TraceEntry> traceFromPattern(TrafficPattern& pattern, std::uint32_t numNodes,
                                         double rate, Tick cycles,
                                         std::uint32_t meanMessageBytes,
                                         std::uint64_t seed) {
  HXWAR_CHECK(meanMessageBytes >= 1);
  Rng rng(seed);
  std::vector<TraceEntry> entries;
  // Bernoulli per node per cycle, like the synthetic injector, but with
  // message granularity: rate is flits/node/cycle at 64B flits.
  const double perCycleProb = rate * 64.0 / meanMessageBytes;
  HXWAR_CHECK_MSG(perCycleProb <= 1.0, "rate too high for the message size");
  for (Tick t = 0; t < cycles; ++t) {
    for (NodeId n = 0; n < numNodes; ++n) {
      if (!rng.chance(perCycleProb)) continue;
      const NodeId dst = pattern.dest(n, rng);
      if (dst == n) continue;
      // Exponential-ish spread around the mean (1/2x .. 2x).
      const std::uint64_t bytes =
          meanMessageBytes / 2 + rng.below(std::max<std::uint64_t>(1, meanMessageBytes * 3 / 2));
      entries.push_back(TraceEntry{t, n, dst, std::max<std::uint64_t>(1, bytes)});
    }
  }
  return entries;
}

}  // namespace hxwar::traffic
