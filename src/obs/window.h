// Windowed telemetry records for the flight recorder (DESIGN.md §14).
//
// A WindowRecord is one closed observation window: per-window deltas of the
// network flow and routing counters, a per-window log2 latency histogram, the
// instantaneous occupancy gauges at window close, per-VC occupancy, and the
// top-K hottest links by flits sent. Every field derives from simulation
// state only (ticks, counters, queue depths), so the serialized window stream
// is byte-identical across --jobs and --point-jobs values.
//
// Per-shard load-balance telemetry (ShardWindowRecord) is deliberately a
// separate stream: its shape *describes* the sharding (one entry per shard,
// mailbox traffic between shards), so it can never ride in a surface that
// must be --point-jobs-invariant. It is deterministic for a fixed shard count
// and jobs-invariant, and flows to --metrics-json's shard_balance section and
// the watchdog diagnostics, never to --timeline-out.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "obs/histogram.h"

namespace hxwar::obs {

// One row of Network::forEachLinkStats: cumulative per-port counters plus the
// instantaneous output-queue depth, read from the frozen Router SoA state.
struct LinkStatsRow {
  RouterId router = kRouterInvalid;
  PortId port = kPortInvalid;
  RouterId peerRouter = kRouterInvalid;
  PortId peerPort = kPortInvalid;
  std::uint64_t flitsSent = 0;    // cumulative
  std::uint64_t stallTicks = 0;   // cumulative credit-stall port-cycles
  std::uint32_t queuedFlits = 0;  // instantaneous output occupancy
};

// Network flow snapshot pulled by the recorder at each window close.
// Counters are cumulative (lane-summed); the last three are instantaneous.
struct FlowSample {
  std::uint64_t flitsInjected = 0;
  std::uint64_t flitsEjected = 0;
  std::uint64_t packetsCreated = 0;
  std::uint64_t packetsEjected = 0;
  std::uint64_t packetsDropped = 0;
  std::uint64_t backlogFlits = 0;
  std::uint64_t queuedFlits = 0;
  std::uint64_t packetsOutstanding = 0;
};

// Parallel-engine snapshot (cumulative): per-shard events processed, posts
// drained per (src*numShards+dst) mailbox, and per-worker barrier wait.
struct EngineSample {
  std::vector<std::uint64_t> shardEvents;
  std::vector<std::uint64_t> mailboxPosts;
  std::vector<double> barrierWaitSeconds;
};

// One inter-router link's per-window statistics (flits/stalls are window
// deltas; queuedFlits is the instantaneous output-queue depth at close).
struct LinkWindowStat {
  RouterId router = kRouterInvalid;
  PortId port = kPortInvalid;
  RouterId peerRouter = kRouterInvalid;
  PortId peerPort = kPortInvalid;
  std::uint64_t flits = 0;
  std::uint64_t stallTicks = 0;
  std::uint32_t queuedFlits = 0;
};

struct WindowRecord {
  std::uint64_t index = 0;  // 0-based window number
  Tick start = 0;           // window covers (start, end]
  Tick end = 0;

  // --- flow deltas over the window (lane-summed network counters) ---
  std::uint64_t flitsInjected = 0;
  std::uint64_t flitsEjected = 0;
  std::uint64_t packetsCreated = 0;
  std::uint64_t packetsEjected = 0;
  std::uint64_t packetsDropped = 0;

  // --- routing-decision deltas (merged across per-lane observers) ---
  std::uint64_t routeDecisions = 0;
  std::uint64_t deroutesTaken = 0;
  std::uint64_t deroutesRefused = 0;
  std::uint64_t faultEscapes = 0;
  std::uint64_t pathDeroutes = 0;
  std::uint64_t creditStalls = 0;
  // Per-dimension deroute grants this window; last slot = unattributable.
  std::vector<std::uint64_t> deroutesTakenByDim;

  // --- instantaneous occupancy at window close ---
  std::uint64_t backlogFlits = 0;
  std::uint64_t queuedFlits = 0;
  std::uint64_t packetsOutstanding = 0;
  // Flits buffered per VC (input queues + output occupancy, summed over every
  // router) — the per-VC attribution the SoA router state exposes cheaply.
  std::vector<std::uint64_t> vcOccupancy;

  // --- link heatmap ---
  std::uint64_t linkFlitsTotal = 0;       // window flits over all inter-router links
  std::uint64_t linkStallTicksTotal = 0;  // window credit-stall port-cycles
  std::uint32_t activeLinks = 0;          // links with >= 1 flit this window
  // Top-K links by (flits desc, stallTicks desc, router, port) — bounded so
  // paper-scale windows stay small; the totals above keep the tail visible.
  std::vector<LinkWindowStat> hotLinks;

  // Packet latencies (created -> delivered) for packets completed this
  // window. LogHistogram::merge is commutative, so lane-order merging makes
  // the histogram independent of shard interleaving.
  LogHistogram latency;

  // Deterministic annotations: fault kill/revive edges, escape escalations,
  // stall-watchdog force-close. Simulation-state-derived strings only.
  std::vector<std::string> annotations;
};

// Per-shard load balance for one window. Wall-clock barrier waits are
// telemetry like SweepPoint::wallSeconds: they vary run to run and must never
// reach a byte-compared surface.
struct ShardWindowRecord {
  std::uint64_t index = 0;                  // matching WindowRecord::index
  std::vector<std::uint64_t> shardEvents;   // events processed per shard (delta)
  std::vector<std::uint64_t> mailboxPosts;  // posts drained per (src*n+dst) (delta)
  std::vector<double> barrierWaitSeconds;   // cumulative wait per worker (wall clock)
  // max/mean of shardEvents (1.0 = perfectly balanced; 0 when idle).
  double loadRatio = 0.0;
};

// max/mean imbalance of one delta vector (0.0 when the sum is zero).
double shardLoadRatio(const std::vector<std::uint64_t>& shardEvents);

// Appends one JSONL line (with trailing '\n') describing `w` under sweep
// point `point`. Shared by the --timeline-out writer and the stall-watchdog
// stderr dump so both emit byte-identical window lines.
void appendWindowJsonl(std::size_t point, const WindowRecord& w, std::string& out);

}  // namespace hxwar::obs
