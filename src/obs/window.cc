#include "obs/window.h"

#include <cinttypes>
#include <cstdio>

namespace hxwar::obs {

namespace {

void appendU64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

void appendKeyU64(std::string& out, const char* key, std::uint64_t v) {
  out += '"';
  out += key;
  out += "\":";
  appendU64(out, v);
}

void appendU64Array(std::string& out, const char* key, const std::vector<std::uint64_t>& vs) {
  out += '"';
  out += key;
  out += "\":[";
  for (std::size_t i = 0; i < vs.size(); ++i) {
    if (i != 0) out += ',';
    appendU64(out, vs[i]);
  }
  out += ']';
}

// Annotation strings are simulation-derived (tick numbers, port ids) but
// escape defensively so the line stays valid JSON whatever lands in them.
void appendEscaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

double shardLoadRatio(const std::vector<std::uint64_t>& shardEvents) {
  if (shardEvents.empty()) return 0.0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
  for (const std::uint64_t e : shardEvents) {
    sum += e;
    if (e > max) max = e;
  }
  if (sum == 0) return 0.0;
  const double mean = static_cast<double>(sum) / static_cast<double>(shardEvents.size());
  return static_cast<double>(max) / mean;
}

void appendWindowJsonl(std::size_t point, const WindowRecord& w, std::string& out) {
  out += '{';
  appendKeyU64(out, "point", point);
  out += ',';
  appendKeyU64(out, "window", w.index);
  out += ',';
  appendKeyU64(out, "start", w.start);
  out += ',';
  appendKeyU64(out, "end", w.end);
  out += ',';
  appendKeyU64(out, "injected", w.flitsInjected);
  out += ',';
  appendKeyU64(out, "ejected", w.flitsEjected);
  out += ',';
  appendKeyU64(out, "packets_created", w.packetsCreated);
  out += ',';
  appendKeyU64(out, "packets_ejected", w.packetsEjected);
  out += ',';
  appendKeyU64(out, "packets_dropped", w.packetsDropped);
  out += ',';
  appendKeyU64(out, "route_decisions", w.routeDecisions);
  out += ',';
  appendKeyU64(out, "deroutes_taken", w.deroutesTaken);
  out += ',';
  appendKeyU64(out, "deroutes_refused", w.deroutesRefused);
  out += ',';
  appendKeyU64(out, "fault_escapes", w.faultEscapes);
  out += ',';
  appendKeyU64(out, "path_deroutes", w.pathDeroutes);
  out += ',';
  appendKeyU64(out, "credit_stalls", w.creditStalls);
  out += ',';
  appendU64Array(out, "deroutes_by_dim", w.deroutesTakenByDim);
  out += ',';
  appendKeyU64(out, "backlog", w.backlogFlits);
  out += ',';
  appendKeyU64(out, "queued", w.queuedFlits);
  out += ',';
  appendKeyU64(out, "outstanding", w.packetsOutstanding);
  out += ',';
  appendU64Array(out, "vc_occupancy", w.vcOccupancy);
  out += ',';
  appendKeyU64(out, "link_flits", w.linkFlitsTotal);
  out += ',';
  appendKeyU64(out, "link_stall_ticks", w.linkStallTicksTotal);
  out += ',';
  appendKeyU64(out, "active_links", w.activeLinks);
  out += ",\"hot_links\":[";
  for (std::size_t i = 0; i < w.hotLinks.size(); ++i) {
    const LinkWindowStat& l = w.hotLinks[i];
    if (i != 0) out += ',';
    out += '{';
    appendKeyU64(out, "router", l.router);
    out += ',';
    appendKeyU64(out, "port", l.port);
    out += ',';
    appendKeyU64(out, "peer_router", l.peerRouter);
    out += ',';
    appendKeyU64(out, "peer_port", l.peerPort);
    out += ',';
    appendKeyU64(out, "flits", l.flits);
    out += ',';
    appendKeyU64(out, "stall_ticks", l.stallTicks);
    out += ',';
    appendKeyU64(out, "queued", l.queuedFlits);
    out += '}';
  }
  // Latency histogram as sparse [bucket, count] pairs: bucket edges are exact
  // powers of two, so integers round-trip and the stream stays float-free.
  out += "],\"latency\":{";
  appendKeyU64(out, "total", w.latency.total());
  out += ",\"buckets\":[";
  bool first = true;
  for (std::uint32_t b = 0; b < LogHistogram::kBuckets; ++b) {
    const std::uint64_t c = w.latency.count(b);
    if (c == 0) continue;
    if (!first) out += ',';
    first = false;
    out += '[';
    appendU64(out, b);
    out += ',';
    appendU64(out, c);
    out += ']';
  }
  out += "]},\"annotations\":[";
  for (std::size_t i = 0; i < w.annotations.size(); ++i) {
    if (i != 0) out += ',';
    appendEscaped(out, w.annotations[i]);
  }
  out += "]}\n";
}

}  // namespace hxwar::obs
