#include "obs/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <tuple>

namespace hxwar::obs {
namespace {

void appendf(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out.append(buf, static_cast<std::size_t>(n));
}

// Common prefix of every async packet event: category, phase, id, pid, ts.
void appendPktHeader(std::string& out, const char* name, const char* ph,
                     const TraceEvent& e, std::uint32_t pid) {
  appendf(out,
          "{\"cat\":\"pkt\",\"name\":\"%s\",\"ph\":\"%s\",\"id\":\"%" PRIu64
          "\",\"pid\":%u,\"tid\":0,\"ts\":%" PRIu64,
          name, ph, e.id, pid, static_cast<std::uint64_t>(e.ts));
}

}  // namespace

void canonicalize(TraceBuffer& buffer) {
  auto key = [](const TraceEvent& e) {
    return std::make_tuple(e.ts, e.id, static_cast<std::uint8_t>(e.kind), e.a, e.b,
                           e.c, e.d);
  };
  std::stable_sort(buffer.events().begin(), buffer.events().end(),
                   [&key](const TraceEvent& x, const TraceEvent& y) {
                     return key(x) < key(y);
                   });
}

void appendChromeJson(const TraceBuffer& buffer, std::uint32_t pid, std::string& out) {
  bool first = true;
  for (const TraceEvent& e : buffer.events()) {
    if (!first) out += ',';
    first = false;
    switch (e.kind) {
      case TraceKind::kBegin:
        appendPktHeader(out, "packet", "b", e, pid);
        appendf(out, ",\"args\":{\"src\":%u,\"dst\":%u,\"flits\":%u}}", e.a, e.b, e.c);
        break;
      case TraceKind::kInject:
        appendPktHeader(out, "inject", "n", e, pid);
        appendf(out, ",\"args\":{\"src\":%u}}", e.a);
        break;
      case TraceKind::kRoute: {
        const bool deroute = (e.d & 1u) != 0;
        const bool faultEscape = (e.d & 2u) != 0;
        const std::uint32_t dim = (e.d >> 8) & 0xffu;
        appendPktHeader(out, "route", "n", e, pid);
        appendf(out, ",\"args\":{\"router\":%u,\"port\":%u,\"vc\":%u,\"verdict\":\"%s\"",
                e.a, e.b, e.c, deroute ? "deroute" : "min");
        if (dim != 0xffu) appendf(out, ",\"dim\":%u", dim);
        if (faultEscape) out += ",\"fault_escape\":1";
        out += "}}";
        break;
      }
      case TraceKind::kHop:
        appendPktHeader(out, "xbar", "n", e, pid);
        appendf(out, ",\"args\":{\"router\":%u,\"in\":%u,\"out\":%u}}", e.a, e.b, e.c);
        break;
      case TraceKind::kEnd:
        appendPktHeader(out, "packet", "e", e, pid);
        appendf(out, ",\"args\":{\"dropped\":%u,\"hops\":%u,\"deroutes\":%u}}", e.a, e.b,
                e.c);
        break;
      case TraceKind::kCounter:
        // Two counter tracks per point: flit rates and queue depths.
        appendf(out,
                "{\"name\":\"net.flits\",\"ph\":\"C\",\"pid\":%u,\"ts\":%" PRIu64
                ",\"args\":{\"injected\":%.0f,\"ejected\":%.0f,\"credit_stalls\":%u}}",
                pid, static_cast<std::uint64_t>(e.ts), e.v0, e.v1, e.a);
        out += ',';
        appendf(out,
                "{\"name\":\"net.queues\",\"ph\":\"C\",\"pid\":%u,\"ts\":%" PRIu64
                ",\"args\":{\"backlog\":%.0f,\"queued\":%.0f}}",
                pid, static_cast<std::uint64_t>(e.ts), e.v2, e.v3);
        break;
    }
  }
}

std::string chromeProcessName(std::uint32_t pid, const std::string& name) {
  std::string out;
  appendf(out,
          "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%u,\"tid\":0,"
          "\"args\":{\"name\":\"%s\"}}",
          pid, name.c_str());
  return out;
}

}  // namespace hxwar::obs
