// NetObserver: the per-experiment sink for every instrumentation hook in the
// network layer. One instance per Experiment (never shared across sweep
// points or threads — the TSan gate relies on this), attached to the Network
// which fans the raw pointer out to its routers and terminals.
//
// Hot-path contract: instrumented code guards every call with
// `if (obs_ != nullptr)`, and the hooks themselves do only pointer-chasing
// increments and (when the packet is trace-sampled) one vector push_back. No
// virtual calls, no allocation in the common case, no locking.
#pragma once

#include <cstdint>
#include <cstdio>
#include <vector>

#include "common/types.h"
#include "net/packet.h"
#include "obs/histogram.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "routing/routing.h"
#include "topo/topology.h"

namespace hxwar::obs {

class NetObserver {
 public:
  // Builds the per-(router, port) dimension table from the topology (virtual
  // calls at construction only; lookups on the hot path are one array read).
  NetObserver(const topo::Topology& topology, std::uint32_t numVcs,
              const ObsOptions& options);

  NetObserver(const NetObserver&) = delete;
  NetObserver& operator=(const NetObserver&) = delete;

  const ObsOptions& options() const { return opts_; }
  Registry& registry() { return registry_; }
  const Registry& registry() const { return registry_; }

  bool tracing() const { return tracing_; }
  // Trace sampling by packet id: deterministic, independent of execution
  // order, and stable across --jobs values.
  bool sampled(std::uint64_t packetId) const {
    return tracing_ && packetId % traceSample_ == 0;
  }

  // Number of attributable dimensions (per-dim counter arrays have one extra
  // trailing slot for unattributable ports).
  std::uint32_t numDims() const { return dims_; }

  // --- packet lifecycle hooks (trace only; cheap sampling check first) ---
  void onPacketCreated(const net::Packet& pkt, Tick now) {
    if (!sampled(pkt.id)) return;
    trace_.add({TraceKind::kBegin, now, pkt.id, pkt.src, pkt.dst, pkt.sizeFlits, 0});
  }
  void onInjectStart(const net::Packet& pkt, Tick now) {
    if (!sampled(pkt.id)) return;
    trace_.add({TraceKind::kInject, now, pkt.id, pkt.src, 0, 0, 0});
  }
  void onHop(RouterId router, PortId inPort, PortId outPort, const net::Packet& pkt,
             Tick now) {
    if (!sampled(pkt.id)) return;
    trace_.add({TraceKind::kHop, now, pkt.id, router, inPort, outPort, 0});
  }
  void onPacketDone(const net::Packet& pkt, bool dropped, Tick now) {
    // Window latency accumulation first: it is independent of trace sampling
    // (the flight recorder needs every delivered packet, not 1-in-N).
    if (windowed_ && !dropped) {
      winLatency_.add(static_cast<double>(now - pkt.createdAt));
    }
    if (!sampled(pkt.id)) return;
    trace_.add({TraceKind::kEnd, now, pkt.id, dropped ? 1u : 0u, pkt.hops,
                pkt.deroutes, 0});
  }

  // --- routing-decision hook (router tryRoute, on grant) ---
  // `chosen` is the granted candidate, `outVc` the allocated VC, `candidates`
  // the full set the algorithm emitted (scanned for refused deroute offers).
  void onRouteGrant(RouterId router, const net::Packet& pkt,
                    const routing::Candidate& chosen, VcId outVc,
                    const std::vector<routing::Candidate>& candidates, Tick now);

  // --- cheap incremental hooks ---
  void noteCreditStall() { *creditStalls_ += 1; }
  std::uint64_t creditStallCount() const { return *creditStalls_; }
  // Called by source-adaptive algorithms (VAL/UGAL/Clos-AD) when they commit
  // a packet to a non-minimal intermediate: a path-level deroute, distinct
  // from the hop-level deroute flags of the incremental algorithms.
  void notePathDeroute() { *pathDeroutes_ += 1; }

  // --- sampler interface ---
  void onSample(const SampleRow& row);
  const std::vector<SampleRow>& samples() const { return samples_; }

  // Snapshot of the routing-decision slots (copied into SteadyStateResult).
  RoutingCounters routingCounters() const;

  // --- flight-recorder interface ---
  // Drains the latency histogram accumulated since the last call (packets
  // completed this window). Only populated when options.windowed().
  LogHistogram takeWindowLatency() {
    LogHistogram h = winLatency_;
    winLatency_ = LogHistogram();
    return h;
  }

  const TraceBuffer& trace() const { return trace_; }

  // Stall-watchdog diagnostic dump: every counter, every gauge, and the tail
  // of the sample log.
  void dumpDiagnostics(std::FILE* f) const;

 private:
  std::uint32_t portDimAt(RouterId r, PortId p) const {
    const std::size_t idx = static_cast<std::size_t>(r) * maxPorts_ + p;
    return idx < portDim_.size() ? portDim_[idx] : dims_;
  }

  ObsOptions opts_;
  bool tracing_ = false;
  bool windowed_ = false;
  std::uint64_t traceSample_ = 1;

  // Per-(router, port) dimension index; dims_ = unattributable.
  std::vector<std::uint8_t> portDim_;
  std::uint32_t maxPorts_ = 0;
  std::uint32_t dims_ = 0;

  Registry registry_;
  // Cached counter slots (addresses stable for the registry's lifetime).
  std::uint64_t* decisions_ = nullptr;
  std::uint64_t* derouteGrants_ = nullptr;
  std::uint64_t* derouteRefusals_ = nullptr;
  std::uint64_t* faultEscapes_ = nullptr;
  std::uint64_t* pathDeroutes_ = nullptr;
  std::uint64_t* creditStalls_ = nullptr;
  std::vector<std::uint64_t*> takenByDim_;    // [dims_ + 1]
  std::vector<std::uint64_t*> refusedByDim_;  // [dims_ + 1]
  std::vector<std::uint64_t*> grantsByVc_;    // [numVcs]

  TraceBuffer trace_;
  std::vector<SampleRow> samples_;
  // Latencies of packets completed in the current recorder window; drained
  // by FlightRecorder via takeWindowLatency().
  LogHistogram winLatency_;
};

}  // namespace hxwar::obs
