// Windowed telemetry flight recorder (DESIGN.md §14).
//
// A sim::Component that wakes every `windowTicks` at kEpsControl — after all
// same-tick network activity, like the Sampler — and closes one observation
// window: per-window deltas of flow/routing counters, the per-window latency
// histogram drained from each lane's NetObserver, per-VC occupancy, the
// top-K hottest links from a Network::forEachLinkStats walk, and (when the
// intra-point parallel engine drives the run) per-shard load-balance deltas.
//
// Determinism: the recorder only reads simulation state, and every value in a
// WindowRecord is shard-count-invariant — cumulative counters read at a
// kEpsControl boundary equal the serial engine's values, lane observers merge
// in lane order, and LogHistogram::merge is commutative. ShardWindowRecords
// are kept on a separate stream because their shape describes the sharding
// (see window.h). In the parallel engine the recorder lives in the control
// simulator and its events run on the coordinator with all shard workers
// parked at the barrier, so walking Router SoA state is race-free.
//
// Like the Sampler, the recorder stops rescheduling once the busy probe says
// the network has quiesced, so it never keeps a bounded sim.run() spinning.
#pragma once

#include <cstdio>
#include <functional>
#include <vector>

#include "common/types.h"
#include "obs/net_observer.h"
#include "obs/window.h"
#include "sim/simulator.h"

namespace hxwar::obs {

class FlightRecorder final : public sim::Component {
 public:
  // Links with >= 1 flit or stall this window compete for this many hot-link
  // slots per record (flits desc, stallTicks desc, router asc, port asc).
  static constexpr std::size_t kHotLinks = 8;

  // Schedules itself immediately; `windowTicks` must be > 0.
  FlightRecorder(sim::Simulator& sim, Tick windowTicks);

  // Lane observers, added in lane order (merge order = lane order).
  void addObserver(NetObserver* observer) { observers_.push_back(observer); }

  // --- providers, wired by the harness (std::function keeps the obs layer
  // free of net/harness includes; see the CMake dependency direction) ---
  void setFlowProvider(std::function<FlowSample()> fn) { flow_ = std::move(fn); }
  // `walker(cb)` must invoke cb once per inter-router link in a deterministic
  // (router, port) order; numRouters/maxPorts size the cumulative-delta table.
  using LinkWalker = std::function<void(const std::function<void(const LinkStatsRow&)>&)>;
  void setLinkWalker(LinkWalker fn, std::uint32_t numRouters, std::uint32_t maxPorts);
  void setVcOccupancyProvider(std::function<std::vector<std::uint64_t>()> fn) {
    vcOccupancy_ = std::move(fn);
  }
  // Parallel-engine snapshot; unset on serial runs (no shard records then).
  void setEngineProvider(std::function<EngineSample()> fn) { engine_ = std::move(fn); }
  void setBusyProbe(std::function<bool()> fn) { busyProbe_ = std::move(fn); }
  // Transient-fault schedule for kill/revive window annotations (kTickInvalid
  // = no such edge).
  void setFaultWindow(Tick killAt, Tick reviveAt) {
    killAt_ = killAt;
    reviveAt_ = reviveAt;
  }

  void processEvent(std::uint64_t tag) override;

  Tick windowTicks() const { return windowTicks_; }
  const std::vector<WindowRecord>& windows() const { return windows_; }
  const std::vector<ShardWindowRecord>& shardWindows() const { return shardWindows_; }

  // Stall-watchdog hook: force-closes the in-progress window annotated
  // "stall_watchdog" and streams every window as JSONL to `f`, so the
  // deadlock walk and the windows leading up to it land in one artifact.
  void dumpTimeline(std::FILE* f);

 private:
  void closeWindow(Tick now, const char* forcedAnnotation);

  Tick windowTicks_;
  std::function<bool()> busyProbe_;
  std::vector<NetObserver*> observers_;

  std::function<FlowSample()> flow_;
  LinkWalker linkWalker_;
  std::uint32_t maxPorts_ = 0;
  std::function<std::vector<std::uint64_t>()> vcOccupancy_;
  std::function<EngineSample()> engine_;

  Tick killAt_ = kTickInvalid;
  Tick reviveAt_ = kTickInvalid;

  // Previous cumulative snapshots for window deltas.
  Tick lastClose_ = 0;
  FlowSample prevFlow_;
  RoutingCounters prevRouting_;
  std::vector<std::uint64_t> prevLinkFlits_;   // [router * maxPorts + port]
  std::vector<std::uint64_t> prevLinkStalls_;  // [router * maxPorts + port]
  EngineSample prevEngine_;

  std::vector<WindowRecord> windows_;
  std::vector<ShardWindowRecord> shardWindows_;
  std::vector<LinkWindowStat> linkScratch_;  // reused across closes
};

}  // namespace hxwar::obs
