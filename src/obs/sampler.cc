#include "obs/sampler.h"

#include <cstdio>

#include "common/assert.h"

namespace hxwar::obs {
namespace {

std::function<double()> resolveGauge(Registry& registry, const char* name) {
  const std::function<double()>* fn = registry.findGauge(name);
  HXWAR_CHECK_MSG(fn != nullptr,
                  "sampler: required gauge not installed (harness wiring bug)");
  return *fn;
}

std::uint64_t asU64(double v) { return static_cast<std::uint64_t>(v); }

}  // namespace

Sampler::Sampler(sim::Simulator& sim, NetObserver& observer, Tick interval,
                 Tick stallWindow)
    : Component(sim),
      obs_(observer),
      interval_(interval),
      stallWindow_(stallWindow),
      gInjected_(resolveGauge(observer.registry(), gauges::kFlitsInjected)),
      gEjected_(resolveGauge(observer.registry(), gauges::kFlitsEjected)),
      gMovements_(resolveGauge(observer.registry(), gauges::kFlitMovements)),
      gBacklog_(resolveGauge(observer.registry(), gauges::kBacklogFlits)),
      gQueued_(resolveGauge(observer.registry(), gauges::kQueuedFlits)),
      gOutstanding_(resolveGauge(observer.registry(), gauges::kPacketsOutstanding)) {
  HXWAR_CHECK(interval_ > 0);
  sim.scheduleIn(interval_, sim::kEpsControl, this, 0);
}

void Sampler::processEvent(std::uint64_t) {
  SampleRow row;
  row.tick = sim().now();
  row.flitsInjected = asU64(gInjected_());
  row.flitsEjected = asU64(gEjected_());
  row.flitMovements = asU64(gMovements_());
  row.backlogFlits = asU64(gBacklog_());
  row.queuedFlits = asU64(gQueued_());
  row.packetsOutstanding = asU64(gOutstanding_());
  row.creditStalls = creditStalls_ ? creditStalls_() : obs_.creditStallCount();
  obs_.onSample(row);

  // Stall watchdog: no flit moved since the previous sample while packets
  // are outstanding. Accumulate the stalled span; reset on any movement.
  if (havePrev_ && row.flitMovements == prevMovements_ && row.packetsOutstanding > 0) {
    stalledFor_ += interval_;
    if (stallWindow_ > 0 && stalledFor_ >= stallWindow_) {
      if (stallDump_) stallDump_(stderr);
      obs_.dumpDiagnostics(stderr);
      if (engineDiagnostics_) engineDiagnostics_(stderr);
      HXWAR_CHECK_MSG(false,
                      "stall watchdog: no flit movement with packets outstanding "
                      "(diagnostic dump above)");
    }
  } else {
    stalledFor_ = 0;
  }
  havePrev_ = true;
  prevMovements_ = row.flitMovements;

  // Reschedule only while other work remains: an empty queue means the
  // network has quiesced, and a lone sampler event must not keep a bounded
  // sim.run() ticking forever.
  const bool busy = busyProbe_ ? busyProbe_() : !sim().idle();
  if (busy) {
    sim().scheduleIn(interval_, sim::kEpsControl, this, 0);
  }
}

}  // namespace hxwar::obs
