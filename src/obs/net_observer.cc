#include "obs/net_observer.h"

#include <algorithm>
#include <cinttypes>
#include <string>

namespace hxwar::obs {

NetObserver::NetObserver(const topo::Topology& topology, std::uint32_t numVcs,
                         const ObsOptions& options)
    : opts_(options),
      tracing_(options.tracing()),
      windowed_(options.windowed()),
      traceSample_(std::max<std::uint64_t>(1, options.traceSample)) {
  // Per-dim arrays are indexed by a bitmask below, so cap at 32 dimensions
  // (any real lattice here has <= 8); extra dimensions fall into the
  // unattributable slot.
  dims_ = std::min<std::uint32_t>(topology.numPortDims(), 32);
  const std::uint32_t numRouters = topology.numRouters();
  for (RouterId r = 0; r < numRouters; ++r) {
    maxPorts_ = std::max(maxPorts_, topology.numPorts(r));
  }
  portDim_.assign(static_cast<std::size_t>(numRouters) * maxPorts_,
                  static_cast<std::uint8_t>(dims_));
  for (RouterId r = 0; r < numRouters; ++r) {
    const std::uint32_t ports = topology.numPorts(r);
    for (PortId p = 0; p < ports; ++p) {
      const std::uint32_t d = topology.portDim(r, p);
      if (d < dims_) {
        portDim_[static_cast<std::size_t>(r) * maxPorts_ + p] =
            static_cast<std::uint8_t>(d);
      }
    }
  }

  decisions_ = registry_.counter("route.decisions");
  derouteGrants_ = registry_.counter("route.deroutes_taken");
  derouteRefusals_ = registry_.counter("route.deroutes_refused");
  faultEscapes_ = registry_.counter("route.fault_escapes");
  pathDeroutes_ = registry_.counter("route.path_deroutes");
  creditStalls_ = registry_.counter("net.credit_stalls");
  takenByDim_.reserve(dims_ + 1);
  refusedByDim_.reserve(dims_ + 1);
  for (std::uint32_t d = 0; d <= dims_; ++d) {
    const std::string suffix = d < dims_ ? "dim" + std::to_string(d) : "other";
    takenByDim_.push_back(registry_.counter("route.deroutes_taken." + suffix));
    refusedByDim_.push_back(registry_.counter("route.deroutes_refused." + suffix));
  }
  grantsByVc_.reserve(numVcs);
  for (std::uint32_t v = 0; v < numVcs; ++v) {
    grantsByVc_.push_back(registry_.counter("route.grants.vc" + std::to_string(v)));
  }
}

void NetObserver::onRouteGrant(RouterId router, const net::Packet& pkt,
                               const routing::Candidate& chosen, VcId outVc,
                               const std::vector<routing::Candidate>& candidates,
                               Tick now) {
  *decisions_ += 1;
  *grantsByVc_[outVc] += 1;
  const std::uint32_t dim = portDimAt(router, chosen.port);
  if (chosen.deroute) {
    *derouteGrants_ += 1;
    *takenByDim_[dim] += 1;
    if (chosen.faultEscape) *faultEscapes_ += 1;
  } else {
    // Minimal grant: did the algorithm offer a deroute this decision refused?
    // Each dimension with at least one refused offer counts once.
    std::uint64_t refusedMask = 0;
    for (const routing::Candidate& c : candidates) {
      if (c.deroute) refusedMask |= 1ull << portDimAt(router, c.port);
    }
    if (refusedMask != 0) {
      *derouteRefusals_ += 1;
      for (std::uint32_t d = 0; d <= dims_; ++d) {
        if ((refusedMask >> d) & 1u) *refusedByDim_[d] += 1;
      }
    }
  }
  if (sampled(pkt.id)) {
    const std::uint32_t traceDim = dim < dims_ ? dim : 0xffu;
    const std::uint32_t flags = (chosen.deroute ? 1u : 0u) |
                                (chosen.faultEscape ? 2u : 0u) | (traceDim << 8);
    trace_.add({TraceKind::kRoute, now, pkt.id, router, chosen.port, outVc, flags});
  }
}

void NetObserver::onSample(const SampleRow& row) {
  if (tracing_) {
    const SampleRow prev = samples_.empty() ? SampleRow{} : samples_.back();
    TraceEvent e;
    e.kind = TraceKind::kCounter;
    e.ts = row.tick;
    e.a = static_cast<std::uint32_t>(row.creditStalls - prev.creditStalls);
    e.v0 = static_cast<double>(row.flitsInjected - prev.flitsInjected);
    e.v1 = static_cast<double>(row.flitsEjected - prev.flitsEjected);
    e.v2 = static_cast<double>(row.backlogFlits);
    e.v3 = static_cast<double>(row.queuedFlits);
    trace_.add(e);
  }
  samples_.push_back(row);
}

RoutingCounters NetObserver::routingCounters() const {
  RoutingCounters rc;
  rc.decisions = *decisions_;
  rc.derouteGrants = *derouteGrants_;
  rc.derouteRefusals = *derouteRefusals_;
  rc.faultEscapes = *faultEscapes_;
  rc.pathDeroutes = *pathDeroutes_;
  rc.creditStalls = *creditStalls_;
  rc.derouteTakenByDim.reserve(takenByDim_.size());
  rc.derouteRefusedByDim.reserve(refusedByDim_.size());
  for (const std::uint64_t* slot : takenByDim_) rc.derouteTakenByDim.push_back(*slot);
  for (const std::uint64_t* slot : refusedByDim_) rc.derouteRefusedByDim.push_back(*slot);
  rc.grantsByVc.reserve(grantsByVc_.size());
  for (const std::uint64_t* slot : grantsByVc_) rc.grantsByVc.push_back(*slot);
  return rc;
}

void NetObserver::dumpDiagnostics(std::FILE* f) const {
  std::fprintf(f, "--- observability diagnostic dump ---\n");
  std::fprintf(f, "counters:\n");
  for (const auto& c : registry_.counters()) {
    std::fprintf(f, "  %-32s %" PRIu64 "\n", c.name.c_str(), c.value);
  }
  std::fprintf(f, "gauges:\n");
  for (const auto& g : registry_.gauges()) {
    std::fprintf(f, "  %-32s %.0f\n", g.name.c_str(), g.value);
  }
  const std::size_t tail = std::min<std::size_t>(samples_.size(), 8);
  if (tail > 0) {
    std::fprintf(f, "last %zu sampler rows (tick inj ej moves backlog queued stalls"
                    " outstanding):\n", tail);
    for (std::size_t i = samples_.size() - tail; i < samples_.size(); ++i) {
      const SampleRow& s = samples_[i];
      std::fprintf(f,
                   "  %" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64
                   " %" PRIu64 " %" PRIu64 " %" PRIu64 "\n",
                   static_cast<std::uint64_t>(s.tick), s.flitsInjected, s.flitsEjected,
                   s.flitMovements, s.backlogFlits, s.queuedFlits, s.creditStalls,
                   s.packetsOutstanding);
    }
  }
  std::fprintf(f, "--- end diagnostic dump ---\n");
}

}  // namespace hxwar::obs
