// Packet lifecycle trace buffer and its Chrome-trace (Perfetto) JSON
// serialization.
//
// Events are recorded as compact PODs on the simulation thread and serialized
// after the run. Packet lifetimes map onto Chrome async events: "b" at
// creation, "n" instants for injection / route decisions / crossbar
// traversals, "e" at ejection or drop, keyed by (cat="pkt", id=packet id,
// pid). The pid is the sweep-point index, so a multi-point sweep merges into
// one trace with one Perfetto process group per load — and the merge order is
// point order, independent of --jobs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace hxwar::obs {

enum class TraceKind : std::uint8_t {
  kBegin,    // packet entered its source queue
  kInject,   // head flit left the terminal
  kRoute,    // head flit won route + VC allocation at a router
  kHop,      // head flit entered the crossbar toward an inter-router port
  kEnd,      // packet ejected (or dropped) at its destination
  kCounter,  // periodic sampler snapshot (Chrome "C" counter event)
};

struct TraceEvent {
  TraceKind kind = TraceKind::kBegin;
  Tick ts = 0;
  std::uint64_t id = 0;  // packet id; 0 for kCounter
  // Kind-specific payload:
  //   kBegin:   a=src node, b=dst node, c=size flits
  //   kInject:  a=src node
  //   kRoute:   a=router, b=out port, c=out vc, d=flags
  //             (bit 0 deroute, bit 1 fault escape, bits 8..15 dimension,
  //              0xff = not attributable to a dimension)
  //   kHop:     a=router, b=in port, c=out port
  //   kEnd:     a=dropped (0/1), b=hops, c=deroutes
  //   kCounter: a=credit-stall delta; deltas in v0..v3
  std::uint32_t a = 0, b = 0, c = 0, d = 0;
  double v0 = 0.0, v1 = 0.0, v2 = 0.0, v3 = 0.0;
};

class TraceBuffer {
 public:
  void add(const TraceEvent& e) { events_.push_back(e); }
  const std::vector<TraceEvent>& events() const { return events_; }
  std::vector<TraceEvent>& events() { return events_; }
  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  void clear() { events_.clear(); }

 private:
  std::vector<TraceEvent> events_;
};

// Sorts the buffer into the canonical (ts, id, kind, payload) order. Serial
// and sharded runs of the same experiment record the same event *multiset*
// but interleave packets differently, so the harness canonicalizes every
// extracted trace — from both engines — before serialization; the sorted
// sequences are then byte-identical. Within one (ts, id) pair the kind enum
// is already causal order (begin < inject < route < hop < end) and a packet
// records at most one event per kind per tick.
void canonicalize(TraceBuffer& buffer);

// Appends this buffer's events to `out` as comma-separated Chrome-trace JSON
// objects under process `pid` (no enclosing brackets — the caller assembles
// the traceEvents array and any metadata events).
void appendChromeJson(const TraceBuffer& buffer, std::uint32_t pid, std::string& out);

// One Chrome "M" metadata event naming process `pid` (shown as the Perfetto
// process group label).
std::string chromeProcessName(std::uint32_t pid, const std::string& name);

}  // namespace hxwar::obs
