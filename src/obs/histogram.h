// Log2-bucketed latency histogram: constant memory, one increment per sample,
// percentiles via linear interpolation within the hit bucket. Bucket b covers
// [2^(b-1), 2^b) with bucket 0 covering [0, 1) — power-of-two edges keep the
// bucket index a bit operation and the edges exact in JSON output.
#pragma once

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>

namespace hxwar::obs {

class LogHistogram {
 public:
  static constexpr std::uint32_t kBuckets = 64;

  void add(double v) {
    counts_[bucketOf(v)] += 1;
    total_ += 1;
  }

  // Bucket index for a value. Negative/NaN values clamp into bucket 0; values
  // past 2^62 clamp into the top bucket.
  static std::uint32_t bucketOf(double v) {
    if (!(v >= 1.0)) return 0;
    if (v >= 9.223372036854775808e18) return kBuckets - 1;  // 2^63
    const auto u = static_cast<std::uint64_t>(v);
    const auto b = static_cast<std::uint32_t>(64 - std::countl_zero(u));
    return std::min(b, kBuckets - 1);
  }

  // [bucketLow(b), bucketHigh(b)) is bucket b's value range.
  static double bucketLow(std::uint32_t b) {
    return b == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(b) - 1);
  }
  static double bucketHigh(std::uint32_t b) { return std::ldexp(1.0, static_cast<int>(b)); }

  std::uint64_t count(std::uint32_t b) const { return counts_[b]; }
  std::uint64_t total() const { return total_; }

  // p in [0, 1] (clamped); 0.0 on an empty histogram. Resolution is the
  // bucket width (exact percentiles come from SampleStats; the histogram adds
  // the shape and the per-hop/per-point breakdowns at constant memory).
  double percentile(double p) const {
    if (total_ == 0) return 0.0;
    p = std::clamp(p, 0.0, 1.0);
    // Nearest-rank target, then interpolate linearly inside the hit bucket.
    const double target = p * static_cast<double>(total_ - 1);
    std::uint64_t cum = 0;
    for (std::uint32_t b = 0; b < kBuckets; ++b) {
      if (counts_[b] == 0) continue;
      const auto lo = static_cast<double>(cum);
      cum += counts_[b];
      if (target < static_cast<double>(cum)) {
        const double frac =
            counts_[b] == 1 ? 0.0 : (target - lo) / static_cast<double>(counts_[b] - 1);
        return bucketLow(b) + frac * (bucketHigh(b) - bucketLow(b));
      }
    }
    return bucketHigh(kBuckets - 1);  // unreachable: cum == total_ covers target
  }

  void merge(const LogHistogram& other) {
    for (std::uint32_t b = 0; b < kBuckets; ++b) counts_[b] += other.counts_[b];
    total_ += other.total_;
  }

 private:
  std::uint64_t counts_[kBuckets] = {};
  std::uint64_t total_ = 0;
};

}  // namespace hxwar::obs
