// Observability core: named counter/gauge registry and the option surface
// shared by the tracing, histogram, and sampling subsystems (DESIGN.md §9).
//
// Design constraints, in order:
//   * Zero cost when disabled. Hot-path instrumentation compiles down to one
//     branch on a cached raw pointer (`if (obs_ != nullptr)`), and the whole
//     layer can be compiled out with -DHXWAR_OBS=OFF (see kCompiledIn).
//   * No virtual calls on the hot path. Counters are raw uint64 slots whose
//     addresses are stable for the registry's lifetime; instrumented code
//     caches the slot pointer once and does `*slot += 1`.
//   * Determinism. Every value recorded derives from simulation state only
//     (ticks, packet ids, flit counts) — never wall clock or thread identity
//     — so observability output is byte-identical across --jobs values.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "common/types.h"

namespace hxwar::obs {

// False when the build was configured with -DHXWAR_OBS=OFF: instrumentation
// sites wrap their hooks in `if constexpr (obs::kCompiledIn)` so the branch
// and the cached pointer load vanish entirely from the hot path.
#if defined(HXWAR_OBS_DISABLED)
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

// Operational observability options. These ride on ExperimentSpec but are
// deliberately NOT part of an experiment's identity: like --jobs or --csv,
// they change what gets recorded, never what gets simulated.
struct ObsOptions {
  std::string traceOut;    // Chrome-trace JSON path; empty = tracing off
  std::string metricsJson; // structured metrics JSON path; empty = off
  // Trace 1-in-N packets (by packet id). 1 = every packet. Ignored unless
  // traceOut is set.
  std::uint64_t traceSample = 64;
  // Periodic sampler cadence in ticks; 0 = sampler off.
  Tick sampleInterval = 0;
  // Stall watchdog: abort with a diagnostic dump if no flit moves for this
  // many consecutive ticks while packets are outstanding. Only armed when the
  // sampler runs (checked at sampler cadence).
  Tick stallWindow = 100000;
  // Flight-recorder window length in ticks; 0 = recorder off. The harness
  // defaults this to 1000 when --timeline-out is given without a cadence.
  Tick windowTicks = 0;
  std::string timelineOut;  // windowed-telemetry JSONL path; empty = off

  bool tracing() const { return !traceOut.empty(); }
  bool sampling() const { return sampleInterval > 0; }
  bool windowed() const { return windowTicks > 0; }
  // Any subsystem on => the harness attaches a NetObserver to the network.
  bool enabled() const {
    return tracing() || sampling() || windowed() || !metricsJson.empty() ||
           !timelineOut.empty();
  }
};

// Canonical gauge names installed by the harness (see Experiment). The
// sampler resolves these once at construction; missing gauges CHECK-fail so a
// miswired harness fails loudly instead of sampling zeros.
namespace gauges {
inline constexpr const char* kFlitsInjected = "net.flits_injected";
inline constexpr const char* kFlitsEjected = "net.flits_ejected";
inline constexpr const char* kFlitMovements = "net.flit_movements";
inline constexpr const char* kBacklogFlits = "net.backlog_flits";
inline constexpr const char* kQueuedFlits = "net.queued_flits";
inline constexpr const char* kPacketsOutstanding = "net.packets_outstanding";
}  // namespace gauges

// Registry of named counters and gauges.
//
// Counters are owned uint64 slots in a deque (stable addresses across
// registration), handed out as raw pointers so instrumented code pays one
// indirect increment, no lookup, no virtual call. Gauges are pull-style
// std::function callbacks registered by whoever owns the sampled state; they
// are polled off the hot path (sampler cadence, diagnostic dumps).
class Registry {
 public:
  // Returns the slot for `name`, creating it at zero on first use. The
  // pointer stays valid for the registry's lifetime.
  std::uint64_t* counter(const std::string& name);

  // Registers (or replaces) a pull gauge.
  void gauge(const std::string& name, std::function<double()> fn);

  // nullptr when no gauge of that name is registered.
  const std::function<double()>* findGauge(const std::string& name) const;

  struct CounterView {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeView {
    std::string name;
    double value = 0.0;
  };
  // Snapshots in registration order (deterministic dump order).
  std::vector<CounterView> counters() const;
  std::vector<GaugeView> gauges() const;  // polls every gauge

 private:
  std::deque<std::uint64_t> slots_;  // deque: stable addresses on growth
  std::vector<std::pair<std::string, std::uint64_t*>> counterIndex_;
  std::vector<std::pair<std::string, std::function<double()>>> gauges_;
};

// One periodic sampler snapshot. All fields are cumulative simulation
// counters at `tick` (consumers difference adjacent rows for rates).
struct SampleRow {
  Tick tick = 0;
  std::uint64_t flitsInjected = 0;
  std::uint64_t flitsEjected = 0;
  std::uint64_t flitMovements = 0;
  std::uint64_t backlogFlits = 0;   // source-queue backlog (saturation signal)
  std::uint64_t queuedFlits = 0;    // flits buffered inside routers
  std::uint64_t creditStalls = 0;   // output ports with flits but no credits
  std::uint64_t packetsOutstanding = 0;
};

// Aggregated routing-decision telemetry, snapshotted from a NetObserver's
// registry into SteadyStateResult. Per-dim arrays have numDims()+1 entries:
// index d counts moves in dimension d, the last slot collects ports the
// topology cannot attribute to a dimension (terminal/unknown).
struct RoutingCounters {
  std::uint64_t decisions = 0;        // head-flit route grants
  std::uint64_t derouteGrants = 0;    // grants flagged deroute (hop-level)
  std::uint64_t derouteRefusals = 0;  // decisions that had a deroute offer but
                                      // granted a minimal candidate instead
  std::uint64_t faultEscapes = 0;     // deroutes forced by dead links (DAL retry)
  std::uint64_t pathDeroutes = 0;     // source-adaptive non-minimal commitments
                                      // (VAL/UGAL/Clos-AD intermediate choice)
  std::uint64_t creditStalls = 0;
  std::vector<std::uint64_t> derouteTakenByDim;
  std::vector<std::uint64_t> derouteRefusedByDim;
  std::vector<std::uint64_t> grantsByVc;

  // Field-wise sum; the sharded harness merges one per-shard observer's
  // counters per lane (all increments are commutative, so the merged totals
  // match a serial run exactly).
  void merge(const RoutingCounters& other) {
    decisions += other.decisions;
    derouteGrants += other.derouteGrants;
    derouteRefusals += other.derouteRefusals;
    faultEscapes += other.faultEscapes;
    pathDeroutes += other.pathDeroutes;
    creditStalls += other.creditStalls;
    const auto addVec = [](std::vector<std::uint64_t>& a,
                           const std::vector<std::uint64_t>& b) {
      if (a.size() < b.size()) a.resize(b.size(), 0);
      for (std::size_t i = 0; i < b.size(); ++i) a[i] += b[i];
    };
    addVec(derouteTakenByDim, other.derouteTakenByDim);
    addVec(derouteRefusedByDim, other.derouteRefusedByDim);
    addVec(grantsByVc, other.grantsByVc);
  }
};

}  // namespace hxwar::obs
