#include "obs/recorder.h"

#include <algorithm>
#include <cinttypes>

#include "common/assert.h"

namespace hxwar::obs {

namespace {

// Element-wise delta with resize: cumulative per-dim/per-shard vectors only
// ever grow, so missing previous entries difference against zero.
std::vector<std::uint64_t> deltaVec(const std::vector<std::uint64_t>& cur,
                                    std::vector<std::uint64_t>& prev) {
  std::vector<std::uint64_t> d(cur.size(), 0);
  if (prev.size() < cur.size()) prev.resize(cur.size(), 0);
  for (std::size_t i = 0; i < cur.size(); ++i) d[i] = cur[i] - prev[i];
  prev = cur;
  return d;
}

}  // namespace

FlightRecorder::FlightRecorder(sim::Simulator& sim, Tick windowTicks)
    : Component(sim), windowTicks_(windowTicks) {
  HXWAR_CHECK(windowTicks_ > 0);
  sim.scheduleIn(windowTicks_, sim::kEpsControl, this, 0);
}

void FlightRecorder::setLinkWalker(LinkWalker fn, std::uint32_t numRouters,
                                   std::uint32_t maxPorts) {
  linkWalker_ = std::move(fn);
  maxPorts_ = maxPorts;
  const std::size_t slots = static_cast<std::size_t>(numRouters) * maxPorts;
  prevLinkFlits_.assign(slots, 0);
  prevLinkStalls_.assign(slots, 0);
}

void FlightRecorder::processEvent(std::uint64_t) {
  closeWindow(sim().now(), nullptr);
  const bool busy = busyProbe_ ? busyProbe_() : !sim().idle();
  if (busy) {
    sim().scheduleIn(windowTicks_, sim::kEpsControl, this, 0);
  }
}

void FlightRecorder::closeWindow(Tick now, const char* forcedAnnotation) {
  WindowRecord w;
  w.index = windows_.size();
  w.start = lastClose_;
  w.end = now;

  if (flow_) {
    const FlowSample cur = flow_();
    w.flitsInjected = cur.flitsInjected - prevFlow_.flitsInjected;
    w.flitsEjected = cur.flitsEjected - prevFlow_.flitsEjected;
    w.packetsCreated = cur.packetsCreated - prevFlow_.packetsCreated;
    w.packetsEjected = cur.packetsEjected - prevFlow_.packetsEjected;
    w.packetsDropped = cur.packetsDropped - prevFlow_.packetsDropped;
    w.backlogFlits = cur.backlogFlits;
    w.queuedFlits = cur.queuedFlits;
    w.packetsOutstanding = cur.packetsOutstanding;
    prevFlow_ = cur;
  }

  // Routing counters: merge lanes in lane order, then difference against the
  // previous merged snapshot. Increments are commutative, so the merged
  // cumulative values (and hence the deltas) are shard-order-invariant.
  RoutingCounters cur;
  for (NetObserver* o : observers_) cur.merge(o->routingCounters());
  w.routeDecisions = cur.decisions - prevRouting_.decisions;
  w.deroutesTaken = cur.derouteGrants - prevRouting_.derouteGrants;
  w.deroutesRefused = cur.derouteRefusals - prevRouting_.derouteRefusals;
  w.faultEscapes = cur.faultEscapes - prevRouting_.faultEscapes;
  w.pathDeroutes = cur.pathDeroutes - prevRouting_.pathDeroutes;
  w.creditStalls = cur.creditStalls - prevRouting_.creditStalls;
  w.deroutesTakenByDim = deltaVec(cur.derouteTakenByDim, prevRouting_.derouteTakenByDim);
  prevRouting_ = cur;

  // Per-window latency histogram: each lane observer accumulates latencies of
  // packets it completed this window; merge is commutative so lane-order
  // merging matches the serial engine byte for byte.
  for (NetObserver* o : observers_) {
    w.latency.merge(o->takeWindowLatency());
  }

  if (vcOccupancy_) w.vcOccupancy = vcOccupancy_();

  if (linkWalker_) {
    linkScratch_.clear();
    linkWalker_([&](const LinkStatsRow& row) {
      const std::size_t slot = static_cast<std::size_t>(row.router) * maxPorts_ + row.port;
      HXWAR_DCHECK(slot < prevLinkFlits_.size());
      const std::uint64_t flits = row.flitsSent - prevLinkFlits_[slot];
      const std::uint64_t stalls = row.stallTicks - prevLinkStalls_[slot];
      prevLinkFlits_[slot] = row.flitsSent;
      prevLinkStalls_[slot] = row.stallTicks;
      w.linkFlitsTotal += flits;
      w.linkStallTicksTotal += stalls;
      if (flits > 0) w.activeLinks += 1;
      if (flits > 0 || stalls > 0) {
        linkScratch_.push_back({row.router, row.port, row.peerRouter, row.peerPort,
                                flits, stalls, row.queuedFlits});
      }
    });
    const std::size_t k = std::min(kHotLinks, linkScratch_.size());
    std::partial_sort(linkScratch_.begin(), linkScratch_.begin() + k, linkScratch_.end(),
                      [](const LinkWindowStat& a, const LinkWindowStat& b) {
                        if (a.flits != b.flits) return a.flits > b.flits;
                        if (a.stallTicks != b.stallTicks) return a.stallTicks > b.stallTicks;
                        if (a.router != b.router) return a.router < b.router;
                        return a.port < b.port;
                      });
    w.hotLinks.assign(linkScratch_.begin(), linkScratch_.begin() + k);
  }

  // Fault-schedule annotations: edges landing inside (start, end].
  char buf[64];
  if (killAt_ != kTickInvalid && killAt_ > w.start && killAt_ <= w.end) {
    std::snprintf(buf, sizeof(buf), "fault_kill tick=%" PRIu64, killAt_);
    w.annotations.emplace_back(buf);
  }
  if (reviveAt_ != kTickInvalid && reviveAt_ > w.start && reviveAt_ <= w.end) {
    std::snprintf(buf, sizeof(buf), "fault_revive tick=%" PRIu64, reviveAt_);
    w.annotations.emplace_back(buf);
  }
  if (w.faultEscapes > 0) {
    std::snprintf(buf, sizeof(buf), "escape_escalations=%" PRIu64, w.faultEscapes);
    w.annotations.emplace_back(buf);
  }
  if (forcedAnnotation != nullptr) {
    w.annotations.emplace_back(forcedAnnotation);
  }

  if (engine_) {
    const EngineSample es = engine_();
    ShardWindowRecord sr;
    sr.index = w.index;
    sr.shardEvents = deltaVec(es.shardEvents, prevEngine_.shardEvents);
    sr.mailboxPosts = deltaVec(es.mailboxPosts, prevEngine_.mailboxPosts);
    sr.barrierWaitSeconds = es.barrierWaitSeconds;
    sr.loadRatio = shardLoadRatio(sr.shardEvents);
    shardWindows_.push_back(std::move(sr));
  }

  lastClose_ = now;
  windows_.push_back(std::move(w));
}

void FlightRecorder::dumpTimeline(std::FILE* f) {
  // Force-close the in-progress window so the activity right up to the stall
  // is captured, then stream the whole timeline. Point index 0: the dump is a
  // per-process diagnostic on the way to an abort, not sweep output.
  closeWindow(sim().now(), "stall_watchdog");
  std::fprintf(f, "=== flight recorder timeline (%zu windows of %" PRIu64 " ticks) ===\n",
               windows_.size(), windowTicks_);
  std::string line;
  for (const WindowRecord& w : windows_) {
    line.clear();
    appendWindowJsonl(0, w, line);
    std::fputs(line.c_str(), f);
  }
  if (engine_ && !shardWindows_.empty()) {
    std::fprintf(f, "--- per-shard window deltas (events per shard) ---\n");
    for (const ShardWindowRecord& sr : shardWindows_) {
      std::fprintf(f, "window %" PRIu64 ":", sr.index);
      for (const std::uint64_t e : sr.shardEvents) {
        std::fprintf(f, " %" PRIu64, e);
      }
      std::fprintf(f, " (max/mean %.3f)\n", sr.loadRatio);
    }
  }
  std::fprintf(f, "=== end flight recorder timeline ===\n");
}

}  // namespace hxwar::obs
