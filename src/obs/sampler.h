// Periodic sampler + stall watchdog.
//
// A sim::Component that wakes every `interval` ticks at kEpsControl (after
// all same-tick network activity), polls the canonical network gauges from
// the observer's registry, and records a SampleRow (plus a Chrome counter
// event when tracing). Because the event queue's (tick, epsilon, seq) order
// is total and sampler events never touch network state, an attached sampler
// cannot perturb the simulation — obs-on and obs-off runs are identical.
//
// Watchdog: if the flit-movement gauge is unchanged across consecutive
// samples while packets are outstanding for at least `stallWindow` ticks, the
// sampler dumps every counter, gauge, and recent sample to stderr and aborts.
// This turns a silent hang (routing deadlock, miswired credit loop) into an
// actionable diagnostic.
//
// The sampler stops rescheduling once the event queue is otherwise empty, so
// it never keeps a bounded `sim.run()` spinning past quiescence.
#pragma once

#include <cstdio>
#include <functional>

#include "common/types.h"
#include "obs/net_observer.h"
#include "sim/simulator.h"

namespace hxwar::obs {

class Sampler final : public sim::Component {
 public:
  // Resolves the canonical gauges (obs::gauges) from the observer's registry;
  // CHECK-fails if the harness has not installed them. Schedules itself
  // immediately.
  Sampler(sim::Simulator& sim, NetObserver& observer, Tick interval, Tick stallWindow);

  // Parallel-engine hooks (sim/par): when the sampler lives in the control
  // simulator, the network's events are in the shard simulators — so "other
  // work remains" must be probed across shards, and credit stalls must be
  // summed across the per-shard observers. Both default to the serial
  // behaviour (own sim's queue, own observer's counter) when unset.
  void setBusyProbe(std::function<bool()> fn) { busyProbe_ = std::move(fn); }
  void setCreditStallProvider(std::function<std::uint64_t()> fn) {
    creditStalls_ = std::move(fn);
  }
  // Extra engine-level state appended to the watchdog's diagnostic dump —
  // the sharded harness prints per-shard event counts and mailbox depths so
  // a cross-shard stall names the starved shard instead of just "no
  // movement". Runs on the coordinator thread with all workers parked at the
  // barrier, so reading engine state is safe.
  void setEngineDiagnostics(std::function<void(std::FILE*)> fn) {
    engineDiagnostics_ = std::move(fn);
  }
  // Runs FIRST on a watchdog trip, before the counter/gauge dump: the harness
  // points this at FlightRecorder::dumpTimeline so the deadlock walk and the
  // windows leading up to it land in one stderr artifact.
  void setStallDump(std::function<void(std::FILE*)> fn) { stallDump_ = std::move(fn); }

  void processEvent(std::uint64_t tag) override;

 private:
  NetObserver& obs_;
  Tick interval_;
  Tick stallWindow_;
  std::function<bool()> busyProbe_;
  std::function<std::uint64_t()> creditStalls_;
  std::function<void(std::FILE*)> engineDiagnostics_;
  std::function<void(std::FILE*)> stallDump_;
  std::function<double()> gInjected_, gEjected_, gMovements_, gBacklog_, gQueued_,
      gOutstanding_;
  bool havePrev_ = false;
  std::uint64_t prevMovements_ = 0;
  Tick stalledFor_ = 0;
};

}  // namespace hxwar::obs
