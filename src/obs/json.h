// Minimal JSON reader used by the trace checker (tools/trace_check.cc) and
// the observability tests to parse emitted trace/metrics files back. Handles
// the full JSON grammar this repo emits (objects, arrays, strings with
// standard escapes, numbers, booleans, null); it is a validator-grade reader,
// not a general-purpose library.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace hxwar::obs {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool isNull() const { return type == Type::kNull; }
  bool isBool() const { return type == Type::kBool; }
  bool isNumber() const { return type == Type::kNumber; }
  bool isString() const { return type == Type::kString; }
  bool isArray() const { return type == Type::kArray; }
  bool isObject() const { return type == Type::kObject; }

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* get(const std::string& key) const {
    if (type != Type::kObject) return nullptr;
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

// Parses `text` into `out`. Returns false (with a position/message in
// `error`) on malformed input or trailing garbage.
bool parseJson(const std::string& text, JsonValue& out, std::string& error);

}  // namespace hxwar::obs
