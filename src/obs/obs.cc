#include "obs/obs.h"

namespace hxwar::obs {

std::uint64_t* Registry::counter(const std::string& name) {
  for (const auto& [n, slot] : counterIndex_) {
    if (n == name) return slot;
  }
  slots_.push_back(0);
  std::uint64_t* slot = &slots_.back();
  counterIndex_.emplace_back(name, slot);
  return slot;
}

void Registry::gauge(const std::string& name, std::function<double()> fn) {
  for (auto& [n, f] : gauges_) {
    if (n == name) {
      f = std::move(fn);
      return;
    }
  }
  gauges_.emplace_back(name, std::move(fn));
}

const std::function<double()>* Registry::findGauge(const std::string& name) const {
  for (const auto& [n, f] : gauges_) {
    if (n == name) return &f;
  }
  return nullptr;
}

std::vector<Registry::CounterView> Registry::counters() const {
  std::vector<CounterView> out;
  out.reserve(counterIndex_.size());
  for (const auto& [name, slot] : counterIndex_) out.push_back({name, *slot});
  return out;
}

std::vector<Registry::GaugeView> Registry::gauges() const {
  std::vector<GaugeView> out;
  out.reserve(gauges_.size());
  for (const auto& [name, fn] : gauges_) out.push_back({name, fn()});
  return out;
}

}  // namespace hxwar::obs
