#include "obs/json.h"

#include <cctype>
#include <cstdlib>

namespace hxwar::obs {
namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string& error) : text_(text), error_(error) {}

  bool parse(JsonValue& out) {
    skipWs();
    if (!parseValue(out)) return false;
    skipWs();
    if (pos_ != text_.size()) return fail("trailing characters after JSON value");
    return true;
  }

 private:
  bool fail(const std::string& msg) {
    error_ = msg + " at offset " + std::to_string(pos_);
    return false;
  }

  void skipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool parseValue(JsonValue& out) {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return parseObject(out);
    if (c == '[') return parseArray(out);
    if (c == '"') {
      out.type = JsonValue::Type::kString;
      return parseString(out.string);
    }
    if (c == 't' || c == 'f') return parseKeyword(out);
    if (c == 'n') return parseKeyword(out);
    if (c == '-' || (c >= '0' && c <= '9')) return parseNumber(out);
    return fail(std::string("unexpected character '") + c + "'");
  }

  bool parseKeyword(JsonValue& out) {
    if (text_.compare(pos_, 4, "true") == 0) {
      out.type = JsonValue::Type::kBool;
      out.boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out.type = JsonValue::Type::kBool;
      out.boolean = false;
      pos_ += 5;
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      out.type = JsonValue::Type::kNull;
      pos_ += 4;
      return true;
    }
    return fail("invalid keyword");
  }

  bool parseNumber(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      return fail("invalid number");
    }
    out.type = JsonValue::Type::kNumber;
    out.number = std::strtod(text_.substr(start, pos_ - start).c_str(), nullptr);
    return true;
  }

  bool parseString(std::string& out) {
    if (text_[pos_] != '"') return fail("expected string");
    ++pos_;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return fail("unterminated escape");
        const char esc = text_[pos_];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 >= text_.size()) return fail("truncated \\u escape");
            // Validator-grade: keep the escape verbatim (no UTF-8 decode) —
            // nothing this repo emits uses \u sequences.
            out += "\\u";
            out += text_.substr(pos_ + 1, 4);
            pos_ += 4;
            break;
          }
          default: return fail("invalid escape");
        }
        ++pos_;
        continue;
      }
      out += c;
      ++pos_;
    }
    return fail("unterminated string");
  }

  bool parseArray(JsonValue& out) {
    out.type = JsonValue::Type::kArray;
    ++pos_;  // '['
    skipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue element;
      skipWs();
      if (!parseValue(element)) return false;
      out.array.push_back(std::move(element));
      skipWs();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parseObject(JsonValue& out) {
    out.type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    skipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skipWs();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"') return fail("expected object key");
      if (!parseString(key)) return false;
      skipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') return fail("expected ':'");
      ++pos_;
      skipWs();
      JsonValue value;
      if (!parseValue(value)) return false;
      out.object.emplace(std::move(key), std::move(value));
      skipWs();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  const std::string& text_;
  std::string& error_;
  std::size_t pos_ = 0;
};

}  // namespace

bool parseJson(const std::string& text, JsonValue& out, std::string& error) {
  Parser parser(text, error);
  return parser.parse(out);
}

}  // namespace hxwar::obs
