# One --scale=paper fig06-style sweep point (4,096-node 8x8x8 HyperX,
# OmniWAR, uniform random) end-to-end through the real hxsim binary:
# --jobs=2 must write a byte-identical CSV to --jobs=1. Windows are reduced
# from the full fig. 6 methodology so the point finishes in ctest time while
# still building, warming, measuring, and draining the full-size network.
#
# Required -D variables: HXSIM (path to the hxsim binary), WORKDIR (scratch).
file(MAKE_DIRECTORY "${WORKDIR}")
set(csv1 "${WORKDIR}/paper_jobs1.csv")
set(csv2 "${WORKDIR}/paper_jobs2.csv")
set(common
    --scale=paper --routing=omniwar --pattern=ur --experiment=sweep
    --loads=0.05 --warmup-window=1000 --warmup-windows=4
    --measure-window=2000 --drain-window=20000)

execute_process(COMMAND "${HXSIM}" ${common} --jobs=1 --csv=${csv1}
                RESULT_VARIABLE rc1 OUTPUT_QUIET)
if(NOT rc1 EQUAL 0)
  message(FATAL_ERROR "hxsim --scale=paper --jobs=1 failed (exit ${rc1})")
endif()
execute_process(COMMAND "${HXSIM}" ${common} --jobs=2 --csv=${csv2}
                RESULT_VARIABLE rc2 OUTPUT_QUIET)
if(NOT rc2 EQUAL 0)
  message(FATAL_ERROR "hxsim --scale=paper --jobs=2 failed (exit ${rc2})")
endif()

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files "${csv1}" "${csv2}"
                RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR "paper scale: --jobs=2 CSV differs from --jobs=1 (${csv1} vs ${csv2})")
endif()
