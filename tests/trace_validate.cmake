# End-to-end observability gate: runs hxsim with tracing, metrics, and the
# periodic sampler enabled, at --jobs=1 and --jobs=4, then
#   * fails unless the CSV, trace JSON, and metrics JSON are byte-identical
#     across the two runs (observability must not break the determinism
#     contract), and
#   * validates the trace and metrics files with trace_check (well-formed
#     JSON, matched async spans, histogram/packet consistency).
#
# Required -D variables: HXSIM, TRACE_CHECK (binary paths), WORKDIR.
file(MAKE_DIRECTORY "${WORKDIR}")
set(common
    --widths=3,3 --terminals=2 --routing=dimwar --experiment=sweep
    --loads=0.1,0.2 --warmup-window=300 --warmup-windows=6
    --measure-window=800 --drain-window=2000
    --trace-sample=1 --sample-interval=200)

foreach(jobs 1 4)
  execute_process(COMMAND "${HXSIM}" ${common} --jobs=${jobs}
                          --csv=${WORKDIR}/jobs${jobs}.csv
                          --trace-out=${WORKDIR}/jobs${jobs}.trace.json
                          --metrics-json=${WORKDIR}/jobs${jobs}.metrics.json
                  RESULT_VARIABLE rc OUTPUT_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "hxsim --jobs=${jobs} traced sweep failed (exit ${rc})")
  endif()
endforeach()

foreach(out csv trace.json metrics.json)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                          "${WORKDIR}/jobs1.${out}" "${WORKDIR}/jobs4.${out}"
                  RESULT_VARIABLE diff)
  if(NOT diff EQUAL 0)
    message(FATAL_ERROR "--jobs=4 ${out} differs from --jobs=1: observability broke the determinism contract")
  endif()
endforeach()

execute_process(COMMAND "${TRACE_CHECK}" "${WORKDIR}/jobs1.trace.json" --min-spans=10
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "trace_check rejected the Chrome trace (exit ${rc})")
endif()
execute_process(COMMAND "${TRACE_CHECK}" --metrics "${WORKDIR}/jobs1.metrics.json"
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "trace_check rejected the metrics JSON (exit ${rc})")
endif()
