// Credit-wait-cycle deadlock detector (net/deadlock.h, DESIGN.md §13).
//
// Real routing algorithms avoid credit deadlock by construction (dimension
// classes, datelines, escape VCs), so to exercise the detector we contrive
// one: a single-VC ring walked by a deliberately unsafe routing algorithm.
// Heavy single-flit traffic wraps the ring into the classic cyclic buffer
// dependency — every ring channel full, every head granted into the next
// creditless output VC — and the test checks that
//   (a) findCreditWaitCycle names the cycle (routers, ports, queue/credit
//       state) instead of returning empty, and
//   (b) the steady-state stall watchdog turns the wedge into a clean
//       hxwar::Error carrying that diagnostic — a failed point, not a hang.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/error.h"
#include "harness/experiment.h"
#include "harness/spec.h"
#include "metrics/steady_state.h"
#include "net/deadlock.h"
#include "net/network.h"
#include "routing/routing.h"
#include "sim/simulator.h"
#include "topo/hyperx.h"
#include "traffic/injector.h"
#include "traffic/pattern.h"

namespace hxwar {
namespace {

// Routes every packet clockwise via the +1 ring port with a single VC class
// and no dateline: exactly the scheme every deadlock-avoidance design exists
// to forbid.
class RingRouting final : public routing::RoutingAlgorithm {
 public:
  explicit RingRouting(const topo::HyperX& topo) : topo_(topo) {}

  void route(const routing::RouteContext& ctx, net::Packet& pkt,
             std::vector<routing::Candidate>& out) override {
    const RouterId dstR = topo_.nodeRouter(pkt.dst);
    if (ctx.routerId == dstR) {
      out.push_back(routing::Candidate{topo_.nodePort(pkt.dst), 0, 0, false});
      return;
    }
    const std::uint32_t n = topo_.numRouters();
    const RouterId next = (ctx.routerId + 1) % n;
    const PortId port = topo_.dimPort(ctx.routerId, 0, topo_.coord(next, 0));
    const std::uint32_t hops = (dstR + n - ctx.routerId) % n;
    out.push_back(routing::Candidate{port, 0, hops, false});
  }

  std::uint32_t numClasses() const override { return 1; }

  routing::AlgorithmInfo info() const override {
    return {"ring", false, routing::AlgorithmInfo::Style::kOblivious,
            "1",    "none", "none",
            "none"};
  }

 private:
  const topo::HyperX& topo_;
};

// Ring sends (src+3)%4: three hops, so most buffered heads are mid-path
// (granted onward) rather than ejecting. Tiny buffers make the wedge fast.
net::NetworkConfig ringConfig() {
  net::NetworkConfig cfg;
  cfg.router.numVcs = 1;
  cfg.router.inputBufferDepth = 2;
  cfg.router.outputQueueDepth = 1;
  cfg.router.crossbarLatency = 1;
  cfg.channelLatencyRouter = 1;
  cfg.channelLatencyTerminal = 1;
  return cfg;
}

class RingShift final : public traffic::TrafficPattern {
 public:
  explicit RingShift(std::uint32_t numNodes) : numNodes_(numNodes) {}
  std::string name() const override { return "ring-shift"; }
  NodeId dest(NodeId src, Rng&) override { return (src + 3) % numNodes_; }

 private:
  std::uint32_t numNodes_;
};

TEST(DeadlockDetector, WatchdogNamesCreditCycleAndFailsCleanly) {
  sim::Simulator sim;
  topo::HyperX topo({{4}, 1});
  RingRouting routing(topo);
  net::Network network(sim, topo, routing, ringConfig());

  RingShift pattern(network.numNodes());
  traffic::SyntheticInjector::Params ip;
  ip.rate = 0.9;
  ip.minFlits = 1;
  ip.maxFlits = 1;
  ip.seed = 11;
  traffic::SyntheticInjector injector(sim, network, pattern, ip);

  metrics::SteadyStateConfig cfg;
  cfg.warmupWindow = 500;
  cfg.maxWarmupWindows = 60;
  cfg.measureWindow = 1000;
  cfg.drainWindow = 4000;
  cfg.minMeasurePackets = 1;

  // The watchdog bounds the run: a wedged window raises Error instead of
  // spinning until the test harness kills us.
  try {
    metrics::runSteadyState(sim, network, injector, cfg);
    FAIL() << "ring traffic on one unordered VC must credit-deadlock";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("credit-wait cycle ("), std::string::npos) << msg;
    EXPECT_NE(msg.find("0 credits"), std::string::npos) << msg;
  }

  // The detector itself reads the frozen SoA state: the cycle is still there
  // and names concrete router:port:vc links.
  const std::string cycle = net::findCreditWaitCycle(network);
  ASSERT_FALSE(cycle.empty());
  EXPECT_NE(cycle.find("router "), std::string::npos);
  EXPECT_NE(cycle.find("flits queued"), std::string::npos);
  EXPECT_NE(cycle.find("closing back to"), std::string::npos);
}

// Atomic queue allocation (DAL, paper §4.2) wedges differently: it grants an
// output only when the downstream buffer is completely empty, so under
// saturation every head can be denied while every credit counter stays
// positive — no creditless link exists for the first walk to find. The
// detector's second walk follows the recorded denied-output wants instead
// and must name the allocation cycle. This is a real reproduction, not a
// contrivance: escape-less DAL deadlocks exactly like this on a faulted
// 4x4x4 at high load (the fault_resilience bench crash-isolates it).
TEST(DeadlockDetector, NamesAllocationWaitCycleUnderAtomicDal) {
  harness::ExperimentSpec spec = harness::scaleSpec("small");
  spec.routing = "dal";
  spec.pattern = "ur";
  spec.injection.rate = 0.9;
  spec.fault.rate = 0.02;
  spec.fault.seed = 7;  // connected and one-deroute-routable draw
  spec.fault.drop = true;
  spec.steady.maxWarmupWindows = 8;
  spec.steady.measureWindow = 3000;
  spec.steady.drainWindow = 0;

  const harness::SweepPoint point = harness::runSweepPoint(spec, 0.9, 0);
  ASSERT_TRUE(point.failed()) << "saturated atomic DAL on a faulted 4x4x4 "
                                 "is expected to wedge";
  EXPECT_NE(point.message.find("network stalled"), std::string::npos) << point.message;
  EXPECT_NE(point.message.find("allocation-wait cycle ("), std::string::npos)
      << point.message;
  EXPECT_NE(point.message.find("head denied output port"), std::string::npos)
      << point.message;
  EXPECT_NE(point.message.find("closing back to"), std::string::npos) << point.message;
}

TEST(DeadlockDetector, QuietNetworkHasNoCycle) {
  sim::Simulator sim;
  topo::HyperX topo({{4}, 1});
  RingRouting routing(topo);
  net::Network network(sim, topo, routing, ringConfig());
  // Idle network: nothing queued, nothing blocked.
  EXPECT_EQ(net::findCreditWaitCycle(network), "");
  // A lone packet in flight is load, not deadlock.
  network.injectPacket(0, 1, 1);
  while (sim.step(200)) {
  }
  EXPECT_EQ(net::findCreditWaitCycle(network), "");
}

}  // namespace
}  // namespace hxwar
