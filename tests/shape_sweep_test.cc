// Property sweep across HyperX shapes: DimWAR and OmniWAR must stay deadlock
// free and respect their structural bounds on every configuration the
// generalized HyperX admits — 1D, 2D, uneven widths, hypercube (S=2, where
// no deroutes exist), and 4D.
#include <gtest/gtest.h>

#include <sstream>

#include "net/network.h"
#include "routing/hyperx_routing.h"
#include "sim/simulator.h"
#include "topo/hyperx.h"
#include "traffic/injector.h"
#include "traffic/pattern.h"

namespace hxwar {
namespace {

struct ShapeCase {
  topo::HyperX::Params shape;
  std::string algorithm;
};

std::string caseName(const ::testing::TestParamInfo<ShapeCase>& info) {
  std::ostringstream os;
  os << info.param.algorithm;
  for (const auto w : info.param.shape.widths) os << "_" << w;
  os << "_k" << info.param.shape.terminalsPerRouter;
  return os.str();
}

class ShapeSweep : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(ShapeSweep, AdversarialBurstDrains) {
  const auto& param = GetParam();
  sim::Simulator sim;
  topo::HyperX topo(param.shape);
  auto routing = routing::makeHyperXRouting(param.algorithm, topo);
  net::NetworkConfig cfg;
  cfg.channelLatencyRouter = 4;
  net::Network network(sim, topo, *routing, cfg);

  // Bit complement stresses every dimension at once.
  traffic::BitComplement pattern(topo.numNodes());
  traffic::SyntheticInjector::Params params;
  params.rate = 0.7;
  params.seed = 99;
  traffic::SyntheticInjector injector(sim, network, pattern, params);

  const std::uint32_t maxHops = param.algorithm == "dimwar"
                                    ? 2 * topo.numDims()
                                    : routing->numClasses();
  std::uint64_t delivered = 0;
  net::CallbackListener cb54;
  cb54.ejected = [&](const net::Packet& p) {
    delivered += 1;
    EXPECT_LE(p.hops, maxHops);
    EXPECT_GE(p.hops, topo.minHops(topo.nodeRouter(p.src), topo.nodeRouter(p.dst)));
  };
  network.setListener(&cb54);

  injector.start();
  sim.run(1500);
  injector.stop();
  while (network.packetsOutstanding() > 0) {
    const auto before = network.flitMovements();
    sim.run(sim.now() + 2000);
    ASSERT_NE(network.flitMovements(), before)
        << param.algorithm << " deadlocked on " << topo.name();
  }
  EXPECT_EQ(delivered, injector.offeredPackets());
}

std::vector<ShapeCase> shapeCases() {
  const std::vector<topo::HyperX::Params> shapes = {
      {{4}, 2},            // 1D
      {{4, 4}, 2},         // 2D (flattened butterfly)
      {{3, 5}, 2},         // uneven widths
      {{2, 2, 2, 2}, 2},   // hypercube: S=2, no lateral deroutes exist
      {{3, 3, 3, 3}, 1},   // 4D
      {{8, 2}, 2},         // strongly asymmetric
      {{4, 4}, 4, 2},      // trunked: T=2 parallel links per pair
  };
  std::vector<ShapeCase> cases;
  for (const auto& s : shapes) {
    for (const char* a : {"dimwar", "omniwar"}) {
      cases.push_back(ShapeCase{s, a});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Shapes, ShapeSweep, ::testing::ValuesIn(shapeCases()), caseName);

// On a hypercube (S=2) there are no lateral coordinates, so DimWAR and
// OmniWAR must never emit deroute candidates.
TEST(HypercubeDegeneracy, NoDeroutesPossible) {
  for (const char* algorithm : {"dimwar", "omniwar"}) {
    sim::Simulator sim;
    topo::HyperX topo({{2, 2, 2}, 2});
    auto routing = routing::makeHyperXRouting(algorithm, topo);
    net::Network network(sim, topo, *routing, net::NetworkConfig{});
    traffic::BitComplement pattern(topo.numNodes());
    traffic::SyntheticInjector::Params params;
    params.rate = 0.5;
    traffic::SyntheticInjector injector(sim, network, pattern, params);
    net::CallbackListener cb105;
    cb105.ejected = [&](const net::Packet& p) { EXPECT_EQ(p.deroutes, 0u) << algorithm; };
    network.setListener(&cb105);
    injector.start();
    sim.run(1000);
    injector.stop();
    sim.run();
  }
}

}  // namespace
}  // namespace hxwar
