// Fault-injection subsystem: deterministic fault sets, degraded-topology
// structure (BFS-validated distances, partition rejection), fault-aware
// routing behavior (adaptives deliver everything on one-deroute-routable
// degraded networks, DOR fails loudly or drops), transient kill/revive, and
// the harness contract (spec round-trip, --jobs identity on faulted sweeps).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/error.h"
#include "fault/degraded_topology.h"
#include "fault/fault_model.h"
#include "harness/experiment.h"
#include "harness/registry.h"
#include "harness/spec.h"
#include "harness/sweep_runner.h"
#include "routing/fault_escape.h"
#include "topo/hyperx.h"

namespace hxwar {
namespace {

fault::DeadPortMask maskFor(const topo::Topology& topo, const fault::FaultSet& set) {
  std::uint32_t maxPorts = 0;
  for (RouterId r = 0; r < topo.numRouters(); ++r) {
    maxPorts = std::max(maxPorts, topo.numPorts(r));
  }
  fault::DeadPortMask mask(topo.numRouters(), maxPorts);
  mask.apply(set.ports);
  return mask;
}

// First seed >= `from` whose random fault set keeps the network connected
// AND one-deroute-routable (the condition under which the fault-aware
// adaptives guarantee delivery).
std::uint64_t routableSeed(const topo::HyperX& topo, double rate, std::uint64_t from) {
  for (std::uint64_t seed = from; seed < from + 1000; ++seed) {
    fault::FaultSpec spec;
    spec.rate = rate;
    spec.seed = seed;
    const auto set = fault::buildFaultSet(topo, spec);
    if (set.failedLinks == 0) continue;
    const auto mask = maskFor(topo, set);
    if (!fault::checkConnectivity(topo, mask).connected) continue;
    if (!fault::hyperxOneDerouteRoutable(topo, mask)) continue;
    return seed;
  }
  ADD_FAILURE() << "no routable fault seed found near " << from;
  return from;
}

// First seed >= `from` whose fault set keeps the network connected but NOT
// one-deroute-routable: the regime where the classic adaptives' delivery
// guarantee lapses and only the escape-VC escalation (ftar, vc-policy=escape)
// still guarantees delivery.
std::uint64_t escapeOnlySeed(const topo::HyperX& topo, double rate, std::uint64_t from) {
  for (std::uint64_t seed = from; seed < from + 4000; ++seed) {
    fault::FaultSpec spec;
    spec.rate = rate;
    spec.seed = seed;
    const auto set = fault::buildFaultSet(topo, spec);
    if (set.failedLinks == 0) continue;
    const auto mask = maskFor(topo, set);
    if (!fault::checkConnectivity(topo, mask).connected) continue;
    if (fault::hyperxOneDerouteRoutable(topo, mask)) continue;
    return seed;
  }
  ADD_FAILURE() << "no connected-but-not-one-deroute-routable seed near " << from;
  return from;
}

// --- fault-set construction ----------------------------------------------

TEST(FaultModel, SeededDrawIsDeterministicAndSymmetric) {
  topo::HyperX topo({{4, 4, 4}, 4});
  fault::FaultSpec spec;
  spec.rate = 0.08;
  spec.seed = 17;
  const auto a = fault::buildFaultSet(topo, spec);
  const auto b = fault::buildFaultSet(topo, spec);
  EXPECT_EQ(a.ports, b.ports);
  EXPECT_GT(a.failedLinks, 0u);
  EXPECT_EQ(a.ports.size(), 2 * a.failedLinks);  // both directions present

  // Symmetry: each directed entry's peer entry is also in the set.
  const auto mask = maskFor(topo, a);
  for (const auto& [r, p] : a.ports) {
    const auto target = topo.portTarget(r, p);
    ASSERT_EQ(target.kind, topo::Topology::PortTarget::Kind::kRouter);
    EXPECT_TRUE(mask.isDead(target.router, target.port));
  }

  // A different seed draws a different set (with near certainty at 8%).
  spec.seed = 18;
  EXPECT_NE(fault::buildFaultSet(topo, spec).ports, a.ports);
}

TEST(FaultModel, RateScalesTheDraw) {
  topo::HyperX topo({{4, 4, 4}, 4});
  fault::FaultSpec lo;
  lo.rate = 0.02;
  lo.seed = 5;
  fault::FaultSpec hi = lo;
  hi.rate = 0.20;
  EXPECT_LT(fault::buildFaultSet(topo, lo).failedLinks,
            fault::buildFaultSet(topo, hi).failedLinks);
}

TEST(FaultModel, ExplicitLinksAndRouters) {
  topo::HyperX topo({{4, 4}, 2});
  const PortId p01 = topo.dimPort(0, 0, 1);
  fault::FaultSpec spec;
  spec.links = "0:" + std::to_string(p01);
  const auto set = fault::buildFaultSet(topo, spec);
  EXPECT_EQ(set.failedLinks, 1u);
  const auto mask = maskFor(topo, set);
  EXPECT_TRUE(mask.isDead(0, p01));
  EXPECT_TRUE(mask.isDead(1, topo.dimPort(1, 0, 0)));

  fault::FaultSpec routers;
  routers.routers = "5";
  const auto rset = fault::buildFaultSet(topo, routers);
  EXPECT_EQ(rset.failedRouters, std::vector<RouterId>{5});
  const auto rmask = maskFor(topo, rset);
  for (PortId p = topo.terminalsPerRouter(); p < topo.numPorts(5); ++p) {
    EXPECT_TRUE(rmask.isDead(5, p)) << "port " << p;
  }
}

TEST(FaultModelDeath, TerminalPortInLinkListRejected) {
  topo::HyperX topo({{4, 4}, 2});
  fault::FaultSpec spec;
  spec.links = "0:0";  // port 0 is a terminal port
  EXPECT_DEATH(fault::buildFaultSet(topo, spec), "inter-router");
}

// --- BFS cross-check: minHops/diameter for every topology family ---------

struct FamilyCase {
  const char* name;
  // Geodesic families report true graph distance from minHops(); dragonfly's
  // minHops is the canonical minimal-routing path (at most one global link),
  // which BFS can undercut via two-global shortcuts that minimal routing
  // never takes — there BFS is a lower bound, not an equality.
  bool geodesic = true;
  const char* paramKey1 = nullptr;
  const char* paramVal1 = nullptr;
  const char* paramKey2 = nullptr;
  const char* paramVal2 = nullptr;
  const char* paramKey3 = nullptr;
  const char* paramVal3 = nullptr;
};

TEST(FaultModel, BfsMatchesMinHopsForEveryFamily) {
  const std::vector<FamilyCase> cases = {
      {"hyperx", true, "widths", "4,4", "terminals", "2"},
      {"dragonfly", false, "df-p", "2", "df-a", "4", "df-h", "2"},
      {"fattree", true},
      {"slimfly", true, "sf-q", "5"},
      {"torus", true, "widths", "4,4", "terminals", "2"},
  };
  auto& registry = harness::ExperimentRegistry::instance();
  for (const auto& c : cases) {
    SCOPED_TRACE(c.name);
    Flags params;
    if (c.paramKey1) params.set(c.paramKey1, c.paramVal1);
    if (c.paramKey2) params.set(c.paramKey2, c.paramVal2);
    if (c.paramKey3) params.set(c.paramKey3, c.paramVal3);
    const auto topo = registry.topology(c.name).build(params);

    // Cross-check the pairs routing actually queries: terminal-attached
    // routers (every packet travels nodeRouter(src) -> nodeRouter(dst)). For
    // hyperx/torus/slimfly/dragonfly that is every router; for the fat tree
    // it is the leaves — minHops between *internal* switches approximates
    // same-level copy hops and is never used by routing or metrics.
    std::vector<RouterId> endpoints;
    {
      std::vector<bool> seen(topo->numRouters(), false);
      for (NodeId n = 0; n < topo->numNodes(); ++n) seen[topo->nodeRouter(n)] = true;
      for (RouterId r = 0; r < topo->numRouters(); ++r) {
        if (seen[r]) endpoints.push_back(r);
      }
    }

    std::uint32_t maxDist = 0;
    std::vector<std::uint32_t> dist;
    for (const RouterId src : endpoints) {
      fault::bfsDistances(*topo, src, nullptr, dist);
      for (const RouterId dst : endpoints) {
        ASSERT_NE(dist[dst], fault::kUnreachable);
        if (c.geodesic) {
          ASSERT_EQ(dist[dst], topo->minHops(src, dst))
              << "src " << src << " dst " << dst;
        } else {
          ASSERT_LE(dist[dst], topo->minHops(src, dst))
              << "src " << src << " dst " << dst;
          ASSERT_LE(topo->minHops(src, dst), topo->diameter());
        }
        maxDist = std::max(maxDist, dist[dst]);
      }
    }
    EXPECT_LE(maxDist, topo->diameter());
    if (c.geodesic && c.name != std::string("fattree")) {
      // Terminal routers realize the diameter in the all-routers-terminal
      // families (leaf-to-leaf paths bound everything in a fat tree too, but
      // through its own diameter definition).
      EXPECT_EQ(maxDist, topo->diameter());
    }
  }
}

// --- DegradedTopology ------------------------------------------------------

TEST(DegradedTopology, MasksPortsAndRecomputesDistances) {
  // 1-D width-4 HyperX is a K4 clique; killing 0<->1 makes their distance 2.
  topo::HyperX base({{4}, 1});
  fault::FaultSpec spec;
  spec.links = "0:" + std::to_string(base.dimPort(0, 0, 1));
  const auto mask = maskFor(base, fault::buildFaultSet(base, spec));
  fault::DegradedTopology degraded(base, mask);

  EXPECT_EQ(degraded.portTarget(0, base.dimPort(0, 0, 1)).kind,
            topo::Topology::PortTarget::Kind::kUnused);
  EXPECT_EQ(degraded.portTarget(1, base.dimPort(1, 0, 0)).kind,
            topo::Topology::PortTarget::Kind::kUnused);
  // Surviving links are untouched.
  EXPECT_EQ(degraded.portTarget(0, base.dimPort(0, 0, 2)).kind,
            topo::Topology::PortTarget::Kind::kRouter);

  EXPECT_EQ(base.minHops(0, 1), 1u);
  EXPECT_EQ(degraded.minHops(0, 1), 2u);
  EXPECT_EQ(degraded.minHops(0, 2), 1u);
  EXPECT_EQ(degraded.diameter(), 2u);
  EXPECT_EQ(degraded.name(), base.name() + "+faults");
}

TEST(DegradedTopologyDeath, PartitionRejectedWithActionableMessage) {
  // 1-D width-2: a single inter-router link; killing it partitions.
  topo::HyperX base({{2}, 1});
  fault::FaultSpec spec;
  spec.links = "0:" + std::to_string(base.dimPort(0, 0, 1));
  const auto mask = maskFor(base, fault::buildFaultSet(base, spec));
  EXPECT_DEATH(fault::DegradedTopology(base, mask), "partitions the network");
}

TEST(DegradedTopology, ConnectivityReportNamesUnreachablePair) {
  topo::HyperX base({{2}, 1});
  fault::FaultSpec spec;
  spec.links = "0:" + std::to_string(base.dimPort(0, 0, 1));
  const auto mask = maskFor(base, fault::buildFaultSet(base, spec));
  const auto report = fault::checkConnectivity(base, mask);
  EXPECT_FALSE(report.connected);
  EXPECT_EQ(report.from, 0u);
  EXPECT_EQ(report.to, 1u);
  EXPECT_NE(report.message.find("cannot reach"), std::string::npos);
  EXPECT_NE(report.message.find("--fault-"), std::string::npos);
}

TEST(FaultModel, OneDerouteRoutability) {
  topo::HyperX topo({{4}, 1});
  // Kill 0<->1: 0 and 1 still connect via any intermediate. Routable.
  fault::FaultSpec one;
  one.links = "0:" + std::to_string(topo.dimPort(0, 0, 1));
  EXPECT_TRUE(fault::hyperxOneDerouteRoutable(
      topo, maskFor(topo, fault::buildFaultSet(topo, one))));

  // Additionally kill 0<->2 and 0<->3 via intermediate legs from 0: now 0 can
  // only reach 1.. wait, kill 0-1, 0-2: 0->1 via 3 works. Kill 0-1, 0-2, and
  // 2-3: pair (0,1) ok via 3; pair (0,2): direct dead, via 1 ok (0-1 dead!)
  // via 3 needs 3->2 (dead). Not routable.
  fault::FaultSpec three;
  three.links = "0:" + std::to_string(topo.dimPort(0, 0, 1)) + ",0:" +
                std::to_string(topo.dimPort(0, 0, 2)) + ",2:" +
                std::to_string(topo.dimPort(2, 0, 3));
  const auto mask = maskFor(topo, fault::buildFaultSet(topo, three));
  ASSERT_TRUE(fault::checkConnectivity(topo, mask).connected);
  std::string why;
  EXPECT_FALSE(fault::hyperxOneDerouteRoutable(topo, mask, &why));
  EXPECT_FALSE(why.empty());
}

// --- fault-aware routing end to end ---------------------------------------

harness::ExperimentSpec degradedSpec(const std::string& routing, double rate,
                                     std::uint64_t seed) {
  harness::ExperimentSpec spec;
  spec.topology = "hyperx";
  spec.routing = routing;
  spec.pattern = "ur";
  spec.params["widths"] = "4,4";
  spec.params["terminals"] = "2";
  spec.net.channelLatencyRouter = 4;
  spec.net.router.crossbarLatency = 2;
  // Well below any algorithm's degraded saturation point: the assertions here
  // are about loss and stretch, not throughput (the bench covers that).
  spec.injection.rate = 0.15;
  spec.steady.warmupWindow = 500;
  spec.steady.maxWarmupWindows = 14;
  spec.steady.measureWindow = 1500;
  spec.steady.drainWindow = 8000;
  spec.fault.rate = rate;
  spec.fault.seed = seed;
  return spec;
}

TEST(FaultRouting, AdaptivesDropNothingOnRoutableDegradedNetwork) {
  topo::HyperX probe({{4, 4}, 2});
  const std::uint64_t seed = routableSeed(probe, 0.08, 100);
  for (const std::string routing : {"dal", "dimwar", "omniwar"}) {
    SCOPED_TRACE(routing);
    harness::Experiment exp(degradedSpec(routing, 0.08, seed));
    EXPECT_GT(exp.faultSet().failedLinks, 0u);
    const auto r = exp.run();
    EXPECT_FALSE(r.saturated);
    EXPECT_GT(r.packetsMeasured, 0u);
    EXPECT_EQ(exp.network().packetsDropped(), 0u);
    EXPECT_EQ(r.packetsDropped, 0u);
    EXPECT_EQ(r.droppedShare, 0.0);
    // Delivered packets walked real paths; stretch compares against the
    // degraded network's own BFS distances, so it is >= 1 by construction.
    EXPECT_GE(r.avgStretch, 1.0);
  }
}

TEST(FaultRouting, DorDropsAtDeadEndsWhenAsked) {
  topo::HyperX probe({{4, 4}, 2});
  const std::uint64_t seed = routableSeed(probe, 0.08, 100);
  auto spec = degradedSpec("dor", 0.08, seed);
  spec.fault.drop = true;
  harness::Experiment exp(spec);
  const auto r = exp.run();
  EXPECT_GT(exp.network().packetsDropped(), 0u);
  EXPECT_GT(r.droppedShare, 0.0);
  // Every marked packet is accounted for: delivered or dropped.
  EXPECT_GT(r.packetsMeasured, 0u);
}

TEST(FaultRouting, DorRaisesErrorByDefault) {
  // The abort policy is now a recoverable hxwar::Error (deferred-fatal slot,
  // raised by the between-window watchdog), not a process abort: one bad
  // sweep point must not take down a --jobs=N sweep.
  topo::HyperX probe({{4, 4}, 2});
  const std::uint64_t seed = routableSeed(probe, 0.08, 100);
  harness::Experiment exp(degradedSpec("dor", 0.08, seed));
  try {
    exp.run();
    FAIL() << "abort policy must raise hxwar::Error at the first dead end";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("fault dead end"), std::string::npos) << msg;
    EXPECT_NE(msg.find("--fault-policy"), std::string::npos) << msg;
  }
}

TEST(FaultSweep, AbortingPointBecomesStructuredFailedRow) {
  // Crash isolation: the same dead-ending configuration run through
  // runSweepPoint retries once, then reports status="failed" with the error
  // text instead of propagating — the rest of a sweep keeps its points.
  topo::HyperX probe({{4, 4}, 2});
  const std::uint64_t seed = routableSeed(probe, 0.08, 100);
  const auto spec = degradedSpec("dor", 0.08, seed);
  const auto point = harness::runSweepPoint(spec, spec.injection.rate, 0);
  EXPECT_TRUE(point.failed());
  EXPECT_EQ(point.status, "failed");
  EXPECT_NE(point.message.find("fault dead end"), std::string::npos) << point.message;
}

TEST(FaultRouting, FtarDeliversWhereOneDerouteDoesNotSuffice) {
  // The headline ftar guarantee: on any *connected* degraded network — even
  // one the once-per-dim deroute budget cannot route — the escape-VC
  // escalation delivers every packet.
  topo::HyperX probe({{4, 4}, 2});
  const std::uint64_t seed = escapeOnlySeed(probe, 0.20, 500);
  auto spec = degradedSpec("ftar", 0.20, seed);
  spec.fault.policy = fault::FaultPolicy::kEscape;
  spec.injection.rate = 0.05;  // heavily degraded: stay well under saturation
  harness::Experiment exp(spec);
  EXPECT_TRUE(exp.connectivity().connected);
  const auto r = exp.run();
  EXPECT_GT(r.packetsMeasured, 0u);
  EXPECT_EQ(exp.network().packetsDropped(), 0u);
  EXPECT_EQ(r.packetsDropped, 0u);
  EXPECT_GE(r.avgStretch, 1.0);
}

TEST(FaultRouting, EscapeVcPolicyRescuesDimWarBeyondItsBudget) {
  // Same regime, but via the pluggable VC-policy axis: stock DimWAR carries
  // the escape class as a retrofit (vc-policy=escape) and must also deliver.
  topo::HyperX probe({{4, 4}, 2});
  const std::uint64_t seed = escapeOnlySeed(probe, 0.20, 500);
  auto spec = degradedSpec("dimwar", 0.20, seed);
  spec.params["vc-policy"] = "escape";
  spec.fault.policy = fault::FaultPolicy::kEscape;
  spec.injection.rate = 0.05;
  harness::Experiment exp(spec);
  const auto r = exp.run();
  EXPECT_GT(r.packetsMeasured, 0u);
  EXPECT_EQ(exp.network().packetsDropped(), 0u);
}

TEST(FaultRouting, DatelineVcPolicyDeliversOnRoutableDegradedNetwork) {
  topo::HyperX probe({{4, 4}, 2});
  const std::uint64_t seed = routableSeed(probe, 0.08, 100);
  auto spec = degradedSpec("dimwar", 0.08, seed);
  spec.params["vc-policy"] = "dateline";
  harness::Experiment exp(spec);
  const auto r = exp.run();
  EXPECT_GT(r.packetsMeasured, 0u);
  EXPECT_EQ(exp.network().packetsDropped(), 0u);
}

TEST(FaultRouting, RetryPolicyRecoversAcrossTransientFault) {
  // Bounded in-place retry: packets that dead-end while the fault window is
  // live wait out their backoff and re-route against the revived mask, so a
  // transient fault costs latency, not loss — even for oblivious DOR.
  topo::HyperX probe({{4, 4}, 2});
  const std::uint64_t seed = routableSeed(probe, 0.06, 300);
  auto spec = degradedSpec("dor", 0.06, seed);
  spec.fault.policy = fault::FaultPolicy::kRetry;
  spec.fault.at = 1000;
  spec.fault.until = 3000;
  harness::Experiment exp(spec);
  const auto r = exp.run();
  EXPECT_GT(r.packetsMeasured, 0u);
  // Drain the remaining retried packets past the revival.
  exp.sim().run();
  EXPECT_EQ(exp.network().packetsDropped(), 0u);
}

TEST(FaultRouting, EscapePolicyAcceptsPartitionAndAttributesDrops) {
  // Partition tolerance: cutting router 0 off no longer rejects the spec
  // under a softer policy — the census surfaces as metrics and traffic to
  // the lost routers becomes attributed drops, not a crash.
  topo::HyperX probe({{4, 4}, 2});
  auto spec = degradedSpec("ftar", 0.0, 1);
  std::string links;
  for (PortId p = probe.terminalsPerRouter(); p < probe.numPorts(0); ++p) {
    if (!links.empty()) links += ",";
    links += "0:" + std::to_string(p);
  }
  spec.fault.links = links;
  spec.fault.policy = fault::FaultPolicy::kEscape;
  harness::Experiment exp(spec);
  EXPECT_FALSE(exp.connectivity().connected);
  // Components {router 0} and {the other 15}: 2 * 15 ordered pairs.
  EXPECT_EQ(exp.connectivity().unreachablePairs, 30u);
  EXPECT_EQ(exp.connectivity().unreachableRouters, 15u);
  const auto r = exp.run();
  EXPECT_EQ(r.unreachablePairs, 30u);
  EXPECT_EQ(r.unreachableRouters, 15u);
  EXPECT_GT(r.packetsMeasured, 0u);
  EXPECT_GT(exp.network().packetsDropped(), 0u);  // traffic across the cut
}

TEST(FaultRouting, TransientMidFlightKillReviveMatchesAcrossPointJobs) {
  // Satellite of the §13 contract: kill links while packets are mid-flight
  // on them, revive later, and require bit-identical results between the
  // serial engine and --point-jobs=4 — with nothing lost.
  topo::HyperX probe({{4, 4}, 2});
  const std::uint64_t seed = routableSeed(probe, 0.06, 300);
  auto spec = degradedSpec("omniwar", 0.06, seed);
  spec.fault.at = 800;  // strike mid-warmup: flits are queued on dying links
  spec.fault.until = 2600;
  spec.fault.policy = fault::FaultPolicy::kEscape;
  const auto serial = harness::runSweepPoint(spec, spec.injection.rate, 0);
  auto shardedSpec = spec;
  shardedSpec.pointJobs = 4;
  const auto sharded = harness::runSweepPoint(shardedSpec, spec.injection.rate, 0);
  EXPECT_EQ(serial.status, "ok");
  EXPECT_EQ(sharded.status, "ok");
  EXPECT_EQ(serial.result.packetsMeasured, sharded.result.packetsMeasured);
  EXPECT_EQ(serial.result.packetsDropped, sharded.result.packetsDropped);
  EXPECT_EQ(serial.result.latencyMean, sharded.result.latencyMean);
  EXPECT_EQ(serial.result.accepted, sharded.result.accepted);
  EXPECT_EQ(serial.result.avgStretch, sharded.result.avgStretch);
  EXPECT_GT(serial.result.packetsMeasured, 0u);
  EXPECT_EQ(serial.result.packetsDropped, 0u);
}

TEST(FaultRouting, TransientKillAndReviveDeliversEverything) {
  topo::HyperX probe({{4, 4}, 2});
  const std::uint64_t seed = routableSeed(probe, 0.06, 300);
  auto spec = degradedSpec("omniwar", 0.06, seed);
  spec.fault.at = 1000;
  spec.fault.until = 4000;
  harness::Experiment exp(spec);
  // Transient: the network is wired fully; the mask starts all-alive.
  ASSERT_NE(exp.deadPortMask(), nullptr);
  EXPECT_EQ(exp.deadPortMask()->deadCount(), 0u);
  const auto r = exp.run();
  EXPECT_GT(r.packetsMeasured, 0u);
  EXPECT_EQ(exp.network().packetsDropped(), 0u);
  // The faults were live mid-run...
  EXPECT_GT(exp.sim().now(), spec.fault.at);
  // ...and revive on schedule: drain the remaining events past `until`.
  exp.sim().run();
  EXPECT_GE(exp.sim().now(), spec.fault.until);
  EXPECT_EQ(exp.deadPortMask()->deadCount(), 0u);
}

TEST(FaultRoutingDeath, TransientPartitionRejectedUpfront) {
  harness::ExperimentSpec spec = degradedSpec("omniwar", 0.0, 1);
  topo::HyperX probe({{4, 4}, 2});
  // Kill every link out of router 0 for a mid-run window: rejected at
  // construction, before any cycle runs.
  std::string links;
  for (PortId p = probe.terminalsPerRouter(); p < probe.numPorts(0); ++p) {
    if (!links.empty()) links += ",";
    links += "0:" + std::to_string(p);
  }
  spec.fault.links = links;
  spec.fault.at = 1000;
  spec.fault.until = 2000;
  EXPECT_DEATH(harness::Experiment exp(spec), "partitions the network");
}

// --- harness contract ------------------------------------------------------

TEST(FaultSpecSerialize, RoundTripsThroughConfigText) {
  harness::ExperimentSpec spec;
  spec.fault.rate = 0.07;
  spec.fault.seed = 4242;
  spec.fault.links = "0:4,3:5";
  spec.fault.routers = "9";
  spec.fault.at = 1000;
  spec.fault.until = 2500;
  spec.fault.drop = true;

  Flags flags;
  ASSERT_TRUE(flags.loadText(spec.serialize()));
  const auto back = harness::ExperimentSpec::fromFlags(flags);
  EXPECT_EQ(back.fault.rate, spec.fault.rate);
  EXPECT_EQ(back.fault.seed, spec.fault.seed);
  EXPECT_EQ(back.fault.links, spec.fault.links);
  EXPECT_EQ(back.fault.routers, spec.fault.routers);
  EXPECT_EQ(back.fault.at, spec.fault.at);
  EXPECT_EQ(back.fault.until, spec.fault.until);
  EXPECT_EQ(back.fault.drop, spec.fault.drop);
}

TEST(FaultSpecSerialize, FaultPolicyRoundTrips) {
  for (const auto policy : {fault::FaultPolicy::kDrop, fault::FaultPolicy::kRetry,
                            fault::FaultPolicy::kEscape}) {
    SCOPED_TRACE(fault::faultPolicyName(policy));
    harness::ExperimentSpec spec;
    spec.fault.rate = 0.05;
    spec.fault.policy = policy;
    Flags flags;
    ASSERT_TRUE(flags.loadText(spec.serialize()));
    EXPECT_EQ(harness::ExperimentSpec::fromFlags(flags).fault.policy, policy);
  }
  // The legacy drop flag folds into the effective policy without rewriting
  // the serialized spec.
  harness::ExperimentSpec legacy;
  legacy.fault.rate = 0.05;
  legacy.fault.drop = true;
  EXPECT_EQ(legacy.fault.effectivePolicy(), fault::FaultPolicy::kDrop);
  EXPECT_EQ(legacy.serialize().find("fault-policy"), std::string::npos);
}

TEST(FaultEscape, EscapeTableEmitsDistanceDescentOnly) {
  // The escape table's candidates walk strictly downhill on the masked BFS
  // distance to the destination — the monotone-descent property behind the
  // connected-network delivery guarantee.
  topo::HyperX topo({{4}, 1});  // K4 clique
  fault::FaultSpec spec;
  spec.links = "0:" + std::to_string(topo.dimPort(0, 0, 1));
  const auto mask = maskFor(topo, fault::buildFaultSet(topo, spec));
  routing::EscapeTable table(topo);

  // 0 -> 1 direct is dead: distance 2, and every candidate must step to a
  // router at distance 1 (any surviving neighbor of 1).
  EXPECT_EQ(table.distance(mask, 0, 1), 2u);
  std::vector<routing::Candidate> out;
  table.emitEscape(mask, 0, 1, /*escapeClass=*/1, out);
  ASSERT_FALSE(out.empty());
  for (const auto& c : out) {
    EXPECT_TRUE(c.atomic);
    EXPECT_TRUE(c.faultEscape);
    EXPECT_EQ(c.vcClass, 1u);
    EXPECT_EQ(c.hopsRemaining, 2u);
    const auto target = topo.portTarget(0, c.port);
    ASSERT_EQ(target.kind, topo::Topology::PortTarget::Kind::kRouter);
    EXPECT_EQ(table.distance(mask, target.router, 1), 1u);
  }
  // At the destination router there is no escape step to take.
  out.clear();
  table.emitEscape(mask, 1, 1, 1, out);
  EXPECT_TRUE(out.empty());
}

TEST(FaultSpecSerialize, FaultlessSpecStaysFaultFree) {
  const harness::ExperimentSpec spec;
  EXPECT_FALSE(spec.fault.active());
  EXPECT_EQ(spec.serialize().find("fault"), std::string::npos);
  Flags flags;
  ASSERT_TRUE(flags.loadText(spec.serialize()));
  EXPECT_FALSE(harness::ExperimentSpec::fromFlags(flags).fault.active());
}

TEST(FaultSweep, JobsInvariantOnFaultedNetwork) {
  topo::HyperX probe({{4, 4}, 2});
  const std::uint64_t seed = routableSeed(probe, 0.08, 100);
  auto spec = degradedSpec("dimwar", 0.08, seed);
  const std::vector<double> loads = {0.1, 0.2, 0.3};
  harness::SweepOptions serial;
  serial.jobs = 1;
  harness::SweepOptions parallel;
  parallel.jobs = 4;
  const auto a = harness::runLoadSweep(spec, loads, serial);
  const auto b = harness::runLoadSweep(spec, loads, parallel);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("point " + std::to_string(i));
    EXPECT_EQ(a[i].result.accepted, b[i].result.accepted);
    EXPECT_EQ(a[i].result.latencyMean, b[i].result.latencyMean);
    EXPECT_EQ(a[i].result.packetsMeasured, b[i].result.packetsMeasured);
    EXPECT_EQ(a[i].result.packetsDropped, b[i].result.packetsDropped);
    EXPECT_EQ(a[i].result.droppedShare, b[i].result.droppedShare);
    EXPECT_EQ(a[i].result.avgStretch, b[i].result.avgStretch);
  }
  // The sweep measured the degraded network, not a per-point re-draw: the
  // fault seed survives sweep-point derivation.
  EXPECT_EQ(harness::sweepPointConfig(spec, 0.2, 1).fault.seed, spec.fault.seed);
}

}  // namespace
}  // namespace hxwar
