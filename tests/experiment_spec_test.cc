// Tests for the unified ExperimentSpec layer: end-to-end steady state on all
// five topology families, config-file loading (dragonfly_ugal.cfg), serialize
// round-trips, the legacy ExperimentConfig::toSpec() equivalence, strict
// u32-list flag validation, and jobs=1 vs jobs=4 bit-identity off-HyperX.
#include <gtest/gtest.h>

#include "common/flags.h"
#include "harness/experiment.h"
#include "harness/spec.h"
#include "harness/sweep_runner.h"

namespace hxwar::harness {
namespace {

#ifndef HXWAR_SOURCE_DIR
#define HXWAR_SOURCE_DIR "."
#endif

// Small steady-state settings so five family runs stay in unit-test budget.
void shrinkSteady(ExperimentSpec& spec) {
  spec.steady.warmupWindow = 500;
  spec.steady.maxWarmupWindows = 10;
  spec.steady.measureWindow = 1000;
  spec.steady.drainWindow = 3000;
  spec.steady.minMeasurePackets = 10;
  // Tiny networks have high per-window variance; loosen the stability
  // detector so low load doesn't misread as saturation.
  spec.steady.stabilityTol = 0.25;
  spec.steady.acceptedTol = 0.85;
}

ExperimentSpec tinyFamilySpec(const std::string& topology,
                              std::initializer_list<std::pair<const char*, const char*>> params) {
  ExperimentSpec spec;
  spec.topology = topology;
  for (const auto& [key, value] : params) spec.params[key] = value;
  spec.injection.rate = 0.1;
  shrinkSteady(spec);
  return spec;
}

TEST(ExperimentSpec, SteadyStateRunsOnEveryFamily) {
  const std::vector<ExperimentSpec> specs = {
      tinyFamilySpec("hyperx", {{"widths", "3,3"}, {"terminals", "2"}}),
      tinyFamilySpec("dragonfly", {{"df-p", "2"}, {"df-a", "4"}, {"df-h", "2"}}),
      tinyFamilySpec("fattree", {{"ft-down", "4,4"}, {"ft-up", "2"}}),
      tinyFamilySpec("slimfly", {{"sf-q", "5"}}),
      tinyFamilySpec("torus", {{"widths", "3,3"}, {"terminals", "2"}}),
  };
  for (const auto& spec : specs) {
    SCOPED_TRACE(spec.topology);
    // Through the unified sweep layer (derived per-point seeds), the same
    // path hxsim and the benches use.
    const auto r = runSweepPoint(spec, 0.1, 0).result;
    EXPECT_FALSE(r.saturated);
    EXPECT_GT(r.accepted, 0.0);
    EXPECT_GT(r.packetsMeasured, 0u);
    EXPECT_GT(r.latencyMean, 0.0);
  }
}

TEST(ExperimentSpec, DragonflyConfigFileLoadsAndRuns) {
  Flags flags;
  ASSERT_TRUE(flags.loadFile(std::string(HXWAR_SOURCE_DIR) + "/configs/dragonfly_ugal.cfg"));
  ExperimentSpec spec = ExperimentSpec::fromFlags(flags);
  EXPECT_EQ(spec.topology, "dragonfly");
  EXPECT_EQ(spec.routing, "ugal");
  EXPECT_EQ(spec.pattern, "ur");
  EXPECT_EQ(spec.params.at("df-p"), "4");
  EXPECT_EQ(spec.params.at("df-g"), "8");

  spec.injection.rate = 0.1;
  shrinkSteady(spec);
  Experiment exp(spec);
  EXPECT_EQ(exp.topology().numNodes(), 256u);
  const auto r = exp.run();
  EXPECT_FALSE(r.saturated);
  EXPECT_GT(r.accepted, 0.0);
}

TEST(ExperimentSpec, SerializeRoundTripIsAFixpoint) {
  ExperimentSpec spec = tinyFamilySpec(
      "dragonfly", {{"df-p", "2"}, {"df-a", "4"}, {"df-h", "2"}, {"ugal-bias", "1.5"}});
  spec.routing = "ugal";
  spec.pattern = "rp";
  spec.patternSeed = 123;
  spec.net.channelLatencyRouter = 17;
  spec.injection.maxFlits = 9;

  const std::string text = spec.serialize();
  Flags flags;
  ASSERT_TRUE(flags.loadText(text));
  const ExperimentSpec back = ExperimentSpec::fromFlags(flags);
  EXPECT_EQ(back.topology, spec.topology);
  EXPECT_EQ(back.routing, spec.routing);
  EXPECT_EQ(back.pattern, spec.pattern);
  EXPECT_EQ(back.patternSeed, spec.patternSeed);
  EXPECT_EQ(back.params, spec.params);
  EXPECT_EQ(back.net.channelLatencyRouter, spec.net.channelLatencyRouter);
  EXPECT_EQ(back.injection.maxFlits, spec.injection.maxFlits);
  EXPECT_EQ(back.steady.warmupWindow, spec.steady.warmupWindow);
  // The serialized surface is a fixpoint: serializing the reload is identical.
  EXPECT_EQ(back.serialize(), text);
}

TEST(ExperimentSpec, FormatDoubleRoundTripsExactly) {
  for (const double v : {0.1, 1.0 / 3.0, 1.5, 0.933333333333333337, 1e-9}) {
    EXPECT_EQ(std::stod(formatDouble(v)), v);
  }
}

TEST(ExperimentSpec, ToSpecSimulatesIdenticallyToLegacyConfig) {
  ExperimentConfig config = tinyScaleConfig();
  config.algorithm = "ugal";
  config.pattern = "bc";
  config.routingOpts.ugalBias = 1.25;
  config.injection.rate = 0.15;

  const SweepPoint viaConfig = runSweepPoint(config, 0.15, 2);
  const SweepPoint viaSpec = runSweepPoint(config.toSpec(), 0.15, 2);
  EXPECT_EQ(viaConfig.result.saturated, viaSpec.result.saturated);
  EXPECT_EQ(viaConfig.result.accepted, viaSpec.result.accepted);
  EXPECT_EQ(viaConfig.result.latencyMean, viaSpec.result.latencyMean);
  EXPECT_EQ(viaConfig.result.latencyP99, viaSpec.result.latencyP99);
  EXPECT_EQ(viaConfig.result.avgHops, viaSpec.result.avgHops);
  EXPECT_EQ(viaConfig.result.avgDeroutes, viaSpec.result.avgDeroutes);
  EXPECT_EQ(viaConfig.result.packetsMeasured, viaSpec.result.packetsMeasured);
}

void expectIdenticalSweeps(const ExperimentSpec& spec) {
  const std::vector<double> loads = {0.05, 0.1, 0.15};
  SweepOptions serial;
  serial.jobs = 1;
  SweepOptions parallel;
  parallel.jobs = 4;
  const auto a = runLoadSweep(spec, loads, serial);
  const auto b = runLoadSweep(spec, loads, parallel);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(a[i].load, b[i].load);
    EXPECT_EQ(a[i].result.saturated, b[i].result.saturated);
    EXPECT_EQ(a[i].result.offered, b[i].result.offered);
    EXPECT_EQ(a[i].result.accepted, b[i].result.accepted);
    EXPECT_EQ(a[i].result.latencyMean, b[i].result.latencyMean);
    EXPECT_EQ(a[i].result.latencyP50, b[i].result.latencyP50);
    EXPECT_EQ(a[i].result.latencyP99, b[i].result.latencyP99);
    EXPECT_EQ(a[i].result.avgHops, b[i].result.avgHops);
    EXPECT_EQ(a[i].result.avgDeroutes, b[i].result.avgDeroutes);
    EXPECT_EQ(a[i].result.packetsMeasured, b[i].result.packetsMeasured);
  }
}

TEST(ExperimentSpec, ParallelSweepBitIdenticalOnDragonfly) {
  ExperimentSpec spec = tinyFamilySpec("dragonfly", {{"df-p", "2"}, {"df-a", "4"}, {"df-h", "2"}});
  spec.routing = "ugal";
  expectIdenticalSweeps(spec);
}

TEST(ExperimentSpec, ParallelSweepBitIdenticalOnTorus) {
  ExperimentSpec spec = tinyFamilySpec("torus", {{"widths", "4,4"}, {"terminals", "2"}});
  expectIdenticalSweeps(spec);
}

TEST(ExperimentSpec, SeededPatternWorksOffHyperX) {
  ExperimentSpec spec = tinyFamilySpec("torus", {{"widths", "3,3"}, {"terminals", "2"}});
  spec.pattern = "rp";
  spec.patternSeed = 11;
  Experiment exp(spec);
  const auto r = exp.run();
  EXPECT_GT(r.packetsMeasured, 0u);
}

TEST(FlagU32List, ParsesValidAndFallsBackOnMissing) {
  Flags flags;
  flags.set("widths", "4,8,16");
  EXPECT_EQ(flagU32List(flags, "widths", {1}), (std::vector<std::uint32_t>{4, 8, 16}));
  EXPECT_EQ(flagU32List(flags, "absent", {2, 3}), (std::vector<std::uint32_t>{2, 3}));
  flags.set("empty", "");
  EXPECT_EQ(flagU32List(flags, "empty", {5}), (std::vector<std::uint32_t>{5}));
}

TEST(FlagU32ListDeath, RejectsFractionalEntries) {
  Flags flags;
  flags.set("widths", "4.5,4");
  EXPECT_DEATH(flagU32List(flags, "widths", {}),
               "flag widths=4.5,4: entry '4.5' is not a non-negative integer");
}

TEST(FlagU32ListDeath, RejectsNegativeEntries) {
  Flags flags;
  flags.set("widths", "-3");
  EXPECT_DEATH(flagU32List(flags, "widths", {}),
               "flag widths=-3: entry '-3' is not a non-negative integer");
}

}  // namespace
}  // namespace hxwar::harness
