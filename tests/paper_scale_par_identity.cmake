# The intra-point parallel engine at paper scale: one --scale=paper
# fig06-style sweep point (4,096-node 8x8x8 HyperX, OmniWAR, uniform random)
# through the real hxsim binary, --point-jobs=4 vs --point-jobs=1. Every
# output surface — the CSV, the metrics JSON, and the trace JSON — must be
# byte-identical; only --perf-json wall-clock telemetry may differ, so it is
# not compared. Windows are reduced from the full fig. 6 methodology so the
# point finishes in ctest time while still building, warming, measuring, and
# draining the full-size network across shards.
#
# Required -D variables: HXSIM (path to the hxsim binary), WORKDIR (scratch).
file(MAKE_DIRECTORY "${WORKDIR}")
set(common
    --scale=paper --routing=omniwar --pattern=ur --experiment=sweep
    --loads=0.05 --warmup-window=1000 --warmup-windows=4
    --measure-window=2000 --drain-window=20000
    --trace-sample=4096 --sample-interval=1000)

foreach(pj 1 4)
  execute_process(COMMAND "${HXSIM}" ${common} --point-jobs=${pj}
                          --csv=${WORKDIR}/paper_pj${pj}.csv
                          --metrics-json=${WORKDIR}/paper_pj${pj}_metrics.json
                          --trace-out=${WORKDIR}/paper_pj${pj}_trace.json
                  RESULT_VARIABLE rc OUTPUT_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "hxsim --scale=paper --point-jobs=${pj} failed (exit ${rc})")
  endif()
endforeach()

foreach(out ".csv" "_metrics.json" "_trace.json")
  set(f1 "${WORKDIR}/paper_pj1${out}")
  set(f4 "${WORKDIR}/paper_pj4${out}")
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files "${f1}" "${f4}"
                  RESULT_VARIABLE diff)
  if(NOT diff EQUAL 0)
    message(FATAL_ERROR "paper scale: --point-jobs=4 ${out} differs from --point-jobs=1 (${f1} vs ${f4})")
  endif()
endforeach()
