// Headline-claim regression tests: each test encodes one of the paper's
// qualitative results as an executable assertion, so a change that silently
// breaks the reproduction fails CI. These use reduced measurement budgets —
// EXPERIMENTS.md records the full-budget numbers.
#include <gtest/gtest.h>

#include "app/stencil.h"
#include "harness/experiment.h"

namespace hxwar {
namespace {

harness::ExperimentConfig quick(const std::string& algorithm, const std::string& pattern,
                                double load) {
  harness::ExperimentConfig cfg = harness::smallScaleConfig();
  cfg.algorithm = algorithm;
  cfg.pattern = pattern;
  cfg.injection.rate = load;
  cfg.steady.maxWarmupWindows = 10;
  cfg.steady.measureWindow = 2000;
  cfg.steady.drainWindow = 5000;
  return cfg;
}

metrics::SteadyStateResult run(const std::string& algorithm, const std::string& pattern,
                               double load) {
  harness::Experiment exp(quick(algorithm, pattern, load));
  return exp.run();
}

// Fig. 6a: under uniform random traffic every adaptive algorithm rides
// minimal paths; nobody saturates at 60% offered.
TEST(PaperClaims, Fig6a_UniformRandomIsEasyForAdaptives) {
  for (const char* algorithm : {"dor", "ugal", "closad", "dimwar", "omniwar"}) {
    const auto r = run(algorithm, "ur", 0.6);
    EXPECT_FALSE(r.saturated) << algorithm;
    EXPECT_NEAR(r.accepted, 0.6, 0.05) << algorithm;
  }
}

// Fig. 6b: minimal routing caps at the 1/K bisection floor on bit
// complement; the WARs sail past it by derouting.
TEST(PaperClaims, Fig6b_BitComplementMinimalFloor) {
  const auto dor = run("dor", "bc", 0.4);
  EXPECT_TRUE(dor.saturated);
  EXPECT_NEAR(dor.accepted, 0.25, 0.02);  // exactly 1/K
  for (const char* war : {"dimwar", "omniwar"}) {
    const auto r = run(war, "bc", 0.4);
    EXPECT_FALSE(r.saturated) << war;
    EXPECT_GT(r.avgDeroutes, 0.5) << war << " must deroute on BC";
  }
}

// Fig. 6d (the headline): the second-dimension bisection congestion is
// invisible to source-adaptive UGAL, which saturates; the incremental WARs
// deliver the same load at low, stable latency.
TEST(PaperClaims, Fig6d_SourceAdaptiveCannotSeeUrby) {
  const auto ugal = run("ugal", "urby", 0.4);
  EXPECT_TRUE(ugal.saturated);
  EXPECT_LT(ugal.accepted, 0.35);
  for (const char* war : {"dimwar", "omniwar"}) {
    const auto r = run(war, "urby", 0.4);
    EXPECT_FALSE(r.saturated) << war;
    EXPECT_LT(r.latencyMean, 150.0) << war;
  }
}

// Fig. 6f: DCR defeats dimension-ordered routing (DOR collapses, DimWAR
// capped) while OmniWAR's any-order traversal sustains the load — the
// "as much as 4x" result.
TEST(PaperClaims, Fig6f_OnlyOmniWarSurvivesDcr) {
  const auto dor = run("dor", "dcr", 0.4);
  EXPECT_TRUE(dor.saturated);
  EXPECT_LT(dor.accepted, 0.15);
  const auto dimwar = run("dimwar", "dcr", 0.4);
  EXPECT_TRUE(dimwar.saturated);
  const auto omniwar = run("omniwar", "dcr", 0.4);
  EXPECT_FALSE(omniwar.saturated);
  EXPECT_GT(omniwar.accepted, 1.8 * dimwar.accepted) << "OmniWAR's DCR margin";
}

// Fig. 6e: S2 leaves spare bandwidth that only HyperX-aware algorithms use.
TEST(PaperClaims, Fig6e_Swap2SpareBandwidth) {
  const auto dor = run("dor", "s2", 0.7);
  EXPECT_TRUE(dor.saturated);  // direct links cap at 50%
  for (const char* war : {"dimwar", "omniwar"}) {
    const auto r = run(war, "s2", 0.7);
    EXPECT_FALSE(r.saturated) << war;
  }
}

// Fig. 8b: halo exchanges favor the WARs over oblivious and source-adaptive
// routing; Fig. 8a: collectives are fine for everyone except VAL.
TEST(PaperClaims, Fig8_StencilOrdering) {
  auto stencilTime = [](const char* algorithm, app::StencilMode mode) {
    harness::ExperimentConfig cfg = harness::smallScaleConfig();
    cfg.algorithm = algorithm;
    harness::Experiment exp(cfg);
    app::StencilConfig sc;
    sc.grid = {8, 8, 4};
    sc.haloBytesPerNode = 48 * 1024;
    sc.mode = mode;
    app::StencilApp app(exp.network(), sc);
    return app.run().makespan;
  };
  // Exchange: OmniWAR beats DOR and VAL.
  const auto exDor = stencilTime("dor", app::StencilMode::kExchangeOnly);
  const auto exVal = stencilTime("val", app::StencilMode::kExchangeOnly);
  const auto exOmni = stencilTime("omniwar", app::StencilMode::kExchangeOnly);
  EXPECT_LT(exOmni, exDor);
  EXPECT_LT(exOmni, exVal);
  // Collective: VAL pays its 2x latency tax, DimWAR matches DOR.
  const auto coDor = stencilTime("dor", app::StencilMode::kCollectiveOnly);
  const auto coVal = stencilTime("val", app::StencilMode::kCollectiveOnly);
  const auto coDim = stencilTime("dimwar", app::StencilMode::kCollectiveOnly);
  EXPECT_GT(coVal, coDor * 3 / 2);
  EXPECT_NEAR(static_cast<double>(coDim), static_cast<double>(coDor), coDor * 0.1);
}

// §6.1 methodology: all algorithms get 8 VCs; those needing fewer spread
// their classes across the spares. Verify the class counts of Table 1.
TEST(PaperClaims, Table1_ClassCounts) {
  topo::HyperX topo({{8, 8, 8}, 8});
  EXPECT_EQ(routing::makeHyperXRouting("dor", topo)->numClasses(), 1u);
  EXPECT_EQ(routing::makeHyperXRouting("val", topo)->numClasses(), 2u);
  EXPECT_EQ(routing::makeHyperXRouting("ugal", topo)->numClasses(), 2u);
  EXPECT_EQ(routing::makeHyperXRouting("closad", topo)->numClasses(), 2u);
  EXPECT_EQ(routing::makeHyperXRouting("dimwar", topo)->numClasses(), 2u);
  EXPECT_EQ(routing::makeHyperXRouting("omniwar", topo)->numClasses(), 6u);  // N+M, M=N=3
}

}  // namespace
}  // namespace hxwar
