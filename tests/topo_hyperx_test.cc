#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "topo/hyperx.h"

namespace hxwar::topo {
namespace {

using Params = HyperX::Params;

TEST(HyperX, PaperConfiguration) {
  HyperX h(Params{{8, 8, 8}, 8});
  EXPECT_EQ(h.numRouters(), 512u);
  EXPECT_EQ(h.numNodes(), 4096u);
  EXPECT_EQ(h.numPorts(0), 8u + 7 + 7 + 7);  // 29 ports
  EXPECT_EQ(h.diameter(), 3u);
}

TEST(HyperX, CoordinateRoundTrip) {
  HyperX h(Params{{3, 4, 5}, 2});
  std::vector<std::uint32_t> c;
  for (RouterId r = 0; r < h.numRouters(); ++r) {
    h.coords(r, c);
    EXPECT_EQ(h.routerAt(c), r);
  }
}

TEST(HyperX, NodeAttachment) {
  HyperX h(Params{{4, 4}, 3});
  for (NodeId n = 0; n < h.numNodes(); ++n) {
    const RouterId r = h.nodeRouter(n);
    const PortId p = h.nodePort(n);
    EXPECT_LT(p, 3u);
    const auto t = h.portTarget(r, p);
    ASSERT_EQ(t.kind, Topology::PortTarget::Kind::kTerminal);
    EXPECT_EQ(t.node, n);
  }
}

TEST(HyperX, MinHopsCountsUnalignedDims) {
  HyperX h(Params{{4, 4, 4}, 1});
  const RouterId a = h.routerAt({0, 0, 0});
  EXPECT_EQ(h.minHops(a, h.routerAt({0, 0, 0})), 0u);
  EXPECT_EQ(h.minHops(a, h.routerAt({3, 0, 0})), 1u);
  EXPECT_EQ(h.minHops(a, h.routerAt({3, 2, 0})), 2u);
  EXPECT_EQ(h.minHops(a, h.routerAt({1, 2, 3})), 3u);
}

TEST(HyperX, UnalignedMask) {
  HyperX h(Params{{4, 4, 4}, 1});
  const RouterId a = h.routerAt({1, 2, 3});
  const RouterId b = h.routerAt({1, 0, 2});
  EXPECT_EQ(h.unalignedMask(a, b), 0b110u);
}

TEST(HyperX, DimPortAndPortMoveAreInverse) {
  HyperX h(Params{{3, 5, 4}, 2});
  for (RouterId r = 0; r < h.numRouters(); ++r) {
    for (std::uint32_t d = 0; d < h.numDims(); ++d) {
      for (std::uint32_t to = 0; to < h.width(d); ++to) {
        if (to == h.coord(r, d)) continue;
        const PortId p = h.dimPort(r, d, to);
        const auto mv = h.portMove(r, p);
        EXPECT_EQ(mv.dim, d);
        EXPECT_EQ(mv.toCoord, to);
      }
    }
  }
}

// Wiring property: following a port and coming back lands on the same port.
class HyperXWiring : public ::testing::TestWithParam<Params> {};

TEST_P(HyperXWiring, PortTargetsAreSymmetric) {
  HyperX h(GetParam());
  for (RouterId r = 0; r < h.numRouters(); ++r) {
    for (PortId p = 0; p < h.numPorts(r); ++p) {
      const auto t = h.portTarget(r, p);
      if (t.kind != Topology::PortTarget::Kind::kRouter) continue;
      const auto back = h.portTarget(t.router, t.port);
      ASSERT_EQ(back.kind, Topology::PortTarget::Kind::kRouter);
      EXPECT_EQ(back.router, r);
      EXPECT_EQ(back.port, p);
    }
  }
}

TEST_P(HyperXWiring, EveryRouterPairHasMinimalPathWithinDiameter) {
  HyperX h(GetParam());
  for (RouterId a = 0; a < h.numRouters(); ++a) {
    for (RouterId b = 0; b < h.numRouters(); ++b) {
      EXPECT_LE(h.minHops(a, b), h.diameter());
    }
  }
}

TEST_P(HyperXWiring, NeighborMovesOneDimension) {
  HyperX h(GetParam());
  for (RouterId r = 0; r < h.numRouters(); ++r) {
    for (PortId p = h.terminalsPerRouter(); p < h.numPorts(r); ++p) {
      const auto t = h.portTarget(r, p);
      ASSERT_EQ(t.kind, Topology::PortTarget::Kind::kRouter);
      EXPECT_EQ(h.minHops(r, t.router), 1u);
      const auto mv = h.portMove(r, p);
      EXPECT_EQ(h.coord(t.router, mv.dim), mv.toCoord);
      for (std::uint32_t d = 0; d < h.numDims(); ++d) {
        if (d != mv.dim) {
          EXPECT_EQ(h.coord(t.router, d), h.coord(r, d));
        }
      }
    }
  }
}

TEST_P(HyperXWiring, TerminalIdsArePartition) {
  HyperX h(GetParam());
  std::set<NodeId> seen;
  for (RouterId r = 0; r < h.numRouters(); ++r) {
    for (PortId p = 0; p < h.terminalsPerRouter(); ++p) {
      const auto t = h.portTarget(r, p);
      ASSERT_EQ(t.kind, Topology::PortTarget::Kind::kTerminal);
      EXPECT_TRUE(seen.insert(t.node).second) << "duplicate node id";
    }
  }
  EXPECT_EQ(seen.size(), h.numNodes());
}

INSTANTIATE_TEST_SUITE_P(Shapes, HyperXWiring,
                         ::testing::Values(Params{{2}, 1},            // smallest
                                           Params{{4, 4}, 2},         // 2D
                                           Params{{3, 5}, 3},         // uneven widths
                                           Params{{4, 4, 4}, 4},      // bench scale
                                           Params{{2, 2, 2, 2}, 1},   // hypercube
                                           Params{{3, 3, 3}, 2},
                                           Params{{4, 4}, 2, 2},      // trunked T=2
                                           Params{{3, 3}, 1, 3}));    // trunked T=3

TEST(HyperXTrunking, PortLayoutAndInverse) {
  HyperX h(Params{{4, 4}, 2, 3});  // T = 3
  EXPECT_EQ(h.trunking(), 3u);
  EXPECT_EQ(h.numPorts(0), 2u + 3 * 3 + 3 * 3);
  for (RouterId r = 0; r < h.numRouters(); ++r) {
    for (std::uint32_t d = 0; d < 2; ++d) {
      for (std::uint32_t to = 0; to < 4; ++to) {
        if (to == h.coord(r, d)) continue;
        for (std::uint32_t trunk = 0; trunk < 3; ++trunk) {
          const PortId p = h.dimPort(r, d, to, trunk);
          const auto mv = h.portMove(r, p);
          EXPECT_EQ(mv.dim, d);
          EXPECT_EQ(mv.toCoord, to);
          EXPECT_EQ(mv.trunk, trunk);
        }
      }
    }
  }
}

TEST(HyperXTrunking, TrunksPairOneToOne) {
  HyperX h(Params{{3, 3}, 1, 2});
  for (RouterId r = 0; r < h.numRouters(); ++r) {
    for (PortId p = 1; p < h.numPorts(r); ++p) {
      const auto t = h.portTarget(r, p);
      ASSERT_EQ(t.kind, Topology::PortTarget::Kind::kRouter);
      const auto back = h.portTarget(t.router, t.port);
      EXPECT_EQ(back.router, r);
      EXPECT_EQ(back.port, p);
      EXPECT_EQ(h.portMove(r, p).trunk, h.portMove(t.router, t.port).trunk);
    }
  }
}

}  // namespace
}  // namespace hxwar::topo
