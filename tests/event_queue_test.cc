// Property tests for the calendar-queue EventQueue against a reference heap.
//
// The queue promises the exact total order (tick, epsilon, sequence number)
// regardless of which internal path an event takes — ring lane, spill heap,
// or spill-to-ring migration. The randomized test drives a million mixed
// operations with duplicate ticks, all epsilon phases, same-tick bursts, and
// far-future spills, checking every pop against a model that orders by the
// contract directly. Any divergence between the structure and the contract
// is a replay-determinism bug, which is why this is a tier-1 gate.
#include <cstdint>
#include <queue>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sim/event_queue.h"

namespace hxwar::sim {
namespace {

// Reference model: a heap over the full contract tuple. The tag doubles as
// the global push sequence number so pop comparisons can use it directly
// (ring pops synthesize seq 0, so Event::seq() is not comparable).
using RefKey = std::tuple<Tick, std::uint8_t, std::uint64_t>;  // (time, eps, pushSeq)

class ReferenceQueue {
 public:
  void push(Tick time, std::uint8_t eps, std::uint64_t pushSeq) {
    heap_.push(RefKey{time, eps, pushSeq});
  }
  RefKey pop() {
    RefKey k = heap_.top();
    heap_.pop();
    return k;
  }
  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

 private:
  std::priority_queue<RefKey, std::vector<RefKey>, std::greater<RefKey>> heap_;
};

TEST(EventQueueTest, MatchesReferenceHeapOverRandomizedMillionOpWorkload) {
  EventQueue q;
  ReferenceQueue ref;
  Rng rng(0xC0FFEE);
  Tick now = 0;           // max popped time so far: the push floor
  std::uint64_t seq = 0;  // global push counter, carried as the tag

  const std::uint64_t kOps = 1'000'000;
  for (std::uint64_t op = 0; op < kOps; ++op) {
    const bool doPush = ref.empty() || rng.below(100) < 55;
    if (doPush) {
      // Burst pushes hammer the duplicate-tick lanes: everything in a burst
      // lands on one tick across random epsilon phases.
      const std::uint32_t burst = rng.below(100) < 10 ? 1 + rng.below(8) : 1;
      // Mostly near-future (ring) deltas; ~1/8 far-future (spill heap).
      const Tick time = now + (rng.below(100) < 12 ? 256 + rng.below(4096)
                                                   : rng.below(200));
      for (std::uint32_t b = 0; b < burst; ++b) {
        const auto eps = static_cast<std::uint8_t>(rng.below(EventQueue::kNumEpsilons));
        q.push(time, eps, nullptr, seq);
        ref.push(time, eps, seq);
        ++seq;
      }
    } else {
      const Event got = q.pop();
      const RefKey want = ref.pop();
      ASSERT_EQ(got.time, std::get<0>(want));
      ASSERT_EQ(got.epsilon(), std::get<1>(want));
      ASSERT_EQ(got.tag, std::get<2>(want));
      ASSERT_EQ(got.component, nullptr);
      now = got.time;
    }
    ASSERT_EQ(q.size(), ref.size());
    ASSERT_EQ(q.empty(), ref.empty());
  }

  // Drain: the tail must replay in exact contract order too.
  while (!ref.empty()) {
    const Event got = q.pop();
    const RefKey want = ref.pop();
    ASSERT_EQ(got.time, std::get<0>(want));
    ASSERT_EQ(got.epsilon(), std::get<1>(want));
    ASSERT_EQ(got.tag, std::get<2>(want));
  }
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, SameTickIsFifoWithinEpsilonAndOrderedAcrossEpsilons) {
  EventQueue q;
  // Interleave pushes across epsilons at one tick; expected pop order is
  // epsilon-major, FIFO within each epsilon — regardless of push order.
  const std::uint8_t epsOrder[] = {3, 0, 4, 1, 0, 2, 3, 1, 0, 4, 2, 2};
  std::uint64_t tag = 0;
  for (const std::uint8_t eps : epsOrder) q.push(42, eps, nullptr, tag++);

  std::vector<std::uint64_t> expected;
  for (std::uint8_t eps = 0; eps < EventQueue::kNumEpsilons; ++eps) {
    for (std::uint64_t i = 0; i < std::size(epsOrder); ++i) {
      if (epsOrder[i] == eps) expected.push_back(i);
    }
  }
  for (const std::uint64_t want : expected) {
    const Event e = q.pop();
    EXPECT_EQ(e.time, 42u);
    EXPECT_EQ(e.tag, want);
  }
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, SpillMigrationPreservesSeqOrderAgainstDirectPushes) {
  EventQueue q;
  // Events for tick 500 pushed while 500 is outside the ring window go to
  // the spill heap; after the base advances they migrate into the ring. A
  // later direct push for tick 500 must pop AFTER them — spill events are
  // older by construction (the window only moves forward).
  q.push(500, kEpsRouter, nullptr, 1);  // spill (500 - 0 >= 256)
  q.push(500, kEpsRouter, nullptr, 2);  // spill, same lane
  q.push(300, kEpsRouter, nullptr, 0);  // filler to advance the base
  EXPECT_EQ(q.nextTime(), 300u);

  EXPECT_EQ(q.pop().tag, 0u);  // base -> 300; 500 migrates into the ring
  q.push(500, kEpsRouter, nullptr, 3);  // direct ring push, same lane
  q.push(500, kEpsDeliver, nullptr, 4);  // earlier phase beats all of them
  EXPECT_EQ(q.nextTime(), 500u);

  EXPECT_EQ(q.pop().tag, 4u);  // kEpsDeliver first
  EXPECT_EQ(q.pop().tag, 1u);  // then spill-migrated, in push order...
  EXPECT_EQ(q.pop().tag, 2u);
  EXPECT_EQ(q.pop().tag, 3u);  // ...then the direct push
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, FarFutureJumpSkipsEmptyWindow) {
  EventQueue q;
  q.push(1'000'000, kEpsControl, nullptr, 7);  // deep spill, ring empty
  EXPECT_EQ(q.nextTime(), 1'000'000u);
  const Event e = q.pop();
  EXPECT_EQ(e.time, 1'000'000u);
  EXPECT_EQ(e.tag, 7u);
  EXPECT_TRUE(q.empty());
  // After the jump the base sits at the popped tick: near pushes are ring-fast.
  q.push(1'000'001, kEpsDeliver, nullptr, 8);
  EXPECT_EQ(q.pop().tag, 8u);
}

}  // namespace
}  // namespace hxwar::sim
