// Unit tests for the Dragonfly and fat-tree routing algorithms (candidate
// structure; the end-to-end behaviour is covered in topo_dragonfly_fattree).
#include <gtest/gtest.h>

#include "net/network.h"
#include "routing/dragonfly_routing.h"
#include "routing/fattree_routing.h"
#include "sim/simulator.h"
#include "topo/dragonfly.h"
#include "topo/fattree.h"

namespace hxwar::routing {
namespace {

// --------------------------- Dragonfly ------------------------------------

struct DfRig {
  explicit DfRig(const std::string& algorithm)
      : topo(topo::Dragonfly::Params{2, 4, 2, 0}),  // p=2 a=4 h=2 g=9
        routing(makeDragonflyRouting(algorithm, topo)),
        network(sim, topo, *routing, net::NetworkConfig{}) {}

  std::vector<Candidate> routeAt(RouterId r, net::Packet& pkt, bool atSource,
                                 std::uint32_t inClass = 0, PortId inPort = 0) {
    std::vector<Candidate> out;
    const RouteContext ctx{network.router(r), r, inPort, atSource ? 0 : inClass, atSource,
                           atSource ? 0 : inClass};
    routing->route(ctx, pkt, out);
    return out;
  }

  sim::Simulator sim;
  topo::Dragonfly topo;
  std::unique_ptr<RoutingAlgorithm> routing;
  net::Network network;
};

TEST(DragonflyMinimalRouting, LocalDestinationUsesLocalPort) {
  DfRig rig("min");
  net::Packet pkt;
  pkt.dst = 3 * 2;  // router 3 (same group as router 0), terminal 0
  const auto cands = rig.routeAt(0, pkt, true);
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_TRUE(rig.topo.isLocalPort(cands[0].port));
  EXPECT_EQ(cands[0].hopsRemaining, 1u);
  EXPECT_EQ(cands[0].vcClass, 0u);
}

TEST(DragonflyMinimalRouting, RemoteGroupOffersGlobalExit) {
  DfRig rig("min");
  net::Packet pkt;
  pkt.dst = rig.topo.routerOf(5, 2) * 2;  // group 5
  const auto cands = rig.routeAt(0, pkt, true);
  ASSERT_FALSE(cands.empty());
  for (const auto& c : cands) {
    EXPECT_FALSE(rig.topo.isTerminalPort(c.port));
    EXPECT_LE(c.hopsRemaining, 3u);
    EXPECT_GE(c.hopsRemaining, 1u);
  }
}

TEST(DragonflyMinimalRouting, DistanceClassIncrements) {
  DfRig rig("min");
  net::Packet pkt;
  pkt.dst = rig.topo.routerOf(5, 2) * 2;
  const auto cands = rig.routeAt(rig.topo.routerOf(5, 0), pkt, false, 1,
                                 rig.topo.globalPort(0));
  for (const auto& c : cands) EXPECT_EQ(c.vcClass, 2u);
}

TEST(DragonflyMinimalRouting, LocalLocalZigzagForbidden) {
  DfRig rig("min");
  net::Packet pkt;
  pkt.dst = rig.topo.routerOf(5, 2) * 2;  // remote group
  // A minimal packet only moves locally onto the group's exit router toward
  // the destination group; arriving there via a local port, only the global
  // hop may follow.
  const auto exit = rig.topo.exitTo(0, 5, 0);
  ASSERT_NE(rig.topo.localIdx(exit.router), 0u) << "pick a dest group with a remote exit";
  const PortId localIn = rig.topo.localPort(exit.router, 0);
  const auto cands = rig.routeAt(exit.router, pkt, false, 0, localIn);
  ASSERT_FALSE(cands.empty());
  for (const auto& c : cands) {
    EXPECT_TRUE(rig.topo.isGlobalPort(c.port))
        << "local-local zigzag produced port " << c.port;
  }
}

TEST(DragonflyUgalRouting, CommitsMinimalWhenIdle) {
  DfRig rig("ugal");
  for (int i = 0; i < 20; ++i) {
    net::Packet pkt;
    pkt.id = i + 1;
    pkt.dst = rig.topo.routerOf(4, 1) * 2;
    const auto cands = rig.routeAt(0, pkt, true);
    ASSERT_FALSE(cands.empty());
    EXPECT_TRUE(pkt.minimalCommitted || pkt.intermediate != kRouterInvalid);
    // On an idle network minimal must win the weighted comparison.
    EXPECT_TRUE(pkt.minimalCommitted);
  }
}

TEST(DragonflyUgalRouting, ValiantPathSwitchesPhaseAtIntermediate) {
  DfRig rig("ugal");
  net::Packet pkt;
  pkt.dst = rig.topo.routerOf(4, 1) * 2;
  pkt.intermediate = rig.topo.routerOf(7, 2);  // pre-committed Valiant
  // At the intermediate router the packet flips to phase 2 and heads to dst.
  const auto cands = rig.routeAt(pkt.intermediate, pkt, false, 2,
                                 rig.topo.globalPort(0));
  EXPECT_TRUE(pkt.phase2);
  ASSERT_FALSE(cands.empty());
  for (const auto& c : cands) EXPECT_EQ(c.vcClass, 3u);
}

// ----------------------------- Fat tree -----------------------------------

struct FtRig {
  FtRig()
      : topo(topo::FatTree::Params{{4, 4, 4}, {2, 4}}),
        routing(makeFatTreeRouting(topo)),
        network(sim, topo, *routing, net::NetworkConfig{}) {}

  std::vector<Candidate> routeAt(RouterId r, net::Packet& pkt) {
    std::vector<Candidate> out;
    const RouteContext ctx{network.router(r), r, 0, 0, false, 0};
    routing->route(ctx, pkt, out);
    return out;
  }

  sim::Simulator sim;
  topo::FatTree topo;
  std::unique_ptr<RoutingAlgorithm> routing;
  net::Network network;
};

TEST(FatTreeRouting, EjectsAtLeafSwitch) {
  FtRig rig;
  net::Packet pkt;
  pkt.dst = 5;
  const auto cands = rig.routeAt(rig.topo.nodeRouter(5), pkt);
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_EQ(cands[0].port, rig.topo.nodePort(5));
  EXPECT_EQ(cands[0].hopsRemaining, 0u);
}

TEST(FatTreeRouting, ClimbOffersAllUpPorts) {
  FtRig rig;
  net::Packet pkt;
  pkt.dst = 63;  // opposite corner: NCA is the root
  const auto cands = rig.routeAt(rig.topo.nodeRouter(0), pkt);
  ASSERT_EQ(cands.size(), 2u);  // w_2 = 2 up ports at level 1
  for (const auto& c : cands) {
    EXPECT_GE(c.port, rig.topo.downPorts(1));
    EXPECT_EQ(c.hopsRemaining, 2u + 2u);  // up 2, down 2
  }
}

TEST(FatTreeRouting, DescendsDeterministically) {
  FtRig rig;
  net::Packet pkt;
  pkt.dst = 9;  // inside subtree 0 at level 2
  const RouterId l2 = rig.topo.switchId(2, 0, 0);
  const auto cands = rig.routeAt(l2, pkt);
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_EQ(cands[0].port, rig.topo.downDigit(9, 2));
  EXPECT_EQ(cands[0].hopsRemaining, 1u);
}

TEST(FatTreeRouting, NearCommonAncestorTurnsDown) {
  FtRig rig;
  net::Packet pkt;
  pkt.dst = 4;  // sibling leaf switch under the same level-2 subtree
  const auto cands = rig.routeAt(rig.topo.nodeRouter(0), pkt);
  ASSERT_EQ(cands.size(), 2u);  // still climbing: both parents valid
  for (const auto& c : cands) EXPECT_EQ(c.hopsRemaining, 1u + 1u);
}

TEST(FatTreeRouting, SingleClass) {
  FtRig rig;
  EXPECT_EQ(rig.routing->numClasses(), 1u);
  EXPECT_EQ(rig.routing->info().deadlockHandling, "up*/down*");
}

}  // namespace
}  // namespace hxwar::routing
