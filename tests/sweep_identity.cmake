# Runs hxsim twice on the same sweep — --jobs=1 and --jobs=4 — and fails
# unless the two CSVs are byte-identical. This is the determinism contract
# enforced end-to-end through the real binary, per topology family.
#
# Required -D variables: HXSIM (path to the hxsim binary), TOPOLOGY (registered
# family name), PARAMS (semicolon list of extra flags), WORKDIR (scratch dir).
file(MAKE_DIRECTORY "${WORKDIR}")
set(csv1 "${WORKDIR}/${TOPOLOGY}_jobs1.csv")
set(csv4 "${WORKDIR}/${TOPOLOGY}_jobs4.csv")
set(common
    --topology=${TOPOLOGY} ${PARAMS} --experiment=sweep --loads=0.05,0.1,0.15
    --warmup-window=300 --warmup-windows=6 --measure-window=800 --drain-window=2000)

execute_process(COMMAND "${HXSIM}" ${common} --jobs=1 --csv=${csv1}
                RESULT_VARIABLE rc1 OUTPUT_QUIET)
if(NOT rc1 EQUAL 0)
  message(FATAL_ERROR "hxsim --jobs=1 failed for ${TOPOLOGY} (exit ${rc1})")
endif()
execute_process(COMMAND "${HXSIM}" ${common} --jobs=4 --csv=${csv4}
                RESULT_VARIABLE rc4 OUTPUT_QUIET)
if(NOT rc4 EQUAL 0)
  message(FATAL_ERROR "hxsim --jobs=4 failed for ${TOPOLOGY} (exit ${rc4})")
endif()

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files "${csv1}" "${csv4}"
                RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR "${TOPOLOGY}: --jobs=4 CSV differs from --jobs=1 (${csv1} vs ${csv4})")
endif()
