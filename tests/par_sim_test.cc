// Conservative intra-point parallel engine (sim/par, DESIGN.md §12): the
// determinism contract. A sweep point run with --point-jobs=N shards must
// produce bit-identical results — steady-state metrics, routing counters,
// sampler rows, and canonical traces — to the serial engine, for every
// algorithm family, with and without faults and tracing. Plus the barrier
// merge-order property: replaying the same sharded experiment gives the
// same per-shard event counts, independent of thread scheduling.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/spec.h"
#include "net/network.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "obs/window.h"
#include "sim/par/engine.h"

namespace hxwar {
namespace {

// Tiny 3x3 HyperX (9 routers, 18 nodes) so every shard count in {1,2,4}
// exercises uneven contiguous partitions. Short windows keep the full
// algorithm x variant x shard matrix inside the tier-1 budget.
harness::ExperimentSpec tinySpec(const std::string& routing) {
  harness::ExperimentSpec spec = harness::scaleSpec("tiny");
  spec.routing = routing;
  spec.injection.rate = 0.15;
  spec.steady.warmupWindow = 300;
  spec.steady.maxWarmupWindows = 6;
  spec.steady.measureWindow = 600;
  spec.steady.drainWindow = 3000;
  spec.steady.minMeasurePackets = 1;
  return spec;
}

void expectResultsIdentical(const metrics::SteadyStateResult& a,
                            const metrics::SteadyStateResult& b) {
  // Exact floating-point equality on purpose: the sharded engine must replay
  // the serial computation, not approximate it.
  EXPECT_EQ(a.saturated, b.saturated);
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.latencyMean, b.latencyMean);
  EXPECT_EQ(a.latencyP50, b.latencyP50);
  EXPECT_EQ(a.latencyP90, b.latencyP90);
  EXPECT_EQ(a.latencyP99, b.latencyP99);
  EXPECT_EQ(a.latencyP999, b.latencyP999);
  EXPECT_EQ(a.latencyMin, b.latencyMin);
  EXPECT_EQ(a.latencyMax, b.latencyMax);
  EXPECT_EQ(a.avgHops, b.avgHops);
  EXPECT_EQ(a.avgDeroutes, b.avgDeroutes);
  EXPECT_EQ(a.avgStretch, b.avgStretch);
  EXPECT_EQ(a.droppedShare, b.droppedShare);
  EXPECT_EQ(a.packetsMeasured, b.packetsMeasured);
  EXPECT_EQ(a.packetsDropped, b.packetsDropped);
  EXPECT_EQ(a.unreachablePairs, b.unreachablePairs);
  EXPECT_EQ(a.unreachableRouters, b.unreachableRouters);
  EXPECT_EQ(a.warmupCycles, b.warmupCycles);
  ASSERT_EQ(a.hopLatency.size(), b.hopLatency.size());
  for (std::size_t h = 0; h < a.hopLatency.size(); ++h) {
    EXPECT_EQ(a.hopLatency[h].packets, b.hopLatency[h].packets);
    EXPECT_EQ(a.hopLatency[h].meanLatency, b.hopLatency[h].meanLatency);
  }
  EXPECT_EQ(a.routing.decisions, b.routing.decisions);
  EXPECT_EQ(a.routing.derouteGrants, b.routing.derouteGrants);
  EXPECT_EQ(a.routing.derouteRefusals, b.routing.derouteRefusals);
  EXPECT_EQ(a.routing.faultEscapes, b.routing.faultEscapes);
  EXPECT_EQ(a.routing.pathDeroutes, b.routing.pathDeroutes);
  EXPECT_EQ(a.routing.creditStalls, b.routing.creditStalls);
  EXPECT_EQ(a.routing.derouteTakenByDim, b.routing.derouteTakenByDim);
  EXPECT_EQ(a.routing.derouteRefusedByDim, b.routing.derouteRefusedByDim);
  EXPECT_EQ(a.routing.grantsByVc, b.routing.grantsByVc);
}

void expectTracesIdentical(const obs::TraceBuffer& a, const obs::TraceBuffer& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("trace event " + std::to_string(i));
    const obs::TraceEvent& ea = a.events()[i];
    const obs::TraceEvent& eb = b.events()[i];
    EXPECT_EQ(ea.kind, eb.kind);
    EXPECT_EQ(ea.ts, eb.ts);
    EXPECT_EQ(ea.id, eb.id);
    EXPECT_EQ(ea.a, eb.a);
    EXPECT_EQ(ea.b, eb.b);
    EXPECT_EQ(ea.c, eb.c);
    EXPECT_EQ(ea.d, eb.d);
    EXPECT_EQ(ea.v0, eb.v0);
    EXPECT_EQ(ea.v1, eb.v1);
    EXPECT_EQ(ea.v2, eb.v2);
    EXPECT_EQ(ea.v3, eb.v3);
  }
}

void expectSamplesIdentical(const std::vector<obs::SampleRow>& a,
                            const std::vector<obs::SampleRow>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("sample row " + std::to_string(i));
    EXPECT_EQ(a[i].tick, b[i].tick);
    EXPECT_EQ(a[i].flitsInjected, b[i].flitsInjected);
    EXPECT_EQ(a[i].flitsEjected, b[i].flitsEjected);
    EXPECT_EQ(a[i].flitMovements, b[i].flitMovements);
    EXPECT_EQ(a[i].backlogFlits, b[i].backlogFlits);
    EXPECT_EQ(a[i].queuedFlits, b[i].queuedFlits);
    EXPECT_EQ(a[i].creditStalls, b[i].creditStalls);
    EXPECT_EQ(a[i].packetsOutstanding, b[i].packetsOutstanding);
  }
}

void expectPointJobsInvariant(const harness::ExperimentSpec& base) {
  harness::ExperimentSpec serial = base;
  serial.pointJobs = 1;
  const harness::SweepPoint ref = harness::runSweepPoint(serial, base.injection.rate, 0);
  for (const std::uint32_t jobs : {2u, 4u}) {
    SCOPED_TRACE("point-jobs=" + std::to_string(jobs));
    harness::ExperimentSpec sharded = base;
    sharded.pointJobs = jobs;
    const harness::SweepPoint got = harness::runSweepPoint(sharded, base.injection.rate, 0);
    expectResultsIdentical(ref.result, got.result);
    expectTracesIdentical(ref.trace, got.trace);
    expectSamplesIdentical(ref.samples, got.samples);
  }
}

// Canonical byte serialization of a point's window stream — exactly what
// --timeline-out writes per window, so equality here is equality of the
// shipped artifact.
std::string windowsJsonl(const std::vector<obs::WindowRecord>& windows) {
  std::string out;
  for (const obs::WindowRecord& w : windows) obs::appendWindowJsonl(0, w, out);
  return out;
}

// The flight-recorder contract on top of the engine contract: the window
// stream must be byte-identical across shard counts, while the shard-balance
// stream's shape follows the shard count (empty serial, one vector entry per
// shard when sharded).
void expectWindowsInvariant(harness::ExperimentSpec base) {
  base.obs.windowTicks = 250;
  harness::ExperimentSpec serial = base;
  serial.pointJobs = 1;
  const harness::SweepPoint ref = harness::runSweepPoint(serial, base.injection.rate, 0);
  ASSERT_FALSE(ref.windows.empty());
  ASSERT_TRUE(ref.shardWindows.empty());
  const std::string refJsonl = windowsJsonl(ref.windows);
  for (const std::uint32_t jobs : {2u, 4u}) {
    SCOPED_TRACE("point-jobs=" + std::to_string(jobs));
    harness::ExperimentSpec sharded = base;
    sharded.pointJobs = jobs;
    const harness::SweepPoint got = harness::runSweepPoint(sharded, base.injection.rate, 0);
    expectResultsIdentical(ref.result, got.result);
    EXPECT_EQ(refJsonl, windowsJsonl(got.windows));
    ASSERT_FALSE(got.shardWindows.empty());
    EXPECT_EQ(got.shardWindows.size(), got.windows.size());
    for (const obs::ShardWindowRecord& sr : got.shardWindows) {
      EXPECT_EQ(sr.shardEvents.size(), jobs);
      EXPECT_EQ(sr.loadRatio, obs::shardLoadRatio(sr.shardEvents));
    }
  }
}

TEST(ParSim, TimelineBitIdenticalPlain) {
  if constexpr (!obs::kCompiledIn) GTEST_SKIP() << "built with HXWAR_OBS=OFF";
  for (const std::string algo : {"dimwar", "omniwar"}) {
    SCOPED_TRACE(algo);
    expectWindowsInvariant(tinySpec(algo));
  }
}

TEST(ParSim, TimelineBitIdenticalFaulted) {
  if constexpr (!obs::kCompiledIn) GTEST_SKIP() << "built with HXWAR_OBS=OFF";
  harness::ExperimentSpec spec = tinySpec("dal");
  spec.fault.rate = 0.06;
  spec.fault.seed = 99;
  spec.fault.drop = true;
  expectWindowsInvariant(spec);
}

TEST(ParSim, TimelineBitIdenticalTransientFault) {
  // The kill/revive annotations ride inside the serialized windows, so the
  // byte comparison also proves the annotation stream is shard-invariant.
  if constexpr (!obs::kCompiledIn) GTEST_SKIP() << "built with HXWAR_OBS=OFF";
  harness::ExperimentSpec spec = tinySpec("dal");
  spec.fault.rate = 0.06;
  spec.fault.seed = 99;
  spec.fault.drop = true;
  spec.fault.at = 500;
  spec.fault.until = 1400;
  expectWindowsInvariant(spec);
}

TEST(ParSim, BitIdenticalPlain) {
  for (const std::string algo : {"dimwar", "omniwar", "dal"}) {
    SCOPED_TRACE(algo);
    expectPointJobsInvariant(tinySpec(algo));
  }
}

TEST(ParSim, BitIdenticalFaulted) {
  for (const std::string algo : {"dimwar", "omniwar", "dal"}) {
    SCOPED_TRACE(algo);
    harness::ExperimentSpec spec = tinySpec(algo);
    spec.fault.rate = 0.06;
    spec.fault.seed = 99;
    spec.fault.drop = true;  // dead ends drop instead of aborting
    expectPointJobsInvariant(spec);
  }
}

TEST(ParSim, BitIdenticalFaultPolicyMatrix) {
  // The graceful-degradation ladder (--fault-policy) must be
  // --point-jobs-invariant in every mode, including ftar's escape-VC
  // escalation and the retry path's backoff timing. The softer policies
  // tolerate partitioned fault sets, so no seed screening is needed.
  const fault::FaultPolicy policies[] = {fault::FaultPolicy::kDrop,
                                         fault::FaultPolicy::kRetry,
                                         fault::FaultPolicy::kEscape};
  for (const std::string algo : {"dimwar", "ftar"}) {
    for (const fault::FaultPolicy policy : policies) {
      SCOPED_TRACE(algo + "/" + fault::faultPolicyName(policy));
      harness::ExperimentSpec spec = tinySpec(algo);
      spec.fault.rate = 0.10;
      spec.fault.seed = 77;
      spec.fault.policy = policy;
      expectPointJobsInvariant(spec);
    }
  }
}

TEST(ParSim, BitIdenticalTransientFaultAcrossShards) {
  // Transient faults exercise the control-event path: the FaultController
  // flips the dead-port mask on the control simulator at an epsilon-aware
  // window bound, so every shard observes the flip at the same tick.
  harness::ExperimentSpec spec = tinySpec("dal");
  spec.fault.rate = 0.06;
  spec.fault.seed = 99;
  spec.fault.drop = true;
  spec.fault.at = 500;
  spec.fault.until = 1400;
  expectPointJobsInvariant(spec);
}

TEST(ParSim, BitIdenticalTraced) {
  for (const std::string algo : {"dimwar", "omniwar", "dal"}) {
    SCOPED_TRACE(algo);
    harness::ExperimentSpec spec = tinySpec(algo);
    spec.obs.traceOut = "unused";  // enables tracing; no file written here
    spec.obs.traceSample = 1;      // every packet
    spec.obs.sampleInterval = 250; // sampler rows ride along
    expectPointJobsInvariant(spec);
  }
}

TEST(ParSim, BitIdenticalDragonfly) {
  // The engine is topology-agnostic: same contract off the HyperX family.
  harness::ExperimentSpec spec;
  spec.topology = "dragonfly";
  spec.routing = "ugal";
  spec.params["df-p"] = "2";
  spec.params["df-a"] = "4";
  spec.params["df-h"] = "2";
  spec.injection.rate = 0.1;
  spec.steady.warmupWindow = 300;
  spec.steady.maxWarmupWindows = 6;
  spec.steady.measureWindow = 600;
  spec.steady.drainWindow = 3000;
  spec.steady.minMeasurePackets = 1;
  expectPointJobsInvariant(spec);
}

TEST(ParSim, ShardCountClampsToRouters) {
  harness::ExperimentSpec spec = tinySpec("dimwar");
  spec.pointJobs = 64;  // tiny has 9 routers
  harness::Experiment exp(spec);
  EXPECT_EQ(exp.pointJobs(), 9u);
}

TEST(ParSim, MinChannelLatencyIsSurfaced) {
  harness::ExperimentSpec spec = tinySpec("dimwar");
  harness::Experiment exp(spec);
  // Satellite guard: the lookahead source. Tiny preset has 1-cycle terminal
  // channels and 4-cycle router channels; the min must reflect the former.
  EXPECT_EQ(exp.network().minChannelLatency(), 1u);
}

TEST(ParSim, MergeOrderIndependentOfThreadScheduling) {
  // Property: the barrier drain order is fixed by (dst shard, src shard,
  // FIFO), never by which worker reached the barrier first. If scheduling
  // leaked in, per-shard event counts would differ between two runs of the
  // identical sharded experiment.
  std::vector<std::uint64_t> refCounts;
  metrics::SteadyStateResult refResult;
  for (int run = 0; run < 2; ++run) {
    SCOPED_TRACE("run " + std::to_string(run));
    harness::ExperimentSpec spec = tinySpec("omniwar");
    spec.pointJobs = 4;
    harness::Experiment exp(spec);
    ASSERT_NE(exp.parEngine(), nullptr);
    const metrics::SteadyStateResult result = exp.run();
    const std::vector<std::uint64_t> counts = exp.parEngine()->shardEventsProcessed();
    ASSERT_EQ(counts.size(), 4u);
    EXPECT_GT(exp.parEngine()->windowsRun(), 0u);
    if (run == 0) {
      refCounts = counts;
      refResult = result;
    } else {
      EXPECT_EQ(refCounts, counts);
      expectResultsIdentical(refResult, result);
    }
  }
}

}  // namespace
}  // namespace hxwar
