// Tests for the string-configured network builder and config-file parsing.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "harness/builder.h"
#include "traffic/injector.h"

namespace hxwar::harness {
namespace {

Flags flagsFrom(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"test"};
  argv.insert(argv.end(), args.begin(), args.end());
  Flags f;
  f.parse(static_cast<int>(argv.size()), argv.data());
  return f;
}

TEST(Builder, DefaultIsSmallHyperX) {
  const auto f = flagsFrom({});
  auto b = NetworkBundle::fromFlags(f);
  EXPECT_EQ(b->network().numNodes(), 256u);
  EXPECT_EQ(b->routing().info().name, "DimWAR");
}

TEST(Builder, HyperXShapeAndAlgorithm) {
  const auto f = flagsFrom({"--widths=3,3", "--terminals=2", "--routing=omniwar",
                            "--trunking=2"});
  auto b = NetworkBundle::fromFlags(f);
  EXPECT_EQ(b->network().numRouters(), 9u);
  EXPECT_EQ(b->network().numNodes(), 18u);
  EXPECT_EQ(b->routing().info().name, "OmniWAR");
  EXPECT_NE(b->description().find("T=2"), std::string::npos);
}

TEST(Builder, DragonflyFamily) {
  const auto f = flagsFrom({"--topology=dragonfly", "--df-p=2", "--df-a=4", "--df-h=2",
                            "--routing=min"});
  auto b = NetworkBundle::fromFlags(f);
  EXPECT_EQ(b->network().numNodes(), 72u);  // g defaults to a*h+1 = 9
  EXPECT_EQ(b->routing().info().name, "DF-MIN");
}

TEST(Builder, FatTreeFamily) {
  const auto f = flagsFrom({"--topology=fattree", "--ft-down=4,4", "--ft-up=2"});
  auto b = NetworkBundle::fromFlags(f);
  EXPECT_EQ(b->network().numNodes(), 16u);
  EXPECT_EQ(b->routing().info().name, "FT-AD");
}

TEST(Builder, TorusFamily) {
  const auto f = flagsFrom({"--topology=torus", "--widths=4,4", "--terminals=2"});
  auto b = NetworkBundle::fromFlags(f);
  EXPECT_EQ(b->network().numNodes(), 32u);
  EXPECT_EQ(b->routing().info().name, "Torus-DOR");
}

TEST(BuilderDeath, UnknownTopologyListsRegisteredFamilies) {
  const auto f = flagsFrom({"--topology=butterfly"});
  EXPECT_DEATH(NetworkBundle::fromFlags(f),
               "unknown topology family: butterfly.*registered:.*hyperx.*dragonfly");
}

TEST(BuilderDeath, UnknownRoutingListsFamilyAlgorithms) {
  const auto f = flagsFrom({"--topology=torus", "--routing=omniwar"});
  EXPECT_DEATH(NetworkBundle::fromFlags(f),
               "unknown routing algorithm: omniwar for torus.*registered:.*dor");
}

TEST(Builder, RouterParametersApplied) {
  const auto f = flagsFrom({"--vcs=4", "--channel-latency=16", "--no-vct"});
  auto b = NetworkBundle::fromFlags(f);
  EXPECT_EQ(b->network().config().router.numVcs, 4u);
  EXPECT_EQ(b->network().config().channelLatencyRouter, 16u);
  EXPECT_FALSE(b->network().config().router.virtualCutThrough);
}

TEST(Builder, PatternConstructionPerFamily) {
  const auto hx = flagsFrom({});
  auto hb = NetworkBundle::fromFlags(hx);
  EXPECT_NE(hb->makePattern("dcr"), nullptr);  // hyperx-specific pattern ok
  const auto df = flagsFrom({"--topology=dragonfly", "--df-p=2", "--df-a=4", "--df-h=2"});
  auto db = NetworkBundle::fromFlags(df);
  EXPECT_NE(db->makePattern("ur"), nullptr);
  EXPECT_NE(db->makePattern("bc"), nullptr);
}

TEST(Builder, EndToEndTrafficOnEveryFamily) {
  for (const auto& args : std::vector<std::vector<const char*>>{
           {"--topology=hyperx", "--widths=3,3", "--terminals=2"},
           {"--topology=dragonfly", "--df-p=2", "--df-a=4", "--df-h=2"},
           {"--topology=fattree", "--ft-down=4,4", "--ft-up=2"},
           {"--topology=torus", "--widths=3,3", "--terminals=2"}}) {
    std::vector<const char*> argv = {"test"};
    argv.insert(argv.end(), args.begin(), args.end());
    Flags f;
    f.parse(static_cast<int>(argv.size()), argv.data());
    auto b = NetworkBundle::fromFlags(f);
    auto pattern = b->makePattern("ur");
    traffic::SyntheticInjector::Params params;
    params.rate = 0.3;
    traffic::SyntheticInjector inj(b->sim(), b->network(), *pattern, params);
    inj.start();
    b->sim().run(800);
    inj.stop();
    b->sim().run();
    EXPECT_EQ(b->network().packetsOutstanding(), 0u) << b->description();
    EXPECT_GT(b->network().flitsEjected(), 0u) << b->description();
  }
}

TEST(ConfigFile, LoadsKeyValueLines) {
  const std::string path = ::testing::TempDir() + "/hxwar_builder_test.cfg";
  {
    std::ofstream out(path);
    out << "# comment line\n"
        << "topology = torus\n"
        << "widths = 3,3   # trailing comment\n"
        << "terminals=1\n"
        << "\n";
  }
  Flags f;
  ASSERT_TRUE(f.loadFile(path));
  EXPECT_EQ(f.str("topology", ""), "torus");
  EXPECT_EQ(f.str("widths", ""), "3,3");
  EXPECT_EQ(f.u64("terminals", 0), 1u);
  std::remove(path.c_str());
}

TEST(ConfigFile, CommandLineOverridesFile) {
  const std::string path = ::testing::TempDir() + "/hxwar_builder_test2.cfg";
  {
    std::ofstream out(path);
    out << "routing = dor\nload = 0.5\n";
  }
  const char* argv[] = {"test", "--routing=omniwar"};
  Flags f;
  ASSERT_TRUE(f.parse(2, argv));
  ASSERT_TRUE(f.loadFile(path));
  EXPECT_EQ(f.str("routing", ""), "omniwar");      // CLI wins
  EXPECT_DOUBLE_EQ(f.f64("load", 0.0), 0.5);       // file fills the gap
  std::remove(path.c_str());
}

TEST(ConfigFile, MissingFileFails) {
  Flags f;
  EXPECT_FALSE(f.loadFile("/nonexistent/definitely/missing.cfg"));
}

TEST(ConfigFile, RepoSampleConfigsParse) {
  for (const char* rel : {"configs/fig6d_urby.cfg", "configs/paper_scale.cfg",
                          "configs/dragonfly_ugal.cfg"}) {
    Flags f;
    // Tests run from the build tree; find the repo root via the source dir
    // define if present, else skip silently.
    const std::string path = std::string(HXWAR_SOURCE_DIR) + "/" + rel;
    EXPECT_TRUE(f.loadFile(path)) << path;
    EXPECT_TRUE(f.has("topology")) << path;
  }
}

}  // namespace
}  // namespace hxwar::harness
