#include <gtest/gtest.h>

#include <algorithm>

#include "cost/cost_model.h"

namespace hxwar::cost {
namespace {

TEST(CableTech, DacWithinReachFiberBeyond) {
  CableTech tech{"t", 3.0, 10.0, 1.0, 100.0, 2.0};
  EXPECT_DOUBLE_EQ(cableCost(tech, 2.0), 12.0);   // DAC
  EXPECT_DOUBLE_EQ(cableCost(tech, 3.0), 13.0);   // boundary still DAC
  EXPECT_DOUBLE_EQ(cableCost(tech, 4.0), 108.0);  // fiber
}

TEST(CableTech, PassiveHasNoDac) {
  const CableTech passive = technologyByName("passive optics");
  EXPECT_DOUBLE_EQ(passive.dacReachM, 0.0);
  EXPECT_GT(cableCost(passive, 0.5), 0.0);
}

TEST(CableTech, ReachShrinksWithSignalingRate) {
  const auto& techs = standardTechnologies();
  double prev = 1e9;
  for (const auto& t : techs) {
    if (t.dacReachM == 0.0) continue;  // passive
    EXPECT_LT(t.dacReachM, prev);
    prev = t.dacReachM;
  }
}

TEST(Floor, SameRackUsesJumper) {
  FloorPlan plan;
  Floor floor(plan, 16);
  EXPECT_DOUBLE_EQ(floor.cableLength(3, 3), plan.intraRackM);
}

TEST(Floor, LengthGrowsWithDistance) {
  FloorPlan plan;
  plan.racksPerRow = 4;
  Floor floor(plan, 16);
  const double adjacent = floor.cableLength(0, 1);
  const double sameRowFar = floor.cableLength(0, 3);
  const double nextRow = floor.cableLength(0, 4);
  const double diagonal = floor.cableLength(0, 15);
  EXPECT_LT(adjacent, sameRowFar);
  EXPECT_LT(sameRowFar, diagonal);
  EXPECT_GT(nextRow, adjacent);  // rows are further apart than columns
  EXPECT_DOUBLE_EQ(floor.cableLength(0, 15), floor.cableLength(15, 0));
}

TEST(HyperxBom, CableCountsMatchStructure) {
  FloorPlan plan;
  const auto bom = hyperxCables({4, 4, 4}, 4, plan);
  EXPECT_EQ(bom.nodes, 256u);
  // terminals 256 + dim0 6*16 + dim1 4*6*4 + dim2 4*6*4 = 256 + 96 + 96 + 96.
  EXPECT_EQ(bom.lengthsM.size(), 256u + 96 + 96 + 96);
}

TEST(HyperxBom, Dim0IsIntraRack) {
  FloorPlan plan;
  const auto bom = hyperxCables({4, 4, 4}, 1, plan);
  // The first nodes + dim0 entries are all intra-rack jumpers.
  const std::size_t intra = 64 + 6 * 16;
  for (std::size_t i = 0; i < intra; ++i) {
    EXPECT_DOUBLE_EQ(bom.lengthsM[i], plan.intraRackM);
  }
  // At least one dim-2 cable crosses rows (longer than a row width).
  const double maxLen = *std::max_element(bom.lengthsM.begin(), bom.lengthsM.end());
  EXPECT_GT(maxLen, plan.rowPitchM);
}

TEST(DragonflyBom, CableCountsMatchStructure) {
  FloorPlan plan;
  // p=2, a=4, h=2, g=9 (balanced, w=1): fits one rack per group.
  const auto bom = dragonflyCables(2, 4, 2, 9, plan);
  EXPECT_EQ(bom.nodes, 72u);
  // terminals 72 + locals 6*9 + globals 9*8/2.
  EXPECT_EQ(bom.lengthsM.size(), 72u + 54 + 36);
}

TEST(DragonflyBom, DenseGroupSpansRacks) {
  FloorPlan plan;
  plan.nodesPerRack = 8;
  // Group of 16 nodes => 2 racks per group: some locals leave the rack.
  const auto bom = dragonflyCables(4, 4, 2, 5, plan);
  std::size_t interRackLocals = 0;
  // locals are entries [nodes, nodes + 6*g).
  for (std::size_t i = bom.nodes; i < bom.nodes + 6 * 5; ++i) {
    if (bom.lengthsM[i] > plan.intraRackM) interRackLocals += 1;
  }
  EXPECT_GT(interRackLocals, 0u);
}

TEST(ForSize, HyperxCoversRequestedNodes) {
  FloorPlan plan;
  for (const std::uint64_t n : {500ull, 4096ull, 30000ull}) {
    const auto bom = hyperxForSize(n, 64, plan);
    EXPECT_GE(bom.nodes, n);
  }
}

TEST(ForSize, DragonflyCoversRequestedNodes) {
  FloorPlan plan;
  for (const std::uint64_t n : {500ull, 4096ull, 30000ull}) {
    const auto bom = dragonflyForSize(n, 64, plan);
    EXPECT_GE(bom.nodes, n);
  }
}

TEST(Fig3, PassiveOpticsFavorsHyperXAtScale) {
  // The paper's claim: with passive optical cables the HyperX is always
  // lower or equal in cost.
  FloorPlan plan;
  const auto rows = fig3Sweep({8192, 32768, 65536}, 64,
                              {technologyByName("passive optics")}, plan);
  for (const auto& row : rows) {
    EXPECT_GE(row.relativeCost[0], 0.99) << "at " << row.requestedNodes << " nodes";
  }
}

TEST(Fig3, MidGenerationDacFavorsDragonfly) {
  // The 2008-style result: DAC+AOC generations leave the Dragonfly ~10%
  // cheaper at large scale.
  FloorPlan plan;
  const auto rows = fig3Sweep({65536}, 64, {technologyByName("10G (5m DAC)")}, plan);
  EXPECT_LT(rows[0].relativeCost[0], 1.0);
  EXPECT_GT(rows[0].relativeCost[0], 0.75);
}

TEST(Bom, TotalCostIsSumOfCables) {
  FloorPlan plan;
  CableBom bom;
  bom.nodes = 2;
  bom.lengthsM = {1.0, 10.0};
  CableTech tech{"t", 3.0, 10.0, 1.0, 100.0, 2.0};
  EXPECT_DOUBLE_EQ(bom.totalCost(tech), 11.0 + 120.0);
  EXPECT_DOUBLE_EQ(bom.costPerNode(tech), 131.0 / 2.0);
  EXPECT_DOUBLE_EQ(bom.totalLength(), 11.0);
}

}  // namespace
}  // namespace hxwar::cost
