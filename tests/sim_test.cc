#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace hxwar::sim {
namespace {

// Records every event it receives as (time, tag).
class Recorder final : public Component {
 public:
  explicit Recorder(Simulator& sim) : Component(sim) {}
  void processEvent(std::uint64_t tag) override {
    events.emplace_back(sim().now(), tag);
  }
  std::vector<std::pair<Tick, std::uint64_t>> events;
};

TEST(Simulator, StartsAtZeroIdle) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0u);
  EXPECT_TRUE(sim.idle());
  EXPECT_EQ(sim.run(), 0u);
}

TEST(Simulator, DeliversInTimeOrder) {
  Simulator sim;
  Recorder r(sim);
  sim.schedule(30, kEpsRouter, &r, 3);
  sim.schedule(10, kEpsRouter, &r, 1);
  sim.schedule(20, kEpsRouter, &r, 2);
  sim.run();
  ASSERT_EQ(r.events.size(), 3u);
  EXPECT_EQ(r.events[0], (std::pair<Tick, std::uint64_t>{10, 1}));
  EXPECT_EQ(r.events[1], (std::pair<Tick, std::uint64_t>{20, 2}));
  EXPECT_EQ(r.events[2], (std::pair<Tick, std::uint64_t>{30, 3}));
}

TEST(Simulator, EpsilonOrdersWithinTick) {
  Simulator sim;
  Recorder r(sim);
  sim.schedule(5, kEpsTerminal, &r, 2);
  sim.schedule(5, kEpsDeliver, &r, 1);
  sim.schedule(5, kEpsControl, &r, 3);
  sim.run();
  ASSERT_EQ(r.events.size(), 3u);
  EXPECT_EQ(r.events[0].second, 1u);
  EXPECT_EQ(r.events[1].second, 2u);
  EXPECT_EQ(r.events[2].second, 3u);
}

TEST(Simulator, FifoWithinSameTickAndEpsilon) {
  Simulator sim;
  Recorder r(sim);
  for (std::uint64_t i = 0; i < 10; ++i) sim.schedule(1, kEpsRouter, &r, i);
  sim.run();
  ASSERT_EQ(r.events.size(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(r.events[i].second, i);
}

TEST(Simulator, RunUntilHorizonStopsAndAdvancesClock) {
  Simulator sim;
  Recorder r(sim);
  sim.schedule(10, kEpsRouter, &r, 1);
  sim.schedule(50, kEpsRouter, &r, 2);
  EXPECT_EQ(sim.run(20), 1u);
  EXPECT_EQ(sim.now(), 20u);
  EXPECT_EQ(r.events.size(), 1u);
  EXPECT_EQ(sim.run(), 1u);
  EXPECT_EQ(sim.now(), 50u);
}

TEST(Simulator, SchedulingDuringEventWorks) {
  Simulator sim;

  class Chainer final : public Component {
   public:
    explicit Chainer(Simulator& sim) : Component(sim) {}
    void processEvent(std::uint64_t tag) override {
      ticksSeen.push_back(sim().now());
      if (tag < 5) sim().scheduleIn(2, kEpsRouter, this, tag + 1);
    }
    std::vector<Tick> ticksSeen;
  };

  Chainer c(sim);
  sim.schedule(0, kEpsRouter, &c, 0);
  sim.run();
  ASSERT_EQ(c.ticksSeen.size(), 6u);
  EXPECT_EQ(c.ticksSeen.back(), 10u);
}

TEST(Simulator, EventsProcessedCounter) {
  Simulator sim;
  Recorder r(sim);
  for (int i = 0; i < 7; ++i) sim.schedule(i, kEpsRouter, &r, 0);
  sim.run();
  EXPECT_EQ(sim.eventsProcessed(), 7u);
}

TEST(Simulator, SameTickLaterEpsilonFromEarlierEpsilon) {
  Simulator sim;

  // Scheduling (t, kEpsRouter) while handling (t, kEpsDeliver) must deliver
  // within the same tick — the router relies on this to react to arrivals.
  class SameTick final : public Component {
   public:
    explicit SameTick(Simulator& sim) : Component(sim) {}
    void processEvent(std::uint64_t tag) override {
      if (tag == 0) {
        sim().schedule(sim().now(), kEpsRouter, this, 1);
      } else {
        reactedAt = sim().now();
      }
    }
    Tick reactedAt = kTickInvalid;
  };

  SameTick s(sim);
  sim.schedule(4, kEpsDeliver, &s, 0);
  sim.run();
  EXPECT_EQ(s.reactedAt, 4u);
}

}  // namespace
}  // namespace hxwar::sim
