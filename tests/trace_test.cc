#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "net/network.h"
#include "routing/hyperx_routing.h"
#include "sim/simulator.h"
#include "topo/hyperx.h"
#include "traffic/pattern.h"
#include "traffic/trace.h"

namespace hxwar::traffic {
namespace {

TEST(Trace, SaveLoadRoundTrip) {
  const std::string path = ::testing::TempDir() + "/hxwar_trace_test.txt";
  const std::vector<TraceEntry> entries = {
      {0, 0, 1, 64}, {5, 1, 2, 4096}, {5, 2, 0, 1}, {100, 0, 3, 99999}};
  saveTrace(path, entries);
  const auto loaded = loadTrace(path);
  ASSERT_EQ(loaded.size(), entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(loaded[i].tick, entries[i].tick);
    EXPECT_EQ(loaded[i].src, entries[i].src);
    EXPECT_EQ(loaded[i].dst, entries[i].dst);
    EXPECT_EQ(loaded[i].bytes, entries[i].bytes);
  }
  std::remove(path.c_str());
}

TEST(Trace, CommentsAndBlankLinesIgnored) {
  const std::string path = ::testing::TempDir() + "/hxwar_trace_test2.txt";
  {
    std::ofstream out(path);
    out << "# a trace\n\n10 0 1 64   # inline comment\n\n20 1 0 128\n";
  }
  const auto loaded = loadTrace(path);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].tick, 10u);
  EXPECT_EQ(loaded[1].bytes, 128u);
  std::remove(path.c_str());
}

TEST(Trace, UnsortedTicksRejected) {
  const std::string path = ::testing::TempDir() + "/hxwar_trace_test3.txt";
  {
    std::ofstream out(path);
    out << "10 0 1 64\n5 1 0 64\n";
  }
  EXPECT_DEATH(loadTrace(path), "non-decreasing");
  std::remove(path.c_str());
}

struct Rig {
  Rig()
      : topo({{3, 3}, 2}),
        routing(routing::makeHyperXRouting("dimwar", topo)),
        network(sim, topo, *routing, net::NetworkConfig{}) {}

  sim::Simulator sim;
  topo::HyperX topo;
  std::unique_ptr<routing::RoutingAlgorithm> routing;
  net::Network network;
};

TEST(TraceInjector, ReplaysAtTheRightTicks) {
  Rig rig;
  std::vector<Tick> createdAt;
  net::CallbackListener cb70;
  cb70.ejected = [&](const net::Packet& p) { createdAt.push_back(p.createdAt); };
  rig.network.setListener(&cb70);
  TraceInjector inj(rig.sim, rig.network,
                    {{10, 0, 9, 64}, {50, 3, 12, 64}, {50, 5, 1, 2048}}, {});
  inj.start();
  rig.sim.run();
  EXPECT_EQ(inj.entriesInjected(), 3u);
  ASSERT_EQ(createdAt.size(), 2u + 2u);  // 2048 B = 32 flits = 2 packets
  EXPECT_EQ(*std::min_element(createdAt.begin(), createdAt.end()), 10u);
  for (const Tick t : createdAt) EXPECT_TRUE(t == 10 || t == 50);
}

TEST(TraceInjector, SegmentsLargeMessages) {
  Rig rig;
  std::uint64_t packets = 0, flits = 0;
  net::CallbackListener cb85;
  cb85.ejected = [&](const net::Packet& p) {
    packets += 1;
    flits += p.sizeFlits;
  };
  rig.network.setListener(&cb85);
  // 100 kB at 64 B flits = 1600 flits = 100 packets of 16.
  TraceInjector inj(rig.sim, rig.network, {{0, 0, 17, 100 * 1024}}, {});
  inj.start();
  rig.sim.run();
  EXPECT_EQ(packets, 100u);
  EXPECT_EQ(flits, 1600u);
  EXPECT_EQ(inj.flitsOffered(), 1600u);
}

TEST(TraceInjector, OffsetShiftsReplay) {
  Rig rig;
  Tick created = 0;
  net::CallbackListener cb101;
  cb101.ejected = [&](const net::Packet& p) { created = p.createdAt; };
  rig.network.setListener(&cb101);
  TraceInjector::Params params;
  params.offset = 500;
  TraceInjector inj(rig.sim, rig.network, {{10, 0, 9, 64}}, params);
  inj.start();
  rig.sim.run();
  EXPECT_EQ(created, 510u);
}

TEST(TraceFromPattern, GeneratesReplayableTraffic) {
  Rig rig;
  UniformRandom pattern(rig.network.numNodes());
  const auto entries = traceFromPattern(pattern, rig.network.numNodes(), 0.2, 500, 256, 7);
  ASSERT_FALSE(entries.empty());
  for (std::size_t i = 1; i < entries.size(); ++i) {
    EXPECT_GE(entries[i].tick, entries[i - 1].tick);
  }
  std::uint64_t delivered = 0;
  net::CallbackListener cb119;
  cb119.ejected = [&](const net::Packet&) { delivered += 1; };
  rig.network.setListener(&cb119);
  TraceInjector inj(rig.sim, rig.network, entries, {});
  inj.start();
  rig.sim.run();
  EXPECT_GT(delivered, 0u);
  EXPECT_EQ(rig.network.packetsOutstanding(), 0u);
  EXPECT_EQ(inj.entriesInjected(), entries.size());
}

TEST(TraceFromPattern, DeterministicForSeed) {
  topo::HyperX topo({{3, 3}, 2});
  UniformRandom pattern(topo.numNodes());
  const auto a = traceFromPattern(pattern, topo.numNodes(), 0.1, 200, 128, 42);
  UniformRandom pattern2(topo.numNodes());
  const auto b = traceFromPattern(pattern2, topo.numNodes(), 0.1, 200, 128, 42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].tick, b[i].tick);
    EXPECT_EQ(a[i].src, b[i].src);
    EXPECT_EQ(a[i].dst, b[i].dst);
  }
}

}  // namespace
}  // namespace hxwar::traffic
