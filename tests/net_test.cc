#include <gtest/gtest.h>

#include <vector>

#include "net/network.h"
#include "routing/hyperx_routing.h"
#include "sim/simulator.h"
#include "topo/hyperx.h"
#include "traffic/pattern.h"

namespace hxwar::net {
namespace {

struct Rig {
  explicit Rig(topo::HyperX::Params shape, const std::string& algorithm = "dor",
               NetworkConfig cfg = NetworkConfig{})
      : topo(shape),
        routing(routing::makeHyperXRouting(algorithm, topo)),
        network(sim, topo, *routing, cfg) {}

  sim::Simulator sim;
  topo::HyperX topo;
  std::unique_ptr<routing::RoutingAlgorithm> routing;
  Network network;
};

TEST(Network, ConstructionCounts) {
  Rig rig({{4, 4}, 2});
  EXPECT_EQ(rig.network.numRouters(), 16u);
  EXPECT_EQ(rig.network.numNodes(), 32u);
}

TEST(Network, SinglePacketDelivered) {
  Rig rig({{2}, 1});
  std::vector<Packet> delivered;
  net::CallbackListener cb36;
  cb36.ejected = [&](const Packet& p) { delivered.push_back(p); };
  rig.network.setListener(&cb36);
  rig.network.injectPacket(0, 1, 4);
  rig.sim.run();
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].src, 0u);
  EXPECT_EQ(delivered[0].dst, 1u);
  EXPECT_EQ(delivered[0].sizeFlits, 4u);
  EXPECT_EQ(delivered[0].hops, 1u);  // one router-to-router hop
  EXPECT_EQ(delivered[0].deroutes, 0u);
  EXPECT_NE(delivered[0].ejectedAt, kTickInvalid);
}

TEST(Network, SameRouterDeliveryTakesZeroHops) {
  Rig rig({{2}, 2});  // nodes 0,1 on router 0
  std::vector<Packet> delivered;
  net::CallbackListener cb51;
  cb51.ejected = [&](const Packet& p) { delivered.push_back(p); };
  rig.network.setListener(&cb51);
  rig.network.injectPacket(0, 1, 1);
  rig.sim.run();
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].hops, 0u);
}

TEST(Network, ZeroLoadLatencyMatchesPipelineModel) {
  NetworkConfig cfg;
  cfg.channelLatencyRouter = 10;
  cfg.channelLatencyTerminal = 1;
  cfg.router.crossbarLatency = 4;
  Rig rig({{2}, 1}, "dor", cfg);
  Tick latency = 0;
  net::CallbackListener cb65;
  cb65.ejected = [&](const Packet& p) { latency = p.ejectedAt - p.createdAt; };
  rig.network.setListener(&cb65);
  rig.network.injectPacket(0, 1, 1);
  rig.sim.run();
  // inj channel (1) + src router (>=1 route + 4 xbar + send) + channel (10)
  // + dst router (>=1 + 4 + send) + eject channel (1): roughly 22-28 cycles.
  EXPECT_GE(latency, 18u);
  EXPECT_LE(latency, 30u);
}

TEST(Network, ManyPacketsAllDeliveredExactlyOnce) {
  Rig rig({{4, 4}, 2}, "dor");
  std::uint64_t delivered = 0;
  net::CallbackListener cb78;
  cb78.ejected = [&](const Packet&) { delivered += 1; };
  rig.network.setListener(&cb78);
  Rng rng(3);
  constexpr int kPackets = 500;
  for (int i = 0; i < kPackets; ++i) {
    const NodeId src = static_cast<NodeId>(rng.below(rig.network.numNodes()));
    NodeId dst = static_cast<NodeId>(rng.below(rig.network.numNodes()));
    if (dst == src) dst = (dst + 1) % rig.network.numNodes();
    rig.network.injectPacket(src, dst, 1 + static_cast<std::uint32_t>(rng.below(16)));
  }
  rig.sim.run();
  EXPECT_EQ(delivered, kPackets);
  EXPECT_EQ(rig.network.packetsOutstanding(), 0u);
  EXPECT_EQ(rig.network.flitsInjected(), rig.network.flitsEjected());
}

TEST(Network, FlitsArriveInOrderWithinPacket) {
  // The terminal CHECKs ordering internally; this test just exercises a
  // config with contention so interleaving would be caught.
  Rig rig({{3, 3}, 2}, "dor");
  std::uint64_t delivered = 0;
  net::CallbackListener cb98;
  cb98.ejected = [&](const Packet&) { delivered += 1; };
  rig.network.setListener(&cb98);
  for (NodeId n = 0; n < rig.network.numNodes(); ++n) {
    rig.network.injectPacket(n, (n + 5) % rig.network.numNodes(), 16);
    rig.network.injectPacket(n, (n + 7) % rig.network.numNodes(), 16);
  }
  rig.sim.run();
  EXPECT_EQ(delivered, 2u * rig.network.numNodes());
}

TEST(Network, HopCountMatchesMinimalUnderDor) {
  Rig rig({{4, 4, 4}, 1}, "dor");
  std::vector<Packet> delivered;
  net::CallbackListener cb110;
  cb110.ejected = [&](const Packet& p) { delivered.push_back(p); };
  rig.network.setListener(&cb110);
  // 3 packets with known hop distances.
  rig.network.injectPacket(0, 1, 2);                  // 1 dim differs
  rig.network.injectPacket(0, 1 + 4, 2);              // 2 dims differ
  rig.network.injectPacket(0, 1 + 4 + 16, 2);         // 3 dims differ
  rig.sim.run();
  ASSERT_EQ(delivered.size(), 3u);
  for (const auto& p : delivered) {
    EXPECT_EQ(p.hops, rig.topo.minHops(rig.topo.nodeRouter(p.src),
                                       rig.topo.nodeRouter(p.dst)));
  }
}

TEST(Network, BacklogDrainsAfterBurst) {
  Rig rig({{3, 3}, 1}, "dor");
  // Slam one terminal with a burst bigger than its buffers.
  for (int i = 0; i < 50; ++i) rig.network.injectPacket(0, 8, 8);
  EXPECT_GT(rig.network.totalSourceBacklogFlits(), 0u);
  rig.sim.run();
  EXPECT_EQ(rig.network.totalSourceBacklogFlits(), 0u);
  EXPECT_EQ(rig.network.packetsOutstanding(), 0u);
}

TEST(Network, CongestionReadsZeroWhenIdle) {
  Rig rig({{4, 4}, 2});
  for (RouterId r = 0; r < rig.network.numRouters(); ++r) {
    for (PortId p = 0; p < rig.topo.numPorts(r); ++p) {
      EXPECT_DOUBLE_EQ(rig.network.router(r).congestionFlits(p), 0.0);
    }
  }
}

TEST(Network, DownstreamDepthDistinguishesTerminals) {
  NetworkConfig cfg;
  cfg.router.inputBufferDepth = 48;
  cfg.terminalEjectDepth = 32;
  Rig rig({{2, 2}, 2}, "dor", cfg);
  // Ports 0..1 are terminals, the rest router-to-router.
  EXPECT_EQ(rig.network.downstreamDepth(0, 0), 32u);
  EXPECT_EQ(rig.network.downstreamDepth(0, 2), 48u);
}

class PacketSizeSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(PacketSizeSweep, RoundTripAllSizes) {
  Rig rig({{4}, 1}, "dor");
  std::vector<Packet> delivered;
  net::CallbackListener cb157;
  cb157.ejected = [&](const Packet& p) { delivered.push_back(p); };
  rig.network.setListener(&cb157);
  rig.network.injectPacket(0, 3, GetParam());
  rig.sim.run();
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].sizeFlits, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Sizes, PacketSizeSweep,
                         ::testing::Values(1u, 2u, 3u, 8u, 15u, 16u, 31u));

}  // namespace
}  // namespace hxwar::net
