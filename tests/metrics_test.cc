#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "metrics/stats.h"

namespace hxwar::metrics {
namespace {

TEST(StreamingStats, BasicMoments) {
  StreamingStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(StreamingStats, SingleSample) {
  StreamingStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(StreamingStats, ResetClears) {
  StreamingStats s;
  s.add(1.0);
  s.add(2.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.mean(), 10.0);
}

TEST(SampleStats, Percentiles) {
  SampleStats s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_NEAR(s.percentile(0.5), 50.0, 1.0);
  EXPECT_NEAR(s.percentile(0.99), 99.0, 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 100.0);
}

TEST(SampleStats, InterleavedAddAndQuery) {
  SampleStats s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 5.0);
  s.add(1.0);
  s.add(9.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 5.0);
  EXPECT_EQ(s.count(), 3u);
}

// Steady-state controller end-to-end on a tiny network.
TEST(SteadyState, LowLoadIsStableAndAccurate) {
  harness::ExperimentConfig cfg = harness::tinyScaleConfig();
  cfg.algorithm = "dimwar";
  cfg.pattern = "ur";
  cfg.injection.rate = 0.2;
  harness::Experiment exp(cfg);
  const auto r = exp.run();
  EXPECT_FALSE(r.saturated);
  EXPECT_NEAR(r.accepted, 0.2, 0.04);
  EXPECT_GT(r.latencyMean, 0.0);
  EXPECT_GE(r.latencyP99, r.latencyP50);
  EXPECT_GE(r.latencyP50, r.latencyMin);
  EXPECT_GT(r.packetsMeasured, 100u);
}

TEST(SteadyState, OverloadIsDeclaredSaturated) {
  harness::ExperimentConfig cfg = harness::tinyScaleConfig();
  cfg.algorithm = "dor";
  cfg.pattern = "bc";  // DOR caps well below 0.9 on bit complement
  cfg.injection.rate = 0.9;
  cfg.steady.maxWarmupWindows = 10;
  harness::Experiment exp(cfg);
  const auto r = exp.run();
  EXPECT_TRUE(r.saturated);
  EXPECT_LT(r.accepted, 0.85);
}

TEST(SteadyState, AcceptedTracksOfferedWhenStable) {
  for (double load : {0.1, 0.3}) {
    harness::ExperimentConfig cfg = harness::tinyScaleConfig();
    cfg.algorithm = "omniwar";
    cfg.injection.rate = load;
    harness::Experiment exp(cfg);
    const auto r = exp.run();
    EXPECT_FALSE(r.saturated) << "load " << load;
    EXPECT_NEAR(r.accepted, load, 0.05) << "load " << load;
  }
}

TEST(SteadyState, LatencyGrowsWithLoad) {
  double lat[2] = {0, 0};
  int i = 0;
  for (double load : {0.1, 0.5}) {
    harness::ExperimentConfig cfg = harness::tinyScaleConfig();
    cfg.algorithm = "dimwar";
    cfg.injection.rate = load;
    harness::Experiment exp(cfg);
    lat[i++] = exp.run().latencyMean;
  }
  EXPECT_GT(lat[1], lat[0]);
}

TEST(SteadyState, FullyDeterministicAcrossRuns) {
  auto runOnce = [] {
    harness::ExperimentConfig cfg = harness::tinyScaleConfig();
    cfg.algorithm = "omniwar";
    cfg.pattern = "bc";
    cfg.injection.rate = 0.3;
    cfg.injection.seed = 33;
    cfg.net.rngSeed = 34;
    harness::Experiment exp(cfg);
    return exp.run();
  };
  const auto a = runOnce();
  const auto b = runOnce();
  EXPECT_EQ(a.saturated, b.saturated);
  EXPECT_DOUBLE_EQ(a.accepted, b.accepted);
  EXPECT_DOUBLE_EQ(a.latencyMean, b.latencyMean);
  EXPECT_EQ(a.packetsMeasured, b.packetsMeasured);
  EXPECT_DOUBLE_EQ(a.avgDeroutes, b.avgDeroutes);
}

TEST(SteadyState, SeedChangesResultsSlightly) {
  auto runWithSeed = [](std::uint64_t seed) {
    harness::ExperimentConfig cfg = harness::tinyScaleConfig();
    cfg.algorithm = "dimwar";
    cfg.injection.rate = 0.3;
    cfg.injection.seed = seed;
    harness::Experiment exp(cfg);
    return exp.run();
  };
  const auto a = runWithSeed(1);
  const auto b = runWithSeed(2);
  // Different seeds: different sample sets, statistically similar results.
  EXPECT_NE(a.latencyMean, b.latencyMean);
  EXPECT_NEAR(a.accepted, b.accepted, 0.05);
  EXPECT_NEAR(a.latencyMean, b.latencyMean, a.latencyMean * 0.3);
}

TEST(SteadyState, ZeroLoadEdgeBehaviour) {
  harness::ExperimentConfig cfg = harness::tinyScaleConfig();
  cfg.algorithm = "dor";
  cfg.injection.rate = 0.01;  // near-zero load: must stabilize fast
  harness::Experiment exp(cfg);
  const auto r = exp.run();
  EXPECT_FALSE(r.saturated);
  EXPECT_NEAR(r.accepted, 0.01, 0.01);
  EXPECT_GT(r.latencyMean, 0.0);
}

TEST(Harness, LoadGridGeneration) {
  const auto grid = harness::loadGrid(0.1, 0.5);
  ASSERT_EQ(grid.size(), 5u);
  EXPECT_DOUBLE_EQ(grid.front(), 0.1);
  EXPECT_DOUBLE_EQ(grid.back(), 0.5);
}

TEST(Harness, SweepStopsAfterSaturation) {
  harness::ExperimentConfig cfg = harness::tinyScaleConfig();
  cfg.algorithm = "dor";
  cfg.pattern = "bc";
  cfg.steady.maxWarmupWindows = 8;
  const auto points = harness::loadLatencySweep(cfg, harness::loadGrid(0.2, 1.0));
  ASSERT_GE(points.size(), 2u);
  EXPECT_LT(points.size(), 5u);  // saturates early, sweep stops
  EXPECT_TRUE(points.back().result.saturated);
}

TEST(Harness, ScalePresetsDiffer) {
  const auto tiny = harness::tinyScaleConfig();
  const auto small = harness::smallScaleConfig();
  const auto paper = harness::paperScaleConfig();
  EXPECT_LT(tiny.widths[0], small.widths[0]);
  EXPECT_EQ(paper.widths, (std::vector<std::uint32_t>{8, 8, 8}));
  EXPECT_EQ(paper.terminalsPerRouter, 8u);
  EXPECT_EQ(paper.net.channelLatencyRouter, 50u);
}

}  // namespace
}  // namespace hxwar::metrics
