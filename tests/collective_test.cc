#include <gtest/gtest.h>

#include "app/collective.h"
#include "net/network.h"
#include "routing/hyperx_routing.h"
#include "sim/simulator.h"
#include "topo/hyperx.h"

namespace hxwar::app {
namespace {

struct Rig {
  explicit Rig(topo::HyperX::Params shape = {{4, 4}, 2}, const std::string& algo = "dimwar")
      : topo(shape),
        routing(routing::makeHyperXRouting(algo, topo)),
        network(sim, topo, *routing, net::NetworkConfig{}) {}

  sim::Simulator sim;
  topo::HyperX topo;
  std::unique_ptr<routing::RoutingAlgorithm> routing;
  net::Network network;
};

TEST(Collective, KindParsing) {
  EXPECT_EQ(collectiveKindFromString("dissemination"), CollectiveKind::kDissemination);
  EXPECT_EQ(collectiveKindFromString("rd"), CollectiveKind::kRecursiveDoubling);
  EXPECT_EQ(collectiveKindFromString("ring"), CollectiveKind::kRing);
  EXPECT_EQ(collectiveKindName(CollectiveKind::kRing), "ring");
}

TEST(Collective, DisseminationCompletesWithExpectedMessageCount) {
  Rig rig;
  CollectiveConfig cfg;
  cfg.kind = CollectiveKind::kDissemination;
  cfg.bytes = 512;
  CollectiveApp app(rig.network, cfg);
  EXPECT_EQ(app.numProcesses(), 32u);
  EXPECT_EQ(app.rounds(), 5u);  // ceil(log2 32)
  const auto r = app.run();
  EXPECT_GT(r.makespan, 0u);
  EXPECT_EQ(r.messages, 32u * 5 * 2);
  EXPECT_EQ(rig.network.packetsOutstanding(), 0u);
}

TEST(Collective, RecursiveDoublingHalvesMessageCount) {
  Rig rig;
  CollectiveConfig cfg;
  cfg.kind = CollectiveKind::kRecursiveDoubling;
  cfg.bytes = 512;
  CollectiveApp app(rig.network, cfg);
  EXPECT_EQ(app.rounds(), 5u);
  const auto r = app.run();
  EXPECT_EQ(r.messages, 32u * 5);  // one partner per round
  EXPECT_EQ(rig.network.packetsOutstanding(), 0u);
}

TEST(Collective, RingUsesManySmallSteps) {
  Rig rig;
  CollectiveConfig cfg;
  cfg.kind = CollectiveKind::kRing;
  cfg.bytes = 3200;
  CollectiveApp app(rig.network, cfg);
  EXPECT_EQ(app.rounds(), 2u * 31);
  const auto r = app.run();
  EXPECT_EQ(r.messages, 32u * 62);
  // Each message carries bytes/P.
  EXPECT_EQ(r.bytes, 32ull * 62 * (3200 / 32));
  EXPECT_EQ(rig.network.packetsOutstanding(), 0u);
}

TEST(Collective, AllToAllBalancedExchange) {
  Rig rig;
  CollectiveConfig cfg;
  cfg.kind = CollectiveKind::kAllToAll;
  cfg.bytes = 3100;  // per process, split across the other 31
  CollectiveApp app(rig.network, cfg);
  EXPECT_EQ(app.rounds(), 31u);
  const auto r = app.run();
  EXPECT_EQ(r.messages, 32u * 31);
  EXPECT_EQ(r.bytes, 32ull * 31 * (3100 / 31));
  EXPECT_EQ(rig.network.packetsOutstanding(), 0u);
}

TEST(Collective, NonPowerOfTwoDissemination) {
  Rig rig({{3, 3}, 2});  // 18 processes
  CollectiveConfig cfg;
  cfg.kind = CollectiveKind::kDissemination;
  CollectiveApp app(rig.network, cfg);
  EXPECT_EQ(app.rounds(), 5u);  // ceil(log2 18)
  const auto r = app.run();
  EXPECT_GT(r.makespan, 0u);
}

TEST(Collective, RepetitionsScaleTime) {
  Tick t1 = 0, t4 = 0;
  for (const std::uint32_t reps : {1u, 4u}) {
    Rig rig;
    CollectiveConfig cfg;
    cfg.repetitions = reps;
    CollectiveApp app(rig.network, cfg);
    (reps == 1 ? t1 : t4) = app.run().makespan;
  }
  EXPECT_GT(t4, 2 * t1);
}

TEST(Collective, SubsetOfNodesParticipates) {
  Rig rig;
  CollectiveConfig cfg;
  cfg.processes = 8;
  cfg.kind = CollectiveKind::kRecursiveDoubling;
  CollectiveApp app(rig.network, cfg);
  EXPECT_EQ(app.numProcesses(), 8u);
  EXPECT_EQ(app.rounds(), 3u);
  const auto r = app.run();
  EXPECT_EQ(r.messages, 8u * 3);
}

TEST(Collective, LatencyBoundDominatedSmallMessages) {
  // With tiny payloads, log-depth algorithms must beat the 2(P-1)-step ring.
  Tick diss = 0, ring = 0;
  for (const auto kind : {CollectiveKind::kDissemination, CollectiveKind::kRing}) {
    Rig rig;
    CollectiveConfig cfg;
    cfg.kind = kind;
    cfg.bytes = 64;
    CollectiveApp app(rig.network, cfg);
    (kind == CollectiveKind::kDissemination ? diss : ring) = app.run().makespan;
  }
  EXPECT_LT(diss, ring);
}

}  // namespace
}  // namespace hxwar::app
