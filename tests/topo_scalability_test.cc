#include <gtest/gtest.h>

#include "topo/scalability.h"

namespace hxwar::topo {
namespace {

// Figure 2 anchor points the paper states for 64-port routers: "the HyperX
// topology is able to build 10,648 nodes in 2 dimensions, 78,608 nodes in 3
// dimensions, and 463,736 nodes in 4 dimensions." Our K <= S constraint
// reproduces 2D and 3D exactly; 4D comes out within 1% (the paper's exact
// bisection rule there is not published).
TEST(Scalability, HyperX2DAt64Ports) {
  EXPECT_EQ(hyperxMaxNodes(64, 2), 10648u);
  const auto s = hyperxBestShape(64, 2);
  EXPECT_EQ(s.width, 22u);
  EXPECT_EQ(s.terminals, 22u);
}

TEST(Scalability, HyperX3DAt64Ports) {
  EXPECT_EQ(hyperxMaxNodes(64, 3), 78608u);
  const auto s = hyperxBestShape(64, 3);
  EXPECT_EQ(s.width, 17u);
  EXPECT_EQ(s.terminals, 16u);
}

TEST(Scalability, HyperX4DAt64PortsWithinOnePercent) {
  const auto n = hyperxMaxNodes(64, 4);
  EXPECT_NEAR(static_cast<double>(n), 463736.0, 463736.0 * 0.01);
}

TEST(Scalability, ShapeRespectsPortBudget) {
  for (std::uint32_t radix = 8; radix <= 128; radix += 8) {
    for (std::uint32_t dims = 1; dims <= 4; ++dims) {
      const auto s = hyperxBestShape(radix, dims);
      if (s.width == 0) continue;
      EXPECT_LE(s.terminals + dims * (s.width - 1), radix);
      EXPECT_LE(s.terminals, s.width);  // >= 50% bisection design point
    }
  }
}

TEST(Scalability, DragonflyBalancedAt64Ports) {
  // p = 16, a = 32, h = 16, g = 513 -> 262,656 nodes.
  EXPECT_EQ(dragonflyMaxNodes(64), 262656u);
}

TEST(Scalability, FatTree3LAt64Ports) {
  EXPECT_EQ(fatTree3MaxNodes(64), 65536u);
}

TEST(Scalability, SlimFlyGrowsWithRadix) {
  const auto n32 = slimflyMaxNodes(32);
  const auto n64 = slimflyMaxNodes(64);
  EXPECT_GT(n32, 0u);
  EXPECT_GT(n64, n32);
}

TEST(Scalability, MonotoneInRadix) {
  for (std::uint32_t dims = 2; dims <= 4; ++dims) {
    std::uint64_t prev = 0;
    for (std::uint32_t radix = 16; radix <= 128; radix += 16) {
      const auto n = hyperxMaxNodes(radix, dims);
      EXPECT_GE(n, prev);
      prev = n;
    }
  }
}

TEST(Scalability, HigherDimensionalityScalesFurtherAtHighRadix) {
  // At radix 64 (Fig. 2): 4D > 3D > 2D for HyperX; Dragonfly sits between
  // HyperX-3D and HyperX-4D; the 3-level fat tree trails HyperX-3D.
  EXPECT_GT(hyperxMaxNodes(64, 3), hyperxMaxNodes(64, 2));
  EXPECT_GT(hyperxMaxNodes(64, 4), hyperxMaxNodes(64, 3));
  EXPECT_GT(dragonflyMaxNodes(64), hyperxMaxNodes(64, 3));
  EXPECT_LT(fatTree3MaxNodes(64), hyperxMaxNodes(64, 3));
}

TEST(Scalability, SweepProducesAllSeries) {
  const auto series = scalabilitySweep(16, 128, 16);
  ASSERT_EQ(series.size(), 6u);
  for (const auto& s : series) {
    EXPECT_EQ(s.points.size(), 8u);
    EXPECT_FALSE(s.name.empty());
  }
}

}  // namespace
}  // namespace hxwar::topo
