// DAL (§4.2) unit and behavioural tests: candidate structure, the N-bit
// deroute field, and the atomic-queue-allocation throughput ceiling.
#include <gtest/gtest.h>

#include "net/network.h"
#include "routing/dal.h"
#include "sim/simulator.h"
#include "topo/hyperx.h"
#include "traffic/injector.h"
#include "traffic/pattern.h"

namespace hxwar::routing {
namespace {

struct Rig {
  explicit Rig(topo::HyperX::Params shape, bool atomic, net::NetworkConfig cfg = {})
      : topo(shape), routing(makeDalRouting(topo, atomic)), network(sim, topo, *routing, cfg) {}

  sim::Simulator sim;
  topo::HyperX topo;
  std::unique_ptr<RoutingAlgorithm> routing;
  net::Network network;
};

TEST(Dal, CandidatesCoverAllUnalignedDims) {
  Rig rig({{4, 4, 4}, 2}, true);
  net::Packet pkt;
  pkt.dst = rig.topo.routerAt({2, 3, 1}) * 2;
  std::vector<Candidate> out;
  const RouteContext ctx{rig.network.router(0), 0, 0, 0, true, 0};
  rig.routing->route(ctx, pkt, out);
  // 3 minimal + 3 dims x 2 lateral coords.
  EXPECT_EQ(out.size(), 9u);
  for (const auto& c : out) {
    EXPECT_TRUE(c.atomic);
    EXPECT_EQ(c.vcClass, 0u);
    if (c.deroute) {
      EXPECT_NE(c.derouteDim, 0xff);
    }
  }
}

TEST(Dal, DeroutedDimensionsAreExcluded) {
  Rig rig({{4, 4, 4}, 2}, true);
  net::Packet pkt;
  pkt.dst = rig.topo.routerAt({2, 3, 1}) * 2;
  pkt.deroutedDims = 0b011;  // dims 0 and 1 already derouted
  std::vector<Candidate> out;
  const RouteContext ctx{rig.network.router(0), 0, 0, 0, true, 0};
  rig.routing->route(ctx, pkt, out);
  for (const auto& c : out) {
    if (!c.deroute) continue;
    EXPECT_EQ(c.derouteDim, 2) << "only dim 2 may still deroute";
  }
}

TEST(Dal, InfoMatchesTable1) {
  topo::HyperX topo({{4, 4, 4}, 2});
  const auto info = makeDalRouting(topo)->info();
  EXPECT_EQ(info.name, "DAL");
  EXPECT_FALSE(info.dimensionOrdered);
  EXPECT_EQ(info.vcsRequired, "1+1e");
  EXPECT_EQ(info.packetContents, "N-bit field");
  EXPECT_EQ(info.archRequirements, "escape paths");
}

TEST(Dal, DeliversTrafficInAtomicMode) {
  net::NetworkConfig cfg;
  cfg.channelLatencyRouter = 4;
  Rig rig({{3, 3}, 2}, true, cfg);
  std::uint64_t delivered = 0;
  net::CallbackListener cb72;
  cb72.ejected = [&](const net::Packet& p) {
    delivered += 1;
    EXPECT_LE(p.deroutes, 2u);  // once per dimension
  };
  rig.network.setListener(&cb72);
  traffic::UniformRandom pattern(rig.network.numNodes());
  traffic::SyntheticInjector::Params params;
  params.rate = 0.05;  // atomic mode is slow by design
  traffic::SyntheticInjector injector(rig.sim, rig.network, pattern, params);
  injector.start();
  rig.sim.run(4000);
  injector.stop();
  while (rig.network.packetsOutstanding() > 0) {
    const auto before = rig.network.flitMovements();
    rig.sim.run(rig.sim.now() + 4000);
    ASSERT_NE(rig.network.flitMovements(), before) << "DAL stalled";
  }
  EXPECT_EQ(delivered, injector.offeredPackets());
}

TEST(Dal, AtomicModeCapsThroughputPerFormula) {
  // Two routers, one channel: ceiling = pktFlits * VCs / creditRTT.
  const Tick chan = 20;
  net::NetworkConfig cfg;
  cfg.channelLatencyRouter = chan;
  cfg.router.numVcs = 4;
  cfg.router.inputBufferDepth = 96;
  cfg.router.inputSpeedup = 4;
  Rig rig({{2}, 1}, true, cfg);
  traffic::BitComplement pattern(2);
  traffic::SyntheticInjector::Params params;
  params.rate = 1.0;
  params.minFlits = 1;
  params.maxFlits = 1;
  traffic::SyntheticInjector injector(rig.sim, rig.network, pattern, params);
  injector.start();
  rig.sim.run(4000);
  const auto before = rig.network.flitsEjected();
  const Tick t0 = rig.sim.now();
  rig.sim.run(t0 + 20000);
  injector.stop();
  const double accepted =
      static_cast<double>(rig.network.flitsEjected() - before) / (2.0 * (rig.sim.now() - t0));
  const double rtt = 2.0 * chan + 6.0;
  const double ceiling = 1.0 * 4 / rtt;
  EXPECT_NEAR(accepted, ceiling, ceiling * 0.25);
  EXPECT_LT(accepted, 0.15);  // far below channel capacity
}

TEST(Dal, NonAtomicModeReachesFullChannelRate) {
  net::NetworkConfig cfg;
  cfg.channelLatencyRouter = 20;
  cfg.router.inputBufferDepth = 96;
  cfg.router.inputSpeedup = 4;
  Rig rig({{2}, 1}, false, cfg);
  traffic::BitComplement pattern(2);
  traffic::SyntheticInjector::Params params;
  params.rate = 1.0;
  params.minFlits = 8;
  params.maxFlits = 8;
  traffic::SyntheticInjector injector(rig.sim, rig.network, pattern, params);
  injector.start();
  rig.sim.run(4000);
  const auto before = rig.network.flitsEjected();
  const Tick t0 = rig.sim.now();
  rig.sim.run(t0 + 10000);
  injector.stop();
  const double accepted =
      static_cast<double>(rig.network.flitsEjected() - before) / (2.0 * (rig.sim.now() - t0));
  EXPECT_GT(accepted, 0.85);
}

}  // namespace
}  // namespace hxwar::routing
