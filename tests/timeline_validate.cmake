# End-to-end flight-recorder gate: runs windowed hxsim sweeps (plain and
# transient-fault) across --jobs and --point-jobs and checks
#   * the CSV and --timeline-out JSONL are byte-identical across --jobs=1/4
#     AND --point-jobs=1/4 (the timeline stream carries only simulation-derived
#     integers, so it must honor the full determinism contract),
#   * --metrics-json is byte-identical across --jobs (across --point-jobs it
#     legitimately differs: the shard_balance section's shape follows the
#     shard count, see DESIGN.md §14), and
#   * the timeline files pass the timeline_check validator (header/meta/window
#     grammar, contiguous windows, histogram and hot-link consistency).
#
# Required -D variables: HXSIM, TIMELINE_CHECK (binary paths), WORKDIR.
file(MAKE_DIRECTORY "${WORKDIR}")
set(plain
    --widths=3,3 --terminals=2 --routing=dimwar --experiment=sweep
    --loads=0.1,0.2 --warmup-window=300 --warmup-windows=6
    --measure-window=800 --drain-window=2000
    --window-ticks=500)
# Transient fault: link 0:2 dies at tick 500 and revives at 1400, so the
# kill/revive edges land inside recorded windows as annotations.
set(faulted
    --widths=3,3 --terminals=2 --routing=dal --experiment=sweep
    --loads=0.2 --fault-links=0:2 --fault-at=500 --fault-until=1400
    --warmup-window=300 --warmup-windows=6
    --measure-window=800 --drain-window=2000
    --window-ticks=400)

foreach(mode plain faulted)
  foreach(combo "jobs1:--jobs=1" "jobs4:--jobs=4" "pj4:--point-jobs=4")
    string(REPLACE ":" ";" combo "${combo}")
    list(GET combo 0 tag)
    list(GET combo 1 flag)
    execute_process(COMMAND "${HXSIM}" ${${mode}} ${flag}
                            --csv=${WORKDIR}/${mode}_${tag}.csv
                            --timeline-out=${WORKDIR}/${mode}_${tag}.jsonl
                            --metrics-json=${WORKDIR}/${mode}_${tag}.metrics.json
                    RESULT_VARIABLE rc OUTPUT_QUIET)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR "hxsim ${mode} ${flag} windowed sweep failed (exit ${rc})")
    endif()
  endforeach()

  # Full identity across --jobs (all three surfaces).
  foreach(out csv jsonl metrics.json)
    execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                            "${WORKDIR}/${mode}_jobs1.${out}"
                            "${WORKDIR}/${mode}_jobs4.${out}"
                    RESULT_VARIABLE diff)
    if(NOT diff EQUAL 0)
      message(FATAL_ERROR "${mode}: --jobs=4 ${out} differs from --jobs=1: the flight recorder broke the determinism contract")
    endif()
  endforeach()

  # CSV + timeline identity across --point-jobs (metrics excluded by design:
  # shard_balance shape follows the shard count).
  foreach(out csv jsonl)
    execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                            "${WORKDIR}/${mode}_jobs1.${out}"
                            "${WORKDIR}/${mode}_pj4.${out}"
                    RESULT_VARIABLE diff)
    if(NOT diff EQUAL 0)
      message(FATAL_ERROR "${mode}: --point-jobs=4 ${out} differs from --point-jobs=1: the flight recorder broke the shard-invariance contract")
    endif()
  endforeach()

  execute_process(COMMAND "${TIMELINE_CHECK}" "${WORKDIR}/${mode}_jobs1.jsonl"
                          --min-windows=3
                  RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "timeline_check rejected the ${mode} timeline (exit ${rc})")
  endif()
endforeach()

# The transient-fault timeline must carry the kill and revive annotations.
file(READ "${WORKDIR}/faulted_jobs1.jsonl" faulted_text)
if(NOT faulted_text MATCHES "fault_kill tick=500" OR
   NOT faulted_text MATCHES "fault_revive tick=1400")
  message(FATAL_ERROR "faulted timeline lacks fault_kill/fault_revive annotations")
endif()
