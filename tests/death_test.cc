// Negative-path coverage: the always-on HXWAR_CHECK invariants must fire on
// API misuse. These guard rails matter for a library release — a silent
// out-of-range access would corrupt results instead of failing loudly.
#include <gtest/gtest.h>

#include "net/network.h"
#include "routing/hyperx_routing.h"
#include "sim/simulator.h"
#include "topo/hyperx.h"
#include "traffic/injector.h"
#include "traffic/pattern.h"

namespace hxwar {
namespace {

using DeathTest = ::testing::Test;

TEST(DeathTest, HyperXRejectsDegenerateShapes) {
  EXPECT_DEATH(topo::HyperX({{}, 1}), "at least one dimension");
  EXPECT_DEATH(topo::HyperX({{1, 4}, 1}), "width must be >= 2");
  EXPECT_DEATH(topo::HyperX({{4}, 0}), "terminal");
  EXPECT_DEATH(topo::HyperX({{4}, 1, 0}), "trunking");
}

TEST(DeathTest, UnknownRoutingNameAborts) {
  topo::HyperX topo({{4}, 1});
  EXPECT_DEATH(routing::makeHyperXRouting("bogus", topo), "unknown HyperX routing");
}

TEST(DeathTest, UnknownPatternNameAborts) {
  topo::HyperX topo({{4, 4, 4}, 1});
  EXPECT_DEATH(traffic::makePattern("bogus", topo), "unknown traffic pattern");
}

TEST(DeathTest, TooManyClassesForConfiguredVcs) {
  sim::Simulator sim;
  topo::HyperX topo({{4, 4, 4}, 1});
  auto routing = routing::makeHyperXRouting("omniwar", topo);  // 6 classes
  net::NetworkConfig cfg;
  cfg.router.numVcs = 4;
  EXPECT_DEATH(net::Network(sim, topo, *routing, cfg), "needs more VCs");
}

TEST(DeathTest, InjectPacketValidatesEndpoints) {
  sim::Simulator sim;
  topo::HyperX topo({{2}, 1});
  auto routing = routing::makeHyperXRouting("dor", topo);
  net::Network network(sim, topo, *routing, net::NetworkConfig{});
  EXPECT_DEATH(network.injectPacket(0, 99, 1), "");
  EXPECT_DEATH(network.injectPacket(0, 1, 0), "");
}

#ifndef NDEBUG
// The past-scheduling guard is a DCHECK: it sits on every event push, so
// Release builds compile it out (see DESIGN.md §10).
TEST(DeathTest, SimulatorRejectsPastScheduling) {
  sim::Simulator sim;

  class Rewinder final : public sim::Component {
   public:
    explicit Rewinder(sim::Simulator& s) : Component(s, "rewinder") {}
    void processEvent(std::uint64_t) override {
      sim().schedule(sim().now() - 1, sim::kEpsRouter, this, 0);
    }
  };

  Rewinder r(sim);
  sim.schedule(5, sim::kEpsRouter, &r, 0);
  EXPECT_DEATH(sim.run(), "cannot schedule into the past");
}
#endif  // !NDEBUG

TEST(DeathTest, FlitChannelOverdriveDetected) {
  sim::Simulator sim;

  class NullSink final : public net::FlitSink {
   public:
    void receiveFlit(PortId, VcId, net::Flit) override {}
  };

  NullSink sink;
  net::FlitChannel ch(sim, 4, &sink, 0);
  ch.send(0, net::makeFlit(0, 0, false));
  EXPECT_DEATH(ch.send(0, net::makeFlit(0, 1, true)), "overdriven");
}

TEST(DeathTest, OversubscribedInjectionRateRejected) {
  sim::Simulator sim;
  topo::HyperX topo({{2}, 1});
  auto routing = routing::makeHyperXRouting("dor", topo);
  net::Network network(sim, topo, *routing, net::NetworkConfig{});
  traffic::UniformRandom pattern(2);
  traffic::SyntheticInjector::Params params;
  params.rate = 1.5;  // > 1 flit/node/cycle with 1-flit packets
  params.minFlits = 1;
  params.maxFlits = 1;
  EXPECT_DEATH(traffic::SyntheticInjector(sim, network, pattern, params), "rate too high");
}

TEST(DeathTest, DimPortSelfCoordinateRejected) {
  topo::HyperX topo({{4, 4}, 1});
  EXPECT_DEATH(topo.dimPort(0, 0, 0), "equals own coordinate");
}

}  // namespace
}  // namespace hxwar
