#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "harness/csv.h"
#include "harness/experiment.h"
#include "harness/table.h"
#include "metrics/link_util.h"

namespace hxwar::harness {
namespace {

TEST(Table, FormatsAlignedColumns) {
  Table t({"a", "long-header", "c"});
  t.addRow({"x", "1", "yy"});
  t.addRow({"longer-cell", "2", "z"});
  // Render into a pipe buffer via tmpfile.
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  t.print(f);
  std::rewind(f);
  char buf[4096] = {};
  const auto n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  const std::string out(buf, n);
  EXPECT_NE(out.find("long-header"), std::string::npos);
  EXPECT_NE(out.find("longer-cell"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  // Four lines: header, rule, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
  EXPECT_EQ(Table::pct(0.5), "50.0%");
  EXPECT_EQ(Table::pct(1.0, 0), "100%");
}

TEST(Csv, WritesHeaderAndEscapedRows) {
  const std::string path = ::testing::TempDir() + "/hxwar_csv_test.csv";
  {
    CsvWriter csv(path, {"a", "b"});
    ASSERT_TRUE(csv.enabled());
    csv.row({"1", "plain"});
    csv.row({"2", "with,comma"});
    csv.row({"3", "with\"quote"});
  }
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[512] = {};
  const auto n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  const std::string out(buf, n);
  EXPECT_NE(out.find("a,b\n"), std::string::npos);
  EXPECT_NE(out.find("2,\"with,comma\"\n"), std::string::npos);
  EXPECT_NE(out.find("3,\"with\"\"quote\"\n"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Csv, EmptyPathDisablesSilently) {
  CsvWriter csv("", {"a"});
  EXPECT_FALSE(csv.enabled());
  csv.row({"ignored"});  // must not crash
}

TEST(Experiment, BuildsAllAlgorithmPatternCombos) {
  for (const auto& algorithm : routing::hyperxAlgorithmNames()) {
    ExperimentConfig cfg = tinyScaleConfig();
    cfg.algorithm = algorithm;
    cfg.pattern = "ur";
    Experiment exp(cfg);
    EXPECT_EQ(exp.network().numNodes(), 18u);
    EXPECT_FALSE(exp.routing().info().name.empty());
  }
}

TEST(Experiment, SaturationThroughputIsPositiveAndBounded) {
  ExperimentConfig cfg = tinyScaleConfig();
  cfg.algorithm = "omniwar";
  cfg.pattern = "ur";
  cfg.steady.maxWarmupWindows = 10;
  const double accepted = saturationThroughput(cfg, 1.0);
  EXPECT_GT(accepted, 0.3);
  EXPECT_LE(accepted, 1.01);
}

TEST(LinkUtil, CountsMatchNetworkActivity) {
  ExperimentConfig cfg = tinyScaleConfig();
  cfg.algorithm = "dor";
  cfg.pattern = "ur";
  cfg.injection.rate = 0.3;
  Experiment exp(cfg);
  exp.injector().start();
  exp.sim().run(500);
  metrics::LinkUtilization links(exp.network());
  exp.sim().run(exp.sim().now() + 2000);
  exp.injector().stop();
  const auto summary = links.summarize();
  EXPECT_GT(summary.links, 0u);
  EXPECT_GT(summary.meanUtilization, 0.0);
  EXPECT_LE(summary.maxUtilization, 1.0 + 1e-9);
  EXPECT_GE(summary.imbalance, 1.0);
  // The snapshot is sorted by flits, descending.
  const auto snap = links.snapshot();
  for (std::size_t i = 1; i < snap.size(); ++i) {
    EXPECT_GE(snap[i - 1].flits, snap[i].flits);
  }
}

TEST(LinkUtil, ResetRebasesCounters) {
  ExperimentConfig cfg = tinyScaleConfig();
  cfg.injection.rate = 0.3;
  Experiment exp(cfg);
  exp.injector().start();
  exp.sim().run(1000);
  metrics::LinkUtilization links(exp.network());
  links.reset();
  exp.injector().stop();
  exp.sim().run();
  // After stopping, only the drain's flits appear.
  const auto snap = links.snapshot();
  std::uint64_t total = 0;
  for (const auto& l : snap) total += l.flits;
  EXPECT_LT(total, exp.network().flitsEjected() * 4);
}

TEST(LinkUtil, HotLinkVisibleUnderAdversarialDor) {
  // URBy under DOR creates saturated Y links; the imbalance must show.
  ExperimentConfig cfg = smallScaleConfig();
  cfg.algorithm = "dor";
  cfg.pattern = "urby";
  cfg.injection.rate = 0.35;
  Experiment exp(cfg);
  exp.injector().start();
  exp.sim().run(1500);
  metrics::LinkUtilization links(exp.network());
  exp.sim().run(exp.sim().now() + 2500);
  exp.injector().stop();
  const auto summary = links.summarize();
  EXPECT_GT(summary.maxUtilization, 0.9);  // the funnel link is saturated
  EXPECT_GT(summary.imbalance, 2.0);
}

}  // namespace
}  // namespace hxwar::harness
