// Cross-module property tests: every routing algorithm, on every traffic
// pattern, must deliver all packets (no loss, no duplication, no deadlock)
// and respect its structural bounds (hop counts, deroute budgets).
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "net/network.h"
#include "routing/hyperx_routing.h"
#include "sim/simulator.h"
#include "topo/hyperx.h"
#include "traffic/injector.h"
#include "traffic/pattern.h"

namespace hxwar {
namespace {

struct Scenario {
  std::string algorithm;
  std::string pattern;
};

std::string scenarioName(const ::testing::TestParamInfo<Scenario>& info) {
  return info.param.algorithm + "_" + info.param.pattern;
}

class DrainProperty : public ::testing::TestWithParam<Scenario> {};

TEST_P(DrainProperty, BurstDrainsCompletelyWithBoundedPaths) {
  const auto& [algorithm, patternName] = std::tie(GetParam().algorithm, GetParam().pattern);

  sim::Simulator sim;
  topo::HyperX topo({{4, 4, 4}, 2});
  auto routing = routing::makeHyperXRouting(algorithm, topo);
  net::NetworkConfig cfg;
  cfg.channelLatencyRouter = 4;
  cfg.router.inputBufferDepth = 24;
  net::Network network(sim, topo, *routing, cfg);
  auto pattern = traffic::makePattern(patternName, topo);

  // Structural bounds per algorithm (router-to-router hops).
  const std::uint32_t dims = topo.numDims();
  std::uint32_t maxHops = 2 * dims;  // DOR N, VAL/UGAL/ClosAD/DimWAR <= 2N
  std::uint32_t maxDeroutes = dims;
  if (algorithm == "dor") {
    maxHops = dims;
    maxDeroutes = 0;
  } else if (algorithm == "omniwar") {
    maxHops = routing->numClasses();  // N + M distance classes
    maxDeroutes = routing->numClasses() - dims;
  } else if (algorithm == "minad") {
    maxHops = dims;
    maxDeroutes = 0;
  } else if (algorithm == "val" || algorithm == "ugal" || algorithm == "closad") {
    maxDeroutes = 0;  // these take no "deroute"-flagged hops
  }

  const bool omni = algorithm == "omniwar";
  std::uint64_t delivered = 0;
  net::CallbackListener cb62;
  cb62.ejected = [&](const net::Packet& p) {
    delivered += 1;
    EXPECT_LE(p.hops, maxHops) << algorithm << " exceeded its hop bound";
    const auto minimal = topo.minHops(topo.nodeRouter(p.src), topo.nodeRouter(p.dst));
    if (omni) {
      // OmniWAR's budget is per remaining distance classes (§5.2 step 2): a
      // packet may deroute up to (N + M) - minimal times.
      EXPECT_LE(p.deroutes, maxHops - minimal);
    } else {
      EXPECT_LE(p.deroutes, maxDeroutes);
    }
    EXPECT_GE(p.hops, minimal);
  };
  network.setListener(&cb62);

  // High-rate burst to force contention, then full drain.
  traffic::SyntheticInjector::Params params;
  params.rate = 0.8;
  params.seed = 0xfeed + std::hash<std::string>{}(algorithm + patternName);
  traffic::SyntheticInjector injector(sim, network, *pattern, params);
  injector.start();
  sim.run(sim.now() + 3000);
  injector.stop();

  // Drain with a watchdog: progress must continue until empty.
  while (network.packetsOutstanding() > 0) {
    const auto movesBefore = network.flitMovements();
    sim.run(sim.now() + 2000);
    ASSERT_NE(network.flitMovements(), movesBefore)
        << "stalled with " << network.packetsOutstanding() << " packets outstanding — deadlock";
  }

  EXPECT_EQ(delivered, injector.offeredPackets());
  EXPECT_EQ(network.flitsInjected(), network.flitsEjected());
  EXPECT_EQ(network.flitsInjected(), injector.offeredFlits());
}

std::vector<Scenario> allScenarios() {
  std::vector<Scenario> v;
  for (const char* a : {"dor", "val", "minad", "ugal", "closad", "dimwar", "omniwar"}) {
    for (const char* p : {"ur", "bc", "urby", "s2", "dcr", "tp"}) {
      v.push_back(Scenario{a, p});
    }
  }
  return v;
}

INSTANTIATE_TEST_SUITE_P(AllCombos, DrainProperty, ::testing::ValuesIn(allScenarios()),
                         scenarioName);

// Determinism: identical seeds must produce identical simulations.
TEST(Determinism, SameSeedSameResult) {
  auto runOnce = [](std::uint64_t seed) {
    sim::Simulator sim;
    topo::HyperX topo({{3, 3}, 2});
    auto routing = routing::makeHyperXRouting("omniwar", topo);
    net::NetworkConfig cfg;
    cfg.rngSeed = seed;
    net::Network network(sim, topo, *routing, cfg);
    traffic::UniformRandom pattern(topo.numNodes());
    traffic::SyntheticInjector::Params params;
    params.rate = 0.5;
    params.seed = seed;
    traffic::SyntheticInjector injector(sim, network, pattern, params);
    std::uint64_t latencySum = 0;
    net::CallbackListener cb126;
    cb126.ejected = [&](const net::Packet& p) { latencySum += p.ejectedAt - p.createdAt; };
    network.setListener(&cb126);
    injector.start();
    sim.run(4000);
    injector.stop();
    sim.run();
    return std::make_tuple(latencySum, network.flitsEjected(), sim.eventsProcessed());
  };
  EXPECT_EQ(runOnce(123), runOnce(123));
  EXPECT_NE(std::get<0>(runOnce(123)), std::get<0>(runOnce(456)));
}

// DimWAR's deadlock-avoidance argument requires that a deroute is never
// followed by another deroute before a minimal hop; the deroute counter can
// therefore be at most the number of dimensions.
TEST(DimWarInvariant, AtMostOneDeroutePerDimension) {
  sim::Simulator sim;
  topo::HyperX topo({{4, 4, 4}, 2});
  auto routing = routing::makeHyperXRouting("dimwar", topo);
  net::Network network(sim, topo, *routing, net::NetworkConfig{});
  auto pattern = traffic::makePattern("bc", topo);  // forces heavy derouting
  traffic::SyntheticInjector::Params params;
  params.rate = 0.6;
  traffic::SyntheticInjector injector(sim, network, *pattern, params);
  std::uint64_t maxDeroutes = 0;
  net::CallbackListener cb151;
  cb151.ejected = [&](const net::Packet& p) {
    maxDeroutes = std::max<std::uint64_t>(maxDeroutes, p.deroutes);
    EXPECT_LE(p.deroutes, 3u);
    EXPECT_LE(p.hops, 6u);
  };
  network.setListener(&cb151);
  injector.start();
  sim.run(3000);
  injector.stop();
  sim.run();
  EXPECT_GT(maxDeroutes, 0u) << "bit complement should force deroutes";
}

// OmniWAR must respect its total deroute budget M even under stress.
TEST(OmniWarInvariant, DerouteBudgetHolds) {
  sim::Simulator sim;
  topo::HyperX topo({{4, 4, 4}, 2});
  routing::HyperXRoutingOptions opts;
  opts.omniDeroutes = 2;  // M = 2 < N
  auto routing = routing::makeHyperXRouting("omniwar", topo, opts);
  EXPECT_EQ(routing->numClasses(), 5u);
  net::Network network(sim, topo, *routing, net::NetworkConfig{});
  auto pattern = traffic::makePattern("bc", topo);
  traffic::SyntheticInjector::Params params;
  params.rate = 0.6;
  traffic::SyntheticInjector injector(sim, network, *pattern, params);
  net::CallbackListener cb176;
  cb176.ejected = [&](const net::Packet& p) {
    // Deroute budget per §5.2 step 2: remaining classes minus remaining
    // minimal hops; over a whole path that is (N + M) - minimal.
    const auto minimal = topo.minHops(topo.nodeRouter(p.src), topo.nodeRouter(p.dst));
    EXPECT_LE(p.deroutes, 5u - minimal);
    EXPECT_LE(p.hops, 5u);  // N + M distance classes bound the path length
  };
  network.setListener(&cb176);
  injector.start();
  sim.run(3000);
  injector.stop();
  sim.run();
}

}  // namespace
}  // namespace hxwar
