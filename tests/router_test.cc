// White-box router behaviour: wormhole VC ownership, crossbar timing,
// age-based arbitration, speedup budgets — observed through hop traces and
// delivery timing on purpose-built micro-networks.
#include <gtest/gtest.h>

#include <vector>

#include "net/network.h"
#include "routing/hyperx_routing.h"
#include "sim/simulator.h"
#include "topo/hyperx.h"

namespace hxwar::net {
namespace {

struct Rig {
  explicit Rig(NetworkConfig cfg = NetworkConfig{}, topo::HyperX::Params shape = {{2}, 2})
      : topo(shape),
        routing(routing::makeHyperXRouting("dor", topo)),
        network(sim, topo, *routing, cfg) {}

  sim::Simulator sim;
  topo::HyperX topo;
  std::unique_ptr<routing::RoutingAlgorithm> routing;
  Network network;
};

TEST(RouterTiming, CrossbarLatencyAddsExactCycles) {
  Tick lat4 = 0, lat12 = 0;
  for (const std::uint32_t xbar : {4u, 12u}) {
    NetworkConfig cfg;
    cfg.router.crossbarLatency = xbar;
    Rig rig(cfg);
    Tick latency = 0;
    net::CallbackListener cb35;
    cb35.ejected = [&](const Packet& p) { latency = p.ejectedAt - p.createdAt; };
    rig.network.setListener(&cb35);
    rig.network.injectPacket(0, 2, 1);  // crosses one router-to-router hop
    rig.sim.run();
    (xbar == 4 ? lat4 : lat12) = latency;
  }
  // Two routers traversed: each adds the crossbar delta.
  EXPECT_EQ(lat12, lat4 + 2 * 8);
}

TEST(RouterTiming, ChannelLatencyAddsExactCycles) {
  Tick lat4 = 0, lat20 = 0;
  for (const Tick chan : {4u, 20u}) {
    NetworkConfig cfg;
    cfg.channelLatencyRouter = chan;
    Rig rig(cfg);
    Tick latency = 0;
    net::CallbackListener cb52;
    cb52.ejected = [&](const Packet& p) { latency = p.ejectedAt - p.createdAt; };
    rig.network.setListener(&cb52);
    rig.network.injectPacket(0, 2, 1);
    rig.sim.run();
    (chan == 4 ? lat4 : lat20) = latency;
  }
  EXPECT_EQ(lat20, lat4 + 16);  // one router-to-router channel on the path
}

TEST(RouterArbitration, OlderPacketWinsTheChannel) {
  // Two packets from different sources converge on the same output channel;
  // the older one (earlier createdAt) must be ejected first even though the
  // younger one is injected from a closer terminal.
  Rig rig(NetworkConfig{}, {{2}, 2});  // routers 0,1; nodes 0,1 @ r0, 2,3 @ r1
  std::vector<NodeId> order;
  net::CallbackListener cb67;
  cb67.ejected = [&](const Packet& p) { order.push_back(p.src); };
  rig.network.setListener(&cb67);
  rig.network.injectPacket(0, 2, 8);  // created first => older
  rig.sim.run(rig.sim.now() + 1);
  rig.network.injectPacket(1, 3, 8);  // younger, same output channel r0->r1
  rig.sim.run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 0u) << "age-based arbitration must deliver the older packet first";
}

TEST(RouterWormhole, PacketsOnOneVcNeverInterleave) {
  // The terminal CHECKs flit ordering; force many packets through a single
  // VC by configuring numVcs = 1 and verify everything still arrives.
  NetworkConfig cfg;
  cfg.router.numVcs = 1;
  Rig rig(cfg, {{2}, 2});
  std::uint64_t delivered = 0;
  net::CallbackListener cb83;
  cb83.ejected = [&](const Packet&) { delivered += 1; };
  rig.network.setListener(&cb83);
  for (int i = 0; i < 20; ++i) {
    rig.network.injectPacket(0, 2, 4);
    rig.network.injectPacket(1, 3, 4);
  }
  rig.sim.run();
  EXPECT_EQ(delivered, 40u);
}

TEST(RouterSpeedup, HigherSpeedupNeverSlower) {
  Tick t1 = 0, t4 = 0;
  for (const std::uint32_t speedup : {1u, 4u}) {
    NetworkConfig cfg;
    cfg.router.inputSpeedup = speedup;
    Rig rig(cfg, {{2}, 4});
    net::CallbackListener cb98;
    cb98.ejected = [](const Packet&) {};
    rig.network.setListener(&cb98);
    for (NodeId n = 0; n < 4; ++n) {
      rig.network.injectPacket(n, n + 4, 16);  // all cross the same channel
    }
    rig.sim.run();
    (speedup == 1 ? t1 : t4) = rig.sim.now();
  }
  EXPECT_LE(t4, t1);
}

TEST(RouterBackpressure, ThroughputBoundedByChannel) {
  // 8 nodes on router 0 all sending to router 1: the single inter-router
  // channel (1 flit/cycle) bounds the drain time from below.
  Rig rig(NetworkConfig{}, {{2}, 8});
  std::uint64_t flits = 0;
  net::CallbackListener cb113;
  cb113.ejected = [&](const Packet& p) { flits += p.sizeFlits; };
  rig.network.setListener(&cb113);
  for (NodeId n = 0; n < 8; ++n) rig.network.injectPacket(n, n + 8, 16);
  const Tick start = rig.sim.now();
  rig.sim.run();
  EXPECT_EQ(flits, 8u * 16);
  EXPECT_GE(rig.sim.now() - start, flits);  // >= 1 cycle per flit on the channel
}

TEST(RouterCounters, PortFlitCountsMatchTraffic) {
  Rig rig(NetworkConfig{}, {{2}, 2});
  net::CallbackListener cb123;
  cb123.ejected = [](const Packet&) {};
  rig.network.setListener(&cb123);
  rig.network.injectPacket(0, 2, 10);
  rig.sim.run();
  // Router 0's port toward router 1 carried exactly 10 flits.
  const PortId p = rig.topo.dimPort(0, 0, 1);
  EXPECT_EQ(rig.network.router(0).portFlitsSent(p), 10u);
  // Router 1 ejected them to terminal port of node 2.
  EXPECT_EQ(rig.network.router(1).portFlitsSent(rig.topo.nodePort(2)), 10u);
}

TEST(RouterIdle, NoEventsWhenNothingHappens) {
  Rig rig;
  const auto before = rig.sim.eventsProcessed();
  rig.sim.run(10000);
  EXPECT_EQ(rig.sim.eventsProcessed(), before) << "idle network must not burn events";
}

}  // namespace
}  // namespace hxwar::net
