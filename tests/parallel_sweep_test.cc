// Parallel sweep engine: the thread pool itself (ordering, exception
// propagation, edge cases) and the determinism contract — a sweep run on 4
// threads must be bit-identical to the serial path, including the
// stop-at-saturation cut, for every algorithm and seed.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "harness/parallel.h"
#include "harness/sweep_runner.h"

namespace hxwar::harness {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  auto f = pool.submit([] { return 42; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, DestructionWithNoTasksIsClean) {
  ThreadPool pool(3);  // construct + join without ever submitting
}

TEST(ThreadPool, PendingTasksCompleteBeforeJoin) {
  std::vector<std::future<int>> futures;
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      futures.push_back(pool.submit([i] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        return i;
      }));
    }
  }  // destructor must drain the queue, not drop tasks
  for (int i = 0; i < 32; ++i) EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i);
}

TEST(ThreadPool, ParallelMapPreservesIndexOrder) {
  ThreadPool pool(4);
  // Reverse-staggered sleeps: late indices finish first, results must not.
  const auto out = parallelMapOrdered(&pool, 16, [](std::size_t i) {
    std::this_thread::sleep_for(std::chrono::microseconds((16 - i) * 100));
    return i * i;
  });
  ASSERT_EQ(out.size(), 16u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, ParallelMapZeroTasks) {
  ThreadPool pool(2);
  const auto out = parallelMapOrdered(&pool, 0, [](std::size_t i) { return i; });
  EXPECT_TRUE(out.empty());
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
  // The pool must survive a throwing task.
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, ExceptionPropagatesThroughParallelMap) {
  ThreadPool pool(4);
  EXPECT_THROW(parallelMapOrdered(&pool, 8,
                                  [](std::size_t i) -> int {
                                    if (i == 3) throw std::runtime_error("point failed");
                                    return static_cast<int>(i);
                                  }),
               std::runtime_error);
}

// --- determinism of the sweep engine ---

ExperimentConfig sweepBase(const std::string& algorithm, std::uint64_t seed) {
  ExperimentConfig cfg = tinyScaleConfig();
  cfg.algorithm = algorithm;
  cfg.pattern = "ur";
  cfg.injection.seed = seed;
  cfg.net.rngSeed = seed + 1;
  cfg.steady.maxWarmupWindows = 8;
  return cfg;
}

void expectBitIdentical(const std::vector<SweepPoint>& a, const std::vector<SweepPoint>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("point " + std::to_string(i));
    EXPECT_EQ(a[i].load, b[i].load);
    EXPECT_EQ(a[i].index, b[i].index);
    const auto& ra = a[i].result;
    const auto& rb = b[i].result;
    EXPECT_EQ(ra.saturated, rb.saturated);
    // Exact equality on purpose: same binary, same seeds, same event order.
    EXPECT_EQ(ra.offered, rb.offered);
    EXPECT_EQ(ra.accepted, rb.accepted);
    EXPECT_EQ(ra.latencyMean, rb.latencyMean);
    EXPECT_EQ(ra.latencyP50, rb.latencyP50);
    EXPECT_EQ(ra.latencyP99, rb.latencyP99);
    EXPECT_EQ(ra.latencyMin, rb.latencyMin);
    EXPECT_EQ(ra.latencyMax, rb.latencyMax);
    EXPECT_EQ(ra.avgHops, rb.avgHops);
    EXPECT_EQ(ra.avgDeroutes, rb.avgDeroutes);
    EXPECT_EQ(ra.packetsMeasured, rb.packetsMeasured);
    EXPECT_EQ(ra.warmupCycles, rb.warmupCycles);
  }
}

TEST(ParallelSweep, BitIdenticalToSerialAcrossAlgorithmsAndSeeds) {
  const auto loads = loadGrid(0.2, 0.8);
  for (const std::string algorithm : {"dimwar", "omniwar", "ugal"}) {
    for (const std::uint64_t seed : {7ull, 21ull}) {
      SCOPED_TRACE(algorithm + " seed=" + std::to_string(seed));
      const ExperimentConfig cfg = sweepBase(algorithm, seed);
      SweepOptions serial;
      serial.jobs = 1;
      SweepOptions parallel;
      parallel.jobs = 4;
      expectBitIdentical(runLoadSweep(cfg, loads, serial),
                         runLoadSweep(cfg, loads, parallel));
    }
  }
}

TEST(ParallelSweep, EarlyStopCutMatchesSerial) {
  // dor on bit-complement saturates early at tiny scale; the parallel runner
  // speculates past the frontier and must discard the same ordered suffix.
  ExperimentConfig cfg = sweepBase("dor", 7);
  cfg.pattern = "bc";
  const auto loads = loadGrid(0.2, 1.0);
  SweepOptions serial;
  serial.jobs = 1;
  SweepOptions parallel;
  parallel.jobs = 4;
  parallel.waveFactor = 1;  // exercise the cross-wave streak carry too
  const auto a = runLoadSweep(cfg, loads, serial);
  const auto b = runLoadSweep(cfg, loads, parallel);
  expectBitIdentical(a, b);
  EXPECT_LT(a.size(), loads.size());  // the cut actually fired
  EXPECT_TRUE(a.back().result.saturated);
}

TEST(ParallelSweep, MatchesLegacySerialEntryPoint) {
  const ExperimentConfig cfg = sweepBase("dimwar", 7);
  const auto loads = loadGrid(0.25, 0.75);
  SweepOptions parallel;
  parallel.jobs = 3;
  expectBitIdentical(loadLatencySweep(cfg, loads), runLoadSweep(cfg, loads, parallel));
}

TEST(ParallelSweep, TelemetryIsPopulated) {
  const ExperimentConfig cfg = sweepBase("dimwar", 7);
  SweepOptions opts;
  opts.jobs = 2;
  const auto points = runLoadSweep(cfg, {0.3}, opts);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_GT(points[0].eventsProcessed, 0u);
  EXPECT_GT(points[0].wallSeconds, 0.0);
  EXPECT_GT(points[0].eventsPerSec, 0.0);
}

TEST(ParallelSweep, SeedsDeriveFromPointIndexNotOrder) {
  const ExperimentConfig base = sweepBase("dimwar", 7);
  // Same index, same load => same derived seeds regardless of anything else.
  const auto a = sweepPointConfig(base, 0.4, 3);
  const auto b = sweepPointConfig(base, 0.4, 3);
  EXPECT_EQ(a.injection.seed, b.injection.seed);
  EXPECT_EQ(a.net.rngSeed, b.net.rngSeed);
  // Different indices get independent streams.
  const auto c = sweepPointConfig(base, 0.4, 4);
  EXPECT_NE(a.injection.seed, c.injection.seed);
}

}  // namespace
}  // namespace hxwar::harness
