// Torus substrate + dateline-DOR tests (the §2.1 background scheme).
#include <gtest/gtest.h>

#include "net/network.h"
#include "routing/torus_routing.h"
#include "sim/simulator.h"
#include "topo/torus.h"
#include "traffic/injector.h"
#include "traffic/pattern.h"

namespace hxwar {
namespace {

TEST(Torus, Counts) {
  topo::Torus t({{4, 4}, 2});
  EXPECT_EQ(t.numRouters(), 16u);
  EXPECT_EQ(t.numNodes(), 32u);
  EXPECT_EQ(t.numPorts(0), 2u + 4);
  EXPECT_EQ(t.diameter(), 4u);
}

TEST(Torus, WiringIsSymmetric) {
  for (const auto& params : {topo::Torus::Params{{4, 4}, 2}, topo::Torus::Params{{2, 3}, 1},
                             topo::Torus::Params{{5}, 1}}) {
    topo::Torus t(params);
    for (RouterId r = 0; r < t.numRouters(); ++r) {
      for (PortId p = 0; p < t.numPorts(r); ++p) {
        const auto target = t.portTarget(r, p);
        if (target.kind != topo::Topology::PortTarget::Kind::kRouter) continue;
        const auto back = t.portTarget(target.router, target.port);
        ASSERT_EQ(back.kind, topo::Topology::PortTarget::Kind::kRouter);
        EXPECT_EQ(back.router, r) << t.name() << " r=" << r << " p=" << p;
        EXPECT_EQ(back.port, p);
      }
    }
  }
}

TEST(Torus, ShortestDeltaWrapsCorrectly) {
  topo::Torus t({{5}, 1});
  EXPECT_EQ(t.shortestDelta(0, 0, 1), 1);
  EXPECT_EQ(t.shortestDelta(0, 0, 4), -1);  // wrap backwards is shorter
  EXPECT_EQ(t.shortestDelta(0, 4, 1), 2);   // wrap forwards
  EXPECT_EQ(t.shortestDelta(0, 1, 3), 2);
}

TEST(Torus, MinHopsUsesWrap) {
  topo::Torus t({{8, 8}, 1});
  const RouterId a = t.routerAt({0, 0});
  EXPECT_EQ(t.minHops(a, t.routerAt({7, 0})), 1u);
  EXPECT_EQ(t.minHops(a, t.routerAt({4, 4})), 8u);  // diameter
  EXPECT_EQ(t.minHops(a, t.routerAt({6, 2})), 4u);
}

TEST(TorusDateline, CrossingHopUsesClassOne) {
  sim::Simulator sim;
  topo::Torus topo({{5}, 1});
  auto routing = routing::makeTorusRouting(topo);
  net::Network network(sim, topo, *routing, net::NetworkConfig{});
  net::Packet pkt;
  pkt.dst = 1;  // from router 4 to 1: hops 4 -> 0 (crossing), 0 -> 1
  std::vector<routing::Candidate> out;
  const routing::RouteContext atWrap{network.router(4), 4, 0, 0, true, 0};
  routing->route(atWrap, pkt, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].vcClass, 1u) << "wrap hop must take the dateline class";

  out.clear();
  // Continuing after the wrap (arrived on class 1 via the ring port).
  const routing::RouteContext after{network.router(0), 0, topo.dimPort(0, false), 1, false, 1};
  routing->route(after, pkt, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].vcClass, 1u) << "stay on class 1 until the dimension ends";
}

TEST(TorusDateline, NewDimensionResetsClass) {
  sim::Simulator sim;
  topo::Torus topo({{4, 4}, 1});
  auto routing = routing::makeTorusRouting(topo);
  net::Network network(sim, topo, *routing, net::NetworkConfig{});
  net::Packet pkt;
  pkt.dst = topo.routerAt({1, 1});  // K=1: node id == router id
  // Arrived at (1, 0) via dim 0 on class 1; next hop is dim 1: class resets.
  const RouterId cur = topo.routerAt({1, 0});
  std::vector<routing::Candidate> out;
  const routing::RouteContext ctx{network.router(cur), cur, topo.dimPort(0, false), 1, false, 1};
  routing->route(ctx, pkt, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].vcClass, 0u);
}

class TorusDrain : public ::testing::TestWithParam<topo::Torus::Params> {};

TEST_P(TorusDrain, AdversarialBurstDrains) {
  sim::Simulator sim;
  topo::Torus topo(GetParam());
  auto routing = routing::makeTorusRouting(topo);
  net::NetworkConfig cfg;
  cfg.channelLatencyRouter = 4;
  net::Network network(sim, topo, *routing, cfg);
  traffic::BitComplement pattern(topo.numNodes());
  traffic::SyntheticInjector::Params params;
  params.rate = 0.6;
  traffic::SyntheticInjector injector(sim, network, pattern, params);
  std::uint64_t delivered = 0;
  net::CallbackListener cb106;
  cb106.ejected = [&](const net::Packet& p) {
    delivered += 1;
    EXPECT_EQ(p.hops, topo.minHops(topo.nodeRouter(p.src), topo.nodeRouter(p.dst)));
  };
  network.setListener(&cb106);
  injector.start();
  sim.run(1500);
  injector.stop();
  while (network.packetsOutstanding() > 0) {
    const auto before = network.flitMovements();
    sim.run(sim.now() + 3000);
    ASSERT_NE(network.flitMovements(), before) << "torus dateline deadlocked";
  }
  EXPECT_EQ(delivered, injector.offeredPackets());
}

INSTANTIATE_TEST_SUITE_P(Shapes, TorusDrain,
                         ::testing::Values(topo::Torus::Params{{8}, 2},
                                           topo::Torus::Params{{4, 4}, 2},
                                           topo::Torus::Params{{3, 5}, 1},
                                           topo::Torus::Params{{4, 4, 4}, 1}));

}  // namespace
}  // namespace hxwar
