#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "common/flags.h"
#include "common/rng.h"

namespace hxwar {
namespace {

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowCoversAllValues) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(11);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) counts[rng.below(kBuckets)] += 1;
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(13);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, RangeInclusive) {
  Rng rng(17);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.range(1, 16);
    ASSERT_GE(v, 1);
    ASSERT_LE(v, 16);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 16u);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(19);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto sorted = v;
  rng.shuffle(v);
  std::vector<int> resorted = v;
  std::sort(resorted.begin(), resorted.end());
  EXPECT_EQ(resorted, sorted);
}

TEST(SplitMix, DistinctStreams) {
  SplitMix64 sm(123);
  const auto a = sm.next();
  const auto b = sm.next();
  EXPECT_NE(a, b);
}

TEST(Flags, ParsesEqualsForm) {
  const char* argv[] = {"prog", "--load=0.5", "--algorithm=dimwar", "--count=42"};
  Flags f;
  ASSERT_TRUE(f.parse(4, argv));
  EXPECT_DOUBLE_EQ(f.f64("load", 0.0), 0.5);
  EXPECT_EQ(f.str("algorithm", ""), "dimwar");
  EXPECT_EQ(f.i64("count", 0), 42);
}

TEST(Flags, ParsesSpaceForm) {
  const char* argv[] = {"prog", "--scale", "paper", "--verbose"};
  Flags f;
  ASSERT_TRUE(f.parse(4, argv));
  EXPECT_EQ(f.str("scale", ""), "paper");
  EXPECT_TRUE(f.b("verbose", false));
}

TEST(Flags, BooleanNegation) {
  const char* argv[] = {"prog", "--no-adaptive"};
  Flags f;
  ASSERT_TRUE(f.parse(2, argv));
  EXPECT_FALSE(f.b("adaptive", true));
}

TEST(Flags, FallbacksWhenMissing) {
  const char* argv[] = {"prog"};
  Flags f;
  ASSERT_TRUE(f.parse(1, argv));
  EXPECT_EQ(f.str("missing", "dflt"), "dflt");
  EXPECT_EQ(f.i64("missing", -3), -3);
  EXPECT_TRUE(f.b("missing", true));
}

TEST(Flags, FloatListParsing) {
  const char* argv[] = {"prog", "--loads=0.1,0.2,0.35"};
  Flags f;
  ASSERT_TRUE(f.parse(2, argv));
  const auto loads = f.f64List("loads", {});
  ASSERT_EQ(loads.size(), 3u);
  EXPECT_DOUBLE_EQ(loads[0], 0.1);
  EXPECT_DOUBLE_EQ(loads[2], 0.35);
}

TEST(Flags, PositionalArguments) {
  const char* argv[] = {"prog", "input.txt", "--flag=1", "other"};
  Flags f;
  ASSERT_TRUE(f.parse(4, argv));
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "input.txt");
  EXPECT_EQ(f.positional()[1], "other");
}

}  // namespace
}  // namespace hxwar
