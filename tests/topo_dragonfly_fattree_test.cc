// Structural tests for the Dragonfly and fat-tree substrates, plus
// end-to-end delivery tests with their routing algorithms.
#include <gtest/gtest.h>

#include <set>

#include "net/network.h"
#include "routing/dragonfly_routing.h"
#include "routing/fattree_routing.h"
#include "sim/simulator.h"
#include "topo/dragonfly.h"
#include "topo/fattree.h"
#include "traffic/injector.h"
#include "traffic/pattern.h"

namespace hxwar {
namespace {

// --------------------------- Dragonfly ------------------------------------

topo::Dragonfly::Params dfBalanced() {
  // p=2, a=4, h=2, g=a*h+1=9 -> 72 nodes, w=1.
  return topo::Dragonfly::Params{2, 4, 2, 0};
}

topo::Dragonfly::Params dfTrunked() {
  // p=4, a=8, h=4, g=8 -> 256 nodes, w = 32/7 = 4 (4 slots unused per group).
  return topo::Dragonfly::Params{4, 8, 4, 8};
}

TEST(Dragonfly, BalancedCounts) {
  topo::Dragonfly d(dfBalanced());
  EXPECT_EQ(d.g(), 9u);
  EXPECT_EQ(d.numRouters(), 36u);
  EXPECT_EQ(d.numNodes(), 72u);
  EXPECT_EQ(d.numPorts(0), 2u + 3 + 2);
  EXPECT_EQ(d.trunking(), 1u);
}

TEST(Dragonfly, PortTargetsAreSymmetric) {
  for (const auto& params : {dfBalanced(), dfTrunked()}) {
    topo::Dragonfly d(params);
    for (RouterId r = 0; r < d.numRouters(); ++r) {
      for (PortId p = 0; p < d.numPorts(r); ++p) {
        const auto t = d.portTarget(r, p);
        if (t.kind != topo::Topology::PortTarget::Kind::kRouter) continue;
        const auto back = d.portTarget(t.router, t.port);
        ASSERT_EQ(back.kind, topo::Topology::PortTarget::Kind::kRouter);
        EXPECT_EQ(back.router, r);
        EXPECT_EQ(back.port, p);
      }
    }
  }
}

TEST(Dragonfly, EveryGroupPairConnected) {
  for (const auto& params : {dfBalanced(), dfTrunked()}) {
    topo::Dragonfly d(params);
    std::set<std::pair<std::uint32_t, std::uint32_t>> pairs;
    for (RouterId r = 0; r < d.numRouters(); ++r) {
      for (std::uint32_t k = 0; k < d.h(); ++k) {
        const auto t = d.portTarget(r, d.globalPort(k));
        if (t.kind != topo::Topology::PortTarget::Kind::kRouter) continue;
        pairs.insert({d.group(r), d.group(t.router)});
        EXPECT_NE(d.group(r), d.group(t.router));
      }
    }
    EXPECT_EQ(pairs.size(), static_cast<std::size_t>(d.g()) * (d.g() - 1));
  }
}

TEST(Dragonfly, MinHopsWithinDiameter) {
  topo::Dragonfly d(dfBalanced());
  for (RouterId a = 0; a < d.numRouters(); ++a) {
    for (RouterId b = 0; b < d.numRouters(); ++b) {
      const auto h = d.minHops(a, b);
      EXPECT_LE(h, 3u);
      if (a == b) {
        EXPECT_EQ(h, 0u);
      }
      if (a != b && d.group(a) == d.group(b)) {
        EXPECT_EQ(h, 1u);
      }
    }
  }
}

TEST(Dragonfly, ExitToFindsDirectLink) {
  topo::Dragonfly d(dfTrunked());
  for (std::uint32_t g1 = 0; g1 < d.g(); ++g1) {
    for (std::uint32_t g2 = 0; g2 < d.g(); ++g2) {
      if (g1 == g2) continue;
      for (std::uint32_t c = 0; c < d.trunking(); ++c) {
        const auto ex = d.exitTo(g1, g2, c);
        EXPECT_EQ(d.group(ex.router), g1);
        const auto t = d.portTarget(ex.router, d.globalPort(ex.portK));
        ASSERT_EQ(t.kind, topo::Topology::PortTarget::Kind::kRouter);
        EXPECT_EQ(d.group(t.router), g2);
      }
    }
  }
}

class DragonflyDelivery : public ::testing::TestWithParam<std::string> {};

TEST_P(DragonflyDelivery, RandomTrafficDrains) {
  sim::Simulator sim;
  topo::Dragonfly topo(dfTrunked());
  auto routing = routing::makeDragonflyRouting(GetParam(), topo);
  net::NetworkConfig cfg;
  cfg.channelLatencyRouter = 4;
  net::Network network(sim, topo, *routing, cfg);
  traffic::UniformRandom pattern(topo.numNodes());
  traffic::SyntheticInjector::Params params;
  params.rate = 0.5;
  traffic::SyntheticInjector injector(sim, network, pattern, params);
  std::uint64_t delivered = 0;
  net::CallbackListener cb118;
  cb118.ejected = [&](const net::Packet& p) {
    delivered += 1;
    const std::uint32_t bound = GetParam() == "min" ? 3u : (GetParam() == "par" ? 7u : 6u);
    EXPECT_LE(p.hops, bound);
  };
  network.setListener(&cb118);
  injector.start();
  sim.run(2000);
  injector.stop();
  while (network.packetsOutstanding() > 0) {
    const auto before = network.flitMovements();
    sim.run(sim.now() + 2000);
    ASSERT_NE(network.flitMovements(), before) << "dragonfly stalled";
  }
  EXPECT_EQ(delivered, injector.offeredPackets());
}

INSTANTIATE_TEST_SUITE_P(Algos, DragonflyDelivery, ::testing::Values("min", "ugal", "par"));

// ----------------------------- Fat tree -----------------------------------

topo::FatTree::Params ft3Level() {
  // XGFT(3; 4,4,4; 2,4): 64 leaves.
  return topo::FatTree::Params{{4, 4, 4}, {2, 4}};
}

TEST(FatTree, Counts) {
  topo::FatTree f(ft3Level());
  EXPECT_EQ(f.numNodes(), 64u);
  EXPECT_EQ(f.height(), 3u);
  // L1: 16 subtrees x 1 copy; L2: 4 x 2; L3: 1 x 8.
  EXPECT_EQ(f.numRouters(), 16u + 8 + 8);
}

TEST(FatTree, PortTargetsAreSymmetric) {
  topo::FatTree f(ft3Level());
  for (RouterId r = 0; r < f.numRouters(); ++r) {
    for (PortId p = 0; p < f.numPorts(r); ++p) {
      const auto t = f.portTarget(r, p);
      if (t.kind != topo::Topology::PortTarget::Kind::kRouter) continue;
      const auto back = f.portTarget(t.router, t.port);
      ASSERT_EQ(back.kind, topo::Topology::PortTarget::Kind::kRouter);
      EXPECT_EQ(back.router, r) << "r=" << r << " p=" << p;
      EXPECT_EQ(back.port, p);
    }
  }
}

TEST(FatTree, NodesAttachToLevelOne) {
  topo::FatTree f(ft3Level());
  for (NodeId n = 0; n < f.numNodes(); ++n) {
    const RouterId r = f.nodeRouter(n);
    EXPECT_EQ(f.level(r), 1u);
    const auto t = f.portTarget(r, f.nodePort(n));
    ASSERT_EQ(t.kind, topo::Topology::PortTarget::Kind::kTerminal);
    EXPECT_EQ(t.node, n);
  }
}

TEST(FatTree, MinHopsMatchesNcaStructure) {
  topo::FatTree f(ft3Level());
  // Same leaf switch: 0 hops between the same router.
  const RouterId a = f.nodeRouter(0);
  const RouterId b = f.nodeRouter(1);
  EXPECT_EQ(a, b);
  // Adjacent subtrees at level 2: up 1, down 1.
  const RouterId c = f.nodeRouter(4);
  EXPECT_EQ(f.minHops(a, c), 2u);
  // Across the root: up 2, down 2.
  const RouterId d = f.nodeRouter(63);
  EXPECT_EQ(f.minHops(a, d), 4u);
}

TEST(FatTree, NcaLevels) {
  topo::FatTree f(ft3Level());
  EXPECT_EQ(f.ncaLevel(0, 1), 1u);
  EXPECT_EQ(f.ncaLevel(0, 4), 2u);
  EXPECT_EQ(f.ncaLevel(0, 63), 3u);
}

TEST(FatTree, RandomTrafficDrains) {
  sim::Simulator sim;
  topo::FatTree topo(ft3Level());
  auto routing = routing::makeFatTreeRouting(topo);
  net::NetworkConfig cfg;
  cfg.channelLatencyRouter = 4;
  net::Network network(sim, topo, *routing, cfg);
  traffic::UniformRandom pattern(topo.numNodes());
  traffic::SyntheticInjector::Params params;
  params.rate = 0.6;
  traffic::SyntheticInjector injector(sim, network, pattern, params);
  std::uint64_t delivered = 0;
  net::CallbackListener cb209;
  cb209.ejected = [&](const net::Packet& p) {
    delivered += 1;
    EXPECT_LE(p.hops, 4u);  // 2*(h-1)
  };
  network.setListener(&cb209);
  injector.start();
  sim.run(2000);
  injector.stop();
  while (network.packetsOutstanding() > 0) {
    const auto before = network.flitMovements();
    sim.run(sim.now() + 2000);
    ASSERT_NE(network.flitMovements(), before) << "fat tree stalled";
  }
  EXPECT_EQ(delivered, injector.offeredPackets());
}

}  // namespace
}  // namespace hxwar
