// Tests for the experiment factory registries: name listings and order,
// benchDefault filtering, error paths (unknown names must list what exists),
// and macro-based self-registration from an out-of-harness translation unit.
#include <gtest/gtest.h>

#include "harness/registry.h"
#include "routing/hyperx_routing.h"
#include "topo/hyperx.h"

namespace hxwar::harness {
namespace {

// Macro registration from this TU: a topology alias, a routing alias, and a
// pattern. Static initializers run before main; the registry must install
// the built-ins first regardless, so built-ins keep their canonical slots.
HXWAR_REGISTER_TOPOLOGY(({"testmesh", "widths", "dor",
                          [](const Flags&) -> std::unique_ptr<topo::Topology> {
                            return std::make_unique<topo::HyperX>(
                                topo::HyperX::Params{{3, 3}, 2});
                          }}));
HXWAR_REGISTER_ROUTING(({"testmesh", "dor", "", true,
                         [](const topo::Topology& t, const Flags&) {
                           return routing::makeHyperXRouting(
                               "dor", static_cast<const topo::HyperX&>(t));
                         }}));
HXWAR_REGISTER_PATTERN(({"testpat", "uniform random (test)",
                         [](const topo::Topology& t, std::uint64_t) {
                           return std::unique_ptr<traffic::TrafficPattern>(
                               std::make_unique<traffic::UniformRandom>(t.numNodes()));
                         }}));

TEST(Registry, BuiltinTopologyFamiliesInCanonicalOrder) {
  const auto names = ExperimentRegistry::instance().topologyNames();
  const std::vector<std::string> builtins = {"hyperx", "dragonfly", "fattree",
                                             "slimfly", "torus"};
  ASSERT_GE(names.size(), builtins.size());
  for (std::size_t i = 0; i < builtins.size(); ++i) EXPECT_EQ(names[i], builtins[i]);
}

TEST(Registry, BenchDefaultMatchesLegacyHyperXAlgorithmList) {
  // The registry's benchDefault filter supersedes routing::hyperxAlgorithmNames()
  // as the list benches sweep — they must stay in lockstep.
  EXPECT_EQ(ExperimentRegistry::instance().benchRoutingNames("hyperx"),
            routing::hyperxAlgorithmNames());
}

TEST(Registry, RoutingNamesIncludeNonDefaultEntries) {
  const auto names = ExperimentRegistry::instance().routingNames("hyperx");
  EXPECT_NE(std::find(names.begin(), names.end(), "minad"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "dal"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "ugal+"), names.end());
  // Dragonfly names are scoped away from HyperX names.
  EXPECT_EQ(std::find(names.begin(), names.end(), "par"), names.end());
  EXPECT_EQ(ExperimentRegistry::instance().routingNames("dragonfly"),
            (std::vector<std::string>{"min", "ugal", "par"}));
}

TEST(Registry, DefaultRoutingPerFamily) {
  auto& reg = ExperimentRegistry::instance();
  EXPECT_EQ(reg.topology("hyperx").defaultRouting, "dimwar");
  EXPECT_EQ(reg.topology("dragonfly").defaultRouting, "ugal");
  EXPECT_EQ(reg.topology("fattree").defaultRouting, "adaptive");
  EXPECT_EQ(reg.topology("slimfly").defaultRouting, "minimal");
  EXPECT_EQ(reg.topology("torus").defaultRouting, "dor");
}

TEST(Registry, PatternNamesStartWithTopologyAgnosticOnes) {
  const auto names = ExperimentRegistry::instance().patternNames();
  ASSERT_GE(names.size(), 3u);
  EXPECT_EQ(names[0], "ur");
  EXPECT_EQ(names[1], "bc");
  EXPECT_EQ(names[2], "rp");
}

TEST(Registry, MacroRegistrationAppendsAfterBuiltins) {
  auto& reg = ExperimentRegistry::instance();
  const auto& family = reg.topology("testmesh");
  EXPECT_EQ(family.defaultRouting, "dor");
  Flags none;
  auto topo = family.build(none);
  ASSERT_NE(topo, nullptr);
  EXPECT_EQ(topo->numNodes(), 18u);
  auto routing = reg.routing("testmesh", "dor").build(*topo, none);
  EXPECT_NE(routing, nullptr);
  auto pattern = reg.pattern("testpat").build(*topo, 1);
  EXPECT_NE(pattern, nullptr);
  // Built-ins still occupy the canonical front slots.
  EXPECT_EQ(reg.topologyNames().front(), "hyperx");
}

TEST(RegistryDeath, UnknownTopologyListsRegisteredNames) {
  EXPECT_DEATH(ExperimentRegistry::instance().topology("mesh2d"),
               "unknown topology family: mesh2d.*registered:.*hyperx.*dragonfly");
}

TEST(RegistryDeath, UnknownRoutingListsFamilyScopedNames) {
  EXPECT_DEATH(ExperimentRegistry::instance().routing("dragonfly", "dimwar"),
               "unknown routing algorithm: dimwar for dragonfly.*registered:.*min.*ugal.*par");
}

TEST(RegistryDeath, UnknownPatternListsRegisteredNames) {
  EXPECT_DEATH(ExperimentRegistry::instance().pattern("zigzag"),
               "unknown traffic pattern: zigzag.*registered:.*ur.*bc.*rp");
}

TEST(RegistryDeath, HyperXOnlyPatternRefusesOtherTopology) {
  auto& reg = ExperimentRegistry::instance();
  Flags none;
  const auto torus = reg.topology("torus").build(none);
  EXPECT_DEATH(reg.pattern("dcr").build(*torus, 1), "dcr is not usable on topology");
}

TEST(RegistryDeath, DuplicateRegistrationAborts) {
  EXPECT_DEATH(ExperimentRegistry::instance().addTopology(
                   {"hyperx", "", "dimwar",
                    [](const Flags&) -> std::unique_ptr<topo::Topology> {
                      return nullptr;
                    }}),
               "duplicate topology family registration: hyperx");
}

}  // namespace
}  // namespace hxwar::harness
