// SlimFly (MMS graph) structural verification + routing tests. The key
// property — diameter exactly 2 — is checked exhaustively by BFS, which
// validates the finite-field construction end to end.
#include <gtest/gtest.h>

#include <queue>

#include "net/network.h"
#include "routing/slimfly_routing.h"
#include "sim/simulator.h"
#include "topo/slimfly.h"
#include "traffic/injector.h"
#include "traffic/pattern.h"

namespace hxwar {
namespace {

std::vector<std::uint32_t> bfsDistances(const topo::SlimFly& sf, RouterId from) {
  std::vector<std::uint32_t> dist(sf.numRouters(), 0xffffffffu);
  std::queue<RouterId> q;
  dist[from] = 0;
  q.push(from);
  while (!q.empty()) {
    const RouterId r = q.front();
    q.pop();
    for (const RouterId n : sf.neighbors(r)) {
      if (dist[n] != 0xffffffffu) continue;
      dist[n] = dist[r] + 1;
      q.push(n);
    }
  }
  return dist;
}

class SlimFlyStructure : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SlimFlyStructure, CountsMatchTheory) {
  topo::SlimFly sf({GetParam(), 0});
  const std::uint32_t q = GetParam();
  EXPECT_EQ(sf.numRouters(), 2 * q * q);
  EXPECT_EQ(sf.networkDegree(), (3 * q - 1) / 2);
  EXPECT_EQ(sf.terminalsPerRouter(), (sf.networkDegree() + 1) / 2);
}

TEST_P(SlimFlyStructure, WiringIsSymmetric) {
  topo::SlimFly sf({GetParam(), 1});
  for (RouterId r = 0; r < sf.numRouters(); ++r) {
    for (PortId p = 0; p < sf.numPorts(r); ++p) {
      const auto t = sf.portTarget(r, p);
      if (t.kind != topo::Topology::PortTarget::Kind::kRouter) continue;
      const auto back = sf.portTarget(t.router, t.port);
      ASSERT_EQ(back.kind, topo::Topology::PortTarget::Kind::kRouter);
      EXPECT_EQ(back.router, r);
      EXPECT_EQ(back.port, p);
    }
  }
}

TEST_P(SlimFlyStructure, DiameterIsExactlyTwo) {
  topo::SlimFly sf({GetParam(), 1});
  std::uint32_t maxDist = 0;
  for (RouterId r = 0; r < sf.numRouters(); ++r) {
    const auto dist = bfsDistances(sf, r);
    for (const auto d : dist) {
      ASSERT_NE(d, 0xffffffffu) << "graph not connected";
      maxDist = std::max(maxDist, d);
    }
  }
  EXPECT_EQ(maxDist, 2u);
}

TEST_P(SlimFlyStructure, MinHopsAgreesWithBfs) {
  topo::SlimFly sf({GetParam(), 1});
  for (RouterId a = 0; a < sf.numRouters(); a += 3) {
    const auto dist = bfsDistances(sf, a);
    for (RouterId b = 0; b < sf.numRouters(); ++b) {
      EXPECT_EQ(sf.minHops(a, b), dist[b]);
    }
  }
}

TEST_P(SlimFlyStructure, NonAdjacentPairsHaveARelay) {
  topo::SlimFly sf({GetParam(), 1});
  for (RouterId a = 0; a < sf.numRouters(); a += 5) {
    for (RouterId b = a + 1; b < sf.numRouters(); b += 7) {
      if (sf.adjacent(a, b)) continue;
      EXPECT_FALSE(sf.commonNeighbors(a, b).empty())
          << "no relay between " << a << " and " << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(PrimeQ, SlimFlyStructure, ::testing::Values(5u, 13u));

TEST(SlimFlyConstruction, RejectsInvalidQ) {
  EXPECT_DEATH(topo::SlimFly({4, 1}), "prime");
  EXPECT_DEATH(topo::SlimFly({7, 1}), "mod 4");
}

TEST(SlimFlyRouting, DeliversUniformTraffic) {
  sim::Simulator sim;
  topo::SlimFly topo({5, 2});  // 50 routers, 100 nodes
  auto routing = routing::makeSlimFlyRouting(topo);
  net::NetworkConfig cfg;
  cfg.channelLatencyRouter = 4;
  net::Network network(sim, topo, *routing, cfg);
  traffic::UniformRandom pattern(topo.numNodes());
  traffic::SyntheticInjector::Params params;
  params.rate = 0.5;
  traffic::SyntheticInjector injector(sim, network, pattern, params);
  std::uint64_t delivered = 0;
  net::CallbackListener cb112;
  cb112.ejected = [&](const net::Packet& p) {
    delivered += 1;
    EXPECT_LE(p.hops, 2u);
    EXPECT_GE(p.hops, topo.minHops(topo.nodeRouter(p.src), topo.nodeRouter(p.dst)));
  };
  network.setListener(&cb112);
  injector.start();
  sim.run(2000);
  injector.stop();
  while (network.packetsOutstanding() > 0) {
    const auto before = network.flitMovements();
    sim.run(sim.now() + 2000);
    ASSERT_NE(network.flitMovements(), before) << "SlimFly stalled";
  }
  EXPECT_EQ(delivered, injector.offeredPackets());
}

TEST(SlimFlyRouting, AverageHopsNearTheoreticalMean) {
  // With diameter 2 and ~k' direct neighbors out of 2q^2-1 others, most
  // pairs are 2 hops: E[hops] ~ 2 - k'/(2q^2) for UR traffic.
  sim::Simulator sim;
  topo::SlimFly topo({5, 2});
  auto routing = routing::makeSlimFlyRouting(topo);
  net::Network network(sim, topo, *routing, net::NetworkConfig{});
  double hops = 0;
  std::uint64_t count = 0;
  net::CallbackListener cb137;
  cb137.ejected = [&](const net::Packet& p) {
    hops += p.hops;
    count += 1;
  };
  network.setListener(&cb137);
  traffic::UniformRandom pattern(topo.numNodes());
  traffic::SyntheticInjector::Params params;
  params.rate = 0.2;
  traffic::SyntheticInjector injector(sim, network, pattern, params);
  injector.start();
  sim.run(3000);
  injector.stop();
  sim.run();
  ASSERT_GT(count, 500u);
  EXPECT_NEAR(hops / count, 1.8, 0.15);
}

}  // namespace
}  // namespace hxwar
