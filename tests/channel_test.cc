// White-box tests of the channel and flow-control primitives.
#include <gtest/gtest.h>

#include <vector>

#include "net/channel.h"
#include "net/network.h"
#include "routing/hyperx_routing.h"
#include "sim/simulator.h"
#include "topo/hyperx.h"

namespace hxwar::net {
namespace {

class RecordingSink final : public FlitSink, public CreditSink {
 public:
  void receiveFlit(PortId port, VcId vc, Flit flit) override {
    flits.push_back({port, vc, flit.index()});
  }
  void receiveCredit(PortId port, VcId vc) override { credits.push_back({port, vc}); }

  struct FlitRec {
    PortId port;
    VcId vc;
    std::uint32_t index;
  };
  std::vector<FlitRec> flits;
  std::vector<std::pair<PortId, VcId>> credits;
};

TEST(FlitChannel, DeliversAfterLatency) {
  sim::Simulator sim;
  RecordingSink sink;
  FlitChannel ch(sim, 7, &sink, 3);
  ch.send(2, makeFlit(/*packet=*/0, /*index=*/0, /*tail=*/true));
  EXPECT_EQ(ch.inflightFlits(), 1u);
  sim.run(7);  // exclusive horizon: not yet delivered
  EXPECT_TRUE(sink.flits.empty());
  sim.run();
  ASSERT_EQ(sink.flits.size(), 1u);
  EXPECT_EQ(sink.flits[0].port, 3u);
  EXPECT_EQ(sink.flits[0].vc, 2u);
  EXPECT_EQ(sim.now(), 7u);
  EXPECT_EQ(ch.inflightFlits(), 0u);
}

TEST(FlitChannel, PreservesFifoOrderAcrossVcs) {
  sim::Simulator sim;
  RecordingSink sink;
  FlitChannel ch(sim, 4, &sink, 0);
  class Sender final : public sim::Component {
   public:
    Sender(sim::Simulator& s, FlitChannel& ch) : Component(s), ch_(ch) {}
    void processEvent(std::uint64_t tag) override {
      ch_.send(static_cast<VcId>(tag % 3),
               makeFlit(/*packet=*/0, static_cast<std::uint32_t>(tag), /*tail=*/tag == 2));
    }
    FlitChannel& ch_;
  };
  Sender sender(sim, ch);
  for (std::uint64_t i = 0; i < 3; ++i) sim.schedule(i, sim::kEpsTerminal, &sender, i);
  sim.run();
  ASSERT_EQ(sink.flits.size(), 3u);
  for (std::uint32_t i = 0; i < 3; ++i) EXPECT_EQ(sink.flits[i].index, i);
}

TEST(CreditChannel, DeliversVcAfterLatency) {
  sim::Simulator sim;
  RecordingSink sink;
  CreditChannel ch(sim, 5, &sink, 9);
  ch.send(6);
  ch.send(1);
  sim.run();
  ASSERT_EQ(sink.credits.size(), 2u);
  EXPECT_EQ(sink.credits[0], (std::pair<PortId, VcId>{9, 6}));
  EXPECT_EQ(sink.credits[1], (std::pair<PortId, VcId>{9, 1}));
  EXPECT_EQ(sim.now(), 5u);
}

// Flow control property: with a tiny input buffer, the network still
// delivers everything (credits throttle correctly instead of overflowing —
// the router CHECKs overflow internally).
TEST(FlowControl, TinyBuffersStillDeliver) {
  sim::Simulator sim;
  topo::HyperX topo({{3, 3}, 1});
  auto routing = routing::makeHyperXRouting("dor", topo);
  net::NetworkConfig cfg;
  cfg.router.inputBufferDepth = 2;
  cfg.router.outputQueueDepth = 2;
  cfg.router.virtualCutThrough = false;  // VCT needs a packet-sized buffer
  cfg.channelLatencyRouter = 6;
  net::Network network(sim, topo, *routing, cfg);
  std::uint64_t delivered = 0;
  net::CallbackListener cb100;
  cb100.ejected = [&](const Packet&) { delivered += 1; };
  network.setListener(&cb100);
  for (NodeId n = 0; n < network.numNodes(); ++n) {
    network.injectPacket(n, (n + 4) % network.numNodes(), 8);
  }
  sim.run();
  EXPECT_EQ(delivered, network.numNodes());
}

// VCT property: with virtual cut-through on, a granted packet is never
// stalled mid-stream by credits — verified indirectly: buffers at least the
// max packet size keep single-packet latency equal to the uncontended case.
TEST(FlowControl, VctUncontendedLatencyIndependentOfOtherVcs) {
  auto latencyOf = [](std::uint32_t sizeFlits) {
    sim::Simulator sim;
    topo::HyperX topo({{2}, 1});
    auto routing = routing::makeHyperXRouting("dor", topo);
    net::NetworkConfig cfg;
    cfg.router.inputBufferDepth = 32;
    net::Network network(sim, topo, *routing, cfg);
    Tick latency = 0;
    net::CallbackListener cb120;
    cb120.ejected = [&](const Packet& p) { latency = p.ejectedAt - p.createdAt; };
    network.setListener(&cb120);
    network.injectPacket(0, 1, sizeFlits);
    sim.run();
    return latency;
  };
  // Serialization: each extra flit adds exactly one cycle end to end.
  const Tick l1 = latencyOf(1);
  const Tick l9 = latencyOf(9);
  EXPECT_EQ(l9, l1 + 8);
}

TEST(PaperScale, FullSizeNetworkConstructsAndDelivers) {
  // The 4,096-node 8x8x8 HyperX with 29-port routers and 8 VCs: build it,
  // push traffic through, and drain — a memory/scale smoke test.
  sim::Simulator sim;
  topo::HyperX topo({{8, 8, 8}, 8});
  auto routing = routing::makeHyperXRouting("omniwar", topo);
  net::NetworkConfig cfg;
  cfg.channelLatencyRouter = 50;
  cfg.channelLatencyTerminal = 5;
  cfg.router.inputBufferDepth = 160;
  cfg.router.outputQueueDepth = 32;
  net::Network network(sim, topo, *routing, cfg);
  EXPECT_EQ(network.numNodes(), 4096u);
  EXPECT_EQ(network.numRouters(), 512u);
  std::uint64_t delivered = 0;
  net::CallbackListener cb147;
  cb147.ejected = [&](const Packet&) { delivered += 1; };
  network.setListener(&cb147);
  Rng rng(11);
  for (int i = 0; i < 2000; ++i) {
    const NodeId src = static_cast<NodeId>(rng.below(4096));
    NodeId dst = static_cast<NodeId>(rng.below(4096));
    if (dst == src) dst = (dst + 1) % 4096;
    network.injectPacket(src, dst, 1 + static_cast<std::uint32_t>(rng.below(16)));
  }
  sim.run();
  EXPECT_EQ(delivered, 2000u);
  EXPECT_EQ(network.packetsOutstanding(), 0u);
}

}  // namespace
}  // namespace hxwar::net
