#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "app/message.h"
#include "app/stencil.h"
#include "net/network.h"
#include "routing/hyperx_routing.h"
#include "sim/simulator.h"
#include "topo/hyperx.h"

namespace hxwar::app {
namespace {

struct Rig {
  explicit Rig(topo::HyperX::Params shape, const std::string& algorithm = "dimwar")
      : topo(shape),
        routing(routing::makeHyperXRouting(algorithm, topo)),
        network(sim, topo, *routing, net::NetworkConfig{}) {}

  sim::Simulator sim;
  topo::HyperX topo;
  std::unique_ptr<routing::RoutingAlgorithm> routing;
  net::Network network;
};

TEST(MessageLayer, FlitsForRoundsUp) {
  Rig rig({{2, 2}, 2});
  MessageLayer layer(rig.network, MessageConfig{64, 16});
  EXPECT_EQ(layer.flitsFor(1), 1u);
  EXPECT_EQ(layer.flitsFor(64), 1u);
  EXPECT_EQ(layer.flitsFor(65), 2u);
  EXPECT_EQ(layer.flitsFor(1024), 16u);
}

TEST(MessageLayer, SingleMessageDelivered) {
  Rig rig({{2, 2}, 2});
  MessageLayer layer(rig.network, MessageConfig{64, 16});
  Message got;
  layer.setDeliveryHandler([&](const Message& m) { got = m; });
  const MessageId id = layer.send(0, 5, 4096, 42);
  rig.sim.run();
  EXPECT_EQ(got.id, id);
  EXPECT_EQ(got.src, 0u);
  EXPECT_EQ(got.dst, 5u);
  EXPECT_EQ(got.tag, 42u);
  EXPECT_EQ(got.packetsTotal, 4u);  // 4096 B = 64 flits = 4 packets of 16
  EXPECT_NE(got.deliveredAt, kTickInvalid);
  EXPECT_EQ(layer.messagesInFlight(), 0u);
  EXPECT_EQ(layer.messagesDelivered(), 1u);
}

TEST(MessageLayer, TinyMessageStillSendsOnePacket) {
  Rig rig({{2, 2}, 2});
  MessageLayer layer(rig.network, MessageConfig{64, 16});
  std::uint32_t delivered = 0;
  layer.setDeliveryHandler([&](const Message&) { delivered += 1; });
  layer.send(0, 1, 0, 0);  // zero-byte message (pure synchronization)
  rig.sim.run();
  EXPECT_EQ(delivered, 1u);
}

TEST(MessageLayer, ManyConcurrentMessages) {
  Rig rig({{3, 3}, 2});
  MessageLayer layer(rig.network, MessageConfig{64, 16});
  std::uint64_t deliveredBytes = 0;
  layer.setDeliveryHandler([&](const Message& m) { deliveredBytes += m.bytes; });
  std::uint64_t sentBytes = 0;
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const NodeId src = static_cast<NodeId>(rng.below(rig.network.numNodes()));
    NodeId dst = static_cast<NodeId>(rng.below(rig.network.numNodes()));
    if (dst == src) dst = (dst + 1) % rig.network.numNodes();
    const std::uint64_t bytes = 1 + rng.below(3000);
    layer.send(src, dst, bytes, i);
    sentBytes += bytes;
  }
  rig.sim.run();
  EXPECT_EQ(deliveredBytes, sentBytes);
  EXPECT_EQ(layer.messagesDelivered(), 200u);
}

TEST(MessageLayer, HandlerMayChainSends) {
  Rig rig({{2, 2}, 2});
  MessageLayer layer(rig.network, MessageConfig{64, 16});
  int hops = 0;
  layer.setDeliveryHandler([&](const Message& m) {
    if (hops < 5) {
      hops += 1;
      layer.send(m.dst, (m.dst + 1) % rig.network.numNodes(), 128, 0);
    }
  });
  layer.send(0, 1, 128, 0);
  rig.sim.run();
  EXPECT_EQ(hops, 5);
  EXPECT_EQ(layer.messagesDelivered(), 6u);
}

TEST(Stencil, NeighborVolumesFollowAreaWeights) {
  Rig rig({{4, 4, 4}, 2});
  StencilConfig cfg;
  cfg.grid = {4, 4, 4};
  cfg.haloBytesPerNode = 152 * 100;  // weight total = 6*16+12*4+8*1 = 152
  StencilApp app(rig.network, cfg);
  const auto& bytes = app.neighborBytes();
  ASSERT_EQ(bytes.size(), 26u);
  std::uint64_t total = 0;
  int faces = 0, edges = 0, corners = 0;
  for (const auto b : bytes) {
    total += b;
    if (b == 1600) faces += 1;
    if (b == 400) edges += 1;
    if (b == 100) corners += 1;
  }
  EXPECT_EQ(faces, 6);
  EXPECT_EQ(edges, 12);
  EXPECT_EQ(corners, 8);
  EXPECT_EQ(total, cfg.haloBytesPerNode);
}

TEST(Stencil, CollectiveOnlyCompletes) {
  Rig rig({{3, 3}, 2});
  StencilConfig cfg;
  cfg.grid = {3, 3, 2};  // 18 processes on 18 nodes
  cfg.mode = StencilMode::kCollectiveOnly;
  cfg.iterations = 2;
  StencilApp app(rig.network, cfg);
  const auto r = app.run();
  EXPECT_GT(r.makespan, 0u);
  // P = 18 -> 5 rounds, 2 sends per round per proc, 2 iterations.
  EXPECT_EQ(r.messages, 18u * 5 * 2 * 2);
  EXPECT_EQ(rig.network.packetsOutstanding(), 0u);
}

TEST(Stencil, ExchangeOnlyCompletesAndCountsMessages) {
  Rig rig({{4, 4, 4}, 2}, "omniwar");
  StencilConfig cfg;
  cfg.grid = {8, 4, 4};  // 128 procs on 128 nodes
  cfg.mode = StencilMode::kExchangeOnly;
  cfg.iterations = 1;
  cfg.haloBytesPerNode = 4096;
  StencilApp app(rig.network, cfg);
  const auto r = app.run();
  EXPECT_EQ(r.messages, 128u * 26);
  EXPECT_GT(r.makespan, 0u);
  EXPECT_EQ(rig.network.packetsOutstanding(), 0u);
}

TEST(Stencil, FullAppRunsMultipleIterations) {
  Rig rig({{3, 3}, 2}, "dimwar");
  StencilConfig cfg;
  cfg.grid = {3, 3, 2};
  cfg.mode = StencilMode::kFull;
  cfg.iterations = 3;
  cfg.haloBytesPerNode = 2048;
  StencilApp app(rig.network, cfg);
  const auto r = app.run();
  EXPECT_GT(r.makespan, 0u);
  EXPECT_GT(r.exchangeCycles, 0u);
  EXPECT_GT(r.collectiveCycles, 0u);
  EXPECT_EQ(rig.network.packetsOutstanding(), 0u);
}

TEST(Stencil, MoreIterationsTakeLonger) {
  Tick t1 = 0, t3 = 0;
  for (const std::uint32_t iters : {1u, 3u}) {
    Rig rig({{3, 3}, 2});
    StencilConfig cfg;
    cfg.grid = {3, 3, 2};
    cfg.iterations = iters;
    cfg.haloBytesPerNode = 2048;
    StencilApp app(rig.network, cfg);
    (iters == 1 ? t1 : t3) = app.run().makespan;
  }
  EXPECT_GT(t3, 2 * t1 / 2);
  EXPECT_GT(t3, t1);
}

TEST(Stencil, RandomPlacementIsAPermutation) {
  Rig rig({{4, 4, 4}, 2});
  StencilConfig cfg;
  cfg.grid = {8, 4, 4};
  cfg.randomPlacement = true;
  StencilApp app(rig.network, cfg);
  std::set<NodeId> nodes;
  for (std::uint32_t p = 0; p < app.numProcesses(); ++p) {
    EXPECT_TRUE(nodes.insert(app.nodeOf(p)).second);
  }
  EXPECT_EQ(nodes.size(), 128u);
}

TEST(Stencil, PlacementSeedChangesMapping) {
  Rig rigA({{4, 4, 4}, 2});
  Rig rigB({{4, 4, 4}, 2});
  StencilConfig cfg;
  cfg.grid = {8, 4, 4};
  cfg.seed = 1;
  StencilApp a(rigA.network, cfg);
  cfg.seed = 2;
  StencilApp b(rigB.network, cfg);
  int same = 0;
  for (std::uint32_t p = 0; p < a.numProcesses(); ++p) {
    same += a.nodeOf(p) == b.nodeOf(p);
  }
  EXPECT_LT(same, 10);
}

TEST(Stencil, NonPeriodicBoundariesStillComplete) {
  Rig rig({{3, 3}, 2});
  StencilConfig cfg;
  cfg.grid = {3, 3, 2};
  cfg.periodic = false;
  cfg.mode = StencilMode::kExchangeOnly;
  cfg.haloBytesPerNode = 1024;
  StencilApp app(rig.network, cfg);
  const auto r = app.run();
  EXPECT_GT(r.makespan, 0u);
  // Fewer real neighbors than 26 per process at the boundaries.
  EXPECT_LT(r.messages, 18u * 26);
}

TEST(Stencil, DeterministicMakespan) {
  auto runOnce = [] {
    Rig rig({{3, 3}, 2}, "omniwar");
    StencilConfig cfg;
    cfg.grid = {3, 3, 2};
    cfg.haloBytesPerNode = 2048;
    cfg.seed = 9;
    StencilApp app(rig.network, cfg);
    return app.run().makespan;
  };
  EXPECT_EQ(runOnce(), runOnce());
}

}  // namespace
}  // namespace hxwar::app
