// Packet arena/slab contract: slot refs are stable identities across
// recycle, exhaustion grows by whole chunks without moving live packets, and
// double-recycle is a loud protocol violation in checked builds.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "net/network.h"
#include "net/packet_pool.h"
#include "routing/hyperx_routing.h"
#include "sim/simulator.h"
#include "topo/hyperx.h"

namespace hxwar::net {
namespace {

TEST(PacketPool, AllocStampsSlotAndResetsState) {
  PacketPool pool;
  const PacketRef ref = pool.alloc();
  Packet& pkt = pool.get(ref);
  EXPECT_EQ(pkt.slot, ref);
  EXPECT_EQ(pkt.hops, 0u);
  EXPECT_EQ(pkt.createdAt, 0u);
  EXPECT_EQ(pkt.ejectedAt, kTickInvalid);
  pkt.hops = 7;
  pkt.dst = 42;
  pool.recycle(ref);
  const PacketRef again = pool.alloc();
  EXPECT_EQ(again, ref) << "LIFO free list must reuse the hottest slot";
  EXPECT_EQ(pool.get(again).hops, 0u) << "alloc must fully reset the record";
  EXPECT_EQ(pool.get(again).slot, again);
}

TEST(PacketPool, SlotRefStableAcrossRecycle) {
  PacketPool pool;
  // A slot's ref is its identity: after recycle, the same storage hands the
  // same ref to its next tenant, and the address resolved from the ref never
  // changes.
  const PacketRef ref = pool.alloc();
  Packet* addr = &pool.get(ref);
  for (int round = 0; round < 5; ++round) {
    pool.recycle(ref);
    const PacketRef next = pool.alloc();
    EXPECT_EQ(next, ref);
    EXPECT_EQ(&pool.get(next), addr) << "slab addresses must be stable";
  }
}

TEST(PacketPool, ExhaustionGrowsByChunkWithoutMovingLivePackets) {
  PacketPool pool;
  std::vector<PacketRef> refs;
  std::vector<Packet*> addrs;
  // Drain the first chunk completely, then force growth and verify every
  // previously resolved address still points at its packet.
  const std::uint32_t more = PacketPool::kChunkSize + 16;
  for (std::uint32_t i = 0; i < more; ++i) {
    const PacketRef ref = pool.alloc();
    pool.get(ref).dst = i;
    refs.push_back(ref);
    addrs.push_back(&pool.get(ref));
  }
  EXPECT_EQ(pool.size(), 2 * PacketPool::kChunkSize) << "growth is whole chunks";
  EXPECT_EQ(pool.freeCount(), pool.size() - more);
  for (std::uint32_t i = 0; i < more; ++i) {
    EXPECT_EQ(&pool.get(refs[i]), addrs[i]) << "chunk addresses must never move";
    EXPECT_EQ(pool.get(refs[i]).dst, i);
  }
  // All refs must be distinct identities.
  std::vector<PacketRef> sorted = refs;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
}

TEST(PacketPool, ReuseCounterTracksRecycledSlotsOnly) {
  PacketPool pool;
  const PacketRef a = pool.alloc();
  const PacketRef b = pool.alloc();
  EXPECT_EQ(pool.reuses(), 0u) << "first tenants are not reuses";
  pool.recycle(a);
  pool.recycle(b);
  pool.alloc();
  pool.alloc();
  EXPECT_EQ(pool.reuses(), 2u);
}

TEST(PacketPoolDeathTest, DoubleRecycleAborts) {
#ifdef NDEBUG
  GTEST_SKIP() << "liveness bits are compiled out in NDEBUG builds";
#else
  PacketPool pool;
  const PacketRef ref = pool.alloc();
  pool.recycle(ref);
  EXPECT_DEATH(pool.recycle(ref), "double-recycle");
#endif
}

TEST(NetworkMemoryFootprint, PartsSumToTotalAndRatesAreConsistent) {
  sim::Simulator sim;
  topo::HyperX topo({{4, 4}, 2});
  auto routing = routing::makeHyperXRouting("dimwar", topo);
  net::Network network(sim, topo, *routing, net::NetworkConfig{});
  const auto fp = network.memoryFootprint();
  EXPECT_EQ(fp.totalBytes, fp.routersBytes + fp.terminalsBytes + fp.channelsBytes +
                               fp.packetPoolBytes + fp.miscBytes);
  EXPECT_GT(fp.routersBytes, 0u);
  EXPECT_GT(fp.terminalsBytes, 0u);
  EXPECT_GT(fp.channelsBytes, 0u);
  EXPECT_GT(fp.flitSlots, 0u);
  EXPECT_DOUBLE_EQ(fp.bytesPerTerminal,
                   static_cast<double>(fp.totalBytes) / network.numNodes());
  EXPECT_DOUBLE_EQ(fp.bytesPerFlitSlot,
                   static_cast<double>(fp.totalBytes) / fp.flitSlots);
}

TEST(NetworkMemoryFootprint, PaperScaleFitsBudget) {
  // The recorded budget for the 4,096-node 8x8x8 fig. 6 configuration
  // (BENCH_core.json memory_paper_* rows): idle structural memory measured
  // at ~12.1 MiB / ~3.1 KiB per terminal. The gate leaves 2x headroom so it
  // trips on structural regressions (a fattened per-VC record, eager buffer
  // allocation), not on small bookkeeping additions.
  sim::Simulator sim;
  topo::HyperX topo({{8, 8, 8}, 8});
  auto routing = routing::makeHyperXRouting("omniwar", topo);
  net::NetworkConfig cfg;
  cfg.channelLatencyRouter = 50;
  cfg.channelLatencyTerminal = 5;
  cfg.router.numVcs = 8;
  cfg.router.inputBufferDepth = 160;
  cfg.router.outputQueueDepth = 32;
  cfg.router.crossbarLatency = 50;
  cfg.router.inputSpeedup = 4;
  net::Network network(sim, topo, *routing, cfg);
  const auto fp = network.memoryFootprint();
  EXPECT_LE(fp.totalBytes, 32u * 1024 * 1024) << "paper-scale idle budget: 32 MiB";
  EXPECT_LE(fp.bytesPerTerminal, 8.0 * 1024) << "budget: 8 KiB per terminal";
}

}  // namespace
}  // namespace hxwar::net
