#include <gtest/gtest.h>

#include <set>

#include "net/network.h"
#include "routing/hyperx_routing.h"
#include "sim/simulator.h"
#include "topo/hyperx.h"

namespace hxwar::routing {
namespace {

// Harness that lets tests call route() against real routers without running
// the simulation.
struct Rig {
  explicit Rig(topo::HyperX::Params shape, const std::string& algorithm,
               HyperXRoutingOptions opts = {})
      : topo(shape),
        routing(makeHyperXRouting(algorithm, topo, opts)),
        network(sim, topo, *routing, net::NetworkConfig{}) {}

  std::vector<Candidate> routeAt(RouterId r, net::Packet& pkt, bool atSource,
                                 std::uint32_t inClass = 0, PortId inPort = 0) {
    std::vector<Candidate> out;
    // For non-source calls pick a representative VC of the class.
    const VcId inVc = atSource ? 0 : inClass;
    const RouteContext ctx{network.router(r), r, inPort, inVc, atSource,
                           atSource ? 0 : inClass};
    routing->route(ctx, pkt, out);
    return out;
  }

  net::Packet packet(NodeId src, NodeId dst) {
    net::Packet p;
    p.id = 1;
    p.src = src;
    p.dst = dst;
    p.sizeFlits = 1;
    return p;
  }

  sim::Simulator sim;
  topo::HyperX topo;
  std::unique_ptr<RoutingAlgorithm> routing;
  net::Network network;
};

topo::HyperX::Params shape444() { return {{4, 4, 4}, 2}; }

TEST(VcMap, SpreadsSparesAcrossClasses) {
  VcMap m(8, 2);
  EXPECT_EQ(m.vcsInClass(0), 4u);
  EXPECT_EQ(m.vcsInClass(1), 4u);
  EXPECT_EQ(m.classOf(0), 0u);
  EXPECT_EQ(m.classOf(5), 1u);
  EXPECT_EQ(m.vcOf(1, 2), 5u);
}

TEST(VcMap, UnevenSpareDistribution) {
  VcMap m(8, 6);
  EXPECT_EQ(m.vcsInClass(0), 2u);  // {0, 6}
  EXPECT_EQ(m.vcsInClass(1), 2u);  // {1, 7}
  EXPECT_EQ(m.vcsInClass(2), 1u);
  std::uint32_t total = 0;
  for (std::uint32_t c = 0; c < 6; ++c) total += m.vcsInClass(c);
  EXPECT_EQ(total, 8u);
}

TEST(Dor, SingleMinimalCandidateInDimensionOrder) {
  Rig rig(shape444(), "dor");
  auto pkt = rig.packet(0, rig.topo.routerAt({2, 3, 0}) * 2);
  const auto cands = rig.routeAt(0, pkt, true);
  ASSERT_EQ(cands.size(), 1u);
  const auto mv = rig.topo.portMove(0, cands[0].port);
  EXPECT_EQ(mv.dim, 0u);  // first unaligned dimension
  EXPECT_EQ(mv.toCoord, 2u);
  EXPECT_EQ(cands[0].vcClass, 0u);
  EXPECT_EQ(cands[0].hopsRemaining, 2u);
  EXPECT_FALSE(cands[0].deroute);
}

TEST(Dor, EjectsAtDestinationRouter) {
  Rig rig(shape444(), "dor");
  auto pkt = rig.packet(2, 1);  // dst node 1 on router 0
  const auto cands = rig.routeAt(0, pkt, false, 0, 4);
  ASSERT_FALSE(cands.empty());
  for (const auto& c : cands) {
    EXPECT_EQ(c.port, rig.topo.nodePort(1));
    EXPECT_EQ(c.hopsRemaining, 0u);
  }
}

TEST(Valiant, TwoPhasesUseOrderedClasses) {
  Rig rig(shape444(), "val");
  auto pkt = rig.packet(0, rig.topo.routerAt({3, 3, 3}) * 2);
  const auto phase1 = rig.routeAt(0, pkt, true);
  ASSERT_EQ(phase1.size(), 1u);
  EXPECT_EQ(phase1[0].vcClass, 0u);
  EXPECT_NE(pkt.intermediate, kRouterInvalid);
  // Pretend we arrived at the intermediate: phase 2 must use class 1.
  if (pkt.intermediate != rig.topo.nodeRouter(pkt.dst)) {
    auto cands = rig.routeAt(pkt.intermediate, pkt, false, 0, rig.topo.numPorts(0) - 1);
    ASSERT_FALSE(cands.empty());
    EXPECT_TRUE(pkt.phase2);
    EXPECT_EQ(cands[0].vcClass, 1u);
  }
}

TEST(Ugal, CommitsMinimalWhenUncongested) {
  Rig rig(shape444(), "ugal");
  // With an idle network the minimal path must win the weight comparison.
  for (int i = 0; i < 20; ++i) {
    auto pkt = rig.packet(0, rig.topo.routerAt({1, 1, 1}) * 2);
    const auto cands = rig.routeAt(0, pkt, true);
    ASSERT_EQ(cands.size(), 1u);
    EXPECT_TRUE(pkt.minimalCommitted);
    EXPECT_EQ(cands[0].vcClass, 1u);  // minimal rides the phase-2 class
  }
}

TEST(ClosAd, IntermediateRespectsLcaRule) {
  Rig rig(shape444(), "closad");
  // dst differs only in dimension 1: aligned dims 0 and 2 must stay aligned
  // in the chosen intermediate.
  const RouterId dst = rig.topo.routerAt({0, 3, 0});
  for (int i = 0; i < 50; ++i) {
    auto pkt = rig.packet(0, dst * 2);
    const auto cands = rig.routeAt(0, pkt, true);
    ASSERT_FALSE(cands.empty());
    ASSERT_NE(pkt.intermediate, kRouterInvalid);
    EXPECT_EQ(rig.topo.coord(pkt.intermediate, 0), 0u);
    EXPECT_EQ(rig.topo.coord(pkt.intermediate, 2), 0u);
  }
}

TEST(DimWar, MinimalPlusDeroutesInCurrentDimension) {
  Rig rig(shape444(), "dimwar");
  auto pkt = rig.packet(0, rig.topo.routerAt({2, 3, 0}) * 2);
  const auto cands = rig.routeAt(0, pkt, true);
  // Dimension 0 is current: 1 minimal + (4 - 2) deroutes.
  ASSERT_EQ(cands.size(), 3u);
  std::uint32_t minimal = 0, deroutes = 0;
  for (const auto& c : cands) {
    const auto mv = rig.topo.portMove(0, c.port);
    EXPECT_EQ(mv.dim, 0u) << "DimWAR must stay in the current dimension";
    if (c.deroute) {
      deroutes += 1;
      EXPECT_EQ(c.vcClass, 1u);
      EXPECT_EQ(c.hopsRemaining, 3u);
      EXPECT_NE(mv.toCoord, 2u);
    } else {
      minimal += 1;
      EXPECT_EQ(c.vcClass, 0u);
      EXPECT_EQ(c.hopsRemaining, 2u);
      EXPECT_EQ(mv.toCoord, 2u);
    }
  }
  EXPECT_EQ(minimal, 1u);
  EXPECT_EQ(deroutes, 2u);
}

TEST(DimWar, NoDerouteAfterDeroute) {
  Rig rig(shape444(), "dimwar");
  auto pkt = rig.packet(0, rig.topo.routerAt({2, 3, 0}) * 2);
  // Arriving on class 1 (just derouted) only the minimal hop is allowed.
  const auto cands = rig.routeAt(rig.topo.routerAt({1, 0, 0}), pkt, false, 1,
                                 rig.topo.numPorts(0) - 1);
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_FALSE(cands[0].deroute);
  EXPECT_EQ(cands[0].vcClass, 0u);
}

TEST(OmniWar, AllUnalignedDimensionsOffered) {
  Rig rig(shape444(), "omniwar");
  auto pkt = rig.packet(0, rig.topo.routerAt({2, 3, 1}) * 2);
  const auto cands = rig.routeAt(0, pkt, true);
  // 3 unaligned dims: 3 minimal + 3 * 2 deroutes (width 4: 2 lateral coords).
  std::uint32_t minimal = 0, deroutes = 0;
  std::set<std::uint32_t> dims;
  for (const auto& c : cands) {
    dims.insert(rig.topo.portMove(0, c.port).dim);
    EXPECT_EQ(c.vcClass, 0u);  // first hop = distance class 0
    c.deroute ? deroutes += 1 : minimal += 1;
  }
  EXPECT_EQ(minimal, 3u);
  EXPECT_EQ(deroutes, 6u);
  EXPECT_EQ(dims.size(), 3u);
}

TEST(OmniWar, DistanceClassIncrementsPerHop) {
  Rig rig(shape444(), "omniwar");
  auto pkt = rig.packet(0, rig.topo.routerAt({2, 3, 1}) * 2);
  const auto cands =
      rig.routeAt(rig.topo.routerAt({1, 0, 0}), pkt, false, 2, rig.topo.numPorts(0) - 1);
  for (const auto& c : cands) EXPECT_EQ(c.vcClass, 3u);
}

TEST(OmniWar, DeroutesForbiddenWhenClassesExhausted) {
  Rig rig(shape444(), "omniwar");  // numClasses = 3 + 3 = 6
  const RouterId dst = rig.topo.routerAt({2, 3, 1});
  auto pkt = rig.packet(0, dst * 2);
  // Arriving on class 4: next hop class 5 is the last; with 3 unaligned dims
  // this would violate the invariant, so use a dest 1 hop away instead.
  auto pkt1 = rig.packet(0, rig.topo.routerAt({2, 0, 0}) * 2);
  const auto cands = rig.routeAt(0, pkt1, false, 4, rig.topo.numPorts(0) - 1);
  for (const auto& c : cands) {
    EXPECT_FALSE(c.deroute) << "no distance classes left for a deroute";
  }
  (void)pkt;
}

TEST(OmniWar, MinAdIsZeroDerouteSpecialCase) {
  HyperXRoutingOptions opts;
  Rig rig(shape444(), "minad", opts);
  EXPECT_EQ(rig.routing->numClasses(), 3u);  // N classes
  auto pkt = rig.packet(0, rig.topo.routerAt({2, 3, 1}) * 2);
  const auto cands = rig.routeAt(0, pkt, true);
  for (const auto& c : cands) EXPECT_FALSE(c.deroute);
  EXPECT_EQ(cands.size(), 3u);  // one minimal per unaligned dim
}

TEST(OmniWar, BackToBackRestrictionBlocksSameDimension) {
  HyperXRoutingOptions opts;
  opts.omniRestrictBackToBack = true;
  Rig rig(shape444(), "omniwar", opts);
  // Packet arrived via a dimension-0 port and dim 0 is still unaligned => the
  // last hop was a deroute in dim 0; further dim-0 deroutes must be blocked.
  const RouterId cur = rig.topo.routerAt({1, 0, 0});
  auto pkt = rig.packet(0, rig.topo.routerAt({2, 3, 0}) * 2);
  const PortId inPort = rig.topo.dimPort(cur, 0, 0);  // came from coord 0
  const auto cands = rig.routeAt(cur, pkt, false, 0, inPort);
  for (const auto& c : cands) {
    if (!c.deroute) continue;
    EXPECT_NE(rig.topo.portMove(cur, c.port).dim, 0u);
  }
}

TEST(Info, Table1Properties) {
  topo::HyperX topo(shape444());
  const auto dimwar = makeHyperXRouting("dimwar", topo)->info();
  EXPECT_EQ(dimwar.name, "DimWAR");
  EXPECT_TRUE(dimwar.dimensionOrdered);
  EXPECT_EQ(dimwar.style, AlgorithmInfo::Style::kIncremental);
  EXPECT_EQ(dimwar.vcsRequired, "2");
  EXPECT_EQ(dimwar.packetContents, "none");

  const auto omni = makeHyperXRouting("omniwar", topo)->info();
  EXPECT_EQ(omni.name, "OmniWAR");
  EXPECT_FALSE(omni.dimensionOrdered);
  EXPECT_EQ(omni.vcsRequired, "N+M");

  const auto ugal = makeHyperXRouting("ugal", topo)->info();
  EXPECT_EQ(ugal.style, AlgorithmInfo::Style::kSource);
  EXPECT_EQ(ugal.packetContents, "int. addr.");
}

// Every algorithm must emit at least one candidate everywhere, with valid
// ports, classes within bounds, and hopsRemaining >= the true minimal.
class AllAlgorithms : public ::testing::TestWithParam<std::string> {};

TEST_P(AllAlgorithms, CandidatesAlwaysValid) {
  Rig rig(shape444(), GetParam());
  const std::uint32_t classes = rig.routing->numClasses();
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    const NodeId src = static_cast<NodeId>(rng.below(rig.topo.numNodes()));
    NodeId dst = static_cast<NodeId>(rng.below(rig.topo.numNodes()));
    if (dst == src) dst = (dst + 1) % rig.topo.numNodes();
    auto pkt = rig.packet(src, dst);
    const RouterId r = rig.topo.nodeRouter(src);
    const auto cands = rig.routeAt(r, pkt, true);
    ASSERT_FALSE(cands.empty());
    const std::uint32_t minHops = rig.topo.minHops(r, rig.topo.nodeRouter(dst));
    for (const auto& c : cands) {
      ASSERT_LT(c.port, rig.topo.numPorts(r));
      ASSERT_LT(c.vcClass, classes);
      if (minHops > 0) {
        EXPECT_GE(c.hopsRemaining, minHops);
        EXPECT_FALSE(rig.topo.isTerminalPort(c.port));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Algorithms, AllAlgorithms,
                         ::testing::Values("dor", "val", "minad", "ugal", "closad",
                                           "dimwar", "omniwar"));

}  // namespace
}  // namespace hxwar::routing
