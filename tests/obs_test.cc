// Observability layer tests: histogram buckets/percentiles, SampleStats edge
// cases, trace JSON round-trip, routing-decision counters, sampler rows, and
// the "observation does not perturb the simulation" invariant.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/spec.h"
#include "metrics/stats.h"
#include "obs/histogram.h"
#include "obs/json.h"
#include "obs/net_observer.h"
#include "obs/obs.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "obs/window.h"

namespace hxwar {
namespace {

// The Obs.* integration tests need the harness to attach a real observer;
// under -DHXWAR_OBS=OFF the hook sites compile out, so they skip instead.
#define HXWAR_REQUIRE_OBS() \
  if constexpr (!obs::kCompiledIn) GTEST_SKIP() << "built with HXWAR_OBS=OFF"

// Tiny spec with short steady-state windows so a full run stays in the
// tier-1 time budget.
harness::ExperimentSpec quickTinySpec(const std::string& routing, double load) {
  harness::ExperimentSpec spec = harness::scaleSpec("tiny");
  spec.routing = routing;
  spec.injection.rate = load;
  spec.steady.warmupWindow = 300;
  spec.steady.maxWarmupWindows = 8;
  spec.steady.measureWindow = 800;
  spec.steady.drainWindow = 3000;
  spec.steady.minMeasurePackets = 1;
  // 18 nodes at low load put only ~50 packets in each short window, so the
  // per-window accepted rate carries ~±13% sampling noise. Loosen the
  // saturation-detector tolerances: these tests exercise metric plumbing at
  // loads far below saturation, not the detector's discrimination.
  spec.steady.acceptedTol = 0.70;
  spec.steady.stabilityTol = 0.15;
  return spec;
}

TEST(LogHistogram, BucketEdgesArePowersOfTwo) {
  using obs::LogHistogram;
  EXPECT_EQ(LogHistogram::bucketOf(0.0), 0u);
  EXPECT_EQ(LogHistogram::bucketOf(0.9), 0u);
  EXPECT_EQ(LogHistogram::bucketOf(-5.0), 0u);   // clamps, no UB
  EXPECT_EQ(LogHistogram::bucketOf(std::nan("")), 0u);
  EXPECT_EQ(LogHistogram::bucketOf(1.0), 1u);    // [1, 2)
  EXPECT_EQ(LogHistogram::bucketOf(1.99), 1u);
  EXPECT_EQ(LogHistogram::bucketOf(2.0), 2u);    // [2, 4)
  EXPECT_EQ(LogHistogram::bucketOf(3.0), 2u);
  EXPECT_EQ(LogHistogram::bucketOf(4.0), 3u);    // [4, 8)
  EXPECT_EQ(LogHistogram::bucketOf(1e30), LogHistogram::kBuckets - 1);
  for (std::uint32_t b = 1; b < LogHistogram::kBuckets; ++b) {
    // Each bucket's low edge is the previous bucket's high edge: no gaps.
    EXPECT_EQ(LogHistogram::bucketLow(b), LogHistogram::bucketHigh(b - 1));
    // A value at the low edge lands in its own bucket, not the one below.
    if (b < 60) {
      EXPECT_EQ(LogHistogram::bucketOf(LogHistogram::bucketLow(b)), b);
    }
  }
}

TEST(LogHistogram, PercentilesAndMerge) {
  obs::LogHistogram h;
  EXPECT_EQ(h.percentile(0.5), 0.0);  // empty => 0.0 by convention
  for (int i = 0; i < 100; ++i) h.add(10.0);  // all in [8, 16)
  EXPECT_EQ(h.total(), 100u);
  EXPECT_GE(h.percentile(0.5), 8.0);
  EXPECT_LT(h.percentile(0.5), 16.0);
  EXPECT_LE(h.percentile(0.0), h.percentile(1.0));
  EXPECT_EQ(h.percentile(-1.0), h.percentile(0.0));  // clamps
  EXPECT_EQ(h.percentile(2.0), h.percentile(1.0));

  obs::LogHistogram tail;
  tail.add(1000.0);
  h.merge(tail);
  EXPECT_EQ(h.total(), 101u);
  EXPECT_GE(h.percentile(1.0), 512.0);  // the merged outlier owns p100
}

TEST(SampleStats, PercentileEdgeCases) {
  metrics::SampleStats s;
  // Empty: no order statistics; 0.0 by convention (documented in stats.h).
  EXPECT_EQ(s.percentile(0.0), 0.0);
  EXPECT_EQ(s.percentile(0.5), 0.0);
  EXPECT_EQ(s.percentile(1.0), 0.0);
  for (const double v : {5.0, 1.0, 9.0, 3.0, 7.0}) s.add(v);
  EXPECT_EQ(s.percentile(0.0), s.min());   // p0 == min
  EXPECT_EQ(s.percentile(1.0), s.max());   // p100 == max
  EXPECT_EQ(s.percentile(0.5), 5.0);       // nearest-rank median
  // Out-of-range p clamps instead of indexing out of bounds.
  EXPECT_EQ(s.percentile(-3.0), s.min());
  EXPECT_EQ(s.percentile(42.0), s.max());
}

TEST(Trace, ChromeJsonParsesBack) {
  obs::TraceBuffer buf;
  buf.add({obs::TraceKind::kBegin, 10, 7, 0, 5, 4, 0});
  buf.add({obs::TraceKind::kInject, 12, 7, 0, 0, 0, 0});
  buf.add({obs::TraceKind::kRoute, 15, 7, 2, 3, 1, 1u | (2u << 8)});  // deroute, dim 2
  buf.add({obs::TraceKind::kHop, 16, 7, 2, 1, 3, 0});
  buf.add({obs::TraceKind::kEnd, 40, 7, 0, 3, 1, 0});
  obs::TraceEvent counter{obs::TraceKind::kCounter, 50, 0, 4, 0, 0, 0};
  counter.v0 = 100.0;
  counter.v1 = 90.0;
  counter.v2 = 8.0;
  counter.v3 = 12.0;
  buf.add(counter);

  std::string body;
  obs::appendChromeJson(buf, 3, body);
  const std::string doc =
      "{\"traceEvents\":[" + obs::chromeProcessName(3, "point 0") + "," + body + "]}";

  obs::JsonValue root;
  std::string error;
  ASSERT_TRUE(obs::parseJson(doc, root, error)) << error << "\n" << doc;
  const obs::JsonValue* events = root.get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->isArray());
  // M + b + n(inject) + n(route) + n(hop) + e + two C tracks.
  ASSERT_EQ(events->array.size(), 8u);

  const obs::JsonValue& route = events->array[3];
  EXPECT_EQ(route.get("name")->string, "route");
  EXPECT_EQ(route.get("ph")->string, "n");
  EXPECT_EQ(route.get("pid")->number, 3.0);
  EXPECT_EQ(route.get("args")->get("verdict")->string, "deroute");
  EXPECT_EQ(route.get("args")->get("dim")->number, 2.0);

  const obs::JsonValue& end = events->array[5];
  EXPECT_EQ(end.get("ph")->string, "e");
  EXPECT_EQ(end.get("args")->get("hops")->number, 3.0);

  const obs::JsonValue& flits = events->array[6];
  EXPECT_EQ(flits.get("ph")->string, "C");
  EXPECT_EQ(flits.get("args")->get("injected")->number, 100.0);
  EXPECT_EQ(flits.get("args")->get("credit_stalls")->number, 4.0);
}

TEST(Json, RejectsMalformedInput) {
  obs::JsonValue v;
  std::string error;
  EXPECT_FALSE(obs::parseJson("{\"a\":", v, error));
  EXPECT_FALSE(obs::parseJson("{} trailing", v, error));
  EXPECT_FALSE(obs::parseJson("", v, error));
  EXPECT_TRUE(obs::parseJson("{\"a\":[1,2.5,-3e2],\"b\":{\"c\":null,\"d\":true}}", v,
                             error))
      << error;
  EXPECT_EQ(v.get("a")->array.size(), 3u);
  EXPECT_TRUE(v.get("b")->get("c")->isNull());
}

TEST(Registry, CounterSlotsAreStable) {
  obs::Registry reg;
  std::uint64_t* a = reg.counter("a");
  *a = 5;
  // Force growth; the first slot's address must survive.
  for (int i = 0; i < 100; ++i) reg.counter("slot" + std::to_string(i));
  EXPECT_EQ(reg.counter("a"), a);
  EXPECT_EQ(*reg.counter("a"), 5u);
  reg.gauge("g", [] { return 2.5; });
  ASSERT_NE(reg.findGauge("g"), nullptr);
  EXPECT_EQ((*reg.findGauge("g"))(), 2.5);
  EXPECT_EQ(reg.findGauge("missing"), nullptr);
  const auto counters = reg.counters();
  ASSERT_FALSE(counters.empty());
  EXPECT_EQ(counters[0].name, "a");  // registration order
  EXPECT_EQ(counters[0].value, 5u);
}

// Valiant commits every source-routed packet to exactly one intermediate:
// one path-level deroute per packet, zero hop-level deroute flags.
TEST(Obs, ValiantCountsOnePathDeroutePerPacket) {
  HXWAR_REQUIRE_OBS();
  harness::ExperimentSpec spec = quickTinySpec("val", 0.1);
  spec.obs.traceOut = "unused";  // enables the observer; no file is written here
  harness::Experiment exp(spec);
  net::Network& network = exp.network();
  const topo::Topology& topology = exp.topology();

  std::uint64_t injected = 0;
  for (NodeId s = 0; s < network.numNodes(); ++s) {
    const NodeId d = (s + 5) % network.numNodes();
    if (topology.nodeRouter(s) == topology.nodeRouter(d)) continue;
    network.injectPacket(s, d, 4);
    injected += 1;
  }
  ASSERT_GT(injected, 0u);
  exp.sim().run();
  ASSERT_EQ(network.packetsEjected(), injected);

  ASSERT_NE(exp.observer(), nullptr);
  const obs::RoutingCounters rc = exp.observer()->routingCounters();
  EXPECT_EQ(rc.pathDeroutes, injected);
  EXPECT_EQ(rc.derouteGrants, 0u);  // VAL's phases are hop-minimal
  EXPECT_GT(rc.decisions, 0u);
}

// The observer's deroute-grant counter and the routers' per-port counters see
// the same grants.
TEST(Obs, DerouteGrantsMatchRouterPortCounters) {
  HXWAR_REQUIRE_OBS();
  harness::ExperimentSpec spec = quickTinySpec("dimwar", 0.35);
  spec.obs.metricsJson = "unused";
  harness::Experiment exp(spec);
  exp.run();

  net::Network& network = exp.network();
  std::uint64_t portGrants = 0;
  for (RouterId r = 0; r < network.numRouters(); ++r) {
    for (PortId p = 0; p < network.router(r).numPorts(); ++p) {
      portGrants += network.router(r).portDeroutesGranted(p);
    }
  }
  ASSERT_NE(exp.observer(), nullptr);
  const obs::RoutingCounters rc = exp.observer()->routingCounters();
  EXPECT_EQ(rc.derouteGrants, portGrants);

  // Every grant lands in exactly one VC bucket.
  std::uint64_t vcSum = 0;
  for (const std::uint64_t v : rc.grantsByVc) vcSum += v;
  EXPECT_EQ(vcSum, rc.decisions);

  // Every taken deroute is attributed to exactly one dimension slot.
  std::uint64_t dimSum = 0;
  for (const std::uint64_t v : rc.derouteTakenByDim) dimSum += v;
  EXPECT_EQ(dimSum, rc.derouteGrants);
}

// Histograms, tail percentiles, and per-dimension counters populate for all
// seven HyperX algorithms of the paper.
TEST(Obs, MetricsPopulateForAllAlgorithms) {
  HXWAR_REQUIRE_OBS();
  const std::vector<std::string> algorithms = {"dor",    "val",    "minad", "ugal",
                                               "closad", "dimwar", "omniwar"};
  for (const std::string& algo : algorithms) {
    SCOPED_TRACE(algo);
    harness::ExperimentSpec spec = quickTinySpec(algo, 0.1);
    spec.obs.metricsJson = "unused";
    harness::Experiment exp(spec);
    const metrics::SteadyStateResult r = exp.run();
    ASSERT_FALSE(r.saturated);
    EXPECT_GT(r.packetsMeasured, 0u);
    EXPECT_GT(r.latencyP50, 0.0);
    EXPECT_GE(r.latencyP90, r.latencyP50);
    EXPECT_GE(r.latencyP99, r.latencyP90);
    EXPECT_GE(r.latencyP999, r.latencyP99);
    EXPECT_LE(r.latencyP999, r.latencyMax);
    EXPECT_EQ(r.latencyHistogram.total(), r.packetsMeasured);
    std::uint64_t hopPackets = 0;
    for (const auto& h : r.hopLatency) hopPackets += h.packets;
    EXPECT_EQ(hopPackets, r.packetsMeasured);
    EXPECT_GT(r.routing.decisions, 0u);
    // numDims() attributable slots + one unattributable tail slot.
    EXPECT_EQ(r.routing.derouteTakenByDim.size(), 3u);   // tiny = 2D HyperX
    EXPECT_EQ(r.routing.derouteRefusedByDim.size(), 3u);
    EXPECT_EQ(r.routing.grantsByVc.size(), spec.net.router.numVcs);
  }
}

// Attaching the observer (tracing every packet + sampling) must not change a
// single measured value: observation reads simulation state, never drives it.
TEST(Obs, ObserverDoesNotPerturbTheSimulation) {
  HXWAR_REQUIRE_OBS();
  const harness::ExperimentSpec base = quickTinySpec("dimwar", 0.25);

  harness::ExperimentSpec plain = base;
  harness::Experiment expPlain(plain);
  const metrics::SteadyStateResult a = expPlain.run();
  EXPECT_EQ(expPlain.observer(), nullptr);

  harness::ExperimentSpec observed = base;
  observed.obs.traceOut = "unused";
  observed.obs.traceSample = 1;
  observed.obs.sampleInterval = 100;
  harness::Experiment expObs(observed);
  const metrics::SteadyStateResult b = expObs.run();
  ASSERT_NE(expObs.observer(), nullptr);

  EXPECT_EQ(a.saturated, b.saturated);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.latencyMean, b.latencyMean);
  EXPECT_EQ(a.latencyP50, b.latencyP50);
  EXPECT_EQ(a.latencyP99, b.latencyP99);
  EXPECT_EQ(a.latencyP999, b.latencyP999);
  EXPECT_EQ(a.avgHops, b.avgHops);
  EXPECT_EQ(a.avgDeroutes, b.avgDeroutes);
  EXPECT_EQ(a.packetsMeasured, b.packetsMeasured);
  EXPECT_EQ(a.warmupCycles, b.warmupCycles);
  EXPECT_EQ(expPlain.sim().eventsProcessed() +
                expObs.observer()->samples().size(),
            expObs.sim().eventsProcessed())
      << "observer added events beyond the sampler's own ticks";
}

// The flight recorder's windows tile the run: contiguous [start, end) spans,
// indices from 0, and per-window count consistency (every delivered packet
// lands in exactly one window's latency histogram).
TEST(Obs, RecorderWindowsAreContiguousAndConsistent) {
  HXWAR_REQUIRE_OBS();
  harness::ExperimentSpec spec = quickTinySpec("dimwar", 0.25);
  spec.obs.windowTicks = 250;
  harness::Experiment exp(spec);
  exp.run();
  ASSERT_NE(exp.recorder(), nullptr);
  const std::vector<obs::WindowRecord>& ws = exp.recorder()->windows();
  ASSERT_GT(ws.size(), 2u);
  std::uint64_t ejected = 0;
  for (std::size_t i = 0; i < ws.size(); ++i) {
    SCOPED_TRACE("window " + std::to_string(i));
    const obs::WindowRecord& w = ws[i];
    EXPECT_EQ(w.index, i);
    EXPECT_EQ(w.start, i == 0 ? 0u : ws[i - 1].end);
    EXPECT_GT(w.end, w.start);
    // The windowed histogram and the packets_ejected delta count the same
    // completions, read at the same kEpsControl boundary.
    EXPECT_EQ(w.latency.total(), w.packetsEjected);
    EXPECT_EQ(w.vcOccupancy.size(), spec.net.router.numVcs);
    EXPECT_LE(w.hotLinks.size(), obs::FlightRecorder::kHotLinks);
    for (std::size_t j = 1; j < w.hotLinks.size(); ++j) {
      const obs::LinkWindowStat& a = w.hotLinks[j - 1];
      const obs::LinkWindowStat& b = w.hotLinks[j];
      EXPECT_TRUE(a.flits > b.flits ||
                  (a.flits == b.flits && a.stallTicks >= b.stallTicks))
          << "hot links not sorted at slot " << j;
    }
    ejected += w.packetsEjected;
  }
  EXPECT_GT(ejected, 0u);
  EXPECT_LE(ejected, exp.network().packetsEjected());
  // Serial run: no parallel engine, so no shard-balance records.
  EXPECT_TRUE(exp.recorder()->shardWindows().empty());
}

// Transient-fault kill/revive edges land as annotations in the windows that
// contain them.
TEST(Obs, RecorderAnnotatesTransientFaultEdges) {
  HXWAR_REQUIRE_OBS();
  harness::ExperimentSpec spec = quickTinySpec("dal", 0.2);
  spec.fault.rate = 0.06;
  spec.fault.seed = 99;
  spec.fault.drop = true;
  spec.fault.at = 500;
  spec.fault.until = 1400;
  spec.obs.windowTicks = 400;
  harness::Experiment exp(spec);
  exp.run();
  ASSERT_NE(exp.recorder(), nullptr);
  bool sawKill = false;
  bool sawRevive = false;
  for (const obs::WindowRecord& w : exp.recorder()->windows()) {
    for (const std::string& a : w.annotations) {
      if (a == "fault_kill tick=500") {
        EXPECT_TRUE(w.start < 500 && 500 <= w.end);
        sawKill = true;
      }
      if (a == "fault_revive tick=1400") {
        EXPECT_TRUE(w.start < 1400 && 1400 <= w.end);
        sawRevive = true;
      }
    }
  }
  EXPECT_TRUE(sawKill);
  EXPECT_TRUE(sawRevive);
}

// Attaching the flight recorder (with the sampler riding along) must not
// change a single measured value: recording reads simulation state only.
TEST(Obs, RecorderDoesNotPerturbTheSimulation) {
  HXWAR_REQUIRE_OBS();
  const harness::ExperimentSpec base = quickTinySpec("dimwar", 0.25);

  harness::Experiment expPlain(base);
  const metrics::SteadyStateResult a = expPlain.run();
  EXPECT_EQ(expPlain.recorder(), nullptr);

  harness::ExperimentSpec windowed = base;
  windowed.obs.windowTicks = 200;
  windowed.obs.sampleInterval = 100;
  harness::Experiment expWin(windowed);
  const metrics::SteadyStateResult b = expWin.run();
  ASSERT_NE(expWin.recorder(), nullptr);

  EXPECT_EQ(a.saturated, b.saturated);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.latencyMean, b.latencyMean);
  EXPECT_EQ(a.latencyP50, b.latencyP50);
  EXPECT_EQ(a.latencyP99, b.latencyP99);
  EXPECT_EQ(a.avgHops, b.avgHops);
  EXPECT_EQ(a.avgDeroutes, b.avgDeroutes);
  EXPECT_EQ(a.packetsMeasured, b.packetsMeasured);
  EXPECT_EQ(a.warmupCycles, b.warmupCycles);
}

TEST(Obs, SamplerRecordsMonotonicRows) {
  HXWAR_REQUIRE_OBS();
  harness::ExperimentSpec spec = quickTinySpec("dimwar", 0.2);
  spec.obs.sampleInterval = 250;
  harness::Experiment exp(spec);
  exp.run();
  ASSERT_NE(exp.observer(), nullptr);
  const std::vector<obs::SampleRow>& rows = exp.observer()->samples();
  ASSERT_GT(rows.size(), 2u);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].tick % 250, 0u);
    if (i == 0) continue;
    EXPECT_GT(rows[i].tick, rows[i - 1].tick);
    // Cumulative counters never regress.
    EXPECT_GE(rows[i].flitsInjected, rows[i - 1].flitsInjected);
    EXPECT_GE(rows[i].flitsEjected, rows[i - 1].flitsEjected);
    EXPECT_GE(rows[i].flitMovements, rows[i - 1].flitMovements);
    EXPECT_GE(rows[i].creditStalls, rows[i - 1].creditStalls);
  }
  EXPECT_GT(rows.back().flitsEjected, 0u);
}

}  // namespace
}  // namespace hxwar
