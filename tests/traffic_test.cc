#include <gtest/gtest.h>

#include <map>
#include <set>

#include "topo/hyperx.h"
#include "traffic/injector.h"
#include "routing/hyperx_routing.h"
#include "traffic/pattern.h"

namespace hxwar::traffic {
namespace {

topo::HyperX topo444() { return topo::HyperX({{4, 4, 4}, 4}); }

TEST(UniformRandom, NeverSelfAndCoversNodes) {
  UniformRandom ur(64);
  Rng rng(1);
  std::set<NodeId> seen;
  for (int i = 0; i < 5000; ++i) {
    const NodeId d = ur.dest(13, rng);
    EXPECT_NE(d, 13u);
    EXPECT_LT(d, 64u);
    seen.insert(d);
  }
  EXPECT_EQ(seen.size(), 63u);
}

TEST(BitComplement, IsAnInvolutionWithoutFixedPoints) {
  BitComplement bc(256);
  Rng rng(1);
  for (NodeId n = 0; n < 256; ++n) {
    const NodeId d = bc.dest(n, rng);
    EXPECT_NE(d, n);
    EXPECT_EQ(bc.dest(d, rng), n);
  }
}

TEST(BitComplement, ComplementsEveryCoordinate) {
  const auto topo = topo444();
  BitComplement bc(topo.numNodes());
  Rng rng(1);
  for (NodeId n = 0; n < topo.numNodes(); ++n) {
    const NodeId d = bc.dest(n, rng);
    const RouterId rs = topo.nodeRouter(n), rd = topo.nodeRouter(d);
    for (std::uint32_t dim = 0; dim < 3; ++dim) {
      EXPECT_EQ(topo.coord(rd, dim), 3u - topo.coord(rs, dim));
    }
  }
}

TEST(Urb, TargetDimensionComplementedOthersRandom) {
  const auto topo = topo444();
  UniformRandomBisection urby(topo, 1);
  Rng rng(2);
  const NodeId src = topo.routerAt({1, 3, 2}) * 4 + 1;
  std::set<std::uint32_t> xs, zs;
  for (int i = 0; i < 2000; ++i) {
    const NodeId d = urby.dest(src, rng);
    const RouterId rd = topo.nodeRouter(d);
    EXPECT_EQ(topo.coord(rd, 1), 0u);  // 3 -> complement 0
    xs.insert(topo.coord(rd, 0));
    zs.insert(topo.coord(rd, 2));
  }
  EXPECT_EQ(xs.size(), 4u);  // other dims cover the full width
  EXPECT_EQ(zs.size(), 4u);
}

TEST(Urb, NamesFollowAxis) {
  const auto topo = topo444();
  EXPECT_EQ(UniformRandomBisection(topo, 0).name(), "URBx");
  EXPECT_EQ(UniformRandomBisection(topo, 1).name(), "URBy");
  EXPECT_EQ(UniformRandomBisection(topo, 2).name(), "URBz");
}

TEST(Swap2, EvenTerminalsUseXOddUseY) {
  const auto topo = topo444();
  Swap2 s2(topo);
  Rng rng(3);
  for (NodeId n = 0; n < topo.numNodes(); ++n) {
    const NodeId d = s2.dest(n, rng);
    EXPECT_NE(d, n);
    const RouterId rs = topo.nodeRouter(n), rd = topo.nodeRouter(d);
    EXPECT_EQ(topo.nodePort(d), topo.nodePort(n));  // terminal preserved
    const std::uint32_t t = topo.nodePort(n);
    const std::uint32_t dim = (t % 2 == 0) ? 0 : 1;
    for (std::uint32_t k = 0; k < 3; ++k) {
      if (k == dim) {
        EXPECT_EQ(topo.coord(rd, k), 3u - topo.coord(rs, k));
      } else {
        EXPECT_EQ(topo.coord(rd, k), topo.coord(rs, k));
      }
    }
  }
}

TEST(Dcr, DestinationLineDependsOnlyOnSourceLine) {
  const auto topo = topo444();
  DimComplementReverse dcr(topo);
  Rng rng(4);
  // All terminals of the X-line (y=1, z=2) must target the Z-line
  // (x' = 3-1 = 2, y' = 3-2 = 1).
  for (std::uint32_t x = 0; x < 4; ++x) {
    for (std::uint32_t t = 0; t < 4; ++t) {
      const NodeId src = topo.routerAt({x, 1, 2}) * 4 + t;
      for (int i = 0; i < 50; ++i) {
        const NodeId d = dcr.dest(src, rng);
        EXPECT_NE(d, src);
        const RouterId rd = topo.nodeRouter(d);
        EXPECT_EQ(topo.coord(rd, 0), 2u);
        EXPECT_EQ(topo.coord(rd, 1), 1u);
      }
    }
  }
}

TEST(Dcr, IsAdmissible) {
  // Every destination must receive at most its injection rate: count
  // empirical arrivals per node under uniform sampling of sources.
  const auto topo = topo444();
  DimComplementReverse dcr(topo);
  Rng rng(5);
  std::map<NodeId, int> arrivals;
  constexpr int kPerSource = 256;
  for (NodeId src = 0; src < topo.numNodes(); ++src) {
    for (int i = 0; i < kPerSource; ++i) arrivals[dcr.dest(src, rng)] += 1;
  }
  for (const auto& [node, count] : arrivals) {
    // Each Z-line (16 nodes) receives from exactly one X-line (16 sources):
    // expectation kPerSource with ~sqrt variance.
    EXPECT_NEAR(count, kPerSource, kPerSource * 0.35) << "node " << node;
  }
}

TEST(Transpose, RotatesCoordinates) {
  const auto topo = topo444();
  Transpose tp(topo);
  Rng rng(6);
  const NodeId src = topo.routerAt({1, 2, 3}) * 4 + 2;
  const NodeId d = tp.dest(src, rng);
  const RouterId rd = topo.nodeRouter(d);
  EXPECT_EQ(topo.coord(rd, 0), 2u);
  EXPECT_EQ(topo.coord(rd, 1), 3u);
  EXPECT_EQ(topo.coord(rd, 2), 1u);
}

TEST(RandomPermutation, IsAPermutationWithoutFixedPoints) {
  RandomPermutation rp(100, 77);
  Rng rng(7);
  std::set<NodeId> targets;
  for (NodeId n = 0; n < 100; ++n) {
    const NodeId d = rp.dest(n, rng);
    EXPECT_NE(d, n);
    targets.insert(d);
  }
  EXPECT_EQ(targets.size(), 100u);
}

TEST(Factory, AllNamesConstruct) {
  const auto topo = topo444();
  for (const char* name : {"ur", "bc", "urbx", "urby", "urbz", "s2", "dcr", "tp"}) {
    EXPECT_NE(makePattern(name, topo), nullptr) << name;
  }
}

TEST(Injector, OfferedRateMatchesConfig) {
  sim::Simulator sim;
  topo::HyperX topo({{2, 2}, 2});
  auto routing = routing::makeHyperXRouting("dor", topo);
  net::Network network(sim, topo, *routing, net::NetworkConfig{});
  UniformRandom pattern(topo.numNodes());
  SyntheticInjector::Params params;
  params.rate = 0.3;
  params.seed = 11;
  SyntheticInjector inj(sim, network, pattern, params);
  inj.start();
  sim.run(20000);
  inj.stop();
  const double offered = static_cast<double>(inj.offeredFlits()) /
                         (20000.0 * topo.numNodes());
  EXPECT_NEAR(offered, 0.3, 0.02);
}

TEST(Injector, NodeMaskRestrictsSources) {
  sim::Simulator sim;
  topo::HyperX topo({{2, 2}, 2});
  auto routing = routing::makeHyperXRouting("dor", topo);
  net::Network network(sim, topo, *routing, net::NetworkConfig{});
  std::set<NodeId> sources;
  net::CallbackListener cb190;
  cb190.ejected = [&](const net::Packet& p) { sources.insert(p.src); };
  network.setListener(&cb190);
  UniformRandom pattern(topo.numNodes());
  SyntheticInjector::Params params;
  params.rate = 0.5;
  params.nodeMask.assign(topo.numNodes(), 0);
  params.nodeMask[2] = 1;
  params.nodeMask[5] = 1;
  SyntheticInjector inj(sim, network, pattern, params);
  inj.start();
  sim.run(2000);
  inj.stop();
  sim.run();
  ASSERT_FALSE(sources.empty());
  for (const NodeId s : sources) EXPECT_TRUE(s == 2 || s == 5);
}

TEST(Injector, TwoInjectorsCoexist) {
  // Two jobs with disjoint node masks share one network (§3.2 setup).
  sim::Simulator sim;
  topo::HyperX topo({{2, 2}, 2});
  auto routing = routing::makeHyperXRouting("dimwar", topo);
  net::Network network(sim, topo, *routing, net::NetworkConfig{});
  UniformRandom pattern(topo.numNodes());
  SyntheticInjector::Params a;
  a.rate = 0.3;
  a.seed = 1;
  a.nodeMask.assign(topo.numNodes(), 0);
  SyntheticInjector::Params b = a;
  b.seed = 2;
  b.nodeMask.assign(topo.numNodes(), 0);
  for (NodeId n = 0; n < topo.numNodes(); ++n) {
    (n < topo.numNodes() / 2 ? a : b).nodeMask[n] = 1;
  }
  SyntheticInjector injA(sim, network, pattern, a);
  SyntheticInjector injB(sim, network, pattern, b);
  injA.start();
  injB.start();
  sim.run(3000);
  injA.stop();
  injB.stop();
  sim.run();
  EXPECT_GT(injA.offeredPackets(), 0u);
  EXPECT_GT(injB.offeredPackets(), 0u);
  EXPECT_EQ(network.packetsOutstanding(), 0u);
  EXPECT_EQ(network.flitsInjected(), injA.offeredFlits() + injB.offeredFlits());
}

TEST(Injector, PatternSwapMidRun) {
  sim::Simulator sim;
  topo::HyperX topo({{4, 4}, 1});
  auto routing = routing::makeHyperXRouting("dor", topo);
  net::Network network(sim, topo, *routing, net::NetworkConfig{});
  std::uint64_t bcPackets = 0, totalPackets = 0;
  BitComplement bc(topo.numNodes());
  Rng probe(1);
  net::CallbackListener cb245;
  cb245.ejected = [&](const net::Packet& p) {
    totalPackets += 1;
    if (p.dst == bc.dest(p.src, probe)) bcPackets += 1;
  };
  network.setListener(&cb245);
  UniformRandom ur(topo.numNodes());
  SyntheticInjector::Params params;
  params.rate = 0.3;
  SyntheticInjector inj(sim, network, ur, params);
  inj.start();
  sim.run(1500);
  const std::uint64_t beforeSwap = totalPackets;
  inj.setPattern(bc);
  sim.run(3000);
  inj.stop();
  sim.run();
  EXPECT_GT(beforeSwap, 0u);
  // After the swap every generated packet is a bit-complement pair.
  EXPECT_GT(bcPackets, (totalPackets - beforeSwap) / 2);
}

TEST(Injector, PacketSizesInRange) {
  sim::Simulator sim;
  topo::HyperX topo({{2, 2}, 2});
  auto routing = routing::makeHyperXRouting("dor", topo);
  net::Network network(sim, topo, *routing, net::NetworkConfig{});
  std::uint32_t minSeen = 1000, maxSeen = 0;
  net::CallbackListener cb271;
  cb271.ejected = [&](const net::Packet& p) {
    minSeen = std::min(minSeen, p.sizeFlits);
    maxSeen = std::max(maxSeen, p.sizeFlits);
  };
  network.setListener(&cb271);
  UniformRandom pattern(topo.numNodes());
  SyntheticInjector::Params params;
  params.rate = 0.4;
  params.minFlits = 2;
  params.maxFlits = 9;
  SyntheticInjector inj(sim, network, pattern, params);
  inj.start();
  sim.run(5000);
  inj.stop();
  sim.run();
  EXPECT_GE(minSeen, 2u);
  EXPECT_LE(maxSeen, 9u);
}

}  // namespace
}  // namespace hxwar::traffic
