// Path-structure property tests via the hop-trace hook: reconstruct every
// packet's router path and verify the structural rules each algorithm
// promises — the strongest behavioural check of the §5 algorithms.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "net/network.h"
#include "routing/hyperx_routing.h"
#include "sim/simulator.h"
#include "topo/hyperx.h"
#include "traffic/injector.h"
#include "traffic/pattern.h"

namespace hxwar {
namespace {

struct Hop {
  RouterId router;
  std::uint32_t dim;       // dimension moved (or kInvalid for ejection)
  std::uint32_t toCoord;
  bool lateral;            // coordinate != destination coordinate (deroute)
};

constexpr std::uint32_t kEject = 0xffffffffu;

class PathRecorder final : public net::NetListener {
 public:
  PathRecorder(net::Network& network, const topo::HyperX& topo) : topo_(topo) {
    network.setHopListener(this);
  }

  void onHop(const net::Packet& p, RouterId r, PortId, PortId outPort, Tick) override {
    Hop hop{r, kEject, 0, false};
    if (!topo_.isTerminalPort(outPort)) {
      const auto mv = topo_.portMove(r, outPort);
      hop.dim = mv.dim;
      hop.toCoord = mv.toCoord;
      hop.lateral = mv.toCoord != topo_.coord(topo_.nodeRouter(p.dst), mv.dim);
    }
    paths_[p.id].push_back(hop);
  }

  const std::map<PacketId, std::vector<Hop>>& paths() const { return paths_; }

 private:
  const topo::HyperX& topo_;
  std::map<PacketId, std::vector<Hop>> paths_;
};

struct Rig {
  Rig(const std::string& algorithm, const std::string& pattern, double rate)
      : topo({{4, 4, 4}, 2}),
        routing(routing::makeHyperXRouting(algorithm, topo)),
        network(sim, topo, *routing, net::NetworkConfig{}),
        recorder(network, topo),
        trafficPattern(traffic::makePattern(pattern, topo)) {
    traffic::SyntheticInjector::Params params;
    params.rate = rate;
    params.seed = 0xabc;
    injector = std::make_unique<traffic::SyntheticInjector>(sim, network, *trafficPattern,
                                                            params);
    injector->start();
    sim.run(1500);
    injector->stop();
    sim.run();
    EXPECT_EQ(network.packetsOutstanding(), 0u);
  }

  sim::Simulator sim;
  topo::HyperX topo;
  std::unique_ptr<routing::RoutingAlgorithm> routing;
  net::Network network;
  PathRecorder recorder;
  std::unique_ptr<traffic::TrafficPattern> trafficPattern;
  std::unique_ptr<traffic::SyntheticInjector> injector;
};

TEST(PathStructure, DorVisitsDimensionsInStrictOrder) {
  Rig rig("dor", "ur", 0.5);
  ASSERT_FALSE(rig.recorder.paths().empty());
  for (const auto& [id, path] : rig.recorder.paths()) {
    std::int64_t lastDim = -1;
    for (const auto& hop : path) {
      if (hop.dim == kEject) continue;
      EXPECT_FALSE(hop.lateral) << "DOR must never deroute";
      EXPECT_GT(static_cast<std::int64_t>(hop.dim), lastDim)
          << "DOR revisited a dimension (packet " << id << ")";
      lastDim = hop.dim;
    }
  }
}

TEST(PathStructure, DimWarDimensionsNonDecreasingWithSingleDeroutes) {
  Rig rig("dimwar", "bc", 0.6);  // BC forces heavy derouting
  ASSERT_FALSE(rig.recorder.paths().empty());
  std::uint64_t lateralSeen = 0;
  for (const auto& [id, path] : rig.recorder.paths()) {
    std::int64_t lastDim = -1;
    bool prevLateral = false;
    for (const auto& hop : path) {
      if (hop.dim == kEject) continue;
      // Dimension order: never return to an earlier dimension.
      EXPECT_GE(static_cast<std::int64_t>(hop.dim), lastDim)
          << "DimWAR moved backwards in dimension order (packet " << id << ")";
      if (hop.lateral) {
        lateralSeen += 1;
        // A deroute is always the first hop taken in its dimension and can
        // never directly follow another deroute.
        EXPECT_FALSE(prevLateral) << "back-to-back deroutes (packet " << id << ")";
        EXPECT_GT(static_cast<std::int64_t>(hop.dim), lastDim)
            << "deroute was not the first hop in its dimension";
      }
      prevLateral = hop.lateral;
      lastDim = hop.dim;
    }
  }
  EXPECT_GT(lateralSeen, 0u) << "bit complement should force deroutes";
}

TEST(PathStructure, OmniWarOnlyMovesInUnalignedDimensions) {
  Rig rig("omniwar", "bc", 0.6);
  ASSERT_FALSE(rig.recorder.paths().empty());
  for (const auto& [id, path] : rig.recorder.paths()) {
    // Replay the path and check every move happens in a then-unaligned dim.
    if (path.empty()) continue;
    RouterId cur = path.front().router;
    // Identify the destination from the final hop's router + move.
    for (const auto& hop : path) {
      if (hop.dim == kEject) break;
      EXPECT_EQ(hop.router, cur) << "path discontinuity (packet " << id << ")";
      cur = rig.topo.neighbor(cur, hop.dim, hop.toCoord);
    }
    // The last recorded hop must be the ejection at the destination router.
    EXPECT_EQ(path.back().dim, kEject);
    const RouterId dst = path.back().router;
    RouterId replay = path.front().router;
    for (const auto& hop : path) {
      if (hop.dim == kEject) break;
      EXPECT_NE(rig.topo.coord(replay, hop.dim), rig.topo.coord(dst, hop.dim))
          << "OmniWAR moved in an aligned dimension (packet " << id << ")";
      replay = rig.topo.neighbor(replay, hop.dim, hop.toCoord);
    }
    EXPECT_EQ(replay, dst);
  }
}

TEST(PathStructure, ValiantPassesThroughTheIntermediate) {
  // VAL paths are two DOR phases; verify each packet's path is contiguous
  // and at most 2N hops on this 3D network.
  Rig rig("val", "ur", 0.4);
  for (const auto& [id, path] : rig.recorder.paths()) {
    std::size_t moves = 0;
    for (const auto& hop : path) {
      if (hop.dim != kEject) moves += 1;
    }
    EXPECT_LE(moves, 6u) << "VAL exceeded 2N hops (packet " << id << ")";
  }
}

TEST(PathStructure, TraceAgreesWithPacketHopCounters) {
  // Independent cross-check: the per-packet hops counter (incremented by the
  // router) must equal the number of router-to-router moves in the trace.
  sim::Simulator sim;
  topo::HyperX topo({{4, 4, 4}, 2});
  auto routing = routing::makeHyperXRouting("omniwar", topo);
  net::Network network(sim, topo, *routing, net::NetworkConfig{});
  PathRecorder recorder(network, topo);
  std::map<PacketId, std::pair<std::uint16_t, std::uint16_t>> counters;
  net::CallbackListener cb171;
  cb171.ejected = [&](const net::Packet& p) {
    counters[p.id] = {p.hops, p.deroutes};
  };
  network.setListener(&cb171);
  auto pattern = traffic::makePattern("bc", topo);
  traffic::SyntheticInjector::Params params;
  params.rate = 0.5;
  traffic::SyntheticInjector injector(sim, network, *pattern, params);
  injector.start();
  sim.run(1000);
  injector.stop();
  sim.run();
  ASSERT_FALSE(counters.empty());
  for (const auto& [id, hopsDeroutes] : counters) {
    const auto it = recorder.paths().find(id);
    ASSERT_NE(it, recorder.paths().end());
    std::uint32_t moves = 0, laterals = 0;
    for (const auto& hop : it->second) {
      if (hop.dim == kEject) continue;
      moves += 1;
      laterals += hop.lateral ? 1 : 0;
    }
    EXPECT_EQ(moves, hopsDeroutes.first) << "packet " << id;
    EXPECT_EQ(laterals, hopsDeroutes.second) << "packet " << id;
  }
}

}  // namespace
}  // namespace hxwar
