#!/usr/bin/env python3
"""Guard the event-core perf trajectory against silent regressions.

Runs the micro_core benchmark binary (or takes an existing output file) and
compares its hand-timed baseline numbers against the committed
BENCH_core.json. Throughput-style keys (events/sec, packets/sec) must not
fall below baseline * (1 - tolerance).

The default tolerance is deliberately loose: shared CI machines jitter by
tens of percent, and this gate exists to catch order-of-magnitude mistakes
(an accidentally quadratic queue, a lost fast path), not single-digit drift.
Wired as a non-tier-1 ctest (label: bench) so correctness runs stay fast.

Usage:
  check_bench_regression.py --baseline BENCH_core.json --micro-core build/bench/micro_core
  check_bench_regression.py --baseline BENCH_core.json --fresh fresh.json
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

# Higher-is-better keys checked against the committed baseline. Ratio-style
# keys (speedups, overheads) are reported but never gate: they divide two
# noisy numbers.
THROUGHPUT_KEYS = [
    "end_to_end_events_per_sec",
    "packet_alloc_pooled_per_sec",
    "topology_lookup_raw_per_sec",
    "par_scaling_pj1_events_per_sec",
]

# Reported for visibility, never gating: par_scaling_speedup_pj4 divides two
# noisy throughputs and only exceeds 1x when the machine has cores to back
# the shards (par_scaling_cores records what the run had).
REPORT_KEYS = [
    "par_scaling_cores",
    "par_scaling_speedup_pj4",
    "par_scaling_pj4_events_per_sec",
]

# Exact-invariant keys gated at zero, independent of --tolerance: these are
# correctness counts wearing a perf-trajectory hat. fault_escape_dropped is
# the number of packets ftar dropped on a connected escape-only degraded
# network (BENCH_core.json, bench/micro_core.cc) — the delivery guarantee
# says exactly zero, so any nonzero value fails the gate outright.
ZERO_KEYS = [
    "fault_escape_dropped",
]

# Lower-is-better memory-budget keys: idle structural bytes of a freshly
# built network. These are deterministic (sizeof arithmetic, not timers), so
# the ceiling is tight — growth past baseline * (1 + MEMORY_TOLERANCE) means
# someone fattened a hot structure.
MEMORY_KEYS = [
    "memory_paper_bytes_per_terminal",
    "memory_paper_bytes_per_flit_slot",
    "memory_small_bytes_per_terminal",
]
MEMORY_TOLERANCE = 0.10


def run_micro_core(binary: str) -> dict:
    """Runs micro_core (skipping google-benchmark suites) in a temp dir and
    returns its freshly written BENCH_core.json."""
    with tempfile.TemporaryDirectory() as tmp:
        subprocess.run(
            [os.path.abspath(binary), "--benchmark_filter=NONE"],
            cwd=tmp,
            check=True,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        with open(os.path.join(tmp, "BENCH_core.json"), encoding="utf-8") as f:
            return json.load(f)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True, help="committed BENCH_core.json")
    ap.add_argument("--fresh", help="pre-generated fresh BENCH_core.json")
    ap.add_argument("--micro-core", help="micro_core binary to run for fresh numbers")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=0.5,
        help="allowed fractional drop below baseline (default 0.5)",
    )
    args = ap.parse_args()

    if not args.fresh and not args.micro_core:
        ap.error("need --fresh or --micro-core")

    with open(args.baseline, encoding="utf-8") as f:
        baseline = json.load(f)
    if args.fresh:
        with open(args.fresh, encoding="utf-8") as f:
            fresh = json.load(f)
    else:
        fresh = run_micro_core(args.micro_core)

    failures = []
    for key in THROUGHPUT_KEYS:
        if key not in baseline:
            print(f"note: baseline lacks {key}; skipping")
            continue
        if key not in fresh:
            failures.append(f"{key}: missing from fresh run")
            continue
        base, now = float(baseline[key]), float(fresh[key])
        floor = base * (1.0 - args.tolerance)
        ratio = now / base if base > 0 else float("inf")
        status = "OK " if now >= floor else "REGRESSION"
        print(f"{status} {key}: fresh {now:,.0f} vs baseline {base:,.0f} ({ratio:.2f}x)")
        if now < floor:
            failures.append(
                f"{key}: {now:,.0f} < floor {floor:,.0f} "
                f"(baseline {base:,.0f}, tolerance {args.tolerance:.0%})"
            )

    for key in MEMORY_KEYS:
        if key not in baseline:
            print(f"note: baseline lacks {key}; skipping")
            continue
        if key not in fresh:
            failures.append(f"{key}: missing from fresh run")
            continue
        base, now = float(baseline[key]), float(fresh[key])
        ceiling = base * (1.0 + MEMORY_TOLERANCE)
        ratio = now / base if base > 0 else float("inf")
        status = "OK " if now <= ceiling else "REGRESSION"
        print(f"{status} {key}: fresh {now:,.1f} vs baseline {base:,.1f} ({ratio:.2f}x)")
        if now > ceiling:
            failures.append(
                f"{key}: {now:,.1f} > ceiling {ceiling:,.1f} "
                f"(baseline {base:,.1f}, tolerance {MEMORY_TOLERANCE:.0%})"
            )

    for key in ZERO_KEYS:
        if key not in baseline:
            print(f"note: baseline lacks {key}; skipping")
            continue
        if key not in fresh:
            failures.append(f"{key}: missing from fresh run")
            continue
        now = float(fresh[key])
        status = "OK " if now == 0 else "REGRESSION"
        print(f"{status} {key}: fresh {now:,.0f} (must be exactly 0)")
        if now != 0:
            failures.append(f"{key}: {now:,.0f} != 0 (delivery guarantee broken)")

    for key in REPORT_KEYS:
        if key in fresh:
            base = f" (baseline {float(baseline[key]):,.2f})" if key in baseline else ""
            print(f"INFO {key}: {float(fresh[key]):,.2f}{base}")

    if failures:
        print("\nbench regression gate FAILED:")
        for f in failures:
            print(f"  {f}")
        return 1
    print("\nbench regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
