#!/usr/bin/env python3
"""Guard the event-core perf trajectory against silent regressions.

Runs the micro_core benchmark binary (or takes an existing output file) and
compares its hand-timed baseline numbers against the committed
BENCH_core.json, printing one delta table covering every gated and reported
key. A failing run names each offending key together with the threshold it
crossed — never just the first failure.

Gate classes:
  throughput  higher-is-better; fresh must stay above baseline*(1-tolerance)
  memory      lower-is-better deterministic bytes; ceiling baseline*(1+10%)
  zero        exact correctness counts that must be 0 (delivery guarantees)
  overhead    ratio keys gated against an absolute ceiling, independent of
              the baseline (the detached flight recorder must stay ~ noise)
  report      visibility only, never gating (ratios of two noisy numbers)

The default tolerance is deliberately loose: shared CI machines jitter by
tens of percent, and this gate exists to catch order-of-magnitude mistakes
(an accidentally quadratic queue, a lost fast path), not single-digit drift.
Wired as a non-tier-1 ctest (label: bench) so correctness runs stay fast.

Usage:
  check_bench_regression.py --baseline BENCH_core.json --micro-core build/bench/micro_core
  check_bench_regression.py --baseline BENCH_core.json --fresh fresh.json
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

# Higher-is-better keys checked against the committed baseline.
THROUGHPUT_KEYS = [
    "end_to_end_events_per_sec",
    "packet_alloc_pooled_per_sec",
    "topology_lookup_raw_per_sec",
    "par_scaling_pj1_events_per_sec",
]

# Reported for visibility, never gating: speedups and attached-recorder
# overheads divide two noisy throughputs, and par_scaling_speedup_pj4 only
# exceeds 1x when the machine has cores to back the shards
# (par_scaling_cores records what the run had).
REPORT_KEYS = [
    "par_scaling_cores",
    "par_scaling_speedup_pj4",
    "par_scaling_pj4_events_per_sec",
    "obs_timeline_overhead",
    "obs_timeline_paper_events_per_sec",
    "obs_timeline_paper_overhead",
]

# Exact-invariant keys gated at zero, independent of --tolerance: these are
# correctness counts wearing a perf-trajectory hat. fault_escape_dropped is
# the number of packets ftar dropped on a connected escape-only degraded
# network (BENCH_core.json, bench/micro_core.cc) — the delivery guarantee
# says exactly zero, so any nonzero value fails the gate outright.
ZERO_KEYS = [
    "fault_escape_dropped",
]

# Lower-is-better memory-budget keys: idle structural bytes of a freshly
# built network. These are deterministic (sizeof arithmetic, not timers), so
# the ceiling is tight — growth past baseline * (1 + MEMORY_TOLERANCE) means
# someone fattened a hot structure.
MEMORY_KEYS = [
    "memory_paper_bytes_per_terminal",
    "memory_paper_bytes_per_flit_slot",
    "memory_small_bytes_per_terminal",
]
MEMORY_TOLERANCE = 0.10

# Ratio keys gated against an absolute ceiling (not the baseline): the
# windowed observer with no recorder draining it adds one histogram bucket
# increment per delivered packet, so its end-to-end overhead must stay at
# noise level. The ceiling is generous because it divides two noisy
# throughputs, but a recorder hook accidentally left hot would blow past it.
OVERHEAD_CEILING_KEYS = {
    "obs_timeline_detached_overhead": 1.5,
}


def run_micro_core(binary: str) -> dict:
    """Runs micro_core (skipping google-benchmark suites) in a temp dir and
    returns its freshly written BENCH_core.json."""
    with tempfile.TemporaryDirectory() as tmp:
        subprocess.run(
            [os.path.abspath(binary), "--benchmark_filter=NONE"],
            cwd=tmp,
            check=True,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        with open(os.path.join(tmp, "BENCH_core.json"), encoding="utf-8") as f:
            return json.load(f)


def build_rows(baseline: dict, fresh: dict, tolerance: float):
    """One row per key across every gate class: (key, kind, baseline, fresh,
    threshold-description, failure-message-or-None)."""
    rows = []

    def values(key, kind):
        if key not in baseline and kind != "overhead":
            rows.append((key, kind, None, None, "", None))
            return None, None
        if key not in fresh:
            rows.append((key, kind, baseline.get(key), None, "",
                         f"{key}: missing from fresh run"))
            return None, None
        return (float(baseline[key]) if key in baseline else None,
                float(fresh[key]))

    for key in THROUGHPUT_KEYS:
        base, now = values(key, "throughput")
        if now is None:
            continue
        floor = base * (1.0 - tolerance)
        failure = None
        if now < floor:
            failure = (f"{key}: {now:,.0f} < floor {floor:,.0f} "
                       f"(baseline {base:,.0f}, tolerance {tolerance:.0%})")
        rows.append((key, "throughput", base, now, f">= {floor:,.0f}", failure))

    for key in MEMORY_KEYS:
        base, now = values(key, "memory")
        if now is None:
            continue
        ceiling = base * (1.0 + MEMORY_TOLERANCE)
        failure = None
        if now > ceiling:
            failure = (f"{key}: {now:,.1f} > ceiling {ceiling:,.1f} "
                       f"(baseline {base:,.1f}, tolerance {MEMORY_TOLERANCE:.0%})")
        rows.append((key, "memory", base, now, f"<= {ceiling:,.1f}", failure))

    for key in ZERO_KEYS:
        base, now = values(key, "zero")
        if now is None:
            continue
        failure = None
        if now != 0:
            failure = f"{key}: {now:,.0f} != 0 (delivery guarantee broken)"
        rows.append((key, "zero", base, now, "== 0", failure))

    for key, ceiling in OVERHEAD_CEILING_KEYS.items():
        base, now = values(key, "overhead")
        if now is None:
            continue
        failure = None
        if now > ceiling:
            failure = (f"{key}: {now:.3f} > absolute ceiling {ceiling:.2f} "
                       f"(detached recorder must stay ~ noise)")
        rows.append((key, "overhead", base, now, f"<= {ceiling:.2f}", failure))

    for key in REPORT_KEYS:
        if key in fresh:
            rows.append((key, "report", float(baseline[key]) if key in baseline else None,
                         float(fresh[key]), "", None))
    return rows


def print_table(rows):
    header = (f"{'status':10} {'kind':10} {'key':48} "
              f"{'baseline':>16} {'fresh':>16} {'ratio':>7}  gate")
    print(header)
    print("-" * len(header))
    for key, kind, base, now, gate, failure in rows:
        if base is None and now is None:
            print(f"{'SKIP':10} {kind:10} {key:48} {'absent':>16}")
            continue
        if now is None:
            print(f"{'MISSING':10} {kind:10} {key:48} {base:>16,.1f}")
            continue
        if kind == "report":
            status = "INFO"
        else:
            status = "REGRESSION" if failure else "OK"
        base_s = f"{base:,.1f}" if base is not None else "-"
        ratio_s = f"{now / base:.2f}x" if base else "-"
        print(f"{status:10} {kind:10} {key:48} {base_s:>16} {now:>16,.1f} "
              f"{ratio_s:>7}  {gate}")


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True, help="committed BENCH_core.json")
    ap.add_argument("--fresh", help="pre-generated fresh BENCH_core.json")
    ap.add_argument("--micro-core", help="micro_core binary to run for fresh numbers")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=0.5,
        help="allowed fractional drop below baseline (default 0.5)",
    )
    args = ap.parse_args()

    if not args.fresh and not args.micro_core:
        ap.error("need --fresh or --micro-core")

    with open(args.baseline, encoding="utf-8") as f:
        baseline = json.load(f)
    if args.fresh:
        with open(args.fresh, encoding="utf-8") as f:
            fresh = json.load(f)
    else:
        fresh = run_micro_core(args.micro_core)

    rows = build_rows(baseline, fresh, args.tolerance)
    print_table(rows)

    failures = [failure for *_, failure in rows if failure]
    if failures:
        print(f"\nbench regression gate FAILED ({len(failures)} key(s)):")
        for f in failures:
            print(f"  {f}")
        return 1
    print("\nbench regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
