// hxsim — config-driven simulation runner (the SuperSim-style front end).
//
// Builds any registered topology/routing from flags or a config file and
// runs one of three experiments:
//
//   --experiment=steady    one steady-state measurement at --load
//   --experiment=sweep     load-latency sweep over --loads (--jobs=N runs
//                          points concurrently; output is jobs-invariant)
//   --experiment=stencil   27-pt stencil app (--halo-kb, --iterations, --mode)
//
// --point-jobs=N shards each point's network across N worker threads via the
// conservative parallel engine (sim/par, DESIGN.md §12); composes with
// --jobs. Every output surface except --perf-json wall-clock telemetry is
// bit-identical for any --point-jobs value.
//
// `hxsim --list` prints the registered topologies, routing algorithms, and
// traffic patterns and exits.
//
// Fault injection (steady/sweep): --fault-rate + --fault-seed draw random
// link failures, --fault-links=r:p,... / --fault-routers=r,... name them
// explicitly, --fault-at/--fault-until make them transient, and
// --fault-policy={abort,drop,retry,escape} selects the dead-end ladder
// (--fault-drop=true remains as the legacy spelling of drop; faulted runs add
// `dropped`/`stretch` columns). escape/drop/retry tolerate partitioned fault
// sets, reporting unreachable pairs as metrics. A point that still aborts is
// retried once and then reported as a FAILED row (crash isolation) rather
// than killing the sweep. --vc-policy={static,dateline,escape} selects the
// VC/deadlock-avoidance scheme per algorithm. See fault/fault_model.h.
//
// steady/sweep run through the shared harness::runLoadSweep engine for every
// topology family, with the standard determinism contract: each point's seeds
// derive from (--seed, point index), so the table and --csv output are
// byte-identical for any --jobs value. --perf-json captures per-point wall
// time and event throughput.
//
// Observability (steady/sweep): --trace-out=FILE writes a Chrome-trace JSON
// of sampled packet lifecycles (open in ui.perfetto.dev; --trace-sample=N
// traces 1-in-N packets by id), --metrics-json=FILE dumps latency histograms,
// tail percentiles, and per-dimension routing-decision counters, and
// --sample-interval=T snapshots network load every T cycles (with a stall
// watchdog after --stall-window quiet cycles). --window-ticks=T attaches the
// windowed flight recorder (per-window flow/routing deltas, link/VC heatmaps,
// a per-window log2 latency histogram, fault annotations; DESIGN.md §14) and
// --timeline-out=FILE streams its windows as JSONL (implies a 1000-tick
// window when --window-ticks is unset); a hotspot/imbalance summary rides in
// --metrics-json and below the sweep table. All observability output is
// --jobs-invariant, and the timeline JSONL is --point-jobs-invariant too;
// see obs/obs.h.
//
// Configuration can come from a file (`hxsim --config my.cfg`) with
// `key = value` lines; command-line flags override file values. See
// harness/builder.h for the topology/router keys.
//
// Examples:
//   hxsim --experiment=sweep --routing=omniwar --pattern=bc --loads=0.1,0.3,0.45
//   hxsim --topology=dragonfly --routing=ugal --experiment=sweep --jobs=4
//   hxsim --experiment=stencil --routing=dimwar --halo-kb=64 --iterations=2
//   hxsim --config experiments/urby.cfg --csv=out.csv
#include <algorithm>
#include <cstdio>

#include "app/stencil.h"
#include "common/flags.h"
#include "harness/builder.h"
#include "harness/csv.h"
#include "harness/obs_io.h"
#include "harness/registry.h"
#include "harness/spec.h"
#include "harness/sweep_runner.h"
#include "harness/table.h"

namespace {

using namespace hxwar;

std::vector<std::string> resultRow(const harness::SweepPoint& p, bool faulted) {
  using harness::Table;
  const metrics::SteadyStateResult& r = p.result;
  if (p.failed()) {
    // Crash isolation: the point raised hxwar::Error twice with the same
    // seeds; keep it as a structured row instead of dropping the whole sweep.
    std::vector<std::string> row = {Table::pct(p.load), "-", "-", "-", "-",
                                    "-",               "-", "-", "FAILED"};
    if (faulted) {
      row.push_back("-");
      row.push_back("-");
    }
    return row;
  }
  std::vector<std::string> row = {Table::pct(p.load),
                                  Table::pct(r.accepted),
                                  r.saturated ? "-" : Table::num(r.latencyMean, 1),
                                  r.saturated ? "-" : Table::num(r.latencyP90, 1),
                                  r.saturated ? "-" : Table::num(r.latencyP99, 1),
                                  r.saturated ? "-" : Table::num(r.latencyP999, 1),
                                  Table::num(r.avgHops, 2),
                                  Table::num(r.avgDeroutes, 3),
                                  r.saturated ? "SATURATED" : "stable"};
  if (faulted) {
    row.push_back(Table::num(r.droppedShare, 4));
    row.push_back(Table::num(r.avgStretch, 3));
  }
  return row;
}

// --list: the registered experiment vocabulary, then exit.
int listRegistry() {
  auto& registry = harness::ExperimentRegistry::instance();
  std::printf("topologies (with routing algorithms):\n");
  for (const auto& topology : registry.topologyNames()) {
    std::printf("  %-10s:", topology.c_str());
    for (const auto& routing : registry.routingNames(topology)) {
      std::printf(" %s", routing.c_str());
    }
    std::printf("\n");
  }
  std::printf("patterns:\n");
  for (const auto& pattern : registry.patternNames()) {
    std::printf("  %-6s %s\n", pattern.c_str(),
                registry.pattern(pattern).description.c_str());
  }
  return 0;
}

int runSteadyOrSweep(const Flags& flags, bool sweep) {
  const harness::ExperimentSpec spec = harness::ExperimentSpec::fromFlags(flags);
  const auto loads = sweep ? flags.f64List("loads", {0.2, 0.4, 0.6, 0.8})
                           : std::vector<double>{flags.f64("load", 0.3)};
  harness::SweepOptions sweepOpts;
  sweepOpts.jobs = static_cast<unsigned>(flags.u64("jobs", 1));
  sweepOpts.stopAtSaturation = sweep;  // cut after two consecutive saturated loads
  const auto points = harness::runLoadSweep(spec, loads, sweepOpts);

  // No wall-clock columns: the table and CSV stay byte-identical for any
  // --jobs value. Telemetry goes to --perf-json instead. Resilience columns
  // appear only on faulted runs, keeping fault-free output unchanged.
  std::vector<std::string> columns = {"offered",  "accepted", "lat_mean",
                                      "lat_p90",  "lat_p99",  "lat_p999",
                                      "hops",     "deroutes", "state"};
  const bool faulted = spec.fault.active();
  if (faulted) {
    columns.push_back("dropped");
    columns.push_back("stretch");
  }
  harness::Table table(columns);
  harness::CsvWriter csv(flags.str("csv", ""), columns);
  for (const auto& p : points) {
    const auto row = resultRow(p, faulted);
    table.addRow(row);
    csv.row(row);
    if (p.failed()) {
      std::fprintf(stderr, "point %zu (load %.3f) failed: %s\n", p.index, p.load,
                   p.message.c_str());
    }
  }
  table.print();

  // Flight-recorder summary: one line per recorded point with its window
  // count, peak per-window deroutes/stalls, the hottest link, and — when
  // sharded — the worst shard load ratio. Derived from the same deterministic
  // windows as --timeline-out, so this block is jobs- and point-jobs-
  // invariant aside from shard_balance ratios existing only when sharded.
  if (spec.obs.windowed()) {
    for (const auto& p : points) {
      if (p.windows.empty()) continue;
      std::uint64_t peakDeroutes = 0, peakStalls = 0;
      std::uint64_t hotFlits = 0;
      RouterId hotRouter = kRouterInvalid;
      PortId hotPort = kPortInvalid;
      for (const auto& w : p.windows) {
        peakDeroutes = std::max(peakDeroutes, w.deroutesTaken);
        peakStalls = std::max(peakStalls, w.creditStalls);
        if (!w.hotLinks.empty() && w.hotLinks[0].flits > hotFlits) {
          hotFlits = w.hotLinks[0].flits;
          hotRouter = w.hotLinks[0].router;
          hotPort = w.hotLinks[0].port;
        }
      }
      double maxRatio = 0.0;
      for (const auto& sr : p.shardWindows) maxRatio = std::max(maxRatio, sr.loadRatio);
      std::printf("timeline point %zu: %zu windows x %llu ticks, peak deroutes/win %llu,"
                  " peak credit stalls/win %llu",
                  p.index, p.windows.size(),
                  static_cast<unsigned long long>(spec.obs.windowTicks),
                  static_cast<unsigned long long>(peakDeroutes),
                  static_cast<unsigned long long>(peakStalls));
      if (hotRouter != kRouterInvalid) {
        std::printf(", hottest link r%u:p%u (%llu flits/win)", hotRouter, hotPort,
                    static_cast<unsigned long long>(hotFlits));
      }
      if (!p.shardWindows.empty()) {
        std::printf(", max shard load ratio %.3f", maxRatio);
      }
      std::printf("\n");
    }
  }

  harness::SweepPerfLog perf;
  const std::string algo = spec.routing.empty() ? "default" : spec.routing;
  perf.addAll(algo + "/" + spec.pattern, points);
  const std::string perfJson = flags.str("perf-json", "");
  if (!perf.writeJson(perfJson, "hxsim", spec.topology, sweepOpts.jobs)) {
    std::fprintf(stderr, "warning: could not write %s\n", perfJson.c_str());
  }

  // Observability outputs, assembled in point order (jobs-invariant).
  harness::writeTraceJson(spec.obs.traceOut, spec, points);
  harness::writeMetricsJson(spec.obs.metricsJson, spec, points);
  harness::writeTimelineJsonl(spec.obs.timelineOut, spec, points);
  return 0;
}

int runStencil(const Flags& flags) {
  // Application workloads drive a single-simulator NetworkBundle directly;
  // intra-point sharding only exists on the steady/sweep Experiment path.
  if (flags.u64("point-jobs", 1) > 1) {
    std::fprintf(stderr, "--point-jobs applies to steady/sweep experiments only\n");
    return 1;
  }
  auto bundle = harness::NetworkBundle::fromFlags(flags);
  app::StencilConfig sc;
  const auto gridList = flags.f64List("grid", {});
  if (gridList.size() == 3) {
    sc.grid = {static_cast<std::uint32_t>(gridList[0]),
               static_cast<std::uint32_t>(gridList[1]),
               static_cast<std::uint32_t>(gridList[2])};
  } else {
    // Default: roughly cubical grid over all nodes.
    const std::uint32_t n = bundle->network().numNodes();
    std::uint32_t gx = 1;
    while ((gx + 1) * (gx + 1) * (gx + 1) <= n) ++gx;
    sc.grid = {gx, gx, std::max(1u, n / (gx * gx))};
  }
  sc.haloBytesPerNode = flags.u64("halo-kb", 48) * 1024;
  sc.iterations = static_cast<std::uint32_t>(flags.u64("iterations", 1));
  sc.mode = app::stencilModeFromString(flags.str("mode", "full"));
  sc.randomPlacement = !flags.b("linear-placement", false);
  sc.seed = flags.u64("seed", 21);
  app::StencilApp stencil(bundle->network(), sc);
  const auto r = stencil.run();
  harness::Table table({"metric", "value"});
  table.addRow({"makespan (cycles)", std::to_string(r.makespan)});
  table.addRow({"messages", std::to_string(r.messages)});
  table.addRow({"bytes", std::to_string(r.bytes)});
  table.addRow({"exchange proc-cycles", std::to_string(r.exchangeCycles)});
  table.addRow({"collective proc-cycles", std::to_string(r.collectiveCycles)});
  table.print();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!flags.parse(argc, argv)) return 1;
  if (flags.has("config") && !flags.loadFile(flags.str("config", ""))) return 1;
  if (flags.b("list", false)) return listRegistry();

  {
    auto bundle = harness::NetworkBundle::fromFlags(flags);
    std::printf("hxsim: %s — %u routers, %u nodes\n", bundle->description().c_str(),
                bundle->network().numRouters(), bundle->network().numNodes());
  }

  const std::string experiment = flags.str("experiment", "steady");
  if (experiment == "steady") return runSteadyOrSweep(flags, false);
  if (experiment == "sweep") return runSteadyOrSweep(flags, true);
  if (experiment == "stencil") return runStencil(flags);
  std::fprintf(stderr, "unknown experiment: %s (steady|sweep|stencil)\n", experiment.c_str());
  return 1;
}
