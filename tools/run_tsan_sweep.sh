#!/usr/bin/env bash
# Sanitizer sweeps over the simulator core.
#
# Pass 1 (TSan): configures a ThreadSanitizer side build (build-tsan/,
# separate from the main build/) and runs the parallel-sweep test suite
# under TSan, then the fault suite (transient kill/revive events mutate the
# shared dead-port mask, and the faulted --jobs sweep exercises per-thread
# fault-set construction), then the intra-point parallel engine suite and a
# faulted+traced --jobs x --point-jobs sweep (shard workers, mailbox
# hand-off, barrier merges; DESIGN.md §12). Any data race in the thread
# pool, the sweep reduction, the fault layer, or the sharded engine fails
# the run.
#
# Pass 2 (ASan+UBSan): a second side build (build-asan/,
# HXWAR_SANITIZE=address,undefined) runs the index-core memory suites —
# packet slab, router SoA state, channel rings — plus a --scale=paper smoke
# point, so out-of-bounds slot arithmetic or use-after-recycle in the dense
# ID-indexed storage fails loudly at full network size. A high-fault-rate
# ftar sweep rides along: 20% failed links under --fault-policy=escape
# drives the masked-BFS escape tables, escape-VC escalation, and the
# partition-tolerant fault-set builder through the sanitizers. So does a
# windowed flight-recorder sweep validated by timeline_check (DESIGN.md §14).
#
# Usage: tools/run_tsan_sweep.sh [extra gtest args...]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${ROOT}/build-tsan"
BUILD_ASAN="${ROOT}/build-asan"

cmake -B "${BUILD}" -S "${ROOT}" -DHXWAR_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${BUILD}" --target parallel_sweep_test fault_test event_queue_test \
  par_sim_test hxsim -j"$(nproc)"

# TSAN_OPTIONS defaults: fail loudly on the first race.
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}"

# Calendar-queue property suite first: each sweep worker owns a queue, so the
# structure itself must be clean before checking the cross-thread layers.
"${BUILD}/tests/event_queue_test" "$@"
echo "event_queue_test passed under ThreadSanitizer"

"${BUILD}/tests/parallel_sweep_test" "$@"
echo "parallel_sweep_test passed under ThreadSanitizer"

# Transient-fault sweep: the kill/revive schedule plus the multi-threaded
# faulted sweep (FaultSweep.JobsInvariantOnFaultedNetwork runs jobs=4).
# Death tests fork and are meaningless under TSan; skip them.
"${BUILD}/tests/fault_test" --gtest_filter='-*Death*' "$@"
echo "fault_test (transient-fault sweep) passed under ThreadSanitizer"

# Traced multi-threaded sweep: per-point NetObservers (trace buffers, counter
# slots, sampler rows) must stay thread-local until the point-ordered merge.
OBS_DIR="$(mktemp -d)"
trap 'rm -rf "${OBS_DIR}"' EXIT
"${BUILD}/tools/hxsim" --widths=3,3 --terminals=2 --routing=dimwar \
  --experiment=sweep --loads=0.1,0.2 --jobs=4 \
  --warmup-window=300 --warmup-windows=6 --measure-window=800 --drain-window=2000 \
  --trace-sample=1 --sample-interval=200 \
  --trace-out="${OBS_DIR}/sweep.trace.json" \
  --metrics-json="${OBS_DIR}/sweep.metrics.json" > /dev/null
echo "traced --jobs=4 sweep passed under ThreadSanitizer"

# Intra-point parallel engine: the sharded window loop, mailbox hand-off, and
# barrier merge paths of sim/par (shard workers + control sim + coordinator).
"${BUILD}/tests/par_sim_test" "$@"
echo "par_sim_test passed under ThreadSanitizer"

# The composed axes — sweep workers each driving a 4-shard engine — through
# the real binary, traced, faulted, and windowed (the flight recorder's
# kEpsControl closes read shard-updated counters and walk Router SoA state
# with the workers parked at the barrier) so observer merge, fault-mask
# reads, and the recorder's frozen-state walks all cross the shard boundary.
"${BUILD}/tools/hxsim" --widths=3,3 --terminals=2 --routing=omniwar \
  --experiment=sweep --loads=0.1,0.2 --jobs=2 --point-jobs=4 \
  --fault-rate=0.05 --fault-drop=true \
  --trace-sample=1 --sample-interval=200 \
  --warmup-window=300 --warmup-windows=6 --measure-window=800 --drain-window=2000 \
  --window-ticks=400 --timeline-out="${OBS_DIR}/par.timeline.jsonl" \
  --trace-out="${OBS_DIR}/par.trace.json" \
  --metrics-json="${OBS_DIR}/par.metrics.json" > /dev/null
echo "faulted+traced+timeline --jobs=2 --point-jobs=4 sweep passed under ThreadSanitizer"

# ---- ASan+UBSan pass: index-core memory discipline -------------------------

cmake -B "${BUILD_ASAN}" -S "${ROOT}" -DHXWAR_SANITIZE=address,undefined \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${BUILD_ASAN}" --target packet_pool_test net_test channel_test \
  router_test hxsim timeline_check -j"$(nproc)"

export ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1 detect_leaks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1 print_stacktrace=1}"

# The slab and SoA suites: slot-ref arithmetic, recycle liveness, ring
# growth/linearize, dense component arenas. Death tests fork; skip them.
for t in packet_pool_test net_test channel_test router_test; do
  "${BUILD_ASAN}/tests/${t}" --gtest_filter='-*Death*' "$@"
  echo "${t} passed under ASan+UBSan"
done

# High-fault-rate escape routing: ftar at 20% failed links with the escape
# fault policy. The degraded network may not even be connected at this rate —
# escape tolerates partitions and attributes the unreachable-destination
# drops — so the masked-BFS distance tables, escape-VC escalation, and the
# partition census all run with sanitizers watching.
"${BUILD_ASAN}/tools/hxsim" --widths=4,4 --terminals=2 --routing=ftar \
  --experiment=sweep --loads=0.05,0.10 --jobs=2 \
  --fault-rate=0.20 --fault-policy=escape \
  --warmup-window=300 --warmup-windows=6 --measure-window=800 \
  --drain-window=3000 > /dev/null
echo "high-fault-rate ftar escape sweep passed under ASan+UBSan"

# Windowed flight-recorder sweep under ASan+UBSan: the recorder's snapshot
# tables, link-walk deltas, and JSONL serialization, validated end to end by
# timeline_check (itself built with the sanitizers, so the JSON parser runs
# hot too).
"${BUILD_ASAN}/tools/hxsim" --widths=3,3 --terminals=2 --routing=dal \
  --experiment=sweep --loads=0.2 --point-jobs=4 \
  --fault-links=0:2 --fault-at=500 --fault-until=1400 \
  --warmup-window=300 --warmup-windows=6 --measure-window=800 \
  --drain-window=2000 --window-ticks=400 \
  --timeline-out="${OBS_DIR}/asan.timeline.jsonl" > /dev/null
"${BUILD_ASAN}/tools/timeline_check" "${OBS_DIR}/asan.timeline.jsonl" --min-windows=3
echo "windowed flight-recorder sweep + timeline_check passed under ASan+UBSan"

# Paper-scale smoke: build the 4,096-node network and push one reduced
# fig06 point through it, so index arithmetic is exercised at full size.
"${BUILD_ASAN}/tools/hxsim" --scale=paper --routing=omniwar --pattern=ur \
  --experiment=sweep --loads=0.05 --jobs=1 \
  --warmup-window=1000 --warmup-windows=2 --measure-window=1000 \
  --drain-window=20000 > /dev/null
echo "--scale=paper smoke point passed under ASan+UBSan"
