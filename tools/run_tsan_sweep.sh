#!/usr/bin/env bash
# Race-checks the parallel sweep engine: configures a ThreadSanitizer side
# build (build-tsan/, separate from the main build/) and runs the
# parallel-sweep test suite under TSan. Any data race in the thread pool or
# the sweep reduction fails the run.
#
# Usage: tools/run_tsan_sweep.sh [extra ctest args...]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${ROOT}/build-tsan"

cmake -B "${BUILD}" -S "${ROOT}" -DHXWAR_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${BUILD}" --target parallel_sweep_test -j"$(nproc)"

# TSAN_OPTIONS defaults: fail loudly on the first race.
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}"
"${BUILD}/tests/parallel_sweep_test" "$@"
echo "parallel_sweep_test passed under ThreadSanitizer"
