#!/usr/bin/env python3
"""Reduce a --timeline-out JSONL file to per-window CSV and gnuplot scripts.

Stdlib only (json/csv/argparse): runs anywhere the simulator runs. The input
is the hxsim flight-recorder stream (tools/timeline_check.cc documents the
line grammar): a header line, then per sweep point a point-meta line followed
by that point's window lines.

Modes:
  plot_timeline.py TIMELINE.jsonl                      # CSV to stdout
  plot_timeline.py TIMELINE.jsonl --csv out.csv        # CSV to a file
  plot_timeline.py TIMELINE.jsonl --gnuplot PREFIX     # PREFIX.dat + PREFIX.gp
  plot_timeline.py TIMELINE.jsonl --point 2            # restrict to one point
  plot_timeline.py TIMELINE.jsonl --annotations        # list annotated windows

CSV columns are per-window deltas plus derived rates and the p50/p99
estimated from the log2 latency buckets (bucket b covers [2^(b-1), 2^b),
matching obs::LogHistogram). The gnuplot script draws three stacked panels —
throughput (injected/ejected per tick), congestion (credit stalls, deroutes,
queued flits), and latency percentiles — with annotated windows (fault
kill/revive, escape escalations, stall_watchdog) marked as vertical lines.
"""

import argparse
import csv
import json
import sys

CSV_COLUMNS = [
    "point", "window", "start", "end", "ticks",
    "injected", "ejected", "inj_per_tick", "ej_per_tick",
    "packets_created", "packets_ejected", "packets_dropped",
    "route_decisions", "deroutes_taken", "deroutes_refused", "deroute_rate",
    "fault_escapes", "path_deroutes", "credit_stalls",
    "backlog", "queued", "outstanding",
    "link_flits", "link_stall_ticks", "active_links",
    "hot_link", "hot_link_flits",
    "lat_p50", "lat_p99", "lat_total",
    "annotations",
]


def percentile(buckets, total, p):
    """Mirror of obs::LogHistogram::percentile over sparse [bucket, count]
    pairs: nearest-rank target, linear interpolation inside the hit bucket."""
    if total == 0:
        return 0.0
    target = p * (total - 1)
    cum = 0
    for b, count in buckets:
        lo = cum
        cum += count
        if target < cum:
            frac = 0.0 if count == 1 else (target - lo) / (count - 1)
            blo = 0.0 if b == 0 else 2.0 ** (b - 1)
            bhi = 2.0 ** b
            return blo + frac * (bhi - blo)
    return 2.0 ** buckets[-1][0] if buckets else 0.0


def parse_timeline(path):
    """Returns (header, [window dict, ...]); meta fields (load/status) are
    folded into each window under 'load'/'status'."""
    header = None
    meta = {}
    windows = []
    with open(path, encoding="utf-8") as f:
        for line_no, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as e:
                sys.exit(f"plot_timeline: invalid JSON at line {line_no}: {e}")
            if header is None:
                header = obj
                continue
            if "window" not in obj:
                meta = obj
                continue
            obj["load"] = meta.get("load", 0.0)
            obj["status"] = meta.get("status", "ok")
            windows.append(obj)
    if header is None:
        sys.exit("plot_timeline: empty timeline file")
    return header, windows


def window_row(w):
    ticks = w["end"] - w["start"]
    decisions = w["route_decisions"]
    lat = w["latency"]
    hot = w["hot_links"][0] if w["hot_links"] else None
    return {
        "point": w["point"],
        "window": w["window"],
        "start": w["start"],
        "end": w["end"],
        "ticks": ticks,
        "injected": w["injected"],
        "ejected": w["ejected"],
        "inj_per_tick": f"{w['injected'] / ticks:.4f}" if ticks else 0,
        "ej_per_tick": f"{w['ejected'] / ticks:.4f}" if ticks else 0,
        "packets_created": w["packets_created"],
        "packets_ejected": w["packets_ejected"],
        "packets_dropped": w["packets_dropped"],
        "route_decisions": decisions,
        "deroutes_taken": w["deroutes_taken"],
        "deroutes_refused": w["deroutes_refused"],
        "deroute_rate": f"{w['deroutes_taken'] / decisions:.4f}" if decisions else 0,
        "fault_escapes": w["fault_escapes"],
        "path_deroutes": w["path_deroutes"],
        "credit_stalls": w["credit_stalls"],
        "backlog": w["backlog"],
        "queued": w["queued"],
        "outstanding": w["outstanding"],
        "link_flits": w["link_flits"],
        "link_stall_ticks": w["link_stall_ticks"],
        "active_links": w["active_links"],
        "hot_link": f"r{hot['router']}:p{hot['port']}" if hot else "",
        "hot_link_flits": hot["flits"] if hot else 0,
        "lat_p50": f"{percentile(lat['buckets'], lat['total'], 0.50):.1f}",
        "lat_p99": f"{percentile(lat['buckets'], lat['total'], 0.99):.1f}",
        "lat_total": lat["total"],
        "annotations": ";".join(w["annotations"]),
    }


GNUPLOT_TEMPLATE = """\
# Generated by tools/plot_timeline.py — gnuplot {dat} for the window stream.
set terminal pngcairo size 1200,900
set output '{prefix}.png'
set multiplot layout 3,1 title 'hxsim flight recorder ({title})'
set datafile separator ','
set key autotitle columnhead
set xlabel 'tick'
set grid
{marks}
set ylabel 'flits / tick'
plot '{dat}' using 'end':'inj_per_tick' with lines lw 2, \\
     '' using 'end':'ej_per_tick' with lines lw 2
set ylabel 'per-window count'
plot '{dat}' using 'end':'credit_stalls' with lines lw 2, \\
     '' using 'end':'deroutes_taken' with lines lw 2, \\
     '' using 'end':'queued' with lines lw 2
set ylabel 'latency (ticks)'
plot '{dat}' using 'end':'lat_p50' with lines lw 2, \\
     '' using 'end':'lat_p99' with lines lw 2
unset multiplot
"""


def write_gnuplot(prefix, rows, title):
    dat = f"{prefix}.dat"
    with open(dat, "w", newline="", encoding="utf-8") as f:
        writer = csv.DictWriter(f, fieldnames=CSV_COLUMNS)
        writer.writeheader()
        writer.writerows(rows)
    marks = []
    for row in rows:
        if row["annotations"]:
            label = row["annotations"].replace("'", "")
            marks.append(
                f"set arrow from {row['end']}, graph 0 to {row['end']}, graph 1 "
                f"nohead dt 2 lc rgb 'red'  # {label}"
            )
    with open(f"{prefix}.gp", "w", encoding="utf-8") as f:
        f.write(GNUPLOT_TEMPLATE.format(prefix=prefix, dat=dat, title=title,
                                        marks="\n".join(marks)))
    print(f"plot_timeline: wrote {dat} and {prefix}.gp "
          f"({len(rows)} windows, {len(marks)} annotated)")
    print(f"  render with: gnuplot {prefix}.gp")


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("timeline", help="--timeline-out JSONL file")
    ap.add_argument("--csv", help="write CSV here instead of stdout")
    ap.add_argument("--gnuplot", metavar="PREFIX",
                    help="write PREFIX.dat and PREFIX.gp instead of CSV")
    ap.add_argument("--point", type=int, help="restrict to one sweep point")
    ap.add_argument("--annotations", action="store_true",
                    help="list annotated windows and exit")
    args = ap.parse_args()

    header, windows = parse_timeline(args.timeline)
    if args.point is not None:
        windows = [w for w in windows if w["point"] == args.point]
        if not windows:
            sys.exit(f"plot_timeline: no windows for point {args.point}")

    if args.annotations:
        hits = [w for w in windows if w["annotations"]]
        for w in hits:
            print(f"point {w['point']} window {w['window']} "
                  f"[{w['start']}, {w['end']}): {'; '.join(w['annotations'])}")
        print(f"plot_timeline: {len(hits)} annotated of {len(windows)} windows")
        return

    rows = [window_row(w) for w in windows]
    if args.gnuplot:
        title = (f"{header.get('topology', '?')} {header.get('routing', '?')} "
                 f"{header.get('pattern', '?')}, w={header.get('window_ticks', '?')}")
        write_gnuplot(args.gnuplot, rows, title)
        return

    out = open(args.csv, "w", newline="", encoding="utf-8") if args.csv else sys.stdout
    writer = csv.DictWriter(out, fieldnames=CSV_COLUMNS)
    writer.writeheader()
    writer.writerows(rows)
    if args.csv:
        out.close()
        print(f"plot_timeline: wrote {args.csv} ({len(rows)} windows)")


if __name__ == "__main__":
    try:
        main()
    except BrokenPipeError:
        # CSV piped into head/less: the consumer closed the pipe mid-stream.
        sys.stderr.close()
        sys.exit(0)
