// trace_check — validates observability output files (used by the tier-1
// ctest gate, see tests/trace_validate.cmake).
//
//   trace_check TRACE.json [--min-spans=N]
//     Parses a Chrome-trace JSON file and checks structural invariants:
//     traceEvents is an array, every event carries name/ph/pid (and ts except
//     metadata), every async "e" closes an open "b" with the same
//     (pid, cat, id), counter events have numeric args, and at least N packet
//     spans open (default 1). Unmatched "b" events are tolerated: packets
//     still in flight when a sweep point ends never see their "e".
//
//   trace_check --metrics METRICS.json
//     Parses a --metrics-json file and checks every point has a latency
//     object with p99/p999, a latency_histogram whose bucket counts sum to
//     `packets`, and a routing object with the per-dimension deroute arrays.
//
// Exit code 0 = valid, 1 = invalid (with a message on stderr).
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <tuple>

#include "obs/json.h"

namespace {

using hxwar::obs::JsonValue;

bool fail(const char* fmt, const std::string& detail) {
  std::fprintf(stderr, fmt, detail.c_str());
  std::fprintf(stderr, "\n");
  return false;
}

bool readFile(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return fail("trace_check: cannot open %s", path);
  char buf[65536];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return true;
}

bool checkTrace(const JsonValue& root, std::uint64_t minSpans) {
  const JsonValue* events = root.get("traceEvents");
  if (events == nullptr || !events->isArray()) {
    return fail("trace_check: %s", "missing traceEvents array");
  }
  // Open async spans keyed the way Perfetto matches them: (pid, cat, id).
  std::map<std::tuple<double, std::string, std::string>, std::uint64_t> open;
  std::uint64_t spans = 0;
  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const JsonValue& e = events->array[i];
    if (!e.isObject()) return fail("trace_check: %s", "event is not an object");
    const JsonValue* name = e.get("name");
    const JsonValue* ph = e.get("ph");
    const JsonValue* pid = e.get("pid");
    if (name == nullptr || !name->isString() || ph == nullptr || !ph->isString() ||
        pid == nullptr || !pid->isNumber()) {
      return fail("trace_check: %s", "event missing name/ph/pid at index " +
                                         std::to_string(i));
    }
    const std::string& phase = ph->string;
    if (phase == "M") continue;  // metadata carries no ts
    const JsonValue* ts = e.get("ts");
    if (ts == nullptr || !ts->isNumber()) {
      return fail("trace_check: %s", "event missing numeric ts: " + name->string);
    }
    if (phase == "C") {
      const JsonValue* args = e.get("args");
      if (args == nullptr || !args->isObject() || args->object.empty()) {
        return fail("trace_check: %s", "counter event without args: " + name->string);
      }
      for (const auto& [key, value] : args->object) {
        if (!value.isNumber()) {
          return fail("trace_check: %s", "non-numeric counter arg: " + key);
        }
      }
      continue;
    }
    if (phase == "b" || phase == "n" || phase == "e") {
      const JsonValue* cat = e.get("cat");
      const JsonValue* id = e.get("id");
      if (cat == nullptr || !cat->isString() || id == nullptr || !id->isString()) {
        return fail("trace_check: %s", "async event missing cat/id: " + name->string);
      }
      const auto key = std::make_tuple(pid->number, cat->string, id->string);
      if (phase == "b") {
        open[key] += 1;
        spans += 1;
      } else if (phase == "e") {
        auto it = open.find(key);
        if (it == open.end() || it->second == 0) {
          return fail("trace_check: %s", "\"e\" without open \"b\" for id " + id->string);
        }
        it->second -= 1;
      } else {  // "n" instants must fall inside an open span
        auto it = open.find(key);
        if (it == open.end() || it->second == 0) {
          return fail("trace_check: %s",
                      "\"n\" outside an open span for id " + id->string);
        }
      }
    }
  }
  if (spans < minSpans) {
    return fail("trace_check: %s", "only " + std::to_string(spans) + " packet spans, need " +
                                       std::to_string(minSpans));
  }
  std::printf("trace_check: OK (%llu packet spans)\n",
              static_cast<unsigned long long>(spans));
  return true;
}

bool checkMetrics(const JsonValue& root) {
  const JsonValue* points = root.get("points");
  if (points == nullptr || !points->isArray() || points->array.empty()) {
    return fail("trace_check: %s", "metrics file has no points array");
  }
  for (std::size_t i = 0; i < points->array.size(); ++i) {
    const JsonValue& p = points->array[i];
    const std::string at = " at point " + std::to_string(i);
    const JsonValue* latency = p.get("latency");
    if (latency == nullptr || latency->get("p99") == nullptr ||
        latency->get("p999") == nullptr) {
      return fail("trace_check: %s", "missing latency.p99/.p999" + at);
    }
    const JsonValue* packets = p.get("packets");
    const JsonValue* histogram = p.get("latency_histogram");
    if (packets == nullptr || !packets->isNumber() || histogram == nullptr ||
        !histogram->isArray()) {
      return fail("trace_check: %s", "missing packets/latency_histogram" + at);
    }
    double bucketSum = 0.0;
    for (const JsonValue& bucket : histogram->array) {
      const JsonValue* count = bucket.get("count");
      if (count == nullptr || !count->isNumber()) {
        return fail("trace_check: %s", "histogram bucket without count" + at);
      }
      bucketSum += count->number;
    }
    if (bucketSum != packets->number) {
      return fail("trace_check: %s", "histogram counts do not sum to packets" + at);
    }
    const JsonValue* routing = p.get("routing");
    if (routing == nullptr || routing->get("decisions") == nullptr ||
        routing->get("deroutes_taken_by_dim") == nullptr ||
        routing->get("deroutes_refused_by_dim") == nullptr) {
      return fail("trace_check: %s", "missing routing counters" + at);
    }
  }
  std::printf("trace_check: metrics OK (%zu points)\n", points->array.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  bool metricsMode = false;
  std::uint64_t minSpans = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--metrics") {
      metricsMode = true;
    } else if (arg.rfind("--min-spans=", 0) == 0) {
      minSpans = std::strtoull(arg.c_str() + std::strlen("--min-spans="), nullptr, 10);
    } else {
      path = arg;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "usage: trace_check TRACE.json [--min-spans=N]\n"
                         "       trace_check --metrics METRICS.json\n");
    return 1;
  }
  std::string text;
  if (!readFile(path, text)) return 1;
  JsonValue root;
  std::string error;
  if (!hxwar::obs::parseJson(text, root, error)) {
    std::fprintf(stderr, "trace_check: %s is not valid JSON: %s\n", path.c_str(),
                 error.c_str());
    return 1;
  }
  const bool ok = metricsMode ? checkMetrics(root) : checkTrace(root, minSpans);
  return ok ? 0 : 1;
}
