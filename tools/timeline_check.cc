// timeline_check — validates a --timeline-out JSONL file (used by the tier-1
// ctest gate, see tests/timeline_validate.cmake).
//
//   timeline_check TIMELINE.jsonl [--min-windows=N]
//
// The file is one JSON object per line: a header line, then per sweep point a
// point-meta line followed by that point's window lines (harness/obs_io.cc,
// obs::appendWindowJsonl). Checked invariants:
//   - header: tool == "hxsim", numeric version, window_ticks > 0
//   - each point-meta's `windows` count matches the window lines that follow,
//     and point indices on window lines match the enclosing meta line
//   - per point: window indices run 0,1,2,...; each window's `start` equals
//     the previous window's `end`; `end` > `start`
//   - latency.total equals the sum of the sparse bucket counts
//   - hot_links are sorted by flits descending (stall_ticks descending on
//     ties) and every listed link moved flits or stalled
//   - deroutes_taken == sum(deroutes_by_dim)
//   - at least N window lines across all points (default 1)
//
// Exit code 0 = valid, 1 = invalid (with a message on stderr).
#include <cstdio>
#include <cstring>
#include <string>

#include "obs/json.h"

namespace {

using hxwar::obs::JsonValue;

bool fail(const std::string& detail) {
  std::fprintf(stderr, "timeline_check: %s\n", detail.c_str());
  return false;
}

bool readFile(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return fail("cannot open " + path);
  char buf[65536];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return true;
}

const JsonValue* number(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.get(key);
  return (v != nullptr && v->isNumber()) ? v : nullptr;
}

bool checkWindow(const JsonValue& w, const std::string& at) {
  static const char* kRequired[] = {
      "injected",        "ejected",      "packets_created", "packets_ejected",
      "packets_dropped", "route_decisions", "deroutes_taken", "deroutes_refused",
      "fault_escapes",   "path_deroutes", "credit_stalls",  "backlog",
      "queued",          "outstanding",   "link_flits",     "link_stall_ticks",
      "active_links"};
  for (const char* key : kRequired) {
    if (number(w, key) == nullptr) {
      return fail("missing numeric \"" + std::string(key) + "\"" + at);
    }
  }
  const JsonValue* byDim = w.get("deroutes_by_dim");
  const JsonValue* vcOcc = w.get("vc_occupancy");
  const JsonValue* annotations = w.get("annotations");
  if (byDim == nullptr || !byDim->isArray() || vcOcc == nullptr || !vcOcc->isArray() ||
      annotations == nullptr || !annotations->isArray()) {
    return fail("missing deroutes_by_dim/vc_occupancy/annotations arrays" + at);
  }
  double dimSum = 0.0;
  for (const JsonValue& d : byDim->array) {
    if (!d.isNumber()) return fail("non-numeric deroutes_by_dim entry" + at);
    dimSum += d.number;
  }
  if (dimSum != number(w, "deroutes_taken")->number) {
    return fail("deroutes_taken != sum(deroutes_by_dim)" + at);
  }
  for (const JsonValue& a : annotations->array) {
    if (!a.isString()) return fail("non-string annotation" + at);
  }
  const JsonValue* latency = w.get("latency");
  const JsonValue* total = latency != nullptr ? number(*latency, "total") : nullptr;
  const JsonValue* buckets = latency != nullptr ? latency->get("buckets") : nullptr;
  if (total == nullptr || buckets == nullptr || !buckets->isArray()) {
    return fail("missing latency.total/.buckets" + at);
  }
  double bucketSum = 0.0;
  for (const JsonValue& pair : buckets->array) {
    if (!pair.isArray() || pair.array.size() != 2 || !pair.array[0].isNumber() ||
        !pair.array[1].isNumber() || pair.array[1].number <= 0) {
      return fail("latency bucket is not a [bucket, count>0] pair" + at);
    }
    bucketSum += pair.array[1].number;
  }
  if (bucketSum != total->number) {
    return fail("latency bucket counts do not sum to latency.total" + at);
  }
  const JsonValue* hot = w.get("hot_links");
  if (hot == nullptr || !hot->isArray()) return fail("missing hot_links array" + at);
  double prevFlits = -1.0;
  double prevStalls = -1.0;
  for (std::size_t i = 0; i < hot->array.size(); ++i) {
    const JsonValue& l = hot->array[i];
    const JsonValue* flits = number(l, "flits");
    const JsonValue* stalls = number(l, "stall_ticks");
    if (flits == nullptr || stalls == nullptr || number(l, "router") == nullptr ||
        number(l, "port") == nullptr || number(l, "queued") == nullptr) {
      return fail("hot_links entry missing router/port/flits/stall_ticks/queued" + at);
    }
    if (flits->number == 0 && stalls->number == 0) {
      return fail("hot_links entry with zero flits and zero stalls" + at);
    }
    if (i > 0 && (flits->number > prevFlits ||
                  (flits->number == prevFlits && stalls->number > prevStalls))) {
      return fail("hot_links not sorted by (flits, stall_ticks) descending" + at);
    }
    prevFlits = flits->number;
    prevStalls = stalls->number;
  }
  return true;
}

bool checkTimeline(const std::string& text, std::uint64_t minWindows) {
  std::size_t lineNo = 0;
  std::size_t pos = 0;
  bool sawHeader = false;
  double currentPoint = -1.0;   // point index from the active meta line
  std::uint64_t expected = 0;   // window lines the meta line promised
  std::uint64_t seen = 0;       // window lines consumed for this point
  std::uint64_t totalWindows = 0;
  double prevEnd = 0.0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) return fail("file does not end with a newline");
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    lineNo += 1;
    const std::string at = " at line " + std::to_string(lineNo);
    JsonValue v;
    std::string error;
    if (!hxwar::obs::parseJson(line, v, error) || !v.isObject()) {
      return fail("invalid JSON" + at + ": " + error);
    }
    if (!sawHeader) {
      const JsonValue* tool = v.get("tool");
      const JsonValue* version = number(v, "version");
      const JsonValue* ticks = number(v, "window_ticks");
      if (tool == nullptr || !tool->isString() || tool->string != "hxsim" ||
          version == nullptr || ticks == nullptr || ticks->number <= 0) {
        return fail("bad header (tool/version/window_ticks)" + at);
      }
      sawHeader = true;
      continue;
    }
    if (v.get("window") == nullptr) {  // point-meta line
      if (seen != expected) {
        return fail("point meta promised " + std::to_string(expected) + " windows, saw " +
                    std::to_string(seen) + at);
      }
      const JsonValue* point = number(v, "point");
      const JsonValue* windows = number(v, "windows");
      const JsonValue* status = v.get("status");
      if (point == nullptr || windows == nullptr || status == nullptr ||
          !status->isString() || v.get("load") == nullptr) {
        return fail("bad point meta line (point/load/status/windows)" + at);
      }
      currentPoint = point->number;
      expected = static_cast<std::uint64_t>(windows->number);
      seen = 0;
      prevEnd = 0.0;
      continue;
    }
    // Window line.
    if (currentPoint < 0) return fail("window line before any point meta" + at);
    const JsonValue* point = number(v, "point");
    const JsonValue* window = number(v, "window");
    const JsonValue* start = number(v, "start");
    const JsonValue* end = number(v, "end");
    if (point == nullptr || window == nullptr || start == nullptr || end == nullptr) {
      return fail("window line missing point/window/start/end" + at);
    }
    if (point->number != currentPoint) return fail("window line point mismatch" + at);
    if (window->number != static_cast<double>(seen)) {
      return fail("window indices not contiguous from 0" + at);
    }
    if (seen > 0 && start->number != prevEnd) {
      return fail("window start does not equal previous window end" + at);
    }
    if (end->number <= start->number) return fail("window end <= start" + at);
    prevEnd = end->number;
    if (!checkWindow(v, at)) return false;
    seen += 1;
    totalWindows += 1;
  }
  if (!sawHeader) return fail("empty file (no header line)");
  if (seen != expected) {
    return fail("last point meta promised " + std::to_string(expected) +
                " windows, saw " + std::to_string(seen));
  }
  if (totalWindows < minWindows) {
    return fail("only " + std::to_string(totalWindows) + " windows, need " +
                std::to_string(minWindows));
  }
  std::printf("timeline_check: OK (%llu windows)\n",
              static_cast<unsigned long long>(totalWindows));
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::uint64_t minWindows = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--min-windows=", 0) == 0) {
      minWindows = std::strtoull(arg.c_str() + std::strlen("--min-windows="), nullptr, 10);
    } else {
      path = arg;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "usage: timeline_check TIMELINE.jsonl [--min-windows=N]\n");
    return 1;
  }
  std::string text;
  if (!readFile(path, text)) return 1;
  return checkTimeline(text, minWindows) ? 0 : 1;
}
